// Tests for the pipeline training system (§V): host store semantics, the
// embedding cache LC protocol, ring all-reduce, and — the paper's key
// correctness claim — pipelined training with the cache matching a
// sequential oracle exactly, while disabling the cache reproduces the RAW
// staleness bug.
#include <gtest/gtest.h>

#include <thread>

#include "pipeline/allreduce.hpp"
#include "pipeline/embedding_cache.hpp"
#include "pipeline/host_embedding_store.hpp"
#include "pipeline/pipeline_trainer.hpp"

namespace elrec {
namespace {

TEST(HostEmbeddingStore, PullGathersRows) {
  Prng rng(1);
  HostEmbeddingStore store(20, 4, rng);
  Matrix rows;
  store.pull({3, 17, 3}, rows);
  ASSERT_EQ(rows.rows(), 3);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_EQ(rows.at(0, j), store.weights().at(3, j));
    EXPECT_EQ(rows.at(1, j), store.weights().at(17, j));
    EXPECT_EQ(rows.at(2, j), rows.at(0, j));
  }
}

TEST(HostEmbeddingStore, ApplyGradientsIsSgd) {
  Prng rng(2);
  HostEmbeddingStore store(20, 2, rng);
  const auto before = store.row_copy(5);
  Matrix grads{{1.0f, -2.0f}};
  store.apply_gradients({5}, grads, 0.5f);
  const auto after = store.row_copy(5);
  EXPECT_NEAR(after[0], before[0] - 0.5f, 1e-6f);
  EXPECT_NEAR(after[1], before[1] + 1.0f, 1e-6f);
}

TEST(HostEmbeddingStore, PullOutOfRangeThrows) {
  Prng rng(3);
  HostEmbeddingStore store(20, 2, rng);
  Matrix rows;
  EXPECT_THROW(store.pull({20}, rows), Error);
}

TEST(EmbeddingCacheTest, SyncPatchesOnlyCachedRows) {
  EmbeddingCache cache(2, 3);
  Matrix vals{{10.0f, 11.0f}};
  cache.insert({7}, vals, 0);
  Matrix rows{{1.0f, 2.0f}, {3.0f, 4.0f}};
  const index_t patched = cache.sync({7, 8}, rows);
  EXPECT_EQ(patched, 1);
  EXPECT_EQ(rows.at(0, 0), 10.0f);  // patched from cache
  EXPECT_EQ(rows.at(1, 0), 3.0f);   // untouched
}

TEST(EmbeddingCacheTest, LifeCycleEvictsAfterHostAbsorption) {
  EmbeddingCache cache(1, 2);  // 2 lives
  Matrix vals{{5.0f}};
  cache.insert({1}, vals, /*batch_id=*/0);
  // Host has NOT applied batch 0 yet: lives must not drain.
  cache.retire_batch(-1);
  cache.retire_batch(-1);
  cache.retire_batch(-1);
  EXPECT_EQ(cache.size(), 1u);
  // Host applied batch 0: two retirements drain the lives.
  cache.retire_batch(0);
  EXPECT_EQ(cache.size(), 1u);
  cache.retire_batch(0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EmbeddingCacheTest, RefreshResetsLifeCycle) {
  EmbeddingCache cache(1, 2);
  Matrix vals{{5.0f}};
  cache.insert({1}, vals, 0);
  cache.retire_batch(0);
  Matrix vals2{{6.0f}};
  cache.insert({1}, vals2, 3);  // refresh: new write, new lives
  cache.retire_batch(0);        // batch 3 not yet absorbed -> no drain
  cache.retire_batch(0);
  EXPECT_EQ(cache.size(), 1u);
  Matrix rows{{0.0f}};
  cache.sync({1}, rows);
  EXPECT_EQ(rows.at(0, 0), 6.0f);  // latest value
}

TEST(EmbeddingCacheTest, PeakSizeTracksHighWater) {
  EmbeddingCache cache(1, 1);
  Matrix v{{1.0f}, {2.0f}, {3.0f}};
  cache.insert({1, 2, 3}, v, 0);
  cache.retire_batch(0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.peak_size(), 3u);
}

TEST(RingAllReduceTest, SingleWorkerIsIdentity) {
  RingAllReduce ring(1);
  std::vector<float> data{1.0f, 2.0f};
  ring.allreduce_mean(0, data);
  EXPECT_EQ(data[0], 1.0f);
}

class RingAllReduceParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RingAllReduceParam, ComputesElementwiseMean) {
  const auto [workers, n] = GetParam();
  RingAllReduce ring(workers);
  std::vector<std::vector<float>> data(static_cast<std::size_t>(workers));
  std::vector<float> expected(static_cast<std::size_t>(n), 0.0f);
  Prng rng(9);
  for (int w = 0; w < workers; ++w) {
    data[static_cast<std::size_t>(w)].resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto v = static_cast<float>(rng.normal());
      data[static_cast<std::size_t>(w)][static_cast<std::size_t>(i)] = v;
      expected[static_cast<std::size_t>(i)] += v / workers;
    }
  }
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      ring.allreduce_mean(w, data[static_cast<std::size_t>(w)]);
    });
  }
  for (auto& t : threads) t.join();
  for (int w = 0; w < workers; ++w) {
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(data[static_cast<std::size_t>(w)][static_cast<std::size_t>(i)],
                  expected[static_cast<std::size_t>(i)], 1e-5f)
          << "worker " << w << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkerAndSizeSweep, RingAllReduceParam,
    ::testing::Values(std::make_pair(2, 10), std::make_pair(3, 7),
                      std::make_pair(4, 64), std::make_pair(4, 3),
                      std::make_pair(5, 1)));

TEST(RingAllReduceTest, RingBytesFormula) {
  EXPECT_DOUBLE_EQ(RingAllReduce::ring_bytes_per_worker(100.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(RingAllReduce::ring_bytes_per_worker(100.0, 4), 150.0);
}

// ---------------------------------------------------------------------
// Pipeline vs sequential-oracle equivalence.
// ---------------------------------------------------------------------

// Deterministic "loss": grad(row) = row - target, target fixed per index.
// Sequentially this is an exponential-decay iteration and every batch's
// gradient depends on the CURRENT parameter value, so stale reads change
// the result — exactly the RAW hazard the embedding cache must fix.
ComputeStep decay_compute() {
  return [](index_t /*batch_id*/, const std::vector<index_t>& indices,
            const Matrix& rows, Matrix& grads) {
    grads.resize(rows.rows(), rows.cols());
    for (index_t i = 0; i < rows.rows(); ++i) {
      const float target = static_cast<float>(indices[static_cast<std::size_t>(i)]);
      for (index_t j = 0; j < rows.cols(); ++j) {
        grads.at(i, j) = rows.at(i, j) - target;
      }
    }
  };
}

std::vector<std::vector<index_t>> overlapping_batches(index_t num_batches,
                                                      index_t table_rows,
                                                      std::uint64_t seed) {
  // Batches share indices aggressively so consecutive batches conflict.
  Prng rng(seed);
  std::vector<std::vector<index_t>> batches;
  for (index_t b = 0; b < num_batches; ++b) {
    std::vector<index_t> unique;
    for (index_t i = 0; i < table_rows; ++i) {
      if (rng.uniform() < 0.5) unique.push_back(i);
    }
    if (unique.empty()) unique.push_back(0);
    batches.push_back(std::move(unique));
  }
  return batches;
}

Matrix run_sequential_oracle(const std::vector<std::vector<index_t>>& batches,
                             index_t rows, index_t dim, float lr,
                             std::uint64_t seed) {
  Prng rng(seed);
  HostEmbeddingStore store(rows, dim, rng);
  const ComputeStep compute = decay_compute();
  Matrix pulled, grads;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    store.pull(batches[b], pulled);
    compute(static_cast<index_t>(b), batches[b], pulled, grads);
    store.apply_gradients(batches[b], grads, lr);
  }
  return store.weights();
}

class PipelineDepthTest : public ::testing::TestWithParam<index_t> {};

TEST_P(PipelineDepthTest, MatchesSequentialOracleWithCache) {
  const index_t depth = GetParam();
  const auto batches = overlapping_batches(40, 24, 77);
  const Matrix oracle = run_sequential_oracle(batches, 24, 3, 0.3f, 123);

  Prng rng(123);
  HostEmbeddingStore store(24, 3, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = depth;
  cfg.lr = 0.3f;
  cfg.use_embedding_cache = true;
  PipelineTrainer trainer(store, cfg);
  const PipelineStats stats = trainer.run(batches, decay_compute());
  EXPECT_EQ(stats.batches, 40);
  EXPECT_LT(Matrix::max_abs_diff(store.weights(), oracle), 1e-5f)
      << "pipelined training diverged from the sequential oracle at depth "
      << depth;
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineDepthTest,
                         ::testing::Values<index_t>(1, 2, 4, 8));

TEST(PipelineTrainerTest, DisablingCacheReproducesRawBug) {
  // With deep queues and no cache, prefetched rows are stale and the result
  // must deviate from the oracle (this is Fig. 10a's failure mode). Guards
  // against the test above passing vacuously.
  const auto batches = overlapping_batches(40, 24, 77);
  const Matrix oracle = run_sequential_oracle(batches, 24, 3, 0.3f, 123);

  Prng rng(123);
  HostEmbeddingStore store(24, 3, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 8;
  cfg.lr = 0.3f;
  cfg.use_embedding_cache = false;
  PipelineTrainer trainer(store, cfg);
  trainer.run(batches, decay_compute());
  EXPECT_GT(Matrix::max_abs_diff(store.weights(), oracle), 1e-3f);
}

TEST(PipelineTrainerTest, CachePatchesRowsUnderDeepPipelines) {
  const auto batches = overlapping_batches(30, 16, 5);
  Prng rng(9);
  HostEmbeddingStore store(16, 2, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 4;
  PipelineTrainer trainer(store, cfg);
  const PipelineStats stats = trainer.run(batches, decay_compute());
  EXPECT_GT(stats.rows_patched, 0);
  // LC management must bound the cache: never more than a few batches of
  // rows resident.
  EXPECT_LE(stats.cache_peak, 16u * (4 + 2));
}

TEST(PipelineTrainerTest, SequentialModeNeedsNoPatches) {
  // Depth-1 queues serialize server and worker; with gradients applied
  // before the next pull there is no staleness... but the server MAY
  // prefetch batch i+1 before batch i's gradient arrives, so patches can
  // still occur. What must hold: the result matches the oracle (covered by
  // the parameterized test) and the pipeline completes without deadlock.
  const auto batches = overlapping_batches(10, 8, 3);
  Prng rng(4);
  HostEmbeddingStore store(8, 2, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 1;
  PipelineTrainer trainer(store, cfg);
  const PipelineStats stats = trainer.run(batches, decay_compute());
  EXPECT_EQ(stats.batches, 10);
}

}  // namespace
}  // namespace elrec
