// Tests for the DLRM substrate: MLP and interaction finite-difference
// gradient checks, BCE loss, metrics, and end-to-end model training with
// dense / Eff-TT embedding tables (the drop-in-replacement property).
#include <gtest/gtest.h>

#include <cmath>

#include "core/eff_tt_table.hpp"
#include "tt/tt_svd.hpp"
#include "dlrm/dlrm_model.hpp"
#include "dlrm/loss.hpp"
#include "dlrm/metrics.hpp"
#include "embed/embedding_bag.hpp"

namespace elrec {
namespace {

TEST(Mlp, ForwardShapesAndDeterminism) {
  Prng rng(1);
  Mlp mlp({4, 8, 3}, rng);
  Matrix in(5, 4);
  in.fill_normal(rng);
  Matrix out1, out2;
  mlp.forward(in, out1);
  mlp.forward(in, out2);
  EXPECT_EQ(out1.rows(), 5);
  EXPECT_EQ(out1.cols(), 3);
  EXPECT_LT(Matrix::max_abs_diff(out1, out2), 1e-7f);
}

TEST(Mlp, InputDimMismatchThrows) {
  Prng rng(2);
  Mlp mlp({4, 3}, rng);
  Matrix in(5, 3);
  Matrix out;
  EXPECT_THROW(mlp.forward(in, out), Error);
}

// FD check of the weight gradients through L = sum(out .* W).
TEST(Mlp, WeightGradientsMatchFiniteDifferences) {
  Prng rng(3);
  const std::vector<index_t> sizes{3, 6, 4, 2};
  Mlp mlp(sizes, rng);
  Matrix in(4, 3);
  in.fill_normal(rng);
  Matrix lossw(4, 2);
  lossw.fill_normal(rng);

  auto loss = [&](Mlp& m) {
    Matrix out;
    m.forward(in, out);
    double l = 0.0;
    for (index_t i = 0; i < out.size(); ++i) {
      l += static_cast<double>(out.data()[i]) * lossw.data()[i];
    }
    return l;
  };

  Mlp updated = mlp;
  Matrix out, gin;
  updated.forward(in, out);
  updated.backward_and_update(lossw, gin, 1.0f);  // lr=1: grad = old - new

  const float eps = 1e-3f;
  for (int l = 0; l < 3; ++l) {
    Matrix& w = mlp.weight(l);
    for (index_t e = 0; e < w.size();
         e += std::max<index_t>(1, w.size() / 5)) {
      Mlp plus = mlp;
      Mlp minus = mlp;
      plus.weight(l).data()[e] += eps;
      minus.weight(l).data()[e] -= eps;
      const double fd = (loss(plus) - loss(minus)) / (2.0 * eps);
      const double analytic = static_cast<double>(w.data()[e]) -
                              updated.weight(l).data()[e];
      EXPECT_NEAR(analytic, fd, 5e-2 * (1.0 + std::abs(fd)))
          << "layer " << l << " entry " << e;
    }
  }
}

// FD check of the input gradient.
TEST(Mlp, InputGradientMatchesFiniteDifferences) {
  Prng rng(4);
  Mlp mlp({3, 5, 2}, rng);
  Matrix in(2, 3);
  in.fill_normal(rng);
  Matrix lossw(2, 2);
  lossw.fill_normal(rng);

  Mlp work = mlp;
  Matrix out, gin;
  work.forward(in, out);
  work.backward_and_update(lossw, gin, 0.0f);  // lr=0: params unchanged

  const float eps = 1e-3f;
  for (index_t e = 0; e < in.size(); ++e) {
    Matrix plus = in, minus = in;
    plus.data()[e] += eps;
    minus.data()[e] -= eps;
    Matrix op, om;
    Mlp m1 = mlp, m2 = mlp;
    m1.forward(plus, op);
    m2.forward(minus, om);
    double lp = 0.0, lm = 0.0;
    for (index_t i = 0; i < op.size(); ++i) {
      lp += static_cast<double>(op.data()[i]) * lossw.data()[i];
      lm += static_cast<double>(om.data()[i]) * lossw.data()[i];
    }
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(gin.data()[e], fd, 5e-2 * (1.0 + std::abs(fd)));
  }
}

TEST(Interaction, OutputLayoutAndValues) {
  FeatureInteraction inter(3, 2);
  Matrix f0{{1.0f, 0.0f}};
  Matrix f1{{0.0f, 2.0f}};
  Matrix f2{{3.0f, 4.0f}};
  Matrix out;
  inter.forward({&f0, &f1, &f2}, out);
  ASSERT_EQ(out.cols(), 2 + 3);
  EXPECT_FLOAT_EQ(out.at(0, 0), 1.0f);  // dense passthrough
  EXPECT_FLOAT_EQ(out.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 2), 0.0f);  // <f0, f1>
  EXPECT_FLOAT_EQ(out.at(0, 3), 3.0f);  // <f0, f2>
  EXPECT_FLOAT_EQ(out.at(0, 4), 8.0f);  // <f1, f2>
}

TEST(Interaction, BackwardMatchesFiniteDifferences) {
  Prng rng(5);
  const index_t b = 3, d = 4, F = 3;
  std::vector<Matrix> feats(static_cast<std::size_t>(F));
  std::vector<const Matrix*> ptrs;
  for (auto& f : feats) {
    f.resize(b, d);
    f.fill_normal(rng);
    ptrs.push_back(&f);
  }
  FeatureInteraction inter(F, d);
  Matrix out;
  inter.forward(ptrs, out);
  Matrix lossw(b, inter.output_dim());
  lossw.fill_normal(rng);
  std::vector<Matrix> grads;
  inter.backward(lossw, grads);

  auto loss_at = [&](index_t f, index_t e, float delta) {
    std::vector<Matrix> copy = feats;
    copy[static_cast<std::size_t>(f)].data()[e] += delta;
    std::vector<const Matrix*> p;
    for (auto& m : copy) p.push_back(&m);
    FeatureInteraction tmp(F, d);
    Matrix o;
    tmp.forward(p, o);
    double l = 0.0;
    for (index_t i = 0; i < o.size(); ++i) {
      l += static_cast<double>(o.data()[i]) * lossw.data()[i];
    }
    return l;
  };

  const float eps = 1e-3f;
  for (index_t f = 0; f < F; ++f) {
    for (index_t e = 0; e < b * d; e += 3) {
      const double fd =
          (loss_at(f, e, eps) - loss_at(f, e, -eps)) / (2.0 * eps);
      EXPECT_NEAR(grads[static_cast<std::size_t>(f)].data()[e], fd,
                  5e-2 * (1.0 + std::abs(fd)));
    }
  }
}

TEST(Loss, BceMatchesClosedForm) {
  Matrix logits{{0.0f}, {2.0f}};
  std::vector<float> labels{1.0f, 0.0f};
  const float loss = bce_with_logits_loss(logits, labels);
  // -log(0.5) and -log(1 - sigmoid(2)).
  const double expected =
      0.5 * (-std::log(0.5) - std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0))));
  EXPECT_NEAR(loss, expected, 1e-5);
}

TEST(Loss, BceStableAtExtremeLogits) {
  Matrix logits{{100.0f}, {-100.0f}};
  std::vector<float> labels{1.0f, 0.0f};
  const float loss = bce_with_logits_loss(logits, labels);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-4f);
}

TEST(Loss, GradientMatchesFiniteDifferences) {
  Matrix logits{{0.3f}, {-1.2f}, {2.5f}};
  std::vector<float> labels{1.0f, 0.0f, 1.0f};
  Matrix grad;
  bce_with_logits_backward(logits, labels, grad);
  const float eps = 1e-3f;
  for (index_t i = 0; i < 3; ++i) {
    Matrix p = logits, m = logits;
    p.at(i, 0) += eps;
    m.at(i, 0) -= eps;
    const double fd =
        (bce_with_logits_loss(p, labels) - bce_with_logits_loss(m, labels)) /
        (2.0 * eps);
    EXPECT_NEAR(grad.at(i, 0), fd, 1e-3);
  }
}

TEST(Metrics, AccuracyAndAuc) {
  const std::vector<float> probs{0.9f, 0.2f, 0.8f, 0.3f};
  const std::vector<float> labels{1.0f, 0.0f, 1.0f, 1.0f};
  EXPECT_NEAR(binary_accuracy(probs, labels), 0.75, 1e-9);
  // Perfect ranking: AUC 1 when all positives above negatives.
  const std::vector<float> s2{0.9f, 0.8f, 0.1f};
  const std::vector<float> l2{1.0f, 1.0f, 0.0f};
  EXPECT_NEAR(roc_auc(s2, l2), 1.0, 1e-9);
  // Anti-ranking: AUC 0.
  const std::vector<float> l3{0.0f, 0.0f, 1.0f};
  EXPECT_NEAR(roc_auc(s2, l3), 0.0, 1e-9);
}

TEST(Metrics, AucHandlesTies) {
  const std::vector<float> s{0.5f, 0.5f, 0.5f, 0.5f};
  const std::vector<float> l{1.0f, 0.0f, 1.0f, 0.0f};
  EXPECT_NEAR(roc_auc(s, l), 0.5, 1e-9);
}

std::vector<std::unique_ptr<IEmbeddingTable>> dense_tables(
    const std::vector<index_t>& rows, index_t dim, Prng& rng) {
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t r : rows) {
    tables.push_back(std::make_unique<EmbeddingBag>(r, dim, rng));
  }
  return tables;
}

MiniBatch toy_batch(Prng& rng, index_t b, index_t num_dense,
                    const std::vector<index_t>& rows) {
  MiniBatch batch;
  batch.dense.resize(b, num_dense);
  batch.dense.fill_normal(rng);
  for (index_t r : rows) {
    std::vector<index_t> idx;
    for (index_t s = 0; s < b; ++s) {
      idx.push_back(static_cast<index_t>(rng.uniform_index(
          static_cast<std::uint64_t>(r))));
    }
    batch.sparse.push_back(IndexBatch::one_per_sample(std::move(idx)));
  }
  batch.labels.resize(static_cast<std::size_t>(b));
  for (auto& l : batch.labels) l = rng.bernoulli(0.5) ? 1.0f : 0.0f;
  return batch;
}

TEST(DlrmModel, ForwardShapesAndPredictRange) {
  Prng rng(6);
  DlrmConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  const std::vector<index_t> rows{30, 50};
  DlrmModel model(cfg, dense_tables(rows, 8, rng), rng);
  const MiniBatch batch = toy_batch(rng, 10, 4, rows);
  Matrix logits;
  model.forward(batch, logits);
  EXPECT_EQ(logits.rows(), 10);
  EXPECT_EQ(logits.cols(), 1);
  std::vector<float> probs;
  model.predict(batch, probs);
  for (float p : probs) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(DlrmModel, TableDimMismatchThrows) {
  Prng rng(7);
  DlrmConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EmbeddingBag>(10, 4, rng));  // wrong dim
  EXPECT_THROW(DlrmModel(cfg, std::move(tables), rng), Error);
}

// Labels produced by a fixed linear rule over embeddings: training must
// drive the loss well below the untrained level.
TEST(DlrmModel, TrainingReducesLossOnLearnableData) {
  Prng rng(8);
  DlrmConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  const std::vector<index_t> rows{40, 60};
  DlrmModel model(cfg, dense_tables(rows, 8, rng), rng);

  Prng data_rng(123);
  auto make = [&] {
    MiniBatch b = toy_batch(data_rng, 64, 4, rows);
    for (index_t s = 0; s < 64; ++s) {
      // Deterministic teacher: each row carries a fixed preference; the
      // label sums the two tables' preferences (learnable through the
      // embeddings + top MLP).
      const index_t i0 = b.sparse[0].indices[static_cast<std::size_t>(s)];
      const index_t i1 = b.sparse[1].indices[static_cast<std::size_t>(s)];
      const int vote = (i0 % 2 != 0 ? 1 : -1) + (i1 % 3 == 0 ? 1 : -1);
      b.labels[static_cast<std::size_t>(s)] = vote > 0 ? 1.0f : 0.0f;
    }
    return b;
  };

  RunningMean head, tail;
  const int steps = 1500;
  for (int step = 0; step < steps; ++step) {
    const float loss = model.train_step(make(), 0.15f);
    if (step < 50) head.add(loss);
    if (step >= steps - 50) tail.add(loss);
  }
  // Labels are a deterministic function of the indices, so the loss should
  // drop far below its untrained level as the embeddings pick up each row's
  // preference.
  EXPECT_LT(tail.mean(), head.mean() * 0.55);
}

TEST(DlrmModel, EffTTTableIsDropInReplacement) {
  // Two models, one with dense EmbeddingBag and one with EffTTTable wrapping
  // an SVD of the SAME dense table: initial losses must agree closely, and
  // both must train (the API seam is the paper's drop-in claim).
  Prng rng(9);
  DlrmConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};

  Prng rng_dense(77);
  auto dense_table = std::make_unique<EmbeddingBag>(60, 8, rng_dense);
  const TTCores cores =
      tt_svd(dense_table->weights(), {4, 4, 4}, {2, 2, 2}, 64);
  auto tt_table = std::make_unique<EffTTTable>(60, cores);

  Prng rng_a(31), rng_b(31);  // identical MLP init
  std::vector<std::unique_ptr<IEmbeddingTable>> ta, tb;
  ta.push_back(std::move(dense_table));
  tb.push_back(std::move(tt_table));
  DlrmModel model_dense(cfg, std::move(ta), rng_a);
  DlrmModel model_tt(cfg, std::move(tb), rng_b);

  Prng data_rng(55);
  const MiniBatch batch = toy_batch(data_rng, 32, 4, {60});
  Matrix la, lb;
  model_dense.forward(batch, la);
  model_tt.forward(batch, lb);
  EXPECT_LT(Matrix::max_abs_diff(la, lb), 1e-2f);
}

TEST(DlrmModel, ParameterByteAccounting) {
  Prng rng(10);
  DlrmConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  const std::vector<index_t> rows{100};
  DlrmModel model(cfg, dense_tables(rows, 8, rng), rng);
  EXPECT_EQ(model.embedding_bytes(), 100u * 8u * sizeof(float));
  EXPECT_GT(model.parameter_bytes(), model.embedding_bytes());
}

}  // namespace
}  // namespace elrec
