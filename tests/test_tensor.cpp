// Unit + property tests for the tensor substrate: Matrix, GEMM (all
// transpose combinations against a naive reference), batched GEMM with
// pointer-gap skipping, gemv, and vector ops.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <tuple>

#include "obs/metrics.hpp"
#include "tensor/batched_gemm.hpp"
#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"
#include "tensor/vector_ops.hpp"

namespace elrec {
namespace {

// Naive triple-loop reference used to validate the blocked kernels.
Matrix reference_gemm(Trans ta, Trans tb, const Matrix& a, const Matrix& b,
                      float alpha, float beta, const Matrix& c0) {
  const index_t m = ta == Trans::kNo ? a.rows() : a.cols();
  const index_t k = ta == Trans::kNo ? a.cols() : a.rows();
  const index_t n = tb == Trans::kNo ? b.cols() : b.rows();
  Matrix c = c0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index_t kk = 0; kk < k; ++kk) {
        const float av = ta == Trans::kNo ? a.at(i, kk) : a.at(kk, i);
        const float bv = tb == Trans::kNo ? b.at(kk, j) : b.at(j, kk);
        acc += static_cast<double>(av) * bv;
      }
      c.at(i, j) = beta * c0.at(i, j) + alpha * static_cast<float>(acc);
    }
  }
  return c;
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}};
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.at(2, 1), 6.0f);
  EXPECT_EQ(m.row(1)[0], 3.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0f, 2.0f}, {3.0f}}), Error);
}

TEST(Matrix, ResizeZeroFills) {
  Matrix m(2, 2);
  m.fill(5.0f);
  m.resize(3, 3);
  for (index_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(Matrix, FillNormalStats) {
  Prng rng(1);
  Matrix m(200, 200);
  m.fill_normal(rng, 1.0f, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (index_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  const double n = static_cast<double>(m.size());
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.15);
}

TEST(Matrix, XavierBounds) {
  Prng rng(2);
  Matrix m(64, 32);
  m.fill_xavier(rng);
  const float bound = std::sqrt(6.0f / (64 + 32));
  for (index_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), bound);
  }
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m{{3.0f, 0.0f}, {0.0f, 4.0f}};
  EXPECT_FLOAT_EQ(m.frobenius_norm(), 5.0f);
}

struct GemmCase {
  index_t m, n, k;
  Trans ta, tb;
  float alpha, beta;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const GemmCase& p = GetParam();
  Prng rng(99);
  Matrix a(p.ta == Trans::kNo ? p.m : p.k, p.ta == Trans::kNo ? p.k : p.m);
  Matrix b(p.tb == Trans::kNo ? p.k : p.n, p.tb == Trans::kNo ? p.n : p.k);
  Matrix c(p.m, p.n);
  a.fill_normal(rng);
  b.fill_normal(rng);
  c.fill_normal(rng);

  const Matrix expected = reference_gemm(p.ta, p.tb, a, b, p.alpha, p.beta, c);
  gemm(p.ta, p.tb, p.m, p.n, p.k, p.alpha, a.data(), a.cols(), b.data(),
       b.cols(), p.beta, c.data(), c.cols());
  EXPECT_LT(Matrix::max_abs_diff(c, expected),
            1e-3f * (1.0f + static_cast<float>(p.k)));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GemmParamTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kNo, 1.0f, 0.0f},
        GemmCase{16, 16, 16, Trans::kNo, Trans::kNo, 2.0f, 1.0f},
        GemmCase{65, 130, 257, Trans::kNo, Trans::kNo, 1.0f, 0.5f},
        GemmCase{128, 64, 300, Trans::kNo, Trans::kNo, -1.0f, 0.0f},
        GemmCase{3, 5, 7, Trans::kYes, Trans::kNo, 1.0f, 0.0f},
        GemmCase{33, 17, 65, Trans::kYes, Trans::kNo, 1.5f, 1.0f},
        GemmCase{3, 5, 7, Trans::kNo, Trans::kYes, 1.0f, 0.0f},
        GemmCase{40, 80, 24, Trans::kNo, Trans::kYes, 1.0f, 2.0f},
        GemmCase{3, 5, 7, Trans::kYes, Trans::kYes, 1.0f, 0.0f},
        GemmCase{19, 23, 29, Trans::kYes, Trans::kYes, 0.5f, 0.25f}));

TEST(Gemm, ZeroKWithBetaScalesC) {
  Matrix c{{1.0f, 2.0f}, {3.0f, 4.0f}};
  gemm(Trans::kNo, Trans::kNo, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 1, 0.5f,
       c.data(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 2.0f);
}

TEST(Gemm, StridedViewsMultiplyCorrectly) {
  // Multiply a 2x2 sub-block of a 4x4 matrix (lda = 4).
  Prng rng(5);
  Matrix big(4, 4);
  big.fill_normal(rng);
  Matrix b{{1.0f, 0.0f}, {0.0f, 1.0f}};
  Matrix c(2, 2);
  gemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0f, big.row(1) + 1, 4, b.data(), 2,
       0.0f, c.data(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0), big.at(1, 1));
  EXPECT_FLOAT_EQ(c.at(1, 1), big.at(2, 2));
}

TEST(Matmul, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c;
  EXPECT_THROW(matmul(a, b, c), Error);
}

TEST(Gemv, MatchesGemm) {
  Prng rng(6);
  Matrix a(7, 5);
  a.fill_normal(rng);
  std::vector<float> x(5), y(7, 0.0f);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  gemv(Trans::kNo, 7, 5, 1.0f, a.data(), 5, x.data(), 0.0f, y.data());
  for (index_t i = 0; i < 7; ++i) {
    float acc = 0.0f;
    for (index_t j = 0; j < 5; ++j) acc += a.at(i, j) * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], acc, 1e-4f);
  }
}

TEST(Gemv, TransposedMatchesReference) {
  Prng rng(8);
  Matrix a(4, 6);
  a.fill_normal(rng);
  std::vector<float> x(4), y(6, 1.0f);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  gemv(Trans::kYes, 4, 6, 2.0f, a.data(), 6, x.data(), 0.0f, y.data());
  for (index_t j = 0; j < 6; ++j) {
    float acc = 0.0f;
    for (index_t i = 0; i < 4; ++i) acc += a.at(i, j) * x[static_cast<std::size_t>(i)];
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], 2.0f * acc, 1e-4f);
  }
}

TEST(BatchedGemm, ComputesEveryEntry) {
  Prng rng(7);
  const index_t m = 4, n = 6, k = 5, batch = 9;
  std::vector<Matrix> as(batch), bs(batch), cs(batch);
  std::vector<const float*> pa, pb;
  std::vector<float*> pc;
  for (index_t i = 0; i < batch; ++i) {
    as[static_cast<std::size_t>(i)].resize(m, k);
    bs[static_cast<std::size_t>(i)].resize(k, n);
    cs[static_cast<std::size_t>(i)].resize(m, n);
    as[static_cast<std::size_t>(i)].fill_normal(rng);
    bs[static_cast<std::size_t>(i)].fill_normal(rng);
    pa.push_back(as[static_cast<std::size_t>(i)].data());
    pb.push_back(bs[static_cast<std::size_t>(i)].data());
    pc.push_back(cs[static_cast<std::size_t>(i)].data());
  }
  BatchedGemmShape shape{m, n, k, k, n, n, 1.0f, 0.0f, Trans::kNo, Trans::kNo};
  batched_gemm(shape, pa, pb, pc);
  for (index_t i = 0; i < batch; ++i) {
    Matrix expected;
    matmul(as[static_cast<std::size_t>(i)], bs[static_cast<std::size_t>(i)],
           expected);
    EXPECT_LT(Matrix::max_abs_diff(cs[static_cast<std::size_t>(i)], expected),
              1e-4f);
  }
}

TEST(BatchedGemm, NullGapsAreSkippedAndCounted) {
  Prng rng(9);
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a.fill_normal(rng);
  b.fill_normal(rng);
  std::vector<const float*> pa{a.data(), a.data(), a.data()};
  std::vector<const float*> pb{b.data(), b.data(), b.data()};
  Matrix c2(2, 2);
  std::vector<float*> pc{c.data(), nullptr, c2.data()};

  batched_gemm_stats().reset();
  BatchedGemmShape shape{2, 2, 2, 2, 2, 2, 1.0f, 0.0f, Trans::kNo, Trans::kNo};
  batched_gemm(shape, pa, pb, pc);
  const auto& stats = batched_gemm_stats();
  EXPECT_EQ(stats.launches.load(), 1u);
  EXPECT_EQ(stats.products.load(), 2u);
  EXPECT_EQ(stats.skipped.load(), 1u);
  EXPECT_EQ(stats.flops.load(), 2u * 2 * 2 * 2 * 2);
}

TEST(BatchedGemm, StatsAreProcessWideAcrossThreads) {
  // The counters are a single process-wide accumulator (relaxed atomics),
  // not thread_local: launches issued from a worker thread must be visible
  // from the test thread, and concurrent launches must not lose counts.
  Prng rng(10);
  Matrix a(2, 2), b(2, 2);
  a.fill_normal(rng);
  b.fill_normal(rng);
  BatchedGemmShape shape{2, 2, 2, 2, 2, 2, 1.0f, 0.0f, Trans::kNo, Trans::kNo};

  batched_gemm_stats().reset();
  constexpr int kThreads = 4;
  constexpr int kLaunchesPerThread = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      Matrix c(2, 2);
      std::vector<const float*> pa{a.data(), a.data()};
      std::vector<const float*> pb{b.data(), b.data()};
      std::vector<float*> pc{c.data(), c.data()};
      for (int i = 0; i < kLaunchesPerThread; ++i) {
        batched_gemm(shape, pa, pb, pc);
      }
    });
  }
  for (auto& w : workers) w.join();

  const auto& stats = batched_gemm_stats();
  EXPECT_EQ(stats.launches.load(), kThreads * kLaunchesPerThread);
  EXPECT_EQ(stats.products.load(), kThreads * kLaunchesPerThread * 2u);
  EXPECT_EQ(stats.skipped.load(), 0u);
  EXPECT_EQ(stats.flops.load(),
            kThreads * kLaunchesPerThread * 2u * (2u * 2 * 2 * 2));

  // The stats ARE registry counters now — the same totals must be readable
  // through the registry under the tensor.batched_gemm.* names, and a
  // snapshot taken here must carry them.
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counter("tensor.batched_gemm.launches").value(),
            static_cast<std::uint64_t>(kThreads * kLaunchesPerThread));
  const obs::MetricsSnapshot snap = reg.snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "tensor.batched_gemm.products") {
      found = true;
      EXPECT_EQ(value,
                static_cast<std::uint64_t>(kThreads * kLaunchesPerThread * 2));
    }
  }
  EXPECT_TRUE(found);
}

TEST(BatchedGemm, ScopedCountersNestCleanly) {
  // Nested ScopedBatchedGemmCounters are snapshot-deltas over the same
  // process-wide counters: the inner scope sees only launches issued inside
  // it, the outer scope sees inner + its own — nothing is double-counted.
  Prng rng(11);
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a.fill_normal(rng);
  b.fill_normal(rng);
  std::vector<const float*> pa{a.data()};
  std::vector<const float*> pb{b.data()};
  std::vector<float*> pc{c.data()};
  BatchedGemmShape shape{2, 2, 2, 2, 2, 2, 1.0f, 0.0f, Trans::kNo, Trans::kNo};

  const ScopedBatchedGemmCounters outer;
  batched_gemm(shape, pa, pb, pc);  // outer-only launch
  {
    const ScopedBatchedGemmCounters inner;
    batched_gemm(shape, pa, pb, pc);
    batched_gemm(shape, pa, pb, pc);
    const BatchedGemmCounts d = inner.delta();
    EXPECT_EQ(d.launches, 2u);
    EXPECT_EQ(d.products, 2u);
  }
  const BatchedGemmCounts d = outer.delta();
  EXPECT_EQ(d.launches, 3u);  // 1 outer + 2 inner, counted once each
  EXPECT_EQ(d.products, 3u);
  EXPECT_EQ(d.flops, 3u * 2 * 2 * 2 * 2);
}

TEST(BatchedGemm, MismatchedListsThrow) {
  std::vector<const float*> pa(2), pb(3);
  std::vector<float*> pc(2);
  BatchedGemmShape shape{1, 1, 1, 1, 1, 1, 1.0f, 0.0f, Trans::kNo, Trans::kNo};
  EXPECT_THROW(batched_gemm(shape, pa, pb, pc), Error);
}

TEST(VectorOps, AxpyCopyScaleDotSum) {
  std::vector<float> x{1.0f, 2.0f, 3.0f};
  std::vector<float> y{1.0f, 1.0f, 1.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[2], 7.0f);
  scale(0.5f, y);
  EXPECT_FLOAT_EQ(y[0], 1.5f);
  EXPECT_FLOAT_EQ(dot(x, x), 14.0f);
  EXPECT_FLOAT_EQ(sum(x), 6.0f);
  std::vector<float> z(3);
  copy(x, z);
  EXPECT_EQ(z[1], 2.0f);
}

TEST(VectorOps, ReluAndBackward) {
  std::vector<float> x{-1.0f, 0.0f, 2.0f};
  std::vector<float> act = x;
  relu_inplace(act);
  EXPECT_FLOAT_EQ(act[0], 0.0f);
  EXPECT_FLOAT_EQ(act[2], 2.0f);
  std::vector<float> dy{1.0f, 1.0f, 1.0f}, dx(3);
  relu_backward(x, dy, dx);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(VectorOps, SigmoidStableAtExtremes) {
  EXPECT_NEAR(sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(sigmoid(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(sigmoid(-100.0f), 0.0f, 1e-6f);
  EXPECT_GT(sigmoid(-100.0f), 0.0f);  // no NaN / underflow to exactly 0 is ok
}

}  // namespace
}  // namespace elrec
