// Online-promotion suite: zero-downtime generation swaps behind the
// IRankingBackend seam.
//
// Fast tests (always on) pin the swap semantics: new bits serve after a
// swap, displaced generations drain by refcount, shape mismatches are
// rejected, and a promoter killed at the commit fault site leaves the old
// generation serving with the tier recoverable.
//
// The soak tests (OnlinePromotionSoak.*) are the headline harness: clients
// drive sustained Zipf traffic through a RequestScheduler while the online
// trainer keeps learning on a drifting stream and the promoter hot-swaps
// >= 3 generations underneath them, asserting
//   (a) no torn model — every response is bitwise-equal to one of the
//       adjacent frozen generations it could have been served by,
//   (b) p99 does not spike across a swap beyond a fixed budget,
//   (c) zero accepted-request loss,
//   (d) a promoter killed mid-swap (ELREC_FAULT_SITES grammar) leaves the
//       old generation serving and the next promotion recovers.
// They are long and sanitizer-heavy, so they GTEST_SKIP unless ELREC_SOAK
// is set; the dedicated "soak" ctest entry (tests/CMakeLists.txt) sets it,
// and tier-1 excludes that label.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.hpp"
#include "core/eff_tt_table.hpp"
#include "data/drift.hpp"
#include "data/stats.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "embed/embedding_bag.hpp"
#include "obs/metrics.hpp"
#include "online/hot_swap_backend.hpp"
#include "online/model_promoter.hpp"
#include "online/online_trainer.hpp"
#include "serve/request_scheduler.hpp"

namespace elrec {
namespace {

constexpr index_t kRowsTT = 800;
constexpr index_t kRowsBag = 60;
constexpr index_t kDim = 8;
constexpr index_t kDense = 3;

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "online";
  spec.num_dense = kDense;
  spec.table_rows = {kRowsTT, kRowsBag};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = kDense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EffTTTable>(
      kRowsTT, TTShape::balanced(kRowsTT, kDim, 3, 4), rng));
  tables.push_back(std::make_unique<EmbeddingBag>(kRowsBag, kDim, rng));
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

ModelPromoter::ModelFactory model_factory() {
  return [] { return make_model(12345); };  // load overwrites the init
}

std::string fresh_checkpoint_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("elrec_online_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Trains a few batches and writes `dir/name`; returns the path.
std::string seed_checkpoint(const std::string& dir, const std::string& name,
                            std::uint64_t seed, int batches) {
  auto model = make_model(seed);
  SyntheticDataset data(tiny_spec(), seed + 1);
  for (int b = 0; b < batches; ++b) {
    model->train_step(data.next_batch(64), 0.05f);
  }
  const std::string path = dir + "/" + name;
  save_dlrm_model(*model, path);
  return path;
}

std::shared_ptr<ServingGeneration> make_local_generation(
    std::uint64_t id, const std::string& ckpt,
    const InferenceSessionConfig& cfg) {
  auto gen = std::make_shared<ServingGeneration>();
  gen->id = id;
  gen->checkpoint_path = ckpt;
  auto model = make_model(999);
  load_dlrm_model(*model, ckpt);
  gen->session = std::make_unique<InferenceSession>(std::move(model), cfg);
  return gen;
}

/// Uncached frozen reference session for one checkpoint — the bitwise
/// ground truth a served response is compared against.
std::unique_ptr<InferenceSession> reference_session(const std::string& ckpt) {
  auto model = make_model(31337);
  load_dlrm_model(*model, ckpt);
  return std::make_unique<InferenceSession>(std::move(model));
}

/// Splits a generator batch into per-sample ranking requests (labels
/// dropped) — Zipf-shaped serving traffic.
std::vector<RankingRequest> requests_from_batch(const MiniBatch& mb) {
  std::vector<RankingRequest> out;
  out.reserve(static_cast<std::size_t>(mb.batch_size()));
  for (index_t i = 0; i < mb.batch_size(); ++i) {
    RankingRequest req;
    req.dense.resize(static_cast<std::size_t>(kDense));
    for (index_t j = 0; j < kDense; ++j) {
      req.dense[static_cast<std::size_t>(j)] = mb.dense.at(i, j);
    }
    req.sparse.resize(mb.sparse.size());
    for (std::size_t t = 0; t < mb.sparse.size(); ++t) {
      const IndexBatch& ib = mb.sparse[t];
      const index_t lo = ib.offsets[static_cast<std::size_t>(i)];
      const index_t hi = ib.offsets[static_cast<std::size_t>(i) + 1];
      req.sparse[t].assign(ib.indices.begin() + lo, ib.indices.begin() + hi);
    }
    out.push_back(std::move(req));
  }
  return out;
}

MiniBatch to_minibatch(const RankingRequest& r) {
  MiniBatch mb;
  mb.dense.resize(1, kDense);
  for (index_t j = 0; j < kDense; ++j) {
    mb.dense.at(0, j) = r.dense[static_cast<std::size_t>(j)];
  }
  mb.sparse.resize(r.sparse.size());
  for (std::size_t t = 0; t < r.sparse.size(); ++t) {
    mb.sparse[t].indices = r.sparse[t];
    mb.sparse[t].offsets = {0, static_cast<index_t>(r.sparse[t].size())};
  }
  return mb;
}

bool soak_enabled() {
  const char* v = std::getenv("ELREC_SOAK");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

// ---------------------------------------------------------------------------
// Fast semantics tests (always on).

TEST(HotSwapBackend, SwapServesNewGenerationBitsAndDrainsOld) {
  const std::string dir = fresh_checkpoint_dir("swap_bits");
  const std::string ckpt_a = seed_checkpoint(dir, "gen_a.ckpt", 100, 5);
  const std::string ckpt_b = seed_checkpoint(dir, "gen_b.ckpt", 200, 25);

  InferenceSessionConfig cfg;
  cfg.cache.capacity = 64;
  cfg.cache.admit_min_freq = 1;
  HotSwapBackend backend(make_local_generation(0, ckpt_a, cfg));
  EXPECT_EQ(backend.generation_id(), 0u);

  auto ref_a = reference_session(ckpt_a);
  auto ref_b = reference_session(ckpt_b);
  auto ref_state_a = ref_a->make_worker_state();
  auto ref_state_b = ref_b->make_worker_state();

  SyntheticDataset data(tiny_spec(), 9);
  auto state = backend.make_state();
  std::vector<float> got, want;

  const MiniBatch before = data.eval_batch(32, 1);
  backend.predict(before, got, *state);
  ref_a->predict(before, want, *ref_state_a);
  EXPECT_EQ(got, want) << "pre-swap bits differ from generation A";

  auto displaced = backend.swap(make_local_generation(1, ckpt_b, cfg));
  EXPECT_EQ(backend.generation_id(), 1u);
  ASSERT_NE(displaced, nullptr);
  EXPECT_EQ(displaced->id, 0u);
  // No predict in flight: the handle is already unique and can be retired.
  EXPECT_EQ(displaced.use_count(), 1);
  displaced->retire();
  displaced.reset();

  // The same worker state must lazily rebind to the new generation.
  const MiniBatch after = data.eval_batch(32, 2);
  backend.predict(after, got, *state);
  ref_b->predict(after, want, *ref_state_b);
  EXPECT_EQ(got, want) << "post-swap bits differ from generation B";

  std::filesystem::remove_all(dir);
}

TEST(HotSwapBackend, SwapRejectsShapeMismatchAndKeepsServing) {
  const std::string dir = fresh_checkpoint_dir("swap_shape");
  const std::string ckpt = seed_checkpoint(dir, "gen.ckpt", 300, 5);
  HotSwapBackend backend(make_local_generation(0, ckpt, {}));

  // A generation with a different table layout must be refused outright.
  auto bad = std::make_shared<ServingGeneration>();
  bad->id = 1;
  {
    Prng rng(7);
    DlrmConfig cfg;
    cfg.num_dense = kDense;
    cfg.embedding_dim = kDim;
    cfg.bottom_hidden = {16};
    cfg.top_hidden = {16};
    std::vector<std::unique_ptr<IEmbeddingTable>> tables;
    tables.push_back(std::make_unique<EmbeddingBag>(kRowsBag, kDim, rng));
    tables.push_back(std::make_unique<EmbeddingBag>(kRowsBag, kDim, rng));
    bad->session = std::make_unique<InferenceSession>(
        std::make_unique<DlrmModel>(cfg, std::move(tables), rng));
  }
  EXPECT_THROW((void)backend.swap(std::move(bad)), Error);
  EXPECT_EQ(backend.generation_id(), 0u);

  auto state = backend.make_state();
  std::vector<float> probs;
  SyntheticDataset data(tiny_spec(), 4);
  EXPECT_NO_THROW(backend.predict(data.eval_batch(8, 0), probs, *state));
  std::filesystem::remove_all(dir);
}

TEST(ModelPromoter, CommitFaultLeavesOldGenerationServingAndRecovers) {
  const std::string dir = fresh_checkpoint_dir("commit_fault");
  const std::string ckpt_a = seed_checkpoint(dir, "gen_a.ckpt", 400, 5);
  const std::string ckpt_b = seed_checkpoint(dir, "gen_b.ckpt", 500, 25);

  ModelPromoterConfig pcfg;
  pcfg.session.cache.capacity = 64;
  pcfg.session.cache.admit_min_freq = 1;
  pcfg.warm_top_k = 16;
  HotSwapBackend backend(make_local_generation(0, ckpt_a, pcfg.session));
  ModelPromoter promoter(backend, model_factory(), pcfg);

  AccessStats stats(tiny_spec().table_rows);
  SyntheticDataset data(tiny_spec(), 21);
  for (int b = 0; b < 10; ++b) stats.observe(data.next_batch(64));

  // Kill the promoter at the commit point via the production grammar.
  auto& inj = FaultInjector::instance();
  ASSERT_EQ(inj.arm_from_string("online.promote.commit:1:error:1"), 1u);
  EXPECT_THROW((void)promoter.promote(ckpt_b, &stats), InjectedFault);
  inj.reset();

  // Old generation still serving, bitwise.
  EXPECT_EQ(backend.generation_id(), 0u);
  EXPECT_EQ(promoter.stats().failed, 1u);
  EXPECT_EQ(promoter.stats().promotions, 0u);
  auto ref_a = reference_session(ckpt_a);
  auto ref_state = ref_a->make_worker_state();
  auto state = backend.make_state();
  std::vector<float> got, want;
  const MiniBatch eval = data.eval_batch(32, 5);
  backend.predict(eval, got, *state);
  ref_a->predict(eval, want, *ref_state);
  EXPECT_EQ(got, want);

  // The tier is recoverable: the next promote of the same checkpoint lands.
  const std::uint64_t id = promoter.promote(ckpt_b, &stats);
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(backend.generation_id(), 1u);
  EXPECT_EQ(promoter.stats().promotions, 1u);
  EXPECT_EQ(promoter.stats().drain_timeouts, 0u);
  auto ref_b = reference_session(ckpt_b);
  auto ref_state_b = ref_b->make_worker_state();
  backend.predict(eval, got, *state);
  ref_b->predict(eval, want, *ref_state_b);
  EXPECT_EQ(got, want);
  std::filesystem::remove_all(dir);
}

TEST(OnlineTrainer, EmitsLoadableCheckpointsAndFeedsStats) {
  const std::string dir = fresh_checkpoint_dir("trainer");
  DriftScheduleConfig drift;
  drift.period_batches = 16;
  DriftingDataset stream(tiny_spec(), 77, drift);

  OnlineTrainerConfig tcfg;
  tcfg.batch_size = 64;
  tcfg.checkpoint_every_n = 10;
  tcfg.checkpoint_dir = dir;
  OnlineTrainer trainer(make_model(800), stream, tcfg);

  trainer.train_batches(20);  // two scheduled emits
  const auto s = trainer.stats();
  EXPECT_EQ(s.batches, 20u);
  EXPECT_EQ(s.checkpoints, 2u);
  EXPECT_EQ(trainer.latest_checkpoint(), dir + "/gen_1.ckpt");
  EXPECT_GT(trainer.access_stats().total(0), 0u);

  // Latest checkpoint restores and predicts identically to the live model.
  auto restored = make_model(900);
  ASSERT_NO_THROW(load_dlrm_model(*restored, trainer.latest_checkpoint()));
  const MiniBatch eval = stream.eval_batch(32, 1);
  std::vector<float> a, b;
  trainer.model().predict(eval, a);
  restored->predict(eval, b);
  EXPECT_EQ(a, b);

  // A failed emit (online.checkpoint fault) leaves the previous checkpoint
  // as latest; train_batches propagates in synchronous mode.
  auto& inj = FaultInjector::instance();
  ASSERT_EQ(inj.arm_from_string("online.checkpoint:1:error:1"), 1u);
  EXPECT_THROW(trainer.train_batches(10), InjectedFault);
  inj.reset();
  EXPECT_EQ(trainer.latest_checkpoint(), dir + "/gen_1.ckpt");
  ASSERT_NO_THROW(load_dlrm_model(*restored, trainer.latest_checkpoint()));
  std::filesystem::remove_all(dir);
}

TEST(OnlineTrainer, BackgroundLoopInvokesHookAndSurvivesEmitFaults) {
  const std::string dir = fresh_checkpoint_dir("trainer_bg");
  DriftScheduleConfig drift;
  drift.period_batches = 16;
  DriftingDataset stream(tiny_spec(), 78, drift);

  OnlineTrainerConfig tcfg;
  tcfg.batch_size = 32;
  tcfg.checkpoint_every_n = 5;
  tcfg.checkpoint_dir = dir;
  OnlineTrainer trainer(make_model(801), stream, tcfg);

  // Every third emit dies at the fault site; the loop must absorb it.
  auto& inj = FaultInjector::instance();
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 0.34;
  inj.arm("online.checkpoint", spec);

  std::atomic<int> hooks{0};
  std::atomic<std::uint64_t> last_seq{0};
  trainer.start([&](const std::string& path, std::uint64_t seq) {
    EXPECT_FALSE(path.empty());
    last_seq.store(seq, std::memory_order_relaxed);
    hooks.fetch_add(1, std::memory_order_relaxed);
  });
  while (hooks.load(std::memory_order_relaxed) < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  trainer.stop();
  inj.reset();

  const auto s = trainer.stats();
  EXPECT_GE(s.checkpoints, 3u);
  EXPECT_GT(s.checkpoint_failures, 0u) << "fault site never fired";
  EXPECT_FALSE(trainer.latest_checkpoint().empty());
  auto restored = make_model(901);
  EXPECT_NO_THROW(load_dlrm_model(*restored, trainer.latest_checkpoint()));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Soak harness (ELREC_SOAK-gated; driven by the "soak" ctest entry).

struct ClientRecord {
  RankingRequest req;
  std::uint64_t gen_before = 0;  // serving id read just before submit
  std::uint64_t gen_after = 0;   // serving id read right after the response
  float prob = 0.0f;
  double latency_us = 0.0;
  bool during_promotion = false;
};

struct SoakClientArgs {
  RequestScheduler* sched = nullptr;
  const HotSwapBackend* backend = nullptr;
  const std::atomic<bool>* stop = nullptr;
  const std::atomic<bool>* promoting = nullptr;
  std::uint64_t seed = 0;
};

/// One closed-loop Zipf client: draws generator batches, submits each
/// sample, blocks on the response, records everything for post-hoc
/// verification. Returns its records; shed submissions are retried (shed
/// is back-pressure, not loss).
std::vector<ClientRecord> run_soak_client(const SoakClientArgs& args) {
  std::vector<ClientRecord> records;
  SyntheticDataset data(tiny_spec(), args.seed);
  while (!args.stop->load(std::memory_order_acquire)) {
    const std::vector<RankingRequest> reqs =
        requests_from_batch(data.next_batch(8));
    for (const RankingRequest& req : reqs) {
      ClientRecord rec;
      rec.req = req;
      rec.during_promotion =
          args.promoting->load(std::memory_order_acquire);
      rec.gen_before = args.backend->generation_id();
      std::future<RankingResponse> fut;
      SubmitStatus st = args.sched->submit(req, fut);
      while (st == SubmitStatus::kOverloaded) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        st = args.sched->submit(req, fut);
      }
      if (st == SubmitStatus::kClosed) return records;
      const RankingResponse resp = fut.get();
      rec.gen_after = args.backend->generation_id();
      rec.prob = resp.prob;
      rec.latency_us = resp.queue_us + resp.compute_us;
      records.push_back(std::move(rec));
    }
  }
  return records;
}

/// Post-hoc torn-model check: every response must be bitwise-equal to one
/// of the frozen generations that were serving between its submit and its
/// completion (usually one, two across a swap). Returns mismatches.
int verify_no_torn_responses(
    const std::vector<std::vector<ClientRecord>>& all_records,
    const std::map<std::uint64_t, std::unique_ptr<InferenceSession>>& refs) {
  int mismatches = 0;
  std::map<std::uint64_t, std::unique_ptr<InferenceSession::WorkerState>>
      states;
  for (const auto& [id, ref] : refs) states[id] = ref->make_worker_state();
  std::vector<float> probs;
  for (const auto& records : all_records) {
    for (const ClientRecord& rec : records) {
      bool matched = false;
      for (std::uint64_t g = rec.gen_before;
           g <= rec.gen_after && !matched; ++g) {
        const auto it = refs.find(g);
        if (it == refs.end()) continue;
        // Batch-size invariance makes the batch-of-1 reference exact for a
        // response that rode any micro-batch.
        it->second->predict(to_minibatch(rec.req), probs, *states.at(g));
        matched = probs.size() == 1 && probs[0] == rec.prob;
      }
      if (!matched) ++mismatches;
    }
  }
  return mismatches;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// The p99-across-a-swap budget: promotion-phase p99 may not exceed the
// steady-state p99 by more than 8x, with an absolute floor that keeps the
// check meaningful under sanitizer slowdown (every phase slows together, so
// the ratio is the signal).
void expect_p99_within_budget(
    const std::vector<std::vector<ClientRecord>>& all_records) {
  std::vector<double> steady, promo;
  for (const auto& records : all_records) {
    for (const ClientRecord& rec : records) {
      (rec.during_promotion ? promo : steady).push_back(rec.latency_us);
    }
  }
  ASSERT_GT(steady.size(), 100u) << "not enough steady-state samples";
  if (promo.size() < 20) {
    GTEST_LOG_(INFO) << "only " << promo.size()
                     << " promotion-phase samples; budget check skipped";
    return;
  }
  const double p99_steady = percentile(steady, 0.99);
  const double p99_promo = percentile(promo, 0.99);
  const double budget = std::max(50000.0, 8.0 * p99_steady);
  EXPECT_LE(p99_promo, budget)
      << "p99 spiked across the swap: steady=" << p99_steady
      << "us promo=" << p99_promo << "us";
}

TEST(OnlinePromotionSoak, LocalTierSurvivesPromotionsUnderSustainedLoad) {
  if (!soak_enabled()) GTEST_SKIP() << "set ELREC_SOAK=1 to run the soak";
  const std::string dir = fresh_checkpoint_dir("soak_local");

  DriftScheduleConfig drift;
  drift.period_batches = 16;
  drift.max_step_fraction = 0.08;
  DriftingDataset stream(tiny_spec(), 1001, drift);
  OnlineTrainerConfig tcfg;
  tcfg.batch_size = 64;
  tcfg.checkpoint_every_n = 0;  // emits are driven explicitly per round
  tcfg.checkpoint_dir = dir;
  OnlineTrainer trainer(make_model(1), stream, tcfg);

  trainer.train_batches(30);
  const std::string ckpt0 = trainer.write_checkpoint();

  ModelPromoterConfig pcfg;
  pcfg.session.cache.capacity = 128;
  pcfg.session.cache.admit_min_freq = 1;
  pcfg.warm_top_k = 64;
  HotSwapBackend backend(make_local_generation(0, ckpt0, pcfg.session));
  ModelPromoter promoter(backend, model_factory(), pcfg);

  std::map<std::uint64_t, std::unique_ptr<InferenceSession>> refs;
  refs[0] = reference_session(ckpt0);

  RequestSchedulerConfig scfg;
  scfg.num_workers = 3;
  scfg.max_batch = 8;
  scfg.max_wait_us = 100;
  scfg.queue_capacity = 256;
  RequestScheduler sched(backend, scfg);

  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t promos_before = reg.counter("online.promotions").value();
  const std::size_t swaps_before = reg.histogram("online.swap_us").count();

  std::atomic<bool> stop{false};
  std::atomic<bool> promoting{false};
  constexpr int kClients = 3;
  std::vector<std::vector<ClientRecord>> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SoakClientArgs args;
      args.sched = &sched;
      args.backend = &backend;
      args.stop = &stop;
      args.promoting = &promoting;
      args.seed = 5000 + static_cast<std::uint64_t>(c);
      results[static_cast<std::size_t>(c)] = run_soak_client(args);
    });
  }

  constexpr int kPromotions = 4;
  for (int round = 0; round < kPromotions; ++round) {
    trainer.train_batches(25);  // the stream drifts while clients hammer
    const std::string ckpt = trainer.write_checkpoint();
    if (round == 2) {
      // (d) kill the promoter mid-swap under live traffic: the old
      // generation must keep serving and the immediate retry must land.
      const std::uint64_t id_before = backend.generation_id();
      ASSERT_EQ(FaultInjector::instance().arm_from_string(
                    "online.promote.commit:1:error:1"),
                1u);
      EXPECT_THROW((void)promoter.promote(ckpt, &trainer.access_stats()),
                   InjectedFault);
      FaultInjector::instance().reset();
      EXPECT_EQ(backend.generation_id(), id_before)
          << "failed promotion must not advance the serving generation";
    }
    promoting.store(true, std::memory_order_release);
    const std::uint64_t id = promoter.promote(ckpt, &trainer.access_stats());
    promoting.store(false, std::memory_order_release);
    refs[id] = reference_session(ckpt);
    EXPECT_EQ(backend.generation_id(), id);
    // Let traffic settle on the new generation before the next round.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(backend.generation_id(),
            static_cast<std::uint64_t>(kPromotions));

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();
  sched.shutdown();

  // (c) zero accepted-request loss: every accepted submit produced exactly
  // one served response, and every client got all of its futures back.
  const auto s = sched.stats();
  EXPECT_EQ(s.accepted, s.served);
  std::size_t total = 0;
  for (const auto& r : results) total += r.size();
  EXPECT_EQ(s.accepted, total);
  ASSERT_GT(total, 500u) << "load was not sustained";

  // (a) no torn model, across >= 3 promotions.
  EXPECT_EQ(verify_no_torn_responses(results, refs), 0);

  // (b) p99 across the swaps stays inside the budget.
  expect_p99_within_budget(results);

  // Promoter hygiene: every displaced generation drained and was retired.
  EXPECT_EQ(promoter.stats().promotions,
            static_cast<std::uint64_t>(kPromotions));
  EXPECT_EQ(promoter.stats().failed, 1u);  // the injected commit fault
  EXPECT_EQ(promoter.stats().drain_timeouts, 0u);
  EXPECT_EQ(promoter.retired_pending(), 0u);

  // Pinned promotion metrics moved by exactly the successful swaps.
  EXPECT_EQ(reg.counter("online.promotions").value() - promos_before,
            static_cast<std::uint64_t>(kPromotions));
  EXPECT_EQ(reg.histogram("online.swap_us").count() - swaps_before,
            static_cast<std::size_t>(kPromotions));
  std::filesystem::remove_all(dir);
}

TEST(OnlinePromotionSoak, ShardedTierPromotesBehindTheRouter) {
  if (!soak_enabled()) GTEST_SKIP() << "set ELREC_SOAK=1 to run the soak";
  const std::string dir = fresh_checkpoint_dir("soak_sharded");

  DriftScheduleConfig drift;
  drift.period_batches = 16;
  drift.max_step_fraction = 0.08;
  DriftingDataset stream(tiny_spec(), 2002, drift);
  OnlineTrainerConfig tcfg;
  tcfg.batch_size = 64;
  tcfg.checkpoint_every_n = 0;
  tcfg.checkpoint_dir = dir;
  OnlineTrainer trainer(make_model(2), stream, tcfg);
  trainer.train_batches(30);
  const std::string ckpt0 = trainer.write_checkpoint();

  // Promotions rebuild the whole sharded tier per generation: per-shard
  // full-model sessions, shard servers, failover router. The initial
  // generation is a plain local one — the seam hides the difference, which
  // is itself worth asserting.
  ModelPromoterConfig pcfg;
  pcfg.session.cache.capacity = 128;
  pcfg.session.cache.admit_min_freq = 1;
  pcfg.warm_top_k = 64;
  pcfg.num_shards = 2;
  pcfg.shard_server.num_workers = 2;
  pcfg.placement.warm_rows_per_table = 64;
  HotSwapBackend backend(make_local_generation(0, ckpt0, pcfg.session));
  ModelPromoter promoter(backend, model_factory(), pcfg);

  std::map<std::uint64_t, std::unique_ptr<InferenceSession>> refs;
  refs[0] = reference_session(ckpt0);

  RequestSchedulerConfig scfg;
  scfg.num_workers = 2;
  scfg.max_batch = 8;
  scfg.max_wait_us = 100;
  scfg.queue_capacity = 256;
  RequestScheduler sched(backend, scfg);

  std::atomic<bool> stop{false};
  std::atomic<bool> promoting{false};
  constexpr int kClients = 2;
  std::vector<std::vector<ClientRecord>> results(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SoakClientArgs args;
      args.sched = &sched;
      args.backend = &backend;
      args.stop = &stop;
      args.promoting = &promoting;
      args.seed = 7000 + static_cast<std::uint64_t>(c);
      results[static_cast<std::size_t>(c)] = run_soak_client(args);
    });
  }

  constexpr int kPromotions = 3;
  for (int round = 0; round < kPromotions; ++round) {
    trainer.train_batches(20);
    const std::string ckpt = trainer.write_checkpoint();
    promoting.store(true, std::memory_order_release);
    const std::uint64_t id = promoter.promote(ckpt, &trainer.access_stats());
    promoting.store(false, std::memory_order_release);
    refs[id] = reference_session(ckpt);
    const auto cur = backend.current();
    EXPECT_TRUE(cur->sharded()) << "promotion should have built the tier";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();
  sched.shutdown();

  const auto s = sched.stats();
  EXPECT_EQ(s.accepted, s.served);
  std::size_t total = 0;
  for (const auto& r : results) total += r.size();
  EXPECT_EQ(s.accepted, total);
  ASSERT_GT(total, 200u);

  // Routed predictions equal the single-process reference bit for bit, so
  // the same torn-model check covers the sharded tier.
  EXPECT_EQ(verify_no_torn_responses(results, refs), 0);
  expect_p99_within_budget(results);

  EXPECT_EQ(promoter.stats().promotions,
            static_cast<std::uint64_t>(kPromotions));
  EXPECT_EQ(promoter.stats().drain_timeouts, 0u);
  EXPECT_EQ(promoter.retired_pending(), 0u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace elrec
