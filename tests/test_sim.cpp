// Tests for the analytic simulator: device specs, workload op counts,
// framework cost models (the qualitative orderings the paper reports), and
// the pipeline timeline.
#include <gtest/gtest.h>

#include "data/dataset_spec.hpp"
#include "sim/framework_models.hpp"
#include "sim/timeline.hpp"

namespace elrec {
namespace {

DlrmWorkload terabyte_workload(const DeviceSpec&) {
  return DlrmWorkload::from_spec(criteo_terabyte_spec(), 4096, 64, 128);
}

TEST(DeviceModel, SpecsSane) {
  const DeviceSpec v = v100();
  const DeviceSpec t = t4();
  EXPECT_GT(v.fp32_tflops, t.fp32_tflops);
  EXPECT_GT(v.hbm_gbps, t.hbm_gbps);
  EXPECT_GT(inter_gpu_gbps(v), inter_gpu_gbps(t));  // NVLink vs PCIe
  EXPECT_DOUBLE_EQ(inter_gpu_gbps(t), t.pcie_gbps);
}

TEST(Workload, FromSpecShapes) {
  const DlrmWorkload w = terabyte_workload(v100());
  EXPECT_EQ(w.num_tables(), 26);
  EXPECT_EQ(w.bottom_mlp.front(), 13);
  EXPECT_EQ(w.bottom_mlp.back(), 64);
  EXPECT_EQ(w.top_mlp.back(), 1);
  EXPECT_GT(w.num_large_tables(), 0);
  EXPECT_LT(w.num_large_tables(), 26);
}

TEST(Workload, EmbeddingBytesMatchTableII) {
  const DlrmWorkload w = terabyte_workload(v100());
  // Terabyte dense embeddings exceed a 16 GB GPU (the paper's premise).
  EXPECT_GT(w.embedding_bytes(), 16e9);
  // TT-compressed parameters are orders of magnitude smaller and fit.
  EXPECT_LT(w.tt_parameter_bytes(), 1e9);
}

TEST(Workload, ReuseReducesForwardFlops) {
  DlrmWorkload w = terabyte_workload(v100());
  w.unique_index_ratio = 0.4;
  w.unique_prefix_ratio = 0.5;
  EXPECT_LT(w.tt_forward_flops(true), 0.6 * w.tt_forward_flops(false));
}

TEST(Workload, InAdvanceAggregationReducesBackwardFlops) {
  DlrmWorkload w = terabyte_workload(v100());
  w.unique_index_ratio = 0.4;
  EXPECT_LT(w.tt_backward_flops(true), 0.6 * w.tt_backward_flops(false));
}

TEST(Workload, BackwardCostsMoreThanForward) {
  // The paper: TT backward is the dominant phase (Fig. 14 discussion).
  const DlrmWorkload w = terabyte_workload(v100());
  EXPECT_GT(w.tt_backward_flops(false), w.tt_forward_flops(false));
}

TEST(FrameworkModels, ElRecBeatsDlrmPsByAboutThreeTimes) {
  // Fig. 11 headline: ~3x on V100 (band 2x-5x accepted).
  const DeviceSpec dev = v100();
  const HostSpec host = aws_host();
  const DlrmWorkload w = terabyte_workload(dev);
  const double t_dlrm = model_dlrm_ps(w, dev, host).total_sequential();
  const double t_elrec = model_elrec(w, dev).total_sequential();
  const double speedup = t_dlrm / t_elrec;
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 6.0);
}

TEST(FrameworkModels, OrderingMatchesFig11) {
  // EL-Rec < TT-Rec < FAE < DLRM in iteration time, on both devices.
  for (const DeviceSpec& dev : {v100(), t4()}) {
    const HostSpec host = aws_host();
    for (const DatasetSpec& spec : paper_dataset_specs()) {
      const DlrmWorkload w = DlrmWorkload::from_spec(
          spec, 4096, 64, dev.name == "Tesla V100" ? 128 : 64);
      const double t_dlrm = model_dlrm_ps(w, dev, host).total_sequential();
      const double t_fae = model_fae(w, dev, host).total_sequential();
      const double t_ttrec = model_ttrec(w, dev).total_sequential();
      const double t_elrec = model_elrec(w, dev).total_sequential();
      EXPECT_LT(t_elrec, t_ttrec) << dev.name << " " << spec.name;
      EXPECT_LT(t_ttrec, t_fae) << dev.name << " " << spec.name;
      EXPECT_LT(t_fae, t_dlrm) << dev.name << " " << spec.name;
    }
  }
}

TEST(FrameworkModels, MultiGpuElRecScalesBetterThanDlrm) {
  // Fig. 12: EL-Rec 4-GPU beats DLRM 4-GPU; DLRM 1-GPU slightly beats
  // EL-Rec 1-GPU (TT adds compute when memory is not the constraint).
  const DeviceSpec dev = v100();
  const DlrmWorkload w = terabyte_workload(dev);
  const double el1 = model_elrec_multi(w, dev, 1).total_sequential();
  const double el4 = model_elrec_multi(w, dev, 4).total_sequential();
  const double dl1 = model_dlrm_multi(w, dev, 1).total_sequential();
  const double dl4 = model_dlrm_multi(w, dev, 4).total_sequential();
  EXPECT_LT(el4, el1);          // scaling helps
  EXPECT_LT(el4, dl4);          // EL-Rec wins at 4 GPUs
  EXPECT_LT(dl1, el1);          // DLRM wins at 1 GPU (paper's observation)
}

TEST(FrameworkModels, LargeTableOrderingMatchesFig13) {
  // Fig. 13 (40M x 128 single table): EL-Rec > HugeCTR > TorchRec
  // in throughput at 2-4 GPUs.
  const DeviceSpec dev = v100();
  DatasetSpec spec;
  spec.name = "40M single table";
  spec.num_dense = 13;
  spec.table_rows = {40000000};
  DlrmWorkload w = DlrmWorkload::from_spec(spec, 4096, 128, 64);
  // The paper's margin over HugeCTR is thin (1.07x on average): allow a
  // near-tie at 2 GPUs, require a strict win at 4 (collective latency
  // grows with participants while EL-Rec's single all-reduce does not).
  for (int gpus : {2, 4}) {
    const double el =
        model_elrec_large_table(w, dev, gpus).total_sequential();
    const double hc =
        model_hugectr_large_table(w, dev, gpus).total_sequential();
    const double tr =
        model_torchrec_large_table(w, dev, gpus).total_sequential();
    if (gpus == 2) {
      EXPECT_LT(el, hc * 1.02) << gpus << " GPUs";
    } else {
      EXPECT_LT(el, hc) << gpus << " GPUs";
    }
    EXPECT_LT(hc, tr) << gpus << " GPUs";
  }
}

TEST(FrameworkModels, HybridPipelineBeatsSequential) {
  // Fig. 16: pipelined EL-Rec ~1.3x over sequential EL-Rec, both well ahead
  // of the DLRM PS baseline.
  const DeviceSpec dev = v100();
  const HostSpec host = aws_host();
  const DlrmWorkload w = terabyte_workload(dev);
  const IterationCost hybrid = model_elrec_hybrid(w, dev, host, true);
  const double t_seq = hybrid.total_sequential();
  const double t_pipe = hybrid.total_pipelined();
  EXPECT_LT(t_pipe, t_seq);
  const double t_dlrm =
      model_dlrm_ps(w, dev, host).total_sequential();
  EXPECT_GT(t_dlrm / t_pipe, 1.5);
}

TEST(IterationCostTest, PipelinedTotalsOverlapCpuAndGpu) {
  IterationCost c;
  c.components["cpu:a"] = 2.0;
  c.components["gpu:b"] = 3.0;
  c.components["serial:c"] = 1.0;
  EXPECT_DOUBLE_EQ(c.total_sequential(), 6.0);
  EXPECT_DOUBLE_EQ(c.total_pipelined(), 4.0);
  EXPECT_DOUBLE_EQ(c.throughput(8, true), 2.0);
}

TEST(TimelineSim, SequentialEqualsSumPipelinedEqualsMax) {
  PipelineSimConfig cfg;
  cfg.server_seconds_per_batch = 1.0;
  cfg.worker_seconds_per_batch = 2.0;
  cfg.queue_capacity = 1;
  // Depth-1: server and worker strictly alternate after warm-up? With
  // capacity 1 the server can run one batch ahead, so steady state is
  // max(server, worker) per batch — the paper's "Sequential" still
  // overlaps the single-slot prefetch. Verify monotonicity instead of
  // exact constants, plus busy-time accounting.
  const PipelineSimResult r1 = simulate_pipeline(cfg, 50);
  cfg.queue_capacity = 4;
  const PipelineSimResult r4 = simulate_pipeline(cfg, 50);
  EXPECT_LE(r4.makespan_seconds, r1.makespan_seconds + 1e-9);
  EXPECT_DOUBLE_EQ(r4.worker_busy_seconds, 100.0);
  EXPECT_DOUBLE_EQ(r4.server_busy_seconds, 50.0);
  // Worker-bound pipeline: makespan ~ worker busy time + warmup.
  EXPECT_LT(r4.makespan_seconds, 100.0 + 5.0);
}

TEST(TimelineSim, ServerBoundPipelineGatedByServer) {
  PipelineSimConfig cfg;
  cfg.server_seconds_per_batch = 3.0;
  cfg.worker_seconds_per_batch = 1.0;
  cfg.queue_capacity = 8;
  const PipelineSimResult r = simulate_pipeline(cfg, 20);
  EXPECT_GE(r.makespan_seconds, 60.0);
  EXPECT_GT(r.worker_stall_seconds, 0.0);
}

TEST(TimelineSim, DeeperQueuesNeverHurt) {
  PipelineSimConfig cfg;
  cfg.server_seconds_per_batch = 1.0;
  cfg.worker_seconds_per_batch = 1.5;
  cfg.transfer_seconds_per_batch = 0.25;
  double prev = 1e30;
  for (index_t depth : {1, 2, 4, 8}) {
    cfg.queue_capacity = depth;
    const double t = simulate_pipeline(cfg, 64).makespan_seconds;
    EXPECT_LE(t, prev + 1e-9) << "depth " << depth;
    prev = t;
  }
}

}  // namespace
}  // namespace elrec
