// Tests for the Criteo TSV reader: parsing, missing fields, hashing,
// malformed-line skipping, batching, and end-of-stream behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "data/criteo_tsv.hpp"

namespace elrec {
namespace {

CriteoTsvOptions small_options() {
  CriteoTsvOptions opt;
  opt.num_dense = 2;
  opt.table_rows = {100, 50};
  return opt;
}

std::unique_ptr<std::istream> stream_of(const std::string& text) {
  return std::make_unique<std::istringstream>(text);
}

TEST(CriteoTsv, ParsesWellFormedLines) {
  // label \t d1 \t d2 \t c1 \t c2
  CriteoTsvReader reader(stream_of("1\t3\t0\tab12\tcd34\n"
                                   "0\t1\t5\tef56\t\n"),
                         small_options());
  MiniBatch batch;
  EXPECT_EQ(reader.next_batch(10, batch), 2);
  EXPECT_EQ(batch.batch_size(), 2);
  EXPECT_EQ(batch.labels[0], 1.0f);
  EXPECT_EQ(batch.labels[1], 0.0f);
  // log1p transform.
  EXPECT_NEAR(batch.dense.at(0, 0), std::log1p(3.0f), 1e-6f);
  EXPECT_NEAR(batch.dense.at(1, 1), std::log1p(5.0f), 1e-6f);
  ASSERT_EQ(batch.sparse.size(), 2u);
  EXPECT_NO_THROW(batch.sparse[0].validate(100));
  EXPECT_NO_THROW(batch.sparse[1].validate(50));
  // Empty categorical maps to bucket 0.
  EXPECT_EQ(batch.sparse[1].indices[1], 0);
  EXPECT_EQ(reader.skipped_lines(), 0);
}

TEST(CriteoTsv, HashIsStableAndBounded) {
  const index_t h1 = CriteoTsvReader::hash_categorical("ab12", 100);
  EXPECT_EQ(h1, CriteoTsvReader::hash_categorical("ab12", 100));
  EXPECT_GE(h1, 0);
  EXPECT_LT(h1, 100);
  EXPECT_NE(CriteoTsvReader::hash_categorical("ab12", 1 << 20),
            CriteoTsvReader::hash_categorical("ab13", 1 << 20));
}

TEST(CriteoTsv, MissingDenseBecomesZero) {
  CriteoTsvReader reader(stream_of("1\t\t\tx\ty\n"), small_options());
  MiniBatch batch;
  ASSERT_EQ(reader.next_batch(1, batch), 1);
  EXPECT_EQ(batch.dense.at(0, 0), 0.0f);
  EXPECT_EQ(batch.dense.at(0, 1), 0.0f);
}

TEST(CriteoTsv, NegativeDenseClampedByLogTransform) {
  CriteoTsvReader reader(stream_of("0\t-5\t2\tx\ty\n"), small_options());
  MiniBatch batch;
  ASSERT_EQ(reader.next_batch(1, batch), 1);
  EXPECT_EQ(batch.dense.at(0, 0), 0.0f);  // log1p(max(-5,0)) = 0
}

TEST(CriteoTsv, RawDenseWhenTransformDisabled) {
  CriteoTsvOptions opt = small_options();
  opt.log_transform_dense = false;
  CriteoTsvReader reader(stream_of("0\t-5\t2\tx\ty\n"), std::move(opt));
  MiniBatch batch;
  ASSERT_EQ(reader.next_batch(1, batch), 1);
  EXPECT_EQ(batch.dense.at(0, 0), -5.0f);
}

TEST(CriteoTsv, MalformedLinesAreSkippedAndCounted) {
  CriteoTsvReader reader(stream_of("2\t1\t1\tx\ty\n"       // bad label
                                   "1\t1\t1\tx\n"          // missing field
                                   "1\t1\t1\tx\ty\tz\n"    // extra field
                                   "1\tzz\t1\tx\ty\n"      // bad integer
                                   "0\t1\t1\tx\ty\n"),     // good
                         small_options());
  MiniBatch batch;
  EXPECT_EQ(reader.next_batch(10, batch), 1);
  EXPECT_EQ(reader.skipped_lines(), 4);
}

TEST(CriteoTsv, BatchingAndEndOfStream) {
  std::string text;
  for (int i = 0; i < 7; ++i) text += "1\t1\t1\tx\ty\n";
  CriteoTsvReader reader(stream_of(text), small_options());
  MiniBatch batch;
  EXPECT_EQ(reader.next_batch(3, batch), 3);
  EXPECT_EQ(reader.next_batch(3, batch), 3);
  EXPECT_EQ(reader.next_batch(3, batch), 1);  // short final batch
  EXPECT_EQ(reader.next_batch(3, batch), 0);  // drained
}

TEST(CriteoTsv, MissingFileThrows) {
  EXPECT_THROW(CriteoTsvReader("/nonexistent/criteo.tsv", small_options()),
               Error);
}

TEST(CriteoTsv, FullCriteoShapeParses) {
  // A realistic Kaggle-format line: 13 dense + 26 categorical.
  CriteoTsvOptions opt;
  opt.num_dense = 13;
  opt.table_rows.assign(26, 1000);
  std::string line = "1";
  for (int i = 0; i < 13; ++i) line += "\t" + std::to_string(i);
  for (int i = 0; i < 26; ++i) line += "\t68fd1e64";
  line += "\n";
  CriteoTsvReader reader(stream_of(line), std::move(opt));
  MiniBatch batch;
  ASSERT_EQ(reader.next_batch(1, batch), 1);
  EXPECT_EQ(batch.dense.cols(), 13);
  EXPECT_EQ(batch.sparse.size(), 26u);
}

}  // namespace
}  // namespace elrec
