// Tests for TT shape bookkeeping: factorizations, Eq. 3 index arithmetic,
// parameter counting, and compression ratios.
#include <gtest/gtest.h>

#include "tt/tt_shape.hpp"

namespace elrec {
namespace {

TEST(TTShape, BasicAccessors) {
  TTShape s({4, 5, 6}, {2, 2, 4}, {1, 8, 8, 1});
  EXPECT_EQ(s.num_cores(), 3);
  EXPECT_EQ(s.padded_rows(), 120);
  EXPECT_EQ(s.dim(), 16);
  EXPECT_EQ(s.rank(0), 1);
  EXPECT_EQ(s.rank(1), 8);
  EXPECT_EQ(s.rank(3), 1);
}

TEST(TTShape, RejectsBadRanks) {
  EXPECT_THROW(TTShape({2, 2}, {2, 2}, {2, 4, 1}), Error);  // R_0 != 1
  EXPECT_THROW(TTShape({2, 2}, {2, 2}, {1, 4, 2}), Error);  // R_d != 1
  EXPECT_THROW(TTShape({2, 2}, {2, 2}, {1, 4}), Error);     // wrong length
}

TEST(TTShape, RejectsMismatchedFactors) {
  EXPECT_THROW(TTShape({2, 2, 2}, {2, 2}, {1, 4, 4, 1}), Error);
}

TEST(TTShape, RejectsSingleCore) {
  EXPECT_THROW(TTShape({4}, {4}, {1, 1}), Error);
}

TEST(TTShape, FactorizeRowMatchesEquation3) {
  // Paper Eq. 3: i_k = (i / prod_{l>k} m_l) mod m_k.
  TTShape s({3, 4, 5}, {2, 2, 2}, {1, 2, 2, 1});
  std::vector<index_t> parts(3);
  s.factorize_row(37, parts);  // 37 = ((1*4 + 3)*5 + 2)
  EXPECT_EQ(parts[0], 1);
  EXPECT_EQ(parts[1], 3);
  EXPECT_EQ(parts[2], 2);
}

TEST(TTShape, FactorizeCombineRoundTripProperty) {
  TTShape s({7, 9, 11}, {2, 2, 2}, {1, 4, 4, 1});
  std::vector<index_t> parts(3);
  for (index_t row = 0; row < s.padded_rows(); row += 13) {
    s.factorize_row(row, parts);
    EXPECT_EQ(s.combine_row(parts), row);
  }
  // Boundary rows.
  s.factorize_row(s.padded_rows() - 1, parts);
  EXPECT_EQ(s.combine_row(parts), s.padded_rows() - 1);
}

TEST(TTShape, BalancedCoversRows) {
  const TTShape s = TTShape::balanced(1000000, 64, 3, 16);
  EXPECT_GE(s.padded_rows(), 1000000);
  EXPECT_EQ(s.dim(), 64);
  // Factors should be near 100 each.
  for (int k = 0; k < 3; ++k) {
    EXPECT_GE(s.row_factor(k), 50);
    EXPECT_LE(s.row_factor(k), 200);
  }
}

TEST(TTShape, CoverFactorizeProperty) {
  for (index_t v : {1, 2, 7, 100, 999, 40000000}) {
    for (int d : {2, 3, 4}) {
      const auto f = TTShape::cover_factorize(v, d);
      index_t prod = 1;
      for (index_t x : f) prod *= x;
      EXPECT_GE(prod, v) << "v=" << v << " d=" << d;
      // Covering should not overshoot wildly (within 2x for balanced splits).
      EXPECT_LE(prod, 2 * v + 16) << "v=" << v << " d=" << d;
    }
  }
}

TEST(TTShape, ExactFactorizeMultipliesBack) {
  for (index_t v : {8, 64, 128, 120, 36}) {
    const auto f = TTShape::exact_factorize(v, 3);
    index_t prod = 1;
    for (index_t x : f) prod *= x;
    EXPECT_EQ(prod, v);
  }
}

TEST(TTShape, ParameterCount) {
  TTShape s({4, 5, 6}, {2, 2, 4}, {1, 8, 8, 1});
  // core0: 4*1*2*8=64; core1: 5*8*2*8=640; core2: 6*8*4*1=192.
  EXPECT_EQ(s.parameter_count(), 64u + 640u + 192u);
}

TEST(TTShape, CompressionRatioIsLargeForBigTables) {
  const TTShape s = TTShape::balanced(10000000, 64, 3, 32);
  // Dense: 10M * 64 floats; TT: ~ a few hundred K floats.
  EXPECT_GT(s.compression_ratio(10000000), 100.0);
}

TEST(TTShape, PaperTableIIIFootprintShape) {
  // A 40M x 128 table (paper Fig. 13 / Table III) at rank 64 must fit in a
  // single-GPU HBM budget: dense 19+ GB -> TT a few MB.
  const TTShape s = TTShape::balanced(40000000, 128, 3, 64);
  const double tt_gb = static_cast<double>(s.parameter_count()) * 4.0 / 1e9;
  EXPECT_LT(tt_gb, 0.5);
  const double dense_gb = 40000000.0 * 128 * 4 / 1e9;
  EXPECT_GT(dense_gb, 16.0);  // exceeds the paper's 16 GB HBM
}

}  // namespace
}  // namespace elrec
