// Fault-tolerance suite: drives every injected fault class through the
// pipeline training system and checks it either completes (transient faults
// absorbed by retry) or fails cleanly (structured PipelineError, no leaked
// thread, consistent host store, durable checkpoints), and that
// checkpoint/resume reproduces an uninterrupted run bitwise.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>

#include "common/fault_injector.hpp"
#include "common/retry.hpp"
#include "common/serialize.hpp"
#include "data/synthetic.hpp"
#include "pipeline/elrec_trainer.hpp"
#include "pipeline/pipeline_checkpoint.hpp"
#include "pipeline/pipeline_trainer.hpp"

namespace elrec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Every test must leave the process-wide injector clean, even on failure.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

ComputeStep decay_compute() {
  return [](index_t /*batch_id*/, const std::vector<index_t>& indices,
            const Matrix& rows, Matrix& grads) {
    grads.resize(rows.rows(), rows.cols());
    for (index_t i = 0; i < rows.rows(); ++i) {
      const float target =
          static_cast<float>(indices[static_cast<std::size_t>(i)]);
      for (index_t j = 0; j < rows.cols(); ++j) {
        grads.at(i, j) = rows.at(i, j) - target;
      }
    }
  };
}

std::vector<std::vector<index_t>> overlapping_batches(index_t num_batches,
                                                      index_t table_rows,
                                                      std::uint64_t seed) {
  Prng rng(seed);
  std::vector<std::vector<index_t>> batches;
  for (index_t b = 0; b < num_batches; ++b) {
    std::vector<index_t> unique;
    for (index_t i = 0; i < table_rows; ++i) {
      if (rng.uniform() < 0.5) unique.push_back(i);
    }
    if (unique.empty()) unique.push_back(0);
    batches.push_back(std::move(unique));
  }
  return batches;
}

// ---------------------------------------------------------------------
// FaultInjector facility.
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, DisarmedSiteIsInert) {
  EXPECT_NO_THROW(ELREC_FAULT_POINT("nowhere"));
  EXPECT_EQ(FaultInjector::instance().hits("nowhere"), 0u);
  EXPECT_FALSE(FaultInjector::armed_anywhere());
}

TEST_F(FaultInjectionTest, ArmedSiteCountsAndFires) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.skip_first = 2;
  spec.max_fires = 1;
  FaultInjector::instance().arm("unit.site", spec);
  EXPECT_NO_THROW(ELREC_FAULT_POINT("unit.site"));
  EXPECT_NO_THROW(ELREC_FAULT_POINT("unit.site"));
  EXPECT_THROW(ELREC_FAULT_POINT("unit.site"), InjectedFault);
  EXPECT_NO_THROW(ELREC_FAULT_POINT("unit.site"));  // max_fires reached
  EXPECT_EQ(FaultInjector::instance().hits("unit.site"), 4u);
  EXPECT_EQ(FaultInjector::instance().fires("unit.site"), 1u);
}

TEST_F(FaultInjectionTest, TransientKindThrowsTransientError) {
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  FaultInjector::instance().arm("unit.transient", spec);
  EXPECT_THROW(ELREC_FAULT_POINT("unit.transient"), TransientError);
}

TEST_F(FaultInjectionTest, RetryAbsorbsBoundedTransients) {
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 3;
  FaultInjector::instance().arm("unit.retry", spec);
  RetryPolicy policy;
  policy.max_attempts = 5;
  int calls = 0;
  const int result = with_retry(policy, "unit op", [&] {
    ++calls;
    ELREC_FAULT_POINT("unit.retry");
    return 7;
  });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 4);  // 3 transient failures + 1 success
}

TEST_F(FaultInjectionTest, RetryExhaustionIsFatalNotTransient) {
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  FaultInjector::instance().arm("unit.exhaust", spec);
  RetryPolicy policy;
  policy.max_attempts = 3;
  try {
    with_retry(policy, "unit op", [&] { ELREC_FAULT_POINT("unit.exhaust"); });
    FAIL() << "expected Error";
  } catch (const TransientError&) {
    FAIL() << "exhaustion must not rethrow TransientError";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("retries exhausted"),
              std::string::npos);
  }
  EXPECT_EQ(FaultInjector::instance().hits("unit.exhaust"), 3u);
}

// ---------------------------------------------------------------------
// (a) Injected failures → clean, bounded, structured shutdown.
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, ComputeExceptionYieldsPipelineErrorInBoundedTime) {
  const auto batches = overlapping_batches(40, 24, 77);
  Prng rng(123);
  HostEmbeddingStore store(24, 3, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 4;
  PipelineTrainer trainer(store, cfg);

  const ComputeStep failing = [](index_t batch_id,
                                 const std::vector<index_t>& indices,
                                 const Matrix& rows, Matrix& grads) {
    if (batch_id == 13) throw Error("synthetic compute failure");
    decay_compute()(batch_id, indices, rows, grads);
  };

  // run() must return (by throwing) well before a deadlocked join would; a
  // wedged server thread would hang the future instead.
  auto fut = std::async(std::launch::async, [&] {
    try {
      trainer.run(batches, failing);
      return std::string("no error");
    } catch (const PipelineError& e) {
      EXPECT_EQ(e.stage(), "worker");
      EXPECT_EQ(e.batch_id(), 13);
      EXPECT_NE(std::string(e.what()).find("synthetic compute failure"),
                std::string::npos);
      return std::string("pipeline error");
    }
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(20)),
            std::future_status::ready)
      << "run() wedged after a compute failure — leaked server thread";
  EXPECT_EQ(fut.get(), "pipeline error");

  // Host store stays consistent: all drained gradients were applied, so a
  // fresh fault-free run over the remaining batches still works.
  EXPECT_NO_THROW(trainer.run(batches, decay_compute(), 14));
}

TEST_F(FaultInjectionTest, InjectedComputeFaultPointAlsoShutsDownCleanly) {
  const auto batches = overlapping_batches(20, 16, 5);
  Prng rng(9);
  HostEmbeddingStore store(16, 2, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 2;
  PipelineTrainer trainer(store, cfg);

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.skip_first = 5;
  FaultInjector::instance().arm("pipeline.compute", spec);
  try {
    trainer.run(batches, decay_compute());
    FAIL() << "expected PipelineError";
  } catch (const PipelineError& e) {
    EXPECT_EQ(e.stage(), "worker");
    EXPECT_EQ(e.batch_id(), 5);
  }
}

TEST_F(FaultInjectionTest, FatalServerPullFaultIsReportedAsServerFailure) {
  const auto batches = overlapping_batches(30, 16, 11);
  Prng rng(3);
  HostEmbeddingStore store(16, 2, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 4;
  PipelineTrainer trainer(store, cfg);

  FaultSpec spec;
  spec.kind = FaultKind::kError;  // fatal: retry must NOT absorb it
  spec.skip_first = 7;
  FaultInjector::instance().arm("host_store.pull", spec);
  try {
    trainer.run(batches, decay_compute());
    FAIL() << "expected PipelineError";
  } catch (const PipelineError& e) {
    EXPECT_EQ(e.stage(), "server");
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos);
  }
}

TEST_F(FaultInjectionTest, StalledServerDiagnosedByQueueDeadline) {
  const auto batches = overlapping_batches(20, 16, 21);
  Prng rng(4);
  HostEmbeddingStore store(16, 2, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 2;
  cfg.queue_timeout = std::chrono::milliseconds(200);
  PipelineTrainer trainer(store, cfg);

  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay = std::chrono::milliseconds(3000);
  spec.skip_first = 4;
  spec.max_fires = 1;
  FaultInjector::instance().arm("pipeline.server_tick", spec);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(trainer.run(batches, decay_compute()), PipelineError);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Deadline (200ms) + the injected 3s stall the join must out-wait; well
  // under a deadlock (which would hit the test timeout instead).
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

TEST_F(FaultInjectionTest, SequentialModeShutdownAlsoClean) {
  // queue_capacity = 1 is the degenerate sequential pipeline; the shutdown
  // protocol must work there too.
  const auto batches = overlapping_batches(10, 8, 3);
  Prng rng(4);
  HostEmbeddingStore store(8, 2, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 1;
  PipelineTrainer trainer(store, cfg);
  const ComputeStep failing = [](index_t batch_id, const std::vector<index_t>&,
                                 const Matrix&, Matrix&) {
    throw Error("fail batch " + std::to_string(batch_id));
  };
  auto fut = std::async(std::launch::async, [&] {
    EXPECT_THROW(trainer.run(batches, failing), PipelineError);
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(20)),
            std::future_status::ready);
}

// ---------------------------------------------------------------------
// (b) Transient host-store faults → retry + backoff, identical results.
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, TransientHostFaultsRetryToIdenticalResult) {
  const auto batches = overlapping_batches(40, 24, 77);

  Prng rng1(123);
  HostEmbeddingStore clean_store(24, 3, rng1);
  PipelineConfig cfg;
  cfg.queue_capacity = 4;
  cfg.lr = 0.3f;
  PipelineTrainer clean(clean_store, cfg);
  clean.run(batches, decay_compute());

  FaultSpec pull_spec;
  pull_spec.kind = FaultKind::kTransient;
  pull_spec.probability = 0.3;
  FaultInjector::instance().arm("host_store.pull", pull_spec);
  FaultSpec push_spec;
  push_spec.kind = FaultKind::kTransient;
  push_spec.probability = 0.3;
  push_spec.seed = 42;
  FaultInjector::instance().arm("host_store.push", push_spec);

  Prng rng2(123);
  HostEmbeddingStore faulty_store(24, 3, rng2);
  cfg.host_retry.max_attempts = 40;  // P(40 consecutive fails) ~ 1e-21
  cfg.host_retry.initial_backoff = std::chrono::milliseconds(1);
  PipelineTrainer faulty(faulty_store, cfg);
  const PipelineStats stats = faulty.run(batches, decay_compute());

  EXPECT_EQ(stats.batches, 40);
  EXPECT_GT(FaultInjector::instance().fires("host_store.pull") +
                FaultInjector::instance().fires("host_store.push"),
            0u)
      << "test vacuous: no transient fault actually fired";
  EXPECT_EQ(Matrix::max_abs_diff(faulty_store.weights(),
                                 clean_store.weights()),
            0.0f)
      << "retried run diverged from the fault-free run";
}

// ---------------------------------------------------------------------
// (c) Crash-safe checkpointing and resume.
// ---------------------------------------------------------------------

TEST_F(FaultInjectionTest, PeriodicCheckpointsAreWrittenAndLoadable) {
  const std::string path = temp_path("elrec_pipe_ckpt.bin");
  std::remove(path.c_str());
  const auto batches = overlapping_batches(20, 16, 31);
  Prng rng(6);
  HostEmbeddingStore store(16, 2, rng);
  PipelineConfig cfg;
  cfg.queue_capacity = 4;
  cfg.checkpoint_every_n = 5;
  cfg.checkpoint_path = path;
  PipelineTrainer trainer(store, cfg);
  const PipelineStats stats = trainer.run(batches, decay_compute());
  EXPECT_EQ(stats.checkpoints_written, 4);

  Prng rng2(7);
  HostEmbeddingStore loaded(16, 2, rng2);
  EXPECT_EQ(load_pipeline_checkpoint(loaded, path), 20);
  EXPECT_EQ(Matrix::max_abs_diff(loaded.weights(), store.weights()), 0.0f);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, CrashMidCheckpointLeavesDurableStateAndResumes) {
  const std::string path = temp_path("elrec_crash_ckpt.bin");
  std::remove(path.c_str());
  const auto batches = overlapping_batches(40, 24, 77);

  // Reference: uninterrupted fault-free run.
  Prng rng1(123);
  HostEmbeddingStore clean_store(24, 3, rng1);
  PipelineConfig cfg;
  cfg.queue_capacity = 4;
  cfg.lr = 0.3f;
  cfg.checkpoint_every_n = 10;
  cfg.checkpoint_path = path;
  {
    PipelineTrainer clean(clean_store, cfg);
    clean.run(batches, decay_compute());
  }
  std::remove(path.c_str());

  // Crashing run: the 2nd checkpoint write dies mid-array (simulated kill
  // between the length prefix and the payload).
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.skip_first = 1;  // 1st checkpoint write succeeds
  spec.message = "simulated crash mid-checkpoint";
  FaultInjector::instance().arm("serialize.write_array", spec);

  Prng rng2(123);
  HostEmbeddingStore crash_store(24, 3, rng2);
  PipelineTrainer crashing(crash_store, cfg);
  try {
    crashing.run(batches, decay_compute());
    FAIL() << "expected PipelineError from the torn checkpoint";
  } catch (const PipelineError& e) {
    EXPECT_EQ(e.stage(), "checkpoint");
  }
  FaultInjector::instance().reset();

  // Damage is confined to the temp file: the durable checkpoint (batch 10)
  // is intact and loadable.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  Prng rng3(123);
  HostEmbeddingStore resumed_store(24, 3, rng3);
  PipelineTrainer resumed(resumed_store, cfg);
  const index_t start = resumed.resume(path);
  EXPECT_EQ(start, 10);

  // Replaying from the last durable batch matches the uninterrupted run
  // bitwise.
  resumed.run(batches, decay_compute(), start);
  EXPECT_EQ(Matrix::max_abs_diff(resumed_store.weights(),
                                 clean_store.weights()),
            0.0f)
      << "resume diverged from the uninterrupted run";
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, TruncatedCheckpointIsRejectedOnLoad) {
  const std::string path = temp_path("elrec_trunc_ckpt.bin");
  const auto batches = overlapping_batches(10, 8, 3);
  Prng rng(6);
  HostEmbeddingStore store(8, 2, rng);
  save_pipeline_checkpoint(store, 10, path);

  // Chop the footer off: the checksum/size check must reject the file.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 6);
  Prng rng2(6);
  HostEmbeddingStore loaded(8, 2, rng2);
  EXPECT_THROW(load_pipeline_checkpoint(loaded, path), Error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Full ElRecTrainer: fault shutdown + checkpoint/resume equivalence.
// ---------------------------------------------------------------------

DatasetSpec small_spec() {
  DatasetSpec spec;
  spec.name = "fault-test";
  spec.num_dense = 4;
  spec.table_rows = {40, 200, 300};  // 1 dense + 2 host tables
  spec.num_samples = 4096;
  return spec;
}

ElRecTrainerConfig small_elrec_config(const DatasetSpec& spec) {
  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 8;
  cfg.model.bottom_hidden = {8};
  cfg.model.top_hidden = {8};
  cfg.placement = {TablePlacement::kDeviceDense, TablePlacement::kHost,
                   TablePlacement::kHost};
  cfg.queue_capacity = 3;
  cfg.seed = 5;
  return cfg;
}

TEST_F(FaultInjectionTest, ElrecComputeFaultShutsDownCleanly) {
  const DatasetSpec spec = small_spec();
  ElRecTrainerConfig cfg = small_elrec_config(spec);
  ElRecTrainer trainer(cfg, spec);
  SyntheticDataset data(spec, 11);

  FaultSpec fault;
  fault.kind = FaultKind::kError;
  fault.skip_first = 6;
  FaultInjector::instance().arm("elrec.compute", fault);

  auto fut = std::async(std::launch::async, [&] {
    try {
      trainer.train(data, 20, 32);
      return std::string("no error");
    } catch (const PipelineError& e) {
      EXPECT_EQ(e.stage(), "worker");
      EXPECT_EQ(e.batch_id(), 6);
      return std::string("pipeline error");
    }
  });
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "ElRecTrainer::train wedged after a compute failure";
  EXPECT_EQ(fut.get(), "pipeline error");
}

TEST_F(FaultInjectionTest, ElrecTransientHostFaultsMatchCleanRun) {
  const DatasetSpec spec = small_spec();
  ElRecTrainerConfig cfg = small_elrec_config(spec);

  ElRecTrainer clean(cfg, spec);
  SyntheticDataset clean_data(spec, 11);
  const ElRecRunStats clean_stats = clean.train(clean_data, 12, 32);

  FaultSpec fault;
  fault.kind = FaultKind::kTransient;
  fault.probability = 0.25;
  FaultInjector::instance().arm("host_store.pull", fault);

  cfg.host_retry.max_attempts = 40;
  ElRecTrainer faulty(cfg, spec);
  SyntheticDataset faulty_data(spec, 11);
  const ElRecRunStats faulty_stats = faulty.train(faulty_data, 12, 32);

  ASSERT_EQ(faulty_stats.loss_curve.size(), clean_stats.loss_curve.size());
  for (std::size_t i = 0; i < clean_stats.loss_curve.size(); ++i) {
    EXPECT_EQ(faulty_stats.loss_curve[i], clean_stats.loss_curve[i])
        << "loss diverged at batch " << i;
  }
}

TEST_F(FaultInjectionTest, ElrecCheckpointResumeMatchesUninterruptedRun) {
  const std::string path = temp_path("elrec_full_ckpt.bin");
  std::remove(path.c_str());
  const DatasetSpec spec = small_spec();
  ElRecTrainerConfig cfg = small_elrec_config(spec);
  const index_t num_batches = 16;
  const index_t batch_size = 32;

  // Uninterrupted reference run.
  ElRecTrainer clean(cfg, spec);
  SyntheticDataset clean_data(spec, 11);
  const ElRecRunStats clean_stats =
      clean.train(clean_data, num_batches, batch_size);

  // Checkpointing run, killed by an injected compute fault at batch 11 —
  // after the checkpoints at batches 4 and 8, before the one at 12.
  cfg.checkpoint_every_n = 4;
  cfg.checkpoint_path = path;
  ElRecTrainer crashing(cfg, spec);
  SyntheticDataset crash_data(spec, 11);
  FaultSpec fault;
  fault.kind = FaultKind::kError;
  fault.skip_first = 11;
  FaultInjector::instance().arm("elrec.compute", fault);
  EXPECT_THROW(crashing.train(crash_data, num_batches, batch_size),
               PipelineError);
  FaultInjector::instance().reset();

  // Fresh trainer + fresh dataset fast-forwarded past the checkpoint.
  ElRecTrainer resumed(cfg, spec);
  const index_t start = resumed.resume(path);
  EXPECT_EQ(start, 8);
  SyntheticDataset resume_data(spec, 11);
  resume_data.skip_batches(start, batch_size);
  const ElRecRunStats resumed_stats =
      resumed.train(resume_data, num_batches, batch_size, start);

  // Final parameters match the uninterrupted run bitwise.
  EXPECT_EQ(resumed_stats.final_loss, clean_stats.final_loss);
  for (std::size_t h = 0; h < clean.num_host_tables(); ++h) {
    EXPECT_EQ(Matrix::max_abs_diff(resumed.host_store(h).weights(),
                                   clean.host_store(h).weights()),
              0.0f)
        << "host store " << h << " diverged after resume";
  }
  std::vector<float> clean_params;
  clean.model().visit_parameters([&](float* p, std::size_t n) {
    clean_params.insert(clean_params.end(), p, p + n);
  });
  std::vector<float> resumed_params;
  resumed.model().visit_parameters([&](float* p, std::size_t n) {
    resumed_params.insert(resumed_params.end(), p, p + n);
  });
  EXPECT_EQ(clean_params, resumed_params)
      << "model parameters diverged after resume";
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ELREC_FAULT_SITES env-var configuration (arm_from_string / arm_from_env).

TEST_F(FaultInjectionTest, ArmFromStringArmsKindsAndParams) {
  FaultInjector& inj = FaultInjector::instance();
  EXPECT_EQ(inj.arm_from_string(
                "a.error:1,b.transient:0.5:transient,"
                "c.delay:1:delay:25,d.capped:1:error:2"),
            4u);

  EXPECT_THROW(inj.on_site("a.error"), InjectedFault);
  EXPECT_EQ(inj.fires("a.error"), 1u);

  // probability 0.5: over many hits some fire, some pass.
  std::uint64_t threw = 0;
  for (int i = 0; i < 200; ++i) {
    try {
      inj.on_site("b.transient");
    } catch (const TransientError&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0u);
  EXPECT_LT(threw, 200u);

  // delay param is milliseconds of stall.
  const auto t0 = std::chrono::steady_clock::now();
  inj.on_site("c.delay");
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(20));

  // error/transient param caps max_fires.
  EXPECT_THROW(inj.on_site("d.capped"), InjectedFault);
  EXPECT_THROW(inj.on_site("d.capped"), InjectedFault);
  inj.on_site("d.capped");  // third hit: cap reached, passes through
  EXPECT_EQ(inj.fires("d.capped"), 2u);
}

TEST_F(FaultInjectionTest, ArmFromStringRejectsMalformedEntries) {
  FaultInjector& inj = FaultInjector::instance();
  EXPECT_THROW(inj.arm_from_string("noprob"), Error);
  EXPECT_THROW(inj.arm_from_string("site:notanumber"), Error);
  EXPECT_THROW(inj.arm_from_string("site:1.5"), Error);  // prob outside [0,1]
  EXPECT_THROW(inj.arm_from_string("site:1:bogus"), Error);
  EXPECT_THROW(inj.arm_from_string("site:1:delay:-3"), Error);
  EXPECT_THROW(inj.arm_from_string("site:1:error:1:extra"), Error);
  EXPECT_THROW(inj.arm_from_string(":1"), Error);  // empty site name
  // Empty entries (stray commas) are tolerated; nothing armed.
  EXPECT_EQ(inj.arm_from_string(",,"), 0u);
}

TEST_F(FaultInjectionTest, ArmFromEnvHonorsVariable) {
  FaultInjector& inj = FaultInjector::instance();
  ASSERT_EQ(::setenv("ELREC_FAULT_SITES", "env.site:1:transient", 1), 0);
  EXPECT_EQ(inj.arm_from_env(), 1u);
  EXPECT_THROW(inj.on_site("env.site"), TransientError);
  ASSERT_EQ(::unsetenv("ELREC_FAULT_SITES"), 0);
  EXPECT_EQ(inj.arm_from_env(), 0u);  // unset: nothing armed, no error
  EXPECT_EQ(inj.env_config_error(), "");
}

TEST_F(FaultInjectionTest, ArmFromEnvRecordsParseErrorAndRethrows) {
  FaultInjector& inj = FaultInjector::instance();
  ASSERT_EQ(::setenv("ELREC_FAULT_SITES", "bad entry without prob", 1), 0);
  EXPECT_THROW(inj.arm_from_env(), Error);
  EXPECT_NE(inj.env_config_error(), "");
  ASSERT_EQ(::unsetenv("ELREC_FAULT_SITES"), 0);
}

}  // namespace
}  // namespace elrec
