// Tests for whole-model checkpointing: round trips through training,
// deterministic resume, and config-mismatch rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "embed/embedding_bag.hpp"

namespace elrec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "ckpt";
  spec.num_dense = 3;
  spec.table_rows = {800, 60};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = 3;
  cfg.embedding_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EffTTTable>(
      800, TTShape::balanced(800, 8, 3, 4), rng));
  tables.push_back(std::make_unique<EmbeddingBag>(60, 8, rng));
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

TEST(ModelCheckpoint, RoundTripAfterTraining) {
  auto model = make_model(1);
  SyntheticDataset data(tiny_spec(), 2);
  for (int b = 0; b < 20; ++b) model->train_step(data.next_batch(64), 0.1f);

  const std::string path = temp_path("elrec_model_ckpt.bin");
  save_dlrm_model(*model, path);

  auto restored = make_model(999);  // different init
  load_dlrm_model(*restored, path);

  // Identical predictions on a fresh batch.
  const MiniBatch eval = data.eval_batch(64, 3);
  std::vector<float> p1, p2;
  model->predict(eval, p1);
  restored->predict(eval, p2);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_FLOAT_EQ(p1[i], p2[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpoint, ResumedTrainingMatchesUninterrupted) {
  // Train 30 batches straight vs 15 + checkpoint + restore + 15: identical
  // parameters (SGD is stateless; the checkpoint captures everything).
  const std::string path = temp_path("elrec_resume_ckpt.bin");
  auto straight = make_model(7);
  auto interrupted = make_model(7);

  SyntheticDataset data_a(tiny_spec(), 5);
  SyntheticDataset data_b(tiny_spec(), 5);
  for (int b = 0; b < 30; ++b) {
    straight->train_step(data_a.next_batch(64), 0.1f);
  }
  for (int b = 0; b < 15; ++b) {
    interrupted->train_step(data_b.next_batch(64), 0.1f);
  }
  save_dlrm_model(*interrupted, path);
  auto resumed = make_model(321);
  load_dlrm_model(*resumed, path);
  for (int b = 0; b < 15; ++b) {
    resumed->train_step(data_b.next_batch(64), 0.1f);
  }

  std::vector<float> w1, w2;
  straight->visit_parameters(
      [&](float* p, std::size_t n) { w1.insert(w1.end(), p, p + n); });
  resumed->visit_parameters(
      [&](float* p, std::size_t n) { w2.insert(w2.end(), p, p + n); });
  ASSERT_EQ(w1.size(), w2.size());
  for (std::size_t i = 0; i < w1.size(); ++i) {
    ASSERT_FLOAT_EQ(w1[i], w2[i]) << "param " << i;
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpoint, ConfigMismatchRejected) {
  auto model = make_model(1);
  const std::string path = temp_path("elrec_mismatch_ckpt.bin");
  save_dlrm_model(*model, path);

  // A model with a different table layout must refuse the checkpoint.
  Prng rng(2);
  DlrmConfig cfg;
  cfg.num_dense = 3;
  cfg.embedding_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EmbeddingBag>(60, 8, rng));  // one table
  DlrmModel other(cfg, std::move(tables), rng);
  EXPECT_THROW(load_dlrm_model(other, path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace elrec
