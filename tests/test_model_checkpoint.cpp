// Tests for whole-model checkpointing: round trips through training,
// deterministic resume, config-mismatch rejection, and the crash drill —
// a writer killed mid-emit must leave the previous checkpoint loadable and
// bitwise-intact (the durability contract the online trainer's continuous
// emits lean on).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/fault_injector.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "embed/embedding_bag.hpp"

namespace elrec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "ckpt";
  spec.num_dense = 3;
  spec.table_rows = {800, 60};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = 3;
  cfg.embedding_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EffTTTable>(
      800, TTShape::balanced(800, 8, 3, 4), rng));
  tables.push_back(std::make_unique<EmbeddingBag>(60, 8, rng));
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

TEST(ModelCheckpoint, RoundTripAfterTraining) {
  auto model = make_model(1);
  SyntheticDataset data(tiny_spec(), 2);
  for (int b = 0; b < 20; ++b) model->train_step(data.next_batch(64), 0.1f);

  const std::string path = temp_path("elrec_model_ckpt.bin");
  save_dlrm_model(*model, path);

  auto restored = make_model(999);  // different init
  load_dlrm_model(*restored, path);

  // Identical predictions on a fresh batch.
  const MiniBatch eval = data.eval_batch(64, 3);
  std::vector<float> p1, p2;
  model->predict(eval, p1);
  restored->predict(eval, p2);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_FLOAT_EQ(p1[i], p2[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelCheckpoint, ResumedTrainingMatchesUninterrupted) {
  // Train 30 batches straight vs 15 + checkpoint + restore + 15: identical
  // parameters (SGD is stateless; the checkpoint captures everything).
  const std::string path = temp_path("elrec_resume_ckpt.bin");
  auto straight = make_model(7);
  auto interrupted = make_model(7);

  SyntheticDataset data_a(tiny_spec(), 5);
  SyntheticDataset data_b(tiny_spec(), 5);
  for (int b = 0; b < 30; ++b) {
    straight->train_step(data_a.next_batch(64), 0.1f);
  }
  for (int b = 0; b < 15; ++b) {
    interrupted->train_step(data_b.next_batch(64), 0.1f);
  }
  save_dlrm_model(*interrupted, path);
  auto resumed = make_model(321);
  load_dlrm_model(*resumed, path);
  for (int b = 0; b < 15; ++b) {
    resumed->train_step(data_b.next_batch(64), 0.1f);
  }

  std::vector<float> w1, w2;
  straight->visit_parameters(
      [&](float* p, std::size_t n) { w1.insert(w1.end(), p, p + n); });
  resumed->visit_parameters(
      [&](float* p, std::size_t n) { w2.insert(w2.end(), p, p + n); });
  ASSERT_EQ(w1.size(), w2.size());
  for (std::size_t i = 0; i < w1.size(); ++i) {
    ASSERT_FLOAT_EQ(w1[i], w2[i]) << "param " << i;
  }
  std::remove(path.c_str());
}

std::vector<char> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

// Checkpoint-writer crash drill: arm the torn-write fault site
// (serialize.write_array, between an array's length prefix and its payload
// — the worst possible interruption point) through the same ELREC_FAULT_SITES
// grammar a production binary honors, and kill several consecutive emits.
// The previous durable checkpoint must stay bitwise-intact and loadable
// every time, and a later clean emit must go through — exactly the sequence
// the online trainer's continuous emit loop produces.
TEST(ModelCheckpoint, CrashMidEmitLeavesPreviousCheckpointBitwiseIntact) {
  const std::string path = temp_path("elrec_crash_ckpt.bin");
  auto model = make_model(51);
  SyntheticDataset data(tiny_spec(), 52);
  for (int b = 0; b < 10; ++b) model->train_step(data.next_batch(64), 0.1f);
  save_dlrm_model(*model, path);
  const std::vector<char> durable = read_file_bytes(path);
  ASSERT_FALSE(durable.empty());

  // Reference predictions of the durable generation.
  const MiniBatch eval = data.eval_batch(64, 8);
  std::vector<float> expected;
  {
    auto restored = make_model(400);
    load_dlrm_model(*restored, path);
    restored->predict(eval, expected);
  }

  auto& inj = FaultInjector::instance();
  for (int attempt = 0; attempt < 3; ++attempt) {
    // Keep training so every interrupted emit carries different bytes, and
    // crash at a different array each attempt (skip_first walks the site
    // deeper into the file).
    for (int b = 0; b < 5; ++b) model->train_step(data.next_batch(64), 0.1f);
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.skip_first = static_cast<std::uint64_t>(attempt * 2);
    spec.max_fires = 1;
    spec.message = "killed mid-checkpoint";
    inj.arm("serialize.write_array", spec);
    EXPECT_THROW(save_dlrm_model(*model, path), InjectedFault)
        << "attempt " << attempt;
    inj.reset();

    // Previous checkpoint: bitwise-identical, no stray temp, still loads.
    EXPECT_EQ(read_file_bytes(path), durable) << "attempt " << attempt;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
        << "failed emit leaked its staging file";
    auto restored = make_model(500 + static_cast<std::uint64_t>(attempt));
    ASSERT_NO_THROW(load_dlrm_model(*restored, path));
    std::vector<float> probs;
    restored->predict(eval, probs);
    ASSERT_EQ(probs.size(), expected.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(probs[i], expected[i]) << "sample " << i;
    }
  }

  // With the site disarmed the next emit replaces the checkpoint cleanly.
  ASSERT_NO_THROW(save_dlrm_model(*model, path));
  EXPECT_NE(read_file_bytes(path), durable)
      << "clean emit after the drill should have advanced the checkpoint";
  auto final_restore = make_model(600);
  ASSERT_NO_THROW(load_dlrm_model(*final_restore, path));
  std::remove(path.c_str());
}

// The env-var spelling of the same drill: ELREC_FAULT_SITES is parsed by
// arm_from_string, so the grammar path used by integration harnesses is the
// one under test here.
TEST(ModelCheckpoint, CrashDrillViaFaultSitesGrammar) {
  const std::string path = temp_path("elrec_grammar_ckpt.bin");
  auto model = make_model(61);
  save_dlrm_model(*model, path);
  const std::vector<char> durable = read_file_bytes(path);

  auto& inj = FaultInjector::instance();
  ASSERT_EQ(inj.arm_from_string("serialize.write_array:1:error:1"), 1u);
  EXPECT_THROW(save_dlrm_model(*model, path), InjectedFault);
  inj.reset();

  EXPECT_EQ(read_file_bytes(path), durable);
  auto restored = make_model(700);
  EXPECT_NO_THROW(load_dlrm_model(*restored, path));
  std::remove(path.c_str());
}

TEST(ModelCheckpoint, ConfigMismatchRejected) {
  auto model = make_model(1);
  const std::string path = temp_path("elrec_mismatch_ckpt.bin");
  save_dlrm_model(*model, path);

  // A model with a different table layout must refuse the checkpoint.
  Prng rng(2);
  DlrmConfig cfg;
  cfg.num_dense = 3;
  cfg.embedding_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EmbeddingBag>(60, 8, rng));  // one table
  DlrmModel other(cfg, std::move(tables), rng);
  EXPECT_THROW(load_dlrm_model(other, path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace elrec
