// Large-shape GEMM tests: exercise the blocked + OpenMP-parallel branches
// (m >= 2*kBlockM triggers the parallel loop; k > kBlockK spans multiple
// K-panels with beta handling) and the parallel batched-GEMM path
// (batch >= 64), against double-precision references.
#include <gtest/gtest.h>

#include "tensor/batched_gemm.hpp"
#include "tensor/gemm.hpp"

namespace elrec {
namespace {

Matrix reference_nn(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(GemmLarge, ParallelRowBlocksMatchReference) {
  Prng rng(1);
  Matrix a(300, 70), b(70, 90);
  a.fill_normal(rng);
  b.fill_normal(rng);
  Matrix c(300, 90);
  gemm(Trans::kNo, Trans::kNo, 300, 90, 70, 1.0f, a.data(), 70, b.data(), 90,
       0.0f, c.data(), 90);
  EXPECT_LT(Matrix::max_abs_diff(c, reference_nn(a, b)), 1e-3f);
}

TEST(GemmLarge, MultipleKPanelsAccumulateOnce) {
  // k = 600 spans three K-panels; beta must only be applied once.
  Prng rng(2);
  Matrix a(40, 600), b(600, 30);
  a.fill_normal(rng);
  b.fill_normal(rng);
  Matrix c(40, 30);
  c.fill(2.0f);
  gemm(Trans::kNo, Trans::kNo, 40, 30, 600, 1.0f, a.data(), 600, b.data(), 30,
       0.5f, c.data(), 30);
  const Matrix ref = reference_nn(a, b);
  for (index_t i = 0; i < c.rows(); ++i) {
    for (index_t j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(c.at(i, j), ref.at(i, j) + 1.0f, 2e-2f);
    }
  }
}

TEST(GemmLarge, ParallelBatchedPathMatchesSerial) {
  // 100 products trigger the parallel batched branch; compare against
  // per-product serial gemm results.
  Prng rng(3);
  const index_t n = 100, m = 6, kk = 5, nn = 7;
  Matrix a(n * m, kk), b(n * kk, nn), c(n * m, nn), expected(n * m, nn);
  a.fill_normal(rng);
  b.fill_normal(rng);
  std::vector<const float*> pa, pb;
  std::vector<float*> pc;
  for (index_t i = 0; i < n; ++i) {
    pa.push_back(a.row(i * m));
    pb.push_back(b.row(i * kk));
    pc.push_back(c.row(i * m));
    gemm(Trans::kNo, Trans::kNo, m, nn, kk, 1.0f, a.row(i * m), kk,
         b.row(i * kk), nn, 0.0f, expected.row(i * m), nn);
  }
  BatchedGemmShape shape{m, nn, kk, kk, nn, nn, 1.0f, 0.0f,
                         Trans::kNo, Trans::kNo};
  batched_gemm(shape, pa, pb, pc);
  EXPECT_LT(Matrix::max_abs_diff(c, expected), 1e-5f);
}

TEST(GemmLarge, TransATallMatchesReference) {
  Prng rng(4);
  Matrix a(50, 260), b(50, 40);  // op(A) = A^T: 260 x 50
  a.fill_normal(rng);
  b.fill_normal(rng);
  Matrix c(260, 40), ref(260, 40);
  gemm(Trans::kYes, Trans::kNo, 260, 40, 50, 1.0f, a.data(), 260, b.data(), 40,
       0.0f, c.data(), 40);
  for (index_t i = 0; i < 260; ++i) {
    for (index_t j = 0; j < 40; ++j) {
      double acc = 0.0;
      for (index_t k = 0; k < 50; ++k) {
        acc += static_cast<double>(a.at(k, i)) * b.at(k, j);
      }
      ref.at(i, j) = static_cast<float>(acc);
    }
  }
  EXPECT_LT(Matrix::max_abs_diff(c, ref), 1e-3f);
}

}  // namespace
}  // namespace elrec
