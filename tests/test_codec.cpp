// Tests for the error-bounded gradient/parameter codec (src/codec) and its
// integration points: wire-format round trips and edge cases, the decoded
// error staying within the header's advertised bound, corruption detection,
// thread-count determinism of encode, checkpoint codec provenance, the
// codec-aware embedding cache, and compressed data-parallel all-reduce.
#include <gtest/gtest.h>
#include <omp.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

#include "codec/grad_codec.hpp"
#include "common/prng.hpp"
#include "pipeline/data_parallel_trainer.hpp"
#include "pipeline/elrec_trainer.hpp"
#include "pipeline/embedding_cache.hpp"
#include "pipeline/pipeline_checkpoint.hpp"

namespace elrec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

CodecConfig dual_config(int bits, float rel_bound = 0.05f) {
  CodecConfig cfg;
  cfg.id = CodecId::kDualLevel;
  cfg.bits = bits;
  cfg.rel_bound = rel_bound;
  return cfg;
}

Matrix random_matrix(index_t rows, index_t cols, std::uint64_t seed,
                     float scale = 1.0f) {
  Prng rng(seed);
  Matrix m(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      m.at(r, c) = scale * static_cast<float>(rng.normal());
    }
  }
  return m;
}

// ---------------------------------------------------------------------
// Wire-format round trips and edge cases.
// ---------------------------------------------------------------------

TEST(CodecRoundTrip, NullCodecIsBitwiseIdentity) {
  const Matrix m = random_matrix(17, 9, 1);
  auto codec = make_codec(CodecConfig{});
  EncodedBlob blob;
  codec->encode(m, blob);

  const CodecWireHeader h = peek_blob_header(blob);
  EXPECT_EQ(h.codec_id, static_cast<std::uint32_t>(CodecId::kNull));
  EXPECT_EQ(h.payload_kind, kCodecPayloadRawF32);
  EXPECT_EQ(h.bits, 32u);
  EXPECT_EQ(h.kept_rows, h.rows);

  Matrix out;
  decode_blob(blob, out);
  ASSERT_EQ(out.rows(), m.rows());
  ASSERT_EQ(out.cols(), m.cols());
  EXPECT_EQ(std::memcmp(out.data(), m.data(), m.size() * sizeof(float)), 0);
}

TEST(CodecRoundTrip, BoundZeroDualCodecIsBitwiseIdentity) {
  // rel_bound 0 + min_abs_bound 0 MUST degrade to a lossless raw payload.
  CodecConfig cfg = dual_config(8, /*rel_bound=*/0.0f);
  ASSERT_TRUE(cfg.lossless());
  const Matrix m = random_matrix(8, 5, 2);
  auto codec = make_codec(cfg);
  EncodedBlob blob;
  codec->encode(m, blob);
  EXPECT_EQ(peek_blob_header(blob).payload_kind, kCodecPayloadRawF32);
  Matrix out;
  decode_blob(blob, out);
  EXPECT_EQ(std::memcmp(out.data(), m.data(), m.size() * sizeof(float)), 0);
}

TEST(CodecRoundTrip, EmptyTensor) {
  for (const CodecConfig& cfg : {CodecConfig{}, dual_config(8)}) {
    auto codec = make_codec(cfg);
    EncodedBlob blob;
    codec->encode(nullptr, 0, 7, blob);
    Matrix out(3, 3);  // wrong shape on purpose; decode must resize
    decode_blob(blob, out);
    EXPECT_EQ(out.rows(), 0);
    EXPECT_EQ(out.cols(), 7);
  }
}

TEST(CodecRoundTrip, SingleElement) {
  Matrix m(1, 1);
  m.at(0, 0) = 3.25f;
  for (const int bits : {8, 4}) {
    auto codec = make_codec(dual_config(bits));
    EncodedBlob blob;
    codec->encode(m, blob);
    const CodecWireHeader h = peek_blob_header(blob);
    Matrix out;
    decode_blob(blob, out);
    ASSERT_EQ(out.rows(), 1);
    ASSERT_EQ(out.cols(), 1);
    EXPECT_LE(std::fabs(out.at(0, 0) - 3.25f), h.bound * 1.0001f)
        << "bits=" << bits;
  }
}

TEST(CodecRoundTrip, AllZeroTensorDropsEveryRow) {
  Matrix m(16, 8);  // Matrix zero-initializes
  auto codec = make_codec(dual_config(8));
  EncodedBlob blob;
  codec->encode(m, blob);
  const CodecWireHeader h = peek_blob_header(blob);
  EXPECT_EQ(h.payload_kind, kCodecPayloadQuantized);
  EXPECT_EQ(h.kept_rows, 0);
  EXPECT_EQ(blob.size(), sizeof(CodecWireHeader));
  Matrix out;
  decode_blob(blob, out);
  for (index_t r = 0; r < 16; ++r) {
    for (index_t c = 0; c < 8; ++c) EXPECT_EQ(out.at(r, c), 0.0f);
  }
}

TEST(CodecRoundTrip, NonFiniteValuesDecodeFinite) {
  Matrix m = random_matrix(6, 4, 3);
  m.at(0, 0) = std::numeric_limits<float>::quiet_NaN();
  m.at(1, 1) = std::numeric_limits<float>::infinity();
  m.at(2, 2) = -std::numeric_limits<float>::infinity();
  m.at(3, 3) = std::numeric_limits<float>::denorm_min();
  for (const int bits : {8, 4}) {
    auto codec = make_codec(dual_config(bits));
    EncodedBlob blob;
    codec->encode(m, blob);
    const CodecWireHeader h = peek_blob_header(blob);
    Matrix out;
    decode_blob(blob, out);
    for (index_t r = 0; r < m.rows(); ++r) {
      for (index_t c = 0; c < m.cols(); ++c) {
        EXPECT_TRUE(std::isfinite(out.at(r, c)))
            << "bits=" << bits << " at (" << r << "," << c << ")";
      }
    }
    EXPECT_EQ(out.at(0, 0), 0.0f);                     // NaN -> 0
    EXPECT_GT(out.at(1, 1), 0.0f);                     // +inf saturates
    EXPECT_LT(out.at(2, 2), 0.0f);                     // -inf saturates
    EXPECT_LE(std::fabs(out.at(3, 3)), h.bound * 1.0001f);  // denormal
  }
}

TEST(CodecRoundTrip, ErrorStaysWithinHeaderBound) {
  for (const int bits : {8, 4}) {
    auto codec = make_codec(dual_config(bits, 0.1f));
    // Several tensors so the running-RMS EMA actually moves.
    for (std::uint64_t seed = 10; seed < 14; ++seed) {
      const Matrix m = random_matrix(64, 16, seed, 0.5f + 0.2f * seed);
      EncodedBlob blob;
      codec->encode(m, blob);
      const CodecWireHeader h = peek_blob_header(blob);
      ASSERT_GT(h.bound, 0.0f);
      Matrix out;
      decode_blob(blob, out);
      float max_err = 0.0f;
      for (index_t i = 0; i < static_cast<index_t>(m.size()); ++i) {
        max_err = std::max(max_err, std::fabs(out.data()[i] - m.data()[i]));
      }
      EXPECT_LE(max_err, h.bound * 1.0001f) << "bits=" << bits
                                            << " seed=" << seed;
    }
  }
}

TEST(CodecRoundTrip, QuantizedPayloadIsSmaller) {
  const Matrix m = random_matrix(256, 64, 21);
  const double raw = static_cast<double>(m.size()) * sizeof(float);
  EncodedBlob blob8, blob4;
  make_codec(dual_config(8))->encode(m, blob8);
  make_codec(dual_config(4))->encode(m, blob4);
  EXPECT_LT(static_cast<double>(blob8.size()), raw / 2.0);
  EXPECT_LT(static_cast<double>(blob4.size()), raw / 4.0);
  EXPECT_LT(blob4.size(), blob8.size());
}

TEST(CodecRoundTrip, DecodeIntoFlatBufferMatchesMatrixDecode) {
  const Matrix m = random_matrix(12, 5, 30);
  EncodedBlob blob;
  make_codec(dual_config(8))->encode(m, blob);
  Matrix out;
  decode_blob(blob, out);
  std::vector<float> flat(m.size(), -1.0f);
  decode_blob_into(blob, flat.data(), flat.size());
  EXPECT_EQ(std::memcmp(flat.data(), out.data(), flat.size() * sizeof(float)),
            0);
  std::vector<float> wrong(m.size() + 1);
  EXPECT_THROW(decode_blob_into(blob, wrong.data(), wrong.size()), Error);
}

// ---------------------------------------------------------------------
// Corruption detection.
// ---------------------------------------------------------------------

TEST(CodecCorruption, FlippedPayloadByteThrows) {
  const Matrix m = random_matrix(8, 8, 40);
  EncodedBlob blob;
  make_codec(dual_config(8))->encode(m, blob);
  ASSERT_GT(blob.size(), sizeof(CodecWireHeader));
  blob[sizeof(CodecWireHeader) + 3] ^= 0x40;
  Matrix out;
  EXPECT_THROW(decode_blob(blob, out), Error);
}

TEST(CodecCorruption, TruncatedBlobThrows) {
  const Matrix m = random_matrix(8, 8, 41);
  EncodedBlob blob;
  make_codec(CodecConfig{})->encode(m, blob);
  EncodedBlob tiny(blob.begin(), blob.begin() + 10);
  EXPECT_THROW(peek_blob_header(tiny), Error);
  blob.resize(blob.size() - 1);
  EXPECT_THROW(peek_blob_header(blob), Error);
}

TEST(CodecCorruption, BadMagicThrows) {
  const Matrix m = random_matrix(4, 4, 42);
  EncodedBlob blob;
  make_codec(CodecConfig{})->encode(m, blob);
  blob[0] = 'X';
  EXPECT_THROW(peek_blob_header(blob), Error);
}

// ---------------------------------------------------------------------
// Thread-count determinism: the encoder only uses `omp simd` (no parallel
// reductions), so blobs must be bitwise-identical under any thread count.
// ---------------------------------------------------------------------

TEST(CodecDeterminism, EncodeIsBitwiseIdenticalAcrossThreadCounts) {
  std::vector<Matrix> stream;
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    stream.push_back(random_matrix(128, 32, seed));
  }
  for (const int bits : {8, 4}) {
    std::vector<EncodedBlob> at1, at8;
    omp_set_num_threads(1);
    {
      auto codec = make_codec(dual_config(bits));
      for (const Matrix& m : stream) {
        EncodedBlob b;
        codec->encode(m, b);
        at1.push_back(b);
      }
    }
    omp_set_num_threads(8);
    {
      auto codec = make_codec(dual_config(bits));
      for (const Matrix& m : stream) {
        EncodedBlob b;
        codec->encode(m, b);
        at8.push_back(b);
      }
    }
    omp_set_num_threads(1);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(at1[i], at8[i]) << "bits=" << bits << " tensor " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Trainer integration: bytes accounting and lossy-vs-null behaviour.
// ---------------------------------------------------------------------

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "codec-tiny";
  spec.num_dense = 4;
  spec.table_rows = {2000, 64, 500};
  spec.num_samples = 100000;
  spec.zipf_s = 1.05;
  return spec;
}

ElRecTrainerConfig trainer_config(const DatasetSpec& spec,
                                  const CodecConfig& codec) {
  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 8;
  cfg.model.bottom_hidden = {16};
  cfg.model.top_hidden = {16};
  cfg.placement = {TablePlacement::kDeviceTT, TablePlacement::kDeviceDense,
                   TablePlacement::kHost};
  cfg.tt_rank = 8;
  cfg.queue_capacity = 4;
  cfg.lr = 0.05f;
  cfg.seed = 11;
  cfg.codec = codec;
  return cfg;
}

TEST(CodecTrainer, LossyRunCutsQueueBytesAndStillLearns) {
  const DatasetSpec spec = tiny_spec();
  ElRecTrainer null_t(trainer_config(spec, CodecConfig{}), spec);
  ElRecTrainer lossy_t(trainer_config(spec, dual_config(8)), spec);
  SyntheticDataset data_a(spec, 5), data_b(spec, 5);
  const ElRecRunStats base = null_t.train(data_a, 30, 64);
  const ElRecRunStats lossy = lossy_t.train(data_b, 30, 64);

  // Null codec: header-only overhead, encoded ~= raw.
  ASSERT_GT(base.encoded_queue_bytes, 0u);
  const double null_ratio = static_cast<double>(base.raw_queue_bytes) /
                            static_cast<double>(base.encoded_queue_bytes);
  EXPECT_GT(null_ratio, 0.8);
  EXPECT_LT(null_ratio, 1.05);

  // Lossy codec: real reduction, and the loss stays close to the null run.
  const double lossy_ratio = static_cast<double>(lossy.raw_queue_bytes) /
                             static_cast<double>(lossy.encoded_queue_bytes);
  EXPECT_GT(lossy_ratio, 1.5);
  EXPECT_NEAR(lossy.final_loss, base.final_loss, 0.05);
}

TEST(CodecTrainer, LossyRunReproducesWithinBoundAcrossThreadCounts) {
  // Under a lossy codec the pipelined run is reproducible to within the
  // error bound, NOT bitwise: the cache's RAW-repair coverage is timing
  // dependent, and a patched row (the exact host value) differs from an
  // unpatched pulled row (which crossed the lossy host-pull encoder) by up
  // to the bound. Bitwise determinism is guaranteed for the encoder itself
  // (CodecDeterminism above) and for null-codec runs (test_elrec_trainer's
  // PipelinedMatchesSequentialExactly).
  const DatasetSpec spec = tiny_spec();
  auto run = [&](int threads) {
    omp_set_num_threads(threads);
    ElRecTrainer t(trainer_config(spec, dual_config(4)), spec);
    SyntheticDataset data(spec, 5);
    return t.train(data, 10, 32);
  };
  const ElRecRunStats a = run(1);
  const ElRecRunStats b = run(8);
  omp_set_num_threads(1);
  ASSERT_EQ(a.loss_curve.size(), b.loss_curve.size());
  for (std::size_t i = 0; i < a.loss_curve.size(); ++i) {
    ASSERT_NEAR(a.loss_curve[i], b.loss_curve[i], 1e-3f) << "batch " << i;
  }
  // Blob sizes may shift by a few kept rows, not by orders of magnitude.
  const double ratio = static_cast<double>(a.encoded_queue_bytes) /
                       static_cast<double>(b.encoded_queue_bytes);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
}

// ---------------------------------------------------------------------
// Checkpoint codec provenance.
// ---------------------------------------------------------------------

TEST(CodecCheckpoint, PipelineRefusesCrossCodecResume) {
  const std::string path = temp_path("elrec_codec_pipe_ckpt.bin");
  std::remove(path.c_str());
  Prng rng(6);
  HostEmbeddingStore store(16, 2, rng);
  save_pipeline_checkpoint(store, 7, path, CodecId::kDualLevel);

  Prng rng2(7);
  HostEmbeddingStore loaded(16, 2, rng2);
  EXPECT_THROW(load_pipeline_checkpoint(loaded, path, CodecId::kNull),
               PipelineError);
  // Same codec: loads and restores the weights exactly.
  EXPECT_EQ(load_pipeline_checkpoint(loaded, path, CodecId::kDualLevel), 7);
  EXPECT_EQ(Matrix::max_abs_diff(loaded.weights(), store.weights()), 0.0f);
  std::remove(path.c_str());
}

TEST(CodecCheckpoint, NullCodecWritesLegacyFormat) {
  // A null-codec checkpoint must stay loadable with no codec argument at
  // all (the pre-codec call sites) — i.e. the bytes are legacy 'EPC1'.
  const std::string path = temp_path("elrec_codec_legacy_ckpt.bin");
  std::remove(path.c_str());
  Prng rng(8);
  HostEmbeddingStore store(12, 3, rng);
  save_pipeline_checkpoint(store, 4, path, CodecId::kNull);
  Prng rng2(9);
  HostEmbeddingStore loaded(12, 3, rng2);
  EXPECT_EQ(load_pipeline_checkpoint(loaded, path), 4);
  EXPECT_EQ(Matrix::max_abs_diff(loaded.weights(), store.weights()), 0.0f);
  std::remove(path.c_str());
}

TEST(CodecCheckpoint, ElrecTrainerRefusesCrossCodecResume) {
  const std::string path = temp_path("elrec_codec_trainer_ckpt.bin");
  std::remove(path.c_str());
  const DatasetSpec spec = tiny_spec();

  ElRecTrainerConfig lossy_cfg = trainer_config(spec, dual_config(8));
  lossy_cfg.checkpoint_every_n = 4;
  lossy_cfg.checkpoint_path = path;
  ElRecTrainer writer(lossy_cfg, spec);
  SyntheticDataset data(spec, 5);
  const ElRecRunStats stats = writer.train(data, 8, 32);
  ASSERT_GT(stats.checkpoints_written, 0);

  ElRecTrainer null_reader(trainer_config(spec, CodecConfig{}), spec);
  EXPECT_THROW(null_reader.resume(path), PipelineError);

  ElRecTrainer lossy_reader(trainer_config(spec, dual_config(8)), spec);
  EXPECT_EQ(lossy_reader.resume(path), 8);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Codec-aware embedding cache.
// ---------------------------------------------------------------------

TEST(CodecCache, LossyCacheHoldsRowsAtCodecPrecision) {
  EmbeddingCache cache(4, 3, dual_config(8));
  Matrix values{{0.5f, -0.25f, 0.125f, 1.0f}, {2.0f, -1.5f, 0.75f, -0.375f}};
  cache.insert({3, 9}, values, 0);

  Matrix pulled(2, 4);  // zeros; sync patches from the cache
  EXPECT_EQ(cache.sync({3, 9}, pulled), 2);
  // What the cache returns is the codec round trip of what was inserted:
  // close to, but in general not bitwise-equal to, the raw values.
  float max_err = 0.0f;
  for (index_t i = 0; i < static_cast<index_t>(values.size()); ++i) {
    max_err =
        std::max(max_err, std::fabs(pulled.data()[i] - values.data()[i]));
  }
  EXPECT_GT(max_err, 0.0f);  // lossy: the round trip must have happened
  EXPECT_LT(max_err, 0.2f);  // ...within the codec's error scale
}

TEST(CodecCache, NullCodecCachesVerbatim) {
  EmbeddingCache cache(4, 3);  // default: no codec round trip
  Matrix values{{0.5f, -0.25f, 0.125f, 1.0f}};
  cache.insert({5}, values, 0);
  Matrix pulled(1, 4);
  EXPECT_EQ(cache.sync({5}, pulled), 1);
  EXPECT_EQ(std::memcmp(pulled.data(), values.data(), 4 * sizeof(float)), 0);
}

// ---------------------------------------------------------------------
// Compressed data-parallel all-reduce.
// ---------------------------------------------------------------------

DataParallelConfig dp_config(int workers, const CodecConfig& codec) {
  DataParallelConfig cfg;
  cfg.num_workers = workers;
  cfg.model.num_dense = 3;
  cfg.model.embedding_dim = 8;
  cfg.model.bottom_hidden = {16};
  cfg.model.top_hidden = {16};
  cfg.tt_rank = 4;
  cfg.tt_threshold = 1000;
  cfg.lr = 0.05f;
  cfg.seed = 13;
  cfg.codec = codec;
  return cfg;
}

DatasetSpec dp_spec() {
  DatasetSpec spec;
  spec.name = "codec-dp";
  spec.num_dense = 3;
  spec.table_rows = {2000, 50};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  return spec;
}

TEST(CodecDataParallel, LossyReplicasStayBitwiseInSync) {
  const DatasetSpec spec = dp_spec();
  DataParallelTrainer trainer(dp_config(3, dual_config(8)), spec);
  SyntheticDataset data(spec, 6);
  const DataParallelStats stats = trainer.train(data, 5, 48);
  EXPECT_GT(stats.allreduce_encoded_bytes, 0.0);
  EXPECT_LT(stats.allreduce_encoded_bytes, stats.allreduce_bytes);

  std::vector<float> w0, w2;
  trainer.worker_model(0).visit_parameters([&](float* p, std::size_t n) {
    w0.insert(w0.end(), p, p + n);
  });
  trainer.worker_model(2).visit_parameters([&](float* p, std::size_t n) {
    w2.insert(w2.end(), p, p + n);
  });
  ASSERT_EQ(w0.size(), w2.size());
  for (std::size_t i = 0; i < w0.size(); ++i) {
    ASSERT_EQ(w0[i], w2[i]) << "replica divergence at parameter " << i;
  }
}

TEST(CodecDataParallel, LossyTracksExactAveraging) {
  // Compressed delta averaging must stay close to exact parameter
  // averaging over a short run (error-bounded deltas, not drift).
  const DatasetSpec spec = dp_spec();
  DataParallelTrainer exact(dp_config(2, CodecConfig{}), spec);
  DataParallelTrainer lossy(dp_config(2, dual_config(8, 0.02f)), spec);
  SyntheticDataset data_a(spec, 6), data_b(spec, 6);
  exact.train(data_a, 6, 48);
  lossy.train(data_b, 6, 48);
  std::vector<float> we, wl;
  exact.worker_model(0).visit_parameters([&](float* p, std::size_t n) {
    we.insert(we.end(), p, p + n);
  });
  lossy.worker_model(0).visit_parameters([&](float* p, std::size_t n) {
    wl.insert(wl.end(), p, p + n);
  });
  ASSERT_EQ(we.size(), wl.size());
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < we.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(we[i] - wl[i]));
  }
  EXPECT_LT(max_diff, 0.05f);
}

}  // namespace
}  // namespace elrec
