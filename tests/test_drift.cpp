// Drifting-generator coverage: the seeded drift schedule is exactly
// reproducible (same seed => bitwise-identical stream, no matter how many
// other generator threads run concurrently), period 0 degenerates to the
// stationary generator bit for bit, and drift measurably migrates the hot
// set that AccessStats / top_accessed_indices report — the property the
// online promoter's cache re-warming exists for. Registered with the
// "sanitize" label: the concurrent-stream and concurrent-stats tests are
// the TSan surface of src/data's online additions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "data/drift.hpp"
#include "data/stats.hpp"
#include "data/synthetic.hpp"

namespace elrec {
namespace {

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "drift";
  spec.num_dense = 3;
  spec.table_rows = {800, 60};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  return spec;
}

DriftScheduleConfig fast_drift() {
  DriftScheduleConfig d;
  d.period_batches = 8;
  d.max_step_fraction = 0.05;
  d.seed = 42;
  return d;
}

bool batches_equal(const MiniBatch& a, const MiniBatch& b) {
  if (a.labels != b.labels) return false;
  if (a.dense.rows() != b.dense.rows() || a.dense.cols() != b.dense.cols()) {
    return false;
  }
  for (index_t i = 0; i < a.dense.rows(); ++i) {
    for (index_t j = 0; j < a.dense.cols(); ++j) {
      if (a.dense.at(i, j) != b.dense.at(i, j)) return false;
    }
  }
  if (a.sparse.size() != b.sparse.size()) return false;
  for (std::size_t t = 0; t < a.sparse.size(); ++t) {
    if (a.sparse[t].indices != b.sparse[t].indices) return false;
    if (a.sparse[t].offsets != b.sparse[t].offsets) return false;
  }
  return true;
}

TEST(DriftSchedule, PureFunctionOfSeedTableStep) {
  const auto spec = tiny_spec();
  DriftSchedule a(fast_drift(), spec.table_rows);
  DriftSchedule b(fast_drift(), spec.table_rows);
  for (index_t t = 0; t < 2; ++t) {
    const index_t rows = spec.table_rows[static_cast<std::size_t>(t)];
    for (index_t step = 0; step < 32; ++step) {
      const index_t off = a.offset_at(t, step);
      EXPECT_EQ(off, b.offset_at(t, step)) << "t=" << t << " step=" << step;
      EXPECT_GE(off, 0);
      EXPECT_LT(off, rows);
      if (step == 0) {
        EXPECT_EQ(off, 0);
      }
    }
  }
  // A different seed must actually change the trajectory.
  DriftScheduleConfig other = fast_drift();
  other.seed = 43;
  DriftSchedule c(other, spec.table_rows);
  int diffs = 0;
  for (index_t step = 1; step < 16; ++step) {
    if (c.offset_at(0, step) != a.offset_at(0, step)) ++diffs;
  }
  EXPECT_GT(diffs, 8);
}

TEST(DriftSchedule, StepAdvancesEveryPeriod) {
  DriftSchedule s(fast_drift(), tiny_spec().table_rows);
  EXPECT_EQ(s.step_at(0), 0);
  EXPECT_EQ(s.step_at(7), 0);
  EXPECT_EQ(s.step_at(8), 1);
  EXPECT_EQ(s.step_at(25), 3);

  DriftScheduleConfig off = fast_drift();
  off.period_batches = 0;
  DriftSchedule none(off, tiny_spec().table_rows);
  EXPECT_EQ(none.step_at(1000000), 0);
  EXPECT_EQ(none.offset_at(0, 5), 0);
}

TEST(DriftingDataset, PeriodZeroBitwiseIdenticalToStationary) {
  DriftScheduleConfig off;
  off.period_batches = 0;
  DriftingDataset drifting(tiny_spec(), 7, off);
  SyntheticDataset stationary(tiny_spec(), 7);
  for (int b = 0; b < 40; ++b) {
    EXPECT_TRUE(
        batches_equal(drifting.next_batch(32), stationary.next_batch(32)))
        << "batch " << b;
  }
  EXPECT_EQ(drifting.current_offset(0), 0);
}

TEST(DriftingDataset, SameSeedSameStreamAcrossConcurrentGenerators) {
  // Reference stream, produced serially.
  constexpr int kBatches = 64;
  DriftingDataset ref(tiny_spec(), 11, fast_drift());
  std::vector<MiniBatch> expected;
  expected.reserve(kBatches);
  for (int b = 0; b < kBatches; ++b) expected.push_back(ref.next_batch(32));
  ASSERT_GT(ref.current_offset(0), 0) << "drift never engaged";

  // Several threads each rebuild the identical stream concurrently; wall
  // clock, scheduling and neighbor threads must not leak into the bits.
  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DriftingDataset mine(tiny_spec(), 11, fast_drift());
      for (int b = 0; b < kBatches; ++b) {
        if (!batches_equal(mine.next_batch(32),
                           expected[static_cast<std::size_t>(b)])) {
          ++mismatches[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(t)], 0) << "thread " << t;
  }
}

TEST(DriftingDataset, DriftMigratesTheHotSet) {
  constexpr index_t kTopK = 24;
  DriftingDataset data(tiny_spec(), 13, fast_drift());

  // Hot set before any drift step (first period only).
  AccessStats before(tiny_spec().table_rows);
  for (int b = 0; b < 8; ++b) before.observe(data.next_batch(64));
  ASSERT_EQ(data.current_offset(0), 0);

  // Advance many drift periods, then measure again.
  for (int b = 0; b < 8 * 30; ++b) (void)data.next_batch(64);
  ASSERT_GT(data.current_offset(0), kTopK)
      << "cumulative offset too small to move the top-" << kTopK << " set";
  AccessStats after(tiny_spec().table_rows);
  for (int b = 0; b < 8; ++b) after.observe(data.next_batch(64));

  const auto hot_before = before.top_k(0, kTopK);
  const auto hot_after = after.top_k(0, kTopK);
  ASSERT_EQ(hot_before.size(), static_cast<std::size_t>(kTopK));
  ASSERT_EQ(hot_after.size(), static_cast<std::size_t>(kTopK));
  const std::set<index_t> sb(hot_before.begin(), hot_before.end());
  std::size_t overlap = 0;
  for (index_t idx : hot_after) overlap += sb.count(idx);
  // Rank rotation by more than k ranks relocates the whole Zipf head; a
  // little overlap can survive through sampling noise, most must not.
  EXPECT_LT(overlap, static_cast<std::size_t>(kTopK) / 2)
      << "hot set barely moved after 30 drift steps";
}

TEST(AccessStats, TopKDeterministicAndDecayHalves) {
  AccessStats stats({100});
  stats.observe_table(0, {5, 5, 5, 9, 9, 2, 7, 7, 7, 7});
  EXPECT_EQ(stats.total(0), 10u);
  // Hottest first; equal counts break ties by ascending index.
  EXPECT_EQ(stats.top_k(0, 3), (std::vector<index_t>{7, 5, 9}));
  EXPECT_EQ(stats.top_k(0, 10), (std::vector<index_t>{7, 5, 9, 2}));

  stats.decay();  // 4,3,2,1 -> 2,1,1,0
  EXPECT_EQ(stats.top_k(0, 10), (std::vector<index_t>{7, 5, 9}));
  stats.decay();
  stats.decay();
  EXPECT_TRUE(stats.top_k(0, 10).empty());
}

TEST(AccessStats, ConcurrentObserversLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  AccessStats stats({64});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const index_t mine = static_cast<index_t>(t);
      for (int r = 0; r < kRounds; ++r) {
        stats.observe_table(0, {mine, mine, static_cast<index_t>(63 - t)});
        if (r % 32 == 0) (void)stats.top_k(0, 8);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.total(0),
            static_cast<std::uint64_t>(kThreads) * kRounds * 3);
  // Each thread's dominant index got exactly 2 * kRounds hits, so the top-8
  // set is exactly the 8 dominant indices (ties broken ascending).
  EXPECT_EQ(stats.top_k(0, 8),
            (std::vector<index_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace elrec
