// End-to-end gradient verification: the full DLRM training step (bottom
// MLP -> tables -> interaction -> top MLP -> BCE) against central finite
// differences of the batch loss, for both dense and Eff-TT tables. This is
// the strongest single correctness statement the model can make: every
// backward path composed together, checked against the definition of the
// gradient.
#include <gtest/gtest.h>

#include <cmath>

#include "core/eff_tt_table.hpp"
#include "dlrm/dlrm_model.hpp"
#include "dlrm/loss.hpp"
#include "embed/embedding_bag.hpp"

namespace elrec {
namespace {

struct Builder {
  bool use_tt;
  std::unique_ptr<DlrmModel> operator()(std::uint64_t seed) const {
    Prng rng(seed);
    DlrmConfig cfg;
    cfg.num_dense = 3;
    cfg.embedding_dim = 6;
    cfg.bottom_hidden = {8};
    cfg.top_hidden = {8};
    std::vector<std::unique_ptr<IEmbeddingTable>> tables;
    if (use_tt) {
      tables.push_back(std::make_unique<EffTTTable>(
          24, TTShape({2, 3, 4}, {1, 2, 3}, {1, 3, 3, 1}), rng, EffTTConfig{},
          0.2f));
    } else {
      tables.push_back(std::make_unique<EmbeddingBag>(24, 6, rng, 0.2f));
    }
    tables.push_back(std::make_unique<EmbeddingBag>(10, 6, rng, 0.2f));
    return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
  }
};

MiniBatch fixed_batch() {
  MiniBatch b;
  b.dense = Matrix{{0.5f, -1.0f, 0.2f},
                   {1.5f, 0.3f, -0.7f},
                   {-0.2f, 0.8f, 1.1f},
                   {0.0f, -0.4f, 0.6f}};
  b.sparse.push_back(IndexBatch::from_bags({{3}, {17, 3}, {23}, {0}}));
  b.sparse.push_back(IndexBatch::from_bags({{1}, {9}, {1, 2}, {5}}));
  b.labels = {1.0f, 0.0f, 1.0f, 1.0f};
  return b;
}

float batch_loss(DlrmModel& model, const MiniBatch& batch) {
  Matrix logits;
  model.forward(batch, logits);
  return bce_with_logits_loss(logits, batch.labels);
}

class DlrmGradientCheck : public ::testing::TestWithParam<bool> {};

TEST_P(DlrmGradientCheck, TrainStepMatchesFiniteDifferences) {
  const Builder build{GetParam()};
  const MiniBatch batch = fixed_batch();

  // Analytic gradient via lr = 1: grad = theta_before - theta_after.
  auto updated = build(42);
  updated->train_step(batch, 1.0f);
  std::vector<float> after;
  updated->visit_parameters(
      [&](float* p, std::size_t n) { after.insert(after.end(), p, p + n); });

  auto reference = build(42);
  std::vector<float*> buffers;
  std::vector<std::size_t> sizes;
  reference->visit_parameters([&](float* p, std::size_t n) {
    buffers.push_back(p);
    sizes.push_back(n);
  });

  // Spot-check a deterministic sample of parameters in every buffer.
  const float eps = 2e-3f;
  std::size_t flat_base = 0;
  for (std::size_t buf = 0; buf < buffers.size(); ++buf) {
    const std::size_t stride = std::max<std::size_t>(1, sizes[buf] / 4);
    for (std::size_t i = 0; i < sizes[buf]; i += stride) {
      auto plus = build(42);
      auto minus = build(42);
      std::size_t seen = 0;
      plus->visit_parameters([&](float* p, std::size_t n) {
        if (seen == buf) p[i] += eps;
        ++seen;
        static_cast<void>(n);
      });
      seen = 0;
      minus->visit_parameters([&](float* p, std::size_t n) {
        if (seen == buf) p[i] -= eps;
        ++seen;
        static_cast<void>(n);
      });
      const double fd = (batch_loss(*plus, batch) - batch_loss(*minus, batch)) /
                        (2.0 * eps);
      const double analytic =
          static_cast<double>(buffers[buf][i]) - after[flat_base + i];
      EXPECT_NEAR(analytic, fd, 2e-2 * (1.0 + std::fabs(fd)))
          << "buffer " << buf << " param " << i
          << (GetParam() ? " (Eff-TT)" : " (dense)");
    }
    flat_base += sizes[buf];
  }
}

INSTANTIATE_TEST_SUITE_P(DenseAndTT, DlrmGradientCheck,
                         ::testing::Values(false, true));

}  // namespace
}  // namespace elrec
