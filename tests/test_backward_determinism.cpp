// Bitwise determinism of the parallel Eff-TT backward: the unique rows of a
// batch are split into a FIXED number of contiguous shards (independent of
// the OpenMP thread count) and the shards merge in shard order, so training
// the same table on the same stream must produce byte-identical cores at any
// thread count. PR 1's crash-safe checkpoint/resume replays batches and
// compares parameters exactly — this property is what makes that valid.
#include <gtest/gtest.h>

#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/eff_tt_table.hpp"
#include "embed/index_batch.hpp"

namespace elrec {
namespace {

constexpr index_t kRows = 5000;
constexpr index_t kDim = 16;
constexpr index_t kRank = 8;

// Batches big enough that the parallel shard path (u >= 2 * shards) and the
// parallel aggregation path actually engage, with repeats so in-advance
// aggregation has multi-occurrence rows to segment-sum.
std::vector<IndexBatch> make_batches(std::uint64_t seed, int count,
                                     index_t batch_size) {
  Prng rng(seed);
  std::vector<IndexBatch> batches;
  for (int b = 0; b < count; ++b) {
    std::vector<std::vector<index_t>> bags(
        static_cast<std::size_t>(batch_size));
    for (auto& bag : bags) {
      const int len = 1 + static_cast<int>(rng.uniform_index(3));
      for (int i = 0; i < len; ++i) {
        // Skewed: half the draws land in a hot prefix of 64 rows.
        const index_t row =
            rng.uniform() < 0.5
                ? static_cast<index_t>(rng.uniform_index(64))
                : static_cast<index_t>(rng.uniform_index(kRows));
        bag.push_back(row);
      }
    }
    batches.push_back(IndexBatch::from_bags(bags));
  }
  return batches;
}

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

// Trains a fresh identically-seeded table for `steps` on the shared stream
// under `threads` OpenMP threads and returns it.
EffTTTable train(int threads, const std::vector<IndexBatch>& batches,
                 const std::vector<Matrix>& grads, EffTTConfig config,
                 OptimizerConfig opt = {}) {
  set_threads(threads);
  Prng rng(42);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng,
                   config);
  table.set_optimizer(opt);
  Matrix out;
  for (std::size_t i = 0; i < batches.size(); ++i) {
    table.forward(batches[i], out);
    table.backward_and_update(batches[i], grads[i], 0.05f);
  }
  set_threads(1);
  return table;
}

void expect_cores_bitwise_equal(EffTTTable& a, EffTTTable& b) {
  ASSERT_EQ(a.cores().shape().num_cores(), b.cores().shape().num_cores());
  for (int k = 0; k < a.cores().shape().num_cores(); ++k) {
    EXPECT_EQ(Matrix::max_abs_diff(a.cores().core(k), b.cores().core(k)), 0.0f)
        << "core " << k << " differs across thread counts";
  }
}

class BackwardDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    batches_ = make_batches(7, 4, 256);
    Prng grad_rng(9);
    for (const IndexBatch& b : batches_) {
      Matrix g(b.batch_size(), kDim);
      g.fill_normal(grad_rng, 0.0f, 0.1f);
      grads_.push_back(std::move(g));
    }
  }

  std::vector<IndexBatch> batches_;
  std::vector<Matrix> grads_;
};

TEST_F(BackwardDeterminismTest, FusedSgdBitwiseAcrossThreadCounts) {
  EffTTTable t1 = train(1, batches_, grads_, EffTTConfig{});
  EffTTTable t4 = train(4, batches_, grads_, EffTTConfig{});
  EffTTTable t8 = train(8, batches_, grads_, EffTTConfig{});
  expect_cores_bitwise_equal(t1, t4);
  expect_cores_bitwise_equal(t1, t8);
}

TEST_F(BackwardDeterminismTest, AdagradBitwiseAcrossThreadCounts) {
  OptimizerConfig opt;
  opt.kind = OptimizerKind::kAdagrad;
  EffTTTable t1 = train(1, batches_, grads_, EffTTConfig{}, opt);
  EffTTTable t4 = train(4, batches_, grads_, EffTTConfig{}, opt);
  expect_cores_bitwise_equal(t1, t4);
}

TEST_F(BackwardDeterminismTest, AblationPathsBitwiseAcrossThreadCounts) {
  // Every ablation (aggregation off, fused update off) must hold the same
  // invariant; their backward loops run through the same sharded machinery
  // or a strictly serial path.
  for (int p = 0; p < 4; ++p) {
    EffTTConfig config{true, (p & 1) != 0, (p & 2) != 0};
    EffTTTable t1 = train(1, batches_, grads_, config);
    EffTTTable t4 = train(4, batches_, grads_, config);
    expect_cores_bitwise_equal(t1, t4);
  }
}

TEST_F(BackwardDeterminismTest, RepeatedRunsAreBitwiseReproducible) {
  // Same thread count twice — guards against any hidden nondeterminism
  // (uninitialised scratch, iteration-order dependence on reused buffers).
  EffTTTable a = train(4, batches_, grads_, EffTTConfig{});
  EffTTTable b = train(4, batches_, grads_, EffTTConfig{});
  expect_cores_bitwise_equal(a, b);
}

}  // namespace
}  // namespace elrec
