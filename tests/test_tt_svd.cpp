// Tests for TT-SVD decomposition: exact round trips at full rank, error
// decay with rank, padding, and agreement with Eq. 2 element indexing.
#include <gtest/gtest.h>

#include "tt/tt_svd.hpp"

namespace elrec {
namespace {

TEST(TTSvd, FullRankRoundTripIsExact) {
  Prng rng(101);
  Matrix table(8, 8);
  table.fill_normal(rng);
  // Full ranks for (2,2,2)x(2,2,2): unfold ranks max are 4 and 4.
  const TTCores cores = tt_svd(table, {2, 2, 2}, {2, 2, 2}, 64);
  EXPECT_LT(tt_reconstruction_error(cores, table), 1e-4);
}

TEST(TTSvd, TwoCoreDecomposition) {
  Prng rng(102);
  Matrix table(12, 6);
  table.fill_normal(rng);
  const TTCores cores = tt_svd(table, {3, 4}, {2, 3}, 64);
  EXPECT_LT(tt_reconstruction_error(cores, table), 1e-4);
}

TEST(TTSvd, ErrorDecreasesWithRank) {
  Prng rng(103);
  Matrix table(27, 27);
  table.fill_normal(rng);
  double prev = 2.0;
  for (index_t rank : {1, 3, 6, 9}) {
    const TTCores cores = tt_svd(table, {3, 3, 3}, {3, 3, 3}, rank);
    const double err = tt_reconstruction_error(cores, table);
    EXPECT_LE(err, prev + 1e-6) << "rank " << rank;
    prev = err;
  }
}

TEST(TTSvd, LowRankInputRecoveredAtLowRank) {
  // Build a table that is exactly TT-representable at rank 2, then verify a
  // rank-2 TT-SVD reproduces it.
  Prng rng(104);
  TTCores gen(TTShape({3, 3, 3}, {2, 2, 2}, {1, 2, 2, 1}));
  gen.init_normal(rng, 0.5f);
  const Matrix table = gen.materialize(27);
  const TTCores cores = tt_svd(table, {3, 3, 3}, {2, 2, 2}, 2);
  EXPECT_LT(tt_reconstruction_error(cores, table), 1e-3);
}

TEST(TTSvd, PaddedRowsHandled) {
  Prng rng(105);
  Matrix table(10, 8);  // 10 rows covered by 3x2x2 = 12 padded rows
  table.fill_normal(rng);
  const TTCores cores = tt_svd(table, {3, 2, 2}, {2, 2, 2}, 64);
  EXPECT_LT(tt_reconstruction_error(cores, table), 1e-4);
  EXPECT_EQ(cores.shape().padded_rows(), 12);
}

TEST(TTSvd, RanksAreClamped) {
  Prng rng(106);
  Matrix table(8, 8);
  table.fill_normal(rng);
  const TTCores cores = tt_svd(table, {2, 2, 2}, {2, 2, 2}, 3);
  EXPECT_LE(cores.shape().rank(1), 3);
  EXPECT_LE(cores.shape().rank(2), 3);
}

TEST(TTSvd, RejectsBadFactorizations) {
  Matrix table(8, 8);
  // Rows not covered.
  EXPECT_THROW(tt_svd(table, {2, 2}, {2, 4}, 8), Error);
  // Cols not exact.
  EXPECT_THROW(tt_svd(table, {2, 2, 2}, {2, 2, 3}, 8), Error);
}

TEST(TTSvd, MatchesEquation2ElementIndexing) {
  // Verify one reconstructed element against the explicit slice-product of
  // Eq. 2 for a deterministic table.
  Matrix table(4, 4);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      table.at(i, j) = static_cast<float>(i * 4 + j + 1);
    }
  }
  const TTCores cores = tt_svd(table, {2, 2}, {2, 2}, 8);
  std::vector<float> row(4);
  for (index_t i = 0; i < 4; ++i) {
    cores.reconstruct_row(i, row);
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(row[static_cast<std::size_t>(j)], table.at(i, j), 1e-3f);
    }
  }
}

}  // namespace
}  // namespace elrec
