// Edge-case and property sweeps for the Eff-TT table: degenerate shapes
// (rank 1, unit factors), boundary rows, padded vocabularies, empty
// batches, and a parameterized equivalence sweep across shape/rank/batch
// combinations against both the dense materialization and the baseline.
#include <gtest/gtest.h>

#include "core/eff_tt_table.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

struct ShapeCase {
  std::vector<index_t> row_factors;
  std::vector<index_t> col_factors;
  std::vector<index_t> ranks;
  index_t num_rows;
};

class EffTTShapeSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(EffTTShapeSweep, ForwardMatchesMaterialization) {
  const ShapeCase& c = GetParam();
  Prng rng(7);
  EffTTTable table(c.num_rows,
                   TTShape(c.row_factors, c.col_factors, c.ranks), rng, {},
                   0.3f);
  const Matrix dense = table.cores().materialize(c.num_rows);
  // Every row, one bag each, plus a duplicate-heavy bag.
  std::vector<std::vector<index_t>> bags;
  for (index_t r = 0; r < c.num_rows; ++r) bags.push_back({r});
  bags.push_back({0, c.num_rows - 1, 0});
  const IndexBatch batch = IndexBatch::from_bags(bags);
  Matrix out;
  table.forward(batch, out);
  for (index_t r = 0; r < c.num_rows; ++r) {
    for (index_t j = 0; j < dense.cols(); ++j) {
      EXPECT_NEAR(out.at(r, j), dense.at(r, j), 1e-4f)
          << "row " << r << " col " << j;
    }
  }
  for (index_t j = 0; j < dense.cols(); ++j) {
    EXPECT_NEAR(out.at(c.num_rows, j),
                2.0f * dense.at(0, j) + dense.at(c.num_rows - 1, j), 1e-4f);
  }
}

TEST_P(EffTTShapeSweep, BackwardMatchesBaseline) {
  const ShapeCase& c = GetParam();
  Prng init(9);
  TTCores cores(TTShape(c.row_factors, c.col_factors, c.ranks));
  cores.init_normal(init, 0.3f);
  EffTTTable eff(c.num_rows, cores);
  TTTable base(c.num_rows, cores);

  Prng rng(11);
  std::vector<index_t> idx;
  for (int i = 0; i < 9; ++i) {
    idx.push_back(static_cast<index_t>(rng.uniform_index(
        static_cast<std::uint64_t>(c.num_rows))));
  }
  const IndexBatch batch = IndexBatch::one_per_sample(idx);
  Matrix grad(9, eff.dim());
  grad.fill_normal(rng, 0.0f, 0.2f);
  Matrix oe, ob;
  eff.forward(batch, oe);
  base.forward(batch, ob);
  eff.backward_and_update(batch, grad, 0.1f);
  base.backward_and_update(batch, grad, 0.1f);
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegenerateAndTypicalShapes, EffTTShapeSweep,
    ::testing::Values(
        // Rank-1 decomposition (pure outer products).
        ShapeCase{{3, 3, 3}, {2, 2, 2}, {1, 1, 1, 1}, 27},
        // Unit column factor in the middle (n_2 == 1).
        ShapeCase{{3, 4, 3}, {2, 1, 4}, {1, 3, 3, 1}, 36},
        // Unit ROW factor in the middle (m_2 == 1).
        ShapeCase{{5, 1, 6}, {2, 2, 2}, {1, 4, 4, 1}, 30},
        // First factor 1.
        ShapeCase{{1, 6, 5}, {2, 2, 2}, {1, 2, 2, 1}, 30},
        // Asymmetric ranks.
        ShapeCase{{4, 4, 4}, {2, 3, 2}, {1, 7, 2, 1}, 64},
        // Rank larger than any mode (over-parameterized).
        ShapeCase{{2, 2, 2}, {2, 2, 2}, {1, 16, 16, 1}, 8},
        // dim 1 columns everywhere.
        ShapeCase{{3, 3, 3}, {1, 1, 1}, {1, 2, 2, 1}, 27}));

TEST(EffTTEdge, SingleRowTable) {
  Prng rng(1);
  // num_rows == 1, padded to 2x2x2 = 8.
  EffTTTable table(1, TTShape({2, 2, 2}, {2, 2, 2}, {1, 2, 2, 1}), rng);
  Matrix out;
  table.forward(IndexBatch::one_per_sample({0, 0, 0}), out);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(table.last_stats().unique_rows, 1);
  Matrix grad(3, 8);
  grad.fill(0.1f);
  EXPECT_NO_THROW(table.backward_and_update(IndexBatch::one_per_sample({0, 0, 0}),
                                            grad, 0.1f));
}

TEST(EffTTEdge, EmptyBatchOfBags) {
  Prng rng(2);
  EffTTTable table(55, TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}), rng);
  const IndexBatch batch = IndexBatch::from_bags({{}, {}, {}});
  Matrix out;
  table.forward(batch, out);
  EXPECT_EQ(out.rows(), 3);
  for (index_t i = 0; i < out.size(); ++i) EXPECT_EQ(out.data()[i], 0.0f);
  Matrix grad(3, 12);
  grad.fill(1.0f);
  const Matrix before0 = table.cores().core(0);
  table.backward_and_update(batch, grad, 0.5f);
  EXPECT_LT(Matrix::max_abs_diff(table.cores().core(0), before0), 1e-9f);
}

TEST(EffTTEdge, LastPaddedRowAccessible) {
  // num_rows == padded_rows: the very last index exercises the factorize
  // boundary.
  Prng rng(3);
  EffTTTable table(60, TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}), rng);
  const Matrix dense = table.cores().materialize(60);
  Matrix out;
  table.forward(IndexBatch::one_per_sample({59}), out);
  for (index_t j = 0; j < 12; ++j) {
    EXPECT_NEAR(out.at(0, j), dense.at(59, j), 1e-5f);
  }
}

TEST(EffTTEdge, RepeatedBackwardWithoutForward) {
  Prng rng(4);
  EffTTTable table(55, TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}), rng);
  Matrix grad(2, 12);
  grad.fill(0.01f);
  const IndexBatch batch = IndexBatch::one_per_sample({5, 6});
  for (int i = 0; i < 5; ++i) {
    EXPECT_NO_THROW(table.backward_and_update(batch, grad, 0.05f));
  }
}

TEST(EffTTEdge, AlternatingBatchSizesReuseInternalBuffers) {
  Prng rng(5);
  EffTTTable table(500, TTShape::balanced(500, 8, 3, 4), rng);
  Prng idx_rng(6);
  Matrix out;
  for (index_t size : {512, 16, 1024, 1, 256}) {
    std::vector<index_t> idx;
    for (index_t i = 0; i < size; ++i) {
      idx.push_back(static_cast<index_t>(idx_rng.uniform_index(500)));
    }
    const IndexBatch batch = IndexBatch::one_per_sample(idx);
    table.forward(batch, out);
    EXPECT_EQ(out.rows(), size);
    Matrix grad(size, 8);
    grad.fill_normal(idx_rng, 0.0f, 0.01f);
    EXPECT_NO_THROW(table.backward_and_update(batch, grad, 0.01f));
  }
}

TEST(EffTTEdge, ZeroLearningRateLeavesParametersUntouched) {
  Prng rng(7);
  EffTTTable table(55, TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}), rng);
  const Matrix c0 = table.cores().core(0);
  const Matrix c1 = table.cores().core(1);
  const Matrix c2 = table.cores().core(2);
  Matrix grad(1, 12);
  grad.fill(100.0f);
  table.backward_and_update(IndexBatch::one_per_sample({17}), grad, 0.0f);
  EXPECT_LT(Matrix::max_abs_diff(table.cores().core(0), c0), 1e-9f);
  EXPECT_LT(Matrix::max_abs_diff(table.cores().core(1), c1), 1e-9f);
  EXPECT_LT(Matrix::max_abs_diff(table.cores().core(2), c2), 1e-9f);
}

// ---------------------------------------------------------------------
// Generic-d support (extension beyond the paper's fixed 3 cores): the
// reuse prefix still spans the first two cores; the remaining chain is
// applied per unique row.
// ---------------------------------------------------------------------

TEST(EffTTGenericD, FourCoreForwardMatchesMaterialization) {
  Prng rng(21);
  const TTShape shape({2, 3, 2, 3}, {2, 2, 2, 2}, {1, 3, 4, 3, 1});
  EffTTTable table(36, shape, rng, {}, 0.3f);
  const Matrix dense = table.cores().materialize(36);
  std::vector<std::vector<index_t>> bags;
  for (index_t r = 0; r < 36; ++r) bags.push_back({r});
  bags.push_back({5, 5, 30});
  Matrix out;
  table.forward(IndexBatch::from_bags(bags), out);
  for (index_t r = 0; r < 36; ++r) {
    for (index_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(out.at(r, j), dense.at(r, j), 1e-4f) << "row " << r;
    }
  }
  for (index_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(out.at(36, j), 2.0f * dense.at(5, j) + dense.at(30, j), 1e-4f);
  }
  // Prefixes still dedup over the first two cores: rows 0..5 share i0=i1=0
  // for m = (2,3,2,3): suffix = 6, so rows 0-5 -> prefix 0.
  Matrix out2;
  table.forward(IndexBatch::one_per_sample({0, 1, 2, 3, 4, 5}), out2);
  EXPECT_EQ(table.last_stats().unique_prefixes, 1);
}

TEST(EffTTGenericD, FourCoreBackwardMatchesBaseline) {
  Prng init(22);
  TTCores cores(TTShape({2, 3, 2, 3}, {2, 2, 2, 2}, {1, 3, 4, 3, 1}));
  cores.init_normal(init, 0.3f);
  EffTTTable eff(36, cores);
  TTTable base(36, cores);

  Prng rng(23);
  for (int step = 0; step < 4; ++step) {
    std::vector<index_t> idx;
    for (int i = 0; i < 14; ++i) {
      idx.push_back(static_cast<index_t>(rng.uniform_index(36)));
    }
    const IndexBatch batch = IndexBatch::one_per_sample(idx);
    Matrix grad(14, 16);
    grad.fill_normal(rng, 0.0f, 0.1f);
    Matrix oe, ob;
    eff.forward(batch, oe);
    base.forward(batch, ob);
    ASSERT_LT(Matrix::max_abs_diff(oe, ob), 1e-4f) << "step " << step;
    eff.backward_and_update(batch, grad, 0.05f);
    base.backward_and_update(batch, grad, 0.05f);
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-4f)
        << "core " << k;
  }
}

TEST(EffTTGenericD, FourCoreAblationsStayEquivalent) {
  for (int mask = 0; mask < 8; ++mask) {
    const EffTTConfig config{(mask & 1) != 0, (mask & 2) != 0,
                             (mask & 4) != 0};
    Prng init(24);
    TTCores cores(TTShape({3, 2, 2, 2}, {2, 2, 2, 2}, {1, 2, 3, 2, 1}));
    cores.init_normal(init, 0.3f);
    EffTTTable eff(24, cores, config);
    TTTable base(24, cores);
    const IndexBatch batch = IndexBatch::from_bags({{1, 9, 9}, {23}, {0, 1}});
    Prng rng(25);
    Matrix grad(3, 16);
    grad.fill_normal(rng, 0.0f, 0.2f);
    Matrix oe, ob;
    eff.forward(batch, oe);
    base.forward(batch, ob);
    ASSERT_LT(Matrix::max_abs_diff(oe, ob), 1e-4f) << "mask " << mask;
    eff.backward_and_update(batch, grad, 0.1f);
    base.backward_and_update(batch, grad, 0.1f);
    for (int k = 0; k < 4; ++k) {
      EXPECT_LT(
          Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
          1e-4f)
          << "mask " << mask << " core " << k;
    }
  }
}

TEST(EffTTGenericD, TwoCoreShapeRejected) {
  Prng rng(26);
  EXPECT_THROW(
      EffTTTable(16, TTShape({4, 4}, {2, 2}, {1, 2, 1}), rng), Error);
}

TEST(EffTTEdge, WholeVocabularyBatch) {
  // A batch hitting every row exactly once: unique == total, prefix count
  // equals the number of distinct (i1, i2) pairs.
  Prng rng(8);
  const TTShape shape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1});
  EffTTTable table(60, shape, rng);
  std::vector<index_t> all(60);
  for (index_t i = 0; i < 60; ++i) all[static_cast<std::size_t>(i)] = i;
  Matrix out;
  table.forward(IndexBatch::one_per_sample(all), out);
  EXPECT_EQ(table.last_stats().unique_rows, 60);
  EXPECT_EQ(table.last_stats().unique_prefixes, 12);  // 3 * 4 prefixes
}

}  // namespace
}  // namespace elrec
