// Tests for the Eff-TT table (the paper's contribution): numerical
// equivalence with the dense materialization and the TT-Rec baseline under
// every configuration of the three optimizations, reuse statistics,
// Algorithm 1 pointer preparation, and the index bijection.
#include <gtest/gtest.h>

#include "core/eff_tt_table.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

TTShape small_shape() { return TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}); }

TTCores random_cores(std::uint64_t seed, TTShape shape = small_shape()) {
  Prng rng(seed);
  TTCores cores(std::move(shape));
  cores.init_normal(rng, 0.2f);
  return cores;
}

// All 8 optimization on/off combinations.
class EffTTConfigTest : public ::testing::TestWithParam<int> {
 protected:
  EffTTConfig config() const {
    const int p = GetParam();
    return EffTTConfig{(p & 1) != 0, (p & 2) != 0, (p & 4) != 0};
  }
};

TEST_P(EffTTConfigTest, ForwardMatchesMaterializedTable) {
  EffTTTable table(55, random_cores(11), config());
  const Matrix dense = table.cores().materialize(55);
  const IndexBatch batch =
      IndexBatch::from_bags({{0}, {54}, {7, 7, 12}, {}, {3, 3, 3, 3}});
  Matrix out;
  table.forward(batch, out);
  ASSERT_EQ(out.rows(), 5);
  for (index_t j = 0; j < 12; ++j) {
    EXPECT_NEAR(out.at(0, j), dense.at(0, j), 1e-4f);
    EXPECT_NEAR(out.at(1, j), dense.at(54, j), 1e-4f);
    EXPECT_NEAR(out.at(2, j), 2.0f * dense.at(7, j) + dense.at(12, j), 1e-4f);
    EXPECT_EQ(out.at(3, j), 0.0f);
    EXPECT_NEAR(out.at(4, j), 4.0f * dense.at(3, j), 1e-4f);
  }
}

TEST_P(EffTTConfigTest, BackwardMatchesBaselineTTTable) {
  // Same initial cores, same batch, same lr -> parameters must agree with
  // the TT-Rec baseline regardless of which optimizations are enabled (the
  // optimizations change the schedule, not the math).
  const TTCores init = random_cores(13);
  EffTTTable eff(55, init, config());
  TTTable base(55, init);

  Prng rng(99);
  const IndexBatch batch =
      IndexBatch::from_bags({{1, 9, 9}, {9}, {20, 1}, {44, 44, 44}});
  Matrix grad(4, 12);
  grad.fill_normal(rng);

  Matrix out_eff, out_base;
  eff.forward(batch, out_eff);
  base.forward(batch, out_base);
  EXPECT_LT(Matrix::max_abs_diff(out_eff, out_base), 1e-4f);

  eff.backward_and_update(batch, grad, 0.05f);
  base.backward_and_update(batch, grad, 0.05f);
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-4f)
        << "core " << k;
  }
}

TEST_P(EffTTConfigTest, MultiStepTrainingStaysEquivalent) {
  const TTCores init = random_cores(17);
  EffTTTable eff(55, init, config());
  TTTable base(55, init);
  Prng rng(5);

  for (int step = 0; step < 5; ++step) {
    std::vector<index_t> idx;
    for (int i = 0; i < 16; ++i) {
      idx.push_back(static_cast<index_t>(rng.uniform_index(55)));
    }
    const IndexBatch batch = IndexBatch::one_per_sample(idx);
    Matrix grad(16, 12);
    grad.fill_normal(rng, 0.0f, 0.1f);

    Matrix out_eff, out_base;
    eff.forward(batch, out_eff);
    base.forward(batch, out_base);
    ASSERT_LT(Matrix::max_abs_diff(out_eff, out_base), 1e-3f) << "step " << step;
    eff.backward_and_update(batch, grad, 0.1f);
    base.backward_and_update(batch, grad, 0.1f);
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, EffTTConfigTest, ::testing::Range(0, 8));

TEST(EffTTTable, RequiresThreeCores) {
  Prng rng(1);
  EXPECT_THROW(
      EffTTTable(16, TTShape({4, 4}, {2, 2}, {1, 2, 1}), rng),
      Error);
}

TEST(EffTTTable, StatsReflectDeduplication) {
  EffTTTable table(55, random_cores(19));
  // 6 indices, 3 unique rows {7, 12, 13}; prefixes (m3=5): 7/5=1, 12/5=2,
  // 13/5=2 -> 2 unique prefixes.
  const IndexBatch batch = IndexBatch::from_bags({{7, 7, 12}, {13, 12, 7}});
  Matrix out;
  table.forward(batch, out);
  const auto& s = table.last_stats();
  EXPECT_EQ(s.total_indices, 6);
  EXPECT_EQ(s.unique_rows, 3);
  EXPECT_EQ(s.unique_prefixes, 2);
}

TEST(EffTTTable, NoReuseStatsCountOccurrences) {
  EffTTTable table(55, random_cores(19), EffTTConfig{false, true, true});
  const IndexBatch batch = IndexBatch::from_bags({{7, 7, 12}, {13, 12, 7}});
  Matrix out;
  table.forward(batch, out);
  EXPECT_EQ(table.last_stats().unique_rows, 6);
  EXPECT_EQ(table.last_stats().unique_prefixes, 6);
}

TEST(PointerPrep, EmitsNullGapsForRepeatedPrefixes) {
  const TTCores cores = random_cores(23);
  ReuseBuffer buffer(3 * 4, 2 * 2 * 5);
  PointerPrepResult prep;
  // m3 = 5: rows 0..4 share prefix 0; row 5 has prefix 1.
  const std::vector<index_t> rows{0, 3, 5, 4};
  prepare_prefix_pointers(cores, rows, buffer, prep);
  EXPECT_EQ(prep.unique_prefixes, 2);
  EXPECT_NE(prep.ptr_c[0], nullptr);   // first claim of prefix 0
  EXPECT_EQ(prep.ptr_c[1], nullptr);   // repeat of prefix 0
  EXPECT_NE(prep.ptr_c[2], nullptr);   // prefix 1
  EXPECT_EQ(prep.ptr_c[3], nullptr);   // repeat of prefix 0
  EXPECT_EQ(prep.slot_of[0], prep.slot_of[1]);
  EXPECT_EQ(prep.slot_of[0], prep.slot_of[3]);
  EXPECT_NE(prep.slot_of[0], prep.slot_of[2]);
}

TEST(ReuseBufferTest, EpochInvalidatesClaims) {
  ReuseBuffer buffer(10, 4);
  buffer.begin_batch(4);
  auto [s0, first0] = buffer.claim(3);
  EXPECT_TRUE(first0);
  auto [s1, first1] = buffer.claim(3);
  EXPECT_FALSE(first1);
  EXPECT_EQ(s0, s1);
  buffer.begin_batch(4);
  auto [s2, first2] = buffer.claim(3);
  EXPECT_TRUE(first2);
  EXPECT_EQ(buffer.num_slots(), 1);
  static_cast<void>(s2);
}

TEST(ReuseBufferTest, SlotPointersStableAcrossClaims) {
  // Regression: claims must never reallocate the backing store — pointer
  // lists prepared for batched GEMM would dangle.
  ReuseBuffer buffer(100, 8);
  buffer.begin_batch(100);
  const float* first = buffer.slot_data(buffer.claim(0).first);
  for (index_t p = 1; p < 100; ++p) buffer.claim(p);
  EXPECT_EQ(buffer.slot_data(0), first);
  EXPECT_EQ(buffer.num_slots(), 100);
}

TEST(ReuseBufferTest, OverClaimingThrows) {
  ReuseBuffer buffer(10, 4);
  buffer.begin_batch(1);
  buffer.claim(0);
  EXPECT_THROW(buffer.claim(1), Error);
}

TEST(EffTTTable, BijectionValidation) {
  EffTTTable table(55, random_cores(29));
  std::vector<index_t> bad(55, 0);  // not a bijection
  EXPECT_THROW(table.set_index_bijection(bad), Error);
  std::vector<index_t> wrong_size(54);
  EXPECT_THROW(table.set_index_bijection(wrong_size), Error);
  std::vector<index_t> ok(55);
  for (index_t i = 0; i < 55; ++i) ok[static_cast<std::size_t>(i)] = 54 - i;
  EXPECT_NO_THROW(table.set_index_bijection(ok));
  EXPECT_TRUE(table.has_index_bijection());
}

TEST(EffTTTable, BijectionRemapsLookups) {
  EffTTTable table(55, random_cores(31));
  const Matrix dense = table.cores().materialize(55);
  std::vector<index_t> mapping(55);
  for (index_t i = 0; i < 55; ++i) {
    mapping[static_cast<std::size_t>(i)] = (i * 7 + 3) % 55;  // a permutation
  }
  table.set_index_bijection(mapping);
  Matrix out;
  table.forward(IndexBatch::one_per_sample({10}), out);
  const index_t remapped = mapping[10];
  for (index_t j = 0; j < 12; ++j) {
    EXPECT_NEAR(out.at(0, j), dense.at(remapped, j), 1e-5f);
  }
}

TEST(EffTTTable, BijectionPreservesTrainingSemantics) {
  // Training with a bijection must behave like training the baseline on the
  // remapped index stream.
  std::vector<index_t> mapping(55);
  for (index_t i = 0; i < 55; ++i) {
    mapping[static_cast<std::size_t>(i)] = (i * 13 + 5) % 55;
  }
  const TTCores init = random_cores(37);
  EffTTTable eff(55, init);
  eff.set_index_bijection(mapping);
  TTTable base(55, init);

  const std::vector<index_t> raw{4, 9, 4, 50};
  std::vector<index_t> remapped;
  for (index_t i : raw) remapped.push_back(mapping[static_cast<std::size_t>(i)]);

  Prng rng(3);
  Matrix grad(4, 12);
  grad.fill_normal(rng);
  Matrix out_eff, out_base;
  eff.forward(IndexBatch::one_per_sample(raw), out_eff);
  base.forward(IndexBatch::one_per_sample(remapped), out_base);
  EXPECT_LT(Matrix::max_abs_diff(out_eff, out_base), 1e-4f);
  eff.backward_and_update(IndexBatch::one_per_sample(raw), grad, 0.1f);
  base.backward_and_update(IndexBatch::one_per_sample(remapped), grad, 0.1f);
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-4f);
  }
}

TEST(EffTTTable, BackwardWithoutForwardStillCorrect) {
  // backward_and_update must not depend on forward's cached state.
  const TTCores init = random_cores(41);
  EffTTTable eff(55, init);
  TTTable base(55, init);
  const IndexBatch batch = IndexBatch::one_per_sample({2, 2, 30});
  Prng rng(4);
  Matrix grad(3, 12);
  grad.fill_normal(rng);
  eff.backward_and_update(batch, grad, 0.1f);
  Matrix tmp;
  base.forward(batch, tmp);
  base.backward_and_update(batch, grad, 0.1f);
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-4f);
  }
}

TEST(EffTTTable, LargeSkewedBatchStressEquivalence) {
  // Heavy duplication (Zipf-ish draws) across a bigger table.
  const TTShape shape = TTShape::balanced(5000, 12, 3, 8);
  Prng init_rng(55);
  TTCores cores(shape);
  cores.init_normal(init_rng, 0.1f);
  EffTTTable eff(5000, cores);
  TTTable base(5000, cores);

  Prng rng(77);
  std::vector<index_t> idx;
  for (int i = 0; i < 512; ++i) {
    // Quadratic skew toward small indices.
    const double u = rng.uniform();
    idx.push_back(static_cast<index_t>(u * u * 4999));
  }
  const IndexBatch batch = IndexBatch::one_per_sample(idx);
  Matrix grad(512, 12);
  grad.fill_normal(rng, 0.0f, 0.05f);

  Matrix oe, ob;
  eff.forward(batch, oe);
  base.forward(batch, ob);
  EXPECT_LT(Matrix::max_abs_diff(oe, ob), 1e-3f);
  EXPECT_LT(eff.last_stats().unique_rows, 512);  // dedup must have happened

  eff.backward_and_update(batch, grad, 0.01f);
  base.backward_and_update(batch, grad, 0.01f);
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-3f);
  }
}

}  // namespace
}  // namespace elrec
