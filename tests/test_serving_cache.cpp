// Eviction / life-cycle edge cases for the two embedding caches: the
// serving-side ServingCache (capacity-bounded, frequency-admitted) and the
// pipeline's EmbeddingCache (LC-bounded). Both must survive degenerate
// capacities, repeated evict-readmit churn, and stale-generation reads —
// including clear()/warm() racing concurrent probes (the model-promotion
// path), which is why this suite carries the "sanitize" label.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "pipeline/embedding_cache.hpp"
#include "serve/serving_cache.hpp"
#include "shard/placement.hpp"

namespace elrec {
namespace {

Matrix row_values(const std::vector<index_t>& rows, index_t dim, float scale) {
  Matrix m(static_cast<index_t>(rows.size()), dim);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (index_t j = 0; j < dim; ++j) {
      m.at(static_cast<index_t>(i), j) =
          scale * static_cast<float>(rows[i]) + static_cast<float>(j);
    }
  }
  return m;
}

TEST(ServingCache, CapacityZeroDisablesWithoutCrashing) {
  ServingCacheConfig cfg;
  cfg.capacity = 0;
  ServingCache cache(100, 4, cfg);

  const std::vector<index_t> rows = {1, 2, 3};
  Matrix dst(3, 4);
  std::vector<char> hit;
  EXPECT_EQ(cache.probe(rows, dst, hit), 0);
  EXPECT_EQ(hit, (std::vector<char>{0, 0, 0}));

  cache.admit(rows, row_values(rows, 4, 1.0f));  // no-op, must not throw
  EXPECT_EQ(cache.size(), 0);
  const auto s = cache.stats_snapshot();
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.admitted, 0u);
}

TEST(ServingCache, CapacityOneEvictReadmitChurn) {
  ServingCacheConfig cfg;
  cfg.capacity = 1;
  cfg.admit_min_freq = 1;
  ServingCache cache(100, 4, cfg);

  Matrix dst(1, 4);
  std::vector<char> hit;

  // Round-robin two rows through the single slot several times. Each
  // admission needs the candidate strictly hotter than the resident, so
  // alternate probes keep raising the counters and the slot keeps flipping.
  index_t flips = 0;
  for (int round = 0; round < 6; ++round) {
    const index_t r = round % 2;
    // Probe twice so this row overtakes the resident's frequency.
    cache.probe({r}, dst, hit);
    cache.probe({r}, dst, hit);
    if (!hit[0]) {
      cache.admit({r}, row_values({r}, 4, 2.0f));
      if (cache.probe({r}, dst, hit); hit[0]) ++flips;
    }
  }
  EXPECT_EQ(cache.size(), 1);
  EXPECT_GE(flips, 2);  // the slot really did evict and readmit
  const auto s = cache.stats_snapshot();
  EXPECT_GE(s.evicted, 1u);
  EXPECT_EQ(s.admitted, static_cast<std::size_t>(flips));
}

TEST(ServingCache, AdmissionRequiresMinFrequency) {
  ServingCacheConfig cfg;
  cfg.capacity = 8;
  cfg.admit_min_freq = 3;
  ServingCache cache(100, 4, cfg);

  Matrix dst(1, 4);
  std::vector<char> hit;

  cache.probe({7}, dst, hit);  // freq 1 < 3: too cold
  cache.admit({7}, row_values({7}, 4, 1.0f));
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.stats_snapshot().rejected, 1u);

  cache.probe({7}, dst, hit);
  cache.probe({7}, dst, hit);  // freq 3: admissible
  cache.admit({7}, row_values({7}, 4, 1.0f));
  EXPECT_EQ(cache.size(), 1);
  cache.probe({7}, dst, hit);
  EXPECT_TRUE(hit[0]);
  EXPECT_FLOAT_EQ(dst.at(0, 1), 7.0f + 1.0f);
}

TEST(ServingCache, ClearInvalidatesStaleGeneration) {
  ServingCacheConfig cfg;
  cfg.capacity = 4;
  cfg.admit_min_freq = 1;
  ServingCache cache(100, 4, cfg);

  const std::vector<index_t> rows = {10, 11};
  Matrix dst(2, 4);
  std::vector<char> hit;
  cache.probe(rows, dst, hit);
  cache.admit(rows, row_values(rows, 4, 1.0f));
  EXPECT_EQ(cache.size(), 2);

  // Model reload: old embeddings are stale. clear() must make every probe
  // miss so the next generation is recomputed, never served from the slab.
  cache.clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.probe(rows, dst, hit), 0);
  EXPECT_EQ(hit, (std::vector<char>{0, 0}));

  // Frequency history survives, so the hot rows re-enter immediately.
  cache.admit(rows, row_values(rows, 4, 3.0f));
  cache.probe(rows, dst, hit);
  EXPECT_TRUE(hit[0] && hit[1]);
  EXPECT_FLOAT_EQ(dst.at(0, 0), 30.0f);  // new generation's values
}

TEST(ServingCache, WarmBypassesAdmissionAndDefendsSlots) {
  ServingCacheConfig cfg;
  cfg.capacity = 2;
  cfg.admit_min_freq = 5;
  ServingCache cache(100, 4, cfg);

  // Never probed, yet warm() admits unconditionally.
  cache.warm({1, 2}, row_values({1, 2}, 4, 1.0f));
  EXPECT_EQ(cache.size(), 2);

  // A cold row (freq 1 < warmed rows' credited freq) cannot displace them.
  Matrix dst(1, 4);
  std::vector<char> hit;
  cache.probe({50}, dst, hit);
  cache.admit({50}, row_values({50}, 4, 1.0f));
  cache.probe({1}, dst, hit);
  EXPECT_TRUE(hit[0]);
  cache.probe({2}, dst, hit);
  EXPECT_TRUE(hit[0]);
}

// Router-side fallback warming: hot lists observed by several shards are
// merged (merge_hot_rows interleaves by rank and dedups) and fed to one
// warm() call. Overlapping rows must not double-admit, and a merged list
// longer than capacity must not overflow the cache.
TEST(ServingCache, WarmFromMergedCrossShardStatsNoDoubleAdmitNoOverflow) {
  ServingCacheConfig cfg;
  cfg.capacity = 4;
  cfg.admit_min_freq = 3;
  ServingCache cache(100, 4, cfg);

  // Three shards report overlapping hot sets (hottest first); the merge is
  // capped at the fallback cache's capacity.
  const std::vector<std::vector<index_t>> per_shard = {
      {7, 3, 11}, {3, 7, 19}, {7, 23, 3}};
  const std::vector<index_t> merged = merge_hot_rows(per_shard, 4);
  EXPECT_EQ(merged, (std::vector<index_t>{7, 3, 23, 11}));

  cache.warm(merged, row_values(merged, 4, 2.0f));
  EXPECT_EQ(cache.size(), 4);
  EXPECT_EQ(cache.stats_snapshot().admitted, static_cast<std::size_t>(4));

  // Warming again with the same merged stats (a refresh tick) re-admits
  // nothing: every row is already resident.
  cache.warm(merged, row_values(merged, 4, 2.0f));
  EXPECT_EQ(cache.size(), 4);
  EXPECT_EQ(cache.stats_snapshot().admitted, static_cast<std::size_t>(4))
      << "resident rows must not be double-admitted";

  // An uncapped merge larger than capacity still leaves size <= capacity.
  const std::vector<index_t> wide = merge_hot_rows(per_shard, 0);
  ASSERT_GT(wide.size(), static_cast<std::size_t>(cfg.capacity));
  cache.warm(wide, row_values(wide, 4, 2.0f));
  EXPECT_LE(cache.size(), cfg.capacity);

  // Every warmed row serves hits with the warmed bits.
  Matrix dst(1, 4);
  std::vector<char> hit;
  cache.probe({7}, dst, hit);
  ASSERT_TRUE(hit[0]);
  EXPECT_EQ(dst.at(0, 0), 2.0f * 7.0f);
}

TEST(ServingCache, CapacityClampedToTableRows) {
  ServingCacheConfig cfg;
  cfg.capacity = 1000;  // larger than the table
  cfg.admit_min_freq = 1;
  ServingCache cache(10, 4, cfg);
  EXPECT_EQ(cache.capacity(), 10);
}

// Generation-tagged clear()/warm() vs concurrent-probe stress — the exact
// interleaving ModelPromoter::promote() produces: readers hammer probe()
// while a mutator flips the cache between generations (warm with generation
// g's rows, then clear). Every value a reader observes on a hit must be one
// *complete* generation's row — never a torn mix of two generations, never
// bytes from a cleared slab. Run under TSan this is the ordering proof for
// the shared_mutex discipline in serving_cache.cpp.
TEST(ServingCache, ClearVersusConcurrentProbesServesNoTornRows) {
  constexpr index_t kRows = 100;
  constexpr index_t kDim = 4;
  constexpr int kReaders = 4;
  constexpr int kGenerations = 120;
  ServingCacheConfig cfg;
  cfg.capacity = 32;
  cfg.admit_min_freq = 1;
  ServingCache cache(kRows, kDim, cfg);

  // Generation g's row r: value(j) = g * 100000 + r * 100 + j. Exactly
  // representable in float (< 2^24), so a torn row is detectable per cell.
  const auto gen_value = [](int g, index_t r, index_t j) {
    return static_cast<float>(g * 100000 + r * 100 + j);
  };
  const auto make_gen_rows = [&](int g, const std::vector<index_t>& rows) {
    Matrix m(static_cast<index_t>(rows.size()), kDim);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (index_t j = 0; j < kDim; ++j) {
        m.at(static_cast<index_t>(i), j) = gen_value(g, rows[i], j);
      }
    }
    return m;
  };

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Matrix dst(4, kDim);
      std::vector<char> hit;
      std::uint64_t x = 0x9e3779b9u + static_cast<std::uint64_t>(t);
      std::uint64_t probes = 0;
      while (!stop.load(std::memory_order_acquire) || probes < 100) {
        ++probes;
        std::vector<index_t> rows(4);
        for (auto& r : rows) {
          x = x * 6364136223846793005ULL + 1442695040888963407ULL;
          r = static_cast<index_t>((x >> 33) % kRows);
        }
        cache.probe(rows, dst, hit);
        for (std::size_t i = 0; i < rows.size(); ++i) {
          if (!hit[i]) continue;
          // Recover the generation from cell 0, then the whole row must be
          // that generation's bits.
          const float v0 = dst.at(static_cast<index_t>(i), 0);
          const int g = static_cast<int>(
              std::lround((v0 - static_cast<float>(rows[i] * 100)) /
                          100000.0f));
          bool ok = g >= 0 && g < kGenerations;
          for (index_t j = 0; ok && j < kDim; ++j) {
            ok = dst.at(static_cast<index_t>(i), j) ==
                 gen_value(g, rows[i], j);
          }
          if (!ok) torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Mutator: march generations through warm()/clear(), overlapping row sets
  // so slots are continually rewritten in place.
  for (int g = 0; g < kGenerations; ++g) {
    std::vector<index_t> rows;
    for (index_t r = 0; r < 24; ++r) {
      rows.push_back((static_cast<index_t>(g) * 7 + r * 3) % kRows);
    }
    cache.warm(rows, make_gen_rows(g, rows));
    if (g % 3 == 0) cache.clear();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(torn.load(), 0) << "a probe observed a torn or stale row";
  const auto s = cache.stats_snapshot();
  EXPECT_GT(s.hits + s.misses, 0u);
}

// ---------------------------------------------------------------------------
// Pipeline EmbeddingCache life-cycle edges (shared semantics: bounded
// residency, churn, and no stale reads after eviction).

TEST(EmbeddingCache, LcOneEvictsAfterSingleRetire) {
  EmbeddingCache cache(/*dim=*/4, /*lc_init=*/1);
  cache.insert({5}, row_values({5}, 4, 1.0f), /*batch_id=*/0);
  EXPECT_EQ(cache.size(), 1u);

  // Host has absorbed batch 0; one retirement burns the single life.
  cache.retire_batch(/*applied_batch_id=*/0);
  EXPECT_EQ(cache.size(), 0u);

  // Stale-generation read: the evicted entry must not patch anything.
  Matrix rows = row_values({5}, 4, 9.0f);
  EXPECT_EQ(cache.sync({5}, rows), 0);
  EXPECT_FLOAT_EQ(rows.at(0, 0), 45.0f);  // untouched host value
}

TEST(EmbeddingCache, EvictionWaitsForHostToAbsorbWrite) {
  EmbeddingCache cache(4, /*lc_init=*/1);
  cache.insert({5}, row_values({5}, 4, 1.0f), /*batch_id=*/3);

  // LC hits zero but the host has only applied batch 2 — the entry's write
  // (batch 3) is not yet durable, so it must survive.
  cache.retire_batch(/*applied_batch_id=*/2);
  EXPECT_EQ(cache.size(), 1u);
  Matrix rows(1, 4);
  EXPECT_EQ(cache.sync({5}, rows), 1);

  cache.retire_batch(/*applied_batch_id=*/3);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EmbeddingCache, RepeatedEvictReadmitRefreshesValue) {
  EmbeddingCache cache(4, /*lc_init=*/2);
  for (index_t gen = 0; gen < 4; ++gen) {
    cache.insert({7}, row_values({7}, 4, static_cast<float>(gen + 1)),
                 /*batch_id=*/gen);
    Matrix rows(1, 4);
    ASSERT_EQ(cache.sync({7}, rows), 1);
    EXPECT_FLOAT_EQ(rows.at(0, 0), static_cast<float>(gen + 1) * 7.0f);
    cache.retire_batch(gen);
    cache.retire_batch(gen);  // burn both lives; entry evicted
    EXPECT_EQ(cache.size(), 0u);
  }
  EXPECT_EQ(cache.peak_size(), 1u);
}

TEST(EmbeddingCache, ReinsertResetsLifecycle) {
  EmbeddingCache cache(4, /*lc_init=*/2);
  cache.insert({9}, row_values({9}, 4, 1.0f), 0);
  cache.retire_batch(0);  // LC 2 -> 1
  // Refresh before eviction: LC back to lc_init, newer value wins.
  cache.insert({9}, row_values({9}, 4, 5.0f), 1);
  cache.retire_batch(1);  // LC 2 -> 1, still resident
  Matrix rows(1, 4);
  ASSERT_EQ(cache.sync({9}, rows), 1);
  EXPECT_FLOAT_EQ(rows.at(0, 0), 45.0f);
  cache.retire_batch(1);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace elrec
