// Observability invariance contract (DESIGN.md §8): tracing and metrics are
// pure observers. A short ElRecTrainer run with tracing enabled must be
// BITWISE identical — loss curve floats and checkpoint file bytes — to the
// same run with tracing disabled, at 1 thread and at 8 threads. Any span or
// counter that perturbs model state (reordered reduction, extra RNG draw,
// changed allocation pattern feeding a nondeterministic path) fails here.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/trace.hpp"
#include "pipeline/elrec_trainer.hpp"

namespace elrec {
namespace {

struct RunResult {
  std::vector<float> loss_curve;
  std::string checkpoint_bytes;
};

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing checkpoint " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

RunResult run_training(bool tracing, const std::string& ckpt_path) {
  obs::set_trace_enabled(tracing);
  obs::clear_trace();

  DatasetSpec spec;
  spec.name = "obs-invariance";
  spec.num_dense = 4;
  spec.table_rows = {4000, 512, 64};
  spec.num_samples = 1 << 14;
  spec.zipf_s = 1.15;

  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 16;
  cfg.model.bottom_hidden = {32};
  cfg.model.top_hidden = {32};
  cfg.placement = {TablePlacement::kDeviceTT, TablePlacement::kHost,
                   TablePlacement::kDeviceDense};
  cfg.tt_rank = 8;
  cfg.queue_capacity = 4;
  cfg.lr = 0.05f;
  cfg.seed = 11;
  constexpr index_t kBatches = 12;
  cfg.checkpoint_every_n = kBatches;  // one checkpoint, at the end
  cfg.checkpoint_path = ckpt_path;

  ElRecTrainer trainer(cfg, spec);
  SyntheticDataset data(spec, 17);
  const ElRecRunStats stats = trainer.train(data, kBatches, 64);

  RunResult r;
  r.loss_curve = stats.loss_curve;
  EXPECT_EQ(stats.checkpoints_written, 1);
  r.checkpoint_bytes = read_file_bytes(ckpt_path);
  std::remove(ckpt_path.c_str());

  obs::set_trace_enabled(true);  // leave global state as other tests expect
  return r;
}

void expect_bitwise_identical(const RunResult& traced,
                              const RunResult& untraced) {
  ASSERT_EQ(traced.loss_curve.size(), untraced.loss_curve.size());
  ASSERT_FALSE(traced.loss_curve.empty());
  // memcmp, not ==: NaN or signed-zero drift must fail too.
  EXPECT_EQ(std::memcmp(traced.loss_curve.data(), untraced.loss_curve.data(),
                        traced.loss_curve.size() * sizeof(float)),
            0)
      << "loss curves diverge: tracing perturbed training";
  ASSERT_FALSE(traced.checkpoint_bytes.empty());
  EXPECT_EQ(traced.checkpoint_bytes, untraced.checkpoint_bytes)
      << "checkpoint bytes diverge: tracing perturbed persisted state";
}

void run_invariance_at(int threads, const std::string& tag) {
#ifdef _OPENMP
  const int prev = omp_get_max_threads();
  omp_set_num_threads(threads);
#else
  if (threads > 1) GTEST_SKIP() << "built without OpenMP";
#endif
  const RunResult traced =
      run_training(true, "obs_invariance_" + tag + "_on.ckpt");
  const RunResult untraced =
      run_training(false, "obs_invariance_" + tag + "_off.ckpt");
#ifdef _OPENMP
  omp_set_num_threads(prev);
#endif
  expect_bitwise_identical(traced, untraced);
}

TEST(ObsInvariance, TracedRunBitwiseIdenticalSingleThread) {
  run_invariance_at(1, "t1");
}

TEST(ObsInvariance, TracedRunBitwiseIdenticalEightThreads) {
  run_invariance_at(8, "t8");
}

}  // namespace
}  // namespace elrec
