// Sharded serving tier tests: consistent-hash ring properties,
// statistics-driven placement, router ≡ single-process bitwise equality,
// transport overload/crash semantics, transient-fault absorption, and the
// two headline fault drills — kill-a-shard under replicated load (zero
// accepted-request loss, bounded p99, revived shard rejoins) and
// unreplicated degraded mode (local fallback, never wrong-answer).
// Registered with the "sanitize" label: run under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/fault_injector.hpp"
#include "core/eff_tt_table.hpp"
#include "data/stats.hpp"
#include "data/synthetic.hpp"
#include "embed/embedding_bag.hpp"
#include "serve/inference_session.hpp"
#include "serve/request_scheduler.hpp"
#include "shard/placement.hpp"
#include "shard/shard_router.hpp"

namespace elrec {
namespace {

constexpr index_t kRowsTT = 800;
constexpr index_t kRowsBag = 60;
constexpr index_t kDim = 8;
constexpr index_t kDense = 3;

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "shard";
  spec.num_dense = kDense;
  spec.table_rows = {kRowsTT, kRowsBag};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = kDense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EffTTTable>(
      kRowsTT, TTShape::balanced(kRowsTT, kDim, 3, 4), rng));
  tables.push_back(std::make_unique<EmbeddingBag>(kRowsBag, kDim, rng));
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

// Training is bitwise replayable, so every call with the same seed yields
// an identical model — that is how each shard gets its own copy of "the"
// frozen model, exactly as checkpoint restore would produce.
std::unique_ptr<DlrmModel> make_trained_model(std::uint64_t seed) {
  auto model = make_model(seed);
  SyntheticDataset data(tiny_spec(), seed + 1);
  for (int b = 0; b < 10; ++b) model->train_step(data.next_batch(64), 0.05f);
  return model;
}

RankingRequest make_request(Prng& rng, index_t max_bag = 3) {
  RankingRequest req;
  req.dense.resize(static_cast<std::size_t>(kDense));
  for (auto& v : req.dense) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  req.sparse.resize(2);
  const index_t bag0 =
      1 + static_cast<index_t>(
              rng.uniform_index(static_cast<std::uint64_t>(max_bag)));
  for (index_t i = 0; i < bag0; ++i) {
    req.sparse[0].push_back(static_cast<index_t>(
        rng.uniform_index(static_cast<std::uint64_t>(kRowsTT))));
  }
  req.sparse[1].push_back(static_cast<index_t>(
      rng.uniform_index(static_cast<std::uint64_t>(kRowsBag))));
  return req;
}

MiniBatch to_minibatch(const std::vector<RankingRequest>& reqs) {
  MiniBatch mb;
  const auto b = static_cast<index_t>(reqs.size());
  mb.dense.resize(b, kDense);
  mb.sparse.resize(2);
  for (auto& ib : mb.sparse) ib.offsets.assign(1, 0);
  for (index_t i = 0; i < b; ++i) {
    const RankingRequest& r = reqs[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < kDense; ++j) {
      mb.dense.at(i, j) = r.dense[static_cast<std::size_t>(j)];
    }
    for (std::size_t t = 0; t < 2; ++t) {
      auto& ib = mb.sparse[t];
      ib.indices.insert(ib.indices.end(), r.sparse[t].begin(),
                        r.sparse[t].end());
      ib.offsets.push_back(static_cast<index_t>(ib.indices.size()));
    }
  }
  return mb;
}

/// A full mini-tier: per-shard sessions + servers, a router fallback
/// session, and the router. Everything over bitwise-identical model copies.
struct Tier {
  std::vector<std::unique_ptr<InferenceSession>> sessions;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::unique_ptr<InferenceSession> fallback;
  std::unique_ptr<ShardRouter> router;

  Tier(int num_shards, std::uint64_t model_seed, ShardRouterConfig rcfg,
       index_t cache_capacity = 128) {
    InferenceSessionConfig scfg;
    scfg.cache.capacity = cache_capacity;
    std::vector<ShardServer*> raw;
    for (int s = 0; s < num_shards; ++s) {
      sessions.push_back(std::make_unique<InferenceSession>(
          make_trained_model(model_seed), scfg));
      servers.push_back(std::make_unique<ShardServer>(s, *sessions.back()));
      raw.push_back(servers.back().get());
    }
    fallback = std::make_unique<InferenceSession>(make_trained_model(model_seed),
                                                  scfg);
    router = std::make_unique<ShardRouter>(*fallback, raw, rcfg);
  }
};

TEST(HashRing, DeterministicDistinctOwnersAndBalance) {
  HashRing a(4), b(4);
  std::vector<int> load(4, 0);
  std::vector<int> owners_a, owners_b;
  for (index_t row = 0; row < 4000; ++row) {
    const index_t t = row % 3;
    ASSERT_EQ(a.owner_of(t, row), b.owner_of(t, row));
    a.owners_of(t, row, 3, owners_a);
    b.owners_of(t, row, 3, owners_b);
    ASSERT_EQ(owners_a, owners_b);
    ASSERT_EQ(owners_a.size(), 3u);
    ASSERT_EQ(owners_a[0], a.owner_of(t, row));
    std::vector<int> sorted = owners_a;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_TRUE(std::unique(sorted.begin(), sorted.end()) == sorted.end())
        << "ladder rungs must be distinct shards";
    ++load[static_cast<std::size_t>(owners_a[0])];
  }
  for (const int l : load) {
    EXPECT_GT(l, 4000 / 4 / 2) << "vnode ring left a shard badly underloaded";
    EXPECT_LT(l, 4000 / 4 * 2) << "vnode ring left a shard badly overloaded";
  }
}

TEST(Placement, ReplicatesHotRowsAcrossOwnerLadder) {
  HashRing ring(3);
  std::vector<std::vector<index_t>> hot = {{5, 17, 99, 140, 7}, {1, 2}};
  PlacementConfig cfg;
  cfg.replication = 2;
  const PlacementPlan plan = plan_placement(ring, hot, cfg);
  ASSERT_EQ(plan.warm_rows.size(), 3u);

  std::vector<int> owners;
  for (std::size_t t = 0; t < hot.size(); ++t) {
    for (const index_t row : hot[t]) {
      ring.owners_of(static_cast<index_t>(t), row, 2, owners);
      int copies = 0;
      for (int s = 0; s < 3; ++s) {
        const auto& dst = plan.warm_rows[static_cast<std::size_t>(s)][t];
        const bool has = std::find(dst.begin(), dst.end(), row) != dst.end();
        const bool owns =
            std::find(owners.begin(), owners.end(), s) != owners.end();
        EXPECT_EQ(has, owns) << "row " << row << " shard " << s;
        copies += has ? 1 : 0;
      }
      EXPECT_EQ(copies, 2);
    }
  }
  double total = 0.0;
  for (const double share : plan.shard_share) total += share;
  EXPECT_NEAR(total, 1.0, 1e-9);

  // The per-table warm cap truncates, keeping the hottest ranks.
  cfg.warm_rows_per_table = 1;
  const PlacementPlan capped = plan_placement(ring, hot, cfg);
  for (int s = 0; s < 3; ++s) {
    for (std::size_t t = 0; t < hot.size(); ++t) {
      EXPECT_LE(capped.warm_rows[static_cast<std::size_t>(s)][t].size(), 1u);
    }
  }
}

TEST(MergeHotRows, InterleavesByRankAndDedups) {
  const std::vector<std::vector<index_t>> per_shard = {
      {3, 1, 9}, {3, 7}, {5, 1, 8, 2}};
  const std::vector<index_t> merged = merge_hot_rows(per_shard, 0);
  // Rank 0 of every source first (deduped), then rank 1, ...
  const std::vector<index_t> want = {3, 5, 1, 7, 9, 8, 2};
  EXPECT_EQ(merged, want);
  const std::vector<index_t> capped = merge_hot_rows(per_shard, 4);
  EXPECT_EQ(capped, (std::vector<index_t>{3, 5, 1, 7}));
}

TEST(ShardChannel, ShedsWhenFullAndNacksOnCrash) {
  ShardChannel ch(1);  // capacity 1, nobody draining
  std::future<ShardCallReply> f1, f2;
  ShardCallRequest req;
  req.table = 0;
  req.rows = {1, 2};
  ASSERT_EQ(ch.submit(req, f1), ChannelSubmitStatus::kAccepted);
  ASSERT_EQ(ch.submit(req, f2), ChannelSubmitStatus::kOverloaded);
  EXPECT_FALSE(f2.valid());

  ch.crash();
  // The queued call fails over instantly: future ready with TransientError.
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_THROW(f1.get(), TransientError);
  EXPECT_FALSE(ch.up());
  EXPECT_EQ(ch.submit(req, f2), ChannelSubmitStatus::kDown);

  ch.reopen();
  EXPECT_TRUE(ch.up());
  EXPECT_EQ(ch.submit(req, f2), ChannelSubmitStatus::kAccepted);
}

TEST(ShardRouter, BitwiseEqualsSingleProcessSession) {
  ShardRouterConfig rcfg;
  rcfg.enable_health_pings = false;
  Tier tier(3, 21, rcfg);

  InferenceSessionConfig scfg;
  scfg.cache.capacity = 128;
  InferenceSession reference(make_trained_model(21), scfg);

  Prng rng(77);
  std::vector<RankingRequest> reqs;
  for (int i = 0; i < 64; ++i) reqs.push_back(make_request(rng));
  const MiniBatch mb = to_minibatch(reqs);

  auto ref_state = reference.make_worker_state();
  std::vector<float> want;
  reference.predict(mb, want, *ref_state);

  auto state = tier.router->make_state();
  std::vector<float> got;
  tier.router->predict(mb, got, *state);

  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i], got[i]) << "sample " << i;
  }
  EXPECT_GT(tier.router->stats().scatter_calls, 0u);
  EXPECT_EQ(tier.router->stats().fallback_rows, 0u);
}

TEST(ShardRouter, StatisticsDrivenWarmingCoversHotTraffic) {
  ShardRouterConfig rcfg;
  rcfg.enable_health_pings = false;
  Tier tier(3, 23, rcfg);

  // RecShard-style: hot rows from the access distribution drive placement;
  // each shard warms its owned partitions (primary + replica copies).
  SyntheticDataset data(tiny_spec(), 5);
  std::vector<std::vector<index_t>> hot(2);
  hot[0] = top_accessed_indices(data, 0, 64, 4096);
  hot[1] = top_accessed_indices(data, 1, 16, 4096);
  PlacementConfig pcfg;
  pcfg.replication = 2;
  const PlacementPlan plan = plan_placement(tier.router->ring(), hot, pcfg);

  for (std::size_t s = 0; s < tier.sessions.size(); ++s) {
    for (index_t t = 0; t < 2; ++t) {
      tier.sessions[s]->warm_cache(
          t, plan.warm_rows[s][static_cast<std::size_t>(t)]);
    }
  }
  // A hot row's primary shard serves it from cache on first touch.
  const index_t hot_row = hot[0].front();
  const int owner = tier.router->ring().owner_of(0, hot_row);
  const auto hits_before =
      tier.sessions[static_cast<std::size_t>(owner)]->cache(0)->stats_snapshot();
  auto state = tier.router->make_state();
  std::vector<float> probs;
  RankingRequest req;
  req.dense.assign(static_cast<std::size_t>(kDense), 0.1f);
  req.sparse = {{hot_row}, {0}};
  tier.router->predict(to_minibatch({req}), probs, *state);
  const auto hits_after =
      tier.sessions[static_cast<std::size_t>(owner)]->cache(0)->stats_snapshot();
  EXPECT_GT(hits_after.hits, hits_before.hits)
      << "warmed primary should serve the hot row from cache";
}

TEST(ShardRouter, TransientFaultsAbsorbedByRetry) {
  FaultInjector::instance().reset();
  ShardRouterConfig rcfg;
  rcfg.enable_health_pings = false;
  rcfg.retry.max_attempts = 4;
  Tier tier(2, 29, rcfg);

  InferenceSessionConfig scfg;
  scfg.cache.capacity = 128;
  InferenceSession reference(make_trained_model(29), scfg);
  auto ref_state = reference.make_worker_state();

  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.probability = 0.3;
  spec.message = "flaky shard serve";
  FaultInjector::instance().arm("shard.serve", spec);

  Prng rng(31);
  auto state = tier.router->make_state();
  for (int i = 0; i < 40; ++i) {
    const MiniBatch mb = to_minibatch({make_request(rng)});
    std::vector<float> want, got;
    reference.predict(mb, want, *ref_state);
    tier.router->predict(mb, got, *state);
    ASSERT_EQ(want.size(), got.size());
    EXPECT_EQ(want[0], got[0]) << "request " << i;
  }
  EXPECT_GT(FaultInjector::instance().fires("shard.serve"), 0u);
  FaultInjector::instance().reset();
  EXPECT_GT(tier.router->stats().retries, 0u);
}

TEST(ShardRouter, UnreplicatedDeadShardDegradesToLocalFallback) {
  ShardRouterConfig rcfg;
  rcfg.enable_health_pings = false;
  rcfg.replication = 1;  // no replicas: dead shard => degraded mode
  rcfg.markdown_after = 1;
  Tier tier(2, 35, rcfg);

  InferenceSessionConfig scfg;
  scfg.cache.capacity = 128;
  InferenceSession reference(make_trained_model(35), scfg);
  auto ref_state = reference.make_worker_state();

  tier.servers[0]->kill();

  Prng rng(41);
  auto state = tier.router->make_state();
  for (int i = 0; i < 20; ++i) {
    const MiniBatch mb = to_minibatch({make_request(rng, 4)});
    std::vector<float> want, got;
    reference.predict(mb, want, *ref_state);
    tier.router->predict(mb, got, *state);
    EXPECT_EQ(want[0], got[0]) << "degraded request " << i << " must still "
                               << "be bitwise correct";
  }
  const ShardRouter::RouterStats stats = tier.router->stats();
  EXPECT_GT(stats.fallback_rows, 0u)
      << "dead unreplicated shard must be served by the local fallback";
  EXPECT_GE(stats.markdowns, 1u);
  EXPECT_FALSE(tier.router->shard_live(0));
  EXPECT_TRUE(tier.router->shard_live(1));
}

// The headline drill: FaultInjector kills one shard mid-load under
// replication 2. Every accepted request completes with bitwise-correct
// results, tail latency stays within 3x of steady state (generous floor for
// sanitizer builds), and the revived shard rejoins and serves again.
TEST(ShardRouter, KillAShardMidLoadZeroLossBoundedTailAndRejoin) {
  FaultInjector::instance().reset();
  ShardRouterConfig rcfg;
  rcfg.replication = 2;
  rcfg.ping_interval = std::chrono::milliseconds(5);
  rcfg.retry.max_attempts = 3;
  Tier tier(3, 51, rcfg);

  InferenceSessionConfig scfg;
  scfg.cache.capacity = 128;
  InferenceSession reference(make_trained_model(51), scfg);
  auto ref_state = reference.make_worker_state();

  RequestSchedulerConfig qcfg;
  qcfg.num_workers = 2;
  qcfg.max_batch = 8;
  RequestScheduler scheduler(*tier.router, qcfg);

  Prng rng(61);
  auto run_phase = [&](int n) {
    std::vector<double> lat_us;
    lat_us.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const RankingRequest req = make_request(rng);
      const MiniBatch mb = to_minibatch({req});
      std::vector<float> want;
      reference.predict(mb, want, *ref_state);
      const auto t0 = std::chrono::steady_clock::now();
      const RankingResponse resp = scheduler.submit_blocking(req);
      const auto t1 = std::chrono::steady_clock::now();
      lat_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
      EXPECT_EQ(want[0], resp.prob) << "request " << i;
    }
    std::sort(lat_us.begin(), lat_us.end());
    return lat_us[static_cast<std::size_t>(
        static_cast<double>(lat_us.size() - 1) * 0.99)];
  };

  const double steady_p99_us = run_phase(150);

  // Arm the kill: the next serve attempt on whichever shard reaches the
  // site first dies mid-request (exactly one fire).
  FaultSpec crash;
  crash.kind = FaultKind::kError;
  crash.max_fires = 1;
  crash.message = "chaos drill";
  FaultInjector::instance().arm("shard.crash", crash);

  const double killed_p99_us = run_phase(150);
  FaultInjector::instance().reset();

  int dead = -1;
  for (int s = 0; s < 3; ++s) {
    if (!tier.servers[static_cast<std::size_t>(s)]->alive()) {
      ASSERT_EQ(dead, -1) << "exactly one shard should have died";
      dead = s;
    }
  }
  ASSERT_NE(dead, -1) << "the armed crash should have killed a shard";
  EXPECT_GE(tier.router->stats().markdowns, 1u);

  // Bounded degradation: generous floor absorbs sanitizer/VM noise while
  // still catching a deadline-stall regression (which would cost >= 20ms).
  EXPECT_LE(killed_p99_us, std::max(3.0 * steady_p99_us, 15000.0))
      << "steady p99 " << steady_p99_us << "us";

  // Revive: the health ping marks the shard back up and traffic returns.
  tier.servers[static_cast<std::size_t>(dead)]->revive();
  const auto wait_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!tier.router->shard_live(dead) &&
         std::chrono::steady_clock::now() < wait_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(tier.router->shard_live(dead)) << "ping should mark the shard up";
  EXPECT_GE(tier.router->stats().markups, 1u);

  const std::uint64_t calls_before =
      tier.servers[static_cast<std::size_t>(dead)]->calls_served();
  run_phase(60);
  EXPECT_GT(tier.servers[static_cast<std::size_t>(dead)]->calls_served(),
            calls_before)
      << "rejoined shard should serve traffic again";

  scheduler.shutdown();
  const RequestScheduler::Stats qstats = scheduler.stats();
  EXPECT_EQ(qstats.accepted, qstats.served)
      << "zero accepted-request loss through the kill";
}

}  // namespace
}  // namespace elrec
