// Broad randomized property sweeps tying the whole stack together:
//  * Eff-TT == dense-materialization == TT-Rec baseline across a grid of
//    (rank, batch size, skew) drawn from seeded generators,
//  * pipeline-vs-oracle equivalence fuzzed over seeds and queue depths,
//  * TT-SVD -> EffTT round trip: a table decomposed at full rank behaves
//    exactly like the original dense table inside a DLRM forward pass.
#include <gtest/gtest.h>

#include <cmath>

#include "core/eff_tt_table.hpp"
#include "pipeline/pipeline_trainer.hpp"
#include "tt/tt_svd.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

struct SweepCase {
  std::uint64_t seed;
  index_t rank;
  index_t batch;
  double skew;  // quadratic-power exponent for index draws
};

class EffTTPropertySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EffTTPropertySweep, ForwardAndBackwardEquivalence) {
  const SweepCase& c = GetParam();
  const index_t rows = 3000;
  const index_t dim = 16;
  const TTShape shape = TTShape::balanced(rows, dim, 3, c.rank);

  Prng init(c.seed);
  TTCores cores(shape);
  cores.init_normal(init, 0.15f);
  EffTTTable eff(rows, cores);
  TTTable base(rows, cores);

  Prng rng(c.seed ^ 0xabcdef);
  for (int step = 0; step < 3; ++step) {
    std::vector<index_t> idx;
    for (index_t i = 0; i < c.batch; ++i) {
      const double u = rng.uniform();
      idx.push_back(static_cast<index_t>(std::pow(u, c.skew) * (rows - 1)));
    }
    const IndexBatch batch = IndexBatch::one_per_sample(idx);
    Matrix grad(c.batch, dim);
    grad.fill_normal(rng, 0.0f, 0.05f);

    Matrix oe, ob;
    eff.forward(batch, oe);
    base.forward(batch, ob);
    ASSERT_LT(Matrix::max_abs_diff(oe, ob), 1e-3f)
        << "seed " << c.seed << " step " << step;
    eff.backward_and_update(batch, grad, 0.02f);
    base.backward_and_update(batch, grad, 0.02f);
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-3f)
        << "seed " << c.seed << " core " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RankBatchSkewGrid, EffTTPropertySweep,
    ::testing::Values(SweepCase{1, 2, 64, 1.0}, SweepCase{2, 4, 256, 2.0},
                      SweepCase{3, 8, 128, 3.0}, SweepCase{4, 16, 512, 2.0},
                      SweepCase{5, 8, 32, 1.0}, SweepCase{6, 4, 1024, 4.0},
                      SweepCase{7, 16, 64, 1.0}, SweepCase{8, 2, 512, 3.0}));

// ---------------------------------------------------------------------

struct FuzzCase {
  std::uint64_t seed;
  index_t depth;
};

class PipelineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PipelineFuzz, AlwaysMatchesSequentialOracle) {
  const FuzzCase& c = GetParam();
  const index_t rows = 32, dim = 3;
  Prng gen(c.seed);
  std::vector<std::vector<index_t>> batches;
  const index_t num_batches = 20 + static_cast<index_t>(gen.uniform_index(30));
  for (index_t b = 0; b < num_batches; ++b) {
    std::vector<index_t> unique;
    for (index_t i = 0; i < rows; ++i) {
      if (gen.bernoulli(0.4)) unique.push_back(i);
    }
    if (unique.empty()) unique.push_back(static_cast<index_t>(b % rows));
    batches.push_back(std::move(unique));
  }

  const ComputeStep compute = [](index_t batch_id,
                                 const std::vector<index_t>& indices,
                                 const Matrix& pulled, Matrix& grads) {
    grads.resize(pulled.rows(), pulled.cols());
    for (index_t i = 0; i < pulled.rows(); ++i) {
      for (index_t j = 0; j < pulled.cols(); ++j) {
        // Depends on the CURRENT parameter value and the batch id, so any
        // staleness shifts the trajectory.
        grads.at(i, j) = pulled.at(i, j) * 0.5f +
                         0.01f * static_cast<float>((batch_id + indices[
                             static_cast<std::size_t>(i)]) % 7);
      }
    }
  };

  // Oracle.
  Prng oracle_rng(c.seed ^ 0x5ca1ab1e);
  HostEmbeddingStore oracle(rows, dim, oracle_rng);
  Matrix pulled, grads;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    oracle.pull(batches[b], pulled);
    compute(static_cast<index_t>(b), batches[b], pulled, grads);
    oracle.apply_gradients(batches[b], grads, 0.2f);
  }

  // Pipelined.
  Prng store_rng(c.seed ^ 0x5ca1ab1e);
  HostEmbeddingStore store(rows, dim, store_rng);
  PipelineConfig cfg;
  cfg.queue_capacity = c.depth;
  cfg.lr = 0.2f;
  PipelineTrainer trainer(store, cfg);
  trainer.run(batches, compute);

  EXPECT_LT(Matrix::max_abs_diff(store.weights(), oracle.weights()), 1e-5f)
      << "seed " << c.seed << " depth " << c.depth;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDepths, PipelineFuzz,
    ::testing::Values(FuzzCase{11, 1}, FuzzCase{12, 2}, FuzzCase{13, 3},
                      FuzzCase{14, 5}, FuzzCase{15, 8}, FuzzCase{16, 13},
                      FuzzCase{17, 2}, FuzzCase{18, 4}, FuzzCase{19, 7},
                      FuzzCase{20, 6}));

// ---------------------------------------------------------------------

TEST(TTSvdRoundTrip, DecomposedTableIsDropInEquivalent) {
  // Dense table -> TT-SVD at full rank -> EffTTTable: lookups agree with
  // the original to float precision, so a pretrained dense model can be
  // converted (the TT-Rec / EL-Rec warm-start path).
  Prng rng(31);
  Matrix table(60, 12);
  table.fill_normal(rng, 0.0f, 0.1f);
  const TTCores cores = tt_svd(table, {4, 4, 4}, {2, 2, 3}, 64);
  EffTTTable eff(60, cores);

  Prng idx_rng(32);
  std::vector<index_t> idx;
  for (int i = 0; i < 64; ++i) {
    idx.push_back(static_cast<index_t>(idx_rng.uniform_index(60)));
  }
  Matrix out;
  eff.forward(IndexBatch::one_per_sample(idx), out);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    for (index_t j = 0; j < 12; ++j) {
      EXPECT_NEAR(out.at(static_cast<index_t>(i), j),
                  table.at(idx[i], j), 1e-3f);
    }
  }
}

}  // namespace
}  // namespace elrec
