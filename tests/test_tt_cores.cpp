// Tests for TT-core storage: slice layout, row reconstruction, the
// chained-product shape invariant, and init statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "tt/tt_cores.hpp"

namespace elrec {
namespace {

TEST(TTCores, CoreShapes) {
  TTCores cores(TTShape({4, 5, 6}, {2, 3, 4}, {1, 7, 8, 1}));
  EXPECT_EQ(cores.core(0).rows(), 4 * 1);
  EXPECT_EQ(cores.core(0).cols(), 2 * 7);
  EXPECT_EQ(cores.core(1).rows(), 5 * 7);
  EXPECT_EQ(cores.core(1).cols(), 3 * 8);
  EXPECT_EQ(cores.core(2).rows(), 6 * 8);
  EXPECT_EQ(cores.core(2).cols(), 4 * 1);
  EXPECT_EQ(cores.slice_rows(1), 7);
  EXPECT_EQ(cores.slice_cols(1), 24);
}

TEST(TTCores, SlicePointersAreRowOffsets) {
  TTCores cores(TTShape({4, 5, 6}, {2, 3, 4}, {1, 7, 8, 1}));
  EXPECT_EQ(cores.slice(1, 0), cores.core(1).row(0));
  EXPECT_EQ(cores.slice(1, 2), cores.core(1).row(14));
}

TEST(TTCores, ReconstructMatchesManualChain) {
  // 2-core table: row = C1[i1] (n1 x R1) * C2[i2] (R1 x n2), checked by hand.
  TTCores cores(TTShape({2, 2}, {2, 2}, {1, 2, 1}));
  // C1 slices: slice i1 is 1 row of 4 floats == (2 x 2).
  cores.core(0) = Matrix{{1.0f, 2.0f, 3.0f, 4.0f},
                         {5.0f, 6.0f, 7.0f, 8.0f}};
  // C2 slices: slice i2 is 2 rows x 2 cols.
  cores.core(1) = Matrix{{1.0f, 0.0f}, {0.0f, 1.0f},   // i2=0: identity
                         {1.0f, 1.0f}, {1.0f, -1.0f}}; // i2=1
  std::vector<float> row(4);
  // Row (i1=0, i2=0): A1 = [[1,2],[3,4]]; identity C2 -> flatten = 1,2,3,4.
  cores.reconstruct_row(0, row);
  EXPECT_FLOAT_EQ(row[0], 1.0f);
  EXPECT_FLOAT_EQ(row[1], 2.0f);
  EXPECT_FLOAT_EQ(row[2], 3.0f);
  EXPECT_FLOAT_EQ(row[3], 4.0f);
  // Row (i1=0, i2=1): [[1,2],[3,4]] * [[1,1],[1,-1]] = [[3,-1],[7,-1]].
  cores.reconstruct_row(1, row);
  EXPECT_FLOAT_EQ(row[0], 3.0f);
  EXPECT_FLOAT_EQ(row[1], -1.0f);
  EXPECT_FLOAT_EQ(row[2], 7.0f);
  EXPECT_FLOAT_EQ(row[3], -1.0f);
}

TEST(TTCores, MaterializeMatchesPerRowReconstruction) {
  Prng rng(42);
  TTCores cores(TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}));
  cores.init_normal(rng, 0.1f);
  const Matrix table = cores.materialize(60);
  std::vector<float> row(12);
  for (index_t r = 0; r < 60; r += 7) {
    cores.reconstruct_row(r, row);
    for (index_t j = 0; j < 12; ++j) {
      EXPECT_FLOAT_EQ(table.at(r, j), row[static_cast<std::size_t>(j)]);
    }
  }
}

TEST(TTCores, MaterializeRejectsTooManyRows) {
  Prng rng(1);
  TTCores cores(TTShape({2, 2, 2}, {2, 2, 2}, {1, 2, 2, 1}));
  cores.init_normal(rng);
  EXPECT_THROW(cores.materialize(9), Error);
}

TEST(TTCores, InitNormalHitsTargetRowStd) {
  Prng rng(7);
  TTCores cores(TTShape({8, 8, 8}, {4, 4, 4}, {1, 16, 16, 1}));
  const float target = 0.05f;
  cores.init_normal(rng, target);
  const Matrix table = cores.materialize(512);
  double sq = 0.0;
  for (index_t i = 0; i < table.size(); ++i) {
    sq += static_cast<double>(table.data()[i]) * table.data()[i];
  }
  const double std_measured = std::sqrt(sq / static_cast<double>(table.size()));
  // Product-of-gaussians tails are heavy; accept a generous factor-2 band.
  EXPECT_GT(std_measured, target / 2);
  EXPECT_LT(std_measured, target * 2);
}

TEST(TTCores, ParameterBytes) {
  TTCores cores(TTShape({4, 5, 6}, {2, 2, 4}, {1, 8, 8, 1}));
  EXPECT_EQ(cores.parameter_bytes(), (64u + 640u + 192u) * sizeof(float));
}

TEST(TTCores, FourCoreReconstructionWorks) {
  Prng rng(9);
  TTCores cores(TTShape({2, 3, 2, 3}, {2, 2, 2, 2}, {1, 3, 4, 3, 1}));
  cores.init_normal(rng, 0.1f);
  const Matrix table = cores.materialize(36);
  EXPECT_EQ(table.rows(), 36);
  EXPECT_EQ(table.cols(), 16);
  // Sanity: not all zero.
  EXPECT_GT(table.frobenius_norm(), 0.0f);
}

}  // namespace
}  // namespace elrec
