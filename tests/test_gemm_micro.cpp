// Property sweep for the register-tiled GEMM micro-kernel: every transpose
// combination, shapes straddling the 4x16 tile and 64/128/256 cache-block
// boundaries, leading dimensions larger than the logical width, and
// alpha/beta edge values — all checked against a naive double-accumulation
// reference on raw strided buffers. Plus bitwise thread-count invariance of
// gemm/gemv (the property the deterministic Eff-TT backward builds on).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tensor/gemm.hpp"
#include "tensor/matrix.hpp"

namespace elrec {
namespace {

// Naive strided reference: C = alpha * op(A) * op(B) + beta * C, double acc.
// beta == 0 overwrites (so C may hold garbage), matching the kernel contract.
void reference_gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                    float alpha, const float* a, index_t lda, const float* b,
                    index_t ldb, float beta, float* c, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index_t kk = 0; kk < k; ++kk) {
        const float av = ta == Trans::kNo ? a[i * lda + kk] : a[kk * lda + i];
        const float bv = tb == Trans::kNo ? b[kk * ldb + j] : b[j * ldb + kk];
        acc += static_cast<double>(av) * bv;
      }
      const float prior = beta == 0.0f ? 0.0f : beta * c[i * ldc + j];
      c[i * ldc + j] = prior + alpha * static_cast<float>(acc);
    }
  }
}

std::vector<float> random_buffer(Prng& rng, index_t rows, index_t ld) {
  std::vector<float> buf(static_cast<std::size_t>(rows * ld));
  for (auto& v : buf) v = static_cast<float>(rng.normal());
  return buf;
}

float max_abs_diff(const std::vector<float>& x, const std::vector<float>& y) {
  float d = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    d = std::max(d, std::fabs(x[i] - y[i]));
  }
  return d;
}

struct SweepCase {
  index_t m, n, k;
  index_t pad;  // extra columns added to every leading dimension
  float alpha, beta;
};

// Runs one (shape, stride, scalar) case through all four transpose combos.
void run_sweep_case(const SweepCase& sc) {
  for (Trans ta : {Trans::kNo, Trans::kYes}) {
    for (Trans tb : {Trans::kNo, Trans::kYes}) {
      Prng rng(1234 + static_cast<std::uint64_t>(sc.m * 131 + sc.n * 17 +
                                                 sc.k * 3 + sc.pad));
      const index_t a_rows = ta == Trans::kNo ? sc.m : sc.k;
      const index_t a_cols = ta == Trans::kNo ? sc.k : sc.m;
      const index_t b_rows = tb == Trans::kNo ? sc.k : sc.n;
      const index_t b_cols = tb == Trans::kNo ? sc.n : sc.k;
      const index_t lda = a_cols + sc.pad;
      const index_t ldb = b_cols + sc.pad;
      const index_t ldc = sc.n + sc.pad;

      const auto a = random_buffer(rng, a_rows, lda);
      const auto b = random_buffer(rng, b_rows, ldb);
      auto c = random_buffer(rng, sc.m, ldc);
      if (sc.beta == 0.0f) {
        // beta == 0 must overwrite: poison C so any read of it shows up.
        for (auto& v : c) v = std::numeric_limits<float>::quiet_NaN();
      }
      auto expected = c;

      reference_gemm(ta, tb, sc.m, sc.n, sc.k, sc.alpha, a.data(), lda,
                     b.data(), ldb, sc.beta, expected.data(), ldc);
      gemm(ta, tb, sc.m, sc.n, sc.k, sc.alpha, a.data(), lda, b.data(), ldb,
           sc.beta, c.data(), ldc);

      // Compare only the logical m x n window; padding is never written by
      // the reference, and the kernel must not touch it either.
      float diff = 0.0f;
      for (index_t i = 0; i < sc.m; ++i) {
        for (index_t j = 0; j < sc.n; ++j) {
          diff = std::max(diff, std::fabs(c[static_cast<std::size_t>(i * ldc + j)] -
                                          expected[static_cast<std::size_t>(i * ldc + j)]));
          ASSERT_FALSE(std::isnan(c[static_cast<std::size_t>(i * ldc + j)]))
              << "NaN leaked from beta==0 C at (" << i << "," << j << ")";
        }
      }
      EXPECT_LT(diff, 1e-3f * (1.0f + static_cast<float>(sc.k)))
          << "m=" << sc.m << " n=" << sc.n << " k=" << sc.k
          << " pad=" << sc.pad << " alpha=" << sc.alpha << " beta=" << sc.beta
          << " ta=" << (ta == Trans::kYes) << " tb=" << (tb == Trans::kYes);
      if (sc.beta != 0.0f) {
        // Padding columns must be untouched (they started equal in c and
        // expected, and the reference never writes them).
        for (index_t i = 0; i < sc.m; ++i) {
          for (index_t j = sc.n; j < ldc; ++j) {
            EXPECT_EQ(c[static_cast<std::size_t>(i * ldc + j)],
                      expected[static_cast<std::size_t>(i * ldc + j)])
                << "padding written at (" << i << "," << j << ")";
          }
        }
      }
    }
  }
}

// Shapes straddle the kMR=4 / kNR=16 register tile and the 64/128/256
// cache-block edges; n <= 4 exercises the dedicated tiny-n path.
TEST(GemmMicroKernel, ShapeSweepAllTransposeCombos) {
  const index_t dims[] = {1, 3, 4, 5, 15, 16, 17, 33};
  for (index_t m : dims) {
    for (index_t n : dims) {
      for (index_t k : dims) {
        run_sweep_case({m, n, k, 0, 1.0f, 0.0f});
      }
    }
  }
}

TEST(GemmMicroKernel, CacheBlockBoundaries) {
  run_sweep_case({63, 127, 255, 0, 1.0f, 0.0f});
  run_sweep_case({64, 128, 256, 0, 1.0f, 1.0f});
  run_sweep_case({65, 129, 257, 0, 1.0f, 0.5f});
  run_sweep_case({130, 40, 300, 0, -1.0f, 0.0f});
}

TEST(GemmMicroKernel, StridedBuffers) {
  for (index_t pad : {1, 3, 7}) {
    run_sweep_case({5, 17, 9, pad, 1.0f, 0.5f});
    run_sweep_case({4, 2, 33, pad, 1.0f, 0.0f});   // tiny-n path, strided
    run_sweep_case({33, 31, 64, pad, 2.0f, 1.0f});
  }
}

TEST(GemmMicroKernel, AlphaBetaEdges) {
  const float alphas[] = {0.0f, 1.0f, -1.0f, 0.5f};
  const float betas[] = {0.0f, 1.0f, -1.0f, 0.5f};
  for (float alpha : alphas) {
    for (float beta : betas) {
      run_sweep_case({17, 19, 23, 0, alpha, beta});
    }
  }
}

TEST(GemmMicroKernel, TinyTTShapes) {
  // The exact shapes the Eff-TT kernels launch: stage-1 prefix products
  // (4x16 * 16x64) and stage-2 suffix extension (n <= 4 output columns).
  run_sweep_case({4, 64, 16, 0, 1.0f, 0.0f});
  run_sweep_case({1, 64, 16, 0, 1.0f, 0.0f});
  run_sweep_case({8, 2, 128, 0, 1.0f, 0.0f});
  run_sweep_case({2, 4, 16, 0, 1.0f, 1.0f});
}

#ifdef _OPENMP
// gemm/gemv must be bitwise identical at any thread count: the blocked loops
// never split the k dimension across threads, so the float sum order is a
// function of the shape alone. The deterministic Eff-TT backward (and the
// PR 1 checkpoint/resume invariants) depend on this.
TEST(GemmMicroKernel, BitwiseThreadCountInvariance) {
  const int saved = omp_get_max_threads();
  Prng rng(77);
  const index_t m = 300, n = 200, k = 150;
  Matrix a(m, k), b(k, n);
  a.fill_normal(rng);
  b.fill_normal(rng);

  Matrix c1(m, n), c4(m, n);
  omp_set_num_threads(1);
  gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       c1.data(), n);
  omp_set_num_threads(4);
  gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       c4.data(), n);
  EXPECT_EQ(Matrix::max_abs_diff(c1, c4), 0.0f);

  // gemv needs m >= 512 (no-trans) / n >= 512 (trans) before its parallel
  // clauses engage, so use a matrix big enough in both directions.
  const index_t gm = 600, gn = 600;
  Matrix g(gm, gn);
  g.fill_normal(rng);
  std::vector<float> x(static_cast<std::size_t>(gm), 0.25f);
  std::vector<float> y1(static_cast<std::size_t>(gn), 0.0f);
  std::vector<float> y4(static_cast<std::size_t>(gn), 0.0f);
  omp_set_num_threads(1);
  gemv(Trans::kNo, gm, gn, 1.0f, g.data(), gn, x.data(), 0.0f, y1.data());
  omp_set_num_threads(4);
  gemv(Trans::kNo, gm, gn, 1.0f, g.data(), gn, x.data(), 0.0f, y4.data());
  EXPECT_EQ(max_abs_diff(y1, y4), 0.0f);
  omp_set_num_threads(1);
  gemv(Trans::kYes, gm, gn, 1.0f, g.data(), gn, x.data(), 0.0f, y1.data());
  omp_set_num_threads(4);
  gemv(Trans::kYes, gm, gn, 1.0f, g.data(), gn, x.data(), 0.0f, y4.data());
  EXPECT_EQ(max_abs_diff(y1, y4), 0.0f);

  omp_set_num_threads(saved);
}
#endif

}  // namespace
}  // namespace elrec
