// Tests for binary serialization and TT-core checkpointing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/serialize.hpp"
#include "tt/tt_checkpoint.hpp"

namespace elrec {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, PodRoundTrip) {
  const std::string path = temp_path("elrec_pod_test.bin");
  {
    BinaryWriter w(path);
    w.write_u64(42);
    w.write_i64(-7);
    w.write_f32(1.5f);
    w.flush();
  }
  BinaryReader r(path);
  EXPECT_EQ(r.read_u64(), 42u);
  EXPECT_EQ(r.read_i64(), -7);
  EXPECT_FLOAT_EQ(r.read_f32(), 1.5f);
  std::remove(path.c_str());
}

TEST(Serialize, VectorRoundTrip) {
  const std::string path = temp_path("elrec_vec_test.bin");
  const std::vector<float> data{1.0f, -2.0f, 3.5f};
  const std::vector<index_t> idx{10, 20, 30, 40};
  {
    BinaryWriter w(path);
    w.write_vector(data);
    w.write_vector(idx);
    w.flush();
  }
  BinaryReader r(path);
  EXPECT_EQ(r.read_vector<float>(), data);
  EXPECT_EQ(r.read_vector<index_t>(), idx);
  std::remove(path.c_str());
}

TEST(Serialize, TagMismatchThrows) {
  const std::string path = temp_path("elrec_tag_test.bin");
  {
    BinaryWriter w(path);
    w.write_tag("AAAA");
    w.flush();
  }
  BinaryReader r(path);
  EXPECT_THROW(r.expect_tag("BBBB"), Error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileThrows) {
  const std::string path = temp_path("elrec_trunc_test.bin");
  {
    BinaryWriter w(path);
    w.write_u64(1000);  // claims 1000 floats but writes none
    w.flush();
  }
  BinaryReader r(path);
  EXPECT_THROW(r.read_vector<float>(), Error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/nonexistent/path/file.bin"), Error);
}

TEST(TTCheckpoint, RoundTripPreservesEverything) {
  Prng rng(9);
  TTCores cores(TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}));
  cores.init_normal(rng, 0.3f);
  const std::string path = temp_path("elrec_tt_ckpt.bin");
  save_tt_cores(cores, path);
  const TTCores loaded = load_tt_cores(path);
  EXPECT_EQ(loaded.shape().row_factors(), cores.shape().row_factors());
  EXPECT_EQ(loaded.shape().col_factors(), cores.shape().col_factors());
  EXPECT_EQ(loaded.shape().ranks(), cores.shape().ranks());
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(loaded.core(k), cores.core(k)), 0.0f + 1e-9f);
  }
  // The reconstructed tables agree exactly.
  EXPECT_LT(Matrix::max_abs_diff(loaded.materialize(55), cores.materialize(55)),
            1e-9f);
  std::remove(path.c_str());
}

TEST(TTCheckpoint, WrongFileRejected) {
  const std::string path = temp_path("elrec_wrong_ckpt.bin");
  {
    BinaryWriter w(path);
    w.write_tag("JUNK");
    w.flush();
  }
  EXPECT_THROW(load_tt_cores(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace elrec
