// Serving-engine tests: frozen-path equivalence with training predict(),
// micro-batch determinism (same request, any batch composition, identical
// bits), concurrent const readers, load shedding, and drain-on-shutdown.
// Registered with the "sanitize" label — run under TSan to check the
// concurrent-reader contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/eff_tt_table.hpp"
#include "data/stats.hpp"
#include "obs/metrics.hpp"
#include "data/synthetic.hpp"
#include "embed/embedding_bag.hpp"
#include "serve/inference_session.hpp"
#include "serve/request_scheduler.hpp"

namespace elrec {
namespace {

constexpr index_t kRowsTT = 800;
constexpr index_t kRowsBag = 60;
constexpr index_t kDim = 8;
constexpr index_t kDense = 3;

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "serve";
  spec.num_dense = kDense;
  spec.table_rows = {kRowsTT, kRowsBag};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = kDense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EffTTTable>(
      kRowsTT, TTShape::balanced(kRowsTT, kDim, 3, 4), rng));
  tables.push_back(std::make_unique<EmbeddingBag>(kRowsBag, kDim, rng));
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

std::unique_ptr<DlrmModel> make_trained_model(std::uint64_t seed) {
  auto model = make_model(seed);
  SyntheticDataset data(tiny_spec(), seed + 1);
  for (int b = 0; b < 10; ++b) model->train_step(data.next_batch(64), 0.05f);
  return model;
}

RankingRequest make_request(Prng& rng, index_t max_bag = 3) {
  RankingRequest req;
  req.dense.resize(static_cast<std::size_t>(kDense));
  for (auto& v : req.dense) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  req.sparse.resize(2);
  const index_t bag0 =
      1 + static_cast<index_t>(
              rng.uniform_index(static_cast<std::uint64_t>(max_bag)));
  for (index_t i = 0; i < bag0; ++i) {
    req.sparse[0].push_back(static_cast<index_t>(
        rng.uniform_index(static_cast<std::uint64_t>(kRowsTT))));
  }
  req.sparse[1].push_back(static_cast<index_t>(
      rng.uniform_index(static_cast<std::uint64_t>(kRowsBag))));
  return req;
}

MiniBatch to_minibatch(const std::vector<RankingRequest>& reqs) {
  MiniBatch mb;
  const auto b = static_cast<index_t>(reqs.size());
  mb.dense.resize(b, kDense);
  mb.sparse.resize(2);
  for (auto& ib : mb.sparse) ib.offsets.assign(1, 0);
  for (index_t i = 0; i < b; ++i) {
    const RankingRequest& r = reqs[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < kDense; ++j) {
      mb.dense.at(i, j) = r.dense[static_cast<std::size_t>(j)];
    }
    for (std::size_t t = 0; t < 2; ++t) {
      auto& ib = mb.sparse[t];
      ib.indices.insert(ib.indices.end(), r.sparse[t].begin(),
                        r.sparse[t].end());
      ib.offsets.push_back(static_cast<index_t>(ib.indices.size()));
    }
  }
  return mb;
}

TEST(InferenceSession, FrozenPredictMatchesTrainingPredict) {
  auto model = make_trained_model(11);
  DlrmModel* raw = model.get();
  SyntheticDataset data(tiny_spec(), 4);
  const MiniBatch eval = data.eval_batch(64, 9);

  std::vector<float> train_probs;
  raw->predict(eval, train_probs);

  InferenceSession session(std::move(model));  // cache disabled
  auto state = session.make_worker_state();
  std::vector<float> serve_probs;
  session.predict(eval, serve_probs, *state);

  ASSERT_EQ(train_probs.size(), serve_probs.size());
  for (std::size_t i = 0; i < train_probs.size(); ++i) {
    // Bitwise: the frozen path reorders no accumulation.
    EXPECT_EQ(train_probs[i], serve_probs[i]) << "sample " << i;
  }
}

TEST(InferenceSession, BatchOneMatchesCoalescedBatchBitwise) {
  InferenceSessionConfig cfg;
  cfg.cache.capacity = 64;
  cfg.cache.admit_min_freq = 1;
  InferenceSession session(make_trained_model(13), cfg);
  auto state = session.make_worker_state();

  Prng rng(99);
  std::vector<RankingRequest> reqs;
  for (int i = 0; i < 24; ++i) reqs.push_back(make_request(rng));

  // Each request alone (batch size 1).
  std::vector<float> solo(reqs.size());
  std::vector<float> probs;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    session.predict(to_minibatch({reqs[i]}), probs, *state);
    solo[i] = probs[0];
  }

  // Same requests inside one coalesced micro-batch — and a second pass so
  // both cold (computed) and hot (cached) rows are exercised.
  for (int pass = 0; pass < 2; ++pass) {
    session.predict(to_minibatch(reqs), probs, *state);
    ASSERT_EQ(probs.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(solo[i], probs[i]) << "request " << i << " pass " << pass;
    }
  }
  EXPECT_GT(session.cache_hit_rate(), 0.0);
}

TEST(InferenceSession, ConcurrentReadersMatchSerialReference) {
  InferenceSessionConfig cfg;
  cfg.cache.capacity = 128;
  cfg.cache.admit_min_freq = 1;
  InferenceSession session(make_trained_model(17), cfg);

  constexpr int kThreads = 8;
  constexpr int kBatchesPerThread = 20;

  // Reference answers computed serially first (cache warmth must not change
  // bits, so pre-populating it via the serial pass is fine).
  std::vector<std::vector<MiniBatch>> work(kThreads);
  std::vector<std::vector<std::vector<float>>> expected(kThreads);
  {
    auto state = session.make_worker_state();
    for (int t = 0; t < kThreads; ++t) {
      Prng rng(1000 + static_cast<std::uint64_t>(t));
      for (int b = 0; b < kBatchesPerThread; ++b) {
        std::vector<RankingRequest> reqs;
        for (int i = 0; i < 8; ++i) reqs.push_back(make_request(rng));
        work[t].push_back(to_minibatch(reqs));
        std::vector<float> probs;
        session.predict(work[t].back(), probs, *state);
        expected[t].push_back(probs);
      }
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto state = session.make_worker_state();
      std::vector<float> probs;
      for (int b = 0; b < kBatchesPerThread; ++b) {
        session.predict(work[t][static_cast<std::size_t>(b)], probs, *state);
        for (std::size_t i = 0; i < probs.size(); ++i) {
          if (probs[i] !=
              expected[t][static_cast<std::size_t>(b)][i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(InferenceSession, WarmCacheFromMeasuredHotSetHits) {
  InferenceSessionConfig cfg;
  cfg.cache.capacity = 64;
  cfg.cache.admit_min_freq = 100000;  // admission effectively off: only warm
  InferenceSession session(make_trained_model(23), cfg);

  SyntheticDataset data(tiny_spec(), 6);
  const auto hot = top_accessed_indices(data, /*t=*/0, /*k=*/64,
                                        /*num_draws=*/20000);
  ASSERT_FALSE(hot.empty());
  session.warm_cache(0, hot);
  ASSERT_EQ(session.cache(0)->size(), static_cast<index_t>(hot.size()));

  auto state = session.make_worker_state();
  std::vector<float> probs;
  for (int b = 0; b < 20; ++b) {
    session.predict(data.next_batch(64), probs, *state);
  }
  // Zipf traffic against the measured hot set: a solid fraction must hit.
  const ServingCacheStats s = session.cache(0)->stats_snapshot();
  EXPECT_GT(s.hits, 0u);
  const double rate = static_cast<double>(s.hits) /
                      static_cast<double>(s.hits + s.misses);
  EXPECT_GT(rate, 0.2) << "hot-set warmup should absorb Zipf traffic";
}

TEST(RequestScheduler, ServesCorrectResultsAndCoalesces) {
  InferenceSessionConfig scfg;
  scfg.cache.capacity = 128;
  scfg.cache.admit_min_freq = 1;
  InferenceSession session(make_trained_model(29), scfg);

  // Reference bits for each request, computed directly at batch size 1.
  Prng rng(7);
  std::vector<RankingRequest> reqs;
  for (int i = 0; i < 64; ++i) reqs.push_back(make_request(rng));
  std::vector<float> expected(reqs.size());
  {
    auto state = session.make_worker_state();
    std::vector<float> probs;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      session.predict(to_minibatch({reqs[i]}), probs, *state);
      expected[i] = probs[0];
    }
  }

  RequestSchedulerConfig cfg;
  cfg.num_workers = 1;  // single worker => followers must coalesce
  cfg.max_batch = 8;
  cfg.max_wait_us = 100000;  // generous window so the test is not timing-shy
  cfg.queue_capacity = 128;
  // The scheduler mirrors every request's latency split into the global
  // registry histograms; delta across this run must match the per-instance
  // recorder exactly.
  auto& reg = obs::MetricsRegistry::global();
  const std::size_t queue_before = reg.histogram("serve.queue_us").count();
  const std::size_t compute_before = reg.histogram("serve.compute_us").count();
  RequestScheduler sched(session, cfg);

  std::vector<std::future<RankingResponse>> futs(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(sched.submit(reqs[i], futs[i]), SubmitStatus::kAccepted);
  }
  index_t largest = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const RankingResponse r = futs[i].get();
    // Micro-batched result must be bitwise equal to the batch-1 reference,
    // whatever batch composition the scheduler chose.
    EXPECT_EQ(r.prob, expected[i]) << "request " << i;
    EXPECT_GE(r.queue_us, 0.0);
    EXPECT_GT(r.compute_us, 0.0);
    largest = std::max(largest, r.micro_batch);
  }
  sched.shutdown();
  const auto s = sched.stats();
  EXPECT_EQ(s.accepted, reqs.size());
  EXPECT_EQ(s.served, reqs.size());
  EXPECT_EQ(s.shed, 0u);
  // 64 requests through 1 worker with an open window: coalescing must kick
  // in (the worker can't pop-serve 64 times inside the windows).
  EXPECT_GT(largest, 1) << "scheduler never built a micro-batch";
  EXPECT_EQ(s.largest_batch, largest);
  EXPECT_EQ(sched.latency().count(), reqs.size());
  EXPECT_EQ(reg.histogram("serve.queue_us").count() - queue_before,
            reqs.size());
  EXPECT_EQ(reg.histogram("serve.compute_us").count() - compute_before,
            reqs.size());
  const LatencySummary total = sched.latency().total_summary();
  EXPECT_EQ(total.count, reqs.size());
  EXPECT_GT(total.p50, 0.0);
  EXPECT_GE(total.p99, total.p50);
  EXPECT_GE(total.max, total.p99);  // summary clamps estimates to exact max
}

TEST(RequestScheduler, OverloadShedsAndAcceptedAreAllServed) {
  InferenceSession session(make_trained_model(31));
  RequestSchedulerConfig cfg;
  cfg.num_workers = 1;   // one worker, no batching: drain rate is one
  cfg.max_batch = 1;     // forward pass per request
  cfg.max_wait_us = 0;
  cfg.queue_capacity = 1;  // minimal admission bound
  RequestScheduler sched(session, cfg);

  // Pre-generate heavy requests (bags of up to 256 indices) so the flood
  // loop below runs much faster than one forward pass: with a single
  // in-flight slot, back-to-back submissions during any forward must shed.
  Prng rng(3);
  std::vector<RankingRequest> reqs;
  for (int i = 0; i < 1000; ++i) {
    reqs.push_back(make_request(rng, /*max_bag=*/256));
  }
  std::vector<std::future<RankingResponse>> accepted;
  std::size_t overloaded = 0;
  bool typed_error_seen = false;
  for (const RankingRequest& r : reqs) {
    std::future<RankingResponse> fut;
    switch (sched.submit(r, fut)) {
      case SubmitStatus::kAccepted:
        accepted.push_back(std::move(fut));
        break;
      case SubmitStatus::kOverloaded:
        ++overloaded;
        if (!typed_error_seen) {
          // The queue was full a moment ago: the blocking API must surface
          // the structured error. A worker may drain in between — then the
          // call just serves and a later overload retries the check.
          try {
            (void)sched.submit_blocking(make_request(rng, 16));
          } catch (const OverloadedError&) {
            typed_error_seen = true;
          }
        }
        break;
      case SubmitStatus::kClosed:
        FAIL() << "scheduler closed unexpectedly";
    }
  }
  EXPECT_GT(overloaded, 0u) << "admission bound never tripped";
  EXPECT_TRUE(typed_error_seen);

  // Every accepted request below the shedding threshold completes: zero
  // drops.
  for (auto& f : accepted) {
    const RankingResponse r = f.get();
    EXPECT_GE(r.prob, 0.0f);
    EXPECT_LE(r.prob, 1.0f);
  }
  sched.shutdown();
  const auto s = sched.stats();
  // submit_blocking retries above go through submit() too, so shed can
  // exceed the count we tallied from the flood loop alone.
  EXPECT_GE(s.shed, overloaded);
  EXPECT_GE(s.served, accepted.size());
}

TEST(RequestScheduler, ShutdownDrainsQueueAndRejectsNewWork) {
  InferenceSession session(make_trained_model(37));
  RequestSchedulerConfig cfg;
  cfg.num_workers = 2;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100;
  cfg.queue_capacity = 256;
  RequestScheduler sched(session, cfg);

  Prng rng(5);
  std::vector<std::future<RankingResponse>> futs(100);
  for (auto& fut : futs) {
    ASSERT_EQ(sched.submit(make_request(rng), fut), SubmitStatus::kAccepted);
  }
  sched.shutdown();

  // Every accepted request was served before the workers exited.
  for (auto& fut : futs) {
    EXPECT_NO_THROW({ (void)fut.get(); });
  }
  EXPECT_EQ(sched.stats().served, futs.size());

  std::future<RankingResponse> fut;
  EXPECT_EQ(sched.submit(make_request(rng), fut), SubmitStatus::kClosed);
  EXPECT_THROW((void)sched.submit_blocking(make_request(rng)), Error);
}

TEST(RequestScheduler, MalformedRequestsAreRejectedUpFront) {
  InferenceSession session(make_trained_model(41));
  RequestScheduler sched(session, RequestSchedulerConfig{});

  RankingRequest bad_dense;
  bad_dense.dense.resize(1);  // model wants kDense
  bad_dense.sparse.resize(2);
  bad_dense.sparse[0].push_back(0);
  bad_dense.sparse[1].push_back(0);
  std::future<RankingResponse> fut;
  EXPECT_THROW((void)sched.submit(bad_dense, fut), Error);

  RankingRequest bad_tables;
  bad_tables.dense.resize(static_cast<std::size_t>(kDense));
  bad_tables.sparse.resize(1);  // model has 2 tables
  EXPECT_THROW((void)sched.submit(bad_tables, fut), Error);
}

}  // namespace
}  // namespace elrec
