// elrec-lint suite: lexer, every shipped per-file rule (positive hit +
// suppression), the cross-TU project rules on multi-file fixtures, the
// symbol index round-trip, baseline filtering/pruning, registry/reporter
// round-trips, and the end-to-end driver (serial == parallel) on a temp
// tree. Runs under the `lint` ctest label.
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/driver.hpp"
#include "analyze/index.hpp"
#include "analyze/lexer.hpp"
#include "obs/json.hpp"

namespace elrec::analyze {
namespace {

namespace fs = std::filesystem;

// Mirrors the driver's per-file pass: run rules, drop NOLINT-suppressed —
// except nolint-rationale, which audits the markers themselves and must
// not be silenced by a reason-less marker.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const LintContext& ctx = {}) {
  static const RuleRegistry registry = RuleRegistry::with_builtin_rules();
  const SourceFile file = SourceFile::from_source(path, source);
  std::vector<Finding> kept;
  for (Finding& f : registry.run(file, ctx)) {
    if (f.rule == "nolint-rationale" || !file.suppressed(f.rule, f.line)) {
      kept.push_back(std::move(f));
    }
  }
  return kept;
}

// Mirrors the driver's cross-TU pass: index every (path, source) pair,
// finalize, run the project rules, apply NOLINT suppression.
std::vector<Finding> lint_project(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const LintContext& ctx = {}) {
  static const RuleRegistry registry = RuleRegistry::with_builtin_rules();
  ProjectIndex index;
  for (const auto& [path, text] : sources) {
    auto file =
        std::make_shared<SourceFile>(SourceFile::from_source(path, text));
    index.add(extract_facts(*file), file);
  }
  index.finalize();
  std::vector<Finding> kept;
  for (Finding& f : registry.run_project(index, ctx)) {
    const SourceFile* src = index.source(f.path);
    if (src == nullptr || f.rule == "nolint-rationale" ||
        !src->suppressed(f.rule, f.line)) {
      kept.push_back(std::move(f));
    }
  }
  return kept;
}

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

// ------------------------------------------------------------- lexer ----

TEST(Lexer, TokenKindsAndPositions) {
  const TokenStream ts = lex("int x = 42;\nfoo->bar(1'000, \"s\");");
  ASSERT_GE(ts.size(), 12u);
  EXPECT_EQ(ts[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(ts[0].text, "int");
  EXPECT_EQ(ts[0].line, 1u);
  EXPECT_EQ(ts[0].col, 1u);
  EXPECT_EQ(ts[3].kind, TokenKind::kNumber);
  EXPECT_EQ(ts[3].text, "42");
  // `->` stays one token; the digit separator stays inside the number.
  EXPECT_EQ(ts[6].text, "->");
  EXPECT_EQ(ts[6].line, 2u);
  bool found_number = false, found_string = false;
  for (const Token& t : ts) {
    if (t.text == "1'000") found_number = (t.kind == TokenKind::kNumber);
    if (t.text == "\"s\"") found_string = (t.kind == TokenKind::kString);
  }
  EXPECT_TRUE(found_number);
  EXPECT_TRUE(found_string);
}

TEST(Lexer, LiteralsAndCommentsAreOpaque) {
  // rand() inside strings, raw strings, chars and comments must not
  // surface as identifier tokens.
  const std::string src =
      "const char* a = \"rand()\";\n"
      "const char* b = R\"x(srand(1))x\";\n"
      "char c = 'r'; // rand() here\n"
      "/* srand(2) */\n";
  for (const Token& t : lex(src)) {
    EXPECT_NE(t.kind, TokenKind::kNumber) << t.text;
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "srand");
    }
  }
  EXPECT_TRUE(lint_source("src/x.cpp", src).empty());
}

TEST(Lexer, PreprocessorContinuationIsOneToken) {
  const TokenStream ts = lex("#pragma omp parallel for \\\n  reduction(+ : s)\nint x;");
  ASSERT_FALSE(ts.empty());
  EXPECT_EQ(ts[0].kind, TokenKind::kPpDirective);
  EXPECT_NE(ts[0].text.find("reduction"), std::string::npos);
  // `int` after the continuation is normal code again.
  EXPECT_EQ(ts[1].text, "int");
}

// -------------------------------------------------------------- rules ----

TEST(DeterminismRand, FlagsLibcRngAndRandomDevice) {
  const auto fs = lint_source("src/x.cpp",
                              "int a = rand();\n"
                              "std::random_device rd;\n"
                              "srand(42);\n");
  EXPECT_EQ(fs.size(), 3u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "determinism-rand");
  EXPECT_EQ(fs[0].line, 1u);
}

TEST(DeterminismRand, MemberAccessAndOtherScopesExempt) {
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "int a = prng.rand_r(s);\n"
                          "int b = gen->rand();\n"
                          "int c = MyGen::rand_r(s);\n"
                          "int rand = 3;  // not a call\n")
                  .empty());
}

TEST(DeterminismRand, NolintSuppresses) {
  EXPECT_TRUE(
      lint_source("src/x.cpp",
                  "int a = rand();  // NOLINT(elrec-determinism-rand): fixture\n")
          .empty());
  // A bare NOLINT also suppresses; a mismatched tag does not.
  EXPECT_TRUE(
      lint_source("src/x.cpp", "int a = rand();  // NOLINT: fixture\n").empty());
  const auto fs = lint_source(
      "src/x.cpp", "int a = rand();  // NOLINT(elrec-header-hygiene): fixture\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism-rand");
}

TEST(NondeterministicReduction, FlagsParallelFloatShapesOnly) {
  EXPECT_EQ(rules_of(lint_source(
                "src/x.cpp",
                "#pragma omp parallel for reduction(+ : acc)\n"
                "for (int i = 0; i < n; ++i) acc += v[i];\n")),
            std::vector<std::string>{"nondeterministic-reduction"});
  EXPECT_EQ(lint_source("src/x.cpp", "#pragma omp atomic\nx += y;\n").size(),
            1u);
  // Single-thread SIMD reductions have a fixed lane order: deterministic.
  EXPECT_TRUE(
      lint_source("src/x.cpp", "#pragma omp simd reduction(+ : acc)\n")
          .empty());
  // min/max are exact in FP regardless of order.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "#pragma omp parallel for reduction(max : m)\n")
                  .empty());
}

TEST(NondeterministicReduction, NolintNextlineOnPragma) {
  EXPECT_TRUE(lint_source(
                  "src/x.cpp",
                  "// NOLINTNEXTLINE(elrec-nondeterministic-reduction): fixture\n"
                  "#pragma omp parallel for reduction(+ : count)\n")
                  .empty());
}

TEST(NolintRationale, ReasonlessMarkersAreFindings) {
  // A reason-less marker is itself a finding, even though bare NOLINT
  // suppresses "all rules" — the rationale rule is exempt from NOLINT.
  const auto bare = lint_source("src/x.cpp", "int a = rand();  // NOLINT\n");
  ASSERT_EQ(bare.size(), 1u);
  EXPECT_EQ(bare[0].rule, "nolint-rationale");
  const auto tagged = lint_source(
      "src/x.cpp", "int a = rand();  // NOLINT(elrec-determinism-rand)\n");
  ASSERT_EQ(tagged.size(), 1u);
  EXPECT_EQ(tagged[0].rule, "nolint-rationale");
  // A `: reason` tail satisfies it, and the suppression still works.
  EXPECT_TRUE(
      lint_source("src/x.cpp",
                  "int a = rand();  // NOLINT: fixture rng, seed irrelevant\n")
          .empty());
}

TEST(NolintRationale, ProseAndForeignToolsAreNotMarkers) {
  // Prose that mentions (or even ends with) the tag is not a marker.
  EXPECT_TRUE(
      lint_source("src/x.cpp", "// how the linter applies NOLINT\n").empty());
  EXPECT_TRUE(
      lint_source("src/x.cpp", "// NOLINT markers need a reason\n").empty());
  // Another tool's rule list is ignored entirely: it neither suppresses
  // our rules nor owes us a rationale.
  const auto fs = lint_source("src/x.cpp",
                              "int a = rand();  // NOLINT(bugprone-foo)\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "determinism-rand");
}

TEST(AtomicsOrdering, FlagsDefaultSeqCstRmwAndVolatile) {
  const auto fs = lint_source("src/x.cpp",
                              "v.fetch_add(1);\n"
                              "volatile int flag;\n"
                              "w.store(1, std::memory_order_seq_cst);\n");
  EXPECT_EQ(fs.size(), 3u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "atomics-ordering");
}

TEST(AtomicsOrdering, ExplicitOrderOk) {
  // Including when the order argument lands on a continuation line.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "v.fetch_add(1, std::memory_order_relaxed);\n"
                          "w.exchange(true,\n"
                          "           std::memory_order_acq_rel);\n"
                          "x.load();  // load() alone carries no RMW fence\n")
                  .empty());
}

TEST(IostreamInLib, LibraryOnly) {
  const std::string src = "void f() { printf(\"x\"); std::cerr << 1; }\n";
  EXPECT_EQ(lint_source("src/foo/bar.cpp", src).size(), 2u);
  // Same content outside library code is fine.
  EXPECT_TRUE(lint_source("tools/bar.cpp", src).empty());
  EXPECT_TRUE(lint_source("bench/bar.cpp", src).empty());
  EXPECT_TRUE(lint_source("tests/bar.cpp", src).empty());
  // Buffer formatting is not I/O.
  EXPECT_TRUE(
      lint_source("src/x.cpp", "void f() { snprintf(b, 8, \"x\"); }\n")
          .empty());
}

TEST(LockDiscipline, FlagsManualLockOnMutexNames) {
  const auto fs = lint_source("src/x.cpp",
                              "std::mutex mu_;\n"
                              "void f() { mu_.lock(); mu_.unlock(); }\n");
  EXPECT_EQ(fs.size(), 2u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "lock-discipline");
  // Declaration pass catches mutexes with unconventional names too.
  EXPECT_EQ(lint_source("src/x.cpp",
                        "std::shared_mutex table_guard;\n"
                        "void f() { table_guard.lock_shared(); }\n")
                .size(),
            1u);
}

TEST(LockDiscipline, RaiiGuardsOk) {
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "std::mutex mu_;\n"
                          "void f() {\n"
                          "  std::unique_lock lock(mu_);\n"
                          "  lock.unlock();  // guard method, not the mutex\n"
                          "  std::lock_guard g(mu_);\n"
                          "}\n")
                  .empty());
}

TEST(HeaderHygiene, PragmaOnceAndUsingNamespace) {
  EXPECT_EQ(rules_of(lint_source("src/a.hpp", "int f();\n")),
            std::vector<std::string>{"header-hygiene"});
  EXPECT_EQ(lint_source("src/a.hpp",
                        "#pragma once\nusing namespace std;\n")
                .size(),
            1u);
  EXPECT_TRUE(lint_source("src/a.hpp", "#pragma once\nint f();\n").empty());
  // .cpp files may use-namespace locally and need no pragma.
  EXPECT_TRUE(lint_source("src/a.cpp", "using namespace std;\n").empty());
}

TEST(TraceSpanCoverage, ManifestDrivenHits) {
  LintContext ctx;
  ctx.trace_manifest = {{"hot.cpp", "run"}};
  // Covered: definition contains TRACE_SPAN.
  EXPECT_TRUE(lint_source("src/hot.cpp",
                          "void Foo::run(int n) {\n"
                          "  TRACE_SPAN(\"foo.run\");\n"
                          "}\n",
                          ctx)
                  .empty());
  // Uncovered definition is a finding at the definition line.
  const auto missing = lint_source("src/hot.cpp",
                                   "void Foo::run(int n) { work(n); }\n", ctx);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].rule, "trace-span-coverage");
  EXPECT_EQ(missing[0].line, 1u);
  // A call site is not a definition: the manifest entry must fail loudly.
  const auto drift =
      lint_source("src/hot.cpp", "void g() { if (run(3)) { stop(); } }\n", ctx);
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_NE(drift[0].message.find("no definition"), std::string::npos);
  // Files not named by the manifest are untouched.
  EXPECT_TRUE(lint_source("src/cold.cpp", "void run(int) {}\n", ctx).empty());
}

// ------------------------------------------- cross-TU project rules ----

// Two TUs acquiring the same pair of mutexes in opposite orders: the
// classic deadlock shape the lock-order graph exists to catch.
const char* kAlphaCpp =
    "#include <mutex>\n"
    "class Alpha {\n"
    " public:\n"
    "  void forward();\n"
    "  std::mutex mu_;\n"
    "};\n"
    "class Beta {\n"
    " public:\n"
    "  void reverse();\n"
    "  std::mutex mu_;\n"
    "};\n"
    "Alpha alpha;\n"
    "Beta beta;\n"
    "void Alpha::forward() {\n"
    "  std::lock_guard<std::mutex> g(mu_);\n"
    "  std::lock_guard<std::mutex> h(beta.mu_);\n"
    "}\n";

const char* kBetaCpp =
    "#include <mutex>\n"
    "extern Alpha alpha;\n"
    "extern Beta beta;\n"
    "void Beta::reverse() {\n"
    "  std::lock_guard<std::mutex> g(mu_);\n"
    "  std::lock_guard<std::mutex> h(alpha.mu_);\n"
    "}\n";

TEST(LockOrderGraph, TwoFileCycleWithWitnessPath) {
  const auto fs = lint_project(
      {{"src/pipeline/alpha.cpp", kAlphaCpp}, {"src/serve/beta.cpp", kBetaCpp}});
  ASSERT_EQ(fs.size(), 1u) << report_text(fs, {});
  EXPECT_EQ(fs[0].rule, "lock-order-graph");
  // The finding prints the cycle and a witness for every edge on it.
  EXPECT_NE(fs[0].message.find("Alpha::mu_"), std::string::npos)
      << fs[0].message;
  EXPECT_NE(fs[0].message.find("Beta::mu_"), std::string::npos);
  EXPECT_NE(fs[0].message.find("witness"), std::string::npos);
  EXPECT_NE(fs[0].message.find("alpha.cpp"), std::string::npos);
  EXPECT_NE(fs[0].message.find("beta.cpp"), std::string::npos);
}

TEST(LockOrderGraph, ConsistentOrderIsClean) {
  // Same two mutexes, both TUs take Alpha before Beta: no cycle.
  const char* consistent =
      "#include <mutex>\n"
      "extern Alpha alpha;\n"
      "extern Beta beta;\n"
      "void also_forward() {\n"
      "  std::lock_guard<std::mutex> g(alpha.mu_);\n"
      "  std::lock_guard<std::mutex> h(beta.mu_);\n"
      "}\n";
  EXPECT_TRUE(lint_project({{"src/pipeline/alpha.cpp", kAlphaCpp},
                            {"src/serve/other.cpp", consistent}})
                  .empty());
}

TEST(BlockingUnderLock, TransitiveThroughTwoCalls) {
  // deep() holds Store::mu_ and calls mid() -> leaf() -> sleep_for: the
  // blocking call is two hops away and in another TU.
  const char* store_hot =
      "#include <mutex>\n"
      "class Store {\n"
      " public:\n"
      "  void deep();\n"
      "  void mid();\n"
      "  void leaf();\n"
      "  std::mutex mu_;\n"
      "};\n"
      "void Store::deep() {\n"
      "  std::lock_guard<std::mutex> g(mu_);\n"
      "  mid();\n"
      "}\n";
  const char* store_cold =
      "#include <chrono>\n"
      "#include <thread>\n"
      "void Store::mid() { leaf(); }\n"
      "void Store::leaf() {\n"
      "  std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
      "}\n";
  const auto fs = lint_project({{"src/embed/store_hot.cpp", store_hot},
                                {"src/embed/store_cold.cpp", store_cold}});
  ASSERT_EQ(fs.size(), 1u) << report_text(fs, {});
  EXPECT_EQ(fs[0].rule, "blocking-under-lock");
  EXPECT_NE(fs[0].message.find("sleep_for"), std::string::npos)
      << fs[0].message;
  EXPECT_NE(fs[0].message.find("Store::mu_"), std::string::npos);
  EXPECT_NE(fs[0].message.find("mid"), std::string::npos);  // call chain
  // Moving the call after the guard scope closes fixes it.
  const char* fixed =
      "#include <mutex>\n"
      "class Store {\n"
      " public:\n"
      "  void deep();\n"
      "  void mid();\n"
      "  void leaf();\n"
      "  std::mutex mu_;\n"
      "};\n"
      "void Store::deep() {\n"
      "  { std::lock_guard<std::mutex> g(mu_); }\n"
      "  mid();\n"
      "}\n";
  EXPECT_TRUE(lint_project({{"src/embed/store_hot.cpp", fixed},
                            {"src/embed/store_cold.cpp", store_cold}})
                  .empty());
}

TEST(LayeringDag, BackwardIncludeEdgeFails) {
  // common is the bottom layer; including pipeline from it inverts the DAG.
  const auto fs = lint_project(
      {{"src/common/util.hpp",
        "#pragma once\n#include \"pipeline/pipeline_trainer.hpp\"\n"}});
  ASSERT_EQ(fs.size(), 1u) << report_text(fs, {});
  EXPECT_EQ(fs[0].rule, "layering-dag");
  EXPECT_EQ(fs[0].path, "src/common/util.hpp");
  EXPECT_EQ(fs[0].line, 2u);
  // The forward direction is the sanctioned one.
  EXPECT_TRUE(lint_project({{"src/pipeline/x.cpp",
                             "#include \"common/util.hpp\"\n"}})
                  .empty());
}

TEST(LayeringDag, UnknownSubsystemIsLoud) {
  const auto fs = lint_project(
      {{"src/mystery/a.cpp", "#include \"common/util.hpp\"\nint x;\n"}});
  ASSERT_EQ(fs.size(), 1u) << report_text(fs, {});
  EXPECT_EQ(fs[0].rule, "layering-dag");
  EXPECT_NE(fs[0].message.find("layer_ranks"), std::string::npos)
      << fs[0].message;
}

TEST(FaultSiteCoverage, PointsArmsAndDeadEntries) {
  LintContext ctx;
  ctx.fault_manifest_path = "tools/test_fault.manifest";
  ctx.fault_manifest = {{"pipe/f.cpp", "pipe.ok", 3},
                        {"pipe/f.cpp", "pipe.gone", 4}};
  const auto fs = lint_project(
      {{"src/pipe/f.cpp",
        "void f() {\n"
        "  ELREC_FAULT_POINT(\"pipe.ok\");\n"
        "  ELREC_FAULT_POINT(\"pipe.naked\");\n"
        "}\n"
        "void g(FaultSpec spec) {\n"
        "  FaultInjector::instance().arm(\"pipe.armed\", spec);\n"
        "}\n"}},
      ctx);
  ASSERT_EQ(fs.size(), 3u) << report_text(fs, {});
  for (const auto& f : fs) EXPECT_EQ(f.rule, "fault-site-coverage");
  // An unmanifested plant, an unmanifested armed site, and a dead entry
  // anchored at its own manifest line.
  bool naked = false, armed = false, dead = false;
  for (const auto& f : fs) {
    if (f.message.find("pipe.naked") != std::string::npos) naked = true;
    if (f.message.find("pipe.armed") != std::string::npos) armed = true;
    if (f.message.find("pipe.gone") != std::string::npos) {
      dead = true;
      EXPECT_EQ(f.path, "tools/test_fault.manifest");
      EXPECT_EQ(f.line, 4u);
    }
  }
  EXPECT_TRUE(naked && armed && dead) << report_text(fs, {});
  // With no manifest configured the rule idles rather than spamming.
  EXPECT_TRUE(lint_project({{"src/pipe/f.cpp",
                             "void f() { ELREC_FAULT_POINT(\"pipe.x\"); }\n"}})
                  .empty());
}

TEST(ProjectRules, NolintSuppressesAtTheAnchorLine) {
  const auto fs = lint_project(
      {{"src/common/util.hpp",
        "#pragma once\n"
        "// NOLINTNEXTLINE(elrec-layering-dag): fixture exercises suppression\n"
        "#include \"pipeline/pipeline_trainer.hpp\"\n"}});
  EXPECT_TRUE(fs.empty()) << report_text(fs, {});
}

// --------------------------------------------------- symbol index ----

TEST(ProjectIndexFacts, ExtractsDeclsGuardsCallsAndIncludes) {
  const SourceFile file = SourceFile::from_source(
      "src/embed/cache.cpp",
      "#include \"common/log.hpp\"\n"
      "#include <mutex>\n"
      "class Cache {\n"
      " public:\n"
      "  void put();\n"
      "  std::mutex mu_;\n"
      "};\n"
      "void Cache::put() {\n"
      "  std::lock_guard<std::mutex> g(mu_);\n"
      "  evict();\n"
      "}\n");
  const FileFacts facts = extract_facts(file);
  EXPECT_TRUE(facts.library);
  ASSERT_EQ(facts.mutexes.size(), 1u);
  EXPECT_EQ(facts.mutexes[0].cls, "Cache");
  EXPECT_EQ(facts.mutexes[0].name, "mu_");
  // Quoted includes only: <mutex> is not a project edge.
  ASSERT_EQ(facts.includes.size(), 1u);
  EXPECT_EQ(facts.includes[0].header, "common/log.hpp");
  const FunctionFact* put = nullptr;
  for (const FunctionFact& fn : facts.functions) {
    if (fn.name == "put" && !fn.acquires.empty()) put = &fn;
  }
  ASSERT_NE(put, nullptr);
  EXPECT_EQ(put->cls, "Cache");
  EXPECT_EQ(put->acquires[0].lock.name, "mu_");
  // The call records the guard context it runs under.
  bool saw_evict_held = false;
  for (const CallSite& c : put->calls) {
    if (c.callee == "evict" && c.held.size() == 1) saw_evict_held = true;
  }
  EXPECT_TRUE(saw_evict_held);
}

TEST(ProjectIndexFacts, RoundTripThroughIndex) {
  auto file = std::make_shared<SourceFile>(SourceFile::from_source(
      "src/embed/cache.cpp",
      "#include <mutex>\n"
      "class Cache { public: std::mutex mu_; };\n"
      "void touch() { ELREC_FAULT_POINT(\"cache.touch\"); }\n"));
  ProjectIndex index;
  index.add(extract_facts(*file), file);
  index.finalize();
  ASSERT_EQ(index.files().size(), 1u);
  ASSERT_EQ(index.fault_points().size(), 1u);
  EXPECT_EQ(index.fault_points()[0].site, "cache.touch");
  EXPECT_EQ(index.source("src/embed/cache.cpp"), file.get());
  EXPECT_EQ(index.source("src/no/such.cpp"), nullptr);
  EXPECT_NE(index.stats().find("1 files"), std::string::npos)
      << index.stats();
}

TEST(ProjectIndexFacts, LockGraphDotIsStable) {
  auto scan = [](const char* path, const char* text) {
    return std::make_shared<SourceFile>(SourceFile::from_source(path, text));
  };
  ProjectIndex index;
  auto a = scan("src/pipeline/alpha.cpp", kAlphaCpp);
  auto b = scan("src/serve/beta.cpp", kBetaCpp);
  index.add(extract_facts(*a), a);
  index.add(extract_facts(*b), b);
  index.finalize();
  const std::string dot = index.lock_graph_dot();
  EXPECT_NE(dot.find("digraph lock_order"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"Alpha::mu_\" -> \"Beta::mu_\""), std::string::npos);
  EXPECT_NE(dot.find("\"Beta::mu_\" -> \"Alpha::mu_\""), std::string::npos);
  ASSERT_EQ(index.cycles().size(), 1u);
  EXPECT_EQ(index.cycles()[0].size(), 2u);  // two edges close the loop
}

// ------------------------------------------------- baseline & reports ----

Finding finding_fixture(std::string rule, std::string path, std::size_t line,
                        std::string snippet) {
  Finding f;
  f.rule = std::move(rule);
  f.path = std::move(path);
  f.line = line;
  f.col = 1;
  f.message = "msg";
  f.snippet = std::move(snippet);
  return f;
}

TEST(Baseline, RoundTripAndContentMatch) {
  const std::vector<Finding> fs = {
      finding_fixture("atomics-ordering", "src/a.cpp", 10, "v.fetch_add(1);"),
      finding_fixture("iostream-in-lib", "src/b.cpp", 3, "printf(\"x\");")};
  const Baseline b = Baseline::from_findings(fs);
  EXPECT_EQ(b.size(), 2u);

  const fs::path file = fs::path(testing::TempDir()) / "elrec_baseline.txt";
  {
    std::ofstream out(file);
    out << b.serialize();
  }
  const Baseline loaded = Baseline::load(file.string());
  EXPECT_EQ(loaded.size(), 2u);

  // Same rule/path/snippet on a different line still matches (content
  // identity, not position)...
  Finding moved = fs[0];
  moved.line = 99;
  EXPECT_TRUE(loaded.contains(moved));
  // ...but a different snippet or file does not.
  Finding edited = fs[0];
  edited.snippet = "v.fetch_add(2);";
  EXPECT_FALSE(loaded.contains(edited));

  const BaselineSplit split = apply_baseline(loaded, {moved, edited});
  EXPECT_EQ(split.baselined, 1u);
  ASSERT_EQ(split.fresh.size(), 1u);
  EXPECT_EQ(split.fresh[0].snippet, "v.fetch_add(2);");
  fs::remove(file);
}

TEST(Baseline, ReformattingTheLineDoesNotChurn) {
  // Interior whitespace runs collapse on both sides of the match, so
  // reindenting or re-aligning the offending line keeps its entry live.
  const Baseline b = Baseline::from_findings({finding_fixture(
      "atomics-ordering", "src/a.cpp", 5, "v.fetch_add(1);  // ctr")});
  Finding reformatted = finding_fixture("atomics-ordering", "src/a.cpp", 12,
                                        "\tv.fetch_add(1); // ctr");
  EXPECT_TRUE(b.contains(reformatted));
  // An actual edit to the code still misses.
  reformatted.snippet = "v.fetch_add(2); // ctr";
  EXPECT_FALSE(b.contains(reformatted));
}

TEST(Baseline, PruneDropsStaleEntriesOnly) {
  const std::vector<Finding> fs = {
      finding_fixture("determinism-rand", "src/a.cpp", 1, "rand();"),
      finding_fixture("iostream-in-lib", "src/b.cpp", 2, "printf(\"x\");")};
  const Baseline b = Baseline::from_findings(fs);
  const BaselinePrune pruned = b.retain_matching({fs[0]});
  EXPECT_EQ(pruned.removed, 1u);
  EXPECT_EQ(pruned.kept.size(), 1u);
  EXPECT_TRUE(pruned.kept.contains(fs[0]));
  EXPECT_FALSE(pruned.kept.contains(fs[1]));
}

TEST(Baseline, MissingFileIsEmptyAndMalformedThrows) {
  EXPECT_EQ(Baseline::load("/nonexistent/elrec.txt").size(), 0u);
  const fs::path file = fs::path(testing::TempDir()) / "elrec_bad_base.txt";
  {
    std::ofstream out(file);
    out << "just-one-field\n";
  }
  EXPECT_THROW(Baseline::load(file.string()), std::runtime_error);
  fs::remove(file);
}

TEST(Reporter, TextFormat) {
  LintSummary sum;
  sum.files_scanned = 2;
  sum.findings = 1;
  sum.suppressed = 3;
  const std::string text = report_text(
      {finding_fixture("determinism-rand", "src/a.cpp", 7, "rand();")}, sum);
  EXPECT_NE(text.find("src/a.cpp:7:1: [elrec-determinism-rand]"),
            std::string::npos);
  EXPECT_NE(text.find("1 finding(s) across 2 file(s)"), std::string::npos);
  EXPECT_NE(text.find("3 NOLINT-suppressed"), std::string::npos);
}

TEST(Reporter, JsonParsesAndCarriesFields) {
  LintSummary sum;
  sum.files_scanned = 1;
  sum.findings = 1;
  sum.baselined = 2;
  // Snippet with characters that must be escaped.
  const std::string json = report_json(
      {finding_fixture("iostream-in-lib", "src/a.cpp", 4,
                       "printf(\"tab\\there\");")},
      sum);
  obs::JsonValue doc;
  ASSERT_EQ(obs::parse_json(json, doc), "") << json;
  const obs::JsonValue* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is_array());
  ASSERT_EQ(findings->array.size(), 1u);
  EXPECT_EQ(findings->array[0].find("rule")->str, "elrec-iostream-in-lib");
  EXPECT_EQ(findings->array[0].find("line")->number, 4.0);
  const obs::JsonValue* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("baselined")->number, 2.0);
}

// ----------------------------------------------- registry and driver ----

TEST(Registry, BuiltinCatalogue) {
  const RuleRegistry r = RuleRegistry::with_builtin_rules();
  EXPECT_EQ(r.rules().size(), 8u);
  for (const char* name :
       {"determinism-rand", "nondeterministic-reduction", "atomics-ordering",
        "iostream-in-lib", "lock-discipline", "header-hygiene",
        "trace-span-coverage", "nolint-rationale"}) {
    EXPECT_NE(r.find(name), nullptr) << name;
    EXPECT_FALSE(r.find(name)->description().empty());
  }
  EXPECT_EQ(r.find("no-such-rule"), nullptr);
  // Cross-TU rules live in their own registry slot.
  EXPECT_EQ(r.project_rules().size(), 4u);
  for (const char* name : {"lock-order-graph", "blocking-under-lock",
                           "layering-dag", "fault-site-coverage"}) {
    EXPECT_NE(r.find_project(name), nullptr) << name;
    EXPECT_FALSE(r.find_project(name)->description().empty());
  }
  EXPECT_EQ(r.find_project("determinism-rand"), nullptr);
}

TEST(Registry, OnlyFilterRestrictsRules) {
  const RuleRegistry r = RuleRegistry::with_builtin_rules();
  const SourceFile file = SourceFile::from_source(
      "src/x.cpp", "int a = rand();\nvolatile int b;\n");
  EXPECT_EQ(r.run(file, {}).size(), 2u);
  const auto only = r.run(file, {}, {"atomics-ordering"});
  ASSERT_EQ(only.size(), 1u);
  EXPECT_EQ(only[0].rule, "atomics-ordering");
}

class DriverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(testing::TempDir()) /
            ("elrec_lint_" + std::to_string(::getpid()));
    fs::create_directories(root_ / "src");
    fs::create_directories(root_ / "build-something" / "src");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& rel, const std::string& content) {
    std::ofstream out(root_ / rel);
    out << content;
  }

  fs::path root_;
};

TEST_F(DriverFixture, EndToEndWithNolintAndBaseline) {
  write("src/bad.cpp",
        "int a = rand();\n"
        "int b = rand();  // NOLINT(elrec-determinism-rand): test fixture\n"
        "volatile int c;\n");
  // Generated/build trees must never be walked.
  write("build-something/src/worse.cpp", "int z = rand();\n");

  const RuleRegistry registry = RuleRegistry::with_builtin_rules();
  LintOptions opt;
  opt.paths = {(root_ / "src").string()};

  // First pass: the NOLINT line is suppressed, two findings remain.
  LintResult r1 = run_lint(registry, opt);
  EXPECT_EQ(r1.summary.files_scanned, 1u);
  EXPECT_EQ(r1.summary.suppressed, 1u);
  ASSERT_EQ(r1.fresh.size(), 2u);

  // Baseline the volatile finding only; the rand() stays fresh.
  const fs::path base = root_ / "baseline.txt";
  {
    std::ofstream out(base);
    out << Baseline::from_findings({r1.fresh[1]}).serialize();
  }
  opt.baseline_path = base.string();
  LintResult r2 = run_lint(registry, opt);
  EXPECT_EQ(r2.summary.baselined, 1u);
  ASSERT_EQ(r2.fresh.size(), 1u);
  EXPECT_EQ(r2.fresh[0].rule, "determinism-rand");
  EXPECT_EQ(r2.fresh[0].line, 1u);
}

TEST_F(DriverFixture, ParallelScanIsBitwiseDeterministic) {
  // Enough files that a 4-thread pool genuinely interleaves; each file
  // carries distinct findings so any ordering slip shows in the report.
  for (int i = 0; i < 12; ++i) {
    write("src/f" + std::to_string(i) + ".cpp",
          "int a" + std::to_string(i) + " = rand();\n"
          "volatile int b" + std::to_string(i) + ";\n");
  }
  const RuleRegistry registry = RuleRegistry::with_builtin_rules();
  LintOptions opt;
  opt.paths = {(root_ / "src").string()};
  opt.jobs = 1;
  const LintResult serial = run_lint(registry, opt);
  EXPECT_EQ(serial.fresh.size(), 24u);
  const std::string expected = report_text(serial.fresh, serial.summary);
  for (std::size_t jobs : {2u, 4u, 7u}) {
    opt.jobs = jobs;
    const LintResult parallel = run_lint(registry, opt);
    EXPECT_EQ(report_text(parallel.fresh, parallel.summary), expected)
        << "jobs=" << jobs;
  }
}

TEST_F(DriverFixture, CollectSourcesFiltersAndSorts) {
  write("src/a.cpp", "int x;\n");
  write("src/z.hpp", "#pragma once\n");
  write("src/notes.md", "not code\n");
  const auto files = collect_sources({root_.string()});
  ASSERT_EQ(files.size(), 2u);
  EXPECT_TRUE(files[0].ends_with("src/a.cpp"));
  EXPECT_TRUE(files[1].ends_with("src/z.hpp"));
  EXPECT_THROW(collect_sources({(root_ / "missing").string()}),
               std::runtime_error);
}

TEST_F(DriverFixture, TraceManifestParsing) {
  write("spans.manifest",
        "# comment line\n"
        "\n"
        "core/eff_tt_table.cpp forward   # trailing comment\n"
        "serve/request_scheduler.cpp worker_loop\n");
  const auto reqs = load_trace_manifest((root_ / "spans.manifest").string());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].file_suffix, "core/eff_tt_table.cpp");
  EXPECT_EQ(reqs[0].function, "forward");

  write("bad.manifest", "only-one-field\n");
  EXPECT_THROW(load_trace_manifest((root_ / "bad.manifest").string()),
               std::runtime_error);
  EXPECT_THROW(load_trace_manifest((root_ / "absent.manifest").string()),
               std::runtime_error);
}

TEST_F(DriverFixture, FaultManifestParsingKeepsLineNumbers) {
  write("faults.manifest",
        "# plants\n"
        "shard_server.cpp shard.crash\n"
        "\n"
        "online_trainer.cpp online.checkpoint  # drill\n");
  const auto reqs = load_fault_manifest((root_ / "faults.manifest").string());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].file_suffix, "shard_server.cpp");
  EXPECT_EQ(reqs[0].site, "shard.crash");
  EXPECT_EQ(reqs[0].line, 2u);  // dead-entry findings anchor here
  EXPECT_EQ(reqs[1].line, 4u);
}

}  // namespace
}  // namespace elrec::analyze
