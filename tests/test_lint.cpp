// elrec-lint suite: lexer, every shipped rule (positive hit + NOLINT
// suppression), baseline filtering, registry/reporter round-trips, and the
// end-to-end driver on a temp tree. Runs under the `lint` ctest label.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyze/driver.hpp"
#include "analyze/lexer.hpp"
#include "obs/json.hpp"

namespace elrec::analyze {
namespace {

namespace fs = std::filesystem;

// Mirrors the driver's per-file pass: run rules, drop NOLINT-suppressed.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& source,
                                 const LintContext& ctx = {}) {
  static const RuleRegistry registry = RuleRegistry::with_builtin_rules();
  const SourceFile file = SourceFile::from_source(path, source);
  std::vector<Finding> kept;
  for (Finding& f : registry.run(file, ctx)) {
    if (!file.suppressed(f.rule, f.line)) kept.push_back(std::move(f));
  }
  return kept;
}

std::vector<std::string> rules_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  for (const auto& f : fs) out.push_back(f.rule);
  return out;
}

// ------------------------------------------------------------- lexer ----

TEST(Lexer, TokenKindsAndPositions) {
  const TokenStream ts = lex("int x = 42;\nfoo->bar(1'000, \"s\");");
  ASSERT_GE(ts.size(), 12u);
  EXPECT_EQ(ts[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(ts[0].text, "int");
  EXPECT_EQ(ts[0].line, 1u);
  EXPECT_EQ(ts[0].col, 1u);
  EXPECT_EQ(ts[3].kind, TokenKind::kNumber);
  EXPECT_EQ(ts[3].text, "42");
  // `->` stays one token; the digit separator stays inside the number.
  EXPECT_EQ(ts[6].text, "->");
  EXPECT_EQ(ts[6].line, 2u);
  bool found_number = false, found_string = false;
  for (const Token& t : ts) {
    if (t.text == "1'000") found_number = (t.kind == TokenKind::kNumber);
    if (t.text == "\"s\"") found_string = (t.kind == TokenKind::kString);
  }
  EXPECT_TRUE(found_number);
  EXPECT_TRUE(found_string);
}

TEST(Lexer, LiteralsAndCommentsAreOpaque) {
  // rand() inside strings, raw strings, chars and comments must not
  // surface as identifier tokens.
  const std::string src =
      "const char* a = \"rand()\";\n"
      "const char* b = R\"x(srand(1))x\";\n"
      "char c = 'r'; // rand() here\n"
      "/* srand(2) */\n";
  for (const Token& t : lex(src)) {
    EXPECT_NE(t.kind, TokenKind::kNumber) << t.text;
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "rand");
      EXPECT_NE(t.text, "srand");
    }
  }
  EXPECT_TRUE(lint_source("src/x.cpp", src).empty());
}

TEST(Lexer, PreprocessorContinuationIsOneToken) {
  const TokenStream ts = lex("#pragma omp parallel for \\\n  reduction(+ : s)\nint x;");
  ASSERT_FALSE(ts.empty());
  EXPECT_EQ(ts[0].kind, TokenKind::kPpDirective);
  EXPECT_NE(ts[0].text.find("reduction"), std::string::npos);
  // `int` after the continuation is normal code again.
  EXPECT_EQ(ts[1].text, "int");
}

// -------------------------------------------------------------- rules ----

TEST(DeterminismRand, FlagsLibcRngAndRandomDevice) {
  const auto fs = lint_source("src/x.cpp",
                              "int a = rand();\n"
                              "std::random_device rd;\n"
                              "srand(42);\n");
  EXPECT_EQ(fs.size(), 3u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "determinism-rand");
  EXPECT_EQ(fs[0].line, 1u);
}

TEST(DeterminismRand, MemberAccessAndOtherScopesExempt) {
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "int a = prng.rand_r(s);\n"
                          "int b = gen->rand();\n"
                          "int c = MyGen::rand_r(s);\n"
                          "int rand = 3;  // not a call\n")
                  .empty());
}

TEST(DeterminismRand, NolintSuppresses) {
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "int a = rand();  // NOLINT(elrec-determinism-rand)\n")
                  .empty());
  // A bare NOLINT also suppresses; a mismatched tag does not.
  EXPECT_TRUE(lint_source("src/x.cpp", "int a = rand();  // NOLINT\n").empty());
  EXPECT_EQ(lint_source("src/x.cpp",
                        "int a = rand();  // NOLINT(elrec-header-hygiene)\n")
                .size(),
            1u);
}

TEST(NondeterministicReduction, FlagsParallelFloatShapesOnly) {
  EXPECT_EQ(rules_of(lint_source(
                "src/x.cpp",
                "#pragma omp parallel for reduction(+ : acc)\n"
                "for (int i = 0; i < n; ++i) acc += v[i];\n")),
            std::vector<std::string>{"nondeterministic-reduction"});
  EXPECT_EQ(lint_source("src/x.cpp", "#pragma omp atomic\nx += y;\n").size(),
            1u);
  // Single-thread SIMD reductions have a fixed lane order: deterministic.
  EXPECT_TRUE(
      lint_source("src/x.cpp", "#pragma omp simd reduction(+ : acc)\n")
          .empty());
  // min/max are exact in FP regardless of order.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "#pragma omp parallel for reduction(max : m)\n")
                  .empty());
}

TEST(NondeterministicReduction, NolintNextlineOnPragma) {
  EXPECT_TRUE(lint_source(
                  "src/x.cpp",
                  "// NOLINTNEXTLINE(elrec-nondeterministic-reduction)\n"
                  "#pragma omp parallel for reduction(+ : count)\n")
                  .empty());
}

TEST(AtomicsOrdering, FlagsDefaultSeqCstRmwAndVolatile) {
  const auto fs = lint_source("src/x.cpp",
                              "v.fetch_add(1);\n"
                              "volatile int flag;\n"
                              "w.store(1, std::memory_order_seq_cst);\n");
  EXPECT_EQ(fs.size(), 3u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "atomics-ordering");
}

TEST(AtomicsOrdering, ExplicitOrderOk) {
  // Including when the order argument lands on a continuation line.
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "v.fetch_add(1, std::memory_order_relaxed);\n"
                          "w.exchange(true,\n"
                          "           std::memory_order_acq_rel);\n"
                          "x.load();  // load() alone carries no RMW fence\n")
                  .empty());
}

TEST(IostreamInLib, LibraryOnly) {
  const std::string src = "void f() { printf(\"x\"); std::cerr << 1; }\n";
  EXPECT_EQ(lint_source("src/foo/bar.cpp", src).size(), 2u);
  // Same content outside library code is fine.
  EXPECT_TRUE(lint_source("tools/bar.cpp", src).empty());
  EXPECT_TRUE(lint_source("bench/bar.cpp", src).empty());
  EXPECT_TRUE(lint_source("tests/bar.cpp", src).empty());
  // Buffer formatting is not I/O.
  EXPECT_TRUE(
      lint_source("src/x.cpp", "void f() { snprintf(b, 8, \"x\"); }\n")
          .empty());
}

TEST(LockDiscipline, FlagsManualLockOnMutexNames) {
  const auto fs = lint_source("src/x.cpp",
                              "std::mutex mu_;\n"
                              "void f() { mu_.lock(); mu_.unlock(); }\n");
  EXPECT_EQ(fs.size(), 2u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "lock-discipline");
  // Declaration pass catches mutexes with unconventional names too.
  EXPECT_EQ(lint_source("src/x.cpp",
                        "std::shared_mutex table_guard;\n"
                        "void f() { table_guard.lock_shared(); }\n")
                .size(),
            1u);
}

TEST(LockDiscipline, RaiiGuardsOk) {
  EXPECT_TRUE(lint_source("src/x.cpp",
                          "std::mutex mu_;\n"
                          "void f() {\n"
                          "  std::unique_lock lock(mu_);\n"
                          "  lock.unlock();  // guard method, not the mutex\n"
                          "  std::lock_guard g(mu_);\n"
                          "}\n")
                  .empty());
}

TEST(HeaderHygiene, PragmaOnceAndUsingNamespace) {
  EXPECT_EQ(rules_of(lint_source("src/a.hpp", "int f();\n")),
            std::vector<std::string>{"header-hygiene"});
  EXPECT_EQ(lint_source("src/a.hpp",
                        "#pragma once\nusing namespace std;\n")
                .size(),
            1u);
  EXPECT_TRUE(lint_source("src/a.hpp", "#pragma once\nint f();\n").empty());
  // .cpp files may use-namespace locally and need no pragma.
  EXPECT_TRUE(lint_source("src/a.cpp", "using namespace std;\n").empty());
}

TEST(TraceSpanCoverage, ManifestDrivenHits) {
  LintContext ctx;
  ctx.trace_manifest = {{"hot.cpp", "run"}};
  // Covered: definition contains TRACE_SPAN.
  EXPECT_TRUE(lint_source("src/hot.cpp",
                          "void Foo::run(int n) {\n"
                          "  TRACE_SPAN(\"foo.run\");\n"
                          "}\n",
                          ctx)
                  .empty());
  // Uncovered definition is a finding at the definition line.
  const auto missing = lint_source("src/hot.cpp",
                                   "void Foo::run(int n) { work(n); }\n", ctx);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].rule, "trace-span-coverage");
  EXPECT_EQ(missing[0].line, 1u);
  // A call site is not a definition: the manifest entry must fail loudly.
  const auto drift =
      lint_source("src/hot.cpp", "void g() { if (run(3)) { stop(); } }\n", ctx);
  ASSERT_EQ(drift.size(), 1u);
  EXPECT_NE(drift[0].message.find("no definition"), std::string::npos);
  // Files not named by the manifest are untouched.
  EXPECT_TRUE(lint_source("src/cold.cpp", "void run(int) {}\n", ctx).empty());
}

// ------------------------------------------------- baseline & reports ----

Finding finding_fixture(std::string rule, std::string path, std::size_t line,
                        std::string snippet) {
  Finding f;
  f.rule = std::move(rule);
  f.path = std::move(path);
  f.line = line;
  f.col = 1;
  f.message = "msg";
  f.snippet = std::move(snippet);
  return f;
}

TEST(Baseline, RoundTripAndContentMatch) {
  const std::vector<Finding> fs = {
      finding_fixture("atomics-ordering", "src/a.cpp", 10, "v.fetch_add(1);"),
      finding_fixture("iostream-in-lib", "src/b.cpp", 3, "printf(\"x\");")};
  const Baseline b = Baseline::from_findings(fs);
  EXPECT_EQ(b.size(), 2u);

  const fs::path file = fs::path(testing::TempDir()) / "elrec_baseline.txt";
  {
    std::ofstream out(file);
    out << b.serialize();
  }
  const Baseline loaded = Baseline::load(file.string());
  EXPECT_EQ(loaded.size(), 2u);

  // Same rule/path/snippet on a different line still matches (content
  // identity, not position)...
  Finding moved = fs[0];
  moved.line = 99;
  EXPECT_TRUE(loaded.contains(moved));
  // ...but a different snippet or file does not.
  Finding edited = fs[0];
  edited.snippet = "v.fetch_add(2);";
  EXPECT_FALSE(loaded.contains(edited));

  const BaselineSplit split = apply_baseline(loaded, {moved, edited});
  EXPECT_EQ(split.baselined, 1u);
  ASSERT_EQ(split.fresh.size(), 1u);
  EXPECT_EQ(split.fresh[0].snippet, "v.fetch_add(2);");
  fs::remove(file);
}

TEST(Baseline, MissingFileIsEmptyAndMalformedThrows) {
  EXPECT_EQ(Baseline::load("/nonexistent/elrec.txt").size(), 0u);
  const fs::path file = fs::path(testing::TempDir()) / "elrec_bad_base.txt";
  {
    std::ofstream out(file);
    out << "just-one-field\n";
  }
  EXPECT_THROW(Baseline::load(file.string()), std::runtime_error);
  fs::remove(file);
}

TEST(Reporter, TextFormat) {
  LintSummary sum;
  sum.files_scanned = 2;
  sum.findings = 1;
  sum.suppressed = 3;
  const std::string text = report_text(
      {finding_fixture("determinism-rand", "src/a.cpp", 7, "rand();")}, sum);
  EXPECT_NE(text.find("src/a.cpp:7:1: [elrec-determinism-rand]"),
            std::string::npos);
  EXPECT_NE(text.find("1 finding(s) across 2 file(s)"), std::string::npos);
  EXPECT_NE(text.find("3 NOLINT-suppressed"), std::string::npos);
}

TEST(Reporter, JsonParsesAndCarriesFields) {
  LintSummary sum;
  sum.files_scanned = 1;
  sum.findings = 1;
  sum.baselined = 2;
  // Snippet with characters that must be escaped.
  const std::string json = report_json(
      {finding_fixture("iostream-in-lib", "src/a.cpp", 4,
                       "printf(\"tab\\there\");")},
      sum);
  obs::JsonValue doc;
  ASSERT_EQ(obs::parse_json(json, doc), "") << json;
  const obs::JsonValue* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_TRUE(findings->is_array());
  ASSERT_EQ(findings->array.size(), 1u);
  EXPECT_EQ(findings->array[0].find("rule")->str, "elrec-iostream-in-lib");
  EXPECT_EQ(findings->array[0].find("line")->number, 4.0);
  const obs::JsonValue* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->find("baselined")->number, 2.0);
}

// ----------------------------------------------- registry and driver ----

TEST(Registry, BuiltinCatalogue) {
  const RuleRegistry r = RuleRegistry::with_builtin_rules();
  EXPECT_EQ(r.rules().size(), 7u);
  for (const char* name :
       {"determinism-rand", "nondeterministic-reduction", "atomics-ordering",
        "iostream-in-lib", "lock-discipline", "header-hygiene",
        "trace-span-coverage"}) {
    EXPECT_NE(r.find(name), nullptr) << name;
    EXPECT_FALSE(r.find(name)->description().empty());
  }
  EXPECT_EQ(r.find("no-such-rule"), nullptr);
}

TEST(Registry, OnlyFilterRestrictsRules) {
  const RuleRegistry r = RuleRegistry::with_builtin_rules();
  const SourceFile file = SourceFile::from_source(
      "src/x.cpp", "int a = rand();\nvolatile int b;\n");
  EXPECT_EQ(r.run(file, {}).size(), 2u);
  const auto only = r.run(file, {}, {"atomics-ordering"});
  ASSERT_EQ(only.size(), 1u);
  EXPECT_EQ(only[0].rule, "atomics-ordering");
}

class DriverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(testing::TempDir()) /
            ("elrec_lint_" + std::to_string(::getpid()));
    fs::create_directories(root_ / "src");
    fs::create_directories(root_ / "build-something" / "src");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& rel, const std::string& content) {
    std::ofstream out(root_ / rel);
    out << content;
  }

  fs::path root_;
};

TEST_F(DriverFixture, EndToEndWithNolintAndBaseline) {
  write("src/bad.cpp",
        "int a = rand();\n"
        "int b = rand();  // NOLINT(elrec-determinism-rand): test fixture\n"
        "volatile int c;\n");
  // Generated/build trees must never be walked.
  write("build-something/src/worse.cpp", "int z = rand();\n");

  const RuleRegistry registry = RuleRegistry::with_builtin_rules();
  LintOptions opt;
  opt.paths = {(root_ / "src").string()};

  // First pass: the NOLINT line is suppressed, two findings remain.
  LintResult r1 = run_lint(registry, opt);
  EXPECT_EQ(r1.summary.files_scanned, 1u);
  EXPECT_EQ(r1.summary.suppressed, 1u);
  ASSERT_EQ(r1.fresh.size(), 2u);

  // Baseline the volatile finding only; the rand() stays fresh.
  const fs::path base = root_ / "baseline.txt";
  {
    std::ofstream out(base);
    out << Baseline::from_findings({r1.fresh[1]}).serialize();
  }
  opt.baseline_path = base.string();
  LintResult r2 = run_lint(registry, opt);
  EXPECT_EQ(r2.summary.baselined, 1u);
  ASSERT_EQ(r2.fresh.size(), 1u);
  EXPECT_EQ(r2.fresh[0].rule, "determinism-rand");
  EXPECT_EQ(r2.fresh[0].line, 1u);
}

TEST_F(DriverFixture, CollectSourcesFiltersAndSorts) {
  write("src/a.cpp", "int x;\n");
  write("src/z.hpp", "#pragma once\n");
  write("src/notes.md", "not code\n");
  const auto files = collect_sources({root_.string()});
  ASSERT_EQ(files.size(), 2u);
  EXPECT_TRUE(files[0].ends_with("src/a.cpp"));
  EXPECT_TRUE(files[1].ends_with("src/z.hpp"));
  EXPECT_THROW(collect_sources({(root_ / "missing").string()}),
               std::runtime_error);
}

TEST_F(DriverFixture, TraceManifestParsing) {
  write("spans.manifest",
        "# comment line\n"
        "\n"
        "core/eff_tt_table.cpp forward   # trailing comment\n"
        "serve/request_scheduler.cpp worker_loop\n");
  const auto reqs = load_trace_manifest((root_ / "spans.manifest").string());
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].file_suffix, "core/eff_tt_table.cpp");
  EXPECT_EQ(reqs[0].function, "forward");

  write("bad.manifest", "only-one-field\n");
  EXPECT_THROW(load_trace_manifest((root_ / "bad.manifest").string()),
               std::runtime_error);
  EXPECT_THROW(load_trace_manifest((root_ / "absent.manifest").string()),
               std::runtime_error);
}

}  // namespace
}  // namespace elrec::analyze
