// Tests for the one-sided Jacobi SVD: reconstruction, orthogonality,
// ordering, truncation error bounds — on tall, wide, and square inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/svd.hpp"

namespace elrec {
namespace {

Matrix reconstruct(const SvdResult& f) {
  Matrix us(f.u.rows(), f.u.cols());
  for (index_t i = 0; i < f.u.rows(); ++i) {
    for (index_t j = 0; j < f.u.cols(); ++j) {
      us.at(i, j) = f.u.at(i, j) * f.sigma[static_cast<std::size_t>(j)];
    }
  }
  Matrix rec;
  matmul(us, f.vt, rec);
  return rec;
}

double orthogonality_error(const Matrix& q) {
  // || Q^T Q - I ||_max over columns.
  Matrix gram;
  matmul(q, q, gram, Trans::kYes, Trans::kNo);
  double err = 0.0;
  for (index_t i = 0; i < gram.rows(); ++i) {
    for (index_t j = 0; j < gram.cols(); ++j) {
      const double target = i == j ? 1.0 : 0.0;
      err = std::max(err, std::fabs(gram.at(i, j) - target));
    }
  }
  return err;
}

class SvdShapeTest : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(SvdShapeTest, ReconstructsInput) {
  const auto [m, n] = GetParam();
  Prng rng(321);
  Matrix a(m, n);
  a.fill_normal(rng);
  const SvdResult f = svd(a);
  const Matrix rec = reconstruct(f);
  EXPECT_LT(Matrix::max_abs_diff(a, rec), 1e-3f);
}

TEST_P(SvdShapeTest, FactorsAreOrthonormal) {
  const auto [m, n] = GetParam();
  Prng rng(654);
  Matrix a(m, n);
  a.fill_normal(rng);
  const SvdResult f = svd(a);
  EXPECT_LT(orthogonality_error(f.u), 1e-3);
  // vt rows orthonormal == (vt^T) columns orthonormal.
  Matrix v(f.vt.cols(), f.vt.rows());
  for (index_t i = 0; i < f.vt.rows(); ++i) {
    for (index_t j = 0; j < f.vt.cols(); ++j) v.at(j, i) = f.vt.at(i, j);
  }
  EXPECT_LT(orthogonality_error(v), 1e-3);
}

TEST_P(SvdShapeTest, SingularValuesDescendingNonNegative) {
  const auto [m, n] = GetParam();
  Prng rng(987);
  Matrix a(m, n);
  a.fill_normal(rng);
  const SvdResult f = svd(a);
  for (std::size_t i = 0; i + 1 < f.sigma.size(); ++i) {
    EXPECT_GE(f.sigma[i], f.sigma[i + 1]);
  }
  EXPECT_GE(f.sigma.back(), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::make_pair<index_t, index_t>(8, 8),
                                           std::make_pair<index_t, index_t>(20, 6),
                                           std::make_pair<index_t, index_t>(6, 20),
                                           std::make_pair<index_t, index_t>(1, 5),
                                           std::make_pair<index_t, index_t>(5, 1),
                                           std::make_pair<index_t, index_t>(50, 30)));

TEST(Svd, ExactOnRankDeficientMatrix) {
  // Rank-2 matrix: outer products.
  Prng rng(11);
  Matrix u(10, 2), v(2, 8);
  u.fill_normal(rng);
  v.fill_normal(rng);
  Matrix a;
  matmul(u, v, a);
  const SvdResult f = svd(a);
  // Only two non-negligible singular values.
  for (std::size_t i = 2; i < f.sigma.size(); ++i) {
    EXPECT_LT(f.sigma[i], 1e-3f);
  }
  EXPECT_GT(f.sigma[1], 1e-2f);
}

TEST(Svd, TruncationErrorMatchesDroppedMass) {
  Prng rng(22);
  Matrix a(16, 12);
  a.fill_normal(rng);
  const SvdResult full = svd(a);
  const index_t keep = 5;
  const SvdResult trunc = svd_truncated(a, keep);
  ASSERT_EQ(static_cast<index_t>(trunc.sigma.size()), keep);

  const Matrix rec = reconstruct(trunc);
  double err_sq = 0.0;
  for (index_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - rec.data()[i];
    err_sq += d * d;
  }
  double dropped_sq = 0.0;
  for (std::size_t i = static_cast<std::size_t>(keep); i < full.sigma.size(); ++i) {
    dropped_sq += static_cast<double>(full.sigma[i]) * full.sigma[i];
  }
  // Eckart–Young: truncated-SVD error equals the dropped singular mass.
  EXPECT_NEAR(err_sq, dropped_sq, 1e-2 * (1.0 + dropped_sq));
}

TEST(Svd, CutoffDropsSmallValues) {
  Matrix a{{10.0f, 0.0f}, {0.0f, 1e-4f}};
  const SvdResult f = svd_truncated(a, 2, 1e-2);
  EXPECT_EQ(f.sigma.size(), 1u);
  EXPECT_NEAR(f.sigma[0], 10.0f, 1e-4f);
}

TEST(Svd, EmptyMatrixThrows) {
  Matrix a;
  EXPECT_THROW(svd(a), Error);
}

}  // namespace
}  // namespace elrec
