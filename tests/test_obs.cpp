// Observability-layer tests: metric primitive semantics, registry naming and
// snapshot isolation, per-thread trace rings (wraparound + drop counting),
// chrome://tracing export well-formedness, cross-thread exactness under an
// 8x10k stress, and the TRACE_SPAN overhead budget. Registered with the
// "sanitize" ctest label so the TSan build exercises the concurrent paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elrec::obs {
namespace {

// ---- metric primitives --------------------------------------------------

TEST(Counter, AddIncValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(c.load(), 42u);  // atomic-style alias
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, CountMeanMaxAreExact) {
  Histogram h;
  EXPECT_EQ(h.summary().count, 0u);
  h.record(2.0);
  h.record(4.0);
  h.record(12.0);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 6.0);
  EXPECT_DOUBLE_EQ(s.max, 12.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, PercentilesTrackUniformSamples) {
  // Uniform 1..1000: bucketed estimates must land within the log-bucket
  // error envelope (~1/kSubBuckets relative), and never exceed the max.
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GT(s.p50, 400.0);
  EXPECT_LT(s.p50, 620.0);
  EXPECT_GT(s.p95, 850.0);
  EXPECT_LE(s.p95, 1000.0);
  EXPECT_GE(s.p99, s.p95);
  EXPECT_GE(s.max, s.p99);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(Histogram, ExtremeSamplesStayFinite) {
  Histogram h;
  h.record(0.0);     // floor bucket
  h.record(-3.0);    // negative collapses into the floor bucket
  h.record(1e300);   // far above the top octave
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.max, 1e300);
  EXPECT_LE(s.p50, s.max);
}

// ---- registry -----------------------------------------------------------

TEST(MetricsRegistry, SameNameReturnsSameInstance) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test.obs.same_name");
  Counter& b = reg.counter("test.obs.same_name");
  EXPECT_EQ(&a, &b);
  Histogram& ha = reg.histogram("test.obs.same_hist");
  Histogram& hb = reg.histogram("test.obs.same_hist");
  EXPECT_EQ(&ha, &hb);
}

TEST(MetricsRegistry, KindCollisionThrows) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.obs.kind_clash");
  EXPECT_THROW(reg.gauge("test.obs.kind_clash"), Error);
  EXPECT_THROW(reg.histogram("test.obs.kind_clash"), Error);
}

TEST(MetricsRegistry, SnapshotIsIsolatedFromLaterUpdates) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.obs.snapshot_iso");
  c.reset();
  c.add(5);
  const MetricsSnapshot snap = reg.snapshot();
  c.add(100);  // must not alter the snapshot already taken
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "test.obs.snapshot_iso") {
      found = true;
      EXPECT_EQ(value, 5u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistry, SnapshotJsonParsesAndCarriesEveryKind) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.obs.json_counter").add(7);
  reg.gauge("test.obs.json_gauge").set(-3);
  reg.histogram("test.obs.json_hist").record(1.5);
  const std::string json = reg.snapshot().to_json();

  JsonValue doc;
  const std::string err = parse_json(json, doc);
  ASSERT_EQ(err, "") << json;
  ASSERT_TRUE(doc.is_object());
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->find("test.obs.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number, 7.0);
  const JsonValue* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* g = gauges->find("test.obs.json_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->number, -3.0);
  const JsonValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* h = hists->find("test.obs.json_hist");
  ASSERT_NE(h, nullptr);
  const JsonValue* count = h->find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_GE(count->number, 1.0);
}

// ---- trace ring ---------------------------------------------------------

TEST(ThreadTraceBuffer, WrapsOverwritingOldestAndCountsDrops) {
  ThreadTraceBuffer buf(7, /*capacity=*/4);
  static const char* kNames[6] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (std::uint64_t i = 0; i < 6; ++i) {
    buf.push(kNames[i], /*start_ns=*/100 + i, /*dur_ns=*/i);
  }
  EXPECT_EQ(buf.tid(), 7u);
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.size(), 4u);     // ring holds the newest window
  EXPECT_EQ(buf.dropped(), 2u);  // e0, e1 overwritten

  std::vector<std::string> seen;
  buf.for_each([&](const TraceEvent& e) { seen.emplace_back(e.name); });
  EXPECT_EQ(seen, (std::vector<std::string>{"e2", "e3", "e4", "e5"}));

  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(Trace, DisabledRecordsNothing) {
  set_trace_enabled(true);
  { TRACE_SPAN("test.obs.warm"); }  // ensure this thread's ring exists
  const TraceStats before = trace_stats();

  set_trace_enabled(false);
  EXPECT_FALSE(trace_enabled());
  for (int i = 0; i < 100; ++i) {
    TRACE_SPAN("test.obs.disabled");
  }
  const TraceStats after = trace_stats();
  EXPECT_EQ(after.events_retained, before.events_retained);
  EXPECT_EQ(after.events_dropped, before.events_dropped);
  set_trace_enabled(true);
}

TEST(Trace, ChromeExportValidatesAndIsSorted) {
#ifndef ELREC_TRACING_ENABLED
  GTEST_SKIP() << "built with -DELREC_TRACING=OFF (TRACE_SPAN compiled out)";
#endif
  set_trace_enabled(true);
  {
    TRACE_SPAN("test.obs.outer");
    TRACE_SPAN("test.obs.inner");
  }
  const std::string json = export_chrome_trace_json();
  EXPECT_EQ(validate_chrome_trace(json), "") << json.substr(0, 400);

  JsonValue doc;
  ASSERT_EQ(parse_json(json, doc), "");
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GE(events->array.size(), 2u);
  double prev_ts = -1.0;
  bool found_span = false;
  for (const JsonValue& e : events->array) {
    const double ts = e.find("ts")->number;
    EXPECT_GE(ts, prev_ts) << "export must be sorted by start time";
    prev_ts = ts;
    if (e.find("name")->str.rfind("test.obs.", 0) == 0) found_span = true;
  }
  EXPECT_TRUE(found_span);
  EXPECT_GE(events->array[0].find("ts")->number, 0.0);  // normalized to t0
}

TEST(Trace, ValidatorRejectsMalformedDocuments) {
  EXPECT_NE(validate_chrome_trace("not json"), "");
  EXPECT_NE(validate_chrome_trace("{}"), "");
  EXPECT_NE(validate_chrome_trace("{\"traceEvents\": 3}"), "");
  EXPECT_NE(validate_chrome_trace(
                "{\"traceEvents\": [{\"ph\": \"X\", \"ts\": 0, \"pid\": 0, "
                "\"tid\": 0, \"dur\": 1}]}"),  // missing name
            "");
  EXPECT_NE(validate_chrome_trace(
                "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", \"ts\": "
                "0, \"pid\": 0, \"tid\": 0, \"dur\": -1}]}"),  // negative dur
            "");
  EXPECT_EQ(validate_chrome_trace(
                "{\"traceEvents\": [{\"name\": \"a\", \"ph\": \"X\", \"ts\": "
                "0, \"pid\": 0, \"tid\": 0, \"dur\": 1}]}"),
            "");
}

// ---- concurrency stress -------------------------------------------------

TEST(ObsStress, EightThreadsTenThousandEventsEach) {
  constexpr int kThreads = 8;
  constexpr int kEvents = 10000;

  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.obs.stress_counter");
  Histogram& h = reg.histogram("test.obs.stress_hist");
  c.reset();
  h.reset();
  set_trace_enabled(true);
  const TraceStats before = trace_stats();

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kEvents; ++i) {
        TRACE_SPAN("test.obs.stress");
        c.inc();
        h.record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();

  // Counter and histogram totals are exact (relaxed atomics lose no counts).
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_EQ(h.count(), static_cast<std::size_t>(kThreads) * kEvents);

#ifdef ELREC_TRACING_ENABLED
  // Every span was either retained in some ring or counted as dropped.
  const TraceStats after = trace_stats();
  const std::uint64_t accounted =
      (after.events_retained + after.events_dropped) -
      (before.events_retained + before.events_dropped);
  EXPECT_EQ(accounted, static_cast<std::uint64_t>(kThreads) * kEvents);
  EXPECT_GE(after.threads, static_cast<std::size_t>(kThreads));
#else
  static_cast<void>(before);  // spans compiled out; metric totals still exact
#endif
}

// ---- overhead budget ----------------------------------------------------

#if defined(ELREC_UNDER_SANITIZER) || defined(__SANITIZE_THREAD__) || \
    defined(__SANITIZE_ADDRESS__)
// ELREC_UNDER_SANITIZER comes from -DELREC_SANITIZE=... (any mode): GCC
// has no UBSan predefine, so the build system is the only reliable signal.
#define ELREC_OBS_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ELREC_OBS_UNDER_SANITIZER 1
#endif
#endif

TEST(Trace, SpanOverheadWithinBudget) {
#if !defined(ELREC_TRACING_ENABLED)
  GTEST_SKIP() << "built with -DELREC_TRACING=OFF (TRACE_SPAN compiled out)";
#elif defined(ELREC_OBS_UNDER_SANITIZER)
  GTEST_SKIP() << "overhead budget not meaningful under a sanitizer";
#else
  set_trace_enabled(true);
  { TRACE_SPAN("test.obs.warmup"); }  // thread ring registration outside loop

  constexpr int kSpans = 200000;
  double best_ns = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSpans; ++i) {
      TRACE_SPAN("test.obs.overhead");
    }
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()) /
        kSpans;
    best_ns = std::min(best_ns, ns);
  }
  // DESIGN.md §8 budget: <= 100 ns per enabled span (two steady-clock reads
  // plus one ring push). Loose bound — shared CI machines, not a microbench.
  std::printf("[ MEASURED ] TRACE_SPAN enabled cost: %.1f ns/span\n", best_ns);
  EXPECT_LE(best_ns, 100.0) << "TRACE_SPAN cost " << best_ns << " ns/span";
#endif
}

}  // namespace
}  // namespace elrec::obs
