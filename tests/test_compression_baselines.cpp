// Tests for the compression-baseline tables the paper's related work
// discusses: feature hashing (collisions trade accuracy for memory) and
// row-wise int8 quantization (training loses sub-step gradients).
#include <gtest/gtest.h>

#include <cmath>

#include "embed/hashed_embedding_bag.hpp"
#include "embed/quantized_embedding_bag.hpp"

namespace elrec {
namespace {

TEST(HashedBag, CompressesParameterBytes) {
  Prng rng(1);
  HashedEmbeddingBag bag(10000, 100, 8, rng);
  EXPECT_EQ(bag.parameter_bytes(), 100u * 8u * sizeof(float));
  EXPECT_EQ(bag.num_rows(), 10000);
}

TEST(HashedBag, RejectsExpansion) {
  Prng rng(1);
  EXPECT_THROW(HashedEmbeddingBag(10, 20, 8, rng), Error);
}

TEST(HashedBag, HashIsDeterministicAndInRange) {
  Prng rng(2);
  HashedEmbeddingBag bag(100000, 128, 4, rng);
  for (index_t i = 0; i < 1000; i += 13) {
    const index_t h = bag.hash_index(i);
    EXPECT_GE(h, 0);
    EXPECT_LT(h, 128);
    EXPECT_EQ(h, bag.hash_index(i));
  }
}

TEST(HashedBag, CollidingIndicesShareARow) {
  Prng rng(3);
  HashedEmbeddingBag bag(100000, 16, 4, rng);
  // Find two logical indices hashing to the same physical row.
  index_t a = 0, b = -1;
  for (index_t i = 1; i < 10000; ++i) {
    if (bag.hash_index(i) == bag.hash_index(0)) {
      b = i;
      break;
    }
  }
  ASSERT_GE(b, 0) << "no collision found (implausible with 16 rows)";
  Matrix out;
  bag.forward(IndexBatch::one_per_sample({a, b}), out);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_EQ(out.at(0, j), out.at(1, j));  // the collision in action
  }
  // Updating one updates the other — the accuracy hazard of hashing.
  Matrix grad{{1.0f, 0.0f, 0.0f, 0.0f}};
  bag.backward_and_update(IndexBatch::one_per_sample({a}), grad, 0.5f);
  Matrix out2;
  bag.forward(IndexBatch::one_per_sample({b}), out2);
  EXPECT_NEAR(out2.at(0, 0), out.at(1, 0) - 0.5f, 1e-6f);
}

TEST(HashedBag, SpreadsIndicesRoughlyUniformly) {
  Prng rng(4);
  HashedEmbeddingBag bag(100000, 64, 4, rng);
  std::vector<int> counts(64, 0);
  for (index_t i = 0; i < 6400; ++i) ++counts[static_cast<std::size_t>(bag.hash_index(i))];
  for (int c : counts) {
    EXPECT_GT(c, 40);   // expected 100
    EXPECT_LT(c, 200);
  }
}

TEST(QuantizedBag, ParameterBytesAreQuarterPlusScales) {
  Prng rng(5);
  QuantizedEmbeddingBag bag(1000, 16, rng);
  EXPECT_EQ(bag.parameter_bytes(), 1000u * 16u + 1000u * sizeof(float));
}

TEST(QuantizedBag, DequantizationErrorBounded) {
  Prng rng(6);
  QuantizedEmbeddingBag bag(100, 8, rng, 0.1f);
  std::vector<float> row(8);
  for (index_t r = 0; r < 100; r += 7) {
    bag.dequantize_row(r, row);
    float max_abs = 0.0f;
    for (float v : row) max_abs = std::max(max_abs, std::fabs(v));
    // Quantization step = max_abs/127; every stored value is a multiple.
    for (float v : row) {
      const float step = max_abs / 127.0f;
      if (step > 0.0f) {
        const float ratio = v / step;
        EXPECT_NEAR(ratio, std::round(ratio), 1e-3f);
      }
    }
  }
}

TEST(QuantizedBag, ForwardSumsDequantizedRows) {
  Prng rng(7);
  QuantizedEmbeddingBag bag(50, 4, rng);
  std::vector<float> r1(4), r2(4);
  bag.dequantize_row(3, r1);
  bag.dequantize_row(9, r2);
  Matrix out;
  bag.forward(IndexBatch::from_bags({{3, 9}}), out);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.at(0, j),
                r1[static_cast<std::size_t>(j)] + r2[static_cast<std::size_t>(j)],
                1e-6f);
  }
}

TEST(QuantizedBag, LargeGradientsApply) {
  Prng rng(8);
  QuantizedEmbeddingBag bag(50, 4, rng, 0.1f);
  std::vector<float> before(4), after(4);
  bag.dequantize_row(5, before);
  Matrix grad{{1.0f, 1.0f, 1.0f, 1.0f}};
  bag.backward_and_update(IndexBatch::one_per_sample({5}), grad, 0.5f);
  bag.dequantize_row(5, after);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(after[static_cast<std::size_t>(j)],
                before[static_cast<std::size_t>(j)] - 0.5f, 0.05f);
  }
}

TEST(QuantizedBag, TinyGradientsAreLostToRounding) {
  // The paper's point about quantized training: updates below half a
  // quantization step are rounded away, so repeated small gradients make
  // almost no progress (an fp32 table would accumulate them faithfully).
  Prng rng(9);
  QuantizedEmbeddingBag bag(50, 4, rng, 0.1f);
  std::vector<float> before(4), after(4);
  bag.dequantize_row(5, before);
  // Nudge a component that is NOT the row max (the max pins the scale and
  // is always represented exactly, so it would absorb updates faithfully).
  index_t target = 0;
  float max_abs = 0.0f;
  for (index_t j = 0; j < 4; ++j) {
    max_abs = std::max(max_abs, std::fabs(before[static_cast<std::size_t>(j)]));
  }
  while (std::fabs(before[static_cast<std::size_t>(target)]) == max_abs) {
    ++target;
  }
  Matrix grad(1, 4);
  grad.at(0, target) = 1e-4f;
  const int applications = 200;
  for (int i = 0; i < applications; ++i) {
    bag.backward_and_update(IndexBatch::one_per_sample({5}), grad, 0.01f);
  }
  bag.dequantize_row(5, after);
  // Every sub-step update was rounded away; an fp32 table would have moved
  // by 2e-4 (200 * 0.01 * 1e-4).
  EXPECT_EQ(after[static_cast<std::size_t>(target)],
            before[static_cast<std::size_t>(target)]);
}

TEST(QuantizedBag, ParameterVisitationRejected) {
  Prng rng(10);
  QuantizedEmbeddingBag bag(10, 4, rng);
  EXPECT_THROW(bag.visit_parameters([](float*, std::size_t) {}), Error);
}

}  // namespace
}  // namespace elrec
