// Tests for the synthetic data substrate: Zipf skew (Fig. 4a property),
// dataset specs (Table II numbers), batch generation, label structure, and
// the unique-indices-per-batch gap (Fig. 4b property).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/dataset_spec.hpp"
#include "data/stats.hpp"
#include "data/synthetic.hpp"
#include "data/zipf.hpp"

namespace elrec {
namespace {

TEST(Zipf, SamplesInRange) {
  Prng rng(1);
  ZipfSampler z(100, 1.1, rng);
  Prng draw(2);
  for (int i = 0; i < 1000; ++i) {
    const index_t idx = z.sample(draw);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 100);
  }
}

TEST(Zipf, TopRanksDominate) {
  Prng rng(3);
  ZipfSampler z(100000, 1.1, rng);
  // Analytic mass of the top 1% must be large (power law).
  EXPECT_GT(z.top_rank_mass(1000), 0.5);
  // Empirical draws agree with the analytic mass.
  Prng draw(4);
  int hot_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (z.rank_of(z.sample(draw)) < 1000) ++hot_hits;
  }
  EXPECT_NEAR(static_cast<double>(hot_hits) / n, z.top_rank_mass(1000), 0.03);
}

TEST(Zipf, PermutationDetachesPopularityFromIndexOrder) {
  Prng rng(5);
  ZipfSampler z(1000, 1.1, rng);
  // rank_of / index_at_rank are inverse bijections.
  std::set<index_t> seen;
  for (index_t r = 0; r < 1000; ++r) {
    const index_t idx = z.index_at_rank(r);
    EXPECT_EQ(z.rank_of(idx), r);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 1000u);
  // The hottest item should (almost surely) not be item 0.
  int identity_hits = 0;
  for (index_t r = 0; r < 20; ++r) {
    if (z.index_at_rank(r) == r) ++identity_hits;
  }
  EXPECT_LT(identity_hits, 5);
}

TEST(Zipf, HigherExponentIsMoreSkewed) {
  Prng rng(6);
  ZipfSampler flat(10000, 0.5, rng);
  ZipfSampler steep(10000, 1.5, rng);
  EXPECT_GT(steep.top_rank_mass(100), flat.top_rank_mass(100));
}

TEST(DatasetSpec, PaperSpecsHaveExpectedShape) {
  const DatasetSpec kaggle = criteo_kaggle_spec();
  EXPECT_EQ(kaggle.num_tables(), 26);
  EXPECT_EQ(kaggle.num_dense, 13);
  const DatasetSpec tb = criteo_terabyte_spec();
  EXPECT_EQ(tb.num_tables(), 26);
  // Terabyte is the largest public DLRM dataset; its dense-embedding
  // footprint must exceed a 16 GB GPU at dim 64 (paper Table II: ~59 GB at
  // the paper's configuration).
  EXPECT_GT(tb.embedding_bytes(64), 16ULL << 30);
  const DatasetSpec avazu = avazu_spec();
  EXPECT_EQ(avazu.num_tables(), 20);
  EXPECT_EQ(avazu.num_dense, 1);
}

TEST(DatasetSpec, ScalingShrinksTables) {
  const DatasetSpec spec = criteo_kaggle_spec().scaled(1000);
  EXPECT_EQ(spec.num_tables(), 26);
  for (std::size_t t = 0; t < spec.table_rows.size(); ++t) {
    EXPECT_LE(spec.table_rows[t],
              std::max<index_t>(8, criteo_kaggle_spec().table_rows[t] / 1000));
  }
}

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.num_dense = 3;
  spec.table_rows = {500, 200, 1000};
  spec.num_samples = 10000;
  spec.zipf_s = 1.1;
  return spec;
}

TEST(SyntheticDataset, BatchShapesAreConsistent) {
  SyntheticDataset data(tiny_spec(), 42);
  const MiniBatch batch = data.next_batch(64);
  EXPECT_EQ(batch.batch_size(), 64);
  EXPECT_EQ(batch.dense.cols(), 3);
  ASSERT_EQ(batch.sparse.size(), 3u);
  EXPECT_EQ(batch.labels.size(), 64u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(batch.sparse[t].batch_size(), 64);
    EXPECT_NO_THROW(batch.sparse[t].validate(tiny_spec().table_rows[t]));
  }
}

TEST(SyntheticDataset, DeterministicFromSeed) {
  SyntheticDataset a(tiny_spec(), 42), b(tiny_spec(), 42);
  const MiniBatch ba = a.next_batch(32);
  const MiniBatch bb = b.next_batch(32);
  EXPECT_EQ(ba.sparse[0].indices, bb.sparse[0].indices);
  EXPECT_EQ(ba.labels, bb.labels);
  EXPECT_LT(Matrix::max_abs_diff(ba.dense, bb.dense), 1e-9f);
}

TEST(SyntheticDataset, EvalBatchIsStable) {
  SyntheticDataset data(tiny_spec(), 42);
  data.next_batch(32);  // advance training stream
  const MiniBatch e1 = data.eval_batch(16, 7);
  const MiniBatch e2 = data.eval_batch(16, 7);
  EXPECT_EQ(e1.sparse[1].indices, e2.sparse[1].indices);
  const MiniBatch e3 = data.eval_batch(16, 8);
  EXPECT_NE(e1.sparse[1].indices, e3.sparse[1].indices);
}

TEST(SyntheticDataset, LabelRateNearSpec) {
  DatasetSpec spec = tiny_spec();
  spec.label_positive_rate = 0.25;
  SyntheticDataset data(spec, 1);
  double pos = 0.0;
  const int n = 4096;
  const MiniBatch batch = data.next_batch(n);
  for (float l : batch.labels) pos += l;
  EXPECT_NEAR(pos / n, 0.25, 0.08);
}

TEST(SyntheticDataset, LabelsCorrelateWithTeacherScores) {
  SyntheticDataset data(tiny_spec(), 9);
  const MiniBatch batch = data.next_batch(8192);
  // Average teacher score of positive samples must exceed negatives.
  double pos_score = 0.0, neg_score = 0.0;
  int pos_n = 0, neg_n = 0;
  for (index_t s = 0; s < 8192; ++s) {
    double score = 0.0;
    for (index_t t = 0; t < 3; ++t) {
      score += data.teacher_score(
          t, batch.sparse[static_cast<std::size_t>(t)]
                 .indices[static_cast<std::size_t>(s)]);
    }
    if (batch.labels[static_cast<std::size_t>(s)] > 0.5f) {
      pos_score += score;
      ++pos_n;
    } else {
      neg_score += score;
      ++neg_n;
    }
  }
  ASSERT_GT(pos_n, 0);
  ASSERT_GT(neg_n, 0);
  EXPECT_GT(pos_score / pos_n, neg_score / neg_n + 0.05);
}

TEST(SyntheticDataset, UniqueIndicesPerBatchGap) {
  // Fig. 4b: unique indices per batch is well below the batch size.
  SyntheticDataset data(tiny_spec(), 11);
  const double uniq = avg_unique_indices_per_batch(data, 0, 1024, 8);
  EXPECT_LT(uniq, 1024 * 0.6);
  EXPECT_GT(uniq, 8.0);
}

TEST(SyntheticDataset, CumulativeAccessShareIsSkewed) {
  // Fig. 4a: top 1% of rows receive a dominant share of accesses.
  SyntheticDataset data(tiny_spec(), 13);
  const auto shares =
      cumulative_access_share(data, 2, {0.01, 0.1, 1.0}, 50000, 1024);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_GT(shares[0], 0.25);
  EXPECT_GT(shares[1], shares[0]);
  EXPECT_NEAR(shares[2], 1.0, 1e-9);
}

TEST(SyntheticDataset, SessionLocalityRaisesCooccurrence) {
  // With locality on, two consecutive batches share more cold indices than
  // two far-apart batches.
  DatasetSpec spec = tiny_spec();
  spec.locality_fraction = 0.7;
  spec.locality_groups = 32;
  SyntheticDataset data(spec, 17);
  auto unique_set = [&](const MiniBatch& b) {
    std::set<index_t> s(b.sparse[2].indices.begin(), b.sparse[2].indices.end());
    return s;
  };
  const auto b0 = unique_set(data.next_batch(256));
  const auto b1 = unique_set(data.next_batch(256));
  // Skip ahead many sessions.
  for (int i = 0; i < 40; ++i) data.next_batch(64);
  const auto b2 = unique_set(data.next_batch(256));
  auto overlap = [](const std::set<index_t>& a, const std::set<index_t>& b) {
    int n = 0;
    for (index_t v : a) n += b.count(v);
    return n;
  };
  EXPECT_GT(overlap(b0, b1), overlap(b0, b2));
}

}  // namespace
}  // namespace elrec
