// Tests for locality-based index reordering: graph construction
// (Algorithm 2), Louvain community detection on planted partitions, the
// bijection generator, and the end effect the paper claims — more prefix
// sharing in the Eff-TT table after reordering.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "reorder/bijection.hpp"

namespace elrec {
namespace {

TEST(IndexGraph, EdgesConnectCooccurringColdIndices) {
  IndexGraphBuilder builder(10, 0.0);
  builder.add_batch({1, 2, 3});
  builder.add_batch({1, 2});
  Prng rng(1);
  const IndexGraphResult r = builder.build(rng);
  EXPECT_EQ(r.graph.num_vertices, 10);
  const index_t v1 = r.vertex_of[1];
  const index_t v2 = r.vertex_of[2];
  // Edge (1,2) appears in both batches: accumulated weight 2.
  double w12 = 0.0;
  for (const auto& [n, w] : r.graph.adjacency[static_cast<std::size_t>(v1)]) {
    if (n == v2) w12 += w;
  }
  EXPECT_DOUBLE_EQ(w12, 2.0);
}

TEST(IndexGraph, HotIndicesAreExcluded) {
  IndexGraphBuilder builder(10, 0.2);  // top 2 indices are hot
  for (int i = 0; i < 5; ++i) builder.add_batch({7, 7, 7, 3, 3, 1});
  Prng rng(2);
  const IndexGraphResult r = builder.build(rng);
  EXPECT_EQ(r.num_hot, 2);
  EXPECT_EQ(r.frequency_order[0], 7);  // most accessed
  EXPECT_EQ(r.frequency_order[1], 3);
  EXPECT_EQ(r.vertex_of[7], -1);  // hot -> no vertex
  EXPECT_EQ(r.vertex_of[3], -1);
  EXPECT_GE(r.vertex_of[1], 0);
}

TEST(IndexGraph, DuplicateIndicesWithinBatchDeduplicated) {
  IndexGraphBuilder builder(10, 0.0);
  builder.add_batch({4, 4, 4, 5});
  Prng rng(3);
  const IndexGraphResult r = builder.build(rng);
  double w = 0.0;
  const index_t v4 = r.vertex_of[4];
  for (const auto& [n, ww] : r.graph.adjacency[static_cast<std::size_t>(v4)]) {
    w += ww;
  }
  EXPECT_DOUBLE_EQ(w, 1.0);  // one edge to 5, no self-edges
}

TEST(IndexGraph, RejectsOutOfRangeIndices) {
  IndexGraphBuilder builder(10, 0.0);
  EXPECT_THROW(builder.add_batch({10}), Error);
}

WeightedGraph planted_partition(index_t communities, index_t size,
                                double p_in, double p_out, Prng& rng) {
  WeightedGraph g;
  g.num_vertices = communities * size;
  g.adjacency.resize(static_cast<std::size_t>(g.num_vertices));
  for (index_t u = 0; u < g.num_vertices; ++u) {
    for (index_t v = u + 1; v < g.num_vertices; ++v) {
      const bool same = (u / size) == (v / size);
      if (rng.uniform() < (same ? p_in : p_out)) g.add_edge(u, v, 1.0);
    }
  }
  return g;
}

TEST(Louvain, RecoversPlantedPartition) {
  Prng rng(4);
  const WeightedGraph g = planted_partition(4, 30, 0.6, 0.02, rng);
  const LouvainResult r = louvain(g);
  EXPECT_GE(r.modularity, 0.4);
  // Vertices in the same planted block should mostly share a community.
  int agree = 0, total = 0;
  for (index_t u = 0; u < g.num_vertices; u += 3) {
    for (index_t v = u + 1; v < std::min<index_t>(u + 10, g.num_vertices);
         ++v) {
      if ((u / 30) != (v / 30)) continue;
      ++total;
      if (r.community_of[static_cast<std::size_t>(u)] ==
          r.community_of[static_cast<std::size_t>(v)]) {
        ++agree;
      }
    }
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.9);
}

TEST(Louvain, EmptyAndEdgelessGraphs) {
  WeightedGraph g;
  const LouvainResult r0 = louvain(g);
  EXPECT_EQ(r0.num_communities, 0);

  WeightedGraph g2;
  g2.num_vertices = 5;
  g2.adjacency.resize(5);
  const LouvainResult r2 = louvain(g2);
  EXPECT_EQ(static_cast<index_t>(r2.community_of.size()), 5);
  EXPECT_DOUBLE_EQ(r2.modularity, 0.0);
}

TEST(Louvain, ModularityMatchesDefinition) {
  // Two triangles joined by one edge; the 2-community split has the known
  // modularity 10/14^2... compute via the helper and cross-check > 0.3.
  WeightedGraph g;
  g.num_vertices = 6;
  g.adjacency.resize(6);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 1);
  g.add_edge(3, 5, 1);
  g.add_edge(2, 3, 1);
  const std::vector<index_t> split{0, 0, 0, 1, 1, 1};
  const double q = modularity(g, split);
  // Hand computation: m=7, per community sigma_in=6, sigma_tot=7 ->
  // Q = 2 * (6/14 - (7/14)^2) = 6/7 - 1/2 = 5/14.
  EXPECT_NEAR(q, 5.0 / 14.0, 1e-9);
  const LouvainResult r = louvain(g);
  EXPECT_GE(r.modularity, q - 1e-9);  // Louvain should find at least this
}

TEST(Bijection, IsAPermutationCoveringAllIndices) {
  IndexGraphBuilder builder(50, 0.1);
  Prng rng(5);
  for (int b = 0; b < 20; ++b) {
    std::vector<index_t> batch;
    for (int i = 0; i < 10; ++i) {
      batch.push_back(static_cast<index_t>(rng.uniform_index(50)));
    }
    builder.add_batch(batch);
  }
  const BijectionResult r = generate_bijection(builder.build(rng));
  ASSERT_EQ(r.mapping.size(), 50u);
  std::set<index_t> seen(r.mapping.begin(), r.mapping.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Bijection, HotIndicesKeepFrequencyRankPositions) {
  IndexGraphBuilder builder(20, 0.1);  // 2 hot slots
  for (int i = 0; i < 10; ++i) builder.add_batch({13, 13, 13, 6, 6, 2});
  Prng rng(6);
  const BijectionResult r = generate_bijection(builder.build(rng));
  EXPECT_EQ(r.num_hot, 2);
  EXPECT_EQ(r.mapping[13], 0);  // hottest -> position 0
  EXPECT_EQ(r.mapping[6], 1);
}

TEST(Bijection, CommunityMembersGetAdjacentIndices) {
  // Two disjoint cliques must land in contiguous, non-interleaved ranges.
  IndexGraphBuilder builder(12, 0.0);
  for (int i = 0; i < 5; ++i) {
    builder.add_batch({0, 2, 4});
    builder.add_batch({1, 3, 5});
  }
  Prng rng(7);
  const BijectionResult r = generate_bijection(builder.build(rng));
  std::set<index_t> even{r.mapping[0], r.mapping[2], r.mapping[4]};
  std::set<index_t> odd{r.mapping[1], r.mapping[3], r.mapping[5]};
  // Each clique contiguous: max - min == 2.
  EXPECT_EQ(*even.rbegin() - *even.begin(), 2);
  EXPECT_EQ(*odd.rbegin() - *odd.begin(), 2);
}

TEST(Reordering, IncreasesPrefixSharingOnSessionData) {
  // The paper's end-to-end claim (Fig. 7): after reordering, batches hit
  // fewer unique TT prefixes, i.e. more intermediate-result reuse.
  DatasetSpec spec;
  spec.name = "reorder-test";
  spec.num_dense = 1;
  spec.table_rows = {4000};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.05;
  spec.hot_ratio = 0.01;
  spec.locality_groups = 64;
  spec.locality_fraction = 0.8;

  SyntheticDataset data(spec, 21);
  ReorderPipeline pipeline(4000, 0.01, 33);
  for (int b = 0; b < 60; ++b) {
    pipeline.add_batch(data.next_batch(256).sparse[0].indices);
  }
  const BijectionResult bij = pipeline.finish();

  const TTShape shape = TTShape::balanced(4000, 8, 3, 4);
  Prng rng(8);
  EffTTTable plain(4000, shape, rng);
  EffTTTable reordered(4000, shape, rng);
  reordered.set_index_bijection(bij.mapping);

  // Later batches of the SAME stream (the paper generates the bijection
  // offline from the training data it will then train on).
  index_t prefixes_plain = 0, prefixes_reordered = 0;
  Matrix out;
  for (int b = 0; b < 20; ++b) {
    const MiniBatch batch = data.next_batch(512);
    plain.forward(batch.sparse[0], out);
    prefixes_plain += plain.last_stats().unique_prefixes;
    reordered.forward(batch.sparse[0], out);
    prefixes_reordered += reordered.last_stats().unique_prefixes;
  }
  EXPECT_LT(prefixes_reordered, prefixes_plain);
}

}  // namespace
}  // namespace elrec
