// Tests for the data-parallel trainer: minibatch slicing, the parameter-
// averaging == gradient-averaging identity (W workers vs one full-batch
// worker), and multi-worker convergence.
#include <gtest/gtest.h>

#include <cmath>

#include "pipeline/data_parallel_trainer.hpp"

namespace elrec {
namespace {

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "dp-tiny";
  spec.num_dense = 3;
  spec.table_rows = {2000, 50};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  return spec;
}

DataParallelConfig base_config(int workers) {
  DataParallelConfig cfg;
  cfg.num_workers = workers;
  cfg.model.num_dense = 3;
  cfg.model.embedding_dim = 8;
  cfg.model.bottom_hidden = {16};
  cfg.model.top_hidden = {16};
  cfg.tt_rank = 4;
  cfg.tt_threshold = 1000;  // the 2000-row table becomes Eff-TT
  cfg.lr = 0.05f;
  cfg.seed = 13;
  return cfg;
}

TEST(SliceMinibatch, SplitsDenseSparseLabels) {
  MiniBatch b;
  b.dense = Matrix{{1.0f}, {2.0f}, {3.0f}, {4.0f}};
  b.labels = {0.0f, 1.0f, 1.0f, 0.0f};
  b.sparse.push_back(IndexBatch::from_bags({{1}, {2, 3}, {}, {4, 5, 6}}));
  const MiniBatch s = slice_minibatch(b, 1, 3);
  EXPECT_EQ(s.batch_size(), 2);
  EXPECT_FLOAT_EQ(s.dense.at(0, 0), 2.0f);
  EXPECT_EQ(s.labels[1], 1.0f);
  ASSERT_EQ(s.sparse[0].batch_size(), 2);
  EXPECT_EQ(s.sparse[0].bag_size(0), 2);  // {2, 3}
  EXPECT_EQ(s.sparse[0].bag_size(1), 0);  // {}
  EXPECT_EQ(s.sparse[0].indices, (std::vector<index_t>{2, 3}));
  EXPECT_NO_THROW(s.sparse[0].validate(10));
}

TEST(SliceMinibatch, FullRangeIsIdentity) {
  MiniBatch b;
  b.dense = Matrix{{1.0f}, {2.0f}};
  b.labels = {0.0f, 1.0f};
  b.sparse.push_back(IndexBatch::one_per_sample({7, 8}));
  const MiniBatch s = slice_minibatch(b, 0, 2);
  EXPECT_EQ(s.sparse[0].indices, b.sparse[0].indices);
  EXPECT_EQ(s.labels, b.labels);
}

TEST(SliceMinibatch, BadBoundsThrow) {
  MiniBatch b;
  b.dense = Matrix{{1.0f}};
  b.labels = {0.0f};
  b.sparse.push_back(IndexBatch::one_per_sample({0}));
  EXPECT_THROW(slice_minibatch(b, 0, 2), Error);
}

TEST(DataParallel, TwoWorkersMatchFullBatchSingleWorker) {
  // theta - lr * mean(g_w) == mean_w(theta - lr * g_w): a 2-worker run over
  // shards must track a 1-worker run over the full batch.
  const DatasetSpec spec = tiny_spec();
  DataParallelTrainer two(base_config(2), spec);
  DataParallelTrainer one(base_config(1), spec);
  SyntheticDataset data_a(spec, 5);
  SyntheticDataset data_b(spec, 5);

  two.train(data_a, 8, 64);
  one.train(data_b, 8, 64);

  // Compare every parameter buffer of worker 0 vs the single worker.
  std::vector<float> flat_two, flat_one;
  two.worker_model(0).visit_parameters([&](float* p, std::size_t n) {
    flat_two.insert(flat_two.end(), p, p + n);
  });
  one.worker_model(0).visit_parameters([&](float* p, std::size_t n) {
    flat_one.insert(flat_one.end(), p, p + n);
  });
  ASSERT_EQ(flat_two.size(), flat_one.size());
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < flat_two.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(flat_two[i] - flat_one[i]));
  }
  // Float summation order differs (per-shard loss means vs full-batch
  // mean), so allow small drift over 8 steps.
  EXPECT_LT(max_diff, 2e-3f);
}

TEST(DataParallel, WorkersStayInSync) {
  const DatasetSpec spec = tiny_spec();
  DataParallelTrainer trainer(base_config(3), spec);
  SyntheticDataset data(spec, 6);
  trainer.train(data, 5, 48);
  std::vector<float> w0, w2;
  trainer.worker_model(0).visit_parameters([&](float* p, std::size_t n) {
    w0.insert(w0.end(), p, p + n);
  });
  trainer.worker_model(2).visit_parameters([&](float* p, std::size_t n) {
    w2.insert(w2.end(), p, p + n);
  });
  ASSERT_EQ(w0.size(), w2.size());
  for (std::size_t i = 0; i < w0.size(); ++i) {
    ASSERT_FLOAT_EQ(w0[i], w2[i]) << "divergence at parameter " << i;
  }
}

TEST(DataParallel, TrainsAndReportsAllreduceBytes) {
  const DatasetSpec spec = tiny_spec();
  DataParallelTrainer trainer(base_config(2), spec);
  SyntheticDataset data(spec, 7);
  const DataParallelStats stats = trainer.train(data, 40, 64);
  EXPECT_EQ(stats.batches, 40);
  EXPECT_GT(stats.allreduce_bytes, 0.0);
  double head = 0.0, tail = 0.0;
  for (int i = 0; i < 10; ++i) {
    head += stats.loss_curve[static_cast<std::size_t>(i)];
    tail += stats.loss_curve[stats.loss_curve.size() - 1 - i];
  }
  EXPECT_LT(tail, head);
}

TEST(DataParallel, UnevenSplitRejected) {
  const DatasetSpec spec = tiny_spec();
  DataParallelTrainer trainer(base_config(3), spec);
  SyntheticDataset data(spec, 8);
  EXPECT_THROW(trainer.train(data, 1, 64), Error);  // 64 % 3 != 0
}

}  // namespace
}  // namespace elrec
