// Tests for the optimizer layer: rule correctness, region updates, the
// Eff-TT fused Adagrad vs the TT-Rec baseline's unfused pass, sparse
// inactive-safety, and MLP training with each rule.
#include <gtest/gtest.h>

#include <cmath>

#include "core/eff_tt_table.hpp"
#include "dlrm/mlp.hpp"
#include "embed/embedding_bag.hpp"
#include "tensor/optimizer.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

TEST(Optimizer, SgdStep) {
  OptimizerState opt(OptimizerConfig{}, 3);
  std::vector<float> w{1.0f, 2.0f, 3.0f};
  std::vector<float> g{1.0f, -1.0f, 0.5f};
  opt.update(w, g, 0.1f);
  EXPECT_FLOAT_EQ(w[0], 0.9f);
  EXPECT_FLOAT_EQ(w[1], 2.1f);
  EXPECT_FLOAT_EQ(w[2], 2.95f);
}

TEST(Optimizer, MomentumAccumulatesVelocity) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kMomentum;
  cfg.momentum = 0.5f;
  OptimizerState opt(cfg, 1);
  std::vector<float> w{0.0f};
  std::vector<float> g{1.0f};
  opt.update(w, g, 1.0f);  // v=1, w=-1
  EXPECT_FLOAT_EQ(w[0], -1.0f);
  opt.update(w, g, 1.0f);  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(w[0], -2.5f);
}

TEST(Optimizer, AdagradScalesByAccumulatedSquare) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  cfg.eps = 0.0f;
  OptimizerState opt(cfg, 1);
  std::vector<float> w{0.0f};
  std::vector<float> g{2.0f};
  opt.update(w, g, 1.0f);  // s=4, step = 2/2 = 1
  EXPECT_FLOAT_EQ(w[0], -1.0f);
  opt.update(w, g, 1.0f);  // s=8, step = 2/sqrt(8)
  EXPECT_NEAR(w[0], -1.0f - 2.0f / std::sqrt(8.0f), 1e-6f);
}

TEST(Optimizer, AdagradIsInactiveSafe) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  OptimizerState opt(cfg, 2);
  std::vector<float> w{1.0f, 1.0f};
  std::vector<float> g{0.0f, 1.0f};
  opt.update(w, g, 0.1f);
  EXPECT_FLOAT_EQ(w[0], 1.0f);  // zero gradient -> no movement
  EXPECT_LT(w[1], 1.0f);
}

TEST(Optimizer, RegionUpdateKeepsIndependentState) {
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  cfg.eps = 0.0f;
  OptimizerState opt(cfg, 4);
  std::vector<float> w{0.0f, 0.0f, 0.0f, 0.0f};
  std::vector<float> g{1.0f, 1.0f};
  // Update region [2, 4) twice; region [0, 2) once.
  opt.update_region(w.data() + 2, g.data(), 2, 2, 1.0f);
  opt.update_region(w.data() + 2, g.data(), 2, 2, 1.0f);
  opt.update_region(w.data(), g.data(), 0, 2, 1.0f);
  EXPECT_FLOAT_EQ(w[0], -1.0f);                        // fresh state
  EXPECT_NEAR(w[2], -1.0f - 1.0f / std::sqrt(2.0f), 1e-6f);  // second step damped
}

TEST(EmbeddingBagOptimizer, AdagradAggregatesDuplicates) {
  // With torch-sparse semantics, a row appearing twice gets ONE update with
  // the summed gradient, not two sequential updates.
  Prng rng(1);
  EmbeddingBag bag(10, 1, rng, 0.0f);  // zero-initialized
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  cfg.eps = 0.0f;
  bag.set_optimizer(cfg);
  Matrix grad{{1.0f}, {1.0f}};
  bag.backward_and_update(IndexBatch::one_per_sample({5, 5}), grad, 1.0f);
  // Aggregated gradient 2 -> s=4, step = 2/2 = 1.
  EXPECT_FLOAT_EQ(bag.weights().at(5, 0), -1.0f);
}

TEST(TTTableOptimizer, MomentumRejected) {
  Prng rng(2);
  TTTable table(24, TTShape({2, 3, 4}, {2, 2, 2}, {1, 3, 3, 1}), rng);
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kMomentum;
  EXPECT_THROW(table.set_optimizer(cfg), Error);
  EffTTTable eff(24, TTShape({2, 3, 4}, {2, 2, 2}, {1, 3, 3, 1}), rng);
  EXPECT_THROW(eff.set_optimizer(cfg), Error);
}

TEST(TTTableOptimizer, EffTTAdagradMatchesBaseline) {
  // The fused Adagrad in EffTT (touched slices only) must equal the
  // baseline's dense pass (untouched entries have g=0, so Adagrad leaves
  // them alone).
  Prng init_rng(3);
  TTCores cores(TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}));
  cores.init_normal(init_rng, 0.2f);
  EffTTTable eff(55, cores);
  TTTable base(55, cores);
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  eff.set_optimizer(cfg);
  base.set_optimizer(cfg);

  Prng rng(4);
  for (int step = 0; step < 4; ++step) {
    std::vector<index_t> idx;
    for (int i = 0; i < 12; ++i) {
      idx.push_back(static_cast<index_t>(rng.uniform_index(55)));
    }
    const IndexBatch batch = IndexBatch::one_per_sample(idx);
    Matrix grad(12, 12);
    grad.fill_normal(rng, 0.0f, 0.1f);
    Matrix oe, ob;
    eff.forward(batch, oe);
    base.forward(batch, ob);
    eff.backward_and_update(batch, grad, 0.1f);
    base.backward_and_update(batch, grad, 0.1f);
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-4f);
  }
}

TEST(TTTableOptimizer, AdagradConvergesOnRowTarget) {
  Prng rng(5);
  EffTTTable table(24, TTShape({2, 3, 4}, {2, 2, 2}, {1, 4, 4, 1}), rng, {},
                   0.3f);
  OptimizerConfig cfg;
  cfg.kind = OptimizerKind::kAdagrad;
  table.set_optimizer(cfg);
  const IndexBatch batch = IndexBatch::one_per_sample({13});
  auto err = [&] {
    Matrix out;
    table.forward(batch, out);
    double e = 0.0;
    for (index_t j = 0; j < 8; ++j) {
      const double d = out.at(0, j) - 0.5;
      e += d * d;
    }
    return e;
  };
  const double before = err();
  for (int step = 0; step < 100; ++step) {
    Matrix out;
    table.forward(batch, out);
    Matrix grad(1, 8);
    for (index_t j = 0; j < 8; ++j) grad.at(0, j) = out.at(0, j) - 0.5f;
    table.backward_and_update(batch, grad, 0.3f);
  }
  EXPECT_LT(err(), before * 0.1);
}

TEST(MlpOptimizer, AdagradAndMomentumTrainQuadratic) {
  // Fit y = x through a linear MLP under each optimizer; all must converge.
  for (OptimizerKind kind : {OptimizerKind::kSgd, OptimizerKind::kMomentum,
                             OptimizerKind::kAdagrad}) {
    Prng rng(6);
    Mlp mlp({2, 4, 1}, rng);
    OptimizerConfig cfg;
    cfg.kind = kind;
    mlp.set_optimizer(cfg);
    Prng data_rng(7);
    double last = 0.0;
    for (int step = 0; step < 400; ++step) {
      Matrix x(8, 2);
      x.fill_normal(data_rng);
      Matrix y;
      mlp.forward(x, y);
      Matrix grad(8, 1);
      double loss = 0.0;
      for (index_t i = 0; i < 8; ++i) {
        const float target = x.at(i, 0) - x.at(i, 1);
        const float diff = y.at(i, 0) - target;
        loss += 0.5 * diff * diff;
        grad.at(i, 0) = diff / 8.0f;
      }
      Matrix gin;
      mlp.backward_and_update(grad, gin,
                              kind == OptimizerKind::kAdagrad ? 0.5f : 0.05f);
      last = loss / 8.0;
    }
    EXPECT_LT(last, 0.05) << "optimizer kind " << static_cast<int>(kind);
  }
}

}  // namespace
}  // namespace elrec
