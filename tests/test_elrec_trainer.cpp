// Integration tests for the full EL-Rec training system: placement policy,
// pipelined DLRM training with host-resident tables, equivalence between
// pipelined and sequential execution, and loss improvement on learnable
// synthetic data.
#include <gtest/gtest.h>

#include "pipeline/elrec_trainer.hpp"

namespace elrec {
namespace {

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.num_dense = 4;
  spec.table_rows = {2000, 64, 500};
  spec.num_samples = 100000;
  spec.zipf_s = 1.05;
  return spec;
}

ElRecTrainerConfig base_config(const DatasetSpec& spec) {
  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 8;
  cfg.model.bottom_hidden = {16};
  cfg.model.top_hidden = {16};
  // Largest table TT on device, mid table host-resident, small dense.
  cfg.placement = {TablePlacement::kDeviceTT, TablePlacement::kDeviceDense,
                   TablePlacement::kHost};
  cfg.tt_rank = 8;
  cfg.queue_capacity = 4;
  cfg.lr = 0.05f;
  cfg.seed = 11;
  return cfg;
}

TEST(DefaultPlacement, ThresholdsSplitTables) {
  const auto p = default_placement(tiny_spec(), 300, 1500);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], TablePlacement::kHost);         // 2000 >= 1500
  EXPECT_EQ(p[1], TablePlacement::kDeviceDense);  // 64 < 300
  EXPECT_EQ(p[2], TablePlacement::kDeviceTT);     // 300 <= 500 < 1500
}

TEST(HostTableClientTest, ForwardPoolsInstalledRows) {
  HostTableClient client(10, 2);
  Matrix rows{{1.0f, 2.0f}, {10.0f, 20.0f}};
  client.install({3, 7}, rows);
  Matrix out;
  client.forward(IndexBatch::from_bags({{3, 7}, {7, 7}}), out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 40.0f);
}

TEST(HostTableClientTest, MissingIndexThrows) {
  HostTableClient client(10, 2);
  Matrix rows{{1.0f, 2.0f}};
  client.install({3}, rows);
  Matrix out;
  EXPECT_THROW(client.forward(IndexBatch::one_per_sample({4}), out), Error);
}

TEST(HostTableClientTest, BackwardCapturesAggregatedGrads) {
  HostTableClient client(10, 2);
  Matrix rows{{1.0f, 2.0f}, {10.0f, 20.0f}};
  client.install({3, 7}, rows);
  Matrix out;
  const IndexBatch batch = IndexBatch::from_bags({{3, 7}, {7}});
  client.forward(batch, out);
  Matrix grad{{1.0f, 0.0f}, {2.0f, 0.0f}};
  client.backward_and_update(batch, grad, 0.5f);
  // Index 3: grad from sample 0 only; index 7: samples 0 and 1.
  EXPECT_FLOAT_EQ(client.captured_grads().at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(client.captured_grads().at(1, 0), 3.0f);
  // updated = rows - lr * grads.
  EXPECT_FLOAT_EQ(client.updated_rows().at(1, 0), 10.0f - 0.5f * 3.0f);
}

TEST(ElRecTrainerTest, TrainsAndReducesLoss) {
  const DatasetSpec spec = tiny_spec();
  ElRecTrainer trainer(base_config(spec), spec);
  SyntheticDataset data(spec, 3);
  const ElRecRunStats stats = trainer.train(data, 150, 128);
  EXPECT_EQ(stats.batches, 150);
  ASSERT_EQ(stats.loss_curve.size(), 150u);
  // Average of first 20 vs last 20 batches.
  double head = 0.0, tail = 0.0;
  for (int i = 0; i < 20; ++i) {
    head += stats.loss_curve[static_cast<std::size_t>(i)];
    tail += stats.loss_curve[stats.loss_curve.size() - 1 - i];
  }
  EXPECT_LT(tail, head * 0.97);
}

TEST(ElRecTrainerTest, PipelinedMatchesSequentialExactly) {
  // Same seed, same data stream: queue depth must not change the math —
  // this is the §V-B claim (the cache removes the RAW conflict entirely).
  const DatasetSpec spec = tiny_spec();

  ElRecTrainerConfig seq_cfg = base_config(spec);
  seq_cfg.queue_capacity = 1;
  ElRecTrainerConfig pipe_cfg = base_config(spec);
  pipe_cfg.queue_capacity = 6;

  ElRecTrainer seq(seq_cfg, spec);
  ElRecTrainer pipe(pipe_cfg, spec);
  SyntheticDataset data_a(spec, 7);
  SyntheticDataset data_b(spec, 7);

  const ElRecRunStats s1 = seq.train(data_a, 60, 64);
  const ElRecRunStats s2 = pipe.train(data_b, 60, 64);
  ASSERT_EQ(s1.loss_curve.size(), s2.loss_curve.size());
  for (std::size_t i = 0; i < s1.loss_curve.size(); ++i) {
    EXPECT_NEAR(s1.loss_curve[i], s2.loss_curve[i], 1e-5f) << "batch " << i;
  }
  // Host stores end identical.
  EXPECT_LT(Matrix::max_abs_diff(seq.host_store(0).weights(),
                                 pipe.host_store(0).weights()),
            1e-4f);
}

TEST(ElRecTrainerTest, DisablingCacheChangesResultUnderDeepQueues) {
  const DatasetSpec spec = tiny_spec();
  ElRecTrainerConfig with_cfg = base_config(spec);
  with_cfg.queue_capacity = 6;
  ElRecTrainerConfig without_cfg = with_cfg;
  without_cfg.use_embedding_cache = false;

  ElRecTrainer with_cache(with_cfg, spec);
  ElRecTrainer without_cache(without_cfg, spec);
  SyntheticDataset data_a(spec, 7);
  SyntheticDataset data_b(spec, 7);
  with_cache.train(data_a, 60, 64);
  without_cache.train(data_b, 60, 64);
  // Stale reads must have changed the host table (RAW bug visible).
  EXPECT_GT(Matrix::max_abs_diff(with_cache.host_store(0).weights(),
                                 without_cache.host_store(0).weights()),
            1e-5f);
}

TEST(ElRecTrainerTest, DeviceFootprintIsCompressed) {
  const DatasetSpec spec = tiny_spec();
  ElRecTrainer trainer(base_config(spec), spec);
  // Device embedding bytes: TT table (compressed 2000x8) + dense 64x8;
  // must be far below the dense total of (2000 + 500) * 8 floats.
  const std::size_t dense_total = (2000 + 64 + 500) * 8 * sizeof(float);
  EXPECT_LT(trainer.device_embedding_bytes(), dense_total / 2);
}

TEST(ElRecTrainerTest, CacheBoundedByLifecycle) {
  const DatasetSpec spec = tiny_spec();
  ElRecTrainerConfig cfg = base_config(spec);
  cfg.queue_capacity = 4;
  ElRecTrainer trainer(cfg, spec);
  SyntheticDataset data(spec, 5);
  const ElRecRunStats stats = trainer.train(data, 80, 128);
  // The host table has 500 rows; with ~128 draws/batch and 5 live batches
  // the cache must stay well under the full table size.
  EXPECT_GT(stats.cache_peak, 0u);
  EXPECT_LT(stats.cache_peak, 500u);
}

}  // namespace
}  // namespace elrec
