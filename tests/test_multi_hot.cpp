// Tests for multi-hot sparse features end to end: generator bag sizes,
// pooling semantics through every table implementation, and DLRM training
// on multi-hot batches.
#include <gtest/gtest.h>

#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "dlrm/dlrm_model.hpp"
#include "embed/embedding_bag.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

DatasetSpec multi_hot_spec() {
  DatasetSpec spec;
  spec.name = "multi-hot";
  spec.num_dense = 2;
  spec.table_rows = {400, 100};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.1;
  spec.multi_hot_max = 4;
  return spec;
}

TEST(MultiHot, GeneratorProducesVariableBagSizes) {
  SyntheticDataset data(multi_hot_spec(), 3);
  const MiniBatch batch = data.next_batch(256);
  const IndexBatch& t0 = batch.sparse[0];
  EXPECT_EQ(t0.batch_size(), 256);
  index_t min_bag = 1 << 20, max_bag = 0;
  for (index_t s = 0; s < 256; ++s) {
    min_bag = std::min(min_bag, t0.bag_size(s));
    max_bag = std::max(max_bag, t0.bag_size(s));
  }
  EXPECT_EQ(min_bag, 1);
  EXPECT_EQ(max_bag, 4);
  EXPECT_GT(t0.num_indices(), 256);          // more indices than samples
  EXPECT_NO_THROW(t0.validate(400));
}

TEST(MultiHot, OneHotSpecKeepsSingleIndexBags) {
  DatasetSpec spec = multi_hot_spec();
  spec.multi_hot_max = 1;
  SyntheticDataset data(spec, 4);
  const MiniBatch batch = data.next_batch(64);
  for (index_t s = 0; s < 64; ++s) {
    EXPECT_EQ(batch.sparse[0].bag_size(s), 1);
  }
}

TEST(MultiHot, EffTTMatchesDenseOnMultiHotBags) {
  // Pooled multi-hot lookups through the TT path must equal the dense sum.
  Prng rng(5);
  const TTShape shape = TTShape::balanced(400, 8, 3, 6);
  EffTTTable tt(400, shape, rng);
  const Matrix dense = tt.cores().materialize(400);

  SyntheticDataset data(multi_hot_spec(), 6);
  const IndexBatch batch = data.next_batch(128).sparse[0];
  Matrix out;
  tt.forward(batch, out);
  for (index_t s = 0; s < 128; ++s) {
    for (index_t j = 0; j < 8; ++j) {
      float expected = 0.0f;
      for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
        expected += dense.at(batch.indices[static_cast<std::size_t>(p)], j);
      }
      EXPECT_NEAR(out.at(s, j), expected, 1e-4f) << "sample " << s;
    }
  }
}

TEST(MultiHot, EffTTBackwardMatchesBaselineOnBags) {
  Prng init(7);
  TTCores cores(TTShape::balanced(400, 8, 3, 6));
  cores.init_normal(init, 0.2f);
  EffTTTable eff(400, cores);
  TTTable base(400, cores);

  SyntheticDataset data(multi_hot_spec(), 8);
  const IndexBatch batch = data.next_batch(64).sparse[0];
  Prng rng(9);
  Matrix grad(64, 8);
  grad.fill_normal(rng, 0.0f, 0.1f);
  Matrix oe, ob;
  eff.forward(batch, oe);
  base.forward(batch, ob);
  EXPECT_LT(Matrix::max_abs_diff(oe, ob), 1e-4f);
  eff.backward_and_update(batch, grad, 0.1f);
  base.backward_and_update(batch, grad, 0.1f);
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(Matrix::max_abs_diff(eff.cores().core(k), base.cores().core(k)),
              1e-4f);
  }
}

TEST(MultiHot, DlrmTrainsOnMultiHotData) {
  Prng rng(10);
  DlrmConfig cfg;
  cfg.num_dense = 2;
  cfg.embedding_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  tables.push_back(std::make_unique<EffTTTable>(
      400, TTShape::balanced(400, 8, 3, 6), rng));
  tables.push_back(std::make_unique<EmbeddingBag>(100, 8, rng));
  DlrmModel model(cfg, std::move(tables), rng);

  SyntheticDataset data(multi_hot_spec(), 11);
  float first = 0.0f, last = 0.0f;
  for (int b = 0; b < 120; ++b) {
    const float loss = model.train_step(data.next_batch(128), 0.1f);
    if (b == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace elrec
