// Unit tests for src/common: PRNG, aligned buffers, blocking queue, pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>
#include <thread>

#include "common/aligned_buffer.hpp"
#include "common/blocking_queue.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"
#include "common/thread_pool.hpp"

namespace elrec {
namespace {

TEST(Prng, DeterministicFromSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, UniformInUnitInterval) {
  Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, UniformRangeRespectsBounds) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Prng, UniformIndexCoversRangeWithoutBias) {
  Prng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.15);
  }
}

TEST(Prng, NormalMomentsApproximatelyStandard) {
  Prng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Prng, BernoulliRate) {
  Prng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Prng, SplitStreamsAreIndependent) {
  Prng parent(5);
  Prng c1 = parent.split();
  Prng c2 = parent.split();
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Shuffle, ProducesPermutation) {
  Prng rng(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  shuffle(v, rng);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Error, CheckThrowsWithMessage) {
  try {
    ELREC_CHECK(false, "context info");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context info"), std::string::npos);
  }
}

TEST(Error, CheckPassesQuietly) {
  EXPECT_NO_THROW(ELREC_CHECK(1 + 1 == 2));
}

TEST(AlignedBuffer, IsCacheLineAligned) {
  AlignedBuffer<float> buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
}

TEST(AlignedBuffer, ZeroInitialised) {
  AlignedBuffer<float> buf(1000);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0f);
}

TEST(AlignedBuffer, CopyAndMoveSemantics) {
  AlignedBuffer<int> a(10);
  for (std::size_t i = 0; i < 10; ++i) a[i] = static_cast<int>(i);
  AlignedBuffer<int> b = a;  // copy
  EXPECT_EQ(b[7], 7);
  AlignedBuffer<int> c = std::move(a);  // move
  EXPECT_EQ(c[7], 7);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move) — intentional
  b = b;                    // self-assignment is a no-op
  EXPECT_EQ(b[3], 3);
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, BlocksWhenFullUntilConsumed) {
  BlockingQueue<int> q(1);
  q.push(1);
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    q.push(2);
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BlockingQueue, CloseWakesConsumers) {
  BlockingQueue<int> q(2);
  std::optional<int> result = std::make_optional(99);
  std::thread consumer([&] { result = q.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
  EXPECT_FALSE(result.has_value());
}

TEST(BlockingQueue, PushAfterCloseFails) {
  BlockingQueue<int> q(2);
  q.close();
  EXPECT_FALSE(q.push(1));
}

TEST(BlockingQueue, DrainAfterClose) {
  BlockingQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q(8);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long> total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) total += *v;
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const long expected =
      static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(total.load(), expected);
}

TEST(BlockingQueue, TryPopForTimesOutOnEmpty) {
  BlockingQueue<int> q(2);
  int out = -1;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.try_pop_for(out, std::chrono::milliseconds(20)),
            QueueOpStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(15));
  EXPECT_EQ(out, -1);
}

TEST(BlockingQueue, TryPushForTimesOutWhenFullWithoutConsumingValue) {
  BlockingQueue<std::unique_ptr<int>> q(1);
  auto first = std::make_unique<int>(1);
  ASSERT_EQ(q.try_push_for(first, std::chrono::milliseconds(10)),
            QueueOpStatus::kOk);
  EXPECT_EQ(first, nullptr);  // transferred

  auto second = std::make_unique<int>(2);
  EXPECT_EQ(q.try_push_for(second, std::chrono::milliseconds(20)),
            QueueOpStatus::kTimeout);
  // The value must survive a timeout so the caller can retry it.
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*second, 2);

  std::unique_ptr<int> out;
  ASSERT_EQ(q.try_pop_for(out, std::chrono::milliseconds(10)),
            QueueOpStatus::kOk);
  EXPECT_EQ(*out, 1);
  EXPECT_EQ(q.try_push_for(second, std::chrono::milliseconds(10)),
            QueueOpStatus::kOk);
}

TEST(BlockingQueue, TryPushForOnClosedQueueReturnsClosed) {
  BlockingQueue<int> q(2);
  q.close();
  int v = 7;
  EXPECT_EQ(q.try_push_for(v, std::chrono::milliseconds(10)),
            QueueOpStatus::kClosed);
}

TEST(BlockingQueue, TryPopForReportsClosedOnlyAfterDrain) {
  BlockingQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  int out = 0;
  EXPECT_EQ(q.try_pop_for(out, std::chrono::milliseconds(10)),
            QueueOpStatus::kOk);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.try_pop_for(out, std::chrono::milliseconds(10)),
            QueueOpStatus::kOk);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.try_pop_for(out, std::chrono::milliseconds(10)),
            QueueOpStatus::kClosed);
}

// Poison-pill shutdown race: consumers sit in long try_pop_for waits while
// the producer pushes K final items and immediately closes. Exactly K pops
// must report kOk (each pill delivered once) and every other consumer must
// see kClosed far sooner than its deadline — the close must not strand a
// waiter, and a pill must never be dropped or double-delivered.
TEST(BlockingQueue, TryPopForRacingCloseDeliversEveryPillThenCloses) {
  constexpr int kConsumers = 6;
  constexpr int kPills = 3;
  BlockingQueue<int> q(kPills);
  std::atomic<int> ok_count{0};
  std::atomic<long> pill_sum{0};
  std::atomic<int> closed_count{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        int out = 0;
        // Far longer than the test runs; kClosed must cut the wait short.
        const QueueOpStatus st = q.try_pop_for(out, std::chrono::seconds(30));
        if (st == QueueOpStatus::kClosed) {
          ++closed_count;
          return;
        }
        ASSERT_EQ(st, QueueOpStatus::kOk);
        ++ok_count;
        pill_sum += out;
      }
    });
  }
  // Let consumers reach their waits, then race pills against close().
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 1; i <= kPills; ++i) q.push(i);
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
  EXPECT_EQ(ok_count.load(), kPills) << "every pill delivered exactly once";
  EXPECT_EQ(pill_sum.load(), kPills * (kPills + 1) / 2);
  EXPECT_EQ(closed_count.load(), kConsumers) << "no consumer left waiting";
}

TEST(BlockingQueue, CloseWakesDeadlineWaitersEarly) {
  BlockingQueue<int> q(1);
  q.push(1);  // full: producers wait; consumers would succeed, so test both
  std::atomic<int> closed_count{0};
  std::thread producer([&] {
    int v = 2;
    // Far longer than the test should take; close() must cut it short.
    if (q.try_push_for(v, std::chrono::seconds(30)) == QueueOpStatus::kClosed) {
      ++closed_count;
    }
  });
  BlockingQueue<int> empty(1);
  std::thread consumer([&] {
    int out;
    if (empty.try_pop_for(out, std::chrono::seconds(30)) ==
        QueueOpStatus::kClosed) {
      ++closed_count;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto start = std::chrono::steady_clock::now();
  q.close();
  empty.close();
  producer.join();
  consumer.join();
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
  EXPECT_EQ(closed_count.load(), 2);
}

// MPMC stress through the deadline-aware API only: every producer retries on
// kTimeout (as the pipeline's server does while draining gradients), every
// item must arrive exactly once, and close() must end all consumers.
TEST(BlockingQueue, DeadlineOpsUnderConcurrentProducersConsumers) {
  BlockingQueue<int> q(4);
  constexpr int kPerProducer = 300;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  std::atomic<long> total{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) {
        int v = i;
        QueueOpStatus st;
        do {
          st = q.try_push_for(v, std::chrono::milliseconds(1));
          ASSERT_NE(st, QueueOpStatus::kClosed);
        } while (st != QueueOpStatus::kOk);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int out;
      for (;;) {
        const QueueOpStatus st = q.try_pop_for(out, std::chrono::milliseconds(1));
        if (st == QueueOpStatus::kClosed) return;
        if (st != QueueOpStatus::kOk) continue;
        total += out;
        ++popped;
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  const long expected =
      static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2;
  EXPECT_EQ(total.load(), expected);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 20; ++i) {
    futs.push_back(pool.submit([&] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

}  // namespace
}  // namespace elrec
