// Tests for the embedding substrate: IndexBatch, unique-index mapping, and
// the dense EmbeddingBag baseline (forward pooling + SGD backward).
#include <gtest/gtest.h>

#include "embed/embedding_bag.hpp"
#include "embed/index_batch.hpp"

namespace elrec {
namespace {

TEST(IndexBatch, OnePerSample) {
  const IndexBatch b = IndexBatch::one_per_sample({5, 3, 9});
  EXPECT_EQ(b.batch_size(), 3);
  EXPECT_EQ(b.bag_size(1), 1);
  EXPECT_EQ(b.indices[static_cast<std::size_t>(b.bag_begin(2))], 9);
}

TEST(IndexBatch, FromBagsHandlesEmptyBags) {
  const IndexBatch b = IndexBatch::from_bags({{1, 2}, {}, {3}});
  EXPECT_EQ(b.batch_size(), 3);
  EXPECT_EQ(b.bag_size(0), 2);
  EXPECT_EQ(b.bag_size(1), 0);
  EXPECT_EQ(b.bag_size(2), 1);
  EXPECT_NO_THROW(b.validate(10));
}

TEST(IndexBatch, ValidateRejectsOutOfRange) {
  const IndexBatch b = IndexBatch::one_per_sample({0, 11});
  EXPECT_THROW(b.validate(10), Error);
  EXPECT_NO_THROW(b.validate(12));
}

TEST(IndexBatch, ValidateRejectsNegative) {
  const IndexBatch b = IndexBatch::one_per_sample({-1});
  EXPECT_THROW(b.validate(10), Error);
}

TEST(IndexBatch, ValidateRejectsBadOffsets) {
  IndexBatch b;
  b.indices = {1, 2};
  b.offsets = {0, 2, 1};  // decreasing
  EXPECT_THROW(b.validate(10), Error);
  b.offsets = {1, 2};  // does not start at 0
  EXPECT_THROW(b.validate(10), Error);
}

TEST(UniqueIndexMap, SortedUniqueAndOccurrences) {
  const auto m = build_unique_index_map({7, 3, 7, 1, 3, 3});
  ASSERT_EQ(m.unique.size(), 3u);
  EXPECT_EQ(m.unique[0], 1);
  EXPECT_EQ(m.unique[1], 3);
  EXPECT_EQ(m.unique[2], 7);
  EXPECT_EQ(m.occurrence[0], 2);  // 7
  EXPECT_EQ(m.occurrence[1], 1);  // 3
  EXPECT_EQ(m.occurrence[3], 0);  // 1
}

TEST(UniqueIndexMap, EmptyInput) {
  const auto m = build_unique_index_map({});
  EXPECT_TRUE(m.unique.empty());
  EXPECT_TRUE(m.occurrence.empty());
}

TEST(EmbeddingBag, ForwardGathersRows) {
  Prng rng(1);
  EmbeddingBag bag(10, 4, rng);
  Matrix out;
  bag.forward(IndexBatch::one_per_sample({3, 7}), out);
  ASSERT_EQ(out.rows(), 2);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), bag.weights().at(3, j));
    EXPECT_FLOAT_EQ(out.at(1, j), bag.weights().at(7, j));
  }
}

TEST(EmbeddingBag, ForwardSumsBags) {
  Prng rng(2);
  EmbeddingBag bag(10, 4, rng);
  Matrix out;
  bag.forward(IndexBatch::from_bags({{1, 2, 2}}), out);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.at(0, j),
                bag.weights().at(1, j) + 2.0f * bag.weights().at(2, j), 1e-5f);
  }
}

TEST(EmbeddingBag, EmptyBagYieldsZeroRow) {
  Prng rng(3);
  EmbeddingBag bag(10, 4, rng);
  Matrix out;
  bag.forward(IndexBatch::from_bags({{}}), out);
  for (index_t j = 0; j < 4; ++j) EXPECT_EQ(out.at(0, j), 0.0f);
}

TEST(EmbeddingBag, BackwardAppliesSgd) {
  Prng rng(4);
  EmbeddingBag bag(10, 2, rng);
  const float before = bag.weights().at(5, 0);
  Matrix grad{{1.0f, 0.0f}};
  bag.backward_and_update(IndexBatch::one_per_sample({5}), grad, 0.1f);
  EXPECT_NEAR(bag.weights().at(5, 0), before - 0.1f, 1e-6f);
}

TEST(EmbeddingBag, DuplicateIndexAccumulatesGradient) {
  Prng rng(5);
  EmbeddingBag bag(10, 2, rng);
  const float before = bag.weights().at(5, 0);
  // Same row appears in two samples AND twice in one bag: 3 contributions.
  Matrix grad{{1.0f, 0.0f}, {1.0f, 0.0f}};
  bag.backward_and_update(IndexBatch::from_bags({{5, 5}, {5}}), grad, 0.1f);
  EXPECT_NEAR(bag.weights().at(5, 0), before - 0.3f, 1e-6f);
}

TEST(EmbeddingBag, ParameterBytes) {
  Prng rng(6);
  EmbeddingBag bag(100, 8, rng);
  EXPECT_EQ(bag.parameter_bytes(), 100u * 8u * sizeof(float));
}

TEST(EmbeddingBag, GradShapeMismatchThrows) {
  Prng rng(7);
  EmbeddingBag bag(10, 4, rng);
  Matrix grad(1, 3);  // wrong dim
  EXPECT_THROW(
      bag.backward_and_update(IndexBatch::one_per_sample({1}), grad, 0.1f),
      Error);
}

}  // namespace
}  // namespace elrec
