// Tests for the TT-Rec-style baseline TTTable: forward equals materialized
// dense lookup, backward passes a finite-difference gradient check, and the
// occurrence-gradient accounting matches the batch contents.
#include <gtest/gtest.h>

#include "embed/embedding_bag.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

TTShape small_shape() { return TTShape({3, 4, 5}, {2, 2, 3}, {1, 4, 5, 1}); }

TEST(TTTable, ForwardMatchesMaterializedTable) {
  Prng rng(1);
  TTTable table(55, small_shape(), rng, 0.2f);
  const Matrix dense = table.cores().materialize(55);

  const IndexBatch batch = IndexBatch::from_bags({{0}, {54}, {7, 7, 12}, {}});
  Matrix out;
  table.forward(batch, out);
  ASSERT_EQ(out.rows(), 4);
  for (index_t j = 0; j < 12; ++j) {
    EXPECT_NEAR(out.at(0, j), dense.at(0, j), 1e-4f);
    EXPECT_NEAR(out.at(1, j), dense.at(54, j), 1e-4f);
    EXPECT_NEAR(out.at(2, j), 2.0f * dense.at(7, j) + dense.at(12, j), 1e-4f);
    EXPECT_EQ(out.at(3, j), 0.0f);
  }
}

TEST(TTTable, ForwardValidatesIndices) {
  Prng rng(2);
  TTTable table(55, small_shape(), rng);
  Matrix out;
  EXPECT_THROW(table.forward(IndexBatch::one_per_sample({55}), out), Error);
}

// Finite-difference check: L = sum(out .* W) for fixed random W; dL/dcore
// from backward must match (L(c+eps) - L(c-eps)) / (2 eps).
TEST(TTTable, BackwardGradientsMatchFiniteDifferences) {
  Prng rng(3);
  TTTable table(24, TTShape({2, 3, 4}, {2, 2, 2}, {1, 3, 3, 1}), rng, 0.3f);
  const IndexBatch batch = IndexBatch::from_bags({{0, 5}, {5}, {23, 7, 5}});
  Matrix w(3, 8);
  w.fill_normal(rng);

  auto loss = [&](TTTable& t) {
    Matrix out;
    t.forward(batch, out);
    double l = 0.0;
    for (index_t i = 0; i < out.size(); ++i) {
      l += static_cast<double>(out.data()[i]) * w.data()[i];
    }
    return l;
  };

  // Analytic step: lr = 1 turns the update into w_new = w_old - grad, so the
  // gradient is recoverable as (w_old - w_new).
  TTTable updated = table;
  Matrix out;
  updated.forward(batch, out);
  updated.backward_and_update(batch, w, 1.0f);

  const float eps = 1e-3f;
  for (int k = 0; k < 3; ++k) {
    // Spot-check a handful of entries per core.
    for (index_t e = 0; e < updated.cores().core(k).size();
         e += std::max<index_t>(1, updated.cores().core(k).size() / 7)) {
      TTTable plus = table;
      TTTable minus = table;
      plus.cores().core(k).data()[e] += eps;
      minus.cores().core(k).data()[e] -= eps;
      const double fd = (loss(plus) - loss(minus)) / (2.0 * eps);
      const double analytic =
          static_cast<double>(table.cores().core(k).data()[e]) -
          updated.cores().core(k).data()[e];
      EXPECT_NEAR(analytic, fd, 5e-2 * (1.0 + std::abs(fd)))
          << "core " << k << " entry " << e;
    }
  }
}

TEST(TTTable, BackwardCountsOccurrences) {
  Prng rng(4);
  TTTable table(55, small_shape(), rng);
  const IndexBatch batch = IndexBatch::from_bags({{1, 1, 2}, {2}});
  Matrix out;
  table.forward(batch, out);
  Matrix grad(2, 12);
  grad.fill(0.01f);
  table.backward_and_update(batch, grad, 0.01f);
  EXPECT_EQ(table.last_backward_stats().occurrence_gradients, 4u);
}

TEST(TTTable, TrainingPullsTableTowardTarget) {
  // Regression-style smoke test: repeatedly nudging one row toward a target
  // must reduce the row error (the TT parametrization can realize it).
  Prng rng(5);
  TTTable table(24, TTShape({2, 3, 4}, {2, 2, 2}, {1, 4, 4, 1}), rng, 0.3f);
  const IndexBatch batch = IndexBatch::one_per_sample({13});
  std::vector<float> target(8, 0.5f);

  auto row_error = [&] {
    Matrix out;
    table.forward(batch, out);
    double err = 0.0;
    for (index_t j = 0; j < 8; ++j) {
      const double d = out.at(0, j) - target[static_cast<std::size_t>(j)];
      err += d * d;
    }
    return err;
  };

  const double before = row_error();
  for (int step = 0; step < 60; ++step) {
    Matrix out;
    table.forward(batch, out);
    Matrix grad(1, 8);
    for (index_t j = 0; j < 8; ++j) {
      grad.at(0, j) = out.at(0, j) - target[static_cast<std::size_t>(j)];
    }
    table.backward_and_update(batch, grad, 0.05f);
  }
  EXPECT_LT(row_error(), before * 0.05);
}

TEST(TTTable, ParameterBytesMatchesShape) {
  Prng rng(6);
  const TTShape shape = small_shape();
  TTTable table(55, shape, rng);
  EXPECT_EQ(table.parameter_bytes(), shape.parameter_count() * sizeof(float));
}

TEST(TTTable, WrapsPredecomposedCores) {
  Prng rng(7);
  TTCores cores(small_shape());
  cores.init_normal(rng, 0.1f);
  const Matrix dense = cores.materialize(55);
  TTTable table(55, std::move(cores));
  Matrix out;
  table.forward(IndexBatch::one_per_sample({17}), out);
  for (index_t j = 0; j < 12; ++j) {
    EXPECT_NEAR(out.at(0, j), dense.at(17, j), 1e-5f);
  }
}

}  // namespace
}  // namespace elrec
