
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_breakdown.cpp" "bench/CMakeFiles/bench_fig14_breakdown.dir/bench_fig14_breakdown.cpp.o" "gcc" "bench/CMakeFiles/bench_fig14_breakdown.dir/bench_fig14_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/elrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/elrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/reorder/CMakeFiles/elrec_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/elrec_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/elrec_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/elrec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
