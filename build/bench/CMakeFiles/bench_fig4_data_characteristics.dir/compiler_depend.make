# Empty compiler generated dependencies file for bench_fig4_data_characteristics.
# This may be replaced when dependencies are built.
