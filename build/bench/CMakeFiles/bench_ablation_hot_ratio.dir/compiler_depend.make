# Empty compiler generated dependencies file for bench_ablation_hot_ratio.
# This may be replaced when dependencies are built.
