# Empty dependencies file for bench_fig17_lookup.
# This may be replaced when dependencies are built.
