file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_lookup.dir/bench_fig17_lookup.cpp.o"
  "CMakeFiles/bench_fig17_lookup.dir/bench_fig17_lookup.cpp.o.d"
  "bench_fig17_lookup"
  "bench_fig17_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
