# Empty dependencies file for bench_fig18_backward.
# This may be replaced when dependencies are built.
