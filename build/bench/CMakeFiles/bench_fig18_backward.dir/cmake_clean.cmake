file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_backward.dir/bench_fig18_backward.cpp.o"
  "CMakeFiles/bench_fig18_backward.dir/bench_fig18_backward.cpp.o.d"
  "bench_fig18_backward"
  "bench_fig18_backward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_backward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
