# Empty dependencies file for bench_fig13_large_table.
# This may be replaced when dependencies are built.
