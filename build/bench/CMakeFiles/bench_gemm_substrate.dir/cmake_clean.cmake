file(REMOVE_RECURSE
  "CMakeFiles/bench_gemm_substrate.dir/bench_gemm_substrate.cpp.o"
  "CMakeFiles/bench_gemm_substrate.dir/bench_gemm_substrate.cpp.o.d"
  "bench_gemm_substrate"
  "bench_gemm_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gemm_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
