# Empty compiler generated dependencies file for bench_gemm_substrate.
# This may be replaced when dependencies are built.
