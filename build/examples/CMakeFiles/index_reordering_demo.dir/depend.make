# Empty dependencies file for index_reordering_demo.
# This may be replaced when dependencies are built.
