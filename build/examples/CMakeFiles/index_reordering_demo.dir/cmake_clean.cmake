file(REMOVE_RECURSE
  "CMakeFiles/index_reordering_demo.dir/index_reordering_demo.cpp.o"
  "CMakeFiles/index_reordering_demo.dir/index_reordering_demo.cpp.o.d"
  "index_reordering_demo"
  "index_reordering_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_reordering_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
