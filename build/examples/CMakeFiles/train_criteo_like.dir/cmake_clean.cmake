file(REMOVE_RECURSE
  "CMakeFiles/train_criteo_like.dir/train_criteo_like.cpp.o"
  "CMakeFiles/train_criteo_like.dir/train_criteo_like.cpp.o.d"
  "train_criteo_like"
  "train_criteo_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_criteo_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
