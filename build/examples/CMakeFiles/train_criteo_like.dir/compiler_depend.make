# Empty compiler generated dependencies file for train_criteo_like.
# This may be replaced when dependencies are built.
