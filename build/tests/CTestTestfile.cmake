# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_svd[1]_include.cmake")
include("/root/repo/build/tests/test_embed[1]_include.cmake")
include("/root/repo/build/tests/test_tt_shape[1]_include.cmake")
include("/root/repo/build/tests/test_tt_cores[1]_include.cmake")
include("/root/repo/build/tests/test_tt_svd[1]_include.cmake")
include("/root/repo/build/tests/test_tt_table[1]_include.cmake")
include("/root/repo/build/tests/test_eff_tt_table[1]_include.cmake")
include("/root/repo/build/tests/test_dlrm[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_reorder[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_elrec_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_compression_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_data_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_eff_tt_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_multi_hot[1]_include.cmake")
include("/root/repo/build/tests/test_criteo_tsv[1]_include.cmake")
include("/root/repo/build/tests/test_model_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_dlrm_gradients[1]_include.cmake")
include("/root/repo/build/tests/test_gemm_large[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
