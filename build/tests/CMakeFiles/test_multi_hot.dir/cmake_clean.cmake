file(REMOVE_RECURSE
  "CMakeFiles/test_multi_hot.dir/test_multi_hot.cpp.o"
  "CMakeFiles/test_multi_hot.dir/test_multi_hot.cpp.o.d"
  "test_multi_hot"
  "test_multi_hot.pdb"
  "test_multi_hot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_hot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
