# Empty dependencies file for test_multi_hot.
# This may be replaced when dependencies are built.
