# Empty dependencies file for test_dlrm_gradients.
# This may be replaced when dependencies are built.
