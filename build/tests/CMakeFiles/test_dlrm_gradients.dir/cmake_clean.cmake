file(REMOVE_RECURSE
  "CMakeFiles/test_dlrm_gradients.dir/test_dlrm_gradients.cpp.o"
  "CMakeFiles/test_dlrm_gradients.dir/test_dlrm_gradients.cpp.o.d"
  "test_dlrm_gradients"
  "test_dlrm_gradients.pdb"
  "test_dlrm_gradients[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlrm_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
