# Empty compiler generated dependencies file for test_tt_cores.
# This may be replaced when dependencies are built.
