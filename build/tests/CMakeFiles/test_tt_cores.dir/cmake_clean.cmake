file(REMOVE_RECURSE
  "CMakeFiles/test_tt_cores.dir/test_tt_cores.cpp.o"
  "CMakeFiles/test_tt_cores.dir/test_tt_cores.cpp.o.d"
  "test_tt_cores"
  "test_tt_cores.pdb"
  "test_tt_cores[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tt_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
