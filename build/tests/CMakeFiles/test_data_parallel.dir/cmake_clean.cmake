file(REMOVE_RECURSE
  "CMakeFiles/test_data_parallel.dir/test_data_parallel.cpp.o"
  "CMakeFiles/test_data_parallel.dir/test_data_parallel.cpp.o.d"
  "test_data_parallel"
  "test_data_parallel.pdb"
  "test_data_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
