file(REMOVE_RECURSE
  "CMakeFiles/test_eff_tt_table.dir/test_eff_tt_table.cpp.o"
  "CMakeFiles/test_eff_tt_table.dir/test_eff_tt_table.cpp.o.d"
  "test_eff_tt_table"
  "test_eff_tt_table.pdb"
  "test_eff_tt_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eff_tt_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
