# Empty dependencies file for test_eff_tt_table.
# This may be replaced when dependencies are built.
