# Empty compiler generated dependencies file for test_model_checkpoint.
# This may be replaced when dependencies are built.
