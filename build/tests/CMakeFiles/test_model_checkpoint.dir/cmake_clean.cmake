file(REMOVE_RECURSE
  "CMakeFiles/test_model_checkpoint.dir/test_model_checkpoint.cpp.o"
  "CMakeFiles/test_model_checkpoint.dir/test_model_checkpoint.cpp.o.d"
  "test_model_checkpoint"
  "test_model_checkpoint.pdb"
  "test_model_checkpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
