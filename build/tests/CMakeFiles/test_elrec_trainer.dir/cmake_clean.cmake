file(REMOVE_RECURSE
  "CMakeFiles/test_elrec_trainer.dir/test_elrec_trainer.cpp.o"
  "CMakeFiles/test_elrec_trainer.dir/test_elrec_trainer.cpp.o.d"
  "test_elrec_trainer"
  "test_elrec_trainer.pdb"
  "test_elrec_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elrec_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
