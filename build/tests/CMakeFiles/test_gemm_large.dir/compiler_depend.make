# Empty compiler generated dependencies file for test_gemm_large.
# This may be replaced when dependencies are built.
