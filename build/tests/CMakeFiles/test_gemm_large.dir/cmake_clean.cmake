file(REMOVE_RECURSE
  "CMakeFiles/test_gemm_large.dir/test_gemm_large.cpp.o"
  "CMakeFiles/test_gemm_large.dir/test_gemm_large.cpp.o.d"
  "test_gemm_large"
  "test_gemm_large.pdb"
  "test_gemm_large[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gemm_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
