# Empty compiler generated dependencies file for test_tt_table.
# This may be replaced when dependencies are built.
