file(REMOVE_RECURSE
  "CMakeFiles/test_compression_baselines.dir/test_compression_baselines.cpp.o"
  "CMakeFiles/test_compression_baselines.dir/test_compression_baselines.cpp.o.d"
  "test_compression_baselines"
  "test_compression_baselines.pdb"
  "test_compression_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compression_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
