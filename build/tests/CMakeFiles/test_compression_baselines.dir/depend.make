# Empty dependencies file for test_compression_baselines.
# This may be replaced when dependencies are built.
