file(REMOVE_RECURSE
  "CMakeFiles/test_criteo_tsv.dir/test_criteo_tsv.cpp.o"
  "CMakeFiles/test_criteo_tsv.dir/test_criteo_tsv.cpp.o.d"
  "test_criteo_tsv"
  "test_criteo_tsv.pdb"
  "test_criteo_tsv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_criteo_tsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
