# Empty dependencies file for test_criteo_tsv.
# This may be replaced when dependencies are built.
