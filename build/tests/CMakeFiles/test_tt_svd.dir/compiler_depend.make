# Empty compiler generated dependencies file for test_tt_svd.
# This may be replaced when dependencies are built.
