file(REMOVE_RECURSE
  "CMakeFiles/test_tt_svd.dir/test_tt_svd.cpp.o"
  "CMakeFiles/test_tt_svd.dir/test_tt_svd.cpp.o.d"
  "test_tt_svd"
  "test_tt_svd.pdb"
  "test_tt_svd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tt_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
