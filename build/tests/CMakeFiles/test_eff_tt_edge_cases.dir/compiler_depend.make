# Empty compiler generated dependencies file for test_eff_tt_edge_cases.
# This may be replaced when dependencies are built.
