file(REMOVE_RECURSE
  "CMakeFiles/test_dlrm.dir/test_dlrm.cpp.o"
  "CMakeFiles/test_dlrm.dir/test_dlrm.cpp.o.d"
  "test_dlrm"
  "test_dlrm.pdb"
  "test_dlrm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
