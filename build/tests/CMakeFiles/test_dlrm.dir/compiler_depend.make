# Empty compiler generated dependencies file for test_dlrm.
# This may be replaced when dependencies are built.
