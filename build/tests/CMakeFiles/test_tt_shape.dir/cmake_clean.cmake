file(REMOVE_RECURSE
  "CMakeFiles/test_tt_shape.dir/test_tt_shape.cpp.o"
  "CMakeFiles/test_tt_shape.dir/test_tt_shape.cpp.o.d"
  "test_tt_shape"
  "test_tt_shape.pdb"
  "test_tt_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tt_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
