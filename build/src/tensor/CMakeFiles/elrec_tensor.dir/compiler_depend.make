# Empty compiler generated dependencies file for elrec_tensor.
# This may be replaced when dependencies are built.
