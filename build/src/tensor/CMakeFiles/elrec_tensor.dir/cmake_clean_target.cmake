file(REMOVE_RECURSE
  "libelrec_tensor.a"
)
