file(REMOVE_RECURSE
  "CMakeFiles/elrec_tensor.dir/batched_gemm.cpp.o"
  "CMakeFiles/elrec_tensor.dir/batched_gemm.cpp.o.d"
  "CMakeFiles/elrec_tensor.dir/gemm.cpp.o"
  "CMakeFiles/elrec_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/elrec_tensor.dir/matrix.cpp.o"
  "CMakeFiles/elrec_tensor.dir/matrix.cpp.o.d"
  "CMakeFiles/elrec_tensor.dir/optimizer.cpp.o"
  "CMakeFiles/elrec_tensor.dir/optimizer.cpp.o.d"
  "CMakeFiles/elrec_tensor.dir/svd.cpp.o"
  "CMakeFiles/elrec_tensor.dir/svd.cpp.o.d"
  "CMakeFiles/elrec_tensor.dir/vector_ops.cpp.o"
  "CMakeFiles/elrec_tensor.dir/vector_ops.cpp.o.d"
  "libelrec_tensor.a"
  "libelrec_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
