
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/batched_gemm.cpp" "src/tensor/CMakeFiles/elrec_tensor.dir/batched_gemm.cpp.o" "gcc" "src/tensor/CMakeFiles/elrec_tensor.dir/batched_gemm.cpp.o.d"
  "/root/repo/src/tensor/gemm.cpp" "src/tensor/CMakeFiles/elrec_tensor.dir/gemm.cpp.o" "gcc" "src/tensor/CMakeFiles/elrec_tensor.dir/gemm.cpp.o.d"
  "/root/repo/src/tensor/matrix.cpp" "src/tensor/CMakeFiles/elrec_tensor.dir/matrix.cpp.o" "gcc" "src/tensor/CMakeFiles/elrec_tensor.dir/matrix.cpp.o.d"
  "/root/repo/src/tensor/optimizer.cpp" "src/tensor/CMakeFiles/elrec_tensor.dir/optimizer.cpp.o" "gcc" "src/tensor/CMakeFiles/elrec_tensor.dir/optimizer.cpp.o.d"
  "/root/repo/src/tensor/svd.cpp" "src/tensor/CMakeFiles/elrec_tensor.dir/svd.cpp.o" "gcc" "src/tensor/CMakeFiles/elrec_tensor.dir/svd.cpp.o.d"
  "/root/repo/src/tensor/vector_ops.cpp" "src/tensor/CMakeFiles/elrec_tensor.dir/vector_ops.cpp.o" "gcc" "src/tensor/CMakeFiles/elrec_tensor.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/elrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
