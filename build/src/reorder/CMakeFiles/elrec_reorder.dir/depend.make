# Empty dependencies file for elrec_reorder.
# This may be replaced when dependencies are built.
