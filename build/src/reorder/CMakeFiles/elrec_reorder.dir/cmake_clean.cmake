file(REMOVE_RECURSE
  "CMakeFiles/elrec_reorder.dir/bijection.cpp.o"
  "CMakeFiles/elrec_reorder.dir/bijection.cpp.o.d"
  "CMakeFiles/elrec_reorder.dir/index_graph.cpp.o"
  "CMakeFiles/elrec_reorder.dir/index_graph.cpp.o.d"
  "CMakeFiles/elrec_reorder.dir/louvain.cpp.o"
  "CMakeFiles/elrec_reorder.dir/louvain.cpp.o.d"
  "libelrec_reorder.a"
  "libelrec_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
