file(REMOVE_RECURSE
  "libelrec_reorder.a"
)
