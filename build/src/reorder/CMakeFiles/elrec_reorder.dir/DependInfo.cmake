
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reorder/bijection.cpp" "src/reorder/CMakeFiles/elrec_reorder.dir/bijection.cpp.o" "gcc" "src/reorder/CMakeFiles/elrec_reorder.dir/bijection.cpp.o.d"
  "/root/repo/src/reorder/index_graph.cpp" "src/reorder/CMakeFiles/elrec_reorder.dir/index_graph.cpp.o" "gcc" "src/reorder/CMakeFiles/elrec_reorder.dir/index_graph.cpp.o.d"
  "/root/repo/src/reorder/louvain.cpp" "src/reorder/CMakeFiles/elrec_reorder.dir/louvain.cpp.o" "gcc" "src/reorder/CMakeFiles/elrec_reorder.dir/louvain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/embed/CMakeFiles/elrec_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/elrec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
