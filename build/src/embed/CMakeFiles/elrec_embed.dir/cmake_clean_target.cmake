file(REMOVE_RECURSE
  "libelrec_embed.a"
)
