file(REMOVE_RECURSE
  "CMakeFiles/elrec_embed.dir/embedding_bag.cpp.o"
  "CMakeFiles/elrec_embed.dir/embedding_bag.cpp.o.d"
  "CMakeFiles/elrec_embed.dir/hashed_embedding_bag.cpp.o"
  "CMakeFiles/elrec_embed.dir/hashed_embedding_bag.cpp.o.d"
  "CMakeFiles/elrec_embed.dir/index_batch.cpp.o"
  "CMakeFiles/elrec_embed.dir/index_batch.cpp.o.d"
  "CMakeFiles/elrec_embed.dir/quantized_embedding_bag.cpp.o"
  "CMakeFiles/elrec_embed.dir/quantized_embedding_bag.cpp.o.d"
  "libelrec_embed.a"
  "libelrec_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
