
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/embedding_bag.cpp" "src/embed/CMakeFiles/elrec_embed.dir/embedding_bag.cpp.o" "gcc" "src/embed/CMakeFiles/elrec_embed.dir/embedding_bag.cpp.o.d"
  "/root/repo/src/embed/hashed_embedding_bag.cpp" "src/embed/CMakeFiles/elrec_embed.dir/hashed_embedding_bag.cpp.o" "gcc" "src/embed/CMakeFiles/elrec_embed.dir/hashed_embedding_bag.cpp.o.d"
  "/root/repo/src/embed/index_batch.cpp" "src/embed/CMakeFiles/elrec_embed.dir/index_batch.cpp.o" "gcc" "src/embed/CMakeFiles/elrec_embed.dir/index_batch.cpp.o.d"
  "/root/repo/src/embed/quantized_embedding_bag.cpp" "src/embed/CMakeFiles/elrec_embed.dir/quantized_embedding_bag.cpp.o" "gcc" "src/embed/CMakeFiles/elrec_embed.dir/quantized_embedding_bag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/elrec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
