# Empty compiler generated dependencies file for elrec_embed.
# This may be replaced when dependencies are built.
