# Empty dependencies file for elrec_sim.
# This may be replaced when dependencies are built.
