file(REMOVE_RECURSE
  "CMakeFiles/elrec_sim.dir/device_model.cpp.o"
  "CMakeFiles/elrec_sim.dir/device_model.cpp.o.d"
  "CMakeFiles/elrec_sim.dir/framework_models.cpp.o"
  "CMakeFiles/elrec_sim.dir/framework_models.cpp.o.d"
  "CMakeFiles/elrec_sim.dir/timeline.cpp.o"
  "CMakeFiles/elrec_sim.dir/timeline.cpp.o.d"
  "CMakeFiles/elrec_sim.dir/workload.cpp.o"
  "CMakeFiles/elrec_sim.dir/workload.cpp.o.d"
  "libelrec_sim.a"
  "libelrec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
