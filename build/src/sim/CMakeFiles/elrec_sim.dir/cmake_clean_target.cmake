file(REMOVE_RECURSE
  "libelrec_sim.a"
)
