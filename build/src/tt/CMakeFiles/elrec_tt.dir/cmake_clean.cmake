file(REMOVE_RECURSE
  "CMakeFiles/elrec_tt.dir/tt_checkpoint.cpp.o"
  "CMakeFiles/elrec_tt.dir/tt_checkpoint.cpp.o.d"
  "CMakeFiles/elrec_tt.dir/tt_cores.cpp.o"
  "CMakeFiles/elrec_tt.dir/tt_cores.cpp.o.d"
  "CMakeFiles/elrec_tt.dir/tt_shape.cpp.o"
  "CMakeFiles/elrec_tt.dir/tt_shape.cpp.o.d"
  "CMakeFiles/elrec_tt.dir/tt_svd.cpp.o"
  "CMakeFiles/elrec_tt.dir/tt_svd.cpp.o.d"
  "CMakeFiles/elrec_tt.dir/tt_table.cpp.o"
  "CMakeFiles/elrec_tt.dir/tt_table.cpp.o.d"
  "libelrec_tt.a"
  "libelrec_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
