file(REMOVE_RECURSE
  "libelrec_tt.a"
)
