# Empty dependencies file for elrec_tt.
# This may be replaced when dependencies are built.
