file(REMOVE_RECURSE
  "CMakeFiles/elrec_common.dir/prng.cpp.o"
  "CMakeFiles/elrec_common.dir/prng.cpp.o.d"
  "CMakeFiles/elrec_common.dir/thread_pool.cpp.o"
  "CMakeFiles/elrec_common.dir/thread_pool.cpp.o.d"
  "libelrec_common.a"
  "libelrec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
