# Empty dependencies file for elrec_common.
# This may be replaced when dependencies are built.
