file(REMOVE_RECURSE
  "libelrec_common.a"
)
