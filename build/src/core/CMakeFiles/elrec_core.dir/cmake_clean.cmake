file(REMOVE_RECURSE
  "CMakeFiles/elrec_core.dir/eff_tt_table.cpp.o"
  "CMakeFiles/elrec_core.dir/eff_tt_table.cpp.o.d"
  "CMakeFiles/elrec_core.dir/pointer_prep.cpp.o"
  "CMakeFiles/elrec_core.dir/pointer_prep.cpp.o.d"
  "libelrec_core.a"
  "libelrec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
