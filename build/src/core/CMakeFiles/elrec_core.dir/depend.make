# Empty dependencies file for elrec_core.
# This may be replaced when dependencies are built.
