file(REMOVE_RECURSE
  "libelrec_core.a"
)
