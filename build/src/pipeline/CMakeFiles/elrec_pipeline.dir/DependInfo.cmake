
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/allreduce.cpp" "src/pipeline/CMakeFiles/elrec_pipeline.dir/allreduce.cpp.o" "gcc" "src/pipeline/CMakeFiles/elrec_pipeline.dir/allreduce.cpp.o.d"
  "/root/repo/src/pipeline/data_parallel_trainer.cpp" "src/pipeline/CMakeFiles/elrec_pipeline.dir/data_parallel_trainer.cpp.o" "gcc" "src/pipeline/CMakeFiles/elrec_pipeline.dir/data_parallel_trainer.cpp.o.d"
  "/root/repo/src/pipeline/elrec_trainer.cpp" "src/pipeline/CMakeFiles/elrec_pipeline.dir/elrec_trainer.cpp.o" "gcc" "src/pipeline/CMakeFiles/elrec_pipeline.dir/elrec_trainer.cpp.o.d"
  "/root/repo/src/pipeline/embedding_cache.cpp" "src/pipeline/CMakeFiles/elrec_pipeline.dir/embedding_cache.cpp.o" "gcc" "src/pipeline/CMakeFiles/elrec_pipeline.dir/embedding_cache.cpp.o.d"
  "/root/repo/src/pipeline/host_embedding_store.cpp" "src/pipeline/CMakeFiles/elrec_pipeline.dir/host_embedding_store.cpp.o" "gcc" "src/pipeline/CMakeFiles/elrec_pipeline.dir/host_embedding_store.cpp.o.d"
  "/root/repo/src/pipeline/pipeline_trainer.cpp" "src/pipeline/CMakeFiles/elrec_pipeline.dir/pipeline_trainer.cpp.o" "gcc" "src/pipeline/CMakeFiles/elrec_pipeline.dir/pipeline_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/elrec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dlrm/CMakeFiles/elrec_dlrm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/elrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/elrec_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/elrec_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/elrec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
