# Empty dependencies file for elrec_pipeline.
# This may be replaced when dependencies are built.
