file(REMOVE_RECURSE
  "CMakeFiles/elrec_pipeline.dir/allreduce.cpp.o"
  "CMakeFiles/elrec_pipeline.dir/allreduce.cpp.o.d"
  "CMakeFiles/elrec_pipeline.dir/data_parallel_trainer.cpp.o"
  "CMakeFiles/elrec_pipeline.dir/data_parallel_trainer.cpp.o.d"
  "CMakeFiles/elrec_pipeline.dir/elrec_trainer.cpp.o"
  "CMakeFiles/elrec_pipeline.dir/elrec_trainer.cpp.o.d"
  "CMakeFiles/elrec_pipeline.dir/embedding_cache.cpp.o"
  "CMakeFiles/elrec_pipeline.dir/embedding_cache.cpp.o.d"
  "CMakeFiles/elrec_pipeline.dir/host_embedding_store.cpp.o"
  "CMakeFiles/elrec_pipeline.dir/host_embedding_store.cpp.o.d"
  "CMakeFiles/elrec_pipeline.dir/pipeline_trainer.cpp.o"
  "CMakeFiles/elrec_pipeline.dir/pipeline_trainer.cpp.o.d"
  "libelrec_pipeline.a"
  "libelrec_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
