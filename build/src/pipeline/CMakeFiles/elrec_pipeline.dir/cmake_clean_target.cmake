file(REMOVE_RECURSE
  "libelrec_pipeline.a"
)
