file(REMOVE_RECURSE
  "CMakeFiles/elrec_dlrm.dir/dlrm_model.cpp.o"
  "CMakeFiles/elrec_dlrm.dir/dlrm_model.cpp.o.d"
  "CMakeFiles/elrec_dlrm.dir/interaction.cpp.o"
  "CMakeFiles/elrec_dlrm.dir/interaction.cpp.o.d"
  "CMakeFiles/elrec_dlrm.dir/loss.cpp.o"
  "CMakeFiles/elrec_dlrm.dir/loss.cpp.o.d"
  "CMakeFiles/elrec_dlrm.dir/metrics.cpp.o"
  "CMakeFiles/elrec_dlrm.dir/metrics.cpp.o.d"
  "CMakeFiles/elrec_dlrm.dir/mlp.cpp.o"
  "CMakeFiles/elrec_dlrm.dir/mlp.cpp.o.d"
  "CMakeFiles/elrec_dlrm.dir/model_checkpoint.cpp.o"
  "CMakeFiles/elrec_dlrm.dir/model_checkpoint.cpp.o.d"
  "libelrec_dlrm.a"
  "libelrec_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
