# Empty dependencies file for elrec_dlrm.
# This may be replaced when dependencies are built.
