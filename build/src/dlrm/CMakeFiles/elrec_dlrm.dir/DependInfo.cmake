
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dlrm/dlrm_model.cpp" "src/dlrm/CMakeFiles/elrec_dlrm.dir/dlrm_model.cpp.o" "gcc" "src/dlrm/CMakeFiles/elrec_dlrm.dir/dlrm_model.cpp.o.d"
  "/root/repo/src/dlrm/interaction.cpp" "src/dlrm/CMakeFiles/elrec_dlrm.dir/interaction.cpp.o" "gcc" "src/dlrm/CMakeFiles/elrec_dlrm.dir/interaction.cpp.o.d"
  "/root/repo/src/dlrm/loss.cpp" "src/dlrm/CMakeFiles/elrec_dlrm.dir/loss.cpp.o" "gcc" "src/dlrm/CMakeFiles/elrec_dlrm.dir/loss.cpp.o.d"
  "/root/repo/src/dlrm/metrics.cpp" "src/dlrm/CMakeFiles/elrec_dlrm.dir/metrics.cpp.o" "gcc" "src/dlrm/CMakeFiles/elrec_dlrm.dir/metrics.cpp.o.d"
  "/root/repo/src/dlrm/mlp.cpp" "src/dlrm/CMakeFiles/elrec_dlrm.dir/mlp.cpp.o" "gcc" "src/dlrm/CMakeFiles/elrec_dlrm.dir/mlp.cpp.o.d"
  "/root/repo/src/dlrm/model_checkpoint.cpp" "src/dlrm/CMakeFiles/elrec_dlrm.dir/model_checkpoint.cpp.o" "gcc" "src/dlrm/CMakeFiles/elrec_dlrm.dir/model_checkpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/embed/CMakeFiles/elrec_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/elrec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/elrec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
