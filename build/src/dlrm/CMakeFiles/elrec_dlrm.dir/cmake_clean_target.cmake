file(REMOVE_RECURSE
  "libelrec_dlrm.a"
)
