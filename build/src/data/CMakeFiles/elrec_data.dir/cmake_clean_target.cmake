file(REMOVE_RECURSE
  "libelrec_data.a"
)
