# Empty dependencies file for elrec_data.
# This may be replaced when dependencies are built.
