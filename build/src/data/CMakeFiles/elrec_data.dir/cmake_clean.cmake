file(REMOVE_RECURSE
  "CMakeFiles/elrec_data.dir/criteo_tsv.cpp.o"
  "CMakeFiles/elrec_data.dir/criteo_tsv.cpp.o.d"
  "CMakeFiles/elrec_data.dir/dataset_spec.cpp.o"
  "CMakeFiles/elrec_data.dir/dataset_spec.cpp.o.d"
  "CMakeFiles/elrec_data.dir/stats.cpp.o"
  "CMakeFiles/elrec_data.dir/stats.cpp.o.d"
  "CMakeFiles/elrec_data.dir/synthetic.cpp.o"
  "CMakeFiles/elrec_data.dir/synthetic.cpp.o.d"
  "CMakeFiles/elrec_data.dir/zipf.cpp.o"
  "CMakeFiles/elrec_data.dir/zipf.cpp.o.d"
  "libelrec_data.a"
  "libelrec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elrec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
