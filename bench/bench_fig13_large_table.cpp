// Fig. 13: training throughput on a single huge embedding table
// (40M rows x dim 128, ~19 GB dense — exceeds one 16 GB GPU), comparing
// EL-Rec (TT data-parallel) vs HugeCTR (row-sharded model parallel) vs
// TorchRec (column-sharded model parallel) on 1-4 V100s.
#include "bench_util.hpp"
#include "sim_inputs.hpp"
#include "sim/framework_models.hpp"

using namespace elrec;
using namespace elrec::benchutil;

int main() {
  header("Fig. 13: single 40M x 128 embedding table, throughput (samples/s)");
  const DeviceSpec dev = v100();

  DatasetSpec spec;
  spec.name = "40M single table";
  spec.num_dense = 13;
  spec.table_rows = {40000000};
  spec.zipf_s = 1.1;
  DlrmWorkload w = DlrmWorkload::from_spec(spec, 4096, 128, 64);
  ground_workload_stats(w, spec);

  const double dense_gb = 40000000.0 * 128 * 4 / 1e9;
  note("dense footprint: " + fmt(dense_gb, 1) + " GB vs " +
       fmt(dev.hbm_gb, 0) + " GB HBM -> sharding or compression required");
  note("TT(rank 64) footprint: " + fmt(w.tt_parameter_bytes() / 1e6, 1) +
       " MB -> fits a single GPU");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"GPUs", "EL-Rec", "HugeCTR", "TorchRec", "EL-Rec/HugeCTR",
                  "EL-Rec/TorchRec"});
  for (int gpus : {1, 2, 4}) {
    const double el = model_elrec_large_table(w, dev, gpus).throughput(4096);
    std::string hc = "OOM", tr = "OOM", rhc = "-", rtr = "-";
    // Model-parallel baselines need >= 2 GPUs to hold the dense table.
    if (dense_gb / gpus < dev.hbm_gb * 0.9) {
      const double h = model_hugectr_large_table(w, dev, gpus).throughput(4096);
      const double t = model_torchrec_large_table(w, dev, gpus).throughput(4096);
      hc = fmt(h, 0);
      tr = fmt(t, 0);
      rhc = fmt(el / h, 2) + "x";
      rtr = fmt(el / t, 2) + "x";
    }
    rows.push_back({std::to_string(gpus), fmt(el, 0), hc, tr, rhc, rtr});
  }
  print_table(rows);
  note("Paper shape: EL-Rec ~1.07x over HugeCTR, ~1.35x over TorchRec, and");
  note("uniquely able to train the table on ONE GPU.");
  return 0;
}
