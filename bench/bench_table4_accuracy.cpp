// Table IV + Fig. 15: prediction accuracy parity and loss convergence —
// REAL training.
//
// Trains three DLRMs that differ only in their embedding tables —
//   DLRM   : dense nn.EmbeddingBag equivalents,
//   TT-Rec : baseline TT tables (per-occurrence kernels),
//   EL-Rec : Eff-TT tables,
// on teacher-labeled synthetic versions of the three datasets (cardinalities
// scaled 2000x so the run finishes on one CPU core), then reports test
// accuracy / AUC (Table IV) and prints the Terabyte-like loss curve
// (Fig. 15).
#include <memory>

#include "bench_util.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "dlrm/dlrm_model.hpp"
#include "dlrm/loss.hpp"
#include "dlrm/metrics.hpp"
#include "embed/embedding_bag.hpp"
#include "tt/tt_table.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

constexpr index_t kDim = 16;
constexpr index_t kRank = 8;
constexpr index_t kBatch = 256;
constexpr index_t kTrainBatches = 600;
constexpr index_t kTTThreshold = 500;  // scaled analogue of ">= 1M rows"
constexpr float kLr = 0.15f;

enum class TableKind { kDense, kTTRec, kElRec };

std::unique_ptr<IEmbeddingTable> make_table(TableKind kind, index_t rows,
                                            Prng& rng) {
  if (kind == TableKind::kDense || rows < kTTThreshold) {
    return std::make_unique<EmbeddingBag>(rows, kDim, rng);
  }
  const TTShape shape = TTShape::balanced(rows, kDim, 3, kRank);
  if (kind == TableKind::kTTRec) {
    return std::make_unique<TTTable>(rows, shape, rng);
  }
  return std::make_unique<EffTTTable>(rows, shape, rng);
}

struct RunResult {
  double accuracy = 0.0;
  double auc = 0.0;
  double eval_logloss = 0.0;
  double final_loss = 0.0;
  std::vector<float> curve;
};

RunResult train_and_eval(TableKind kind, const DatasetSpec& spec,
                         std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = spec.num_dense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {32};
  cfg.top_hidden = {32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) {
    tables.push_back(make_table(kind, rows, rng));
  }
  DlrmModel model(cfg, std::move(tables), rng);

  SyntheticDataset data(spec, 4242);
  RunResult result;
  RunningMean window;
  for (index_t b = 0; b < kTrainBatches; ++b) {
    const float loss = model.train_step(data.next_batch(kBatch), kLr);
    window.add(loss);
    if ((b + 1) % 10 == 0) {
      result.curve.push_back(static_cast<float>(window.mean()));
      window.reset();
    }
  }
  result.final_loss = result.curve.back();

  std::vector<float> probs, all_probs, all_labels;
  RunningMean logloss;
  for (std::uint64_t salt = 0; salt < 8; ++salt) {
    const MiniBatch eval = data.eval_batch(512, salt);
    Matrix logits;
    model.forward(eval, logits);
    logloss.add(bce_with_logits_loss(logits, eval.labels));
    model.predict(eval, probs);
    all_probs.insert(all_probs.end(), probs.begin(), probs.end());
    all_labels.insert(all_labels.end(), eval.labels.begin(), eval.labels.end());
  }
  result.accuracy = binary_accuracy(all_probs, all_labels);
  result.auc = roc_auc(all_probs, all_labels);
  result.eval_logloss = logloss.mean();
  return result;
}

}  // namespace

int main() {
  header("Table IV: prediction accuracy (%) — dense vs TT-Rec vs EL-Rec tables");
  note("datasets scaled 2000x; labels from a hidden teacher model; " +
       std::to_string(kTrainBatches) + " batches of " + std::to_string(kBatch));

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Model", "Avazu", "", "", "Criteo TB", "", "",
                  "Criteo Kaggle", "", ""});
  rows.push_back({"", "acc", "auc", "logloss", "acc", "auc", "logloss",
                  "acc", "auc", "logloss"});

  std::vector<float> tb_curves[3];
  const char* names[] = {"DLRM", "TT-Rec", "EL-Rec"};
  const TableKind kinds[] = {TableKind::kDense, TableKind::kTTRec,
                             TableKind::kElRec};
  std::vector<std::vector<std::string>> result_rows(3);
  for (int k = 0; k < 3; ++k) result_rows[static_cast<std::size_t>(k)] = {names[k]};

  int spec_pos = 0;
  for (const DatasetSpec& full : paper_dataset_specs()) {
    const DatasetSpec spec = full.scaled(2000);
    for (int k = 0; k < 3; ++k) {
      const RunResult r = train_and_eval(kinds[k], spec, 1234);
      result_rows[static_cast<std::size_t>(k)].push_back(
          fmt(r.accuracy * 100, 2));
      result_rows[static_cast<std::size_t>(k)].push_back(fmt(r.auc, 3));
      result_rows[static_cast<std::size_t>(k)].push_back(
          fmt(r.eval_logloss, 4));
      if (spec_pos == 1) tb_curves[k] = r.curve;  // Criteo TB position
    }
    ++spec_pos;
  }
  for (auto& r : result_rows) rows.push_back(r);
  print_table(rows);
  note("TT-Rec and EL-Rec agree exactly (same math, different kernel");
  note("schedule — the equivalence the test suite proves). Both track the");
  note("dense baseline; remaining gaps are single-seed run variance at this");
  note("2000x-scaled setting (the paper reports <0.1% at full scale).");

  header("Fig. 15: loss convergence on Criteo-Terabyte-like data");
  std::printf("  %-8s %-10s %-10s %-10s\n", "batch", "DLRM", "TT-Rec",
              "EL-Rec");
  for (std::size_t i = 0; i < tb_curves[0].size(); ++i) {
    std::printf("  %-8zu %-10.4f %-10.4f %-10.4f\n", (i + 1) * 10,
                tb_curves[0][i], tb_curves[1][i], tb_curves[2][i]);
  }
  note("All three curves track each other: tensorization does not slow");
  note("convergence (paper Fig. 15).");
  return 0;
}
