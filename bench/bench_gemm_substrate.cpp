// Substrate sanity bench: GEMM and pointer-list batched GEMM throughput for
// the shapes the Eff-TT kernels actually launch. Not a paper figure, but
// the baseline every TT measurement stands on.
// `--quick` skips google-benchmark and runs a fixed shape set in a few
// seconds, writing BENCH_gemm_substrate.json for the perf-regression harness.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tensor/batched_gemm.hpp"
#include "tensor/gemm.hpp"

namespace elrec {
namespace {

void BM_Gemm_Square(benchmark::State& state) {
  const index_t n = state.range(0);
  Prng rng(1);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_normal(rng);
  b.fill_normal(rng);
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kNo, n, n, n, 1.0f, a.data(), n, b.data(), n,
         0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm_Square)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->MinTime(0.05);

// The Eff-TT stage-1 shape: (n1 x R1) * (R1 x n2 R2), thousands of products.
void BM_BatchedGemm_TTPrefix(benchmark::State& state) {
  const index_t products = state.range(0);
  const index_t n1 = 4, r1 = 16, n2r2 = 4 * 16;
  Prng rng(2);
  Matrix a(products * n1, r1), b(products * r1, n2r2), c(products * n1, n2r2);
  a.fill_normal(rng);
  b.fill_normal(rng);
  std::vector<const float*> pa, pb;
  std::vector<float*> pc;
  for (index_t i = 0; i < products; ++i) {
    pa.push_back(a.row(i * n1));
    pb.push_back(b.row(i * r1));
    pc.push_back(c.row(i * n1));
  }
  BatchedGemmShape shape{n1, n2r2, r1, r1, n2r2, n2r2,
                         1.0f, 0.0f, Trans::kNo, Trans::kNo};
  for (auto _ : state) {
    batched_gemm(shape, pa, pb, pc);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n1 * n2r2 * r1 * products *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchedGemm_TTPrefix)->Arg(256)->Arg(1024)->Arg(4096)->MinTime(0.05);

void BM_Gemm_TallSkinny(benchmark::State& state) {
  // MLP-like: (B x 64) * (64 x 256).
  const index_t b = state.range(0);
  Prng rng(3);
  Matrix x(b, 64), w(64, 256), y(b, 256);
  x.fill_normal(rng);
  w.fill_normal(rng);
  for (auto _ : state) {
    gemm(Trans::kNo, Trans::kNo, b, 256, 64, 1.0f, x.data(), 64, w.data(),
         256, 0.0f, y.data(), 256);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * b * 256 * 64 * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm_TallSkinny)->Arg(512)->Arg(4096)->MinTime(0.05);

// Best-of-5 GFLOP/s of `fn`, which must perform `flops` float operations.
template <typename Fn>
double quick_gflops(double flops, Fn&& fn) {
  fn();  // warm up caches and the page tables
  const double secs = benchutil::time_best_seconds(fn, 5);
  return flops / secs / 1e9;
}

}  // namespace

int run_quick() {
  benchutil::header("GEMM substrate (--quick)");
  benchutil::JsonBenchReport report("gemm_substrate");
  std::vector<std::vector<std::string>> table{{"kernel", "GFLOP/s"}};
  const auto record = [&](const std::string& name, double gf) {
    report.add(name, {{"GFLOP/s", gf}});
    table.push_back({name, benchutil::fmt(gf)});
  };
  Prng rng(1);

  {
    // Blocked NN path, cache-resident square shape.
    const index_t n = 256;
    Matrix a(n, n), b(n, n), c(n, n);
    a.fill_normal(rng);
    b.fill_normal(rng);
    const double gf = quick_gflops(2.0 * n * n * n, [&] {
      gemm(Trans::kNo, Trans::kNo, n, n, n, 1.0f, a.data(), n, b.data(), n,
           0.0f, c.data(), n);
    });
    record("gemm_nn_256", gf);
  }
  {
    // MLP-like tall-skinny NN shape.
    const index_t m = 2048;
    Matrix x(m, 64), w(64, 256), y(m, 256);
    x.fill_normal(rng);
    w.fill_normal(rng);
    const double gf = quick_gflops(2.0 * m * 256 * 64, [&] {
      gemm(Trans::kNo, Trans::kNo, m, 256, 64, 1.0f, x.data(), 64, w.data(),
           256, 0.0f, y.data(), 256);
    });
    record("gemm_nn_tallskinny_2048x256x64", gf);
  }
  {
    // The Eff-TT stage-1 pointer-list shape: (4 x 16) * (16 x 64) x 1024.
    const index_t products = 1024, n1 = 4, r1 = 16, n2r2 = 64;
    Matrix a(products * n1, r1), b(products * r1, n2r2), c(products * n1, n2r2);
    a.fill_normal(rng);
    b.fill_normal(rng);
    std::vector<const float*> pa, pb;
    std::vector<float*> pc;
    for (index_t i = 0; i < products; ++i) {
      pa.push_back(a.row(i * n1));
      pb.push_back(b.row(i * r1));
      pc.push_back(c.row(i * n1));
    }
    BatchedGemmShape shape{n1,   n2r2, r1,        r1,        n2r2, n2r2,
                           1.0f, 0.0f, Trans::kNo, Trans::kNo};
    const double gf = quick_gflops(2.0 * n1 * n2r2 * r1 * products,
                                   [&] { batched_gemm(shape, pa, pb, pc); });
    record("batched_gemm_ttprefix_1024", gf);
  }
  {
    // gemv, both orientations.
    const index_t m = 2048, n = 2048;
    Matrix a(m, n);
    a.fill_normal(rng);
    std::vector<float> x(static_cast<std::size_t>(n), 0.5f);
    std::vector<float> xt(static_cast<std::size_t>(m), 0.5f);
    std::vector<float> y(static_cast<std::size_t>(m));
    std::vector<float> yt(static_cast<std::size_t>(n));
    const double gf_n = quick_gflops(2.0 * m * n, [&] {
      gemv(Trans::kNo, m, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
    });
    const double gf_t = quick_gflops(2.0 * m * n, [&] {
      gemv(Trans::kYes, m, n, 1.0f, a.data(), n, xt.data(), 0.0f, yt.data());
    });
    record("gemv_n_2048", gf_n);
    record("gemv_t_2048", gf_t);
  }

  benchutil::print_table(table);
  return report.write() ? 0 : 1;
}

}  // namespace elrec

int main(int argc, char** argv) {
  if (elrec::benchutil::has_flag(argc, argv, "--quick")) {
    return elrec::run_quick();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
