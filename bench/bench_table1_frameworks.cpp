// Table I: qualitative comparison of DLRM training frameworks.
//
// The rows are derived from the cost models: "CPU-GPU Comm. Latency" is the
// modeled share of iteration time spent on host<->device transfers, and
// "Compression Overhead" the share spent on TT compute beyond a dense
// lookup — so the qualitative labels are backed by the same numbers that
// drive Figs. 11-16.
#include "bench_util.hpp"
#include "data/dataset_spec.hpp"
#include "sim/framework_models.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

std::string comm_label(double fraction) {
  if (fraction < 0.05) return "Low";
  if (fraction < 0.55) return "Moderate";
  return "High";
}

double component_share(const IterationCost& c, const std::string& needle) {
  double share = 0.0;
  for (const auto& [name, sec] : c.components) {
    if (name.find(needle) != std::string::npos) share += sec;
  }
  return share / c.total_sequential();
}

}  // namespace

int main() {
  header("Table I: DLRM framework comparison (labels derived from the cost models)");
  const DeviceSpec dev = v100();
  const HostSpec host = aws_host();
  const DlrmWorkload w =
      DlrmWorkload::from_spec(criteo_terabyte_spec(), 4096, 64, 128);

  const IterationCost dlrm = model_dlrm_ps(w, dev, host);
  const IterationCost ttrec = model_ttrec(w, dev);
  const IterationCost elrec = model_elrec(w, dev);
  const IterationCost fae = model_fae(w, dev, host);

  const double dlrm_comm = component_share(dlrm, "h2d") +
                           component_share(dlrm, "d2h") +
                           component_share(dlrm, "cpu:embedding");
  // FAE's cold batches take the PS path.
  const double fae_comm = component_share(fae, "cold") * dlrm_comm;
  const double ttrec_tt = component_share(ttrec, "tt_");
  const double elrec_tt = component_share(elrec, "tt_");

  print_table({
      {"Framework", "Host Memory", "Embedding Compression",
       "CPU-GPU Comm. Latency", "Compression Overhead"},
      {"DLRM", "yes", "no", comm_label(dlrm_comm), "N/A"},
      {"FAE", "yes", "no", comm_label(fae_comm), "N/A"},
      {"TT-Rec", "no", "yes (TT)", "N/A",
       ttrec_tt > 0.4 ? "High" : "Low"},
      {"EL-Rec", "yes", "yes (Eff-TT)", "Low",
       elrec_tt > 0.4 ? "High" : "Low"},
  });
  note("comm fraction DLRM=" + fmt(dlrm_comm, 2) + ", FAE=" + fmt(fae_comm, 2));
  note("TT compute fraction TT-Rec=" + fmt(ttrec_tt, 2) +
       ", EL-Rec=" + fmt(elrec_tt, 2));
  return 0;
}
