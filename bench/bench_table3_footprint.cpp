// Table III: memory footprint of dense embedding tables vs. Eff-TT tables.
//
// Reproduces the paper's memory-saving claim: per-table dense bytes, TT
// bytes at ranks 64 and 128, and the compression ratio; plus the Fig. 13
// 40M x 128 table that exceeds single-GPU HBM dense but fits trivially as TT.
#include "bench_util.hpp"
#include "data/dataset_spec.hpp"
#include "tt/tt_shape.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

void footprint_row(std::vector<std::vector<std::string>>& rows,
                   const std::string& name, index_t table_rows, index_t dim) {
  const double dense = static_cast<double>(table_rows) * dim * sizeof(float);
  const TTShape tt64 = TTShape::balanced(table_rows, dim, 3, 64);
  const TTShape tt128 = TTShape::balanced(table_rows, dim, 3, 128);
  rows.push_back({name, std::to_string(table_rows), std::to_string(dim),
                  fmt_bytes(dense),
                  fmt_bytes(static_cast<double>(tt64.parameter_count()) *
                            sizeof(float)),
                  fmt(tt64.compression_ratio(table_rows), 0) + "x",
                  fmt_bytes(static_cast<double>(tt128.parameter_count()) *
                            sizeof(float)),
                  fmt(tt128.compression_ratio(table_rows), 0) + "x"});
}

}  // namespace

int main() {
  header("Table III: embedding table footprint — dense vs TT (ranks 64/128)");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Table", "Rows", "Dim", "Dense", "TT(r=64)", "Ratio",
                  "TT(r=128)", "Ratio"});
  footprint_row(rows, "Fig.14 small", 2500000, 64);
  footprint_row(rows, "Fig.14 medium", 5000000, 64);
  footprint_row(rows, "Fig.14 large", 10000000, 64);
  footprint_row(rows, "Criteo-TB max", 39884406, 64);
  footprint_row(rows, "Fig.13 table", 40000000, 128);
  print_table(rows);

  header("Per-dataset total embedding footprint (tables >= 1M rows compressed)");
  std::vector<std::vector<std::string>> totals;
  totals.push_back({"Dataset", "Dense total", "EL-Rec total (TT r=64 + dense small)"});
  for (const DatasetSpec& spec : paper_dataset_specs()) {
    double dense = 0.0, elrec = 0.0;
    for (index_t r : spec.table_rows) {
      const double d = static_cast<double>(r) * 64 * sizeof(float);
      dense += d;
      if (r >= 1000000) {
        const TTShape tt = TTShape::balanced(r, 64, 3, 64);
        elrec += static_cast<double>(tt.parameter_count()) * sizeof(float);
      } else {
        elrec += d;
      }
    }
    totals.push_back({spec.name, fmt_bytes(dense), fmt_bytes(elrec)});
  }
  print_table(totals);
  note("All EL-Rec totals fit a 16 GB GPU; Criteo Terabyte dense does not.");
  return 0;
}
