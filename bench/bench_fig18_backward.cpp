// Fig. 18: Eff-TT table BACKWARD latency vs batch size — REAL measurements
// (google-benchmark) of this repo's kernels on one CPU core.
//
// Series:
//   TTRec          — baseline backward: per-occurrence gradients, post-hoc
//                    aggregation, unfused update
//   EffTT_NoAgg    — Eff-TT with in-advance aggregation disabled
//   EffTT_NoFused  — Eff-TT with the fused update disabled
//   EffTT          — full Eff-TT backward
//   EffTT_Reorder  — full + index reordering
// Paper shape: full Eff-TT ~1.70x over TT-Rec (1.40x from aggregation,
// 1.15x from the fused update, 1.06x from reordering).
// `--quick` measures EffTT backward throughput (batches/s) at 1 thread and
// 8 threads, checks the updated cores are bitwise identical across the two
// runs, and writes BENCH_fig18_backward.json for the perf-regression harness.
#include <benchmark/benchmark.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_util.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "reorder/bijection.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

constexpr index_t kRows = 500000;
constexpr index_t kDim = 32;
constexpr index_t kRank = 16;

DatasetSpec bench_spec() {
  DatasetSpec spec;
  spec.name = "fig18";
  spec.num_dense = 1;
  spec.table_rows = {kRows};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.2;
  spec.locality_groups = 16;
  spec.locality_fraction = 0.5;
  return spec;
}

std::vector<IndexBatch> make_batches(index_t batch_size, int count) {
  SyntheticDataset data(bench_spec(), 8765);
  std::vector<IndexBatch> batches;
  for (int i = 0; i < count; ++i) {
    batches.push_back(data.next_batch(batch_size).sparse[0]);
  }
  return batches;
}

std::vector<index_t> reorder_mapping(std::uint64_t data_seed) {
  // Built offline from the same-seeded stream the benchmark measures on
  // (the paper generates the bijection from the training data).
  static const std::vector<index_t> mapping = [data_seed] {
    SyntheticDataset data(bench_spec(), data_seed);
    ReorderPipeline pipeline(kRows, 0.005, 5);
    for (int b = 0; b < 128; ++b) {
      pipeline.add_batch(data.next_batch(1024).sparse[0].indices);
    }
    return pipeline.finish().mapping;
  }();
  return mapping;
}

// Times forward+backward minus a separately-measured forward would be
// noisy; instead time backward_and_update alone, with the forward executed
// outside the timed region each iteration (backward needs its cache).
template <typename Table>
void run_backward(benchmark::State& state, Table& table, index_t batch_size) {
  const auto batches = make_batches(batch_size, 4);
  Prng grad_rng(3);
  Matrix grad(batch_size, kDim);
  grad.fill_normal(grad_rng, 0.0f, 0.01f);
  Matrix out;
  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const IndexBatch& batch = batches[i % batches.size()];
    table.forward(batch, out);
    state.ResumeTiming();
    table.backward_and_update(batch, grad, 0.01f);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch_size);
}

void BM_Backward_TTRec(benchmark::State& state) {
  Prng rng(1);
  TTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  run_backward(state, table, state.range(0));
}

void BM_Backward_EffTT_NoAgg(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng,
                   EffTTConfig{true, false, true});
  run_backward(state, table, state.range(0));
}

void BM_Backward_EffTT_NoFused(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng,
                   EffTTConfig{true, true, false});
  run_backward(state, table, state.range(0));
}

void BM_Backward_EffTT(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  run_backward(state, table, state.range(0));
}

void BM_Backward_EffTT_Reorder(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  table.set_index_bijection(reorder_mapping(8765));
  run_backward(state, table, state.range(0));
}

#define BACKWARD_ARGS \
  ->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)->MinTime(0.05)

BENCHMARK(BM_Backward_TTRec) BACKWARD_ARGS;
BENCHMARK(BM_Backward_EffTT_NoAgg) BACKWARD_ARGS;
BENCHMARK(BM_Backward_EffTT_NoFused) BACKWARD_ARGS;
BENCHMARK(BM_Backward_EffTT) BACKWARD_ARGS;
BENCHMARK(BM_Backward_EffTT_Reorder) BACKWARD_ARGS;

void set_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

// Trains `table` for iters steps on the pre-generated batches and returns
// backward-only throughput (batches/s): the forward runs untimed each step
// because backward_and_update consumes its cache.
double backward_batches_per_s(EffTTTable& table,
                              const std::vector<IndexBatch>& batches,
                              const Matrix& grad, int iters) {
  Matrix out;
  double secs = 0.0;
  for (int i = 0; i < iters; ++i) {
    const IndexBatch& batch = batches[static_cast<std::size_t>(i) % batches.size()];
    table.forward(batch, out);
    secs += benchutil::time_best_seconds(
        [&] { table.backward_and_update(batch, grad, 0.01f); }, 1);
  }
  return iters / secs;
}

}  // namespace

int run_quick() {
  benchutil::header("Fig. 18 backward (--quick, batch 2048, EffTT)");
  constexpr index_t kBatch = 2048;
  constexpr int kIters = 8;
  const auto batches = make_batches(kBatch, 4);
  Prng grad_rng(3);
  Matrix grad(kBatch, kDim);
  grad.fill_normal(grad_rng, 0.0f, 0.01f);
  const TTShape shape = TTShape::balanced(kRows, kDim, 3, kRank);

  // Two identically-seeded tables trained on the same stream; only the
  // OpenMP thread count differs. On a single-core host the 8-thread run
  // time-slices, so speedup ~1x there is expected — the honest number is
  // still emitted, and the bitwise check is the part that must always hold.
  Prng rng1(1), rng8(1);
  EffTTTable t1(kRows, shape, rng1);
  EffTTTable t8(kRows, shape, rng8);

  set_threads(1);
  const double rate1 = backward_batches_per_s(t1, batches, grad, kIters);
  set_threads(8);
  const double rate8 = backward_batches_per_s(t8, batches, grad, kIters);
  set_threads(1);

  float max_diff = 0.0f;
  for (int k = 0; k < t1.cores().shape().num_cores(); ++k) {
    max_diff = std::max(
        max_diff, Matrix::max_abs_diff(t1.cores().core(k), t8.cores().core(k)));
  }
  const bool bitwise = max_diff == 0.0f;

  benchutil::JsonBenchReport report("fig18_backward");
  report.add("EffTT_backward_t1", {{"batches/s", rate1}});
  report.add("EffTT_backward_t8", {{"batches/s", rate8}});
  report.add("EffTT_backward_speedup_t8_over_t1",
             {{"speedup", rate8 / rate1}});
  report.add("EffTT_backward_bitwise_identical_across_threads",
             {{"ok", bitwise ? 1.0 : 0.0}});

  benchutil::print_table({{"series", "batches/s"},
                          {"EffTT_backward_t1", benchutil::fmt(rate1)},
                          {"EffTT_backward_t8", benchutil::fmt(rate8)}});
  benchutil::note("t8/t1 speedup: " + benchutil::fmt(rate8 / rate1) +
                  " (1.0x expected on a single-core host)");
  benchutil::note(std::string("cores bitwise identical across thread counts: ") +
                  (bitwise ? "yes" : "NO"));
  if (!report.write()) return 1;
  return bitwise ? 0 : 1;
}

}  // namespace elrec

int main(int argc, char** argv) {
  if (elrec::benchutil::has_flag(argc, argv, "--quick")) {
    return elrec::run_quick();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
