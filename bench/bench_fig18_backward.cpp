// Fig. 18: Eff-TT table BACKWARD latency vs batch size — REAL measurements
// (google-benchmark) of this repo's kernels on one CPU core.
//
// Series:
//   TTRec          — baseline backward: per-occurrence gradients, post-hoc
//                    aggregation, unfused update
//   EffTT_NoAgg    — Eff-TT with in-advance aggregation disabled
//   EffTT_NoFused  — Eff-TT with the fused update disabled
//   EffTT          — full Eff-TT backward
//   EffTT_Reorder  — full + index reordering
// Paper shape: full Eff-TT ~1.70x over TT-Rec (1.40x from aggregation,
// 1.15x from the fused update, 1.06x from reordering).
#include <benchmark/benchmark.h>

#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "reorder/bijection.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

constexpr index_t kRows = 500000;
constexpr index_t kDim = 32;
constexpr index_t kRank = 16;

DatasetSpec bench_spec() {
  DatasetSpec spec;
  spec.name = "fig18";
  spec.num_dense = 1;
  spec.table_rows = {kRows};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.2;
  spec.locality_groups = 16;
  spec.locality_fraction = 0.5;
  return spec;
}

std::vector<IndexBatch> make_batches(index_t batch_size, int count) {
  SyntheticDataset data(bench_spec(), 8765);
  std::vector<IndexBatch> batches;
  for (int i = 0; i < count; ++i) {
    batches.push_back(data.next_batch(batch_size).sparse[0]);
  }
  return batches;
}

std::vector<index_t> reorder_mapping(std::uint64_t data_seed) {
  // Built offline from the same-seeded stream the benchmark measures on
  // (the paper generates the bijection from the training data).
  static const std::vector<index_t> mapping = [data_seed] {
    SyntheticDataset data(bench_spec(), data_seed);
    ReorderPipeline pipeline(kRows, 0.005, 5);
    for (int b = 0; b < 128; ++b) {
      pipeline.add_batch(data.next_batch(1024).sparse[0].indices);
    }
    return pipeline.finish().mapping;
  }();
  return mapping;
}

// Times forward+backward minus a separately-measured forward would be
// noisy; instead time backward_and_update alone, with the forward executed
// outside the timed region each iteration (backward needs its cache).
template <typename Table>
void run_backward(benchmark::State& state, Table& table, index_t batch_size) {
  const auto batches = make_batches(batch_size, 4);
  Prng grad_rng(3);
  Matrix grad(batch_size, kDim);
  grad.fill_normal(grad_rng, 0.0f, 0.01f);
  Matrix out;
  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const IndexBatch& batch = batches[i % batches.size()];
    table.forward(batch, out);
    state.ResumeTiming();
    table.backward_and_update(batch, grad, 0.01f);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch_size);
}

void BM_Backward_TTRec(benchmark::State& state) {
  Prng rng(1);
  TTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  run_backward(state, table, state.range(0));
}

void BM_Backward_EffTT_NoAgg(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng,
                   EffTTConfig{true, false, true});
  run_backward(state, table, state.range(0));
}

void BM_Backward_EffTT_NoFused(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng,
                   EffTTConfig{true, true, false});
  run_backward(state, table, state.range(0));
}

void BM_Backward_EffTT(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  run_backward(state, table, state.range(0));
}

void BM_Backward_EffTT_Reorder(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  table.set_index_bijection(reorder_mapping(8765));
  run_backward(state, table, state.range(0));
}

#define BACKWARD_ARGS \
  ->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)->MinTime(0.05)

BENCHMARK(BM_Backward_TTRec) BACKWARD_ARGS;
BENCHMARK(BM_Backward_EffTT_NoAgg) BACKWARD_ARGS;
BENCHMARK(BM_Backward_EffTT_NoFused) BACKWARD_ARGS;
BENCHMARK(BM_Backward_EffTT) BACKWARD_ARGS;
BENCHMARK(BM_Backward_EffTT_Reorder) BACKWARD_ARGS;

}  // namespace
}  // namespace elrec

BENCHMARK_MAIN();
