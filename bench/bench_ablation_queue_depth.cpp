// Ablation: prefetch/gradient queue depth (§V). Deeper queues widen the
// window the embedding cache must cover — this bench shows, with the REAL
// threaded runtime, that (a) correctness holds at every depth (identical
// losses), (b) RAW repairs and cache size grow with depth, and, with the
// timeline simulator, (c) how much iteration time the overlap saves.
#include <cmath>

#include "bench_util.hpp"
#include "pipeline/elrec_trainer.hpp"
#include "sim/timeline.hpp"

using namespace elrec;
using namespace elrec::benchutil;

int main() {
  header("Ablation: queue depth — real runtime (correctness & cache load)");
  DatasetSpec spec;
  spec.name = "depth-ablation";
  spec.num_dense = 4;
  spec.table_rows = {20000, 2000};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.15;

  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 16;
  cfg.model.bottom_hidden = {32};
  cfg.model.top_hidden = {32};
  cfg.placement = {TablePlacement::kHost, TablePlacement::kDeviceTT};
  cfg.tt_rank = 8;
  cfg.lr = 0.05f;
  cfg.seed = 21;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Depth", "final loss", "rows patched", "cache peak",
                  "loss == depth-1?"});
  float reference_loss = 0.0f;
  for (index_t depth : {1, 2, 4, 8, 16}) {
    cfg.queue_capacity = depth;
    ElRecTrainer trainer(cfg, spec);
    SyntheticDataset data(spec, 33);
    const ElRecRunStats stats = trainer.train(data, 100, 256);
    if (depth == 1) reference_loss = stats.final_loss;
    rows.push_back({std::to_string(depth), fmt(stats.final_loss, 5),
                    std::to_string(stats.rows_patched),
                    std::to_string(stats.cache_peak),
                    std::fabs(stats.final_loss - reference_loss) < 1e-6
                        ? "yes"
                        : "NO"});
  }
  print_table(rows);
  note("The cache makes every depth numerically identical while RAW repairs");
  note("and the LC-bounded cache footprint grow with the window.");

  header("Ablation: queue depth — modeled per-iteration time (timeline sim)");
  std::vector<std::vector<std::string>> trows;
  trows.push_back({"Depth", "iter (ms)", "vs depth-1", "worker stall (ms/iter)"});
  PipelineSimConfig sim;
  sim.server_seconds_per_batch = 0.009;   // CPU parameter service
  sim.worker_seconds_per_batch = 0.011;   // device compute
  sim.transfer_seconds_per_batch = 0.002;
  sim.jitter = 0.5;  // real per-batch variance (unique counts, OS noise)
  double depth1 = 0.0;
  for (index_t depth : {1, 2, 4, 8, 16}) {
    sim.queue_capacity = depth;
    const PipelineSimResult r = simulate_pipeline(sim, 512);
    const double iter = r.makespan_seconds / 512.0;
    if (depth == 1) depth1 = iter;
    trows.push_back({std::to_string(depth), fmt(iter * 1e3, 3),
                     fmt(depth1 / iter, 2) + "x",
                     fmt(r.worker_stall_seconds / 512.0 * 1e3, 3)});
  }
  print_table(trows);
  note("Speedup saturates once the queue hides the server stage entirely;");
  note("beyond that, extra depth only grows the cache (paper picks small Q).");
  return 0;
}
