// Fig. 11: end-to-end training speedup with a single GPU, on Tesla V100
// (TT rank 128) and Tesla T4 (TT rank 64), for Avazu / Criteo Terabyte /
// Criteo Kaggle.
//
// Speedups over the DLRM (CPU+GPU) baseline come from the calibrated
// analytic device models (see DESIGN.md: this environment has no GPU), with
// the input-dependent reuse ratios grounded in the datasets' Zipf skew.
#include "bench_util.hpp"
#include "sim_inputs.hpp"
#include "sim/framework_models.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

void run_device(const DeviceSpec& dev, index_t tt_rank) {
  header("Fig. 11: end-to-end speedup over DLRM, single " + dev.name +
         " (batch 4096, TT rank " + std::to_string(tt_rank) + ")");
  const HostSpec host = aws_host();
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Dataset", "DLRM", "FAE", "TT-Rec", "EL-Rec",
                  "EL-Rec iter (ms)", "unique ratio", "prefix ratio"});
  double geo = 1.0;
  int n = 0;
  for (const DatasetSpec& spec : paper_dataset_specs()) {
    DlrmWorkload w = DlrmWorkload::from_spec(spec, 4096, 64, tt_rank);
    ground_workload_stats(w, spec);
    const double t_dlrm = model_dlrm_ps(w, dev, host).total_sequential();
    const double t_fae = model_fae(w, dev, host).total_sequential();
    const double t_ttrec = model_ttrec(w, dev).total_sequential();
    const double t_elrec = model_elrec(w, dev).total_sequential();
    rows.push_back({spec.name, "1.00x", fmt(t_dlrm / t_fae, 2) + "x",
                    fmt(t_dlrm / t_ttrec, 2) + "x",
                    fmt(t_dlrm / t_elrec, 2) + "x", fmt(t_elrec * 1e3, 2),
                    fmt(w.unique_index_ratio, 3),
                    fmt(w.unique_prefix_ratio, 3)});
    geo *= t_dlrm / t_elrec;
    ++n;
  }
  print_table(rows);
  note("EL-Rec geometric-mean speedup over DLRM: " +
       fmt(std::pow(geo, 1.0 / n), 2) + "x  (paper: ~3x on V100)");
}

// Supplement: the Fig. 16 hybrid arm (largest table TT-on-device, rest
// host-resident) re-priced with the gradient/parameter codec compressing
// the host<->device prefetch and gradient streams. The bytes-on-wire
// ratio is MEASURED by round-tripping pooled-gradient tensors through the
// real src/codec implementation, not assumed.
void run_hybrid_codec(const DeviceSpec& dev, index_t tt_rank) {
  header("Fig. 11 supplement: hybrid host-resident arm, with/without codec (" +
         dev.name + ")");
  const HostSpec host = aws_host();
  CodecConfig codec;
  codec.id = CodecId::kDualLevel;
  codec.bits = 8;
  codec.rel_bound = 0.05f;
  const double ratio = measured_codec_ratio(codec, 4096, 64);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Dataset", "hybrid iter (ms)", "+codec iter (ms)",
                  "speedup", "wire reduction"});
  for (const DatasetSpec& spec : paper_dataset_specs()) {
    DlrmWorkload w = DlrmWorkload::from_spec(spec, 4096, 64, tt_rank);
    ground_workload_stats(w, spec);
    const double t_plain =
        model_elrec_hybrid(w, dev, host, /*pipelined=*/true).total_sequential();
    w.comm_compression_ratio = ratio;
    const double t_codec =
        model_elrec_hybrid(w, dev, host, /*pipelined=*/true).total_sequential();
    rows.push_back({spec.name, fmt(t_plain * 1e3, 2), fmt(t_codec * 1e3, 2),
                    fmt(t_plain / t_codec, 2) + "x", fmt(ratio, 2) + "x"});
  }
  print_table(rows);
  note("Codec ratio measured from the real dual-level int8 codec");
  note("(rel_bound 0.05) on Zipf-skewed pooled gradients; it shrinks the");
  note("PCIe prefetch/gradient phases, which bound the hybrid pipeline.");
}

}  // namespace

int main() {
  run_device(v100(), 128);
  run_device(t4(), 64);
  run_hybrid_codec(v100(), 128);
  return 0;
}
