// Fig. 11: end-to-end training speedup with a single GPU, on Tesla V100
// (TT rank 128) and Tesla T4 (TT rank 64), for Avazu / Criteo Terabyte /
// Criteo Kaggle.
//
// Speedups over the DLRM (CPU+GPU) baseline come from the calibrated
// analytic device models (see DESIGN.md: this environment has no GPU), with
// the input-dependent reuse ratios grounded in the datasets' Zipf skew.
#include "bench_util.hpp"
#include "sim_inputs.hpp"
#include "sim/framework_models.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

void run_device(const DeviceSpec& dev, index_t tt_rank) {
  header("Fig. 11: end-to-end speedup over DLRM, single " + dev.name +
         " (batch 4096, TT rank " + std::to_string(tt_rank) + ")");
  const HostSpec host = aws_host();
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Dataset", "DLRM", "FAE", "TT-Rec", "EL-Rec",
                  "EL-Rec iter (ms)", "unique ratio", "prefix ratio"});
  double geo = 1.0;
  int n = 0;
  for (const DatasetSpec& spec : paper_dataset_specs()) {
    DlrmWorkload w = DlrmWorkload::from_spec(spec, 4096, 64, tt_rank);
    ground_workload_stats(w, spec);
    const double t_dlrm = model_dlrm_ps(w, dev, host).total_sequential();
    const double t_fae = model_fae(w, dev, host).total_sequential();
    const double t_ttrec = model_ttrec(w, dev).total_sequential();
    const double t_elrec = model_elrec(w, dev).total_sequential();
    rows.push_back({spec.name, "1.00x", fmt(t_dlrm / t_fae, 2) + "x",
                    fmt(t_dlrm / t_ttrec, 2) + "x",
                    fmt(t_dlrm / t_elrec, 2) + "x", fmt(t_elrec * 1e3, 2),
                    fmt(w.unique_index_ratio, 3),
                    fmt(w.unique_prefix_ratio, 3)});
    geo *= t_dlrm / t_elrec;
    ++n;
  }
  print_table(rows);
  note("EL-Rec geometric-mean speedup over DLRM: " +
       fmt(std::pow(geo, 1.0 / n), 2) + "x  (paper: ~3x on V100)");
}

}  // namespace

int main() {
  run_device(v100(), 128);
  run_device(t4(), 64);
  return 0;
}
