// Ablation: the Hot_ratio hyperparameter of Algorithm 2 (§IV). Hot indices
// are pinned to the front (global information); only the cold remainder is
// clustered by co-occurrence (local information). Sweeps the ratio and
// measures the real effect on Eff-TT prefix sharing plus the community
// structure found.
#include "bench_util.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "reorder/bijection.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

constexpr index_t kRows = 20000;

double avg_prefixes(EffTTTable& table, SyntheticDataset& data, int batches) {
  Matrix out;
  index_t total = 0;
  for (int b = 0; b < batches; ++b) {
    table.forward(data.next_batch(512).sparse[0], out);
    total += table.last_stats().unique_prefixes;
  }
  return static_cast<double>(total) / batches;
}

}  // namespace

int main() {
  header("Ablation: Hot_ratio in the index-reordering bijection (Algorithm 2)");
  DatasetSpec spec;
  spec.name = "hot-ratio-ablation";
  spec.num_dense = 1;
  spec.table_rows = {kRows};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.15;
  spec.locality_groups = 16;
  spec.locality_fraction = 0.7;

  const TTShape shape = TTShape::balanced(kRows, 32, 3, 8);

  // Baseline: no reordering at all.
  {
    Prng rng(5);
    EffTTTable plain(kRows, shape, rng);
    SyntheticDataset eval(spec, 31);
    for (int b = 0; b < 128; ++b) eval.next_batch(512);  // align stream position
    std::printf("  no reordering: %.1f unique prefixes/batch\n",
                avg_prefixes(plain, eval, 25));
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Hot_ratio", "hot pinned", "communities", "modularity",
                  "unique prefixes/batch"});
  for (double hot : {0.0, 0.001, 0.01, 0.05, 0.2}) {
    SyntheticDataset data(spec, 31);
    ReorderPipeline pipeline(kRows, hot, 7);
    // Sessions rotate every 4 batches; 128 batches cover every group twice.
    for (int b = 0; b < 128; ++b) {
      pipeline.add_batch(data.next_batch(512).sparse[0].indices);
    }
    const BijectionResult bij = pipeline.finish();

    Prng rng(5);
    EffTTTable table(kRows, shape, rng);
    table.set_index_bijection(bij.mapping);
    // Continue the SAME stream (offline reordering, online training).
    const double prefixes = avg_prefixes(table, data, 25);
    rows.push_back({fmt(hot, 3), std::to_string(bij.num_hot),
                    std::to_string(bij.num_communities),
                    fmt(bij.modularity, 3), fmt(prefixes, 1)});
  }
  print_table(rows);
  note("Too small a ratio wastes the skew (hot rows scattered); too large");
  note("shrinks the graph the community detection can exploit. The paper's");
  note("choice sits at a small nonzero ratio.");
  return 0;
}
