// Fig. 16: pipeline training system.
//
// Two parts:
//  1. REAL: the multithreaded ElRecTrainer runs the same workload with
//     queue depth 1 (EL-Rec Sequential) and depth 4 (EL-Rec Pipeline),
//     verifying identical losses (the embedding cache removes the RAW
//     hazard) and reporting cache activity.
//  2. MODELED: per-iteration times for DLRM / EL-Rec(Seq) / EL-Rec(Pipe) on
//     the paper's configuration — largest tables TT on device, rest in host
//     memory — using the timeline simulator fed by the cost models.
#include "bench_util.hpp"
#include "obs/trace.hpp"
#include "sim_inputs.hpp"
#include "pipeline/elrec_trainer.hpp"
#include "sim/framework_models.hpp"
#include "sim/timeline.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

void real_pipeline_demo(index_t num_batches, JsonBenchReport* report) {
  header("Fig. 16 (real runtime): pipelined vs sequential EL-Rec training");
  DatasetSpec spec;
  spec.name = "pipe-demo";
  spec.num_dense = 4;
  spec.table_rows = {20000, 4000, 256};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.15;

  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 16;
  cfg.model.bottom_hidden = {32};
  cfg.model.top_hidden = {32};
  cfg.placement = {TablePlacement::kDeviceTT, TablePlacement::kHost,
                   TablePlacement::kDeviceDense};
  cfg.tt_rank = 8;
  cfg.lr = 0.05f;
  cfg.seed = 3;

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Mode", "batches", "final loss", "RAW rows patched",
                  "cache peak", "wall (s)"});
  float seq_loss = 0.0f, pipe_loss = 0.0f;
  for (index_t depth : {1, 4}) {
    cfg.queue_capacity = depth;
    ElRecTrainer trainer(cfg, spec);
    SyntheticDataset data(spec, 17);
    const ElRecRunStats stats = trainer.train(data, num_batches, 256);
    (depth == 1 ? seq_loss : pipe_loss) = stats.final_loss;
    rows.push_back({depth == 1 ? "Sequential (queue=1)" : "Pipeline (queue=4)",
                    std::to_string(stats.batches), fmt(stats.final_loss, 4),
                    std::to_string(stats.rows_patched),
                    std::to_string(stats.cache_peak),
                    fmt(stats.wall_seconds, 2)});
    if (report != nullptr) {
      report->add(depth == 1 ? "sequential_q1" : "pipeline_q4",
                  {{"batches/s", static_cast<double>(stats.batches) /
                                     stats.wall_seconds},
                   {"final_loss", stats.final_loss},
                   {"rows_patched", static_cast<double>(stats.rows_patched)},
                   {"cache_peak", static_cast<double>(stats.cache_peak)}});
    }
  }
  print_table(rows);
  note(std::string("loss parity (cache correctness): |seq - pipe| = ") +
       fmt(std::abs(seq_loss - pipe_loss), 6));
  if (report != nullptr) {
    report->add("parity", {{"abs_loss_gap",
                            std::abs(static_cast<double>(seq_loss) -
                                     static_cast<double>(pipe_loss))}});
  }
}

void modeled_timing() {
  header("Fig. 16 (modeled timing): DLRM vs EL-Rec Sequential vs Pipeline");
  const DeviceSpec dev = v100();
  const HostSpec host = aws_host();
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Dataset", "DLRM (ms)", "EL-Rec Seq (ms)",
                  "EL-Rec Pipe (ms)", "Pipe/DLRM", "Pipe/Seq"});
  for (const DatasetSpec& spec : paper_dataset_specs()) {
    DlrmWorkload w = DlrmWorkload::from_spec(spec, 4096, 64, 128);
    ground_workload_stats(w, spec);
    const double t_dlrm = model_dlrm_ps(w, dev, host).total_sequential();
    const IterationCost hybrid = model_elrec_hybrid(w, dev, host, true);

    // Replay the bounded-queue pipeline through the timeline simulator.
    double cpu = 0.0, gpu = 0.0;
    for (const auto& [name, sec] : hybrid.components) {
      (name.rfind("cpu:", 0) == 0 ? cpu : gpu) += sec;
    }
    // Sequential = the paper's queue-length-1 degenerate case: the worker
    // waits for the CPU parameter service every batch (strict sum).
    const double t_seq = cpu + gpu;
    PipelineSimConfig pipe_cfg{4, cpu, gpu, 0.0};
    const double t_pipe =
        simulate_pipeline(pipe_cfg, 256).makespan_seconds / 256.0;

    rows.push_back({spec.name, fmt(t_dlrm * 1e3, 2), fmt(t_seq * 1e3, 2),
                    fmt(t_pipe * 1e3, 2), fmt(t_dlrm / t_pipe, 2) + "x",
                    fmt(t_seq / t_pipe, 2) + "x"});
  }
  print_table(rows);
  note("Paper shape: EL-Rec(Pipeline) ~2.44x over DLRM and ~1.3x over");
  note("EL-Rec(Sequential) — overlap hides the CPU-side parameter service.");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = has_flag(argc, argv, "--quick");
  if (quick) {
    // Perf-harness mode: a shorter traced run, a BENCH json with the
    // registry metrics block, and the merged chrome://tracing export
    // covering pipeline + Eff-TT + tensor spans.
    JsonBenchReport report("fig16_pipeline");
    real_pipeline_demo(40, &report);
    report.write();
    const std::string trace_path = "TRACE_fig16_pipeline.json";
    if (obs::write_chrome_trace(trace_path)) {
      note("wrote " + trace_path + " (open in chrome://tracing)");
    } else {
      note("could not write " + trace_path);
    }
    return 0;
  }
  real_pipeline_demo(120, nullptr);
  modeled_timing();
  return 0;
}
