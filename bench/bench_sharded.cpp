// Sharded serving tier benchmark: throughput scaling vs shard count at a
// held tail-latency budget, plus the degraded-mode latency delta when an
// unreplicated shard is lost and its rows fall back to the router-side
// cold-tail path.
//
//   --quick   4k requests per config, writes BENCH_sharded.json
//   (default) 20k requests per config
//
// Configs: shards_1 / shards_2 / shards_4 (replication 2, placement-warmed
// caches) measure scatter/gather scaling; degraded_2 runs 2 shards with no
// replicas, kills shard 0 halfway, and reports steady vs degraded p50/p99.
// Every config checks zero accepted-request loss.
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/eff_tt_table.hpp"
#include "data/stats.hpp"
#include "data/synthetic.hpp"
#include "serve/inference_session.hpp"
#include "serve/request_scheduler.hpp"
#include "shard/placement.hpp"
#include "shard/shard_router.hpp"

namespace {

using namespace elrec;
using benchutil::fmt;

constexpr index_t kDense = 13;
constexpr index_t kDim = 16;

DatasetSpec sharded_spec() {
  DatasetSpec spec;
  spec.name = "sharded";
  spec.num_dense = kDense;
  spec.table_rows = {50000, 20000};
  spec.num_samples = 1 << 22;
  spec.zipf_s = 1.05;
  return spec;
}

// Deterministic from the fixed seed: every call builds a bitwise-identical
// frozen model, which is how each shard gets its own copy.
std::unique_ptr<DlrmModel> make_model(const DatasetSpec& spec) {
  Prng rng(42);
  DlrmConfig cfg;
  cfg.num_dense = kDense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {64, 32};
  cfg.top_hidden = {64, 32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) {
    tables.push_back(std::make_unique<EffTTTable>(
        rows, TTShape::balanced(rows, kDim, 3, 16), rng));
  }
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

struct Tier {
  std::vector<std::unique_ptr<InferenceSession>> sessions;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::unique_ptr<InferenceSession> fallback;
  std::unique_ptr<ShardRouter> router;
};

Tier build_tier(const DatasetSpec& spec, int num_shards, int replication) {
  Tier tier;
  InferenceSessionConfig scfg;
  scfg.cache.capacity = 4096;
  scfg.cache.admit_min_freq = 2;
  std::vector<ShardServer*> raw;
  for (int s = 0; s < num_shards; ++s) {
    tier.sessions.push_back(
        std::make_unique<InferenceSession>(make_model(spec), scfg));
    ShardServerConfig svr;
    svr.num_workers = 2;
    tier.servers.push_back(
        std::make_unique<ShardServer>(s, *tier.sessions.back(), svr));
    raw.push_back(tier.servers.back().get());
  }
  tier.fallback =
      std::make_unique<InferenceSession>(make_model(spec), scfg);
  ShardRouterConfig rcfg;
  rcfg.replication = replication;
  tier.router = std::make_unique<ShardRouter>(*tier.fallback, raw, rcfg);

  // RecShard-style statistics-driven placement: warm each shard's owned
  // partition of the hot set (replicas included).
  SyntheticDataset stats_data(spec, 99);
  std::vector<std::vector<index_t>> hot;
  for (std::size_t t = 0; t < spec.table_rows.size(); ++t) {
    hot.push_back(top_accessed_indices(stats_data, static_cast<index_t>(t),
                                       /*k=*/4096, /*num_draws=*/100000));
  }
  PlacementConfig pcfg;
  pcfg.replication = replication;
  const PlacementPlan plan = plan_placement(tier.router->ring(), hot, pcfg);
  for (int s = 0; s < num_shards; ++s) {
    for (std::size_t t = 0; t < hot.size(); ++t) {
      tier.sessions[static_cast<std::size_t>(s)]->warm_cache(
          static_cast<index_t>(t),
          plan.warm_rows[static_cast<std::size_t>(s)][t]);
    }
  }
  return tier;
}

struct StreamResult {
  LatencySummary total;
  double throughput_rps = 0.0;
  std::size_t shed = 0;
  std::size_t dropped = 0;
};

StreamResult run_stream(RequestScheduler& sched, SyntheticDataset& data,
                        Prng& rng, index_t num_tables,
                        std::size_t num_requests) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<RankingResponse>> futs;
  futs.reserve(num_requests);
  for (std::size_t r = 0; r < num_requests; ++r) {
    RankingRequest req;
    req.dense.resize(static_cast<std::size_t>(kDense));
    for (auto& v : req.dense) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    req.sparse.resize(static_cast<std::size_t>(num_tables));
    for (index_t t = 0; t < num_tables; ++t) {
      req.sparse[static_cast<std::size_t>(t)].push_back(
          data.sampler(t).sample(rng));
    }
    std::future<RankingResponse> fut;
    for (;;) {
      const SubmitStatus st = sched.submit(req, fut);
      if (st == SubmitStatus::kAccepted) break;
      ELREC_CHECK(st == SubmitStatus::kOverloaded, "queue closed mid-run");
      std::this_thread::yield();
    }
    futs.push_back(std::move(fut));
  }
  std::size_t completed = 0;
  for (auto& f : futs) {
    (void)f.get();
    ++completed;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // The worker bumps served_ after fulfilling the batch's promises, so the
  // counters are only settled once the workers are joined.
  sched.shutdown();
  const auto stats = sched.stats();
  StreamResult res;
  res.total = sched.latency().total_summary();
  res.throughput_rps = static_cast<double>(completed) / wall_s;
  res.shed = stats.shed;
  res.dropped = stats.accepted - stats.served;
  ELREC_CHECK(res.dropped == 0, "no accepted request may be dropped");
  return res;
}

RequestSchedulerConfig scheduler_config() {
  RequestSchedulerConfig cfg;
  cfg.num_workers = 4;
  cfg.max_batch = 32;
  cfg.max_wait_us = 100;
  cfg.queue_capacity = 512;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = benchutil::has_flag(argc, argv, "--quick");
  const std::size_t num_requests = quick ? 4000 : 20000;

  benchutil::header("Sharded serving tier: scatter/gather scaling + failover");
  benchutil::note("requests/config = " + std::to_string(num_requests));

  const DatasetSpec spec = sharded_spec();
  benchutil::JsonBenchReport report("sharded");
  std::vector<std::vector<std::string>> table = {
      {"config", "p50 us", "p95 us", "p99 us", "req/s", "shed",
       "fallback rows", "failovers"}};

  // Throughput scaling: 1 / 2 / 4 shards, replication 2, same stream.
  for (const int shards : {1, 2, 4}) {
    Tier tier = build_tier(spec, shards, /*replication=*/2);
    RequestScheduler sched(*tier.router, scheduler_config());
    SyntheticDataset data(spec, 7);
    Prng rng(13);
    const StreamResult r =
        run_stream(sched, data, rng, tier.router->num_tables(), num_requests);
    sched.shutdown();
    const ShardRouter::RouterStats rs = tier.router->stats();
    const std::string name = "shards_" + std::to_string(shards);
    table.push_back({name, fmt(r.total.p50), fmt(r.total.p95),
                     fmt(r.total.p99), fmt(r.throughput_rps, 0),
                     std::to_string(r.shed),
                     std::to_string(rs.fallback_rows),
                     std::to_string(rs.failovers)});
    report.add(name, {{"shards", static_cast<double>(shards)},
                      {"requests", static_cast<double>(num_requests)},
                      {"p50_us", r.total.p50},
                      {"p95_us", r.total.p95},
                      {"p99_us", r.total.p99},
                      {"throughput_rps", r.throughput_rps},
                      {"shed", static_cast<double>(r.shed)},
                      {"fallback_rows", static_cast<double>(rs.fallback_rows)},
                      {"failovers", static_cast<double>(rs.failovers)}});
  }

  // Degraded mode: 2 shards, no replicas. Steady phase, then kill shard 0
  // and measure the latency delta of the fallback path.
  {
    Tier tier = build_tier(spec, 2, /*replication=*/1);
    SyntheticDataset data(spec, 7);
    Prng rng(13);
    StreamResult steady, degraded;
    {
      RequestScheduler sched(*tier.router, scheduler_config());
      steady = run_stream(sched, data, rng, tier.router->num_tables(),
                          num_requests / 2);
      sched.shutdown();
    }
    tier.servers[0]->kill();
    {
      RequestScheduler sched(*tier.router, scheduler_config());
      degraded = run_stream(sched, data, rng, tier.router->num_tables(),
                            num_requests / 2);
      sched.shutdown();
    }
    const ShardRouter::RouterStats rs = tier.router->stats();
    table.push_back({"degraded_2_steady", fmt(steady.total.p50),
                     fmt(steady.total.p95), fmt(steady.total.p99),
                     fmt(steady.throughput_rps, 0),
                     std::to_string(steady.shed), "0", "0"});
    table.push_back({"degraded_2_killed", fmt(degraded.total.p50),
                     fmt(degraded.total.p95), fmt(degraded.total.p99),
                     fmt(degraded.throughput_rps, 0),
                     std::to_string(degraded.shed),
                     std::to_string(rs.fallback_rows),
                     std::to_string(rs.failovers)});
    report.add("degraded_2",
               {{"shards", 2.0},
                {"requests", static_cast<double>(num_requests)},
                {"steady_p50_us", steady.total.p50},
                {"steady_p99_us", steady.total.p99},
                {"killed_p50_us", degraded.total.p50},
                {"killed_p99_us", degraded.total.p99},
                {"p99_delta_us", degraded.total.p99 - steady.total.p99},
                {"steady_rps", steady.throughput_rps},
                {"killed_rps", degraded.throughput_rps},
                {"fallback_rows", static_cast<double>(rs.fallback_rows)},
                {"markdowns", static_cast<double>(rs.markdowns)}});
  }

  benchutil::print_table(table);
  if (quick) report.write();
  return 0;
}
