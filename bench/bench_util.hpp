// Shared formatting helpers for the benchmark executables, plus the
// machine-readable BENCH_*.json emitter used by the --quick perf harness so
// the perf trajectory can be tracked across PRs.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/metrics.hpp"

namespace elrec::benchutil {

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

/// Prints a simple fixed-width table: first row is the header.
inline void print_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return;
  std::vector<std::size_t> width(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), rows[r][c].c_str());
    }
    std::printf("\n");
    if (r == 0) {
      std::printf("  ");
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        std::printf("%s  ", std::string(width[c], '-').c_str());
      }
      std::printf("\n");
    }
  }
}

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

/// True when `flag` (e.g. "--quick") appears in argv.
inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Best-of-`reps` wall time of fn() in seconds. Min (not mean) because the
/// quick harness shares machines with the build; the fastest rep is the one
/// least polluted by scheduling noise.
template <typename Fn>
double time_best_seconds(Fn&& fn, int reps = 5) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < best) best = s;
  }
  return best;
}

/// Number of compute threads the benchmark will actually use (OpenMP's cap
/// when built with it, hardware concurrency otherwise).
inline int compute_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return static_cast<int>(std::thread::hardware_concurrency());
#endif
}

/// Compile-time build-flag string baked in by bench/CMakeLists.txt so two
/// BENCH_*.json files are only compared when their builds match.
inline const char* build_flags() {
#ifdef ELREC_BUILD_FLAGS
  return ELREC_BUILD_FLAGS;
#else
  return "unknown";
#endif
}

/// Collects named metric rows and writes them as BENCH_<bench>.json:
///   {"bench": "...", "schema": "elrec-bench-v1",
///    "meta": {"threads": "8", "build": "..."},
///    "results": [{"name": "...", "metrics": {"GFLOP/s": 12.3, ...}}, ...],
///    "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}}
/// The trailing "metrics" block is a MetricsRegistry snapshot taken at
/// write() time — the process-wide observability counters (batched-GEMM
/// launches, reuse hits, cache traffic, latency histograms) accumulated over
/// the whole run.
/// Metric keys are free-form; the conventions used across the repo are
/// "GFLOP/s" (kernel throughput), "ns/lookup" (per-index forward latency)
/// and "batches/s" (training-step throughput). Every report carries the
/// thread count and build flags so numbers are comparable across runs.
class JsonBenchReport {
 public:
  explicit JsonBenchReport(std::string bench) : bench_(std::move(bench)) {
    set_meta("threads", std::to_string(compute_threads()));
    set_meta("build", build_flags());
  }

  void add(const std::string& name,
           std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back({name, std::move(metrics)});
  }

  /// Adds/overwrites one environment key recorded in the "meta" object.
  void set_meta(const std::string& key, const std::string& value) {
    for (auto& kv : meta_) {
      if (kv.first == key) {
        kv.second = value;
        return;
      }
    }
    meta_.emplace_back(key, value);
  }

  std::string path() const { return "BENCH_" + bench_ + ".json"; }

  /// Writes the JSON file and prints its location; returns false (with a
  /// note) if the file cannot be opened.
  bool write() const {
    std::ofstream out(path());
    if (!out) {
      note("could not open " + path() + " for writing");
      return false;
    }
    out << "{\n  \"bench\": \"" << escaped(bench_)
        << "\",\n  \"schema\": \"elrec-bench-v1\",\n  \"meta\": {";
    for (std::size_t m = 0; m < meta_.size(); ++m) {
      out << "\"" << escaped(meta_[m].first) << "\": \""
          << escaped(meta_[m].second) << "\"";
      if (m + 1 < meta_.size()) out << ", ";
    }
    out << "},\n  \"results\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "    {\"name\": \"" << escaped(rows_[r].name)
          << "\", \"metrics\": {";
      for (std::size_t m = 0; m < rows_[r].metrics.size(); ++m) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", rows_[r].metrics[m].second);
        out << "\"" << escaped(rows_[r].metrics[m].first) << "\": " << buf;
        if (m + 1 < rows_[r].metrics.size()) out << ", ";
      }
      out << "}}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"metrics\": "
        << obs::MetricsRegistry::global().snapshot().to_json() << "\n}\n";
    note("wrote " + path());
    return out.good();
  }

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Row> rows_;
};

}  // namespace elrec::benchutil
