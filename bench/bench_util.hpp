// Shared formatting helpers for the benchmark executables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace elrec::benchutil {

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

/// Prints a simple fixed-width table: first row is the header.
inline void print_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return;
  std::vector<std::size_t> width(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(width[c]), rows[r][c].c_str());
    }
    std::printf("\n");
    if (r == 0) {
      std::printf("  ");
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        std::printf("%s  ", std::string(width[c], '-').c_str());
      }
      std::printf("\n");
    }
  }
}

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_bytes(double bytes) {
  char buf[64];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

}  // namespace elrec::benchutil
