// Error-bounded gradient/parameter codec benchmark.
//
// Three parts:
//  1. MICRO: encode/decode throughput (GB/s of raw tensor processed) and
//     bytes reduction for the null, dual-level int8 and dual-level int4
//     codecs on pooled-gradient-shaped tensors.
//  2. END-TO-END: the real ElRecTrainer pipeline (Fig. 16 workload) run
//     under each codec — batches/s, bytes-on-queue reduction, and the
//     final-loss delta against the null-codec run.
//  3. GATES (--quick): the dual-level codec must cut bytes-on-queue by
//     >= 4x while keeping the final-loss delta within the configured
//     budget; the null codec must add zero loss delta. Violations exit
//     non-zero so the perf harness catches codec regressions.
#include <cstdlib>

#include "bench_util.hpp"
#include "codec/grad_codec.hpp"
#include "common/prng.hpp"
#include "pipeline/elrec_trainer.hpp"
#include "sim_inputs.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

// Loss-delta budget for the end-to-end gate: the dual-level codec bounds
// per-tensor error at rel_bound * RMS, which over the short gate run must
// not move the final loss by more than this (absolute).
constexpr double kLossDeltaGate = 0.02;
constexpr double kBytesReductionGate = 4.0;

CodecConfig codec_arm(const std::string& name) {
  CodecConfig cfg;
  if (name == "null") {
    cfg.id = CodecId::kNull;
  } else {
    cfg.id = CodecId::kDualLevel;
    cfg.bits = name == "dual-int4" ? 4 : 8;
    cfg.rel_bound = 0.05f;
  }
  return cfg;
}

/// Pooled-gradient-shaped tensor: Zipf-skewed row magnitudes.
Matrix gradient_tensor(index_t rows, index_t cols, std::uint64_t seed) {
  Prng rng(seed);
  Matrix g(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    // Mild Zipf decay: hot rows pool many sample gradients, but most rows
    // stay above the codec's dead zone (matches the pipeline measurement).
    const double scale = 1.0 / std::pow(static_cast<double>(r) + 1.0, 0.25);
    float* row = g.row(r);
    for (index_t j = 0; j < cols; ++j) {
      row[j] = static_cast<float>(scale * rng.normal());
    }
  }
  return g;
}

void micro(JsonBenchReport* report, int reps) {
  header("Codec micro: encode/decode throughput, 4096 x 64 pooled grads");
  const index_t rows = 4096, cols = 64;
  const Matrix g = gradient_tensor(rows, cols, 11);
  const double raw_bytes = static_cast<double>(g.size()) * sizeof(float);

  std::vector<std::vector<std::string>> table;
  table.push_back({"Codec", "encode GB/s", "decode GB/s", "reduction"});
  for (const std::string name : {"null", "dual-int8", "dual-int4"}) {
    auto codec = make_codec(codec_arm(name));
    EncodedBlob blob;
    codec->encode(g, blob);  // warm scratch + seed running stats
    const double enc_s = time_best_seconds([&] { codec->encode(g, blob); },
                                           reps);
    Matrix out;
    const double dec_s =
        time_best_seconds([&] { decode_blob(blob, out); }, reps);
    const double reduction = raw_bytes / static_cast<double>(blob.size());
    table.push_back({name, fmt(raw_bytes / enc_s / 1e9, 2),
                     fmt(raw_bytes / dec_s / 1e9, 2),
                     fmt(reduction, 2) + "x"});
    if (report != nullptr) {
      report->add("micro_" + name,
                  {{"encode_GB/s", raw_bytes / enc_s / 1e9},
                   {"decode_GB/s", raw_bytes / dec_s / 1e9},
                   {"bytes_reduction", reduction}});
    }
  }
  print_table(table);
}

struct E2eResult {
  double batches_per_s = 0.0;
  double final_loss = 0.0;
  double reduction = 1.0;
};

E2eResult run_pipeline(const CodecConfig& codec, index_t num_batches) {
  // Fig. 16 real-pipeline workload with one host table.
  DatasetSpec spec;
  spec.name = "codec-demo";
  spec.num_dense = 4;
  spec.table_rows = {20000, 4000, 256};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.15;

  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 16;
  cfg.model.bottom_hidden = {32};
  cfg.model.top_hidden = {32};
  cfg.placement = {TablePlacement::kDeviceTT, TablePlacement::kHost,
                   TablePlacement::kDeviceDense};
  cfg.tt_rank = 8;
  cfg.lr = 0.05f;
  cfg.seed = 3;
  cfg.queue_capacity = 4;
  cfg.codec = codec;

  ElRecTrainer trainer(cfg, spec);
  SyntheticDataset data(spec, 17);
  const ElRecRunStats stats = trainer.train(data, num_batches, 256);
  E2eResult r;
  r.batches_per_s = static_cast<double>(stats.batches) / stats.wall_seconds;
  r.final_loss = stats.final_loss;
  r.reduction = stats.encoded_queue_bytes > 0
                    ? static_cast<double>(stats.raw_queue_bytes) /
                          static_cast<double>(stats.encoded_queue_bytes)
                    : 1.0;
  return r;
}

int end_to_end(JsonBenchReport* report, index_t num_batches, bool gate) {
  header("Codec end-to-end: ElRecTrainer pipeline, codec off vs on");
  int failures = 0;
  std::vector<std::vector<std::string>> table;
  table.push_back(
      {"Codec", "batches/s", "final loss", "loss delta", "bytes reduction"});
  double null_loss = 0.0;
  for (const std::string name : {"null", "dual-int8", "dual-int4"}) {
    const E2eResult r = run_pipeline(codec_arm(name), num_batches);
    if (name == "null") null_loss = r.final_loss;
    const double delta = std::abs(r.final_loss - null_loss);
    table.push_back({name, fmt(r.batches_per_s, 1), fmt(r.final_loss, 4),
                     fmt(delta, 5), fmt(r.reduction, 2) + "x"});
    if (report != nullptr) {
      report->add("e2e_" + name, {{"batches/s", r.batches_per_s},
                                  {"final_loss", r.final_loss},
                                  {"loss_delta", delta},
                                  {"bytes_reduction", r.reduction}});
    }
    if (gate && name != "null") {
      if (delta > kLossDeltaGate) {
        note("GATE FAIL: " + name + " loss delta " + fmt(delta, 5) +
             " exceeds budget " + fmt(kLossDeltaGate, 5));
        ++failures;
      }
      if (name == "dual-int4" && r.reduction < kBytesReductionGate) {
        note("GATE FAIL: " + name + " bytes reduction " + fmt(r.reduction, 2) +
             "x below required " + fmt(kBytesReductionGate, 1) + "x");
        ++failures;
      }
    }
  }
  print_table(table);
  if (gate && failures == 0) {
    note("gates passed: reduction >= " + fmt(kBytesReductionGate, 1) +
         "x (int4) and loss delta <= " + fmt(kLossDeltaGate, 3));
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = has_flag(argc, argv, "--quick");
  if (quick) {
    JsonBenchReport report("codec");
    micro(&report, 5);
    const int failures = end_to_end(&report, 60, /*gate=*/true);
    report.write();
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
  }
  micro(nullptr, 20);
  end_to_end(nullptr, 200, /*gate=*/false);
  return EXIT_SUCCESS;
}
