// Ablation: embedding-compression methods at comparable budgets — the
// paper's related-work argument made quantitative. Trains the same DLRM on
// teacher-labeled data with:
//   dense      — fp32 nn.EmbeddingBag (reference)
//   eff-tt     — Eff-TT tables (the paper's method)
//   hashing    — feature hashing with the SAME parameter count as eff-tt
//   int8       — row-wise quantized table (4x smaller than dense)
// and reports accuracy/AUC next to the embedding bytes.
//
// Second axis (traffic, not storage): the gradient/parameter codec's
// error-bound sweep. The real ElRecTrainer pipeline is run at each
// (bits, rel_bound) point and reports bytes-on-queue reduction next to the
// final-loss delta against the null-codec run — the accuracy/traffic
// trade-off curve behind the Figs 11/12 "with codec" arms.
//
// `--quick` runs shortened versions of both axes and writes
// BENCH_ablation_compression.json for the perf harness.
#include <memory>

#include "bench_util.hpp"
#include "codec/grad_codec.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "dlrm/dlrm_model.hpp"
#include "dlrm/metrics.hpp"
#include "embed/embedding_bag.hpp"
#include "embed/hashed_embedding_bag.hpp"
#include "embed/quantized_embedding_bag.hpp"
#include "pipeline/elrec_trainer.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

constexpr index_t kDim = 16;
constexpr index_t kRank = 8;
constexpr index_t kBatch = 256;

enum class Method { kDense, kEffTT, kHashing, kInt8 };

std::unique_ptr<IEmbeddingTable> make_table(Method m, index_t rows,
                                            Prng& rng) {
  switch (m) {
    case Method::kDense:
      return std::make_unique<EmbeddingBag>(rows, kDim, rng);
    case Method::kEffTT: {
      if (rows < 500) return std::make_unique<EmbeddingBag>(rows, kDim, rng);
      return std::make_unique<EffTTTable>(
          rows, TTShape::balanced(rows, kDim, 3, kRank), rng);
    }
    case Method::kHashing: {
      if (rows < 500) return std::make_unique<EmbeddingBag>(rows, kDim, rng);
      // Same float budget as the TT table of this row count.
      const TTShape shape = TTShape::balanced(rows, kDim, 3, kRank);
      const index_t hash_rows = std::max<index_t>(
          2, static_cast<index_t>(shape.parameter_count()) / kDim);
      return std::make_unique<HashedEmbeddingBag>(
          rows, std::min(hash_rows, rows), kDim, rng);
    }
    case Method::kInt8:
      return std::make_unique<QuantizedEmbeddingBag>(rows, kDim, rng);
  }
  return nullptr;
}

struct Result {
  double acc = 0.0, auc = 0.0;
  std::size_t bytes = 0;
};

Result run(Method m, const DatasetSpec& spec, index_t batches) {
  Prng rng(101);
  DlrmConfig cfg;
  cfg.num_dense = spec.num_dense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {32};
  cfg.top_hidden = {32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) tables.push_back(make_table(m, rows, rng));
  DlrmModel model(cfg, std::move(tables), rng);

  SyntheticDataset data(spec, 555);
  for (index_t b = 0; b < batches; ++b) {
    model.train_step(data.next_batch(kBatch), 0.15f);
  }
  Result r;
  r.bytes = model.embedding_bytes();
  std::vector<float> probs, all_p, all_l;
  for (std::uint64_t salt = 0; salt < 8; ++salt) {
    const MiniBatch eval = data.eval_batch(512, salt);
    model.predict(eval, probs);
    all_p.insert(all_p.end(), probs.begin(), probs.end());
    all_l.insert(all_l.end(), eval.labels.begin(), eval.labels.end());
  }
  r.acc = binary_accuracy(all_p, all_l);
  r.auc = roc_auc(all_p, all_l);
  return r;
}

void storage_ablation(JsonBenchReport* report, index_t batches) {
  header("Ablation: compression methods at comparable budgets (Criteo-Kaggle-like, 2000x scaled)");
  const DatasetSpec spec = criteo_kaggle_spec().scaled(2000);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Method", "Embedding bytes", "Accuracy", "AUC"});
  const std::pair<Method, std::string> methods[] = {
      {Method::kDense, "dense fp32"},
      {Method::kEffTT, "Eff-TT (rank 8)"},
      {Method::kHashing, "hashing @ TT budget"},
      {Method::kInt8, "int8 rowwise"},
  };
  for (const auto& [m, name] : methods) {
    const Result r = run(m, spec, batches);
    rows.push_back({name, fmt_bytes(static_cast<double>(r.bytes)),
                    fmt(r.acc * 100, 2) + "%", fmt(r.auc, 3)});
    if (report != nullptr) {
      report->add("storage_" + name,
                  {{"embedding_bytes", static_cast<double>(r.bytes)},
                   {"accuracy", r.acc},
                   {"auc", r.auc}});
    }
  }
  print_table(rows);
  note("TT matches the dense baseline at ~14x fewer embedding bytes (the");
  note("paper's Table IV claim). On this synthetic teacher — IID random");
  note("per-row scores — hashing at the same budget is statistically tied");
  note("with TT: random scores have no low-rank structure for TT to exploit,");
  note("and Zipf skew lets hashing's hot rows dominate their collision sets.");
  note("TT's advantages are the collision-free mapping and (per the paper)");
  note("accuracy on real CTR data; int8 training shows the rounding losses");
  note("the paper cites for quantized tables.");
}

struct SweepResult {
  double final_loss = 0.0;
  double reduction = 1.0;
};

SweepResult run_codec_point(const CodecConfig& codec, index_t batches) {
  // Same pipeline shape as bench_codec's end-to-end arm (one host table).
  DatasetSpec spec;
  spec.name = "codec-sweep";
  spec.num_dense = 4;
  spec.table_rows = {20000, 4000, 256};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.15;

  ElRecTrainerConfig cfg;
  cfg.model.num_dense = spec.num_dense;
  cfg.model.embedding_dim = 16;
  cfg.model.bottom_hidden = {32};
  cfg.model.top_hidden = {32};
  cfg.placement = {TablePlacement::kDeviceTT, TablePlacement::kHost,
                   TablePlacement::kDeviceDense};
  cfg.tt_rank = 8;
  cfg.lr = 0.05f;
  cfg.seed = 3;
  cfg.queue_capacity = 4;
  cfg.codec = codec;

  ElRecTrainer trainer(cfg, spec);
  SyntheticDataset data(spec, 17);
  const ElRecRunStats stats = trainer.train(data, batches, kBatch);
  SweepResult r;
  r.final_loss = stats.final_loss;
  r.reduction = stats.encoded_queue_bytes > 0
                    ? static_cast<double>(stats.raw_queue_bytes) /
                          static_cast<double>(stats.encoded_queue_bytes)
                    : 1.0;
  return r;
}

void codec_bound_sweep(JsonBenchReport* report, index_t batches) {
  header("Ablation: codec error-bound sweep (bytes on queue vs final loss)");
  CodecConfig null_cfg;
  const SweepResult base = run_codec_point(null_cfg, batches);

  std::vector<std::vector<std::string>> table;
  table.push_back(
      {"Codec", "rel bound", "bytes reduction", "final loss", "loss delta"});
  table.push_back({"null", "-", fmt(base.reduction, 2) + "x",
                   fmt(base.final_loss, 4), "0.00000"});
  if (report != nullptr) {
    report->add("sweep_null", {{"rel_bound", 0.0},
                               {"bytes_reduction", base.reduction},
                               {"final_loss", base.final_loss},
                               {"loss_delta", 0.0}});
  }
  for (const int bits : {8, 4}) {
    for (const float rel_bound : {0.01f, 0.05f, 0.1f, 0.2f}) {
      CodecConfig cfg;
      cfg.id = CodecId::kDualLevel;
      cfg.bits = bits;
      cfg.rel_bound = rel_bound;
      const SweepResult r = run_codec_point(cfg, batches);
      const double delta = std::abs(r.final_loss - base.final_loss);
      const std::string name = "dual-int" + std::to_string(bits);
      table.push_back({name, fmt(rel_bound, 2), fmt(r.reduction, 2) + "x",
                       fmt(r.final_loss, 4), fmt(delta, 5)});
      if (report != nullptr) {
        report->add("sweep_" + name + "_b" + fmt(rel_bound, 2),
                    {{"rel_bound", rel_bound},
                     {"bytes_reduction", r.reduction},
                     {"final_loss", r.final_loss},
                     {"loss_delta", delta}});
      }
    }
  }
  print_table(table);
  note("Level-2 quantization dominates on this workload (touched rows carry");
  note("signal, so the level-1 dead zone drops few of them; wider bounds add");
  note("only marginal sparsification). int4 doubles the saving over int8 at");
  note("the same bound, and the loss delta stays within the rel_bound * RMS");
  note("error budget across the whole sweep.");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = has_flag(argc, argv, "--quick");
  if (quick) {
    JsonBenchReport report("ablation_compression");
    storage_ablation(&report, /*batches=*/150);
    codec_bound_sweep(&report, /*batches=*/40);
    report.write();
    return 0;
  }
  storage_ablation(nullptr, /*batches=*/600);
  codec_bound_sweep(nullptr, /*batches=*/200);
  return 0;
}
