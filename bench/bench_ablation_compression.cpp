// Ablation: embedding-compression methods at comparable budgets — the
// paper's related-work argument made quantitative. Trains the same DLRM on
// teacher-labeled data with:
//   dense      — fp32 nn.EmbeddingBag (reference)
//   eff-tt     — Eff-TT tables (the paper's method)
//   hashing    — feature hashing with the SAME parameter count as eff-tt
//   int8       — row-wise quantized table (4x smaller than dense)
// and reports accuracy/AUC next to the embedding bytes.
#include <memory>

#include "bench_util.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "dlrm/dlrm_model.hpp"
#include "dlrm/metrics.hpp"
#include "embed/embedding_bag.hpp"
#include "embed/hashed_embedding_bag.hpp"
#include "embed/quantized_embedding_bag.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

constexpr index_t kDim = 16;
constexpr index_t kRank = 8;
constexpr index_t kBatch = 256;
constexpr index_t kBatches = 600;

enum class Method { kDense, kEffTT, kHashing, kInt8 };

std::unique_ptr<IEmbeddingTable> make_table(Method m, index_t rows,
                                            Prng& rng) {
  switch (m) {
    case Method::kDense:
      return std::make_unique<EmbeddingBag>(rows, kDim, rng);
    case Method::kEffTT: {
      if (rows < 500) return std::make_unique<EmbeddingBag>(rows, kDim, rng);
      return std::make_unique<EffTTTable>(
          rows, TTShape::balanced(rows, kDim, 3, kRank), rng);
    }
    case Method::kHashing: {
      if (rows < 500) return std::make_unique<EmbeddingBag>(rows, kDim, rng);
      // Same float budget as the TT table of this row count.
      const TTShape shape = TTShape::balanced(rows, kDim, 3, kRank);
      const index_t hash_rows = std::max<index_t>(
          2, static_cast<index_t>(shape.parameter_count()) / kDim);
      return std::make_unique<HashedEmbeddingBag>(
          rows, std::min(hash_rows, rows), kDim, rng);
    }
    case Method::kInt8:
      return std::make_unique<QuantizedEmbeddingBag>(rows, kDim, rng);
  }
  return nullptr;
}

struct Result {
  double acc = 0.0, auc = 0.0;
  std::size_t bytes = 0;
};

Result run(Method m, const DatasetSpec& spec) {
  Prng rng(101);
  DlrmConfig cfg;
  cfg.num_dense = spec.num_dense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {32};
  cfg.top_hidden = {32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) tables.push_back(make_table(m, rows, rng));
  DlrmModel model(cfg, std::move(tables), rng);

  SyntheticDataset data(spec, 555);
  for (index_t b = 0; b < kBatches; ++b) {
    model.train_step(data.next_batch(kBatch), 0.15f);
  }
  Result r;
  r.bytes = model.embedding_bytes();
  std::vector<float> probs, all_p, all_l;
  for (std::uint64_t salt = 0; salt < 8; ++salt) {
    const MiniBatch eval = data.eval_batch(512, salt);
    model.predict(eval, probs);
    all_p.insert(all_p.end(), probs.begin(), probs.end());
    all_l.insert(all_l.end(), eval.labels.begin(), eval.labels.end());
  }
  r.acc = binary_accuracy(all_p, all_l);
  r.auc = roc_auc(all_p, all_l);
  return r;
}

}  // namespace

int main() {
  header("Ablation: compression methods at comparable budgets (Criteo-Kaggle-like, 2000x scaled)");
  const DatasetSpec spec = criteo_kaggle_spec().scaled(2000);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Method", "Embedding bytes", "Accuracy", "AUC"});
  const std::pair<Method, std::string> methods[] = {
      {Method::kDense, "dense fp32"},
      {Method::kEffTT, "Eff-TT (rank 8)"},
      {Method::kHashing, "hashing @ TT budget"},
      {Method::kInt8, "int8 rowwise"},
  };
  for (const auto& [m, name] : methods) {
    const Result r = run(m, spec);
    rows.push_back({name, fmt_bytes(static_cast<double>(r.bytes)),
                    fmt(r.acc * 100, 2) + "%", fmt(r.auc, 3)});
  }
  print_table(rows);
  note("TT matches the dense baseline at ~14x fewer embedding bytes (the");
  note("paper's Table IV claim). On this synthetic teacher — IID random");
  note("per-row scores — hashing at the same budget is statistically tied");
  note("with TT: random scores have no low-rank structure for TT to exploit,");
  note("and Zipf skew lets hashing's hot rows dominate their collision sets.");
  note("TT's advantages are the collision-free mapping and (per the paper)");
  note("accuracy on real CTR data; int8 training shows the rounding losses");
  note("the paper cites for quantized tables.");
  return 0;
}
