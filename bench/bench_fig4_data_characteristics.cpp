// Fig. 4: characteristics of DLRM training data.
//  (a) cumulative access share of the hottest rows ("power-law" skew)
//  (b) average unique indices per batch vs. batch size (the dedup gap)
// Measured on the synthetic streams at a scaled table size; the generator's
// Zipf exponents are the per-dataset values used everywhere else.
#include "bench_util.hpp"
#include "data/stats.hpp"

using namespace elrec;
using namespace elrec::benchutil;

int main() {
  header("Fig. 4(a): cumulative access share of the hottest rows");
  const std::vector<double> fractions{0.0001, 0.001, 0.01, 0.05, 0.1, 0.5};
  std::vector<std::vector<std::string>> rows;
  {
    std::vector<std::string> head{"Dataset (largest table)"};
    for (double f : fractions) head.push_back("top " + fmt(f * 100, 2) + "%");
    rows.push_back(head);
  }
  for (const DatasetSpec& full : paper_dataset_specs()) {
    const DatasetSpec spec = full.scaled(100);
    SyntheticDataset data(spec, 42);
    // Largest table of the dataset.
    index_t t = 0;
    for (index_t i = 0; i < spec.num_tables(); ++i) {
      if (spec.table_rows[static_cast<std::size_t>(i)] >
          spec.table_rows[static_cast<std::size_t>(t)]) {
        t = i;
      }
    }
    const auto shares =
        cumulative_access_share(data, t, fractions, 200000, 2048);
    std::vector<std::string> row{full.name};
    for (double s : shares) row.push_back(fmt(s * 100, 1) + "%");
    rows.push_back(row);
  }
  print_table(rows);
  note("A tiny fraction of rows receives the majority of accesses (paper: the");
  note("motivation for intermediate-result reuse and hot-index pinning).");

  header("Fig. 4(b): average unique indices per batch vs batch size");
  std::vector<std::vector<std::string>> urows;
  urows.push_back({"Dataset", "B=512", "B=1024", "B=2048", "B=4096",
                   "unique/B at 4096"});
  for (const DatasetSpec& full : paper_dataset_specs()) {
    const DatasetSpec spec = full.scaled(100);
    SyntheticDataset data(spec, 7);
    index_t t = 0;
    for (index_t i = 0; i < spec.num_tables(); ++i) {
      if (spec.table_rows[static_cast<std::size_t>(i)] >
          spec.table_rows[static_cast<std::size_t>(t)]) {
        t = i;
      }
    }
    std::vector<std::string> row{full.name};
    double last_ratio = 0.0;
    for (index_t b : {512, 1024, 2048, 4096}) {
      const double u = avg_unique_indices_per_batch(data, t, b, 6);
      row.push_back(fmt(u, 0));
      last_ratio = u / static_cast<double>(b);
    }
    row.push_back(fmt(last_ratio, 3));
    urows.push_back(row);
  }
  print_table(urows);
  note("Unique indices grow sublinearly with batch size: the gap is the");
  note("workload the paper's in-advance gradient aggregation removes.");
  return 0;
}
