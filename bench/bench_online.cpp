// Online-training benchmark: what does continuous promotion cost?
//
// One process runs the full closed loop — trainer consuming the drifting
// stream, client threads keeping a RequestScheduler under Zipf load over a
// HotSwapBackend — in two phases:
//
//   steady     train with no promotions (baseline batches/s and serving p99)
//   promotion  same training interleaved with checkpoint -> promote cycles
//
// Reported: training batches/s in each phase (promotion-phase slowdown is
// the price of checkpoint emission + generation builds sharing the box),
// serving p99 inside promotion windows vs outside, and the swap pause
// itself (online.swap_us). Every accepted request must be served in both
// phases.
//
//   --quick   3 promotions, writes BENCH_online.json
//   (default) 5 promotions, longer steady window
#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/eff_tt_table.hpp"
#include "data/drift.hpp"
#include "data/synthetic.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "obs/metrics.hpp"
#include "online/hot_swap_backend.hpp"
#include "online/model_promoter.hpp"
#include "online/online_trainer.hpp"
#include "serve/request_scheduler.hpp"

namespace {

using namespace elrec;
using benchutil::fmt;

constexpr index_t kDense = 13;
constexpr index_t kDim = 16;

DatasetSpec online_spec() {
  DatasetSpec spec;
  spec.name = "online";
  spec.num_dense = kDense;
  spec.table_rows = {20000, 8000};
  spec.num_samples = 1 << 22;
  spec.zipf_s = 1.05;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(const DatasetSpec& spec,
                                      std::uint64_t seed) {
  Prng rng(seed);
  DlrmConfig cfg;
  cfg.num_dense = kDense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {64, 32};
  cfg.top_hidden = {64, 32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) {
    tables.push_back(std::make_unique<EffTTTable>(
        rows, TTShape::balanced(rows, kDim, 3, 16), rng));
  }
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

struct LatencySample {
  double us = 0.0;
  bool during_promotion = false;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Closed-loop client: submits single-lookup Zipf requests until told to
/// stop, recording end-to-end latency tagged with whether a promotion was
/// in flight at submit or completion time.
void run_client(RequestScheduler& sched, const DatasetSpec& spec,
                std::uint64_t seed, const std::atomic<bool>& stop,
                const std::atomic<bool>& in_promotion,
                std::vector<LatencySample>& out) {
  SyntheticDataset data(spec, seed);
  Prng rng(seed * 7919 + 1);
  const std::size_t num_tables = spec.table_rows.size();
  while (!stop.load(std::memory_order_acquire)) {
    RankingRequest req;
    req.dense.resize(static_cast<std::size_t>(kDense));
    for (auto& v : req.dense) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    req.sparse.resize(num_tables);
    for (std::size_t t = 0; t < num_tables; ++t) {
      req.sparse[t].push_back(data.sampler(static_cast<index_t>(t)).sample(rng));
    }
    const bool promo_before = in_promotion.load(std::memory_order_acquire);
    std::future<RankingResponse> fut;
    const auto t0 = std::chrono::steady_clock::now();
    const SubmitStatus st = sched.submit(std::move(req), fut);
    if (st == SubmitStatus::kClosed) return;
    if (st != SubmitStatus::kAccepted) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      continue;
    }
    (void)fut.get();
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    out.push_back(
        {us, promo_before || in_promotion.load(std::memory_order_acquire)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = benchutil::has_flag(argc, argv, "--quick");
  const int promotions = quick ? 3 : 5;
  const int steady_batches = quick ? 60 : 150;
  const int batches_per_promotion = quick ? 30 : 60;
  constexpr int kClients = 2;

  benchutil::header("Online training: promotion cost vs steady state");
  benchutil::note("promotions = " + std::to_string(promotions) +
                  ", batches/promotion = " +
                  std::to_string(batches_per_promotion));

  const DatasetSpec spec = online_spec();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "elrec_bench_online").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  DriftScheduleConfig drift;
  drift.period_batches = 25;
  drift.max_step_fraction = 0.05;
  DriftingDataset stream(spec, 3, drift);

  OnlineTrainerConfig tcfg;
  tcfg.batch_size = 128;
  tcfg.checkpoint_every_n = 0;  // explicit emits; the bench paces promotions
  tcfg.checkpoint_dir = dir;
  OnlineTrainer trainer(make_model(spec, 1), stream, tcfg);

  // Bootstrap generation 0.
  trainer.train_batches(20);
  const std::string ckpt0 = trainer.write_checkpoint();
  ModelPromoterConfig pcfg;
  pcfg.session.cache.capacity = 2048;
  pcfg.warm_top_k = 1024;
  auto gen0 = std::make_shared<ServingGeneration>();
  gen0->id = 0;
  gen0->checkpoint_path = ckpt0;
  {
    auto m = make_model(spec, 99);
    load_dlrm_model(*m, ckpt0);
    gen0->session =
        std::make_unique<InferenceSession>(std::move(m), pcfg.session);
  }
  HotSwapBackend backend(std::move(gen0));
  ModelPromoter promoter(
      backend, [&spec] { return make_model(spec, 12345); }, pcfg);

  RequestSchedulerConfig qcfg;
  qcfg.num_workers = 3;
  qcfg.max_batch = 16;
  qcfg.max_wait_us = 100;
  qcfg.queue_capacity = 512;
  RequestScheduler sched(backend, qcfg);

  std::atomic<bool> stop{false};
  std::atomic<bool> in_promotion{false};
  std::vector<std::vector<LatencySample>> samples(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      run_client(sched, spec, 40 + static_cast<std::uint64_t>(c), stop,
                 in_promotion, samples[static_cast<std::size_t>(c)]);
    });
  }

  // Phase 1: steady state — training under client load, no promotions.
  const auto s0 = std::chrono::steady_clock::now();
  trainer.train_batches(steady_batches);
  const double steady_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - s0)
          .count();
  const std::size_t steady_cut_total = [&] {
    // Samples recorded so far belong to the steady phase; everything after
    // this point (modulo one in-flight request per client) is churn-phase.
    std::size_t n = 0;
    for (const auto& v : samples) n += v.size();
    return n;
  }();

  // Phase 2: promotion churn — same training rate target, but every
  // batches_per_promotion batches a checkpoint is emitted, restored, warmed
  // and hot-swapped while the clients keep hammering.
  obs::MetricsRegistry::global().histogram("online.swap_us").reset();
  const auto p0 = std::chrono::steady_clock::now();
  for (int p = 0; p < promotions; ++p) {
    trainer.train_batches(batches_per_promotion);
    const std::string ckpt = trainer.write_checkpoint();
    in_promotion.store(true, std::memory_order_release);
    (void)promoter.promote(ckpt, &trainer.access_stats());
    in_promotion.store(false, std::memory_order_release);
  }
  const double promo_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - p0)
          .count();

  stop.store(true, std::memory_order_release);
  for (auto& th : clients) th.join();
  sched.shutdown();

  // Split the latency stream: the first steady_cut_total samples (in
  // per-client record order) are steady-phase; of the rest, the
  // during_promotion tag isolates requests that overlapped a swap window.
  std::vector<double> steady_lat, churn_lat, swap_window_lat;
  {
    std::size_t seen = 0;
    for (const auto& per_client : samples) {
      for (const auto& s : per_client) {
        // Per-client order is chronological; the global cut is approximate
        // by +-1 in-flight request per client, which is noise at this count.
        if (seen < steady_cut_total && !s.during_promotion) {
          steady_lat.push_back(s.us);
        } else if (s.during_promotion) {
          swap_window_lat.push_back(s.us);
        } else {
          churn_lat.push_back(s.us);
        }
        ++seen;
      }
    }
  }

  const auto qs = sched.stats();
  const auto swap_summary =
      obs::MetricsRegistry::global().histogram("online.swap_us").summary();
  const double steady_bps = static_cast<double>(steady_batches) / steady_s;
  const double promo_bps =
      static_cast<double>(promotions * batches_per_promotion) / promo_s;
  const double p99_steady = percentile(steady_lat, 0.99);
  const double p99_churn = percentile(churn_lat, 0.99);
  const double p99_swap = percentile(swap_window_lat, 0.99);

  ELREC_CHECK(qs.accepted == qs.served,
              "accepted requests lost across promotions");
  ELREC_CHECK(promoter.stats().promotions ==
                  static_cast<std::uint64_t>(promotions),
              "a promotion failed");

  std::vector<std::vector<std::string>> table = {
      {"phase", "batches/s", "p99 us", "samples"},
      {"steady (no promotions)", fmt(steady_bps, 1), fmt(p99_steady),
       std::to_string(steady_lat.size())},
      {"churn, outside swap", fmt(promo_bps, 1), fmt(p99_churn),
       std::to_string(churn_lat.size())},
      {"churn, inside swap window", "-", fmt(p99_swap),
       std::to_string(swap_window_lat.size())},
  };
  benchutil::print_table(table);
  benchutil::note("swap pause: p50 " + fmt(swap_summary.p50) + " us, p99 " +
                  fmt(swap_summary.p99) + " us over " +
                  std::to_string(swap_summary.count) + " swaps");
  benchutil::note("train slowdown under churn: " +
                  fmt(steady_bps / promo_bps, 2) + "x; serving p99 delta " +
                  fmt(p99_swap - p99_steady) + " us across the swap");

  benchutil::JsonBenchReport report("online");
  report.add("steady", {{"batches_per_s", steady_bps},
                        {"p99_us", p99_steady},
                        {"samples", static_cast<double>(steady_lat.size())}});
  report.add("promotion_churn",
             {{"batches_per_s", promo_bps},
              {"train_slowdown_x", steady_bps / promo_bps},
              {"p99_outside_swap_us", p99_churn},
              {"p99_inside_swap_us", p99_swap},
              {"p99_delta_us", p99_swap - p99_steady},
              {"promotions", static_cast<double>(promotions)},
              {"swap_p50_us", swap_summary.p50},
              {"swap_p99_us", swap_summary.p99},
              {"accepted", static_cast<double>(qs.accepted)},
              {"served", static_cast<double>(qs.served)},
              {"shed", static_cast<double>(qs.shed)}});
  if (quick) report.write();

  std::filesystem::remove_all(dir);
  return 0;
}
