// Fig. 17: Eff-TT table LOOKUP latency vs batch size — REAL measurements
// (google-benchmark) of this repo's kernels on one CPU core.
//
// Series:
//   TTRec        — baseline TT table, per-occurrence recompute (TT-Rec)
//   EffTT_NoReuse— Eff-TT with intermediate-result reuse disabled
//   EffTT        — full Eff-TT (two-level reuse)
//   EffTT_Reorder— full Eff-TT + locality-based index reordering (§IV)
//   DenseBag     — uncompressed EmbeddingBag reference
// Paper shape: EffTT ~1.83x over TTRec on average, growing with batch size;
// reordering adds ~1.05x on top.
#include <benchmark/benchmark.h>

#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "embed/embedding_bag.hpp"
#include "reorder/bijection.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

constexpr index_t kRows = 500000;
constexpr index_t kDim = 32;
constexpr index_t kRank = 16;

DatasetSpec bench_spec() {
  DatasetSpec spec;
  spec.name = "fig17";
  spec.num_dense = 1;
  spec.table_rows = {kRows};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.2;
  spec.locality_groups = 16;
  spec.locality_fraction = 0.5;
  return spec;
}

// Pre-generates batches so data generation stays out of the timed region.
std::vector<IndexBatch> make_batches(index_t batch_size, int count) {
  SyntheticDataset data(bench_spec(), 4321);
  std::vector<IndexBatch> batches;
  for (int i = 0; i < count; ++i) {
    batches.push_back(data.next_batch(batch_size).sparse[0]);
  }
  return batches;
}

std::vector<index_t> reorder_mapping(std::uint64_t data_seed) {
  // Built offline from the same-seeded stream the benchmark measures on
  // (the paper generates the bijection from the training data).
  static const std::vector<index_t> mapping = [data_seed] {
    SyntheticDataset data(bench_spec(), data_seed);
    ReorderPipeline pipeline(kRows, 0.005, 5);
    for (int b = 0; b < 128; ++b) {
      pipeline.add_batch(data.next_batch(1024).sparse[0].indices);
    }
    return pipeline.finish().mapping;
  }();
  return mapping;
}

template <typename Table>
void run_lookup(benchmark::State& state, Table& table, index_t batch_size) {
  const auto batches = make_batches(batch_size, 8);
  Matrix out;
  std::size_t i = 0;
  for (auto _ : state) {
    table.forward(batches[i % batches.size()], out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch_size);
}

void BM_Lookup_TTRec(benchmark::State& state) {
  Prng rng(1);
  TTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  run_lookup(state, table, state.range(0));
}

void BM_Lookup_EffTT_NoReuse(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng,
                   EffTTConfig{false, true, true});
  run_lookup(state, table, state.range(0));
}

void BM_Lookup_EffTT(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  run_lookup(state, table, state.range(0));
}

void BM_Lookup_EffTT_Reorder(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  table.set_index_bijection(reorder_mapping(4321));
  run_lookup(state, table, state.range(0));
}

void BM_Lookup_DenseBag(benchmark::State& state) {
  Prng rng(1);
  EmbeddingBag table(kRows, kDim, rng);
  run_lookup(state, table, state.range(0));
}

#define LOOKUP_ARGS \
  ->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)->MinTime(0.05)

BENCHMARK(BM_Lookup_TTRec) LOOKUP_ARGS;
BENCHMARK(BM_Lookup_EffTT_NoReuse) LOOKUP_ARGS;
BENCHMARK(BM_Lookup_EffTT) LOOKUP_ARGS;
BENCHMARK(BM_Lookup_EffTT_Reorder) LOOKUP_ARGS;
BENCHMARK(BM_Lookup_DenseBag) LOOKUP_ARGS;

}  // namespace
}  // namespace elrec

BENCHMARK_MAIN();
