// Fig. 17: Eff-TT table LOOKUP latency vs batch size — REAL measurements
// (google-benchmark) of this repo's kernels on one CPU core.
//
// Series:
//   TTRec        — baseline TT table, per-occurrence recompute (TT-Rec)
//   EffTT_NoReuse— Eff-TT with intermediate-result reuse disabled
//   EffTT        — full Eff-TT (two-level reuse)
//   EffTT_Reorder— full Eff-TT + locality-based index reordering (§IV)
//   DenseBag     — uncompressed EmbeddingBag reference
// Paper shape: EffTT ~1.83x over TTRec on average, growing with batch size;
// reordering adds ~1.05x on top.
// `--quick` runs a single batch size (2048) over the three main series and
// writes BENCH_fig17_lookup.json (ns/lookup) for the perf-regression harness.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "embed/embedding_bag.hpp"
#include "reorder/bijection.hpp"
#include "tt/tt_table.hpp"

namespace elrec {
namespace {

constexpr index_t kRows = 500000;
constexpr index_t kDim = 32;
constexpr index_t kRank = 16;

DatasetSpec bench_spec() {
  DatasetSpec spec;
  spec.name = "fig17";
  spec.num_dense = 1;
  spec.table_rows = {kRows};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.2;
  spec.locality_groups = 16;
  spec.locality_fraction = 0.5;
  return spec;
}

// Pre-generates batches so data generation stays out of the timed region.
std::vector<IndexBatch> make_batches(index_t batch_size, int count) {
  SyntheticDataset data(bench_spec(), 4321);
  std::vector<IndexBatch> batches;
  for (int i = 0; i < count; ++i) {
    batches.push_back(data.next_batch(batch_size).sparse[0]);
  }
  return batches;
}

std::vector<index_t> reorder_mapping(std::uint64_t data_seed) {
  // Built offline from the same-seeded stream the benchmark measures on
  // (the paper generates the bijection from the training data).
  static const std::vector<index_t> mapping = [data_seed] {
    SyntheticDataset data(bench_spec(), data_seed);
    ReorderPipeline pipeline(kRows, 0.005, 5);
    for (int b = 0; b < 128; ++b) {
      pipeline.add_batch(data.next_batch(1024).sparse[0].indices);
    }
    return pipeline.finish().mapping;
  }();
  return mapping;
}

template <typename Table>
void run_lookup(benchmark::State& state, Table& table, index_t batch_size) {
  const auto batches = make_batches(batch_size, 8);
  Matrix out;
  std::size_t i = 0;
  for (auto _ : state) {
    table.forward(batches[i % batches.size()], out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch_size);
}

void BM_Lookup_TTRec(benchmark::State& state) {
  Prng rng(1);
  TTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  run_lookup(state, table, state.range(0));
}

void BM_Lookup_EffTT_NoReuse(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng,
                   EffTTConfig{false, true, true});
  run_lookup(state, table, state.range(0));
}

void BM_Lookup_EffTT(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  run_lookup(state, table, state.range(0));
}

void BM_Lookup_EffTT_Reorder(benchmark::State& state) {
  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
  table.set_index_bijection(reorder_mapping(4321));
  run_lookup(state, table, state.range(0));
}

void BM_Lookup_DenseBag(benchmark::State& state) {
  Prng rng(1);
  EmbeddingBag table(kRows, kDim, rng);
  run_lookup(state, table, state.range(0));
}

#define LOOKUP_ARGS \
  ->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)->MinTime(0.05)

BENCHMARK(BM_Lookup_TTRec) LOOKUP_ARGS;
BENCHMARK(BM_Lookup_EffTT_NoReuse) LOOKUP_ARGS;
BENCHMARK(BM_Lookup_EffTT) LOOKUP_ARGS;
BENCHMARK(BM_Lookup_EffTT_Reorder) LOOKUP_ARGS;
BENCHMARK(BM_Lookup_DenseBag) LOOKUP_ARGS;

// Best-of-3 ns per individual index lookup at the quick batch size.
template <typename Table>
double quick_ns_per_lookup(Table& table, const std::vector<IndexBatch>& batches,
                           index_t batch_size) {
  Matrix out;
  table.forward(batches[0], out);  // warm up
  const double secs = benchutil::time_best_seconds(
      [&] {
        for (const IndexBatch& b : batches) table.forward(b, out);
      },
      3);
  return secs / (static_cast<double>(batches.size()) * batch_size) * 1e9;
}

}  // namespace

int run_quick() {
  benchutil::header("Fig. 17 lookup (--quick, batch 2048)");
  constexpr index_t kBatch = 2048;
  const auto batches = make_batches(kBatch, 8);
  benchutil::JsonBenchReport report("fig17_lookup");
  std::vector<std::vector<std::string>> table{{"series", "ns/lookup"}};
  const auto record = [&](const std::string& name, double ns) {
    report.add(name, {{"ns/lookup", ns}});
    table.push_back({name, benchutil::fmt(ns)});
  };

  {
    Prng rng(1);
    TTTable t(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
    record("TTRec", quick_ns_per_lookup(t, batches, kBatch));
  }
  {
    Prng rng(1);
    EffTTTable t(kRows, TTShape::balanced(kRows, kDim, 3, kRank), rng);
    record("EffTT", quick_ns_per_lookup(t, batches, kBatch));
  }
  {
    Prng rng(1);
    EmbeddingBag t(kRows, kDim, rng);
    record("DenseBag", quick_ns_per_lookup(t, batches, kBatch));
  }

  benchutil::print_table(table);
  return report.write() ? 0 : 1;
}

}  // namespace elrec

int main(int argc, char** argv) {
  if (elrec::benchutil::has_flag(argc, argv, "--quick")) {
    return elrec::run_quick();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
