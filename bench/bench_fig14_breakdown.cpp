// Fig. 14: Eff-TT optimization breakdown — REAL measurements.
//
// Trains a single Eff-TT embedding table (forward + backward + update) on
// Zipf-skewed batches and reports throughput with each optimization
// disabled in turn:
//   * w/o in-advance gradient aggregation (paper: ~-52%)
//   * w/o intermediate result reuse      (paper: ~-10%)
//   * w/o index reordering               (paper: ~-13%)
// Table sizes scale the paper's 2.5M/5M/10M rows down by 10x so the sweep
// finishes on one CPU core; the compute-reduction mechanism is identical.
#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "reorder/bijection.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

constexpr index_t kDim = 32;
constexpr index_t kRank = 16;
constexpr index_t kBatch = 2048;
constexpr int kWarmup = 3;
constexpr int kIters = 12;

DatasetSpec one_table_spec(index_t rows) {
  DatasetSpec spec;
  spec.name = "breakdown";
  spec.num_dense = 1;
  spec.table_rows = {rows};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.2;
  spec.hot_ratio = 0.001;
  spec.locality_groups = 16;
  spec.locality_fraction = 0.5;
  return spec;
}

// Seconds for kIters train steps (forward + backward_and_update) over
// pre-generated batches.
double time_steps(EffTTTable& table, const std::vector<IndexBatch>& batches,
                  const Matrix& grad, int iters) {
  Matrix out;
  Stopwatch watch;
  for (int i = 0; i < iters; ++i) {
    const IndexBatch& b = batches[static_cast<std::size_t>(i) % batches.size()];
    table.forward(b, out);
    table.backward_and_update(b, grad, 0.01f);
  }
  return watch.seconds();
}

std::vector<index_t> build_reorder_bijection(const DatasetSpec& spec) {
  // Same seed as the measurement stream: the bijection is generated offline
  // from the data that will be trained on (paper §IV-C).
  SyntheticDataset offline(spec, 99);
  ReorderPipeline pipeline(spec.table_rows[0], spec.hot_ratio, 5);
  for (int b = 0; b < 128; ++b) {
    pipeline.add_batch(offline.next_batch(512).sparse[0].indices);
  }
  return pipeline.finish().mapping;
}

}  // namespace

int main() {
  header("Fig. 14: Eff-TT optimization breakdown (REAL, single CPU core)");
  note("table dim=" + std::to_string(kDim) + ", TT rank=" +
       std::to_string(kRank) + ", batch=" + std::to_string(kBatch) +
       "; rows scaled 10x down from the paper's 2.5M/5M/10M");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Rows", "full (samples/s)", "-reuse", "-aggregation",
                  "-fused update", "-reorder"});
  for (index_t table_rows : {250000, 500000, 1000000}) {
    const DatasetSpec spec = one_table_spec(table_rows);
    const TTShape shape = TTShape::balanced(table_rows, kDim, 3, kRank);
    const auto bijection = build_reorder_bijection(spec);

    // Shared inputs so every variant sees identical batches.
    SyntheticDataset data(spec, 99);
    std::vector<IndexBatch> batches;
    for (int i = 0; i < 8; ++i) {
      batches.push_back(data.next_batch(kBatch).sparse[0]);
    }
    Prng grad_rng(5);
    Matrix grad(kBatch, kDim);
    grad.fill_normal(grad_rng, 0.0f, 0.01f);

    // Variants, measured round-robin over several rounds; the best round
    // per variant filters out scheduler noise on this shared machine.
    struct Variant {
      EffTTConfig config;
      bool reorder;
    };
    const std::vector<Variant> variants{
        {EffTTConfig{}, true},                  // full
        {EffTTConfig{false, true, true}, true}, // -reuse
        {EffTTConfig{true, false, true}, true}, // -aggregation
        {EffTTConfig{true, true, false}, true}, // -fused update
        {EffTTConfig{}, false},                 // -reorder
    };
    std::vector<EffTTTable> tables;
    tables.reserve(variants.size());
    for (const Variant& v : variants) {
      Prng rng(11);
      tables.emplace_back(table_rows, shape, rng, v.config);
      if (v.reorder) tables.back().set_index_bijection(bijection);
    }
    std::vector<double> best(variants.size(), 1e30);
    for (int round = 0; round < 3; ++round) {
      for (std::size_t v = 0; v < variants.size(); ++v) {
        if (round == 0) time_steps(tables[v], batches, grad, kWarmup);
        best[v] = std::min(best[v], time_steps(tables[v], batches, grad,
                                               kIters));
      }
    }
    auto rate = [&](std::size_t v) {
      return kIters * static_cast<double>(kBatch) / best[v];
    };
    const double full = rate(0);
    auto rel = [&](std::size_t v) {
      return fmt(rate(v), 0) + " (" +
             fmt(100.0 * (rate(v) - full) / full, 0) + "%)";
    };
    rows.push_back({std::to_string(table_rows), fmt(full, 0), rel(1), rel(2),
                    rel(3), rel(4)});
  }
  print_table(rows);
  note("Paper shape: disabling in-advance aggregation costs the most (~-52%),");
  note("reuse ~-10%, reordering ~-13% (growing with table size).");
  return 0;
}
