// Serving-engine benchmark: micro-batched throughput and tail latency of
// the frozen Eff-TT + MLP path under a Zipf request stream, with and
// without the admission-controlled serving cache.
//
//   --quick   10k requests per config, 4 workers, writes BENCH_serving.json
//   (default) 50k requests per config
//
// Reported per config: p50/p95/p99 total latency, queue vs compute split,
// throughput, cache hit rate, shed events and dropped requests (must be 0:
// every accepted request is served).
#include <future>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/eff_tt_table.hpp"
#include "data/stats.hpp"
#include "data/synthetic.hpp"
#include "embed/embedding_bag.hpp"
#include "serve/inference_session.hpp"
#include "serve/request_scheduler.hpp"

namespace {

using namespace elrec;
using benchutil::fmt;

constexpr index_t kDense = 13;
constexpr index_t kDim = 16;

DatasetSpec serving_spec() {
  DatasetSpec spec;
  spec.name = "serving";
  spec.num_dense = kDense;
  spec.table_rows = {100000, 40000, 8000};
  spec.num_samples = 1 << 22;
  spec.zipf_s = 1.05;
  return spec;
}

std::unique_ptr<DlrmModel> make_model(const DatasetSpec& spec) {
  Prng rng(42);
  DlrmConfig cfg;
  cfg.num_dense = kDense;
  cfg.embedding_dim = kDim;
  cfg.bottom_hidden = {64, 32};
  cfg.top_hidden = {64, 32};
  std::vector<std::unique_ptr<IEmbeddingTable>> tables;
  for (index_t rows : spec.table_rows) {
    tables.push_back(std::make_unique<EffTTTable>(
        rows, TTShape::balanced(rows, kDim, 3, 16), rng));
  }
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

struct RunResult {
  LatencySummary total, queue, compute;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double hit_rate = 0.0;
  std::size_t shed = 0;
  std::size_t dropped = 0;
  index_t largest_batch = 0;
};

RunResult run_stream(const InferenceSession& session, std::size_t num_requests,
                     std::size_t num_workers) {
  RequestSchedulerConfig cfg;
  cfg.num_workers = num_workers;
  cfg.max_batch = 32;
  cfg.max_wait_us = 100;
  cfg.queue_capacity = 512;
  RequestScheduler sched(session, cfg);

  SyntheticDataset data(serving_spec(), 7);
  Prng rng(13);
  const index_t num_tables = session.num_tables();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<RankingResponse>> futs;
  futs.reserve(num_requests);
  for (std::size_t r = 0; r < num_requests; ++r) {
    RankingRequest req;
    req.dense.resize(static_cast<std::size_t>(kDense));
    for (auto& v : req.dense) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    req.sparse.resize(static_cast<std::size_t>(num_tables));
    for (index_t t = 0; t < num_tables; ++t) {
      req.sparse[static_cast<std::size_t>(t)].push_back(
          data.sampler(t).sample(rng));
    }
    // Closed-ish loop: when shed at the admission bound, back off and
    // retry — an accepted request is never dropped, a shed one is retried.
    std::future<RankingResponse> fut;
    for (;;) {
      const SubmitStatus st = sched.submit(req, fut);
      if (st == SubmitStatus::kAccepted) break;
      ELREC_CHECK(st == SubmitStatus::kOverloaded, "queue closed mid-run");
      std::this_thread::yield();
    }
    futs.push_back(std::move(fut));
  }
  std::size_t completed = 0;
  for (auto& f : futs) {
    (void)f.get();
    ++completed;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sched.shutdown();

  const auto stats = sched.stats();
  RunResult res;
  res.total = sched.latency().total_summary();
  res.queue = sched.latency().queue_summary();
  res.compute = sched.latency().compute_summary();
  res.wall_s = wall_s;
  res.throughput_rps = static_cast<double>(completed) / wall_s;
  res.hit_rate = session.cache_hit_rate();
  res.shed = stats.shed;
  res.dropped = stats.accepted - stats.served;
  res.largest_batch = stats.largest_batch;
  ELREC_CHECK(stats.served >= num_requests,
              "every accepted request must be served");
  ELREC_CHECK(res.dropped == 0, "no accepted request may be dropped");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = benchutil::has_flag(argc, argv, "--quick");
  const std::size_t num_requests = quick ? 10000 : 50000;
  const std::size_t num_workers = 4;

  benchutil::header("Serving engine: micro-batched frozen Eff-TT inference");
  benchutil::note("requests/config = " + std::to_string(num_requests) +
                  ", workers = " + std::to_string(num_workers));

  const DatasetSpec spec = serving_spec();
  benchutil::JsonBenchReport report("serving");
  std::vector<std::vector<std::string>> table = {
      {"config", "p50 us", "p95 us", "p99 us", "queue p50", "compute p50",
       "req/s", "hit rate", "shed", "max batch"}};

  struct Config {
    std::string name;
    index_t cache_capacity;
    bool warm;
  };
  const std::vector<Config> configs = {
      {"uncached", 0, false},
      {"cache_cold", 4096, false},
      {"cache_warm", 4096, true},
  };

  for (const auto& cfg : configs) {
    InferenceSessionConfig scfg;
    scfg.cache.capacity = cfg.cache_capacity;
    scfg.cache.admit_min_freq = 2;
    InferenceSession session(make_model(spec), scfg);
    if (cfg.warm) {
      SyntheticDataset stats_data(spec, 99);
      for (index_t t = 0; t < session.num_tables(); ++t) {
        session.warm_cache(
            t, top_accessed_indices(stats_data, t, /*k=*/4096,
                                    /*num_draws=*/100000));
      }
    }
    const RunResult r = run_stream(session, num_requests, num_workers);
    table.push_back({cfg.name, fmt(r.total.p50), fmt(r.total.p95),
                     fmt(r.total.p99), fmt(r.queue.p50),
                     fmt(r.compute.p50), fmt(r.throughput_rps, 0),
                     fmt(r.hit_rate, 3), std::to_string(r.shed),
                     std::to_string(r.largest_batch)});
    report.add(cfg.name,
               {{"requests", static_cast<double>(num_requests)},
                {"workers", static_cast<double>(num_workers)},
                {"p50_us", r.total.p50},
                {"p95_us", r.total.p95},
                {"p99_us", r.total.p99},
                {"queue_p50_us", r.queue.p50},
                {"compute_p50_us", r.compute.p50},
                {"throughput_rps", r.throughput_rps},
                {"cache_hit_rate", r.hit_rate},
                {"shed", static_cast<double>(r.shed)},
                {"dropped", static_cast<double>(r.dropped)},
                {"largest_batch", static_cast<double>(r.largest_batch)}});
  }

  benchutil::print_table(table);
  if (quick) report.write();
  return 0;
}
