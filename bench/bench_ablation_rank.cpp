// Ablation: TT rank — the paper's central hyperparameter (rank 128 on
// V100, 64 on T4). Sweeps rank over footprint, REAL training throughput of
// one Eff-TT table, and TT-SVD reconstruction error of a low-rank-structured
// table (the approximation-quality side of the trade-off).
#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/eff_tt_table.hpp"
#include "data/synthetic.hpp"
#include "tt/tt_svd.hpp"

using namespace elrec;
using namespace elrec::benchutil;

namespace {

constexpr index_t kRows = 500000;
constexpr index_t kDim = 32;
constexpr index_t kBatch = 2048;

double train_throughput(index_t rank) {
  DatasetSpec spec;
  spec.name = "rank-ablation";
  spec.num_dense = 1;
  spec.table_rows = {kRows};
  spec.num_samples = 1 << 20;
  spec.zipf_s = 1.2;
  SyntheticDataset data(spec, 7);

  Prng rng(1);
  EffTTTable table(kRows, TTShape::balanced(kRows, kDim, 3, rank), rng);
  Matrix out, grad(kBatch, kDim);
  Prng grad_rng(2);
  grad.fill_normal(grad_rng, 0.0f, 0.01f);
  std::vector<IndexBatch> batches;
  for (int i = 0; i < 6; ++i) batches.push_back(data.next_batch(kBatch).sparse[0]);

  // Warmup + best-of-3 rounds.
  double best = 1e30;
  for (int round = 0; round < 4; ++round) {
    Stopwatch watch;
    for (const IndexBatch& b : batches) {
      table.forward(b, out);
      table.backward_and_update(b, grad, 0.01f);
    }
    if (round > 0) best = std::min(best, watch.seconds());
  }
  return batches.size() * static_cast<double>(kBatch) / best;
}

}  // namespace

int main() {
  header("Ablation: TT rank — footprint vs throughput vs fidelity");

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Rank", "Params", "vs dense", "Train samples/s",
                  "SVD rel. error*"});

  // Fidelity probe: a synthetic table with fast-decaying spectrum,
  // decomposed by TT-SVD at each rank.
  Prng rng(3);
  TTCores generator(TTShape({8, 8, 8}, {4, 2, 4}, {1, 12, 12, 1}));
  generator.init_normal(rng, 0.1f);
  const Matrix probe = generator.materialize(512);

  for (index_t rank : {4, 8, 16, 32, 64}) {
    const TTShape shape = TTShape::balanced(kRows, kDim, 3, rank);
    const double err =
        tt_reconstruction_error(tt_svd(probe, {8, 8, 8}, {4, 2, 4}, rank),
                                probe);
    rows.push_back({std::to_string(rank),
                    std::to_string(shape.parameter_count()),
                    fmt(shape.compression_ratio(kRows), 0) + "x smaller",
                    fmt(train_throughput(rank), 0), fmt(err, 4)});
  }
  print_table(rows);
  note("*reconstruction of a rank-12-structured 512x32 probe table;");
  note(" error hits float-level once rank >= the table's intrinsic rank.");
  note("Throughput falls roughly with rank^2 (the prefix GEMM is O(R^2));");
  note("the paper picks rank 64-128 as the accuracy/cost sweet spot.");
  return 0;
}
