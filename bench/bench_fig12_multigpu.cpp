// Fig. 12: training throughput under the multi-GPU setting (p3.8xlarge,
// 1 vs 4 Tesla V100). EL-Rec replicates TT tables data-parallel (gradient
// all-reduce only); DLRM shards dense tables model-parallel (per-table
// all-to-alls). Times from the calibrated cost models.
#include "bench_util.hpp"
#include "sim_inputs.hpp"
#include "sim/framework_models.hpp"

using namespace elrec;
using namespace elrec::benchutil;

int main() {
  header("Fig. 12: training throughput (samples/s), 1 vs 4 V100 GPUs, batch 4096");
  const DeviceSpec dev = v100();
  // Gradient all-reduce compressed by the real dual-level int8 codec: the
  // bytes-on-wire ratio is measured by round-tripping Zipf-skewed gradient
  // tensors through src/codec, then fed to the cost model.
  CodecConfig codec;
  codec.id = CodecId::kDualLevel;
  codec.bits = 8;
  codec.rel_bound = 0.05f;
  const double ratio = measured_codec_ratio(codec, 4096, 64);
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Dataset", "DLRM 1GPU", "DLRM 4GPU", "EL-Rec 1GPU",
                  "EL-Rec 4GPU", "EL-Rec 4GPU+codec", "EL-Rec4/DLRM4"});
  for (const DatasetSpec& spec : paper_dataset_specs()) {
    DlrmWorkload w = DlrmWorkload::from_spec(spec, 4096, 64, 128);
    ground_workload_stats(w, spec);
    const double dl1 = model_dlrm_multi(w, dev, 1).throughput(4096);
    const double dl4 = model_dlrm_multi(w, dev, 4).throughput(4096);
    const double el1 = model_elrec_multi(w, dev, 1).throughput(4096);
    const double el4 = model_elrec_multi(w, dev, 4).throughput(4096);
    DlrmWorkload wc = w;
    wc.comm_compression_ratio = ratio;
    const double el4c = model_elrec_multi(wc, dev, 4).throughput(4096);
    rows.push_back({spec.name, fmt(dl1, 0), fmt(dl4, 0), fmt(el1, 0),
                    fmt(el4, 0), fmt(el4c, 0), fmt(el4 / dl4, 2) + "x"});
  }
  print_table(rows);
  note("Paper shape: EL-Rec(4) beats DLRM(4) (~1.4x) because replicated TT");
  note("tables avoid model-parallel all-to-alls; DLRM(1) slightly beats");
  note("EL-Rec(1) since tensorization adds compute when memory fits.");
  note("(DLRM 1-GPU assumes tables fit in HBM; true for Kaggle/Avazu only.)");
  note("+codec: gradient all-reduce bytes cut " + fmt(ratio, 2) +
       "x (measured dual-level int8 ratio), shrinking the serial");
  note("all-reduce phase on top of the NCCL overlap already priced in.");
  return 0;
}
