// Shared helper grounding the simulator's input statistics in analytic
// properties of the full-scale datasets.
//
// The end-to-end figures need unique-index and unique-prefix ratios at the
// PAPER's table sizes (tens of millions of rows), which a scaled synthetic
// run would overstate. For Zipf draws they have a closed form:
//   E[#unique] = sum_r (1 - (1 - p_r)^B)
// evaluated here with log-spaced rank sampling (exact within ~1%).
#pragma once

#include <cmath>
#include <vector>

#include "codec/grad_codec.hpp"
#include "common/prng.hpp"
#include "sim/workload.hpp"

namespace elrec::benchutil {

/// Measured bytes-on-wire reduction (raw / encoded) of `cfg` over a stream
/// of synthetic pooled-embedding gradients: per-row magnitudes follow the
/// Zipf-like skew of batch occurrence counts (hot rows pool many sample
/// gradients, cold rows one), which is what the codec's dead-zone
/// sparsification feeds on. Runs the REAL src/codec implementation, so sim
/// arms priced "with codec" use a grounded ratio, not a guess.
inline double measured_codec_ratio(const CodecConfig& cfg, index_t rows,
                                   index_t cols, int tensors = 8,
                                   std::uint64_t seed = 7) {
  auto codec = make_codec(cfg);
  Prng rng(seed);
  Matrix g(rows, cols);
  EncodedBlob blob;
  double raw = 0.0, encoded = 0.0;
  for (int t = 0; t < tensors; ++t) {
    for (index_t r = 0; r < rows; ++r) {
      // Mild Zipf decay of row occurrence counts: hot rows pool many sample
      // gradients, but most rows stay above the codec's dead zone (the
      // regime the real pipeline measures; see bench_codec e2e).
      const double scale =
          1.0 / std::pow(static_cast<double>(r) + 1.0, 0.25);
      float* row = g.row(r);
      for (index_t j = 0; j < cols; ++j) {
        row[j] = static_cast<float>(scale * rng.normal());
      }
    }
    codec->encode(g, blob);
    raw += static_cast<double>(g.size()) * sizeof(float);
    encoded += static_cast<double>(blob.size());
  }
  return encoded > 0.0 ? raw / encoded : 1.0;
}

/// Expected unique draws among B Zipf(s) draws over n items.
inline double expected_unique_zipf(index_t n, double s, index_t batch) {
  // Normalization: H_{n,s} via integral approximation for large n.
  double h = 0.0;
  index_t r = 1;
  while (r <= n) {
    // Sum exactly for the head, integrate for the tail.
    if (r < 1000) {
      h += std::pow(static_cast<double>(r), -s);
      ++r;
    } else {
      break;
    }
  }
  if (r <= n) {
    if (std::abs(s - 1.0) < 1e-9) {
      h += std::log(static_cast<double>(n) / (r - 0.5));
    } else {
      h += (std::pow(static_cast<double>(n) + 0.5, 1.0 - s) -
            std::pow(r - 0.5, 1.0 - s)) /
           (1.0 - s);
    }
  }

  // E[unique] with log-spaced strata.
  double unique = 0.0;
  double lo = 1.0;
  while (lo <= static_cast<double>(n)) {
    const double hi = std::min(static_cast<double>(n) + 1.0, lo * 1.05 + 1.0);
    const double mid = 0.5 * (lo + hi - 1.0);
    const double count = hi - lo;
    const double p = std::pow(mid, -s) / h;
    unique += count * (1.0 - std::pow(1.0 - p, static_cast<double>(batch)));
    lo = hi;
  }
  return unique;
}

/// Fills the measured ratios of `w` from the analytic Zipf expectations of
/// `spec` at the workload's batch size (large tables only, which are the TT
/// tables the ratios feed).
inline void ground_workload_stats(DlrmWorkload& w, const DatasetSpec& spec) {
  double uniq_sum = 0.0, prefix_sum = 0.0, occ_sum = 0.0;
  for (index_t rows : spec.table_rows) {
    if (rows < w.tt_rows_threshold) continue;
    const double uniq = expected_unique_zipf(rows, spec.zipf_s, w.batch_size);
    // Prefix population = rows / m3 (~ rows^(2/3)); prefixes of the unique
    // rows follow the same Zipf head, so reuse the formula at that scale.
    const TTShape shape = TTShape::balanced(rows, w.emb_dim, 3, w.tt_rank);
    const index_t prefixes_total = shape.row_factor(0) * shape.row_factor(1);
    const double prefixes = expected_unique_zipf(
        prefixes_total, spec.zipf_s,
        static_cast<index_t>(std::max(1.0, uniq)));
    uniq_sum += uniq;
    prefix_sum += std::min(prefixes, uniq);
    occ_sum += static_cast<double>(w.batch_size);
  }
  if (occ_sum > 0.0 && uniq_sum > 0.0) {
    w.unique_index_ratio = uniq_sum / occ_sum;
    w.unique_prefix_ratio = prefix_sum / uniq_sum;
  }
}

}  // namespace elrec::benchutil
