// Table II: dataset details (synthetic stand-ins for Avazu / Criteo
// Terabyte / Criteo Kaggle with the published per-table cardinalities).
#include <algorithm>

#include "bench_util.hpp"
#include "data/dataset_spec.hpp"

using namespace elrec;
using namespace elrec::benchutil;

int main() {
  header("Table II: dataset details");
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Dataset", "#Samples", "Dense", "Sparse", "Total rows",
                  "Largest table", "Dense-emb footprint (dim=64)"});
  for (const DatasetSpec& spec : paper_dataset_specs()) {
    const index_t largest =
        *std::max_element(spec.table_rows.begin(), spec.table_rows.end());
    rows.push_back({spec.name, std::to_string(spec.num_samples),
                    std::to_string(spec.num_dense),
                    std::to_string(spec.num_tables()),
                    std::to_string(spec.total_rows()),
                    std::to_string(largest),
                    fmt_bytes(static_cast<double>(spec.embedding_bytes(64)))});
  }
  print_table(rows);
  note("Criteo Terabyte's dense embedding tables exceed a 16 GB GPU HBM — the");
  note("paper's premise for compression / host-memory designs.");
  return 0;
}
