#include "shard/placement.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace elrec {

PlacementPlan plan_placement(
    const HashRing& ring,
    const std::vector<std::vector<index_t>>& hot_rows_per_table,
    const PlacementConfig& config) {
  ELREC_CHECK(config.replication >= 1, "placement needs replication >= 1");
  const int num_shards = ring.num_shards();
  const std::size_t num_tables = hot_rows_per_table.size();

  PlacementPlan plan;
  plan.warm_rows.assign(
      static_cast<std::size_t>(num_shards),
      std::vector<std::vector<index_t>>(num_tables));
  plan.shard_share.assign(static_cast<std::size_t>(num_shards), 0.0);

  std::vector<int> owners;
  double total_weight = 0.0;
  for (std::size_t t = 0; t < num_tables; ++t) {
    const std::vector<index_t>& hot = hot_rows_per_table[t];
    for (std::size_t rank = 0; rank < hot.size(); ++rank) {
      const double weight = 1.0 / static_cast<double>(rank + 1);
      ring.owners_of(static_cast<index_t>(t), hot[rank], config.replication,
                     owners);
      plan.shard_share[static_cast<std::size_t>(owners.front())] += weight;
      total_weight += weight;
      for (const int shard : owners) {
        std::vector<index_t>& dst =
            plan.warm_rows[static_cast<std::size_t>(shard)][t];
        if (config.warm_rows_per_table > 0 &&
            dst.size() >= config.warm_rows_per_table) {
          continue;
        }
        dst.push_back(hot[rank]);
      }
    }
  }
  if (total_weight > 0.0) {
    for (double& share : plan.shard_share) share /= total_weight;
  }
  return plan;
}

std::vector<index_t> merge_hot_rows(
    const std::vector<std::vector<index_t>>& per_source,
    std::size_t capacity) {
  std::vector<index_t> merged;
  std::unordered_set<index_t> seen;
  std::size_t longest = 0;
  for (const auto& src : per_source) longest = std::max(longest, src.size());
  for (std::size_t rank = 0; rank < longest; ++rank) {
    for (const auto& src : per_source) {
      if (rank >= src.size()) continue;
      if (capacity > 0 && merged.size() >= capacity) return merged;
      if (seen.insert(src[rank]).second) merged.push_back(src[rank]);
    }
  }
  return merged;
}

}  // namespace elrec
