#include "shard/hash_ring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace elrec {

namespace {

// splitmix64 finalizer: the same mixer the fault injector uses, good enough
// dispersion that 64 vnodes/shard keep ownership within a few percent of
// uniform.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t key_hash(index_t table, index_t row) {
  return mix64(mix64(static_cast<std::uint64_t>(table)) ^
               static_cast<std::uint64_t>(row));
}

}  // namespace

HashRing::HashRing(int num_shards, int vnodes_per_shard, std::uint64_t seed)
    : num_shards_(num_shards) {
  ELREC_CHECK(num_shards > 0, "ring needs at least one shard");
  ELREC_CHECK(vnodes_per_shard > 0, "ring needs at least one vnode/shard");
  ring_.reserve(static_cast<std::size_t>(num_shards) *
                static_cast<std::size_t>(vnodes_per_shard));
  for (int s = 0; s < num_shards; ++s) {
    for (int v = 0; v < vnodes_per_shard; ++v) {
      const std::uint64_t pos =
          mix64(seed ^ mix64((static_cast<std::uint64_t>(s) << 20) +
                             static_cast<std::uint64_t>(v)));
      ring_.push_back({pos, s});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    return a.pos != b.pos ? a.pos < b.pos : a.shard < b.shard;
  });
}

std::size_t HashRing::first_vnode_at_or_after(std::uint64_t h) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const VNode& v, std::uint64_t key) { return v.pos < key; });
  return it == ring_.end() ? 0 : static_cast<std::size_t>(it - ring_.begin());
}

int HashRing::owner_of(index_t table, index_t row) const {
  return ring_[first_vnode_at_or_after(key_hash(table, row))].shard;
}

void HashRing::owners_of(index_t table, index_t row, int count,
                         std::vector<int>& out) const {
  out.clear();
  count = std::min(count, num_shards_);
  if (count <= 0) return;
  std::size_t i = first_vnode_at_or_after(key_hash(table, row));
  for (std::size_t walked = 0;
       walked < ring_.size() && static_cast<int>(out.size()) < count;
       ++walked, i = (i + 1) % ring_.size()) {
    const int shard = ring_[i].shard;
    if (std::find(out.begin(), out.end(), shard) == out.end()) {
      out.push_back(shard);
    }
  }
}

}  // namespace elrec
