// Consistent-hash ring over (table, row) keys.
//
// Each shard contributes `vnodes_per_shard` virtual nodes at pseudo-random
// positions on a 64-bit ring; a key is owned by the shard of the first
// vnode at or after the key's hash. Virtual nodes keep per-shard load
// within a few percent of uniform, and — the property the failover ladder
// relies on — removing one shard only reassigns the keys it owned, to the
// next distinct shards on the ring, instead of reshuffling everything.
//
// The ring is deterministic in (num_shards, vnodes_per_shard, seed): every
// router and placement planner built with the same parameters agrees on
// ownership without any coordination.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"  // index_t

namespace elrec {

class HashRing {
 public:
  explicit HashRing(int num_shards, int vnodes_per_shard = 64,
                    std::uint64_t seed = 0x5ec7a11dULL);

  int num_shards() const { return num_shards_; }

  /// The shard owning (table, row).
  int owner_of(index_t table, index_t row) const;

  /// The first `count` distinct shards met walking the ring from the key's
  /// position: owner first, then its failover replicas in ladder order.
  /// `count` is clamped to num_shards(). out is overwritten.
  void owners_of(index_t table, index_t row, int count,
                 std::vector<int>& out) const;

 private:
  struct VNode {
    std::uint64_t pos;
    int shard;
  };

  std::size_t first_vnode_at_or_after(std::uint64_t h) const;

  int num_shards_;
  std::vector<VNode> ring_;  // sorted by pos
};

}  // namespace elrec
