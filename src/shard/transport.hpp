// In-process shard transport with crash semantics.
//
// A ShardChannel is one shard server's mailbox: routers submit()
// ShardEnvelopes (non-blocking — a full mailbox sheds instead of queueing
// unbounded work, which is the per-shard in-flight bound), server workers
// next() them out. The channel models process death explicitly: crash()
// atomically swaps the mailbox out, then resolves every undelivered
// envelope with TransientError — so a router blocked on a reply future
// wakes *immediately* with a retryable failure instead of waiting out its
// deadline. That broken-promise-as-instant-NACK behavior is what keeps p99
// bounded while a shard is being killed. reopen() installs a fresh mailbox
// for the revived server.
#pragma once

#include <memory>
#include <shared_mutex>

#include "common/blocking_queue.hpp"
#include "shard/shard_msg.hpp"

namespace elrec {

enum class ChannelSubmitStatus {
  kAccepted,    // envelope queued; the reply future will resolve
  kOverloaded,  // mailbox at capacity — per-shard load shed
  kDown,        // channel crashed; submit again after reopen()
};

class ShardChannel {
 public:
  explicit ShardChannel(std::size_t capacity);

  /// Non-blocking admission. On kAccepted, `reply` receives the future the
  /// server (or a later crash()) will resolve; otherwise it is untouched.
  ChannelSubmitStatus submit(ShardCallRequest req,
                             std::future<ShardCallReply>& reply);

  /// Server side: blocks for the next envelope. nullopt once the channel
  /// has crashed (in-flight envelopes drain to the crash path, not here).
  std::optional<ShardEnvelope> next();

  /// Simulated process death: closes and detaches the mailbox, then fails
  /// every undelivered envelope with TransientError so waiting routers fail
  /// over instantly. Idempotent; safe concurrent with submit()/next().
  void crash();

  /// Installs a fresh empty mailbox after a crash. No-op while up.
  void reopen();

  bool up() const;

  std::size_t capacity() const { return capacity_; }

 private:
  using Mailbox = BlockingQueue<ShardEnvelope>;

  const std::size_t capacity_;
  mutable std::shared_mutex mu_;
  std::shared_ptr<Mailbox> box_;  // null while crashed
};

}  // namespace elrec
