// Wire types of the in-process shard transport.
//
// A shard call asks one shard server to materialize a list of embedding
// rows from one table; the reply carries the row matrix or a typed failure.
// The promise travels inside the envelope so whoever ends up holding it —
// a server worker, or the channel's crash-drain — is responsible for
// resolving the router's future exactly once.
#pragma once

#include <future>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

enum class ShardCallStatus {
  kOk,         // values filled
  kTransient,  // momentary failure; the router's retry policy may absorb it
  kError,      // fatal for this call; router fails over without retrying
};

struct ShardCallRequest {
  index_t table = 0;
  std::vector<index_t> rows;  // empty = health ping (served, returns 0 rows)
};

struct ShardCallReply {
  ShardCallStatus status = ShardCallStatus::kOk;
  std::string error;  // non-empty iff status != kOk
  Matrix values;      // row i = request.rows[i]
};

struct ShardEnvelope {
  ShardCallRequest req;
  std::promise<ShardCallReply> reply;
};

}  // namespace elrec
