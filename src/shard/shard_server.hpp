// One shard of the fault-tolerant serving tier.
//
// A ShardServer wraps an InferenceSession and serves row-materialization
// calls from its ShardChannel mailbox on a small worker pool. Because the
// Eff-TT model is tiny, every shard holds the *full* frozen model; what a
// shard actually owns is cache warmth for its consistent-hash partition
// (see placement.hpp) — so any shard can serve any row bitwise-identically,
// just colder. That is the property that makes failover and degraded mode
// "slower, never wrong".
//
// Failure model: the fault sites `shard.crash` (fatal — the server marks
// itself dead, crashes its channel, and its workers exit, emulating
// process death mid-request) and `shard.serve` (transient/delay faults on
// individual calls) are planted on the serve path. kill()/revive() drive
// the same transitions administratively for tests and the demo.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/inference_session.hpp"
#include "shard/transport.hpp"

namespace elrec {

struct ShardServerConfig {
  std::size_t num_workers = 2;
  std::size_t mailbox_capacity = 256;  // per-shard in-flight bound
};

class ShardServer {
 public:
  /// `session` must outlive the server. Workers start immediately.
  ShardServer(int shard_id, const InferenceSession& session,
              ShardServerConfig config = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  int shard_id() const { return shard_id_; }
  const InferenceSession& session() const { return session_; }
  ShardChannel& channel() { return channel_; }

  /// False after kill() or a shard.crash fault until revive().
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  /// Administrative death: crashes the channel (in-flight calls fail over
  /// instantly) and joins the workers. Idempotent.
  void kill();

  /// Restarts a dead server: fresh mailbox, fresh workers. No-op if alive.
  void revive();

  std::uint64_t calls_served() const {
    return calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t rows_served() const {
    return rows_.load(std::memory_order_relaxed);
  }

 private:
  void start_workers_locked() ELREC_REQUIRES(lifecycle_mu_);
  void join_workers_locked() ELREC_REQUIRES(lifecycle_mu_);
  void worker_loop();
  /// Serves one envelope; returns false when the worker must exit because
  /// the server just died (self-inflicted shard.crash).
  bool serve_call(ShardEnvelope& env, InferenceSession::WorkerState& state);

  const int shard_id_;
  const InferenceSession& session_;
  const ShardServerConfig config_;
  ShardChannel channel_;
  std::atomic<bool> alive_{true};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> rows_{0};

  std::mutex lifecycle_mu_;
  std::vector<std::thread> workers_ ELREC_GUARDED_BY(lifecycle_mu_);
};

}  // namespace elrec
