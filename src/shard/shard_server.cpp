#include "shard/shard_server.hpp"

#include "common/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elrec {

ShardServer::ShardServer(int shard_id, const InferenceSession& session,
                         ShardServerConfig config)
    : shard_id_(shard_id),
      session_(session),
      config_(config),
      channel_(config.mailbox_capacity) {
  ELREC_CHECK(config_.num_workers > 0, "shard server needs >= 1 worker");
  std::lock_guard lock(lifecycle_mu_);
  start_workers_locked();
}

ShardServer::~ShardServer() { kill(); }

void ShardServer::start_workers_locked() {
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ShardServer::join_workers_locked() {
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ShardServer::kill() {
  alive_.store(false, std::memory_order_release);
  channel_.crash();  // wakes workers; fails in-flight calls over instantly
  std::lock_guard lock(lifecycle_mu_);
  join_workers_locked();
}

void ShardServer::revive() {
  std::lock_guard lock(lifecycle_mu_);
  if (alive_.load(std::memory_order_acquire)) return;
  join_workers_locked();  // reap self-crashed workers
  channel_.reopen();
  alive_.store(true, std::memory_order_release);
  start_workers_locked();
}

void ShardServer::worker_loop() {
  auto state = session_.make_worker_state();
  for (;;) {
    std::optional<ShardEnvelope> env = channel_.next();
    if (!env.has_value()) return;  // channel crashed
    if (!serve_call(*env, *state)) return;  // server just died
  }
}

bool ShardServer::serve_call(ShardEnvelope& env,
                             InferenceSession::WorkerState& state) {
  TRACE_SPAN("shard.serve");
  static obs::Counter& calls_total =
      obs::MetricsRegistry::global().counter("shard.calls");
  static obs::Counter& rows_total =
      obs::MetricsRegistry::global().counter("shard.rows");
  ShardCallReply reply;
  try {
    // Fatal site first: a crash takes down the whole server, not one call.
    ELREC_FAULT_POINT("shard.crash");
    ELREC_FAULT_POINT("shard.serve");
    session_.materialize_rows(env.req.table, env.req.rows, reply.values,
                              state);
    reply.status = ShardCallStatus::kOk;
    calls_.fetch_add(1, std::memory_order_relaxed);
    rows_.fetch_add(env.req.rows.size(), std::memory_order_relaxed);
    calls_total.inc();
    rows_total.add(env.req.rows.size());
  } catch (const InjectedFault& e) {
    // Process-death emulation: this call and every queued one fail with a
    // retryable error, the mailbox goes down, the workers exit.
    env.reply.set_exception(std::make_exception_ptr(TransientError(
        std::string("shard ") + std::to_string(shard_id_) +
        " crashed serving call: " + e.what())));
    alive_.store(false, std::memory_order_release);
    channel_.crash();
    return false;
  } catch (const TransientError& e) {
    reply.status = ShardCallStatus::kTransient;
    reply.error = e.what();
  } catch (const std::exception& e) {
    reply.status = ShardCallStatus::kError;
    reply.error = e.what();
  }
  env.reply.set_value(std::move(reply));
  return true;
}

}  // namespace elrec
