// Failover router for the sharded serving tier.
//
// The router is an IRankingBackend: a RequestScheduler drives it exactly
// like a plain InferenceSession, but every embedding lookup inside the
// frozen forward is scattered to the shard servers that own the rows
// (consistent-hash ring) and gathered under a per-shard deadline budget.
//
// Failover ladder, per unique row:
//   1. primary owner        — scatter round 0
//   2. retry-with-backoff   — transient replies / crash NACKs / overload,
//                             absorbed by with_retry on the same shard
//   3. replica owners       — scatter rounds 1..replication-1 walk the ring
//   4. local Eff-TT fallback— degraded mode: the router's own fallback
//                             session materializes whatever is still
//                             unresolved (cold-tail path, never wrong)
// Because every node holds the full TT-compressed model, all four rungs
// produce bitwise-identical rows; the ladder trades only latency, so a
// routed prediction equals a single-process InferenceSession prediction
// bit for bit in every mode (tests assert this).
//
// Health: request-path failures mark a shard down after
// `markdown_after` consecutive failures; a background ping thread probes
// down shards and marks them back up on the first served ping, which is
// how a revived shard rejoins the rotation.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/retry.hpp"
#include "common/thread_annotations.hpp"
#include "serve/inference_session.hpp"
#include "shard/hash_ring.hpp"
#include "shard/shard_server.hpp"

namespace elrec {

struct ShardRouterConfig {
  int replication = 2;          // failover ladder depth (clamped to shards)
  int vnodes_per_shard = 64;    // ring resolution
  std::uint64_t ring_seed = 0x5ec7a11dULL;
  std::chrono::microseconds shard_deadline{20000};  // per-shard gather budget
  RetryPolicy retry;            // transient-reply absorption per call
  int markdown_after = 3;       // consecutive failures before mark-down
  std::chrono::milliseconds ping_interval{10};
  bool enable_health_pings = true;
};

class ShardRouter : public IRankingBackend {
 public:
  /// Per-worker scratch. `local` carries the fallback session's worker
  /// state (workspace + cache scratch); the rest is scatter/gather staging.
  struct RouterState : IRankingBackend::State {
    std::unique_ptr<InferenceSession::WorkerState> local;
    UniqueIndexMap unique;
    Matrix unique_vals;
    std::vector<char> resolved;
    std::vector<int> owners;                       // ladder scratch
    std::vector<std::vector<index_t>> shard_rows;  // per-shard scatter group
    std::vector<std::vector<std::size_t>> shard_pos;  // positions in unique
    std::vector<index_t> fb_rows;       // degraded-mode remainder
    std::vector<std::size_t> fb_pos;
    Matrix fb_vals;
    Matrix retry_vals;
  };

  /// `fallback` is the router-side full-model session used for degraded
  /// mode (and for the model/workspace); it and every shard must outlive
  /// the router. Shards are addressed by their position in `shards`.
  ShardRouter(const InferenceSession& fallback,
              std::vector<ShardServer*> shards, ShardRouterConfig config = {});
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  index_t num_tables() const override { return fallback_.num_tables(); }
  index_t num_dense() const override { return fallback_.num_dense(); }
  std::unique_ptr<IRankingBackend::State> make_state() const override;
  void predict(const MiniBatch& batch, std::vector<float>& probs,
               IRankingBackend::State& state) const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const HashRing& ring() const { return ring_; }

  /// Router's current routability view of shard `s` (health mark, not the
  /// server's own alive() flag — markdown lags a crash by design).
  bool shard_live(int s) const;

  /// Aggregate failover/health activity since construction.
  struct RouterStats {
    std::uint64_t scatter_calls = 0;  // shard calls submitted
    std::uint64_t retries = 0;        // with_retry attempts after a failure
    std::uint64_t failovers = 0;      // row-promotions to a later rung
    std::uint64_t fallback_rows = 0;  // rows served by the local fallback
    std::uint64_t shed = 0;           // submissions bounced off a full mailbox
    std::uint64_t markdowns = 0;
    std::uint64_t markups = 0;
  };
  RouterStats stats() const;

 private:
  struct ShardHealth {
    std::atomic<bool> live{true};
    std::atomic<int> consecutive_failures{0};
  };

  struct PendingCall {
    int shard = -1;
    std::future<ShardCallReply> fut;
  };

  void sharded_lookup(index_t t, const IndexBatch& batch, Matrix& out,
                      RouterState& state) const;
  void resolve_rows_sharded(index_t t, const std::vector<index_t>& rows,
                            Matrix& values, RouterState& state) const;
  /// One synchronous submit+wait on `shard`; throws TransientError on
  /// retryable outcomes (transient reply, crash NACK, overload) and Error
  /// on terminal ones (down, deadline, fatal reply). kOk fills `values`.
  void call_shard_once(int shard, index_t t, const std::vector<index_t>& rows,
                       Matrix& values) const;

  void note_success(int s) const;
  void note_failure(int s) const;
  void mark_down(int s) const;

  void ping_loop();

  const InferenceSession& fallback_;
  std::vector<ShardServer*> shards_;
  ShardRouterConfig config_;
  HashRing ring_;
  int ladder_depth_;

  mutable std::vector<std::unique_ptr<ShardHealth>> health_;

  mutable std::atomic<std::uint64_t> scatter_calls_{0};
  mutable std::atomic<std::uint64_t> retries_{0};
  mutable std::atomic<std::uint64_t> failovers_{0};
  mutable std::atomic<std::uint64_t> fallback_rows_{0};
  mutable std::atomic<std::uint64_t> shed_{0};
  mutable std::atomic<std::uint64_t> markdowns_{0};
  mutable std::atomic<std::uint64_t> markups_{0};

  std::mutex ping_mu_;
  std::condition_variable ping_cv_;
  bool ping_stop_ ELREC_GUARDED_BY(ping_mu_) = false;
  std::thread ping_thread_;  // declared last: joined before members die
};

}  // namespace elrec
