// Statistics-driven cache placement for the sharded serving tier.
//
// Input: per-table hot-row lists, hottest first (data/stats
// top_accessed_indices over the training distribution — the RecShard
// observation that a tiny hot set dominates accesses). plan_placement maps
// each hot row to its consistent-hash owner ladder and emits, per shard,
// the rows that shard should warm into its ServingCache: the primary owner
// plus `replication - 1` failover replicas each warm a copy, so the rows
// most likely to be looked up stay warm on every shard that can be asked
// for them. shard_share estimates each shard's fraction of hot traffic
// (rank-weighted, weight 1/(rank+1)) for capacity checks and the bench.
//
// merge_hot_rows fuses several shards' observed hot lists into one
// router-level warm list (round-robin by rank, deduplicated) — the feed
// for ServingCache::warm() on the router's fallback session.
#pragma once

#include <vector>

#include "shard/hash_ring.hpp"

namespace elrec {

struct PlacementConfig {
  int replication = 2;  // shards warming each hot row (primary + replicas)
  std::size_t warm_rows_per_table = 0;  // per shard per table; 0 = no cap
};

struct PlacementPlan {
  /// warm_rows[shard][table] = rows that shard warms, hottest first.
  std::vector<std::vector<std::vector<index_t>>> warm_rows;
  /// Rank-weighted fraction of hot traffic whose primary is this shard
  /// (sums to 1 when any hot rows were given).
  std::vector<double> shard_share;
};

PlacementPlan plan_placement(
    const HashRing& ring,
    const std::vector<std::vector<index_t>>& hot_rows_per_table,
    const PlacementConfig& config);

/// Merges per-source hot lists (each hottest first) into one list of at
/// most `capacity` distinct rows, interleaving by rank so every source's
/// hottest rows survive the cut. capacity 0 = no cap.
std::vector<index_t> merge_hot_rows(
    const std::vector<std::vector<index_t>>& per_source, std::size_t capacity);

}  // namespace elrec
