#include "shard/shard_router.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "embed/index_batch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elrec {

namespace {

obs::Counter& shard_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

}  // namespace

ShardRouter::ShardRouter(const InferenceSession& fallback,
                         std::vector<ShardServer*> shards,
                         ShardRouterConfig config)
    : fallback_(fallback),
      shards_(std::move(shards)),
      config_(config),
      ring_(static_cast<int>(shards_.size()), config.vnodes_per_shard,
            config.ring_seed),
      ladder_depth_(std::min(config.replication,
                             static_cast<int>(shards_.size()))) {
  ELREC_CHECK(!shards_.empty(), "router needs at least one shard");
  ELREC_CHECK(config_.replication >= 1, "router needs replication >= 1");
  for (const ShardServer* s : shards_) {
    ELREC_CHECK(s != nullptr, "router given a null shard");
  }
  health_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    health_.push_back(std::make_unique<ShardHealth>());
  }
  if (config_.enable_health_pings) {
    ping_thread_ = std::thread([this] { ping_loop(); });
  }
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard lock(ping_mu_);
    ping_stop_ = true;
  }
  ping_cv_.notify_all();
  if (ping_thread_.joinable()) ping_thread_.join();
}

std::unique_ptr<IRankingBackend::State> ShardRouter::make_state() const {
  auto state = std::make_unique<RouterState>();
  state->local = fallback_.make_worker_state();
  state->shard_rows.resize(shards_.size());
  state->shard_pos.resize(shards_.size());
  return state;
}

void ShardRouter::predict(const MiniBatch& batch, std::vector<float>& probs,
                          IRankingBackend::State& state) const {
  auto& rs = static_cast<RouterState&>(state);
  fallback_.model().predict_frozen(
      batch, probs, rs.local->ws,
      [this, &rs](index_t t, const IndexBatch& b, Matrix& out,
                  ILookupContext* /*ctx*/) { sharded_lookup(t, b, out, rs); });
}

void ShardRouter::sharded_lookup(index_t t, const IndexBatch& batch,
                                 Matrix& out, RouterState& state) const {
  TRACE_SPAN("shard.route");
  const index_t d = fallback_.model().table(t).dim();

  // Resolve each unique row once across the shard tier.
  state.unique = build_unique_index_map(batch.indices);
  resolve_rows_sharded(t, state.unique.unique, state.unique_vals, state);

  // Pool in bag-position order — the exact loop InferenceSession uses — so
  // a routed prediction is bitwise equal to a single-process one.
  out.resize(batch.batch_size(), d);
  for (index_t b = 0; b < batch.batch_size(); ++b) {
    float* dst = out.row(b);
    for (index_t p = batch.bag_begin(b); p < batch.bag_end(b); ++p) {
      const float* src = state.unique_vals.row(
          state.unique.occurrence[static_cast<std::size_t>(p)]);
      for (index_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  }
}

void ShardRouter::resolve_rows_sharded(index_t t,
                                       const std::vector<index_t>& rows,
                                       Matrix& values,
                                       RouterState& state) const {
  const index_t d = fallback_.model().table(t).dim();
  values.resize(static_cast<index_t>(rows.size()), d);
  if (rows.empty()) return;
  state.resolved.assign(rows.size(), 0);
  std::size_t unresolved = rows.size();

  for (int round = 0; round < ladder_depth_ && unresolved > 0; ++round) {
    // Group the still-unresolved rows by this round's ladder rung.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      state.shard_rows[s].clear();
      state.shard_pos[s].clear();
    }
    std::size_t grouped = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (state.resolved[i]) continue;
      ring_.owners_of(t, rows[i], ladder_depth_, state.owners);
      if (static_cast<std::size_t>(round) >= state.owners.size()) continue;
      const int s = state.owners[static_cast<std::size_t>(round)];
      if (!shard_live(s)) continue;  // dead rung: promote next round
      state.shard_rows[static_cast<std::size_t>(s)].push_back(rows[i]);
      state.shard_pos[static_cast<std::size_t>(s)].push_back(i);
      ++grouped;
    }
    if (round > 0 && grouped > 0) {
      static obs::Counter& failover_total = shard_counter("shard.failover");
      failovers_.fetch_add(grouped, std::memory_order_relaxed);
      failover_total.add(grouped);
    }
    if (grouped == 0) continue;

    // Scatter: non-blocking submit to every rung shard. An invalid future
    // in `pending` marks a shed submission handled by the retry rung.
    std::vector<PendingCall> pending;
    pending.reserve(shards_.size());
    {
      TRACE_SPAN("shard.scatter");
      static obs::Counter& scatter_total = shard_counter("shard.scatter");
      static obs::Counter& shed_total = shard_counter("shard.shed");
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (state.shard_rows[s].empty()) continue;
        ShardCallRequest req;
        req.table = t;
        req.rows = state.shard_rows[s];
        PendingCall call;
        call.shard = static_cast<int>(s);
        switch (shards_[s]->channel().submit(std::move(req), call.fut)) {
          case ChannelSubmitStatus::kAccepted:
            scatter_calls_.fetch_add(1, std::memory_order_relaxed);
            scatter_total.inc();
            pending.push_back(std::move(call));
            break;
          case ChannelSubmitStatus::kOverloaded:
            shed_.fetch_add(1, std::memory_order_relaxed);
            shed_total.inc();
            pending.push_back(std::move(call));  // fut invalid -> retry rung
            break;
          case ChannelSubmitStatus::kDown:
            mark_down(static_cast<int>(s));  // hard evidence, skip the count
            break;
        }
      }
    }

    // Gather under one shared deadline from scatter time. A crashed shard
    // NACKs instantly (TransientError through the future), so failover
    // latency is retry-bounded, not deadline-bounded.
    {
      TRACE_SPAN("shard.gather");
      const auto deadline =
          std::chrono::steady_clock::now() + config_.shard_deadline;
      for (PendingCall& call : pending) {
        const auto s = static_cast<std::size_t>(call.shard);
        const std::vector<index_t>& group = state.shard_rows[s];
        const std::vector<std::size_t>& pos = state.shard_pos[s];
        bool served = false;
        bool transient = !call.fut.valid();  // shed at scatter -> retry rung
        const Matrix* got = nullptr;
        ShardCallReply reply;
        if (call.fut.valid()) {
          if (call.fut.wait_until(deadline) == std::future_status::ready) {
            try {
              reply = call.fut.get();
              if (reply.status == ShardCallStatus::kOk) {
                got = &reply.values;
                served = true;
              } else if (reply.status == ShardCallStatus::kTransient) {
                transient = true;
              }
            } catch (const TransientError&) {
              transient = true;  // crash NACK
            } catch (const std::exception&) {
              // terminal reply failure: fall through to the next rung
            }
          }
          // timeout: leave served=false, transient=false -> next rung
        }
        if (!served && transient) {
          // Retry rung: bounded backoff on the same shard.
          static obs::Counter& retry_total = shard_counter("shard.retry");
          try {
            with_retry(config_.retry, "shard call retry", [&] {
              retries_.fetch_add(1, std::memory_order_relaxed);
              retry_total.inc();
              call_shard_once(call.shard, t, group, state.retry_vals);
            });
            got = &state.retry_vals;
            served = true;
          } catch (const std::exception&) {
            // retries exhausted or shard went down mid-retry
          }
        }
        if (served) {
          for (std::size_t i = 0; i < pos.size(); ++i) {
            std::memcpy(values.row(static_cast<index_t>(pos[i])),
                        got->row(static_cast<index_t>(i)),
                        sizeof(float) * static_cast<std::size_t>(d));
            state.resolved[pos[i]] = 1;
          }
          unresolved -= pos.size();
          note_success(call.shard);
        } else {
          note_failure(call.shard);
        }
      }
    }
  }

  if (unresolved > 0) {
    // Degraded mode: the local full-model session serves the remainder
    // through its cold-tail cache path. Slower, bitwise identical.
    TRACE_SPAN("shard.fallback");
    static obs::Counter& fallback_total = shard_counter("shard.fallback_rows");
    state.fb_rows.clear();
    state.fb_pos.clear();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!state.resolved[i]) {
        state.fb_rows.push_back(rows[i]);
        state.fb_pos.push_back(i);
      }
    }
    fallback_.materialize_rows(t, state.fb_rows, state.fb_vals, *state.local);
    for (std::size_t i = 0; i < state.fb_rows.size(); ++i) {
      std::memcpy(values.row(static_cast<index_t>(state.fb_pos[i])),
                  state.fb_vals.row(static_cast<index_t>(i)),
                  sizeof(float) * static_cast<std::size_t>(d));
    }
    fallback_rows_.fetch_add(state.fb_rows.size(), std::memory_order_relaxed);
    fallback_total.add(state.fb_rows.size());
  }
}

void ShardRouter::call_shard_once(int shard, index_t t,
                                  const std::vector<index_t>& rows,
                                  Matrix& values) const {
  ShardChannel& ch = shards_[static_cast<std::size_t>(shard)]->channel();
  ShardCallRequest req;
  req.table = t;
  req.rows = rows;
  std::future<ShardCallReply> fut;
  switch (ch.submit(std::move(req), fut)) {
    case ChannelSubmitStatus::kDown:
      throw Error("shard " + std::to_string(shard) + " is down");
    case ChannelSubmitStatus::kOverloaded:
      shed_.fetch_add(1, std::memory_order_relaxed);
      throw TransientError("shard " + std::to_string(shard) + " overloaded");
    case ChannelSubmitStatus::kAccepted:
      break;
  }
  scatter_calls_.fetch_add(1, std::memory_order_relaxed);
  if (fut.wait_for(config_.shard_deadline) != std::future_status::ready) {
    throw Error("shard " + std::to_string(shard) + " missed deadline");
  }
  ShardCallReply reply = fut.get();  // TransientError here = crash NACK
  if (reply.status == ShardCallStatus::kTransient) {
    throw TransientError(reply.error);
  }
  if (reply.status == ShardCallStatus::kError) throw Error(reply.error);
  values = std::move(reply.values);
}

bool ShardRouter::shard_live(int s) const {
  return health_[static_cast<std::size_t>(s)]->live.load(
      std::memory_order_acquire);
}

void ShardRouter::note_success(int s) const {
  ShardHealth& h = *health_[static_cast<std::size_t>(s)];
  h.consecutive_failures.store(0, std::memory_order_relaxed);
  if (!h.live.load(std::memory_order_acquire) &&
      !h.live.exchange(true, std::memory_order_acq_rel)) {
    static obs::Counter& markup_total = shard_counter("shard.markup");
    markups_.fetch_add(1, std::memory_order_relaxed);
    markup_total.inc();
  }
}

void ShardRouter::note_failure(int s) const {
  ShardHealth& h = *health_[static_cast<std::size_t>(s)];
  const int failures =
      h.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (failures >= config_.markdown_after) mark_down(s);
}

void ShardRouter::mark_down(int s) const {
  ShardHealth& h = *health_[static_cast<std::size_t>(s)];
  if (h.live.exchange(false, std::memory_order_acq_rel)) {
    static obs::Counter& markdown_total = shard_counter("shard.markdown");
    markdowns_.fetch_add(1, std::memory_order_relaxed);
    markdown_total.inc();
  }
}

ShardRouter::RouterStats ShardRouter::stats() const {
  RouterStats s;
  s.scatter_calls = scatter_calls_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.fallback_rows = fallback_rows_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.markdowns = markdowns_.load(std::memory_order_relaxed);
  s.markups = markups_.load(std::memory_order_relaxed);
  return s;
}

void ShardRouter::ping_loop() {
  for (;;) {
    {
      std::unique_lock lock(ping_mu_);
      ping_cv_.wait_for(lock, config_.ping_interval);
      if (ping_stop_) return;
    }
    for (int s = 0; s < num_shards(); ++s) {
      if (shard_live(s)) continue;
      // An empty-row call is the health ping: it exercises the full serve
      // path (mailbox, worker, session) without touching any table rows.
      try {
        Matrix ignored;
        call_shard_once(s, 0, {}, ignored);
        note_success(s);  // first served ping marks the shard back up
      } catch (const std::exception&) {
        // still down; next tick retries
      }
    }
  }
}

}  // namespace elrec
