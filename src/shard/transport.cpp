#include "shard/transport.hpp"

namespace elrec {

ShardChannel::ShardChannel(std::size_t capacity)
    : capacity_(capacity), box_(std::make_shared<Mailbox>(capacity)) {}

ChannelSubmitStatus ShardChannel::submit(ShardCallRequest req,
                                         std::future<ShardCallReply>& reply) {
  // The push happens under the shared lock so crash() (unique lock) can
  // only run strictly before or after it: every accepted envelope is either
  // drained by crash() or visible to a worker — never silently lost.
  std::shared_lock lock(mu_);
  if (box_ == nullptr) return ChannelSubmitStatus::kDown;
  ShardEnvelope env;
  env.req = std::move(req);
  std::future<ShardCallReply> fut = env.reply.get_future();
  switch (box_->try_push_for(env, std::chrono::microseconds(0))) {
    case QueueOpStatus::kOk:
      reply = std::move(fut);
      return ChannelSubmitStatus::kAccepted;
    case QueueOpStatus::kTimeout:
      return ChannelSubmitStatus::kOverloaded;
    case QueueOpStatus::kClosed:
      return ChannelSubmitStatus::kDown;
  }
  return ChannelSubmitStatus::kDown;  // unreachable
}

std::optional<ShardEnvelope> ShardChannel::next() {
  std::shared_ptr<Mailbox> box;
  {
    std::shared_lock lock(mu_);
    box = box_;
  }
  if (box == nullptr) return std::nullopt;
  // Block outside the lock so a concurrent crash() can close the mailbox
  // (pop() then returns nullopt) instead of deadlocking on mu_.
  return box->pop();
}

void ShardChannel::crash() {
  std::shared_ptr<Mailbox> box;
  {
    std::unique_lock lock(mu_);
    box = std::move(box_);
    box_ = nullptr;
  }
  if (box == nullptr) return;  // already crashed
  box->close();
  // Fail the undelivered envelopes. Workers may be draining concurrently —
  // each envelope goes to exactly one popper, so every promise is resolved
  // exactly once (here as TransientError, there as a served reply).
  while (auto env = box->try_pop()) {
    env->reply.set_exception(std::make_exception_ptr(
        TransientError("shard channel crashed with call in flight")));
  }
}

void ShardChannel::reopen() {
  std::unique_lock lock(mu_);
  if (box_ == nullptr) box_ = std::make_shared<Mailbox>(capacity_);
}

bool ShardChannel::up() const {
  std::shared_lock lock(mu_);
  return box_ != nullptr;
}

}  // namespace elrec
