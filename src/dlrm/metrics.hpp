// Classification metrics used by the accuracy experiments (Table IV).
#pragma once

#include <span>
#include <vector>

namespace elrec {

/// Fraction of predictions (probability >= 0.5) matching binary labels.
double binary_accuracy(std::span<const float> probs,
                       std::span<const float> labels);

/// Area under the ROC curve (rank-based; ties handled by midrank).
double roc_auc(std::span<const float> scores, std::span<const float> labels);

/// Running mean helper for loss curves.
class RunningMean {
 public:
  void add(double v) {
    sum_ += v;
    ++n_;
  }
  double mean() const { return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0; }
  std::size_t count() const { return n_; }
  void reset() {
    sum_ = 0.0;
    n_ = 0;
  }

 private:
  double sum_ = 0.0;
  std::size_t n_ = 0;
};

}  // namespace elrec
