// DLRM feature-interaction layer (paper Fig. 2).
//
// Takes F feature vectors per sample (the bottom-MLP output plus one pooled
// embedding per sparse feature, all of dimension d), computes the dot
// product of every unordered pair, and concatenates the results with the
// bottom-MLP output: out = [x_dense | <f_i, f_j> for i < j].
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

class FeatureInteraction {
 public:
  /// num_features counts the dense feature, so it is 1 + #embedding tables.
  FeatureInteraction(index_t num_features, index_t dim);

  index_t num_features() const { return num_features_; }
  index_t dim() const { return dim_; }
  /// dim + F*(F-1)/2.
  index_t output_dim() const {
    return dim_ + num_features_ * (num_features_ - 1) / 2;
  }

  /// features[0] is the dense (bottom-MLP) feature; features[t] for t >= 1
  /// the pooled embedding of table t-1. Each is (B x dim). out resized to
  /// (B x output_dim). Inputs are cached for backward.
  void forward(const std::vector<const Matrix*>& features, Matrix& out);

  /// grads[f] receives d(loss)/d(features[f]), resized to (B x dim).
  void backward(const Matrix& grad_out, std::vector<Matrix>& grads) const;

  /// Inference-only forward: same arithmetic as forward() but the feature
  /// stack lives in caller-owned `stacked_scratch`, so nothing on the layer
  /// mutates and concurrent readers are safe.
  void forward_frozen(const std::vector<const Matrix*>& features, Matrix& out,
                      Matrix& stacked_scratch) const;

 private:
  index_t num_features_;
  index_t dim_;
  Matrix stacked_;  // cached (B * F x dim) feature stack
  index_t cached_batch_ = 0;
};

}  // namespace elrec
