// Binary cross-entropy with logits — the DLRM CTR training loss.
#pragma once

#include <span>

#include "tensor/matrix.hpp"

namespace elrec {

/// Mean BCE loss of logits (B x 1) against labels in {0, 1}.
/// Numerically stable log-sum-exp formulation.
float bce_with_logits_loss(const Matrix& logits, std::span<const float> labels);

/// d(mean BCE)/d(logit) = (sigmoid(z) - y) / B, written to grad (B x 1).
void bce_with_logits_backward(const Matrix& logits,
                              std::span<const float> labels, Matrix& grad);

}  // namespace elrec
