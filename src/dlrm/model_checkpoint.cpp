#include "dlrm/model_checkpoint.hpp"

#include "common/serialize.hpp"

namespace elrec {

namespace {
constexpr char kTag[4] = {'E', 'L', 'M', '1'};
}

void save_dlrm_model(DlrmModel& model, const std::string& path) {
  // Staged write + checksum footer + atomic rename: a crash mid-save can
  // never corrupt an existing checkpoint at `path`.
  write_checkpoint_atomic(path, [&](BinaryWriter& w) {
    w.write_tag(kTag);
    // First pass: count buffers.
    std::uint64_t count = 0;
    model.visit_parameters([&](float*, std::size_t) { ++count; });
    w.write_u64(count);
    model.visit_parameters(
        [&](float* p, std::size_t n) { w.write_array(p, n); });
  });
}

void load_dlrm_model(DlrmModel& model, const std::string& path) {
  BinaryReader r(path);
  r.expect_tag(kTag);
  std::uint64_t count = 0;
  model.visit_parameters([&](float*, std::size_t) { ++count; });
  const std::uint64_t stored = r.read_u64();
  ELREC_CHECK(stored == count,
              "checkpoint buffer count mismatch — different model config");
  model.visit_parameters([&](float* p, std::size_t n) {
    const auto values = r.read_vector<float>();
    ELREC_CHECK(values.size() == n, "checkpoint buffer size mismatch");
    std::copy(values.begin(), values.end(), p);
  });
  r.expect_footer();
}

}  // namespace elrec
