#include "dlrm/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace elrec {

double binary_accuracy(std::span<const float> probs,
                       std::span<const float> labels) {
  ELREC_CHECK(probs.size() == labels.size() && !probs.empty(),
              "probs/labels size mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const bool pred = probs[i] >= 0.5f;
    const bool truth = labels[i] >= 0.5f;
    if (pred == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(probs.size());
}

double roc_auc(std::span<const float> scores, std::span<const float> labels) {
  ELREC_CHECK(scores.size() == labels.size() && !scores.empty(),
              "scores/labels size mismatch");
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  // Midranks for tied scores.
  std::vector<double> rank(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t t = i; t <= j; ++t) rank[order[t]] = mid;
    i = j + 1;
  }

  double pos_rank_sum = 0.0;
  std::size_t num_pos = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (labels[t] >= 0.5f) {
      pos_rank_sum += rank[t];
      ++num_pos;
    }
  }
  const std::size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;  // degenerate
  return (pos_rank_sum - static_cast<double>(num_pos) * (num_pos + 1) / 2.0) /
         (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace elrec
