// Multi-layer perceptron with ReLU hidden activations.
//
// Implements both the Bottom MLP (dense features -> embedding dim) and the
// Top MLP (interacted features -> CTR logit) of DLRM (paper Fig. 2). The
// backward pass applies plain SGD inline, matching the fused-optimizer
// convention used across EL-Rec.
#pragma once

#include <vector>

#include "embed/embedding_table.hpp"
#include "tensor/matrix.hpp"
#include "tensor/optimizer.hpp"

namespace elrec {

class Mlp {
 public:
  /// layer_sizes = {in, h1, ..., out}. Hidden layers use ReLU; the output
  /// layer is linear (the caller applies sigmoid/loss).
  Mlp(std::vector<index_t> layer_sizes, Prng& rng);

  /// Switches the update rule (default plain SGD); momentum and Adagrad are
  /// supported for these dense layers.
  void set_optimizer(OptimizerConfig config);

  index_t input_dim() const { return layer_sizes_.front(); }
  index_t output_dim() const { return layer_sizes_.back(); }
  int num_layers() const { return static_cast<int>(weights_.size()); }

  /// Forward for a batch: in is (B x input_dim); out resized to
  /// (B x output_dim). Activations are cached for backward.
  void forward(const Matrix& in, Matrix& out);

  /// Inference-only forward: identical arithmetic (and bitwise-identical
  /// output) to forward(), but nothing is cached — the two ping-pong
  /// activation buffers are caller-owned, so concurrent readers each pass
  /// their own pair and the weights stay strictly read-only.
  void forward_frozen(const Matrix& in, Matrix& out, Matrix& scratch_a,
                      Matrix& scratch_b) const;

  /// Backward for the cached forward: grad_out is (B x output_dim);
  /// grad_in resized to (B x input_dim). Parameters are updated with SGD(lr).
  void backward_and_update(const Matrix& grad_out, Matrix& grad_in, float lr);

  std::size_t parameter_count() const;

  /// Visits every weight matrix and bias vector (deterministic order).
  void visit_parameters(const ParameterVisitor& visit) {
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      visit(weights_[l].data(), static_cast<std::size_t>(weights_[l].size()));
      visit(biases_[l].data(), biases_[l].size());
    }
  }

  Matrix& weight(int layer) { return weights_[static_cast<std::size_t>(layer)]; }
  std::vector<float>& bias(int layer) {
    return biases_[static_cast<std::size_t>(layer)];
  }

 private:
  std::vector<index_t> layer_sizes_;
  std::vector<Matrix> weights_;             // layer l: (in_l x out_l)
  std::vector<std::vector<float>> biases_;  // layer l: out_l
  std::vector<OptimizerState> weight_opt_;
  std::vector<OptimizerState> bias_opt_;
  Matrix grad_w_scratch_;
  std::vector<float> grad_b_scratch_;
  // Caches: inputs_[l] is the input to layer l; preacts_[l] its pre-ReLU
  // output (hidden layers only).
  std::vector<Matrix> inputs_;
  std::vector<Matrix> preacts_;
  index_t cached_batch_ = 0;
};

}  // namespace elrec
