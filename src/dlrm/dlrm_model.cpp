#include "dlrm/dlrm_model.hpp"

#include "dlrm/loss.hpp"
#include "obs/trace.hpp"
#include "tensor/vector_ops.hpp"

namespace elrec {

std::vector<index_t> mlp_sizes(index_t in, const std::vector<index_t>& hidden,
                               index_t out) {
  std::vector<index_t> sizes;
  sizes.reserve(hidden.size() + 2);
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

namespace {

index_t interaction_features(std::size_t num_tables) {
  return static_cast<index_t>(num_tables) + 1;
}

}  // namespace

DlrmModel::DlrmModel(DlrmConfig config,
                     std::vector<std::unique_ptr<IEmbeddingTable>> tables,
                     Prng& rng)
    : config_(std::move(config)),
      tables_(std::move(tables)),
      bottom_mlp_(mlp_sizes(config_.num_dense, config_.bottom_hidden,
                            config_.embedding_dim),
                  rng),
      top_mlp_(mlp_sizes(config_.embedding_dim +
                             interaction_features(tables_.size()) *
                                 (interaction_features(tables_.size()) - 1) / 2,
                         config_.top_hidden, 1),
               rng),
      interaction_(interaction_features(tables_.size()),
                   config_.embedding_dim) {
  ELREC_CHECK(!tables_.empty(), "DLRM needs at least one embedding table");
  for (const auto& t : tables_) {
    ELREC_CHECK(t->dim() == config_.embedding_dim,
                "every table must produce embedding_dim features");
  }
}

void DlrmModel::forward(const MiniBatch& batch, Matrix& logits) {
  ELREC_CHECK(batch.dense.cols() == config_.num_dense,
              "dense feature width mismatch");
  ELREC_CHECK(batch.sparse.size() == tables_.size(),
              "one IndexBatch per table required");

  bottom_mlp_.forward(batch.dense, bottom_out_);

  emb_out_.resize(tables_.size());
  std::vector<const Matrix*> features;
  features.reserve(tables_.size() + 1);
  features.push_back(&bottom_out_);
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    tables_[t]->forward(batch.sparse[t], emb_out_[t]);
    features.push_back(&emb_out_[t]);
  }

  interaction_.forward(features, interact_out_);
  top_mlp_.forward(interact_out_, logits);
  logits_ = logits;
}

void DlrmModel::predict(const MiniBatch& batch, std::vector<float>& probs) {
  Matrix logits;
  forward(batch, logits);
  probs.resize(static_cast<std::size_t>(logits.rows()));
  for (index_t i = 0; i < logits.rows(); ++i) {
    probs[static_cast<std::size_t>(i)] = sigmoid(logits.at(i, 0));
  }
}

DlrmInferenceWorkspace DlrmModel::make_inference_workspace() const {
  DlrmInferenceWorkspace ws;
  ws.emb_out.resize(tables_.size());
  ws.table_ctx.reserve(tables_.size());
  for (const auto& t : tables_) {
    ws.table_ctx.push_back(t->make_lookup_context());
  }
  return ws;
}

void DlrmModel::predict_frozen(const MiniBatch& batch,
                               std::vector<float>& probs,
                               DlrmInferenceWorkspace& ws,
                               const TableLookupFn& table_lookup) const {
  ELREC_CHECK(batch.dense.cols() == config_.num_dense,
              "dense feature width mismatch");
  ELREC_CHECK(batch.sparse.size() == tables_.size(),
              "one IndexBatch per table required");
  ELREC_CHECK(ws.table_ctx.size() == tables_.size() &&
                  ws.emb_out.size() == tables_.size(),
              "workspace not from make_inference_workspace()");

  bottom_mlp_.forward_frozen(batch.dense, ws.bottom_out, ws.mlp_scratch_a,
                             ws.mlp_scratch_b);

  std::vector<const Matrix*> features;
  features.reserve(tables_.size() + 1);
  features.push_back(&ws.bottom_out);
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    ILookupContext* ctx = ws.table_ctx[t].get();
    if (table_lookup) {
      table_lookup(static_cast<index_t>(t), batch.sparse[t], ws.emb_out[t],
                   ctx);
    } else {
      tables_[t]->lookup(batch.sparse[t], ws.emb_out[t], ctx);
    }
    features.push_back(&ws.emb_out[t]);
  }

  interaction_.forward_frozen(features, ws.interact_out, ws.stacked_scratch);
  top_mlp_.forward_frozen(ws.interact_out, ws.logits, ws.mlp_scratch_a,
                          ws.mlp_scratch_b);

  probs.resize(static_cast<std::size_t>(ws.logits.rows()));
  for (index_t i = 0; i < ws.logits.rows(); ++i) {
    probs[static_cast<std::size_t>(i)] = sigmoid(ws.logits.at(i, 0));
  }
}

float DlrmModel::train_step(const MiniBatch& batch, float lr) {
  Matrix logits;
  float loss;
  {
    TRACE_SPAN("dlrm.forward");
    forward(batch, logits);
    loss = bce_with_logits_loss(logits, batch.labels);
  }

  TRACE_SPAN("dlrm.backward");
  Matrix grad_logits;
  bce_with_logits_backward(logits, batch.labels, grad_logits);

  Matrix grad_interact;
  top_mlp_.backward_and_update(grad_logits, grad_interact, lr);

  std::vector<Matrix> feature_grads;
  interaction_.backward(grad_interact, feature_grads);

  Matrix grad_dense;  // gradient to raw dense inputs, unused
  bottom_mlp_.backward_and_update(feature_grads[0], grad_dense, lr);

  for (std::size_t t = 0; t < tables_.size(); ++t) {
    tables_[t]->backward_and_update(batch.sparse[t], feature_grads[t + 1], lr);
  }
  return loss;
}

std::size_t DlrmModel::parameter_bytes() const {
  std::size_t total =
      (bottom_mlp_.parameter_count() + top_mlp_.parameter_count()) *
      sizeof(float);
  total += embedding_bytes();
  return total;
}

std::size_t DlrmModel::embedding_bytes() const {
  std::size_t total = 0;
  for (const auto& t : tables_) total += t->parameter_bytes();
  return total;
}

}  // namespace elrec
