#include "dlrm/interaction.hpp"

#include "common/error.hpp"
#include "tensor/vector_ops.hpp"

namespace elrec {

FeatureInteraction::FeatureInteraction(index_t num_features, index_t dim)
    : num_features_(num_features), dim_(dim) {
  ELREC_CHECK(num_features >= 2, "interaction needs at least two features");
  ELREC_CHECK(dim > 0, "feature dim must be positive");
}

void FeatureInteraction::forward(const std::vector<const Matrix*>& features,
                                 Matrix& out) {
  cached_batch_ = features.empty() ? 0 : features[0]->rows();
  forward_frozen(features, out, stacked_);
}

void FeatureInteraction::forward_frozen(
    const std::vector<const Matrix*>& features, Matrix& out,
    Matrix& stacked_scratch) const {
  ELREC_CHECK(static_cast<index_t>(features.size()) == num_features_,
              "wrong number of interaction features");
  const index_t b = features[0]->rows();
  for (const Matrix* f : features) {
    ELREC_CHECK(f->rows() == b && f->cols() == dim_,
                "interaction feature shape mismatch");
  }

  // Stack features sample-major: stacked row (s * F + f) = features[f][s].
  stacked_scratch.resize(b * num_features_, dim_);
  for (index_t f = 0; f < num_features_; ++f) {
    const Matrix& src = *features[static_cast<std::size_t>(f)];
    for (index_t s = 0; s < b; ++s) {
      copy({src.row(s), static_cast<std::size_t>(dim_)},
           {stacked_scratch.row(s * num_features_ + f),
            static_cast<std::size_t>(dim_)});
    }
  }

  out.resize(b, output_dim());
#pragma omp parallel for schedule(static) if (b >= 256)
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    // Dense passthrough.
    const float* dense = stacked_scratch.row(s * num_features_ + 0);
    for (index_t j = 0; j < dim_; ++j) dst[j] = dense[j];
    // Upper-triangular pairwise dots.
    index_t pos = dim_;
    for (index_t i = 0; i < num_features_; ++i) {
      const float* fi = stacked_scratch.row(s * num_features_ + i);
      for (index_t j = i + 1; j < num_features_; ++j) {
        const float* fj = stacked_scratch.row(s * num_features_ + j);
        dst[pos++] = dot({fi, static_cast<std::size_t>(dim_)},
                         {fj, static_cast<std::size_t>(dim_)});
      }
    }
  }
}

void FeatureInteraction::backward(const Matrix& grad_out,
                                  std::vector<Matrix>& grads) const {
  ELREC_CHECK(grad_out.rows() == cached_batch_ &&
                  grad_out.cols() == output_dim(),
              "grad_out shape mismatch");
  const index_t b = cached_batch_;
  grads.resize(static_cast<std::size_t>(num_features_));
  for (auto& g : grads) {
    g.resize(b, dim_);
    g.set_zero();
  }

  for (index_t s = 0; s < b; ++s) {
    const float* gout = grad_out.row(s);
    // Dense passthrough gradient.
    float* g0 = grads[0].row(s);
    for (index_t j = 0; j < dim_; ++j) g0[j] += gout[j];
    // d<fi, fj>/dfi = fj and vice versa.
    index_t pos = dim_;
    for (index_t i = 0; i < num_features_; ++i) {
      const float* fi = stacked_.row(s * num_features_ + i);
      float* gi = grads[static_cast<std::size_t>(i)].row(s);
      for (index_t j = i + 1; j < num_features_; ++j) {
        const float* fj = stacked_.row(s * num_features_ + j);
        float* gj = grads[static_cast<std::size_t>(j)].row(s);
        const float gp = gout[pos++];
        if (gp == 0.0f) continue;
        for (index_t kk = 0; kk < dim_; ++kk) {
          gi[kk] += gp * fj[kk];
          gj[kk] += gp * fi[kk];
        }
      }
    }
  }
}

}  // namespace elrec
