#include "dlrm/mlp.hpp"

#include "tensor/gemm.hpp"
#include "tensor/vector_ops.hpp"

namespace elrec {

Mlp::Mlp(std::vector<index_t> layer_sizes, Prng& rng)
    : layer_sizes_(std::move(layer_sizes)) {
  ELREC_CHECK(layer_sizes_.size() >= 2, "MLP needs at least one layer");
  const auto n = layer_sizes_.size() - 1;
  weights_.resize(n);
  biases_.resize(n);
  inputs_.resize(n);
  preacts_.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    weights_[l].resize(layer_sizes_[l], layer_sizes_[l + 1]);
    weights_[l].fill_xavier(rng);
    biases_[l].assign(static_cast<std::size_t>(layer_sizes_[l + 1]), 0.0f);
  }
  set_optimizer(OptimizerConfig{});
}

void Mlp::set_optimizer(OptimizerConfig config) {
  const auto n = weights_.size();
  weight_opt_.resize(n);
  bias_opt_.resize(n);
  for (std::size_t l = 0; l < n; ++l) {
    weight_opt_[l].reset(config, static_cast<std::size_t>(weights_[l].size()));
    bias_opt_[l].reset(config, biases_[l].size());
  }
}

void Mlp::forward(const Matrix& in, Matrix& out) {
  ELREC_CHECK(in.cols() == input_dim(), "MLP input dim mismatch");
  const index_t b = in.rows();
  cached_batch_ = b;
  const int n = num_layers();

  const Matrix* cur = &in;
  for (int l = 0; l < n; ++l) {
    Matrix& x = inputs_[static_cast<std::size_t>(l)];
    x = *cur;  // cache layer input
    Matrix& z = (l == n - 1) ? out : preacts_[static_cast<std::size_t>(l)];
    matmul(x, weights_[static_cast<std::size_t>(l)], z);
    const auto& bias = biases_[static_cast<std::size_t>(l)];
    for (index_t i = 0; i < b; ++i) {
      float* row = z.row(i);
      for (std::size_t j = 0; j < bias.size(); ++j) row[j] += bias[j];
    }
    if (l < n - 1) {
      // preacts_ caches the *activated* values; relu_backward's >0 mask is
      // identical on pre- and post-activation, so one buffer suffices.
      relu_inplace({z.data(), static_cast<std::size_t>(z.size())});
      cur = &z;
    }
  }
}

void Mlp::forward_frozen(const Matrix& in, Matrix& out, Matrix& scratch_a,
                         Matrix& scratch_b) const {
  ELREC_CHECK(in.cols() == input_dim(), "MLP input dim mismatch");
  const index_t b = in.rows();
  const int n = num_layers();

  const Matrix* cur = &in;
  for (int l = 0; l < n; ++l) {
    Matrix& z = (l == n - 1) ? out : (l % 2 == 0 ? scratch_a : scratch_b);
    matmul(*cur, weights_[static_cast<std::size_t>(l)], z);
    const auto& bias = biases_[static_cast<std::size_t>(l)];
    for (index_t i = 0; i < b; ++i) {
      float* row = z.row(i);
      for (std::size_t j = 0; j < bias.size(); ++j) row[j] += bias[j];
    }
    if (l < n - 1) {
      relu_inplace({z.data(), static_cast<std::size_t>(z.size())});
      cur = &z;
    }
  }
}

void Mlp::backward_and_update(const Matrix& grad_out, Matrix& grad_in,
                              float lr) {
  const int n = num_layers();
  ELREC_CHECK(grad_out.rows() == cached_batch_ &&
                  grad_out.cols() == output_dim(),
              "grad_out shape mismatch");
  Matrix grad = grad_out;
  Matrix grad_prev;
  for (int l = n - 1; l >= 0; --l) {
    Matrix& x = inputs_[static_cast<std::size_t>(l)];
    Matrix& w = weights_[static_cast<std::size_t>(l)];
    auto& bias = biases_[static_cast<std::size_t>(l)];

    // Gradient to the layer input (needed before the weight update).
    if (l > 0) {
      matmul(grad, w, grad_prev, Trans::kNo, Trans::kYes);
    } else {
      matmul(grad, w, grad_in, Trans::kNo, Trans::kYes);
    }

    if (weight_opt_[static_cast<std::size_t>(l)].config().kind ==
        OptimizerKind::kSgd) {
      // dW = x^T * grad; updated in place (SGD fused into the GEMM).
      gemm(Trans::kYes, Trans::kNo, w.rows(), w.cols(), grad.rows(), -lr,
           x.data(), x.cols(), grad.data(), grad.cols(), 1.0f, w.data(),
           w.cols());
      for (index_t i = 0; i < grad.rows(); ++i) {
        const float* g = grad.row(i);
        for (std::size_t j = 0; j < bias.size(); ++j) bias[j] -= lr * g[j];
      }
    } else {
      // Stateful rules need the explicit gradient.
      grad_w_scratch_.resize(w.rows(), w.cols());
      gemm(Trans::kYes, Trans::kNo, w.rows(), w.cols(), grad.rows(), 1.0f,
           x.data(), x.cols(), grad.data(), grad.cols(), 0.0f,
           grad_w_scratch_.data(), w.cols());
      weight_opt_[static_cast<std::size_t>(l)].update(
          {w.data(), static_cast<std::size_t>(w.size())},
          {grad_w_scratch_.data(),
           static_cast<std::size_t>(grad_w_scratch_.size())},
          lr);
      grad_b_scratch_.assign(bias.size(), 0.0f);
      for (index_t i = 0; i < grad.rows(); ++i) {
        const float* g = grad.row(i);
        for (std::size_t j = 0; j < bias.size(); ++j) {
          grad_b_scratch_[j] += g[j];
        }
      }
      bias_opt_[static_cast<std::size_t>(l)].update(
          bias, grad_b_scratch_, lr);
    }

    if (l > 0) {
      // Through the ReLU of layer l-1 (preacts_ holds activated values; the
      // >0 mask is identical).
      Matrix& act = preacts_[static_cast<std::size_t>(l - 1)];
      grad.resize(grad_prev.rows(), grad_prev.cols());
      relu_backward({act.data(), static_cast<std::size_t>(act.size())},
                    {grad_prev.data(), static_cast<std::size_t>(grad_prev.size())},
                    {grad.data(), static_cast<std::size_t>(grad.size())});
    }
  }
}

std::size_t Mlp::parameter_count() const {
  std::size_t total = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    total += static_cast<std::size_t>(weights_[l].size()) + biases_[l].size();
  }
  return total;
}

}  // namespace elrec
