// Full DLRM assembly (paper Fig. 2): Bottom MLP + embedding tables +
// pairwise-dot feature interaction + Top MLP + BCE loss.
//
// The embedding tables are injected through the IEmbeddingTable interface,
// which is exactly the drop-in-replacement seam the paper advertises:
// swapping nn.EmbeddingBag for the Eff-TT table changes one constructor
// argument and nothing else.
#pragma once

#include <memory>
#include <vector>

#include "dlrm/interaction.hpp"
#include "dlrm/mlp.hpp"
#include "embed/embedding_table.hpp"
#include "embed/minibatch.hpp"

namespace elrec {

/// Per-reader scratch for DlrmModel::predict_frozen(): activation buffers
/// plus one ILookupContext per embedding table. One instance per concurrent
/// inference thread; obtain via DlrmModel::make_inference_workspace().
struct DlrmInferenceWorkspace {
  Matrix bottom_out;
  std::vector<Matrix> emb_out;
  Matrix interact_out;
  Matrix logits;
  Matrix mlp_scratch_a, mlp_scratch_b;
  Matrix stacked_scratch;
  std::vector<std::unique_ptr<ILookupContext>> table_ctx;
};

struct DlrmConfig {
  index_t num_dense = 13;                     // continuous input features
  index_t embedding_dim = 16;                 // d — shared feature dimension
  std::vector<index_t> bottom_hidden = {64};  // bottom-MLP hidden sizes
  std::vector<index_t> top_hidden = {64};     // top-MLP hidden sizes
};

class DlrmModel {
 public:
  DlrmModel(DlrmConfig config,
            std::vector<std::unique_ptr<IEmbeddingTable>> tables, Prng& rng);

  index_t num_tables() const { return static_cast<index_t>(tables_.size()); }
  const DlrmConfig& config() const { return config_; }
  IEmbeddingTable& table(index_t t) {
    return *tables_[static_cast<std::size_t>(t)];
  }
  const IEmbeddingTable& table(index_t t) const {
    return *tables_[static_cast<std::size_t>(t)];
  }

  /// Forward pass producing CTR logits (B x 1); state cached for backward.
  void forward(const MiniBatch& batch, Matrix& logits);

  /// Forward + sigmoid, producing click probabilities.
  void predict(const MiniBatch& batch, std::vector<float>& probs);

  /// Allocates the per-reader scratch for predict_frozen() (one lookup
  /// context per table).
  DlrmInferenceWorkspace make_inference_workspace() const;

  /// Overrides how predict_frozen() resolves one table's pooled embeddings
  /// (the serving cache hooks in here). Must fill `out` exactly as
  /// table(t).lookup() would.
  using TableLookupFn = std::function<void(
      index_t t, const IndexBatch& batch, Matrix& out, ILookupContext* ctx)>;

  /// Inference-only forward + sigmoid: identical probabilities to predict()
  /// (bitwise, for the same parameters) but strictly read-only — all
  /// mutable state lives in `ws`, so any number of threads may serve
  /// requests concurrently from one frozen model. `batch.labels` may be
  /// empty. Embedding tables must support the lookup() path.
  void predict_frozen(const MiniBatch& batch, std::vector<float>& probs,
                      DlrmInferenceWorkspace& ws,
                      const TableLookupFn& table_lookup = {}) const;

  /// One SGD training step; returns the batch BCE loss.
  float train_step(const MiniBatch& batch, float lr);

  /// Visits every float parameter buffer (MLPs then tables, fixed order).
  void visit_parameters(const ParameterVisitor& visit) {
    bottom_mlp_.visit_parameters(visit);
    top_mlp_.visit_parameters(visit);
    for (auto& t : tables_) t->visit_parameters(visit);
  }

  /// Total trainable parameter bytes (MLPs + tables).
  std::size_t parameter_bytes() const;
  /// Bytes held by the embedding tables alone (the Table III metric).
  std::size_t embedding_bytes() const;

 private:
  DlrmConfig config_;
  std::vector<std::unique_ptr<IEmbeddingTable>> tables_;
  Mlp bottom_mlp_;
  Mlp top_mlp_;
  FeatureInteraction interaction_;

  // Forward caches.
  Matrix bottom_out_;
  std::vector<Matrix> emb_out_;
  Matrix interact_out_;
  Matrix logits_;
};

/// Convenience: builds the {in, hidden..., out} size vector for Mlp.
std::vector<index_t> mlp_sizes(index_t in, const std::vector<index_t>& hidden,
                               index_t out);

}  // namespace elrec
