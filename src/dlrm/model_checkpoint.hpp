// Whole-model checkpointing via parameter visitation.
//
// Saves/restores every float parameter buffer of a DlrmModel (MLPs + all
// embedding tables) in visitation order. The model must be reconstructed
// with the same configuration before loading; buffer count and sizes are
// verified.
#pragma once

#include <string>

#include "dlrm/dlrm_model.hpp"

namespace elrec {

void save_dlrm_model(DlrmModel& model, const std::string& path);

/// Restores parameters into an already-constructed, shape-identical model.
void load_dlrm_model(DlrmModel& model, const std::string& path);

}  // namespace elrec
