#include "dlrm/loss.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/vector_ops.hpp"

namespace elrec {

float bce_with_logits_loss(const Matrix& logits,
                           std::span<const float> labels) {
  ELREC_CHECK(logits.cols() == 1 &&
                  logits.rows() == static_cast<index_t>(labels.size()),
              "logits must be (B x 1) matching labels");
  double total = 0.0;
  for (index_t i = 0; i < logits.rows(); ++i) {
    const double z = logits.at(i, 0);
    const double y = labels[static_cast<std::size_t>(i)];
    // max(z,0) - z*y + log(1 + exp(-|z|)) — stable for both signs.
    total += std::max(z, 0.0) - z * y + std::log1p(std::exp(-std::fabs(z)));
  }
  return static_cast<float>(total / static_cast<double>(logits.rows()));
}

void bce_with_logits_backward(const Matrix& logits,
                              std::span<const float> labels, Matrix& grad) {
  ELREC_CHECK(logits.cols() == 1 &&
                  logits.rows() == static_cast<index_t>(labels.size()),
              "logits must be (B x 1) matching labels");
  const index_t b = logits.rows();
  grad.resize(b, 1);
  const float inv_b = 1.0f / static_cast<float>(b);
  for (index_t i = 0; i < b; ++i) {
    grad.at(i, 0) =
        (sigmoid(logits.at(i, 0)) - labels[static_cast<std::size_t>(i)]) *
        inv_b;
  }
}

}  // namespace elrec
