// Lint driver: walks source trees, runs the rule registry over every file
// (per-file rules fan out across a small thread pool; findings merge in
// deterministic path order, so the report is bitwise-identical at any
// thread count), builds the cross-TU ProjectIndex, runs the project
// rules, applies NOLINT suppressions and the baseline, and renders a
// report. tools/elrec_lint is a thin argv shell around run_lint().
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/baseline.hpp"
#include "analyze/index.hpp"
#include "analyze/reporter.hpp"
#include "analyze/rule.hpp"

namespace elrec::analyze {

struct LintOptions {
  std::vector<std::string> paths;     // files and/or directories
  std::string baseline_path;          // "" = no baseline
  std::string trace_manifest_path;    // "" = trace-span-coverage idles
  std::string fault_manifest_path;    // "" = fault-site-coverage idles
  std::vector<std::string> only_rules;  // empty = all rules
  std::size_t jobs = 0;               // 0 = hardware_concurrency (capped)
  bool want_graph_dot = false;        // fill LintResult::lock_graph_dot
  bool want_index_stats = false;      // fill LintResult::index_stats
};

struct LintResult {
  std::vector<Finding> fresh;  // findings that should fail the run
  LintSummary summary;
  std::string lock_graph_dot;  // when options.want_graph_dot
  std::string index_stats;     // when options.want_index_stats
};

/// Recursively collects lintable sources (.hpp/.h/.hh/.hxx/.cpp/.cc/.cxx)
/// under `paths`, skipping build*/.git directories; sorted for
/// deterministic reports. A path that is itself a file is taken as-is.
/// Throws std::runtime_error on a nonexistent path.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths);

/// Parses a trace-span manifest: `<file-suffix> <function>` per line,
/// '#' comments. Throws std::runtime_error if `path` is unreadable or a
/// line is malformed.
std::vector<TraceSpanRequirement> load_trace_manifest(const std::string& path);

/// Parses a fault-site manifest: `<file-suffix> <site>` per line, '#'
/// comments; same error contract as load_trace_manifest.
std::vector<FaultSiteRequirement> load_fault_manifest(const std::string& path);

/// Runs the full pass. File read errors propagate as std::runtime_error.
LintResult run_lint(const RuleRegistry& registry, const LintOptions& options);

}  // namespace elrec::analyze
