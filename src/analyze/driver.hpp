// Lint driver: walks source trees, runs the rule registry over every file,
// applies NOLINT suppressions and the baseline, and renders a report.
// tools/elrec_lint is a thin argv shell around run_lint().
#pragma once

#include <string>
#include <vector>

#include "analyze/baseline.hpp"
#include "analyze/reporter.hpp"
#include "analyze/rule.hpp"

namespace elrec::analyze {

struct LintOptions {
  std::vector<std::string> paths;     // files and/or directories
  std::string baseline_path;          // "" = no baseline
  std::string trace_manifest_path;    // "" = trace-span-coverage idles
  std::vector<std::string> only_rules;  // empty = all rules
};

struct LintResult {
  std::vector<Finding> fresh;  // findings that should fail the run
  LintSummary summary;
};

/// Recursively collects lintable sources (.hpp/.h/.hh/.hxx/.cpp/.cc/.cxx)
/// under `paths`, skipping build*/.git directories; sorted for
/// deterministic reports. A path that is itself a file is taken as-is.
/// Throws std::runtime_error on a nonexistent path.
std::vector<std::string> collect_sources(const std::vector<std::string>& paths);

/// Parses a trace-span manifest: `<file-suffix> <function>` per line,
/// '#' comments. Throws std::runtime_error if `path` is unreadable or a
/// line is malformed.
std::vector<TraceSpanRequirement> load_trace_manifest(const std::string& path);

/// Runs the full pass. File read errors propagate as std::runtime_error.
LintResult run_lint(const RuleRegistry& registry, const LintOptions& options);

}  // namespace elrec::analyze
