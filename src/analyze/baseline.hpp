// Findings baseline: grandfathered findings that do not fail the build.
//
// Format (one entry per line, tab-separated, '#' comments):
//   <rule>\t<path>\t<trimmed offending line text>
// Entries match on content, not line number, so edits elsewhere in a file
// never churn the baseline; interior whitespace runs in the snippet are
// collapsed on both sides of the comparison, so reindenting or
// reformatting the offending line does not churn it either. Each entry
// absorbs any number of identical findings on distinct lines of the same
// file (a repeated legacy pattern is one decision, not N).
//
// Policy note (DESIGN.md §9): the baseline exists so the linter could be
// introduced into a dirty tree without a flag day; this repo fixed its
// findings instead, so the shipped baseline is empty and should stay that
// way — prefer NOLINT-with-justification at the site over a new baseline
// entry.
#pragma once

#include <string>
#include <vector>

#include "analyze/finding.hpp"

namespace elrec::analyze {

struct BaselinePrune;  // defined below (needs the complete Baseline)

class Baseline {
 public:
  /// Loads entries from `path`. Missing file == empty baseline. Throws
  /// std::runtime_error on a malformed line (a bad baseline must not
  /// silently admit findings).
  static Baseline load(const std::string& path);

  /// Baseline covering exactly `findings` (for --write-baseline).
  static Baseline from_findings(const std::vector<Finding>& findings);

  bool contains(const Finding& f) const;
  std::size_t size() const { return entries_.size(); }

  /// Serializes in the load() format, sorted, with a header comment.
  std::string serialize() const;

  /// For --prune-baseline: the subset of entries still matched by at
  /// least one of `findings`, plus how many were dropped.
  BaselinePrune retain_matching(const std::vector<Finding>& findings) const;

 private:
  // rule \t path \t snippet, stored pre-joined for set lookup.
  std::vector<std::string> entries_;
};

/// Result of Baseline::retain_matching.
struct BaselinePrune {
  Baseline kept;
  std::size_t removed = 0;
};

/// Splits `findings` into (kept, baselined) under `b`.
struct BaselineSplit {
  std::vector<Finding> fresh;
  std::size_t baselined = 0;
};
BaselineSplit apply_baseline(const Baseline& b, std::vector<Finding> findings);

}  // namespace elrec::analyze
