// The shipped cross-TU rules. Each reads only the finalized ProjectIndex:
//
//   lock-order-graph     — the static lock-acquisition graph must be
//                          acyclic; any cycle is a potential deadlock and
//                          is reported with the full witness path (file,
//                          line, call chain per edge).
//   blocking-under-lock  — no blocking primitive (deadline queue ops,
//                          condvar waits, sleeps, a blocking ShardChannel
//                          call) may be reachable — directly or through
//                          calls — while a RAII guard scope is open.
//                          Exemptions (DESIGN.md §9): a condvar wait that
//                          names the open guard releases it; try_push_for/
//                          try_pop_for with a literal-zero timeout is a
//                          non-blocking probe.
//   layering-dag         — include edges must respect the subsystem order
//                          common → tensor/obs/analyze → tt/embed/data/
//                          reorder → core/dlrm/codec → pipeline/serve →
//                          sim/shard → online; a backward edge fails.
//   fault-site-coverage  — every ELREC_FAULT_POINT site and every dotted
//                          site armed in tests must appear in
//                          tools/fault_sites.manifest, and every manifest
//                          entry must still match a live site (the same
//                          loud drift contract trace-span-coverage has).
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <string_view>

#include "analyze/index.hpp"
#include "analyze/rule.hpp"

namespace elrec::analyze {

namespace {

class LockOrderGraphRule final : public ProjectRule {
 public:
  std::string_view name() const override { return "lock-order-graph"; }
  std::string_view description() const override {
    return "the cross-TU lock-acquisition graph must be acyclic; a cycle "
           "is a potential deadlock";
  }
  void check(const ProjectIndex& index, const LintContext&,
             std::vector<Finding>& out) const override {
    for (const auto& cycle : index.cycles()) {
      if (cycle.empty()) continue;
      std::ostringstream msg;
      msg << "lock-order cycle: ";
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        if (i > 0) msg << " -> ";
        msg << cycle[i].from;
      }
      msg << " -> " << cycle.front().from << "; witness:";
      for (const LockEdge& e : cycle) msg << " [" << e.witness << "]";
      out.push_back(make_project_finding(index, name(),
                                         cycle.front().witness_file,
                                         cycle.front().witness_line, 1,
                                         msg.str()));
    }
  }
};

class BlockingUnderLockRule final : public ProjectRule {
 public:
  std::string_view name() const override { return "blocking-under-lock"; }
  std::string_view description() const override {
    return "no blocking call may be reachable while a lock_guard/"
           "unique_lock scope is open (p99 cliff / deadlock fuel)";
  }
  void check(const ProjectIndex& index, const LintContext&,
             std::vector<Finding>& out) const override {
    for (const BlockingUnderLock& b : index.blocking_under_lock()) {
      std::ostringstream msg;
      msg << b.what << " reachable in " << b.function << " while holding ";
      for (std::size_t i = 0; i < b.held.size(); ++i) {
        if (i > 0) msg << ", ";
        msg << b.held[i];
      }
      if (!b.chain.empty()) msg << " (call chain: " << b.chain << ")";
      msg << "; move the blocking call outside the guard scope";
      out.push_back(make_project_finding(index, name(), b.file, b.line,
                                         b.col, msg.str()));
    }
  }
};

// Subsystem ranks. Same-rank edges are allowed (e.g. data -> embed);
// an include whose target ranks *higher* than the including subsystem
// points backwards through the layering and fails.
const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},
      {"tensor", 1}, {"obs", 1}, {"analyze", 1},
      {"tt", 2}, {"embed", 2}, {"data", 2}, {"reorder", 2},
      {"core", 3}, {"dlrm", 3}, {"codec", 3},
      {"pipeline", 4}, {"serve", 4},
      {"sim", 5}, {"shard", 5},
      {"online", 6},
  };
  return kRanks;
}

// "src/shard/transport.cpp" -> "shard"; "" when not under src/.
std::string subsystem_of_path(std::string_view path) {
  const std::size_t src = path.rfind("src/");
  if (src == std::string_view::npos) return {};
  if (src != 0 && path[src - 1] != '/') return {};
  std::string_view rest = path.substr(src + 4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(rest.substr(0, slash));
}

// "shard/transport.hpp" -> "shard" (project headers are included
// relative to src/); "" for flat includes.
std::string subsystem_of_header(std::string_view header) {
  const std::size_t slash = header.find('/');
  if (slash == std::string_view::npos) return {};
  return std::string(header.substr(0, slash));
}

class LayeringDagRule final : public ProjectRule {
 public:
  std::string_view name() const override { return "layering-dag"; }
  std::string_view description() const override {
    return "subsystem includes must follow common -> tensor/obs -> "
           "tt/embed/data -> dlrm/codec -> pipeline/serve -> shard -> "
           "online";
  }
  void check(const ProjectIndex& index, const LintContext&,
             std::vector<Finding>& out) const override {
    const auto& ranks = layer_ranks();
    for (const IncludeEdge& e : index.include_edges()) {
      const std::string from = subsystem_of_path(e.file);
      if (from.empty()) continue;  // tests/tools/bench include freely
      const auto from_it = ranks.find(from);
      if (from_it == ranks.end()) {
        out.push_back(make_project_finding(
            index, name(), e.file, e.line, 1,
            "subsystem 'src/" + from + "' is not in the layering map; add "
            "it to layer_ranks() (project_rules.cpp) and DESIGN.md §9"));
        continue;
      }
      const std::string to = subsystem_of_header(e.header);
      if (to.empty()) continue;  // non-subsystem include (e.g. local)
      const auto to_it = ranks.find(to);
      if (to_it == ranks.end()) continue;  // not a project subsystem
      if (from_it->second < to_it->second) {
        out.push_back(make_project_finding(
            index, name(), e.file, e.line, 1,
            "backward include edge: src/" + from + " (layer " +
                std::to_string(from_it->second) + ") must not include \"" +
                e.header + "\" (layer " + std::to_string(to_it->second) +
                "); the layering DAG runs common -> ... -> online"));
      }
    }
  }
};

class FaultSiteCoverageRule final : public ProjectRule {
 public:
  std::string_view name() const override { return "fault-site-coverage"; }
  std::string_view description() const override {
    return "every ELREC_FAULT_POINT site and armed fault site must be "
           "listed in tools/fault_sites.manifest (and vice versa)";
  }
  void check(const ProjectIndex& index, const LintContext& ctx,
             std::vector<Finding>& out) const override {
    if (ctx.fault_manifest_path.empty()) return;  // no manifest: idle

    std::set<std::string> manifest_sites;
    for (const FaultSiteRequirement& req : ctx.fault_manifest) {
      manifest_sites.insert(req.site);
    }

    for (const FaultPoint& fp : index.fault_points()) {
      bool covered = false;
      for (const FaultSiteRequirement& req : ctx.fault_manifest) {
        if (req.site == fp.site && fp.file.ends_with(req.file_suffix)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        out.push_back(make_project_finding(
            index, name(), fp.file, fp.line, 1,
            "ELREC_FAULT_POINT(\"" + fp.site + "\") is not covered by " +
                ctx.fault_manifest_path + "; add a `<file-suffix> " +
                fp.site + "` entry so fault drills cannot silently rot"));
      }
    }

    // Armed sites: only dotted names are real site ids (grammar fixtures
    // arm junk like "noprob" on purpose).
    for (const ArmedSite& as : index.armed_sites()) {
      if (as.site.find('.') == std::string::npos) continue;
      if (manifest_sites.count(as.site)) continue;
      out.push_back(make_project_finding(
          index, name(), as.file, as.line, 1,
          "armed fault site \"" + as.site + "\" is not listed in " +
              ctx.fault_manifest_path +
              "; arming a site no plant declares is manifest drift"));
    }

    // Drift in the other direction: a manifest entry matching nothing.
    for (const FaultSiteRequirement& req : ctx.fault_manifest) {
      bool live = false;
      for (const FaultPoint& fp : index.fault_points()) {
        if (req.site == fp.site && fp.file.ends_with(req.file_suffix)) {
          live = true;
          break;
        }
      }
      for (const ArmedSite& as : index.armed_sites()) {
        if (live) break;
        if (req.site == as.site && as.file.ends_with(req.file_suffix)) {
          live = true;
        }
      }
      if (!live) {
        Finding f = make_project_finding(
            index, name(), ctx.fault_manifest_path, req.line, 1,
            "manifest entry `" + req.file_suffix + " " + req.site +
                "` matches no ELREC_FAULT_POINT or armed site in the "
                "scanned tree; delete it or fix the suffix");
        f.snippet = req.file_suffix + " " + req.site;
        out.push_back(std::move(f));
      }
    }
  }
};

}  // namespace

void register_builtin_project_rules(RuleRegistry& registry) {
  registry.add(std::make_unique<LockOrderGraphRule>());
  registry.add(std::make_unique<BlockingUnderLockRule>());
  registry.add(std::make_unique<LayeringDagRule>());
  registry.add(std::make_unique<FaultSiteCoverageRule>());
}

}  // namespace elrec::analyze
