// The shipped project-invariant rules. Each encodes a contract that a
// generic linter cannot know:
//
//   determinism-rand          — training must be replayable: all randomness
//                               flows through elrec::Prng with an explicit
//                               seed; libc/time-seeded RNGs are banned.
//   nondeterministic-reduction— float accumulation across OpenMP threads
//                               must use the fixed-shard merge pattern
//                               (eff_tt_table.cpp); `reduction(+:..)` and
//                               `omp atomic` reorder FP adds run-to-run.
//   atomics-ordering          — hot-path counters are relaxed by contract;
//                               an RMW without an explicit memory_order is
//                               a silent seq_cst fence, and `volatile` is
//                               never a synchronization primitive.
//   iostream-in-lib           — library code reports through errors and the
//                               obs registry, never stdout/stderr.
//   lock-discipline           — mutexes are locked only via RAII guards so
//                               every exit path (and exception) unlocks.
//   header-hygiene            — headers carry `#pragma once` and never
//                               `using namespace`.
//   trace-span-coverage       — manifest-listed hot-path functions must
//                               contain TRACE_SPAN (obs coverage cannot
//                               silently rot).
//   nolint-rationale          — every NOLINT marker carries a `: reason`
//                               tail; a suppression whose justification
//                               lives only in someone's head rots first.
//                               (The driver exempts this rule from NOLINT
//                               suppression — a bare NOLINT must not
//                               silence the rule that audits it.)
//
// The cross-TU rules (lock-order-graph, blocking-under-lock,
// layering-dag, fault-site-coverage) live in project_rules.cpp.
#include <array>
#include <string_view>

#include "analyze/rule.hpp"

namespace elrec::analyze {

namespace {

bool is_sig(const Token& t) { return t.kind != TokenKind::kComment; }

// Index of the previous/next non-comment token, or npos.
constexpr std::size_t npos = static_cast<std::size_t>(-1);

std::size_t prev_sig(const TokenStream& ts, std::size_t i) {
  while (i > 0) {
    --i;
    if (is_sig(ts[i])) return i;
  }
  return npos;
}

std::size_t next_sig(const TokenStream& ts, std::size_t i) {
  for (++i; i < ts.size(); ++i) {
    if (is_sig(ts[i])) return i;
  }
  return npos;
}

bool is_punct(const TokenStream& ts, std::size_t i, std::string_view text) {
  return i != npos && ts[i].kind == TokenKind::kPunct && ts[i].text == text;
}

bool is_ident(const TokenStream& ts, std::size_t i, std::string_view text) {
  return i != npos && ts[i].kind == TokenKind::kIdentifier &&
         ts[i].text == text;
}

bool is_member_access(const TokenStream& ts, std::size_t i) {
  const std::size_t p = prev_sig(ts, i);
  return is_punct(ts, p, ".") || is_punct(ts, p, "->");
}

// For `X::name` at index i of `name`, returns the qualifier token index or
// npos when unqualified.
std::size_t qualifier_of(const TokenStream& ts, std::size_t i) {
  const std::size_t colon = prev_sig(ts, i);
  if (!is_punct(ts, colon, "::")) return npos;
  const std::size_t q = prev_sig(ts, colon);
  return (q != npos && ts[q].kind == TokenKind::kIdentifier) ? q : npos;
}

// With ts[i] == "(", returns the index of the matching ")" (or npos).
std::size_t match_paren(const TokenStream& ts, std::size_t i) {
  int depth = 0;
  for (; i < ts.size(); ++i) {
    if (is_punct(ts, i, "(")) ++depth;
    if (is_punct(ts, i, ")") && --depth == 0) return i;
  }
  return npos;
}

std::size_t match_brace(const TokenStream& ts, std::size_t i) {
  int depth = 0;
  for (; i < ts.size(); ++i) {
    if (is_punct(ts, i, "{")) ++depth;
    if (is_punct(ts, i, "}") && --depth == 0) return i;
  }
  return npos;
}

template <std::size_t N>
bool one_of(std::string_view text, const std::array<std::string_view, N>& set) {
  for (std::string_view s : set) {
    if (text == s) return true;
  }
  return false;
}

// ---------------------------------------------------------------- rules --

class DeterminismRandRule final : public Rule {
 public:
  std::string_view name() const override { return "determinism-rand"; }
  std::string_view description() const override {
    return "libc/time-seeded RNGs break replayability; use elrec::Prng with "
           "an explicit seed";
  }
  void check(const SourceFile& file, const LintContext&,
             std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 7> kCalls = {
        "rand", "srand", "rand_r", "drand48", "lrand48",
        "mrand48", "random_shuffle"};
    const TokenStream& ts = file.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier) continue;
      if (ts[i].text == "random_device") {
        // A nondeterministic seed source anywhere is a finding, call or not.
        const std::size_t q = qualifier_of(ts, i);
        if (q == npos || ts[q].text == "std") {
          out.push_back(make_finding(
              file, name(), ts[i].line, ts[i].col,
              "std::random_device is nondeterministic; seed elrec::Prng "
              "explicitly"));
        }
        continue;
      }
      if (!one_of(ts[i].text, kCalls)) continue;
      if (is_member_access(ts, i)) continue;  // e.g. prng.rand_u64()
      const std::size_t q = qualifier_of(ts, i);
      if (q != npos && ts[q].text != "std") continue;  // Foo::rand is fine
      if (!is_punct(ts, next_sig(ts, i), "(")) continue;  // not a call
      out.push_back(make_finding(
          file, name(), ts[i].line, ts[i].col,
          "'" + ts[i].text + "' is banned in src/: route randomness through "
          "elrec::Prng so runs replay bit-identically"));
    }
  }
};

class NondeterministicReductionRule final : public Rule {
 public:
  std::string_view name() const override {
    return "nondeterministic-reduction";
  }
  std::string_view description() const override {
    return "OpenMP float accumulation must use the fixed-shard merge "
           "pattern; reduction(+|-|*) and omp atomic reorder FP adds";
  }
  void check(const SourceFile& file, const LintContext&,
             std::vector<Finding>& out) const override {
    for (const Token& t : file.tokens()) {
      if (t.kind != TokenKind::kPpDirective) continue;
      const std::string& d = t.text;
      if (d.find("pragma") == std::string::npos ||
          d.find("omp") == std::string::npos) {
        continue;
      }
      if (d.find("atomic") != std::string::npos) {
        out.push_back(make_finding(
            file, name(), t.line, t.col,
            "'#pragma omp atomic' accumulation is order-nondeterministic "
            "for floats; use per-shard scratch + ordered merge"));
        continue;
      }
      // `omp simd reduction` stays in one thread with a fixed lane order —
      // deterministic. Only cross-thread (`parallel`) reductions reorder.
      if (d.find("parallel") == std::string::npos) continue;
      const std::size_t red = d.find("reduction");
      if (red == std::string::npos) continue;
      const std::size_t open = d.find('(', red);
      if (open == std::string::npos) continue;
      // First non-space char of the clause is the operator.
      std::size_t op = open + 1;
      while (op < d.size() && d[op] == ' ') ++op;
      if (op < d.size() && (d[op] == '+' || d[op] == '-' || d[op] == '*')) {
        out.push_back(make_finding(
            file, name(), t.line, t.col,
            "'reduction(" + std::string(1, d[op]) + ":...)' reorders "
            "accumulation across threads — nondeterministic for floats. Use "
            "the fixed-shard merge pattern, or NOLINT with a justification "
            "that the accumulator is integral"));
      }
    }
  }
};

class AtomicsOrderingRule final : public Rule {
 public:
  std::string_view name() const override { return "atomics-ordering"; }
  std::string_view description() const override {
    return "atomic RMWs must name their memory_order (hot-path counters are "
           "relaxed by contract); volatile is not a sync primitive";
  }
  void check(const SourceFile& file, const LintContext&,
             std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 8> kRmw = {
        "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
        "fetch_xor", "exchange", "compare_exchange_weak",
        "compare_exchange_strong"};
    const TokenStream& ts = file.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier) continue;
      if (ts[i].text == "volatile") {
        out.push_back(make_finding(
            file, name(), ts[i].line, ts[i].col,
            "'volatile' is not a synchronization primitive; use "
            "std::atomic with an explicit memory_order"));
        continue;
      }
      if (ts[i].text == "memory_order_seq_cst" ||
          (ts[i].text == "seq_cst" &&
           is_ident(ts, qualifier_of(ts, i), "memory_order"))) {
        out.push_back(make_finding(
            file, name(), ts[i].line, ts[i].col,
            "seq_cst on a hot-path atomic: counters are relaxed by "
            "contract, flags are acquire/release; say which you mean"));
        continue;
      }
      if (!one_of(ts[i].text, kRmw) || !is_member_access(ts, i)) continue;
      const std::size_t open = next_sig(ts, i);
      if (!is_punct(ts, open, "(")) continue;
      const std::size_t close = match_paren(ts, open);
      if (close == npos) continue;
      bool has_order = false;
      for (std::size_t j = open + 1; j < close; ++j) {
        if (ts[j].kind == TokenKind::kIdentifier &&
            ts[j].text.rfind("memory_order", 0) == 0) {
          has_order = true;
          break;
        }
      }
      if (!has_order) {
        out.push_back(make_finding(
            file, name(), ts[i].line, ts[i].col,
            "'" + ts[i].text + "' without an explicit memory_order defaults "
            "to seq_cst — state the intended ordering (relaxed for "
            "counters)"));
      }
    }
  }
};

class IostreamInLibRule final : public Rule {
 public:
  std::string_view name() const override { return "iostream-in-lib"; }
  std::string_view description() const override {
    return "library code must not write to stdout/stderr; throw elrec::Error "
           "or record obs metrics (tools/bench/examples/tests exempt)";
  }
  void check(const SourceFile& file, const LintContext&,
             std::vector<Finding>& out) const override {
    if (!file.in_library()) return;
    static constexpr std::array<std::string_view, 8> kPrintf = {
        "printf", "fprintf", "vprintf", "vfprintf",
        "puts", "fputs", "putchar", "perror"};
    static constexpr std::array<std::string_view, 3> kStreams = {
        "cout", "cerr", "clog"};
    const TokenStream& ts = file.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier) continue;
      if (is_member_access(ts, i)) continue;
      const std::size_t q = qualifier_of(ts, i);
      const bool std_or_global = q == npos || ts[q].text == "std";
      if (one_of(ts[i].text, kPrintf) && std_or_global &&
          is_punct(ts, next_sig(ts, i), "(")) {
        out.push_back(make_finding(
            file, name(), ts[i].line, ts[i].col,
            "'" + ts[i].text + "' in library code — report through "
            "elrec::Error / obs metrics instead"));
      } else if (one_of(ts[i].text, kStreams) && std_or_global) {
        out.push_back(make_finding(
            file, name(), ts[i].line, ts[i].col,
            "'std::" + ts[i].text + "' in library code — report through "
            "elrec::Error / obs metrics instead"));
      }
    }
  }
};

class LockDisciplineRule final : public Rule {
 public:
  std::string_view name() const override { return "lock-discipline"; }
  std::string_view description() const override {
    return "lock mutexes only via RAII guards (lock_guard/unique_lock/"
           "scoped_lock) so every exit path unlocks";
  }
  void check(const SourceFile& file, const LintContext&,
             std::vector<Finding>& out) const override {
    static constexpr std::array<std::string_view, 6> kMutexTypes = {
        "mutex", "shared_mutex", "recursive_mutex",
        "timed_mutex", "shared_timed_mutex", "recursive_timed_mutex"};
    static constexpr std::array<std::string_view, 6> kManual = {
        "lock", "unlock", "try_lock",
        "lock_shared", "unlock_shared", "try_lock_shared"};
    const TokenStream& ts = file.tokens();

    // Pass 1: names declared with a mutex type in this file.
    std::unordered_set<std::string> declared;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier ||
          !one_of(ts[i].text, kMutexTypes)) {
        continue;
      }
      const std::size_t n = next_sig(ts, i);
      if (n != npos && ts[n].kind == TokenKind::kIdentifier) {
        declared.insert(ts[n].text);
      }
    }

    // Pass 2: manual lock()/unlock() on a declared mutex, or on a receiver
    // spelled like one (members are declared in the header, used in the
    // .cpp — the name heuristic bridges that file boundary).
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != TokenKind::kIdentifier ||
          !one_of(ts[i].text, kManual)) {
        continue;
      }
      const std::size_t dot = prev_sig(ts, i);
      if (!is_punct(ts, dot, ".") && !is_punct(ts, dot, "->")) continue;
      if (!is_punct(ts, next_sig(ts, i), "(")) continue;
      const std::size_t recv = prev_sig(ts, dot);
      if (recv == npos || ts[recv].kind != TokenKind::kIdentifier) continue;
      if (declared.count(ts[recv].text) == 0 &&
          !looks_like_mutex(ts[recv].text)) {
        continue;
      }
      out.push_back(make_finding(
          file, name(), ts[i].line, ts[i].col,
          "manual '" + ts[recv].text + "." + ts[i].text + "()' — lock via "
          "std::lock_guard/unique_lock/shared_lock so exceptions and early "
          "returns unlock"));
    }
  }

 private:
  static bool looks_like_mutex(const std::string& id) {
    static constexpr std::array<std::string_view, 6> kExact = {
        "mu", "mu_", "mtx", "mtx_", "mutex", "mutex_"};
    if (one_of(std::string_view(id), kExact)) return true;
    for (std::string_view suf :
         {"_mu", "_mu_", "_mtx", "_mtx_", "_mutex", "_mutex_"}) {
      if (id.size() > suf.size() &&
          std::string_view(id).substr(id.size() - suf.size()) == suf) {
        return true;
      }
    }
    return false;
  }
};

class HeaderHygieneRule final : public Rule {
 public:
  std::string_view name() const override { return "header-hygiene"; }
  std::string_view description() const override {
    return "headers must start with #pragma once and never say "
           "'using namespace'";
  }
  void check(const SourceFile& file, const LintContext&,
             std::vector<Finding>& out) const override {
    if (!file.is_header()) return;
    const TokenStream& ts = file.tokens();
    bool has_once = false;
    for (const Token& t : ts) {
      if (t.kind == TokenKind::kPpDirective &&
          t.text.find("pragma") != std::string::npos &&
          t.text.find("once") != std::string::npos) {
        has_once = true;
        break;
      }
    }
    if (!has_once) {
      out.push_back(make_finding(file, name(), 1, 1,
                                 "header is missing '#pragma once'"));
    }
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (is_ident(ts, i, "using") &&
          is_ident(ts, next_sig(ts, i), "namespace")) {
        out.push_back(make_finding(
            file, name(), ts[i].line, ts[i].col,
            "'using namespace' in a header leaks into every includer"));
      }
    }
  }
};

class TraceSpanCoverageRule final : public Rule {
 public:
  std::string_view name() const override { return "trace-span-coverage"; }
  std::string_view description() const override {
    return "manifest-listed hot-path functions must contain TRACE_SPAN";
  }
  void check(const SourceFile& file, const LintContext& ctx,
             std::vector<Finding>& out) const override {
    for (const TraceSpanRequirement& req : ctx.trace_manifest) {
      if (!std::string_view(file.path()).ends_with(req.file_suffix)) continue;
      check_one(file, req, out);
    }
  }

 private:
  void check_one(const SourceFile& file, const TraceSpanRequirement& req,
                 std::vector<Finding>& out) const {
    const TokenStream& ts = file.tokens();
    bool found_def = false;
    std::size_t first_def_line = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (!is_ident(ts, i, req.function)) continue;
      const std::size_t open = next_sig(ts, i);
      if (!is_punct(ts, open, "(")) continue;
      const std::size_t close = match_paren(ts, open);
      if (close == npos) continue;
      // Definition iff only {const,noexcept,override,final} stand between
      // the parameter list and the body brace (rejects calls, whose next
      // token is ;/)/operator, and declarations, which end in ;).
      std::size_t j = next_sig(ts, close);
      while (j != npos &&
             (is_ident(ts, j, "const") || is_ident(ts, j, "noexcept") ||
              is_ident(ts, j, "override") || is_ident(ts, j, "final"))) {
        j = next_sig(ts, j);
      }
      if (!is_punct(ts, j, "{")) continue;
      const std::size_t end = match_brace(ts, j);
      if (end == npos) continue;
      if (!found_def) first_def_line = ts[i].line;
      found_def = true;
      for (std::size_t k = j; k < end; ++k) {
        if (is_ident(ts, k, "TRACE_SPAN")) return;  // covered
      }
    }
    if (!found_def) {
      out.push_back(make_finding(
          file, name(), 1, 1,
          "manifest lists function '" + req.function + "' but no definition "
          "was found in this file — fix the manifest or the code"));
    } else {
      out.push_back(make_finding(
          file, name(), first_def_line, 1,
          "hot-path function '" + req.function + "' has no TRACE_SPAN; add "
          "one (or update the trace manifest with a justification)"));
    }
  }
};

}  // namespace

class NolintRationaleRule final : public Rule {
 public:
  std::string_view name() const override { return "nolint-rationale"; }
  std::string_view description() const override {
    return "every NOLINT/NOLINTNEXTLINE marker must carry a ': reason' "
           "tail stating why the suppression is sound";
  }
  void check(const SourceFile& file, const LintContext&,
             std::vector<Finding>& out) const override {
    for (const NolintMarker& m : file.nolint_markers()) {
      if (m.has_reason) continue;
      out.push_back(make_finding(
          file, name(), m.line, 1,
          "NOLINT marker without a rationale; append ': <why this "
          "suppression is sound>' after the tag"));
    }
  }
};

RuleRegistry RuleRegistry::with_builtin_rules() {
  RuleRegistry r;
  r.add(std::make_unique<DeterminismRandRule>());
  r.add(std::make_unique<NondeterministicReductionRule>());
  r.add(std::make_unique<AtomicsOrderingRule>());
  r.add(std::make_unique<IostreamInLibRule>());
  r.add(std::make_unique<LockDisciplineRule>());
  r.add(std::make_unique<HeaderHygieneRule>());
  r.add(std::make_unique<TraceSpanCoverageRule>());
  r.add(std::make_unique<NolintRationaleRule>());
  register_builtin_project_rules(r);
  return r;
}

}  // namespace elrec::analyze
