// Finding reporters: compiler-style text and machine-readable JSON.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/finding.hpp"

namespace elrec::analyze {

/// Aggregate numbers for the run footer / JSON summary block.
struct LintSummary {
  std::size_t files_scanned = 0;
  std::size_t findings = 0;    // fresh findings (reported, fail the run)
  std::size_t suppressed = 0;  // silenced by NOLINT markers
  std::size_t baselined = 0;   // absorbed by the baseline file
};

/// `path:line:col: [elrec-rule] message` per finding plus a footer line.
std::string report_text(const std::vector<Finding>& findings,
                        const LintSummary& summary);

/// {"findings":[{rule,path,line,col,message,snippet},...],
///  "summary":{files_scanned,findings,suppressed,baselined}}
std::string report_json(const std::vector<Finding>& findings,
                        const LintSummary& summary);

}  // namespace elrec::analyze
