#include "analyze/driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace elrec::analyze {

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx" ||
         ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

bool skip_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name.rfind("build", 0) == 0;
}

}  // namespace

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path root(p);
    if (fs::is_regular_file(root)) {
      files.push_back(root.generic_string());
      continue;
    }
    if (!fs::is_directory(root)) {
      throw std::runtime_error("elrec_lint: no such file or directory: " + p);
    }
    fs::recursive_directory_iterator it(root), end;
    for (; it != end; ++it) {
      if (it->is_directory() && skip_directory(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable_extension(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<TraceSpanRequirement> load_trace_manifest(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("elrec_lint: cannot read trace manifest " + path);
  }
  std::vector<TraceSpanRequirement> reqs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    TraceSpanRequirement req;
    if (!(fields >> req.file_suffix)) continue;  // blank/comment line
    std::string extra;
    if (!(fields >> req.function) || (fields >> extra)) {
      throw std::runtime_error(
          "elrec_lint: malformed manifest line " + std::to_string(lineno) +
          " in " + path + " (want: <file-suffix> <function>)");
    }
    reqs.push_back(std::move(req));
  }
  return reqs;
}

LintResult run_lint(const RuleRegistry& registry, const LintOptions& options) {
  LintContext ctx;
  if (!options.trace_manifest_path.empty()) {
    ctx.trace_manifest = load_trace_manifest(options.trace_manifest_path);
  }
  const Baseline baseline = options.baseline_path.empty()
                               ? Baseline{}
                               : Baseline::load(options.baseline_path);

  LintResult result;
  const std::vector<std::string> files = collect_sources(options.paths);
  result.summary.files_scanned = files.size();

  std::vector<Finding> kept;
  for (const std::string& path : files) {
    const SourceFile file = SourceFile::from_disk(path);
    for (Finding& f : registry.run(file, ctx, options.only_rules)) {
      if (file.suppressed(f.rule, f.line)) {
        ++result.summary.suppressed;
      } else {
        kept.push_back(std::move(f));
      }
    }
  }

  BaselineSplit split = apply_baseline(baseline, std::move(kept));
  result.summary.baselined = split.baselined;
  result.summary.findings = split.fresh.size();
  result.fresh = std::move(split.fresh);
  return result;
}

}  // namespace elrec::analyze
