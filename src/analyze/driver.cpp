#include "analyze/driver.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace elrec::analyze {

namespace fs = std::filesystem;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".hh" || ext == ".hxx" ||
         ext == ".cpp" || ext == ".cc" || ext == ".cxx";
}

bool skip_directory(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name.rfind("build", 0) == 0;
}

void assign_second(TraceSpanRequirement& req, std::string v, std::size_t) {
  req.function = std::move(v);
}

void assign_second(FaultSiteRequirement& req, std::string v,
                   std::size_t lineno) {
  req.site = std::move(v);
  req.line = lineno;
}

// Generic `<file-suffix> <word>` manifest reader shared by the trace-span
// and fault-site manifests.
template <typename Req>
std::vector<Req> load_manifest(const std::string& path,
                               const char* what_second) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("elrec_lint: cannot read manifest " + path);
  }
  std::vector<Req> reqs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    Req req;
    if (!(fields >> req.file_suffix)) continue;  // blank/comment line
    std::string second;
    std::string extra;
    if (!(fields >> second) || (fields >> extra)) {
      throw std::runtime_error(
          "elrec_lint: malformed manifest line " + std::to_string(lineno) +
          " in " + path + " (want: <file-suffix> <" + what_second + ">)");
    }
    assign_second(req, std::move(second), lineno);
    reqs.push_back(std::move(req));
  }
  return reqs;
}

// Per-file work product, slotted by file index so the merge order is the
// sorted path order regardless of which worker finished first.
struct FileScan {
  std::shared_ptr<SourceFile> file;
  std::vector<Finding> findings;
  FileFacts facts;
};

std::size_t effective_jobs(std::size_t requested, std::size_t files) {
  std::size_t jobs = requested;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw == 0 ? 1 : std::min<std::size_t>(hw, 8);
  }
  return std::max<std::size_t>(1, std::min(jobs, std::max<std::size_t>(
                                                     files, 1)));
}

}  // namespace

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path root(p);
    if (fs::is_regular_file(root)) {
      files.push_back(root.generic_string());
      continue;
    }
    if (!fs::is_directory(root)) {
      throw std::runtime_error("elrec_lint: no such file or directory: " + p);
    }
    fs::recursive_directory_iterator it(root), end;
    for (; it != end; ++it) {
      if (it->is_directory() && skip_directory(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable_extension(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<TraceSpanRequirement> load_trace_manifest(
    const std::string& path) {
  return load_manifest<TraceSpanRequirement>(path, "function");
}

std::vector<FaultSiteRequirement> load_fault_manifest(
    const std::string& path) {
  return load_manifest<FaultSiteRequirement>(path, "site");
}

LintResult run_lint(const RuleRegistry& registry, const LintOptions& options) {
  LintContext ctx;
  if (!options.trace_manifest_path.empty()) {
    ctx.trace_manifest = load_trace_manifest(options.trace_manifest_path);
  }
  if (!options.fault_manifest_path.empty()) {
    ctx.fault_manifest = load_fault_manifest(options.fault_manifest_path);
    ctx.fault_manifest_path = options.fault_manifest_path;
  }
  const Baseline baseline = options.baseline_path.empty()
                               ? Baseline{}
                               : Baseline::load(options.baseline_path);

  LintResult result;
  const std::vector<std::string> files = collect_sources(options.paths);
  result.summary.files_scanned = files.size();

  // Phase 1 — per-file: lex, per-file rules, cross-TU fact extraction.
  // Each worker claims the next unprocessed index; results land in
  // per-file slots, so the merge below is deterministic at any -j.
  std::vector<FileScan> scans(files.size());
  {
    std::atomic<std::size_t> next{0};
    std::mutex err_mu;
    std::exception_ptr first_error;
    auto work = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= files.size()) return;
        try {
          auto file = std::make_shared<SourceFile>(
              SourceFile::from_disk(files[i]));
          scans[i].findings = registry.run(*file, ctx, options.only_rules);
          scans[i].facts = extract_facts(*file);
          scans[i].file = std::move(file);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    };
    const std::size_t jobs = effective_jobs(options.jobs, files.size());
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Phase 2 — cross-TU: merge facts (sorted path order) and run the
  // project rules over the finalized index.
  ProjectIndex index;
  for (FileScan& s : scans) index.add(std::move(s.facts), s.file);
  index.finalize();
  std::vector<Finding> project_findings =
      registry.run_project(index, ctx, options.only_rules);

  if (options.want_graph_dot) result.lock_graph_dot = index.lock_graph_dot();
  if (options.want_index_stats) result.index_stats = index.stats();

  // Phase 3 — suppression + baseline. nolint-rationale is exempt from
  // NOLINT suppression: a reason-less marker must not silence the rule
  // that audits reason-less markers.
  std::vector<Finding> kept;
  auto keep_or_suppress = [&](Finding f, const SourceFile* file) {
    if (file != nullptr && f.rule != "nolint-rationale" &&
        file->suppressed(f.rule, f.line)) {
      ++result.summary.suppressed;
    } else {
      kept.push_back(std::move(f));
    }
  };
  for (FileScan& s : scans) {
    for (Finding& f : s.findings) keep_or_suppress(std::move(f), s.file.get());
  }
  for (Finding& f : project_findings) {
    const SourceFile* src = index.source(f.path);
    keep_or_suppress(std::move(f), src);
  }

  BaselineSplit split = apply_baseline(baseline, std::move(kept));
  result.summary.baselined = split.baselined;
  result.summary.findings = split.fresh.size();
  result.fresh = std::move(split.fresh);
  return result;
}

}  // namespace elrec::analyze
