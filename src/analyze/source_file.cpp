#include "analyze/source_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analyze/lexer.hpp"

namespace elrec::analyze {

namespace {

// True if `path` has `part` as a whole directory component.
bool has_path_component(std::string_view path, std::string_view part) {
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t next = path.find('/', pos);
    const std::string_view comp =
        path.substr(pos, next == std::string_view::npos ? next : next - pos);
    if (comp == part) return true;
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return false;
}

// Parses one comment's text for NOLINT markers. Returns true if a marker
// was found; fills `rules` with the named rules ("" alone means all),
// sets `next_line` for NOLINTNEXTLINE, and `has_reason` when a
// `: reason` tail follows the tag (nolint-rationale requires one).
//
// The tag must start the comment (only comment punctuation and
// whitespace before it) and be immediately followed by `(`, `:`, or the
// end of the comment — "applies NOLINT suppressions" in prose, or a
// comment line that merely *ends* with the word NOLINT, is not a marker.
bool parse_nolint(std::string_view comment, std::vector<std::string>* rules,
                  bool* next_line, bool* has_reason) {
  std::size_t at = comment.find("NOLINT");
  if (at == std::string_view::npos) return false;
  for (char c : comment.substr(0, at)) {
    if (c != '/' && c != '*' && c != '!' && c != '<' && c != ' ' &&
        c != '\t') {
      return false;  // tag buried in prose, not leading the comment
    }
  }
  std::size_t after = at + 6;
  *next_line = comment.substr(after).rfind("NEXTLINE", 0) == 0;
  if (*next_line) after += 8;
  rules->clear();
  *has_reason = false;
  bool had_parens = false;
  if (after < comment.size() && comment[after] == '(') {
    had_parens = true;
    const std::size_t close = comment.find(')', after);
    std::string_view list = comment.substr(
        after + 1,
        close == std::string_view::npos ? close : close - after - 1);
    after = close == std::string_view::npos ? comment.size() : close + 1;
    std::size_t pos = 0;
    while (pos <= list.size()) {
      std::size_t comma = list.find(',', pos);
      std::string_view item = list.substr(
          pos, comma == std::string_view::npos ? comma : comma - pos);
      while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
      while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
      // Only elrec- rules are ours; NOLINT(bugprone-...) etc. belongs to
      // other tools and must neither suppress nor demand a rationale.
      if (item.rfind("elrec-", 0) == 0 && item.size() > 6) {
        rules->emplace_back(item.substr(6));
      }
      if (comma == std::string_view::npos) break;
      pos = comma + 1;
    }
  }

  std::string_view tail = comment.substr(std::min(after, comment.size()));
  auto rtrim = [](std::string_view& s) {
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                          s.back() == '\r' || s.back() == '\n')) {
      s.remove_suffix(1);
    }
  };
  rtrim(tail);
  if (tail.ends_with("*/")) {
    tail.remove_suffix(2);
    rtrim(tail);
  }
  while (!tail.empty() && (tail.front() == ' ' || tail.front() == '\t')) {
    tail.remove_prefix(1);
  }
  if (!tail.empty() && tail.front() == ':') {
    std::string_view reason = tail.substr(1);
    while (!reason.empty() && reason.front() == ' ') reason.remove_prefix(1);
    *has_reason = !reason.empty();
  } else if (!tail.empty() && !had_parens) {
    return false;  // prose mention, not a marker
  }
  if (had_parens) {
    // NOLINT(...) with no recognized rule names suppresses nothing — a
    // typo'd tag must not silently widen to "all rules".
    return !rules->empty();
  }
  rules->emplace_back("");  // bare NOLINT: all rules
  return true;
}

}  // namespace

SourceFile SourceFile::from_source(std::string path, std::string source) {
  SourceFile f;
  f.path_ = std::move(path);
  f.source_ = std::move(source);
  std::size_t pos = 0;
  while (pos <= f.source_.size()) {
    const std::size_t nl = f.source_.find('\n', pos);
    if (nl == std::string::npos) {
      f.lines_.emplace_back(std::string_view(f.source_).substr(pos));
      break;
    }
    f.lines_.emplace_back(std::string_view(f.source_).substr(pos, nl - pos));
    pos = nl + 1;
  }
  f.tokens_ = lex(f.source_);
  f.index_suppressions();
  return f;
}

SourceFile SourceFile::from_disk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw std::runtime_error("elrec_lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_source(path, buf.str());
}

std::string_view SourceFile::line_text(std::size_t line_1based) const {
  if (line_1based == 0 || line_1based > lines_.size()) return {};
  return lines_[line_1based - 1];
}

bool SourceFile::is_header() const {
  return path_.ends_with(".hpp") || path_.ends_with(".h") ||
         path_.ends_with(".hh") || path_.ends_with(".hxx");
}

bool SourceFile::in_library() const {
  if (has_path_component(path_, "tools") ||
      has_path_component(path_, "bench") ||
      has_path_component(path_, "examples") ||
      has_path_component(path_, "tests")) {
    return false;
  }
  return has_path_component(path_, "src");
}

bool SourceFile::suppressed(std::string_view rule, std::size_t line) const {
  const auto it = nolint_.find(line);
  if (it == nolint_.end()) return false;
  return it->second.count("") > 0 || it->second.count(std::string(rule)) > 0;
}

void SourceFile::index_suppressions() {
  std::vector<std::string> rules;
  for (const Token& t : tokens_) {
    if (t.kind != TokenKind::kComment) continue;
    bool next_line = false;
    bool has_reason = false;
    if (!parse_nolint(t.text, &rules, &next_line, &has_reason)) continue;
    markers_.push_back({t.line, next_line, has_reason});
    // Block comments can span lines; NOLINT applies to the line the
    // comment starts on (or the one after, for NEXTLINE).
    const std::size_t target = next_line ? t.line + 1 : t.line;
    auto& set = nolint_[target];
    for (auto& r : rules) set.insert(r);
  }
}

}  // namespace elrec::analyze
