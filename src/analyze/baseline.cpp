#include "analyze/baseline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace elrec::analyze {

namespace {

std::string key_of(const Finding& f) {
  return f.rule + "\t" + f.path + "\t" + f.snippet;
}

}  // namespace

Baseline Baseline::load(const std::string& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in.good()) return b;  // no baseline file: nothing grandfathered
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 =
        t1 == std::string::npos ? std::string::npos : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      throw std::runtime_error("malformed baseline entry at " + path + ":" +
                               std::to_string(lineno) +
                               " (want rule\\tpath\\tsnippet)");
    }
    b.entries_.push_back(line);
  }
  std::sort(b.entries_.begin(), b.entries_.end());
  return b;
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  for (const Finding& f : findings) b.entries_.push_back(key_of(f));
  std::sort(b.entries_.begin(), b.entries_.end());
  b.entries_.erase(std::unique(b.entries_.begin(), b.entries_.end()),
                   b.entries_.end());
  return b;
}

bool Baseline::contains(const Finding& f) const {
  return std::binary_search(entries_.begin(), entries_.end(), key_of(f));
}

std::string Baseline::serialize() const {
  std::ostringstream out;
  out << "# elrec_lint findings baseline — rule\\tpath\\tsnippet per line.\n"
         "# Regenerate with: tools/elrec_lint --write-baseline <paths>\n"
         "# Keep this empty: fix findings or NOLINT them with a reason.\n";
  for (const std::string& e : entries_) out << e << "\n";
  return out.str();
}

BaselineSplit apply_baseline(const Baseline& b,
                             std::vector<Finding> findings) {
  BaselineSplit split;
  for (auto& f : findings) {
    if (b.contains(f)) {
      ++split.baselined;
    } else {
      split.fresh.push_back(std::move(f));
    }
  }
  return split;
}

}  // namespace elrec::analyze
