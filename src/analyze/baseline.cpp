#include "analyze/baseline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace elrec::analyze {

namespace {

// Collapses interior whitespace runs to a single space so a reformatted
// offending line still matches its baseline entry.
std::string normalize_ws(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_ws = false;
  for (char c : s) {
    if (c == ' ' || c == '\t') {
      in_ws = true;
      continue;
    }
    if (in_ws && !out.empty()) out.push_back(' ');
    in_ws = false;
    out.push_back(c);
  }
  return out;
}

std::string key_of(const Finding& f) {
  return f.rule + "\t" + f.path + "\t" + normalize_ws(f.snippet);
}

// Normalizes the snippet field of a stored `rule\tpath\tsnippet` line.
std::string normalize_entry(const std::string& line) {
  const std::size_t t1 = line.find('\t');
  const std::size_t t2 = line.find('\t', t1 + 1);
  return line.substr(0, t2 + 1) + normalize_ws(
      std::string_view(line).substr(t2 + 1));
}

}  // namespace

Baseline Baseline::load(const std::string& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in.good()) return b;  // no baseline file: nothing grandfathered
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const std::size_t t1 = line.find('\t');
    const std::size_t t2 =
        t1 == std::string::npos ? std::string::npos : line.find('\t', t1 + 1);
    if (t2 == std::string::npos) {
      throw std::runtime_error("malformed baseline entry at " + path + ":" +
                               std::to_string(lineno) +
                               " (want rule\\tpath\\tsnippet)");
    }
    b.entries_.push_back(normalize_entry(line));
  }
  std::sort(b.entries_.begin(), b.entries_.end());
  return b;
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  for (const Finding& f : findings) b.entries_.push_back(key_of(f));
  std::sort(b.entries_.begin(), b.entries_.end());
  b.entries_.erase(std::unique(b.entries_.begin(), b.entries_.end()),
                   b.entries_.end());
  return b;
}

bool Baseline::contains(const Finding& f) const {
  return std::binary_search(entries_.begin(), entries_.end(), key_of(f));
}

std::string Baseline::serialize() const {
  std::ostringstream out;
  out << "# elrec_lint findings baseline — rule\\tpath\\tsnippet per line.\n"
         "# Regenerate with: tools/elrec_lint --write-baseline <paths>\n"
         "# Keep this empty: fix findings or NOLINT them with a reason.\n";
  for (const std::string& e : entries_) out << e << "\n";
  return out.str();
}

BaselinePrune Baseline::retain_matching(
    const std::vector<Finding>& findings) const {
  std::vector<std::string> live;
  live.reserve(findings.size());
  for (const Finding& f : findings) live.push_back(key_of(f));
  std::sort(live.begin(), live.end());
  BaselinePrune out;
  for (const std::string& e : entries_) {
    if (std::binary_search(live.begin(), live.end(), e)) {
      out.kept.entries_.push_back(e);
    } else {
      ++out.removed;
    }
  }
  return out;
}

BaselineSplit apply_baseline(const Baseline& b,
                             std::vector<Finding> findings) {
  BaselineSplit split;
  for (auto& f : findings) {
    if (b.contains(f)) {
      ++split.baselined;
    } else {
      split.fresh.push_back(std::move(f));
    }
  }
  return split;
}

}  // namespace elrec::analyze
