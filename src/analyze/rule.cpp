#include "analyze/rule.hpp"

#include <algorithm>

#include "analyze/index.hpp"

namespace elrec::analyze {

void RuleRegistry::add(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

void RuleRegistry::add(std::unique_ptr<ProjectRule> rule) {
  project_rules_.push_back(std::move(rule));
}

const Rule* RuleRegistry::find(std::string_view name) const {
  for (const auto& r : rules_) {
    if (r->name() == name) return r.get();
  }
  return nullptr;
}

const ProjectRule* RuleRegistry::find_project(std::string_view name) const {
  for (const auto& r : project_rules_) {
    if (r->name() == name) return r.get();
  }
  return nullptr;
}

std::vector<Finding> RuleRegistry::run(
    const SourceFile& file, const LintContext& ctx,
    const std::vector<std::string>& only) const {
  std::vector<Finding> out;
  for (const auto& r : rules_) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), r->name()) == only.end()) {
      continue;
    }
    r->check(file, ctx, out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> RuleRegistry::run_project(
    const ProjectIndex& index, const LintContext& ctx,
    const std::vector<std::string>& only) const {
  std::vector<Finding> out;
  for (const auto& r : project_rules_) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), r->name()) == only.end()) {
      continue;
    }
    r->check(index, ctx, out);
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return out;
}

Finding make_finding(const SourceFile& file, std::string_view rule,
                     std::size_t line, std::size_t col, std::string message) {
  Finding f;
  f.rule = std::string(rule);
  f.path = file.path();
  f.line = line;
  f.col = col;
  f.message = std::move(message);
  std::string_view text = file.line_text(line);
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  f.snippet = std::string(text);
  return f;
}

Finding make_project_finding(const ProjectIndex& index, std::string_view rule,
                             const std::string& path, std::size_t line,
                             std::size_t col, std::string message) {
  if (const SourceFile* file = index.source(path)) {
    return make_finding(*file, rule, line, col, std::move(message));
  }
  Finding f;
  f.rule = std::string(rule);
  f.path = path;
  f.line = line;
  f.col = col;
  f.message = std::move(message);
  return f;
}

}  // namespace elrec::analyze
