#include "analyze/index.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <sstream>

namespace elrec::analyze {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is_sig(const Token& t) { return t.kind != TokenKind::kComment; }

std::size_t prev_sig(const TokenStream& ts, std::size_t i) {
  while (i > 0) {
    --i;
    if (is_sig(ts[i])) return i;
  }
  return npos;
}

std::size_t next_sig(const TokenStream& ts, std::size_t i) {
  for (++i; i < ts.size(); ++i) {
    if (is_sig(ts[i])) return i;
  }
  return npos;
}

bool is_punct(const TokenStream& ts, std::size_t i, std::string_view text) {
  return i != npos && i < ts.size() && ts[i].kind == TokenKind::kPunct &&
         ts[i].text == text;
}

bool is_ident(const TokenStream& ts, std::size_t i) {
  return i != npos && i < ts.size() && ts[i].kind == TokenKind::kIdentifier;
}

std::size_t match_paren(const TokenStream& ts, std::size_t i) {
  int depth = 0;
  for (; i < ts.size(); ++i) {
    if (is_punct(ts, i, "(")) ++depth;
    if (is_punct(ts, i, ")") && --depth == 0) return i;
  }
  return npos;
}

std::size_t match_brace(const TokenStream& ts, std::size_t i) {
  int depth = 0;
  for (; i < ts.size(); ++i) {
    if (is_punct(ts, i, "{")) ++depth;
    if (is_punct(ts, i, "}") && --depth == 0) return i;
  }
  return npos;
}

std::size_t match_bracket(const TokenStream& ts, std::size_t i) {
  int depth = 0;
  for (; i < ts.size(); ++i) {
    if (is_punct(ts, i, "[")) ++depth;
    if (is_punct(ts, i, "]") && --depth == 0) return i;
  }
  return npos;
}

// With ts[i] == "<", index just past the matching ">", or npos when this
// is an operator rather than a template argument list (bounded scan).
std::size_t match_angle_end(const TokenStream& ts, std::size_t i) {
  int depth = 0;
  std::size_t steps = 0;
  for (; i < ts.size() && steps < 200; ++i, ++steps) {
    const Token& t = ts[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "<") ++depth;
    else if (t.text == "<<") depth += 2;
    else if (t.text == ">") { if (--depth == 0) return i + 1; }
    else if (t.text == ">>") { depth -= 2; if (depth <= 0) return i + 1; }
    else if (t.text == ";" || t.text == "{" || t.text == "}") return npos;
  }
  return npos;
}

template <std::size_t N>
bool one_of(std::string_view text, const std::array<std::string_view, N>& set) {
  for (std::string_view s : set) {
    if (text == s) return true;
  }
  return false;
}

bool is_keyword(std::string_view t) {
  static constexpr std::array<std::string_view, 34> kKeywords = {
      "if", "else", "for", "while", "do", "switch", "case", "return",
      "sizeof", "alignof", "decltype", "noexcept", "static_assert", "new",
      "delete", "throw", "catch", "co_await", "co_return", "assert",
      "defined", "constexpr", "const", "template", "typename", "using",
      "namespace", "struct", "class", "enum", "operator", "public",
      "private", "protected"};
  return one_of(t, kKeywords);
}

bool is_guard_type(std::string_view t) {
  static constexpr std::array<std::string_view, 4> kGuards = {
      "lock_guard", "unique_lock", "shared_lock", "scoped_lock"};
  return one_of(t, kGuards);
}

bool is_mutex_type(std::string_view t) {
  static constexpr std::array<std::string_view, 6> kMutexes = {
      "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex", "shared_timed_mutex"};
  return one_of(t, kMutexes);
}

bool is_condvar_type(std::string_view t) {
  return t == "condition_variable" || t == "condition_variable_any";
}

std::string strip_quotes(std::string_view s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

// ------------------------------------------------------------ extractor --

struct GuardScope {
  std::string var;
  std::vector<LockRef> locks;
  std::size_t scope_end = 0;  // token index whose '}' closes this guard
  bool active = true;
};

class Extractor {
 public:
  explicit Extractor(const SourceFile& file)
      : file_(file), ts_(file.tokens()) {
    out_.file = file.path();
    out_.library = file.in_library();
  }

  FileFacts run() {
    scan(0, ts_.size(), /*in_class=*/false);
    return std::move(out_);
  }

 private:
  struct ClassScope {
    std::string name;
    std::size_t end;  // index of the closing '}'
  };

  const SourceFile& file_;
  const TokenStream& ts_;
  FileFacts out_;
  std::vector<ClassScope> class_stack_;

  std::string current_class() const {
    return class_stack_.empty() ? std::string() : class_stack_.back().name;
  }

  // Scans declaration context (namespace or class scope) in [b, e).
  void scan(std::size_t b, std::size_t e, bool in_class) {
    (void)in_class;
    for (std::size_t i = b; i < e && i < ts_.size(); ++i) {
      while (!class_stack_.empty() && i >= class_stack_.back().end) {
        class_stack_.pop_back();
      }
      const Token& t = ts_[i];
      if (t.kind == TokenKind::kComment) continue;
      if (t.kind == TokenKind::kPpDirective) {
        record_include(t);
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;

      if (t.text == "using") {
        i = record_alias(i);
        continue;
      }
      if ((t.text == "class" || t.text == "struct") &&
          !is_prev_ident(i, "enum")) {
        record_class(i);
        continue;
      }
      if (t.text == "ELREC_GUARDED_BY") {
        i = record_guarded_by(i);
        continue;
      }
      if (is_mutex_type(t.text) || is_condvar_type(t.text)) {
        record_mutex_decl(i);
        continue;
      }

      // Function definition / declaration: `name ( ... )` then body or ';'.
      const std::size_t open = next_sig(ts_, i);
      if (!is_punct(ts_, open, "(") || is_keyword(t.text) ||
          t.text == "ELREC_REQUIRES" || is_guard_type(t.text)) {
        record_type_hint(i);
        continue;
      }
      const std::size_t p = prev_sig(ts_, i);
      if (is_punct(ts_, p, ".") || is_punct(ts_, p, "->")) continue;
      const std::size_t close = match_paren(ts_, open);
      if (close == npos) continue;
      i = record_function_or_decl(i, close);
    }
  }

  bool is_prev_ident(std::size_t i, std::string_view text) const {
    const std::size_t p = prev_sig(ts_, i);
    return is_ident(ts_, p) && ts_[p].text == text;
  }

  void record_include(const Token& t) {
    const std::size_t kw = t.text.find("include");
    if (kw == std::string::npos) return;
    const std::size_t q1 = t.text.find('"', kw);
    if (q1 == std::string::npos) return;
    const std::size_t q2 = t.text.find('"', q1 + 1);
    if (q2 == std::string::npos) return;
    out_.includes.push_back(
        {out_.file, t.text.substr(q1 + 1, q2 - q1 - 1), t.line});
  }

  // `using X = <stuff>;` — record X -> identifiers of <stuff>.
  std::size_t record_alias(std::size_t i) {
    std::size_t name_i = next_sig(ts_, i);
    if (!is_ident(ts_, name_i)) return i;
    std::size_t eq = next_sig(ts_, name_i);
    if (!is_punct(ts_, eq, "=")) return i;  // using-declaration, not alias
    std::set<std::string>& rhs = out_.aliases[ts_[name_i].text];
    std::size_t j = eq;
    while ((j = next_sig(ts_, j)) != npos && !is_punct(ts_, j, ";")) {
      if (is_ident(ts_, j)) rhs.insert(ts_[j].text);
    }
    return j == npos ? i : j;
  }

  // `class X ... { ... }` — push a class scope; forward decls are skipped.
  void record_class(std::size_t i) {
    const std::size_t name_i = next_sig(ts_, i);
    if (!is_ident(ts_, name_i)) return;
    std::size_t j = name_i;
    std::size_t steps = 0;
    while ((j = next_sig(ts_, j)) != npos && ++steps < 64) {
      if (is_punct(ts_, j, ";") || is_punct(ts_, j, "(") ||
          is_punct(ts_, j, ")")) {
        return;  // forward declaration or `struct X` used as a type
      }
      if (is_punct(ts_, j, "{")) {
        const std::size_t end = match_brace(ts_, j);
        if (end == npos) return;
        out_.classes.push_back(ts_[name_i].text);
        class_stack_.push_back({ts_[name_i].text, end});
        return;
      }
    }
  }

  // `member_ ELREC_GUARDED_BY(mu_);` — also implies `mu_` is a mutex of
  // the enclosing class even if its declaration was not recognized.
  std::size_t record_guarded_by(std::size_t i) {
    const std::size_t open = next_sig(ts_, i);
    if (!is_punct(ts_, open, "(")) return i;
    const std::size_t close = match_paren(ts_, open);
    if (close == npos) return i;
    const std::size_t mu = prev_sig(ts_, close);
    const std::size_t member = prev_sig(ts_, i);
    if (is_ident(ts_, mu)) {
      GuardedByDecl g;
      g.file = out_.file;
      g.cls = current_class();
      g.member = is_ident(ts_, member) ? ts_[member].text : std::string();
      g.mutex_name = ts_[mu].text;
      g.line = ts_[i].line;
      out_.guarded_by.push_back(std::move(g));
    }
    return close;
  }

  // `std::mutex mu_;` / `std::condition_variable cv_;` in class or
  // namespace scope. References and pointers (`std::mutex& m`) are uses,
  // not declarations.
  void record_mutex_decl(std::size_t i) {
    const std::size_t v = next_sig(ts_, i);
    if (!is_ident(ts_, v)) return;
    const std::size_t after = next_sig(ts_, v);
    if (!is_punct(ts_, after, ";") && !is_punct(ts_, after, "{")) return;
    MutexDecl d;
    d.file = out_.file;
    d.cls = current_class();
    d.name = ts_[v].text;
    d.line = ts_[v].line;
    d.is_condvar = is_condvar_type(ts_[i].text);
    out_.mutexes.push_back(std::move(d));
  }

  // `Type<...> var ;|=|(|{` — remember which type identifiers appear in a
  // variable's declaration statement (resolves member-call receivers).
  void record_type_hint(std::size_t i) {
    std::set<std::string> idents = {ts_[i].text};
    std::size_t j = next_sig(ts_, i);
    if (is_punct(ts_, j, "<")) {
      const std::size_t past = match_angle_end(ts_, j);
      if (past == npos) return;
      for (std::size_t k = j; k < past; ++k) {
        if (is_ident(ts_, k)) idents.insert(ts_[k].text);
      }
      j = past;
      while (j < ts_.size() && !is_sig(ts_[j])) ++j;
    }
    if (!is_ident(ts_, j)) return;
    const std::size_t after = next_sig(ts_, j);
    if (!is_punct(ts_, after, ";") && !is_punct(ts_, after, "=") &&
        !is_punct(ts_, after, "(") && !is_punct(ts_, after, "{") &&
        !is_punct(ts_, after, ",")) {
      return;
    }
    out_.type_hints[ts_[j].text].insert(idents.begin(), idents.end());
  }

  // ts_[i] is the function name, ts_ has `( ... )` ending at `close`.
  // Returns the index scanning should resume from.
  std::size_t record_function_or_decl(std::size_t i, std::size_t close) {
    std::string qualifier;
    {
      std::size_t colon = prev_sig(ts_, i);
      if (is_punct(ts_, colon, "::")) {
        const std::size_t q = prev_sig(ts_, colon);
        if (is_ident(ts_, q)) qualifier = ts_[q].text;
      }
    }

    // Walk past trailing specifiers; collect ELREC_REQUIRES lock names.
    std::vector<std::string> requires_locks;
    std::size_t j = close;
    std::size_t body = npos;
    bool is_decl = false;
    std::size_t steps = 0;
    while ((j = next_sig(ts_, j)) != npos && ++steps < 64) {
      if (is_punct(ts_, j, ";")) { is_decl = true; break; }
      if (is_punct(ts_, j, "{")) { body = j; break; }
      if (is_punct(ts_, j, ":")) {  // constructor init list
        body = find_ctor_body(j);
        break;
      }
      if (is_ident(ts_, j) && ts_[j].text == "ELREC_REQUIRES") {
        const std::size_t ro = next_sig(ts_, j);
        if (is_punct(ts_, ro, "(")) {
          const std::size_t rc = match_paren(ts_, ro);
          if (rc != npos) {
            for (std::size_t k = ro + 1; k < rc; ++k) {
              if (is_ident(ts_, k)) requires_locks.push_back(ts_[k].text);
            }
            j = rc;
            continue;
          }
        }
      }
      if (is_ident(ts_, j) && ts_[j].text == "noexcept") {
        const std::size_t no = next_sig(ts_, j);
        if (is_punct(ts_, no, "(")) {
          const std::size_t nc = match_paren(ts_, no);
          if (nc != npos) { j = nc; continue; }
        }
        continue;
      }
      if (is_ident(ts_, j) || is_punct(ts_, j, "->") ||
          is_punct(ts_, j, "::") || is_punct(ts_, j, "&") ||
          is_punct(ts_, j, "&&") || is_punct(ts_, j, "*") ||
          is_punct(ts_, j, "=")) {
        continue;  // const/override/final/trailing return/`= default`
      }
      if (is_punct(ts_, j, "<")) {
        const std::size_t past = match_angle_end(ts_, j);
        if (past != npos) { j = past - 1; continue; }
      }
      break;  // anything else: not a function signature
    }

    const std::string cls = !qualifier.empty() ? qualifier : current_class();
    if (is_decl) {
      if (!requires_locks.empty()) {
        out_.requires_decls.push_back({cls, ts_[i].text, requires_locks});
      }
      return j == npos ? i : j;
    }
    if (body == npos) return i;
    const std::size_t end = match_brace(ts_, body);
    if (end == npos) return i;

    FunctionFact fn;
    fn.file = out_.file;
    fn.cls = cls;
    fn.name = ts_[i].text;
    fn.line = ts_[i].line;
    fn.requires_locks = std::move(requires_locks);
    analyze_body(body, end, fn);
    out_.functions.push_back(std::move(fn));
    return end;
  }

  // After the ':' of a ctor init list, finds the body '{'. Member-init
  // braces (`x_{1}`) are preceded by an identifier; the body brace follows
  // a ')' or '}'.
  std::size_t find_ctor_body(std::size_t colon) {
    std::size_t j = colon;
    std::size_t steps = 0;
    while ((j = next_sig(ts_, j)) != npos && ++steps < 4096) {
      if (is_punct(ts_, j, "(")) {
        j = match_paren(ts_, j);
        if (j == npos) return npos;
        continue;
      }
      if (is_punct(ts_, j, "{")) {
        if (is_ident(ts_, prev_sig(ts_, j))) {
          j = match_brace(ts_, j);
          if (j == npos) return npos;
          continue;
        }
        return j;
      }
      if (is_punct(ts_, j, ";")) return npos;
    }
    return npos;
  }

  // ------------------------------------------------------ body analysis --

  std::vector<LockRef> effective_held(const FunctionFact& fn,
                                      const std::vector<GuardScope>& guards) {
    std::vector<LockRef> held;
    for (const std::string& r : fn.requires_locks) held.push_back({"", r});
    for (const GuardScope& g : guards) {
      if (!g.active) continue;
      held.insert(held.end(), g.locks.begin(), g.locks.end());
    }
    return held;
  }

  void analyze_body(std::size_t body, std::size_t end, FunctionFact& fn) {
    std::vector<GuardScope> guards;
    std::vector<std::size_t> scopes = {end};
    for (std::size_t j = body + 1; j < end; ++j) {
      while (scopes.size() > 1 && j >= scopes.back()) {
        const std::size_t closed = scopes.back();
        scopes.pop_back();
        std::erase_if(guards, [closed](const GuardScope& g) {
          return g.scope_end == closed;
        });
      }
      const Token& t = ts_[j];
      if (t.kind == TokenKind::kComment || t.kind == TokenKind::kPpDirective) {
        continue;
      }
      if (is_punct(ts_, j, "{")) {
        const std::size_t close = match_brace(ts_, j);
        if (close != npos && close <= end) scopes.push_back(close);
        continue;
      }
      if (is_punct(ts_, j, "[")) {
        j = maybe_lambda(j, end, fn);
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;

      if (is_mutex_type(t.text) || is_condvar_type(t.text)) {
        record_mutex_decl(j);  // function-local mutex: file-scope node
        continue;
      }
      if (is_guard_type(t.text)) {
        j = record_guard(j, fn, guards, scopes);
        continue;
      }
      const std::size_t open = next_sig(ts_, j);
      if (!is_punct(ts_, open, "(") || is_keyword(t.text)) {
        record_type_hint(j);
        continue;
      }
      handle_call(j, open, fn, guards);
    }
  }

  // `std::lock_guard<std::mutex> lock(mu_);` and friends. Returns the
  // index of the closing ')' (or '}' for brace-init).
  std::size_t record_guard(std::size_t j, FunctionFact& fn,
                           std::vector<GuardScope>& guards,
                           const std::vector<std::size_t>& scopes) {
    std::size_t k = next_sig(ts_, j);
    if (is_punct(ts_, k, "<")) {
      const std::size_t past = match_angle_end(ts_, k);
      if (past == npos) return j;
      k = past;
      while (k < ts_.size() && !is_sig(ts_[k])) ++k;
    }
    if (!is_ident(ts_, k)) return j;  // e.g. unqualified use as a type name
    const std::string var = ts_[k].text;
    std::size_t open = next_sig(ts_, k);
    const bool brace_init = is_punct(ts_, open, "{");
    if (!is_punct(ts_, open, "(") && !brace_init) return j;
    const std::size_t close =
        brace_init ? match_brace(ts_, open) : match_paren(ts_, open);
    if (close == npos) return j;

    bool deferred = false;
    bool try_lock = false;
    std::vector<LockRef> locks;
    std::size_t arg_start = open + 1;
    int depth = 0;
    for (std::size_t a = open + 1; a <= close; ++a) {
      if (is_punct(ts_, a, "(") || is_punct(ts_, a, "{") ||
          is_punct(ts_, a, "[")) {
        ++depth;
      } else if (is_punct(ts_, a, ")") || is_punct(ts_, a, "}") ||
                 is_punct(ts_, a, "]")) {
        --depth;
      }
      const bool at_end = (a == close && depth < 0) || a == close;
      if ((is_punct(ts_, a, ",") && depth == 0) || at_end) {
        LockRef ref;
        bool tag = false;
        for (std::size_t w = arg_start; w < a; ++w) {
          if (!is_ident(ts_, w)) continue;
          const std::string& id = ts_[w].text;
          if (id == "std") continue;
          if (id == "defer_lock") { deferred = true; tag = true; break; }
          if (id == "try_to_lock") { try_lock = true; tag = true; break; }
          if (id == "adopt_lock") { tag = true; break; }
          ref.receiver = std::move(ref.name);
          ref.name = id;
        }
        if (!tag && !ref.name.empty()) locks.push_back(std::move(ref));
        arg_start = a + 1;
      }
    }

    const std::vector<LockRef> held = effective_held(fn, guards);
    if (!deferred && !try_lock) {
      // scoped_lock(a, b) uses the deadlock-free lock() algorithm: the
      // arguments order-constrain against *outer* locks, not each other.
      for (const LockRef& ref : locks) {
        fn.acquires.push_back({ref, ts_[j].line, ts_[j].col, held});
      }
    }
    GuardScope g;
    g.var = var;
    g.locks = std::move(locks);
    g.scope_end = scopes.back();
    g.active = !deferred;
    guards.push_back(std::move(g));
    return close;
  }

  // `[`: attribute, subscript, or lambda. Lambdas become separate
  // anonymous FunctionFacts (deferred execution: the enclosing guard
  // context does not apply). Returns the resume index.
  std::size_t maybe_lambda(std::size_t j, std::size_t end, FunctionFact& fn) {
    const std::size_t p = prev_sig(ts_, j);
    if (is_ident(ts_, p) || is_punct(ts_, p, ")") || is_punct(ts_, p, "]") ||
        (p != npos && (ts_[p].kind == TokenKind::kNumber ||
                       ts_[p].kind == TokenKind::kString))) {
      return j;  // subscript
    }
    if (is_punct(ts_, next_sig(ts_, j), "[")) {  // [[attribute]]
      const std::size_t c1 = match_bracket(ts_, j);
      return c1 == npos ? j : c1;
    }
    const std::size_t cap_end = match_bracket(ts_, j);
    if (cap_end == npos || cap_end > end) return j;
    std::size_t k = next_sig(ts_, cap_end);
    if (is_punct(ts_, k, "(")) {
      const std::size_t pc = match_paren(ts_, k);
      if (pc == npos) return j;
      k = next_sig(ts_, pc);
    }
    std::size_t steps = 0;
    while (k != npos && !is_punct(ts_, k, "{") && ++steps < 32) {
      if (is_punct(ts_, k, ";") || is_punct(ts_, k, ")") ||
          is_punct(ts_, k, ",")) {
        return j;  // not a lambda after all (e.g. empty subscript)
      }
      if (is_punct(ts_, k, "(")) {
        const std::size_t pc = match_paren(ts_, k);
        if (pc == npos) return j;
        k = next_sig(ts_, pc);
        continue;
      }
      k = next_sig(ts_, k);
    }
    if (!is_punct(ts_, k, "{")) return j;
    const std::size_t lend = match_brace(ts_, k);
    if (lend == npos || lend > end) return j;

    FunctionFact lam;
    lam.file = out_.file;
    lam.cls = fn.cls;
    lam.name = "<lambda:" + std::to_string(ts_[j].line) + ">";
    lam.line = ts_[j].line;
    lam.is_lambda = true;
    analyze_body(k, lend, lam);
    out_.functions.push_back(std::move(lam));
    return lend;
  }

  // Splits the top-level arguments of the call whose '(' is at `open`.
  std::vector<std::pair<std::size_t, std::size_t>> arg_ranges(
      std::size_t open, std::size_t close) {
    std::vector<std::pair<std::size_t, std::size_t>> args;
    int depth = 0;
    std::size_t start = open + 1;
    for (std::size_t a = open + 1; a <= close; ++a) {
      if (is_punct(ts_, a, "(") || is_punct(ts_, a, "{") ||
          is_punct(ts_, a, "[")) {
        ++depth;
      } else if (is_punct(ts_, a, ")") || is_punct(ts_, a, "}") ||
                 is_punct(ts_, a, "]")) {
        --depth;
      }
      if ((is_punct(ts_, a, ",") && depth == 0) || a == close) {
        if (a > start) args.emplace_back(start, a);
        start = a + 1;
      }
    }
    return args;
  }

  void handle_call(std::size_t j, std::size_t open, FunctionFact& fn,
                   std::vector<GuardScope>& guards) {
    const std::string& name = ts_[j].text;
    const std::size_t close = match_paren(ts_, open);
    if (close == npos) return;

    std::string qualifier;
    std::string receiver;
    {
      const std::size_t p = prev_sig(ts_, j);
      if (is_punct(ts_, p, "::")) {
        const std::size_t q = prev_sig(ts_, p);
        if (is_ident(ts_, q)) qualifier = ts_[q].text;
      } else if (is_punct(ts_, p, ".") || is_punct(ts_, p, "->")) {
        const std::size_t r = prev_sig(ts_, p);
        if (is_ident(ts_, r)) receiver = ts_[r].text;
      }
    }

    // guard.unlock()/.lock() toggles the RAII scope's held state.
    if (!receiver.empty() && (name == "unlock" || name == "lock")) {
      for (auto it = guards.rbegin(); it != guards.rend(); ++it) {
        if (it->var != receiver) continue;
        if (name == "unlock") {
          it->active = false;
        } else if (!it->active) {
          it->active = true;
          const std::vector<LockRef> held = [&] {
            auto h = effective_held(fn, guards);
            // the guard just re-activated: drop its own locks from "held"
            for (const LockRef& own : it->locks) {
              std::erase(h, own);
            }
            return h;
          }();
          for (const LockRef& ref : it->locks) {
            fn.acquires.push_back({ref, ts_[j].line, ts_[j].col, held});
          }
        }
        return;
      }
      // fall through: not a guard variable (e.g. raw mutex — the
      // per-file lock-discipline rule owns that diagnosis)
    }

    std::vector<LockRef> held = effective_held(fn, guards);

    if (name == "ELREC_FAULT_POINT") {
      const std::size_t lit = next_sig(ts_, open);
      if (lit != npos && ts_[lit].kind == TokenKind::kString) {
        out_.fault_points.push_back(
            {out_.file, strip_quotes(ts_[lit].text), ts_[j].line});
      }
      // A fault point under a lock is a stall honeypot: an injected
      // kDelay fault holds the critical section. Outside a lock it is
      // harmless and does not make the function "blocking".
      if (!held.empty()) {
        fn.blocking.push_back({"ELREC_FAULT_POINT (an injected kDelay fault "
                               "stalls the critical section)",
                               ts_[j].line, ts_[j].col, held});
      }
      return;
    }
    if (name == "arm" || name == "arm_from_string") {
      const std::size_t lit = next_sig(ts_, open);
      if (lit != npos && ts_[lit].kind == TokenKind::kString) {
        const std::string text = strip_quotes(ts_[lit].text);
        if (name == "arm") {
          out_.armed_sites.push_back({out_.file, text, ts_[j].line});
        } else {
          // "site:prob[:kind[:param]],site2:..." — record each site.
          std::size_t pos = 0;
          while (pos <= text.size()) {
            const std::size_t comma = text.find(',', pos);
            std::string entry = text.substr(
                pos, comma == std::string::npos ? comma : comma - pos);
            const std::size_t colon = entry.find(':');
            if (colon != std::string::npos) entry.resize(colon);
            while (!entry.empty() && entry.front() == ' ') entry.erase(0, 1);
            if (!entry.empty()) {
              out_.armed_sites.push_back({out_.file, entry, ts_[j].line});
            }
            if (comma == std::string::npos) break;
            pos = comma + 1;
          }
        }
      }
      // fall through to the generic call record
    }
    if (name == "counter" || name == "gauge" || name == "histogram") {
      const std::size_t lit = next_sig(ts_, open);
      if (lit != npos && ts_[lit].kind == TokenKind::kString) {
        out_.metrics.push_back(
            {out_.file, name, strip_quotes(ts_[lit].text), ts_[j].line});
      }
    }

    // Blocking primitives (DESIGN.md §9 lists this set verbatim).
    if (!receiver.empty() &&
        (name == "wait" || name == "wait_for" || name == "wait_until")) {
      // A condvar wait that names an open guard releases that guard for
      // the duration of the wait; only *other* held locks are a hazard.
      const auto args = arg_ranges(open, close);
      if (!args.empty()) {
        const std::size_t a0 = args[0].first;
        if (is_ident(ts_, a0) && next_sig(ts_, a0) >= args[0].second) {
          for (const GuardScope& g : guards) {
            if (!g.active || g.var != ts_[a0].text) continue;
            for (const LockRef& own : g.locks) std::erase(held, own);
            break;
          }
        }
      }
      fn.blocking.push_back({receiver + "." + name + "()", ts_[j].line,
                             ts_[j].col, held});
      return;
    }
    if (name == "sleep_for" || name == "sleep_until") {
      if (qualifier == "this_thread" || qualifier.empty()) {
        fn.blocking.push_back({"std::this_thread::" + name, ts_[j].line,
                               ts_[j].col, held});
        return;
      }
    }

    CallSite call;
    call.callee = name;
    call.qualifier = qualifier;
    call.receiver = receiver;
    call.line = ts_[j].line;
    call.col = ts_[j].col;
    call.held = std::move(held);

    if (name == "try_pop_for" || name == "try_push_for") {
      // A literal-zero timeout is a non-blocking probe by contract
      // (ShardChannel::submit, RequestScheduler::submit).
      const auto args = arg_ranges(open, close);
      if (!args.empty()) {
        const auto& [db, de] = args.back();
        for (std::size_t w = db; w < de; ++w) {
          if (ts_[w].kind == TokenKind::kNumber && ts_[w].text == "0") {
            call.zero_timeout = true;
            break;
          }
        }
      }
    }
    fn.calls.push_back(std::move(call));
  }
};

}  // namespace

FileFacts extract_facts(const SourceFile& file) {
  return Extractor(file).run();
}

void ProjectIndex::add(FileFacts facts,
                       std::shared_ptr<const SourceFile> file) {
  if (file != nullptr) sources_[facts.file] = std::move(file);
  files_.push_back(std::move(facts));
}

const SourceFile* ProjectIndex::source(const std::string& path) const {
  const auto it = sources_.find(path);
  return it == sources_.end() ? nullptr : it->second.get();
}

// --------------------------------------------------------- finalization --

struct ProjectIndex::Resolver {
  std::map<std::string, std::set<std::string>> mutex_classes;  // mu -> {cls}
  std::set<std::string> classes;
  std::map<std::string, std::set<std::string>> hints;  // var -> type idents
  std::vector<const FunctionFact*> fns;
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>>
      by_cls_name;
  std::map<std::string, std::vector<std::size_t>> free_by_name;
  std::map<std::string, std::vector<std::size_t>> any_by_name;

  std::string resolve_lock(const LockRef& ref, const std::string& ctx_cls)
      const {
    const auto it = mutex_classes.find(ref.name);
    const std::set<std::string>* owners =
        it == mutex_classes.end() ? nullptr : &it->second;
    if (ref.receiver.empty()) {
      if (owners != nullptr) {
        if (!ctx_cls.empty() && owners->count(ctx_cls)) {
          return ctx_cls + "::" + ref.name;
        }
        if (owners->size() == 1 && !owners->begin()->empty()) {
          return *owners->begin() + "::" + ref.name;
        }
      }
      return "::" + ref.name;
    }
    if (classes.count(ref.receiver)) return ref.receiver + "::" + ref.name;
    const auto h = hints.find(ref.receiver);
    if (h != hints.end() && owners != nullptr) {
      for (const std::string& ti : h->second) {
        if (owners->count(ti)) return ti + "::" + ref.name;
      }
    }
    if (owners != nullptr && owners->size() == 1 &&
        !owners->begin()->empty()) {
      return *owners->begin() + "::" + ref.name;
    }
    return "?::" + ref.name;
  }

  // Conservative call resolution: ambiguity resolves to nothing.
  std::size_t resolve_call(const CallSite& c, const FunctionFact& caller)
      const {
    if (!c.qualifier.empty()) {
      const auto it = by_cls_name.find({c.qualifier, c.callee});
      if (it != by_cls_name.end() && it->second.size() == 1) {
        return it->second[0];
      }
      return npos;
    }
    if (!c.receiver.empty()) {
      const auto h = hints.find(c.receiver);
      if (h != hints.end()) {
        std::size_t found = npos;
        for (const std::string& ti : h->second) {
          const auto it = by_cls_name.find({ti, c.callee});
          if (it == by_cls_name.end() || it->second.size() != 1) continue;
          if (found != npos && found != it->second[0]) return npos;
          found = it->second[0];
        }
        if (found != npos) return found;
      }
      // Unique method name across every indexed class: unambiguous.
      const auto any = any_by_name.find(c.callee);
      if (any != any_by_name.end() && any->second.size() == 1 &&
          !fns[any->second[0]]->cls.empty()) {
        return any->second[0];
      }
      return npos;
    }
    const auto fr = free_by_name.find(c.callee);
    if (fr != free_by_name.end() && fr->second.size() == 1) {
      return fr->second[0];
    }
    if (!caller.cls.empty()) {  // implicit this->
      const auto it = by_cls_name.find({caller.cls, c.callee});
      if (it != by_cls_name.end() && it->second.size() == 1) {
        return it->second[0];
      }
    }
    const auto any = any_by_name.find(c.callee);
    if (any != any_by_name.end() && any->second.size() == 1) {
      return any->second[0];
    }
    return npos;
  }
};

namespace {

std::string qualname(const FunctionFact& fn) {
  return fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;
}

}  // namespace

void ProjectIndex::finalize() {
  if (finalized_) return;
  finalized_ = true;

  std::sort(files_.begin(), files_.end(),
            [](const FileFacts& a, const FileFacts& b) {
              return a.file < b.file;
            });

  Resolver rv;
  std::map<std::string, std::set<std::string>> aliases;
  for (const FileFacts& ff : files_) {
    for (const std::string& c : ff.classes) rv.classes.insert(c);
    for (const MutexDecl& m : ff.mutexes) {
      if (m.is_condvar) continue;
      rv.mutex_classes[m.name].insert(m.cls);
      ++num_mutexes_;
    }
    for (const GuardedByDecl& g : ff.guarded_by) {
      rv.mutex_classes[g.mutex_name].insert(g.cls);
    }
    for (const auto& [var, idents] : ff.type_hints) {
      rv.hints[var].insert(idents.begin(), idents.end());
    }
    for (const auto& [name, rhs] : ff.aliases) {
      aliases[name].insert(rhs.begin(), rhs.end());
    }
    for (const FaultPoint& fp : ff.fault_points) fault_points_.push_back(fp);
    for (const ArmedSite& as : ff.armed_sites) armed_sites_.push_back(as);
    for (const IncludeEdge& ie : ff.includes) includes_.push_back(ie);
  }
  // Expand hints through `using` aliases (two rounds cover alias-of-alias).
  for (int round = 0; round < 2; ++round) {
    for (auto& [var, idents] : rv.hints) {
      std::set<std::string> extra;
      for (const std::string& id : idents) {
        const auto a = aliases.find(id);
        if (a != aliases.end()) extra.insert(a->second.begin(), a->second.end());
      }
      idents.insert(extra.begin(), extra.end());
    }
  }

  std::vector<FunctionFact*> fns;
  std::vector<char> fn_lib;
  for (FileFacts& ff : files_) {
    for (FunctionFact& fn : ff.functions) {
      fns.push_back(&fn);
      fn_lib.push_back(ff.library ? 1 : 0);
    }
  }
  num_functions_ = fns.size();
  for (std::size_t i = 0; i < fns.size(); ++i) {
    rv.fns.push_back(fns[i]);
    if (fns[i]->is_lambda) continue;  // never a resolution target
    rv.by_cls_name[{fns[i]->cls, fns[i]->name}].push_back(i);
    rv.any_by_name[fns[i]->name].push_back(i);
    if (fns[i]->cls.empty()) rv.free_by_name[fns[i]->name].push_back(i);
    rv.classes.insert(fns[i]->cls.empty() ? std::string() : fns[i]->cls);
  }
  rv.classes.erase("");

  // Header ELREC_REQUIRES declarations attach to the .cpp definitions.
  for (const FileFacts& ff : files_) {
    for (const RequiresDecl& rd : ff.requires_decls) {
      const auto it = rv.by_cls_name.find({rd.cls, rd.name});
      if (it == rv.by_cls_name.end()) continue;
      for (const std::size_t fi : it->second) {
        for (const std::string& l : rd.locks) {
          auto& dst = fns[fi]->requires_locks;
          if (std::find(dst.begin(), dst.end(), l) == dst.end()) {
            dst.push_back(l);
          }
        }
      }
    }
  }

  // Resolve every call site once.
  std::vector<std::vector<std::size_t>> callees(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    callees[i].resize(fns[i]->calls.size(), npos);
    for (std::size_t c = 0; c < fns[i]->calls.size(); ++c) {
      ++num_calls_;
      callees[i][c] = rv.resolve_call(fns[i]->calls[c], *fns[i]);
      if (callees[i][c] != npos) ++num_resolved_calls_;
    }
  }

  // May-block fixpoint with a witness chain per function.
  struct BlockInfo {
    std::string what;
    std::string chain;  // "" for a direct primitive
  };
  std::vector<BlockInfo> block(fns.size());
  std::vector<char> may_block(fns.size(), 0);
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (!fns[i]->blocking.empty()) {
      may_block[i] = 1;
      block[i] = {fns[i]->blocking.front().what, ""};
    }
  }
  // Transitive lock acquisition with a witness chain per (function, node).
  struct AcqInfo {
    std::string file;
    std::size_t line = 0;
    std::string chain;
  };
  std::vector<std::map<std::string, AcqInfo>> acq(fns.size());
  for (std::size_t i = 0; i < fns.size(); ++i) {
    for (const Acquire& a : fns[i]->acquires) {
      const std::string node = rv.resolve_lock(a.lock, fns[i]->cls);
      acq[i].emplace(node, AcqInfo{fns[i]->file, a.line, ""});
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t i = 0; i < fns.size(); ++i) {
      for (std::size_t c = 0; c < fns[i]->calls.size(); ++c) {
        const std::size_t k = callees[i][c];
        if (k == npos) continue;
        const CallSite& cs = fns[i]->calls[c];
        if (!cs.zero_timeout && may_block[k] && !may_block[i]) {
          may_block[i] = 1;
          block[i] = {block[k].what,
                      qualname(*fns[k]) +
                          (block[k].chain.empty() ? "" : " -> " +
                                                            block[k].chain)};
          changed = true;
        }
        for (const auto& [node, info] : acq[k]) {
          if (acq[i].count(node)) continue;
          acq[i][node] = {fns[i]->file, cs.line,
                          qualname(*fns[k]) +
                              (info.chain.empty() ? "" : " -> " + info.chain)};
          changed = true;
        }
      }
    }
  }

  // Lock-order edges: direct acquisitions under held locks, plus calls
  // under held locks into functions that (transitively) acquire.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  auto add_edge = [&edges](std::string from, std::string to, LockEdge e) {
    const auto key = std::make_pair(from, to);
    e.from = std::move(from);
    e.to = std::move(to);
    const auto it = edges.find(key);
    if (it == edges.end() || e.witness < it->second.witness) {
      edges[key] = std::move(e);
    }
  };
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (!fn_lib[i]) continue;
    const FunctionFact& fn = *fns[i];
    for (const Acquire& a : fn.acquires) {
      const std::string to = rv.resolve_lock(a.lock, fn.cls);
      for (const LockRef& h : a.held) {
        const std::string from = rv.resolve_lock(h, fn.cls);
        LockEdge e;
        e.witness_file = fn.file;
        e.witness_line = a.line;
        e.witness = from + " -> " + to + " at " + fn.file + ":" +
                    std::to_string(a.line) + " (in " + qualname(fn) + ")";
        add_edge(from, to, std::move(e));
      }
    }
    for (std::size_t c = 0; c < fn.calls.size(); ++c) {
      const std::size_t k = callees[i][c];
      if (k == npos) continue;
      const CallSite& cs = fn.calls[c];
      if (cs.held.empty()) continue;
      for (const auto& [node, info] : acq[k]) {
        for (const LockRef& h : cs.held) {
          const std::string from = rv.resolve_lock(h, fn.cls);
          LockEdge e;
          e.witness_file = fn.file;
          e.witness_line = cs.line;
          e.witness = from + " -> " + node + " at " + fn.file + ":" +
                      std::to_string(cs.line) + " (in " + qualname(fn) +
                      ", via " + qualname(*fns[k]) +
                      (info.chain.empty() ? "" : " -> " + info.chain) + ")";
          add_edge(from, node, std::move(e));
        }
      }
    }
  }
  for (auto& [key, e] : edges) lock_edges_.push_back(std::move(e));

  // Cycle detection over the deduped edge set. Each elementary cycle is
  // reported once, rooted at its lexicographically smallest node: DFS
  // from every node in sorted order, restricted to nodes >= the root, and
  // every edge returning to the root closes one cycle (a self-edge —
  // re-acquiring a non-recursive mutex — is a length-1 cycle). The edge
  // set is tiny (one node per distinct mutex), so the search is cheap;
  // a step cap guards against pathological synthetic graphs.
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : lock_edges_) adj[e.from].push_back(&e);
  for (const auto& [start, start_edges] : adj) {
    (void)start_edges;
    std::vector<const LockEdge*> path;
    std::set<std::string> on_path;
    std::size_t steps = 0;
    std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          if (++steps > 100000) return;
          const auto it = adj.find(node);
          if (it == adj.end()) return;
          for (const LockEdge* e : it->second) {
            if (e->to == start) {
              std::vector<LockEdge> cycle;
              for (const LockEdge* pe : path) cycle.push_back(*pe);
              cycle.push_back(*e);
              cycles_.push_back(std::move(cycle));
              continue;
            }
            if (e->to < start || on_path.count(e->to)) continue;
            on_path.insert(e->to);
            path.push_back(e);
            dfs(e->to);
            path.pop_back();
            on_path.erase(e->to);
          }
        };
    dfs(start);
  }

  // Blocking-under-lock payloads (library code only).
  for (std::size_t i = 0; i < fns.size(); ++i) {
    if (!fn_lib[i]) continue;
    const FunctionFact& fn = *fns[i];
    for (const BlockingSite& bs : fn.blocking) {
      if (bs.held.empty()) continue;
      BlockingUnderLock b;
      b.file = fn.file;
      b.line = bs.line;
      b.col = bs.col;
      b.function = qualname(fn);
      b.what = bs.what;
      for (const LockRef& h : bs.held) {
        b.held.push_back(rv.resolve_lock(h, fn.cls));
      }
      std::sort(b.held.begin(), b.held.end());
      b.held.erase(std::unique(b.held.begin(), b.held.end()), b.held.end());
      blocking_.push_back(std::move(b));
    }
    for (std::size_t c = 0; c < fn.calls.size(); ++c) {
      const std::size_t k = callees[i][c];
      const CallSite& cs = fn.calls[c];
      if (k == npos || cs.held.empty() || cs.zero_timeout) continue;
      if (!may_block[k]) continue;
      BlockingUnderLock b;
      b.file = fn.file;
      b.line = cs.line;
      b.col = cs.col;
      b.function = qualname(fn);
      b.what = block[k].what;
      b.chain = qualname(*fns[k]) +
                (block[k].chain.empty() ? "" : " -> " + block[k].chain);
      for (const LockRef& h : cs.held) {
        b.held.push_back(rv.resolve_lock(h, fn.cls));
      }
      std::sort(b.held.begin(), b.held.end());
      b.held.erase(std::unique(b.held.begin(), b.held.end()), b.held.end());
      blocking_.push_back(std::move(b));
    }
  }
  std::sort(blocking_.begin(), blocking_.end(),
            [](const BlockingUnderLock& a, const BlockingUnderLock& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.col < b.col;
            });

  std::sort(fault_points_.begin(), fault_points_.end(),
            [](const FaultPoint& a, const FaultPoint& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  std::sort(armed_sites_.begin(), armed_sites_.end(),
            [](const ArmedSite& a, const ArmedSite& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  std::sort(includes_.begin(), includes_.end(),
            [](const IncludeEdge& a, const IncludeEdge& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
}

std::string ProjectIndex::lock_graph_dot() const {
  std::ostringstream out;
  out << "digraph lock_order {\n";
  std::set<std::string> nodes;
  for (const LockEdge& e : lock_edges_) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  for (const std::string& n : nodes) out << "  \"" << n << "\";\n";
  for (const LockEdge& e : lock_edges_) {
    out << "  \"" << e.from << "\" -> \"" << e.to << "\" [label=\""
        << e.witness_file << ":" << e.witness_line << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string ProjectIndex::stats() const {
  std::size_t lambdas = 0;
  std::size_t fault_pts = fault_points_.size();
  std::size_t classes = 0;
  std::set<std::string> class_names;
  std::set<std::string> metric_names;
  for (const FileFacts& ff : files_) {
    for (const FunctionFact& fn : ff.functions) lambdas += fn.is_lambda;
    for (const std::string& c : ff.classes) class_names.insert(c);
    for (const MetricUse& m : ff.metrics) metric_names.insert(m.name);
  }
  classes = class_names.size();
  std::set<std::string> nodes;
  for (const LockEdge& e : lock_edges_) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  std::ostringstream out;
  out << "index: " << files_.size() << " files, " << num_functions_
      << " functions (" << lambdas << " lambdas), " << classes
      << " classes, " << num_mutexes_ << " mutex decls\n"
      << "calls: " << num_calls_ << " sites, " << num_resolved_calls_
      << " resolved cross-TU\n"
      << "locks: " << nodes.size() << " nodes, " << lock_edges_.size()
      << " order edges, " << cycles_.size() << " cycles\n"
      << "blocking-under-lock sites: " << blocking_.size() << "\n"
      << "fault points: " << fault_pts << ", armed sites: "
      << armed_sites_.size() << ", metric names: " << metric_names.size()
      << "\n"
      << "include edges: " << includes_.size() << "\n";
  return out.str();
}

}  // namespace elrec::analyze
