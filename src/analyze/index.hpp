// Cross-translation-unit symbol index for elrec-lint.
//
// Per-file fact extraction (`extract_facts`) runs on the existing lexer and
// is a pure function of one SourceFile, so the driver can run it from the
// same thread pool as the per-file rules. The facts are then merged into a
// ProjectIndex whose `finalize()` resolves names across TUs: mutex
// spellings become canonical lock nodes ("Class::mu_", "::global_mu"),
// call sites bind to indexed function definitions, and two fixpoints are
// computed over the call graph — which functions may block, and which lock
// nodes a call can transitively acquire. ProjectRules (project_rules.cpp)
// read only the finalized index.
//
// This is a lexical index, not a compiler front end. The resolution
// policy is deliberately conservative (DESIGN.md §9): an ambiguous member
// call resolves to nothing rather than to "some class with that method
// name", so cross-TU findings trade recall for near-zero false positives.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/source_file.hpp"

namespace elrec::analyze {

/// A mutex (or condition variable) declaration. `cls` is "" for
/// namespace-scope declarations.
struct MutexDecl {
  std::string file;
  std::string cls;
  std::string name;
  std::size_t line = 0;
  bool is_condvar = false;
};

/// ELREC_GUARDED_BY(mu) on a member: documents that `member` of `cls` is
/// protected by `mutex_name`.
struct GuardedByDecl {
  std::string file;
  std::string cls;
  std::string member;
  std::string mutex_name;
  std::size_t line = 0;
};

/// An unresolved lock spelling at an acquisition or call site:
/// `receiver.name`, `Receiver::name`, or a bare `name`.
struct LockRef {
  std::string receiver;  // "" when unqualified
  std::string name;

  bool operator==(const LockRef& o) const {
    return receiver == o.receiver && name == o.name;
  }
};

/// One guard-scope acquisition (`std::lock_guard/unique_lock/shared_lock/
/// scoped_lock`) inside a function body.
struct Acquire {
  LockRef lock;
  std::size_t line = 0;
  std::size_t col = 0;
  std::vector<LockRef> held;  // locks already held at this point
};

/// A direct use of a blocking primitive inside a function body, with the
/// guard context that was open around it. Condvar waits that name an open
/// guard as their first argument have that guard's locks already removed
/// from `held` (the wait releases them); zero-timeout try_push_for /
/// try_pop_for probes are not recorded at all.
struct BlockingSite {
  std::string what;  // e.g. "std::this_thread::sleep_for"
  std::size_t line = 0;
  std::size_t col = 0;
  std::vector<LockRef> held;
};

/// A call site `callee(...)` / `recv.callee(...)` / `Qual::callee(...)`.
struct CallSite {
  std::string callee;
  std::string qualifier;  // "X" for X::callee, else ""
  std::string receiver;   // "obj" for obj.callee / obj->callee, else ""
  std::size_t line = 0;
  std::size_t col = 0;
  std::vector<LockRef> held;
  // try_push_for/try_pop_for with a literal-zero duration: a non-blocking
  // probe by contract; excluded from may-block propagation.
  bool zero_timeout = false;
};

/// One function (or lambda) body. Lambdas index as separate anonymous
/// functions named "<lambda:LINE>" — their bodies run on an unknown thread
/// at an unknown time, so they contribute their own guard-scope facts but
/// are never a resolution target (DESIGN.md §9, false-positive policy).
struct FunctionFact {
  std::string file;
  std::string cls;   // enclosing class or "X" from X::name; "" for free
  std::string name;
  std::size_t line = 0;
  std::vector<std::string> requires_locks;  // ELREC_REQUIRES(...) names
  std::vector<Acquire> acquires;
  std::vector<BlockingSite> blocking;
  std::vector<CallSite> calls;
  bool is_lambda = false;
};

/// ELREC_REQUIRES on a declaration (headers annotate the decl, the .cpp
/// holds the unannotated definition); attached to the matching
/// FunctionFact during finalize().
struct RequiresDecl {
  std::string cls;
  std::string name;
  std::vector<std::string> locks;
};

/// `ELREC_FAULT_POINT("site")` occurrence.
struct FaultPoint {
  std::string file;
  std::string site;
  std::size_t line = 0;
};

/// A fault site armed from a test or driver: `arm("site", ...)` or a site
/// segment of `arm_from_string("site:prob[:kind[:param]]")`.
struct ArmedSite {
  std::string file;
  std::string site;
  std::size_t line = 0;
};

/// `counter("name")` / `gauge("name")` / `histogram("name")` literal.
struct MetricUse {
  std::string file;
  std::string kind;
  std::string name;
  std::size_t line = 0;
};

/// `#include "header"` edge (quoted includes only — project headers).
struct IncludeEdge {
  std::string file;
  std::string header;
  std::size_t line = 0;
};

/// Everything extract_facts() learns from one file.
struct FileFacts {
  std::string file;
  // SourceFile::in_library() of the origin. Non-library files (tests,
  // tools, bench, examples) contribute definitions for call resolution
  // and fault/arm/include facts, but never lock-graph edges or
  // blocking-under-lock sites — tests hold locks under contention on
  // purpose.
  bool library = false;
  std::vector<MutexDecl> mutexes;
  std::vector<GuardedByDecl> guarded_by;
  std::vector<RequiresDecl> requires_decls;
  std::vector<FunctionFact> functions;
  std::vector<FaultPoint> fault_points;
  std::vector<ArmedSite> armed_sites;
  std::vector<MetricUse> metrics;
  std::vector<IncludeEdge> includes;
  std::vector<std::string> classes;  // class/struct definitions seen
  // var name -> type-ish identifiers from its declaration statement
  // (template args included), used to type member-call receivers.
  std::map<std::string, std::set<std::string>> type_hints;
  // `using X = ...;` — X -> identifiers on the right-hand side.
  std::map<std::string, std::set<std::string>> aliases;
};

/// Pure per-file extraction; safe to call concurrently on distinct files.
FileFacts extract_facts(const SourceFile& file);

/// One edge of the static lock-order graph: `from` was held when `to` was
/// acquired. `witness` renders the acquisition site and, for transitive
/// edges, the call chain that reaches it.
struct LockEdge {
  std::string from;
  std::string to;
  std::string witness_file;
  std::size_t witness_line = 0;
  std::string witness;  // human-readable, e.g. "A::mu -> B::mu at f.cpp:3 (via x -> y)"
};

/// A blocking site (direct or reached through calls) under at least one
/// held lock — the payload for the blocking-under-lock rule.
struct BlockingUnderLock {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string function;      // "Cls::name" or "name"
  std::string what;          // the blocking primitive
  std::string chain;         // "" for direct, "f -> g" for transitive
  std::vector<std::string> held;  // canonical lock nodes
};

class ProjectIndex {
 public:
  /// Merges per-file facts; call once per file, any order (finalize sorts).
  void add(FileFacts facts, std::shared_ptr<const SourceFile> file);

  /// Resolves names across TUs and computes the lock graph + blocking
  /// reachability. Must be called exactly once, after every add().
  void finalize();

  // -- finalized views ----------------------------------------------------
  const std::vector<FileFacts>& files() const { return files_; }
  const std::vector<LockEdge>& lock_edges() const { return lock_edges_; }
  const std::vector<BlockingUnderLock>& blocking_under_lock() const {
    return blocking_; }
  const std::vector<FaultPoint>& fault_points() const { return fault_points_; }
  const std::vector<ArmedSite>& armed_sites() const { return armed_sites_; }
  const std::vector<IncludeEdge>& include_edges() const { return includes_; }

  /// The SourceFile a project finding lands in, for NOLINT suppression;
  /// nullptr when the path was never scanned (e.g. the manifest itself).
  const SourceFile* source(const std::string& path) const;

  /// Graphviz dump of the lock-order graph (stable node/edge order).
  std::string lock_graph_dot() const;

  /// Human-readable index summary for --index-stats.
  std::string stats() const;

  /// Lock-order cycles: each is the list of edges forming one cycle,
  /// deterministically ordered (smallest node first).
  const std::vector<std::vector<LockEdge>>& cycles() const { return cycles_; }

 private:
  struct Resolver;
  std::vector<FileFacts> files_;
  std::map<std::string, std::shared_ptr<const SourceFile>> sources_;
  std::vector<LockEdge> lock_edges_;
  std::vector<std::vector<LockEdge>> cycles_;
  std::vector<BlockingUnderLock> blocking_;
  std::vector<FaultPoint> fault_points_;
  std::vector<ArmedSite> armed_sites_;
  std::vector<IncludeEdge> includes_;
  std::size_t num_functions_ = 0;
  std::size_t num_mutexes_ = 0;
  std::size_t num_calls_ = 0;
  std::size_t num_resolved_calls_ = 0;
  bool finalized_ = false;
};

}  // namespace elrec::analyze
