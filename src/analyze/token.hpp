// Token model for the elrec-lint scanner.
//
// The lexer (lexer.hpp) reduces a C++ translation unit to a flat token
// stream that is just structured enough for project-invariant rules:
// comments and string/char literals are opaque single tokens (so a
// `rand()` inside a string can never trip the determinism rule), and a
// preprocessor directive — including its backslash continuations — is one
// token carrying the whole logical line (so `#pragma omp ...` clauses can
// be inspected as text).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace elrec::analyze {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (rules match on text)
  kNumber,      // numeric literal, incl. hex/bin/digit separators
  kString,      // "..." or R"delim(...)delim", text includes quotes
  kCharLit,     // '...'
  kPunct,       // one operator/punctuator character sequence
  kComment,     // // or /* */, text includes the comment markers
  kPpDirective, // full preprocessor logical line, continuations joined
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::size_t line = 0;  // 1-based line of the token's first character
  std::size_t col = 0;   // 1-based column of the token's first character
};

using TokenStream = std::vector<Token>;

}  // namespace elrec::analyze
