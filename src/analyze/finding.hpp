// A single lint diagnostic plus its identity for baseline matching.
#pragma once

#include <cstddef>
#include <string>

namespace elrec::analyze {

struct Finding {
  std::string rule;     // rule name, e.g. "determinism-rand"
  std::string path;     // file path as given to the driver
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;
  // Trimmed text of the offending source line. Baseline entries match on
  // (rule, path, snippet) — not the line number — so unrelated edits that
  // shift a legacy finding up or down do not churn the baseline.
  std::string snippet;
};

}  // namespace elrec::analyze
