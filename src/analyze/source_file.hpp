// One analyzed file: its token stream, raw lines, path classification, and
// the `NOLINT` suppressions parsed out of its comments.
//
// Suppression grammar (the tag must lead the comment text):
//   NOLINT: why                        — all rules, this line
//   NOLINT(elrec-rule-a): why          — listed rules, this line
//   NOLINTNEXTLINE(elrec-rule-a): why  — same, following line
// The `: why` tail is what the nolint-rationale rule audits: a marker
// without one is itself a finding. A marker is recognized only when the
// tag starts the comment (after `//`, `/*`, `///<` and whitespace) and
// is immediately followed by `(`, `:`, or the end of the comment, so
// documentation that merely mentions NOLINT in prose neither suppresses
// nor trips the rationale rule. Rule lists accept only elrec- names;
// NOLINT(bugprone-...) belongs to other tools and is ignored entirely.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze/token.hpp"

namespace elrec::analyze {

/// One parsed NOLINT/NOLINTNEXTLINE marker (for the nolint-rationale
/// rule). `line` is the comment's own line, not the suppressed line.
struct NolintMarker {
  std::size_t line = 0;
  bool next_line = false;
  bool has_reason = false;
};

class SourceFile {
 public:
  /// Lexes `source` as the contents of `path` (no filesystem access).
  static SourceFile from_source(std::string path, std::string source);

  /// Reads and lexes a file on disk. Throws std::runtime_error if
  /// unreadable.
  static SourceFile from_disk(const std::string& path);

  const std::string& path() const { return path_; }
  const TokenStream& tokens() const { return tokens_; }

  /// 0-based access to the raw line; returns "" out of range.
  std::string_view line_text(std::size_t line_1based) const;
  std::size_t line_count() const { return lines_.size(); }

  bool is_header() const;

  /// True for library code: under a `src/` path component. tools/, bench/,
  /// examples/ and tests/ are CLI/driver surface and exempt from
  /// library-only rules like iostream-in-lib.
  bool in_library() const;

  /// True if a finding for `rule` on `line` is suppressed by a NOLINT
  /// marker (bare NOLINT or one naming `elrec-<rule>`).
  bool suppressed(std::string_view rule, std::size_t line) const;

  /// Every NOLINT marker in the file, in source order.
  const std::vector<NolintMarker>& nolint_markers() const { return markers_; }

 private:
  void index_suppressions();

  std::string path_;
  std::string source_;
  std::vector<std::string_view> lines_;  // views into source_
  TokenStream tokens_;
  // line -> rule names suppressed there; "" means every rule.
  std::unordered_map<std::size_t, std::unordered_set<std::string>> nolint_;
  std::vector<NolintMarker> markers_;
};

}  // namespace elrec::analyze
