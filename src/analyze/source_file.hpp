// One analyzed file: its token stream, raw lines, path classification, and
// the `NOLINT` suppressions parsed out of its comments.
//
// Suppression grammar (comment text, anywhere in the comment):
//   NOLINT                          — all rules, this line
//   NOLINT(elrec-rule-a, elrec-b)   — listed rules, this line
//   NOLINTNEXTLINE / NOLINTNEXTLINE(elrec-rule) — same, following line
// A `: reason` tail after the closing parenthesis is encouraged (the
// satellite suppressions in this repo all carry one) and ignored by the
// parser.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analyze/token.hpp"

namespace elrec::analyze {

class SourceFile {
 public:
  /// Lexes `source` as the contents of `path` (no filesystem access).
  static SourceFile from_source(std::string path, std::string source);

  /// Reads and lexes a file on disk. Throws std::runtime_error if
  /// unreadable.
  static SourceFile from_disk(const std::string& path);

  const std::string& path() const { return path_; }
  const TokenStream& tokens() const { return tokens_; }

  /// 0-based access to the raw line; returns "" out of range.
  std::string_view line_text(std::size_t line_1based) const;
  std::size_t line_count() const { return lines_.size(); }

  bool is_header() const;

  /// True for library code: under a `src/` path component. tools/, bench/,
  /// examples/ and tests/ are CLI/driver surface and exempt from
  /// library-only rules like iostream-in-lib.
  bool in_library() const;

  /// True if a finding for `rule` on `line` is suppressed by a NOLINT
  /// marker (bare NOLINT or one naming `elrec-<rule>`).
  bool suppressed(std::string_view rule, std::size_t line) const;

 private:
  void index_suppressions();

  std::string path_;
  std::string source_;
  std::vector<std::string_view> lines_;  // views into source_
  TokenStream tokens_;
  // line -> rule names suppressed there; "" means every rule.
  std::unordered_map<std::size_t, std::unordered_set<std::string>> nolint_;
};

}  // namespace elrec::analyze
