// Single-pass C++ scanner for elrec-lint.
//
// Not a compiler front end: it tokenizes well-formed C++ faithfully enough
// for lexical invariant rules and degrades gracefully (never throws, never
// loses position) on anything odd. Handles line/block comments, string and
// character literals with escapes, raw strings R"delim(...)delim", numbers
// with separators, multi-character punctuators it cares about (`::`, `->`),
// and preprocessor logical lines with backslash continuations.
#pragma once

#include <string_view>

#include "analyze/token.hpp"

namespace elrec::analyze {

/// Tokenizes `source`. The returned stream preserves source order; every
/// token carries its 1-based line/column.
TokenStream lex(std::string_view source);

}  // namespace elrec::analyze
