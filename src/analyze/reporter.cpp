#include "analyze/reporter.hpp"

#include <cstdio>
#include <sstream>

namespace elrec::analyze {

namespace {

void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void append_summary(std::ostringstream& out, const LintSummary& s) {
  out << "{\"files_scanned\": " << s.files_scanned
      << ", \"findings\": " << s.findings
      << ", \"suppressed\": " << s.suppressed
      << ", \"baselined\": " << s.baselined << "}";
}

}  // namespace

std::string report_text(const std::vector<Finding>& findings,
                        const LintSummary& summary) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.path << ":" << f.line << ":" << f.col << ": [elrec-" << f.rule
        << "] " << f.message << "\n";
    if (!f.snippet.empty()) out << "    " << f.snippet << "\n";
  }
  out << summary.findings << " finding(s) across " << summary.files_scanned
      << " file(s) (" << summary.suppressed << " NOLINT-suppressed, "
      << summary.baselined << " baselined)\n";
  return out.str();
}

std::string report_json(const std::vector<Finding>& findings,
                        const LintSummary& summary) {
  std::ostringstream out;
  out << "{\"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out << ", ";
    first = false;
    out << "{\"rule\": ";
    append_json_string(out, "elrec-" + f.rule);
    out << ", \"path\": ";
    append_json_string(out, f.path);
    out << ", \"line\": " << f.line << ", \"col\": " << f.col
        << ", \"message\": ";
    append_json_string(out, f.message);
    out << ", \"snippet\": ";
    append_json_string(out, f.snippet);
    out << "}";
  }
  out << "], \"summary\": ";
  append_summary(out, summary);
  out << "}\n";
  return out.str();
}

}  // namespace elrec::analyze
