// Rule interface and registry for elrec-lint.
//
// A rule inspects one SourceFile's token stream and reports Findings. The
// registry owns the rule set; `RuleRegistry::with_builtin_rules()` loads
// every shipped project-invariant rule (rules.cpp). Suppression and
// baseline filtering happen in the driver, not in rules — a rule always
// reports everything it sees.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/finding.hpp"
#include "analyze/source_file.hpp"

namespace elrec::analyze {

/// One required TRACE_SPAN site: the function `function` defined in a file
/// whose path ends with `file_suffix` must contain a TRACE_SPAN token.
struct TraceSpanRequirement {
  std::string file_suffix;
  std::string function;
};

/// Cross-file configuration handed to every rule.
struct LintContext {
  std::vector<TraceSpanRequirement> trace_manifest;
};

class Rule {
 public:
  virtual ~Rule() = default;
  /// Short kebab-case name; the NOLINT tag is "elrec-" + name().
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void check(const SourceFile& file, const LintContext& ctx,
                     std::vector<Finding>& out) const = 0;
};

class RuleRegistry {
 public:
  /// Registry preloaded with every shipped rule.
  static RuleRegistry with_builtin_rules();

  void add(std::unique_ptr<Rule> rule);
  const Rule* find(std::string_view name) const;
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }

  /// Runs every rule (or only `only`, when non-empty) over `file`.
  /// Returned findings are ordered by (line, col, rule).
  std::vector<Finding> run(const SourceFile& file, const LintContext& ctx,
                           const std::vector<std::string>& only = {}) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// Helper for rules: builds a Finding with the snippet filled from `file`.
Finding make_finding(const SourceFile& file, std::string_view rule,
                     std::size_t line, std::size_t col, std::string message);

}  // namespace elrec::analyze
