// Rule interface and registry for elrec-lint.
//
// A rule inspects one SourceFile's token stream and reports Findings. The
// registry owns the rule set; `RuleRegistry::with_builtin_rules()` loads
// every shipped project-invariant rule (rules.cpp). Suppression and
// baseline filtering happen in the driver, not in rules — a rule always
// reports everything it sees.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/finding.hpp"
#include "analyze/source_file.hpp"

namespace elrec::analyze {

/// One required TRACE_SPAN site: the function `function` defined in a file
/// whose path ends with `file_suffix` must contain a TRACE_SPAN token.
struct TraceSpanRequirement {
  std::string file_suffix;
  std::string function;
};

/// One fault-site manifest entry: the site string `site` is planted (or
/// armed) in a file whose path ends with `file_suffix`.
struct FaultSiteRequirement {
  std::string file_suffix;
  std::string site;
  std::size_t line = 0;  // manifest line, for drift diagnostics
};

/// Cross-file configuration handed to every rule.
struct LintContext {
  std::vector<TraceSpanRequirement> trace_manifest;
  std::vector<FaultSiteRequirement> fault_manifest;
  std::string fault_manifest_path;  // "" = fault-site-coverage idles
};

class Rule {
 public:
  virtual ~Rule() = default;
  /// Short kebab-case name; the NOLINT tag is "elrec-" + name().
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void check(const SourceFile& file, const LintContext& ctx,
                     std::vector<Finding>& out) const = 0;
};

class ProjectIndex;  // index.hpp

/// A rule that sees the whole tree at once through the finalized
/// ProjectIndex (lock-order-graph, blocking-under-lock, layering-dag,
/// fault-site-coverage). Same naming/NOLINT contract as Rule.
class ProjectRule {
 public:
  virtual ~ProjectRule() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void check(const ProjectIndex& index, const LintContext& ctx,
                     std::vector<Finding>& out) const = 0;
};

class RuleRegistry {
 public:
  /// Registry preloaded with every shipped rule (per-file and project).
  static RuleRegistry with_builtin_rules();

  void add(std::unique_ptr<Rule> rule);
  void add(std::unique_ptr<ProjectRule> rule);
  const Rule* find(std::string_view name) const;
  const ProjectRule* find_project(std::string_view name) const;
  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  const std::vector<std::unique_ptr<ProjectRule>>& project_rules() const {
    return project_rules_;
  }

  /// Runs every rule (or only `only`, when non-empty) over `file`.
  /// Returned findings are ordered by (line, col, rule).
  std::vector<Finding> run(const SourceFile& file, const LintContext& ctx,
                           const std::vector<std::string>& only = {}) const;

  /// Runs every project rule over the finalized index. Findings are
  /// ordered by (path, line, col, rule).
  std::vector<Finding> run_project(
      const ProjectIndex& index, const LintContext& ctx,
      const std::vector<std::string>& only = {}) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::unique_ptr<ProjectRule>> project_rules_;
};

/// Registers the shipped ProjectRules (project_rules.cpp); called by
/// RuleRegistry::with_builtin_rules().
void register_builtin_project_rules(RuleRegistry& registry);

/// Helper for rules: builds a Finding with the snippet filled from `file`.
Finding make_finding(const SourceFile& file, std::string_view rule,
                     std::size_t line, std::size_t col, std::string message);

/// Project-rule variant: fills the snippet from the scanned SourceFile
/// when the index has one for `path`, else leaves it empty (e.g. findings
/// anchored in a manifest file).
Finding make_project_finding(const ProjectIndex& index, std::string_view rule,
                             const std::string& path, std::size_t line,
                             std::size_t col, std::string message);

}  // namespace elrec::analyze
