#include "analyze/lexer.hpp"

#include <cctype>

namespace elrec::analyze {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Cursor over the source with line/column bookkeeping.
class Scanner {
 public:
  explicit Scanner(std::string_view src) : src_(src) {}

  bool eof() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  std::size_t pos() const { return pos_; }
  std::size_t line() const { return line_; }
  std::size_t col() const { return col_; }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

// Two- and three-character punctuators worth keeping intact; rules only
// look at a few (`::`, `->`), but splitting e.g. `<<` into `<` `<` would
// make positions confusing in reports.
bool match_multichar_punct(const Scanner& s, std::size_t* len) {
  static constexpr const char* kThree[] = {"->*", "<<=", ">>=", "<=>", "..."};
  static constexpr const char* kTwo[] = {"::", "->", "<<", ">>", "<=", ">=",
                                         "==", "!=", "&&", "||", "+=", "-=",
                                         "*=", "/=", "%=", "&=", "|=", "^=",
                                         "++", "--"};
  for (const char* p : kThree) {
    if (s.peek() == p[0] && s.peek(1) == p[1] && s.peek(2) == p[2]) {
      *len = 3;
      return true;
    }
  }
  for (const char* p : kTwo) {
    if (s.peek() == p[0] && s.peek(1) == p[1]) {
      *len = 2;
      return true;
    }
  }
  return false;
}

void lex_quoted(Scanner& s, char quote) {
  s.advance();  // opening quote
  while (!s.eof()) {
    const char c = s.peek();
    if (c == '\\' && s.peek(1) != '\0') {
      s.advance();
      s.advance();
      continue;
    }
    if (c == quote || c == '\n') {  // newline: malformed literal, recover
      if (c == quote) s.advance();
      return;
    }
    s.advance();
  }
}

// `R"delim(` already identified; consumes through `)delim"`.
void lex_raw_string(Scanner& s) {
  s.advance();  // the `"`
  std::string delim;
  while (!s.eof() && s.peek() != '(' && s.peek() != '\n') {
    delim.push_back(s.advance());
  }
  if (s.eof() || s.peek() == '\n') return;  // malformed, recover at newline
  s.advance();                              // `(`
  const std::string close = ")" + delim + "\"";
  std::size_t matched = 0;
  while (!s.eof()) {
    if (s.peek() == close[matched]) {
      ++matched;
      s.advance();
      if (matched == close.size()) return;
    } else {
      // restart the match; the mismatched char may itself begin `)`
      matched = s.peek() == close[0] ? 1 : 0;
      s.advance();
    }
  }
}

bool is_raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

// Consumes a preprocessor logical line starting at `#`. Stops before a
// trailing `//` comment (so NOLINT markers on pragma lines stay separate
// comment tokens); joins backslash continuations; skips block comments.
void lex_pp_directive(Scanner& s, std::string* text) {
  while (!s.eof()) {
    const char c = s.peek();
    if (c == '\n') return;
    if (c == '\\' && s.peek(1) == '\n') {
      s.advance();
      s.advance();
      text->push_back(' ');
      continue;
    }
    if (c == '/' && s.peek(1) == '/') return;
    if (c == '/' && s.peek(1) == '*') {
      s.advance();
      s.advance();
      while (!s.eof() && !(s.peek() == '*' && s.peek(1) == '/')) s.advance();
      if (!s.eof()) {
        s.advance();
        s.advance();
      }
      text->push_back(' ');
      continue;
    }
    text->push_back(s.advance());
  }
}

}  // namespace

TokenStream lex(std::string_view source) {
  TokenStream tokens;
  Scanner s(source);
  bool at_line_start = true;  // only whitespace seen since the last newline

  while (!s.eof()) {
    const char c = s.peek();

    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      if (c == '\n') at_line_start = true;
      s.advance();
      continue;
    }

    const std::size_t start = s.pos();
    const std::size_t line = s.line();
    const std::size_t col = s.col();

    if (c == '/' && s.peek(1) == '/') {
      while (!s.eof() && s.peek() != '\n') s.advance();
      tokens.push_back({TokenKind::kComment, std::string(s.slice(start)), line, col});
      continue;
    }
    if (c == '/' && s.peek(1) == '*') {
      s.advance();
      s.advance();
      while (!s.eof() && !(s.peek() == '*' && s.peek(1) == '/')) s.advance();
      if (!s.eof()) {
        s.advance();
        s.advance();
      }
      tokens.push_back({TokenKind::kComment, std::string(s.slice(start)), line, col});
      continue;
    }

    if (c == '#' && at_line_start) {
      std::string text;
      lex_pp_directive(s, &text);
      tokens.push_back({TokenKind::kPpDirective, std::move(text), line, col});
      continue;
    }
    at_line_start = false;

    if (c == '"') {
      lex_quoted(s, '"');
      tokens.push_back({TokenKind::kString, std::string(s.slice(start)), line, col});
      continue;
    }
    if (c == '\'') {
      lex_quoted(s, '\'');
      tokens.push_back({TokenKind::kCharLit, std::string(s.slice(start)), line, col});
      continue;
    }

    if (is_ident_start(c)) {
      while (!s.eof() && is_ident_char(s.peek())) s.advance();
      std::string text(s.slice(start));
      if (is_raw_string_prefix(text) && s.peek() == '"') {
        lex_raw_string(s);
        tokens.push_back({TokenKind::kString, std::string(s.slice(start)), line, col});
      } else {
        tokens.push_back({TokenKind::kIdentifier, std::move(text), line, col});
      }
      continue;
    }

    if (is_digit(c) || (c == '.' && is_digit(s.peek(1)))) {
      while (!s.eof()) {
        const char d = s.peek();
        if (is_ident_char(d) || d == '.') {
          const char prev = s.advance();
          // exponent sign: 1e+5, 0x1p-3
          if ((prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') &&
              (s.peek() == '+' || s.peek() == '-')) {
            s.advance();
          }
        } else if (d == '\'' && is_ident_char(s.peek(1))) {
          s.advance();  // digit separator
        } else {
          break;
        }
      }
      tokens.push_back({TokenKind::kNumber, std::string(s.slice(start)), line, col});
      continue;
    }

    std::size_t len = 1;
    match_multichar_punct(s, &len);
    for (std::size_t i = 0; i < len; ++i) s.advance();
    tokens.push_back({TokenKind::kPunct, std::string(s.slice(start)), line, col});
  }

  return tokens;
}

}  // namespace elrec::analyze
