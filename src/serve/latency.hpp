// Per-request latency tracking for the serving engine.
//
// Each served request records its queue wait (submit → micro-batch pickup)
// and compute time (its micro-batch's forward pass) separately, so tail
// latency can be attributed to scheduling vs. model cost. Percentiles use
// the nearest-rank method over the full sample set.
#pragma once

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <vector>

namespace elrec {

struct LatencySummary {
  std::size_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

/// Thread-safe recorder; record() is called by every scheduler worker, the
/// summaries by the driver after (or during) the run.
class LatencyRecorder {
 public:
  void record(double queue_us, double compute_us) {
    std::lock_guard lock(mu_);
    queue_us_.push_back(queue_us);
    compute_us_.push_back(compute_us);
    total_us_.push_back(queue_us + compute_us);
  }

  std::size_t count() const {
    std::lock_guard lock(mu_);
    return total_us_.size();
  }

  LatencySummary queue_summary() const { return summarize(queue_us_); }
  LatencySummary compute_summary() const { return summarize(compute_us_); }
  LatencySummary total_summary() const { return summarize(total_us_); }

  /// Nearest-rank percentile of `q` in [0, 1]; sorts a copy.
  static double percentile(std::vector<double> samples, double q) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto n = samples.size();
    auto rank = static_cast<std::size_t>(q * static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    return samples[rank];
  }

 private:
  LatencySummary summarize(const std::vector<double>& src) const {
    std::vector<double> samples;
    {
      std::lock_guard lock(mu_);
      samples = src;
    }
    LatencySummary s;
    s.count = samples.size();
    if (samples.empty()) return s;
    double sum = 0.0;
    for (double v : samples) {
      sum += v;
      s.max_us = std::max(s.max_us, v);
    }
    s.mean_us = sum / static_cast<double>(samples.size());
    s.p50_us = percentile(samples, 0.50);
    s.p95_us = percentile(samples, 0.95);
    s.p99_us = percentile(samples, 0.99);
    return s;
  }

  mutable std::mutex mu_;
  std::vector<double> queue_us_;
  std::vector<double> compute_us_;
  std::vector<double> total_us_;
};

}  // namespace elrec
