// Per-request latency tracking for the serving engine.
//
// Each served request records its queue wait (submit → micro-batch pickup)
// and compute time (its micro-batch's forward pass) separately, so tail
// latency can be attributed to scheduling vs. model cost.
//
// The sort-all-samples percentile machinery that used to live here moved to
// obs::Histogram (log-bucketed, lock-free); this header keeps a thin alias
// so serving call sites stay stable. Percentiles are now bucket estimates
// (≲ ~6% relative error) instead of exact nearest-rank — well within what
// latency attribution needs. count/mean/max remain exact.
//
// The recorder owns standalone histograms rather than registry entries so
// each RequestScheduler instance keeps its own counts; the scheduler mirrors
// samples into the global registry ("serve.queue_us" / "serve.compute_us")
// for the BENCH_*.json metrics block.
#pragma once

#include <cstddef>

#include "obs/metrics.hpp"

namespace elrec {

/// Unit note: serving summaries are in microseconds (count/mean/max/p50/...).
using LatencySummary = obs::HistogramSummary;

/// Thread-safe recorder; record() is called by every scheduler worker, the
/// summaries by the driver after (or during) the run.
class LatencyRecorder {
 public:
  void record(double queue_us, double compute_us) {
    queue_us_.record(queue_us);
    compute_us_.record(compute_us);
    total_us_.record(queue_us + compute_us);
  }

  std::size_t count() const { return total_us_.count(); }

  LatencySummary queue_summary() const { return queue_us_.summary(); }
  LatencySummary compute_summary() const { return compute_us_.summary(); }
  LatencySummary total_summary() const { return total_us_.summary(); }

 private:
  obs::Histogram queue_us_;
  obs::Histogram compute_us_;
  obs::Histogram total_us_;
};

}  // namespace elrec
