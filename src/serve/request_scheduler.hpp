// Micro-batching request scheduler.
//
// Single-user ranking requests arrive one at a time, but the Eff-TT lookup
// and MLP kernels amortize much better over a batch. The scheduler bridges
// the two: submit() enqueues onto a bounded deadline-aware queue, workers
// pop the first waiting request and coalesce followers into a micro-batch
// of up to `max_batch` requests or until `max_wait_us` elapses — whichever
// comes first — then run one frozen forward for the whole batch.
//
// Overload is shed at the door: when the queue is at capacity, submit()
// fails fast with kOverloaded (submit_blocking throws OverloadedError)
// instead of letting latency collapse. Every accepted request is served,
// including queue residue at shutdown — the queue reports closed only once
// drained.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <memory>
#include <vector>

#include "common/blocking_queue.hpp"
#include "common/thread_pool.hpp"
#include "serve/latency.hpp"
#include "serve/ranking_backend.hpp"

namespace elrec {

/// One user's ranking query: the dense feature vector plus one index bag
/// per embedding table.
struct RankingRequest {
  std::vector<float> dense;
  std::vector<std::vector<index_t>> sparse;
};

struct RankingResponse {
  float prob = 0.0f;         // predicted click probability
  double queue_us = 0.0;     // submit -> micro-batch pickup
  double compute_us = 0.0;   // the micro-batch's forward time (shared)
  index_t micro_batch = 0;   // size of the batch this request rode in
  std::size_t gemm_products = 0;  // batched-GEMM products of that batch
};

/// Structured load-shedding error thrown by submit_blocking().
class OverloadedError : public Error {
 public:
  explicit OverloadedError(const std::string& what) : Error(what) {}
};

enum class SubmitStatus {
  kAccepted,    // queued; the future will deliver a response
  kOverloaded,  // shed — queue at capacity; retry later
  kClosed,      // scheduler shut down
};

struct RequestSchedulerConfig {
  std::size_t num_workers = 4;
  index_t max_batch = 32;          // micro-batch coalescing cap
  std::int64_t max_wait_us = 200;  // coalescing window after first request
  std::size_t queue_capacity = 1024;  // admission bound; beyond -> shed
};

class RequestScheduler {
 public:
  /// The backend (an InferenceSession, a ShardRouter, ...) must outlive the
  /// scheduler. Workers start immediately.
  RequestScheduler(const IRankingBackend& backend,
                   RequestSchedulerConfig config);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Non-blocking admission. On kAccepted, `response` receives the future
  /// that will carry this request's result; otherwise it is untouched.
  /// Throws Error (not Overloaded) on malformed requests.
  SubmitStatus submit(RankingRequest req,
                      std::future<RankingResponse>& response);

  /// submit() + wait. Throws OverloadedError when shed, Error when closed.
  RankingResponse submit_blocking(RankingRequest req);

  /// Stops admission, serves every queued request, joins the workers.
  /// Idempotent; also run by the destructor.
  void shutdown();

  struct Stats {
    std::size_t accepted = 0;
    std::size_t shed = 0;      // rejected at the admission bound
    std::size_t served = 0;    // responses delivered
    std::size_t batches = 0;   // micro-batches executed
    index_t largest_batch = 0;
  };
  Stats stats() const;

  const LatencyRecorder& latency() const { return latency_; }

 private:
  struct Pending {
    RankingRequest req;
    std::promise<RankingResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void serve_batch(std::vector<Pending>& batch, IRankingBackend::State& state,
                   std::vector<float>& probs, MiniBatch& mb);

  const IRankingBackend& backend_;
  RequestSchedulerConfig config_;
  BlockingQueue<Pending> queue_;
  LatencyRecorder latency_;

  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> served_{0};
  std::atomic<std::size_t> batches_{0};
  std::atomic<index_t> largest_batch_{0};
  std::atomic<bool> shut_down_{false};

  // Declared last so worker futures resolve before members above die.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> workers_;
};

}  // namespace elrec
