// Backend seam between the micro-batching RequestScheduler and whatever
// actually computes a frozen forward pass.
//
// The scheduler only needs four things from its backend: the request shape
// (dense width, table count), a per-worker mutable state object, and a
// const, thread-safe predict(). InferenceSession (single process) and
// ShardRouter (scatter/gather across shard servers) both implement this
// interface, so the same scheduler fronts a local model and a sharded
// serving tier without changes.
#pragma once

#include <memory>
#include <vector>

#include "embed/minibatch.hpp"

namespace elrec {

class IRankingBackend {
 public:
  /// Per-worker mutable scratch. Backends subclass this with whatever their
  /// predict() needs (model workspace, cache probes, scatter buffers); one
  /// instance per concurrent caller, never shared.
  struct State {
    virtual ~State() = default;
  };

  virtual ~IRankingBackend() = default;

  virtual index_t num_tables() const = 0;
  virtual index_t num_dense() const = 0;

  virtual std::unique_ptr<State> make_state() const = 0;

  /// Frozen forward + sigmoid for a batch. Must be const and thread-safe
  /// across callers as long as each passes its own State (obtained from
  /// this backend's make_state()). labels may be empty.
  virtual void predict(const MiniBatch& batch, std::vector<float>& probs,
                       State& state) const = 0;
};

}  // namespace elrec
