// Frozen-model inference session.
//
// Owns a trained DlrmModel (typically restored via load_dlrm_model +
// load_tt_cores) and exposes only its const serving path: predict() runs
// DlrmModel::predict_frozen() with every piece of mutable state confined to
// the caller's WorkerState, so N threads serve concurrently from one model
// with zero synchronization on the parameters.
//
// Each embedding table optionally gets a ServingCache of fully materialized
// rows. The cache hooks into the lookup through predict_frozen()'s
// TableLookupFn: unique rows are probed first, misses are materialized by
// the table's frozen lookup() and offered for admission, then pooling runs
// over the merged rows. Cached values are verbatim copies of what lookup()
// produced, so cached and uncached requests are bitwise identical.
#pragma once

#include <memory>
#include <vector>

#include "dlrm/dlrm_model.hpp"
#include "serve/ranking_backend.hpp"
#include "serve/serving_cache.hpp"

namespace elrec {

struct InferenceSessionConfig {
  /// Applied to every embedding table; capacity 0 serves straight from the
  /// tables with no caching.
  ServingCacheConfig cache;
};

class InferenceSession : public IRankingBackend {
 public:
  /// Per-worker mutable state: the model workspace plus the cache-path
  /// scratch. One per concurrent caller of predict(); never share.
  struct WorkerState : IRankingBackend::State {
    DlrmInferenceWorkspace ws;
    // Cache-path scratch (per table call, reused across tables/requests).
    UniqueIndexMap unique;
    Matrix unique_vals;          // unique-rows embedding staging
    std::vector<char> hit;       // probe hit mask over unique rows
    std::vector<index_t> miss_rows;
    std::vector<index_t> miss_pos;  // position of each miss in unique list
    Matrix miss_vals;               // table-computed rows for the misses
  };

  explicit InferenceSession(std::unique_ptr<DlrmModel> model,
                            InferenceSessionConfig config = {});

  const DlrmModel& model() const { return *model_; }
  index_t num_tables() const override { return model_->num_tables(); }
  index_t num_dense() const override { return model_->config().num_dense; }

  std::unique_ptr<WorkerState> make_worker_state() const;

  /// IRankingBackend: make_worker_state() behind the scheduler-facing seam.
  std::unique_ptr<IRankingBackend::State> make_state() const override {
    return make_worker_state();
  }

  /// Frozen forward + sigmoid for a batch of requests. Thread-safe across
  /// callers as long as each passes its own WorkerState. labels may be
  /// empty.
  void predict(const MiniBatch& batch, std::vector<float>& probs,
               WorkerState& state) const;

  /// IRankingBackend entry: `state` must come from this session's
  /// make_state().
  void predict(const MiniBatch& batch, std::vector<float>& probs,
               IRankingBackend::State& state) const override {
    predict(batch, probs, static_cast<WorkerState&>(state));
  }

  /// Materializes individual rows of table `t` through the same cache-aware
  /// frozen path predict() uses: cache probe first, misses computed by the
  /// table's lookup() and offered for admission. values.row(i) receives
  /// rows[i]; bitwise equal to an uncached lookup of the same rows. This is
  /// the shard server's row-serving entry point.
  void materialize_rows(index_t t, const std::vector<index_t>& rows,
                        Matrix& values, WorkerState& state) const;

  /// Seeds table `t`'s cache with the given hot rows (e.g. from
  /// data/stats top_accessed_indices), materializing them through the
  /// table's frozen lookup. Call before serving starts; not concurrent
  /// with predict().
  void warm_cache(index_t t, const std::vector<index_t>& rows);

  /// Invalidates every table's cache (stale-generation path after swapping
  /// in new parameters).
  void clear_caches();

  /// nullptr when caching is disabled.
  const ServingCache* cache(index_t t) const {
    return caches_[static_cast<std::size_t>(t)].get();
  }

  /// Aggregate hit fraction across all tables (0 when nothing probed).
  double cache_hit_rate() const;

 private:
  void cached_table_lookup(index_t t, const IndexBatch& batch, Matrix& out,
                           ILookupContext* ctx, WorkerState& state) const;

  // Fills values.row(i) with rows[i] via cache probe + frozen lookup of the
  // misses (+ admission). Shared by cached_table_lookup (unique rows) and
  // materialize_rows.
  void resolve_rows(index_t t, const std::vector<index_t>& rows,
                    Matrix& values, ILookupContext* ctx,
                    WorkerState& state) const;

  std::unique_ptr<DlrmModel> model_;
  InferenceSessionConfig config_;
  // ServingCache is internally synchronized, so admission from const
  // predict() is safe; the unique_ptr array itself is never mutated after
  // construction.
  std::vector<std::unique_ptr<ServingCache>> caches_;
};

}  // namespace elrec
