#include "serve/request_scheduler.hpp"

#include <cstring>
#include <utility>

#include "obs/trace.hpp"
#include "tensor/batched_gemm.hpp"

namespace elrec {

namespace {
using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}
}  // namespace

RequestScheduler::RequestScheduler(const IRankingBackend& backend,
                                   RequestSchedulerConfig config)
    : backend_(backend), config_(config), queue_(config.queue_capacity) {
  ELREC_CHECK(config_.num_workers > 0, "need at least one worker");
  ELREC_CHECK(config_.max_batch > 0, "micro-batch cap must be positive");
  ELREC_CHECK(config_.max_wait_us >= 0, "coalescing window must be >= 0");
  pool_ = std::make_unique<ThreadPool>(config_.num_workers);
  workers_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    workers_.push_back(pool_->submit([this] { worker_loop(); }));
  }
}

RequestScheduler::~RequestScheduler() {
  try {
    shutdown();
  } catch (...) {
    // Destructor must not throw; worker failures were already delivered to
    // the affected requests as promise exceptions.
  }
}

SubmitStatus RequestScheduler::submit(RankingRequest req,
                                      std::future<RankingResponse>& response) {
  ELREC_CHECK(static_cast<index_t>(req.dense.size()) == backend_.num_dense(),
              "request dense width must match the model");
  ELREC_CHECK(static_cast<index_t>(req.sparse.size()) ==
                  backend_.num_tables(),
              "request must carry one index bag per embedding table");
  if (shut_down_.load(std::memory_order_acquire)) return SubmitStatus::kClosed;

  Pending p;
  p.req = std::move(req);
  p.enqueued = Clock::now();
  std::future<RankingResponse> fut = p.promise.get_future();
  // Zero timeout == non-blocking probe: a full queue means we are past the
  // admission bound, so shed instead of waiting.
  switch (queue_.try_push_for(p, std::chrono::microseconds(0))) {
    case QueueOpStatus::kOk:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      response = std::move(fut);
      return SubmitStatus::kAccepted;
    case QueueOpStatus::kTimeout:
      shed_.fetch_add(1, std::memory_order_relaxed);
      return SubmitStatus::kOverloaded;
    case QueueOpStatus::kClosed:
      return SubmitStatus::kClosed;
  }
  return SubmitStatus::kClosed;  // unreachable
}

RankingResponse RequestScheduler::submit_blocking(RankingRequest req) {
  std::future<RankingResponse> fut;
  switch (submit(std::move(req), fut)) {
    case SubmitStatus::kAccepted:
      return fut.get();
    case SubmitStatus::kOverloaded:
      throw OverloadedError(
          "serving queue at capacity (" + std::to_string(queue_.capacity()) +
          " requests) — load shed");
    case SubmitStatus::kClosed:
      break;
  }
  throw Error("request scheduler is shut down");
}

void RequestScheduler::worker_loop() {
  auto state = backend_.make_state();
  std::vector<Pending> batch;
  std::vector<float> probs;
  MiniBatch mb;
  mb.sparse.resize(static_cast<std::size_t>(backend_.num_tables()));

  for (;;) {
    auto first = queue_.pop();
    if (!first) return;  // closed and drained
    batch.clear();
    batch.push_back(std::move(*first));

    {
      TRACE_SPAN("serve.coalesce");
      // Coalesce: wait out the window for followers, up to the batch cap.
      const auto deadline =
          Clock::now() + std::chrono::microseconds(config_.max_wait_us);
      while (static_cast<index_t>(batch.size()) < config_.max_batch) {
        const auto now = Clock::now();
        if (now >= deadline) {
          auto extra = queue_.try_pop();
          if (!extra) break;
          batch.push_back(std::move(*extra));
          continue;
        }
        Pending next;
        const auto status = queue_.try_pop_for(
            next, std::chrono::duration<double, std::micro>(
                      micros_between(now, deadline)));
        if (status != QueueOpStatus::kOk) break;  // window over or closing
        batch.push_back(std::move(next));
      }
    }
    serve_batch(batch, *state, probs, mb);
  }
}

void RequestScheduler::serve_batch(std::vector<Pending>& batch,
                                   IRankingBackend::State& state,
                                   std::vector<float>& probs, MiniBatch& mb) {
  TRACE_SPAN("serve.compute");
  // Per-scheduler latency_ keeps exact per-instance counts; these registry
  // histograms aggregate across every scheduler for the metrics snapshot.
  static obs::Histogram& g_queue_us =
      obs::MetricsRegistry::global().histogram("serve.queue_us");
  static obs::Histogram& g_compute_us =
      obs::MetricsRegistry::global().histogram("serve.compute_us");
  const auto compute_start = Clock::now();
  const auto b = static_cast<index_t>(batch.size());
  const index_t num_dense = backend_.num_dense();

  mb.dense.resize(b, num_dense);
  for (index_t i = 0; i < b; ++i) {
    std::memcpy(mb.dense.row(i), batch[static_cast<std::size_t>(i)].req.dense.data(),
                sizeof(float) * static_cast<std::size_t>(num_dense));
  }
  for (std::size_t t = 0; t < mb.sparse.size(); ++t) {
    IndexBatch& ib = mb.sparse[t];
    ib.indices.clear();
    ib.offsets.assign(1, 0);
    for (index_t i = 0; i < b; ++i) {
      const auto& bag = batch[static_cast<std::size_t>(i)].req.sparse[t];
      ib.indices.insert(ib.indices.end(), bag.begin(), bag.end());
      ib.offsets.push_back(static_cast<index_t>(ib.indices.size()));
    }
  }
  mb.labels.clear();

  try {
    const ScopedBatchedGemmCounters gemm_scope;
    backend_.predict(mb, probs, state);
    const auto compute_end = Clock::now();
    const double compute_us = micros_between(compute_start, compute_end);
    const std::size_t products = gemm_scope.delta().products;

    for (index_t i = 0; i < b; ++i) {
      Pending& p = batch[static_cast<std::size_t>(i)];
      RankingResponse r;
      r.prob = probs[static_cast<std::size_t>(i)];
      r.queue_us = micros_between(p.enqueued, compute_start);
      r.compute_us = compute_us;
      r.micro_batch = b;
      r.gemm_products = products;
      latency_.record(r.queue_us, r.compute_us);
      g_queue_us.record(r.queue_us);
      g_compute_us.record(r.compute_us);
      p.promise.set_value(r);
    }
    served_.fetch_add(static_cast<std::size_t>(b),
                      std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    index_t prev = largest_batch_.load(std::memory_order_relaxed);
    while (prev < b && !largest_batch_.compare_exchange_weak(
                           prev, b, std::memory_order_relaxed)) {
    }
  } catch (...) {
    // A failed forward fails every request in the micro-batch; the worker
    // itself keeps serving.
    for (auto& p : batch) {
      p.promise.set_exception(std::current_exception());
    }
  }
}

void RequestScheduler::shutdown() {
  if (shut_down_.exchange(true, std::memory_order_acq_rel)) {
    // Second caller still waits for the workers to finish draining.
  }
  queue_.close();
  for (auto& f : workers_) {
    if (f.valid()) f.get();
  }
  workers_.clear();
}

RequestScheduler::Stats RequestScheduler::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.largest_batch = largest_batch_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace elrec
