#include "serve/serving_cache.hpp"

#include <cstring>
#include <mutex>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace elrec {

namespace {

// Process-wide mirrors of the per-instance atomics, so serving cache
// behaviour shows up in MetricsSnapshot / BENCH metrics blocks even when the
// caller never reads stats_snapshot().
struct CacheCounters {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& admitted;
  obs::Counter& evicted;
  obs::Counter& rejected;
};

CacheCounters& cache_counters() {
  auto& reg = obs::MetricsRegistry::global();
  static CacheCounters c{reg.counter("serve.cache.hits"),
                         reg.counter("serve.cache.misses"),
                         reg.counter("serve.cache.admitted"),
                         reg.counter("serve.cache.evicted"),
                         reg.counter("serve.cache.rejected")};
  return c;
}

}  // namespace

ServingCache::ServingCache(index_t num_rows, index_t dim,
                           ServingCacheConfig config)
    : config_(config), num_rows_(num_rows), dim_(dim) {
  ELREC_CHECK(num_rows > 0 && dim > 0, "cache needs a non-empty table");
  ELREC_CHECK(config.capacity >= 0, "cache capacity must be non-negative");
  ELREC_CHECK(config.victim_scan > 0, "victim scan must probe at least once");
  if (config_.capacity > num_rows_) config_.capacity = num_rows_;
  row_of_slot_.assign(static_cast<std::size_t>(config_.capacity), -1);
  if (config_.capacity > 0) values_.resize(config_.capacity, dim_);
  freq_ = std::vector<std::atomic<std::uint32_t>>(
      static_cast<std::size_t>(num_rows_));
}

index_t ServingCache::size() const {
  std::shared_lock lock(mu_);
  return resident_;
}

index_t ServingCache::probe(const std::vector<index_t>& rows, Matrix& dst,
                            std::vector<char>& hit) {
  ELREC_CHECK(dst.rows() == static_cast<index_t>(rows.size()) &&
                  dst.cols() == dim_,
              "probe destination must be rows x dim");
  hit.assign(rows.size(), 0);
  if (config_.capacity == 0) {
    misses_.fetch_add(rows.size(), std::memory_order_relaxed);
    cache_counters().misses.add(rows.size());
    for (index_t r : rows) {
      freq_[static_cast<std::size_t>(r)].fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    return 0;
  }
  index_t found = 0;
  std::shared_lock lock(mu_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    ELREC_DCHECK(r >= 0 && r < num_rows_);
    freq_[static_cast<std::size_t>(r)].fetch_add(1, std::memory_order_relaxed);
    const auto it = slot_of_row_.find(r);
    if (it == slot_of_row_.end()) continue;
    std::memcpy(dst.row(static_cast<index_t>(i)), values_.row(it->second),
                sizeof(float) * static_cast<std::size_t>(dim_));
    hit[i] = 1;
    ++found;
  }
  hits_.fetch_add(static_cast<std::size_t>(found), std::memory_order_relaxed);
  misses_.fetch_add(rows.size() - static_cast<std::size_t>(found),
                    std::memory_order_relaxed);
  cache_counters().hits.add(static_cast<std::size_t>(found));
  cache_counters().misses.add(rows.size() - static_cast<std::size_t>(found));
  return found;
}

index_t ServingCache::place_locked(index_t row, const float* value,
                                   std::uint32_t freq) {
  index_t slot = -1;
  if (resident_ < config_.capacity) {
    // Free slot: clock hand points at the next unfilled one eventually;
    // scan from it so fill order stays deterministic.
    for (index_t probe = 0; probe < config_.capacity; ++probe) {
      const index_t s = (clock_hand_ + probe) % config_.capacity;
      if (row_of_slot_[static_cast<std::size_t>(s)] < 0) {
        slot = s;
        break;
      }
    }
    ++resident_;
  } else {
    // Bounded clock scan for a strictly colder victim.
    for (int probe = 0; probe < config_.victim_scan; ++probe) {
      const index_t s = (clock_hand_ + probe) % config_.capacity;
      const index_t victim = row_of_slot_[static_cast<std::size_t>(s)];
      if (freq_[static_cast<std::size_t>(victim)].load(
              std::memory_order_relaxed) < freq) {
        slot_of_row_.erase(victim);
        evicted_.fetch_add(1, std::memory_order_relaxed);
        cache_counters().evicted.inc();
        slot = s;
        break;
      }
    }
    if (slot < 0) return -1;
  }
  clock_hand_ = (slot + 1) % config_.capacity;
  row_of_slot_[static_cast<std::size_t>(slot)] = row;
  slot_of_row_[row] = slot;
  std::memcpy(values_.row(slot), value,
              sizeof(float) * static_cast<std::size_t>(dim_));
  admitted_.fetch_add(1, std::memory_order_relaxed);
  cache_counters().admitted.inc();
  return slot;
}

void ServingCache::admit(const std::vector<index_t>& rows,
                         const Matrix& values) {
  if (config_.capacity == 0 || rows.empty()) return;
  ELREC_CHECK(values.rows() == static_cast<index_t>(rows.size()) &&
                  values.cols() == dim_,
              "admit values must be rows x dim");
  std::unique_lock lock(mu_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    if (slot_of_row_.count(r)) continue;  // already resident
    const std::uint32_t f =
        freq_[static_cast<std::size_t>(r)].load(std::memory_order_relaxed);
    if (f < config_.admit_min_freq) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      cache_counters().rejected.inc();
      continue;
    }
    if (place_locked(r, values.row(static_cast<index_t>(i)), f) < 0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      cache_counters().rejected.inc();
    }
  }
}

void ServingCache::warm(const std::vector<index_t>& rows,
                        const Matrix& values) {
  if (config_.capacity == 0 || rows.empty()) return;
  ELREC_CHECK(values.rows() == static_cast<index_t>(rows.size()) &&
                  values.cols() == dim_,
              "warm values must be rows x dim");
  std::unique_lock lock(mu_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    ELREC_CHECK(r >= 0 && r < num_rows_, "warm row out of range");
    // Pre-credit the row so it both passes admission and defends its slot
    // against the first wave of cold traffic.
    auto& f = freq_[static_cast<std::size_t>(r)];
    if (f.load(std::memory_order_relaxed) < config_.admit_min_freq) {
      f.store(config_.admit_min_freq, std::memory_order_relaxed);
    }
    if (slot_of_row_.count(r)) continue;
    place_locked(r, values.row(static_cast<index_t>(i)),
                 f.load(std::memory_order_relaxed));
  }
}

void ServingCache::clear() {
  std::unique_lock lock(mu_);
  slot_of_row_.clear();
  row_of_slot_.assign(static_cast<std::size_t>(config_.capacity), -1);
  resident_ = 0;
  clock_hand_ = 0;
}

ServingCacheStats ServingCache::stats_snapshot() const {
  ServingCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace elrec
