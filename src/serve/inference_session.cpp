#include "serve/inference_session.hpp"

#include <cstring>

#include "common/error.hpp"

namespace elrec {

InferenceSession::InferenceSession(std::unique_ptr<DlrmModel> model,
                                   InferenceSessionConfig config)
    : model_(std::move(model)), config_(config) {
  ELREC_CHECK(model_ != nullptr, "InferenceSession needs a model");
  caches_.resize(static_cast<std::size_t>(model_->num_tables()));
  if (config_.cache.capacity > 0) {
    for (index_t t = 0; t < model_->num_tables(); ++t) {
      const IEmbeddingTable& table = model_->table(t);
      caches_[static_cast<std::size_t>(t)] = std::make_unique<ServingCache>(
          table.num_rows(), table.dim(), config_.cache);
    }
  }
}

std::unique_ptr<InferenceSession::WorkerState>
InferenceSession::make_worker_state() const {
  auto state = std::make_unique<WorkerState>();
  state->ws = model_->make_inference_workspace();
  return state;
}

void InferenceSession::predict(const MiniBatch& batch,
                               std::vector<float>& probs,
                               WorkerState& state) const {
  model_->predict_frozen(
      batch, probs, state.ws,
      [this, &state](index_t t, const IndexBatch& b, Matrix& out,
                     ILookupContext* ctx) {
        cached_table_lookup(t, b, out, ctx, state);
      });
}

void InferenceSession::resolve_rows(index_t t, const std::vector<index_t>& rows,
                                    Matrix& values, ILookupContext* ctx,
                                    WorkerState& state) const {
  const IEmbeddingTable& table = model_->table(t);
  ServingCache* cache = caches_[static_cast<std::size_t>(t)].get();
  const index_t d = table.dim();
  values.resize(static_cast<index_t>(rows.size()), d);
  if (cache == nullptr) {
    // Bag-of-one batches make lookup() return each row verbatim (sum
    // pooling over a single index is the identity).
    table.lookup(IndexBatch::one_per_sample(rows), values, ctx);
    return;
  }
  cache->probe(rows, values, state.hit);

  state.miss_rows.clear();
  state.miss_pos.clear();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!state.hit[i]) {
      state.miss_rows.push_back(rows[i]);
      state.miss_pos.push_back(static_cast<index_t>(i));
    }
  }
  if (!state.miss_rows.empty()) {
    // Cached copies stay bitwise equal to freshly computed rows: both come
    // out of the same frozen lookup() path.
    table.lookup(IndexBatch::one_per_sample(state.miss_rows), state.miss_vals,
                 ctx);
    for (std::size_t i = 0; i < state.miss_rows.size(); ++i) {
      std::memcpy(values.row(state.miss_pos[i]),
                  state.miss_vals.row(static_cast<index_t>(i)),
                  sizeof(float) * static_cast<std::size_t>(d));
    }
    cache->admit(state.miss_rows, state.miss_vals);
  }
}

void InferenceSession::materialize_rows(index_t t,
                                        const std::vector<index_t>& rows,
                                        Matrix& values,
                                        WorkerState& state) const {
  ELREC_CHECK(t >= 0 && t < model_->num_tables(),
              "materialize_rows: table out of range");
  resolve_rows(t, rows, values,
               state.ws.table_ctx[static_cast<std::size_t>(t)].get(), state);
}

void InferenceSession::cached_table_lookup(index_t t, const IndexBatch& batch,
                                           Matrix& out, ILookupContext* ctx,
                                           WorkerState& state) const {
  const IEmbeddingTable& table = model_->table(t);
  ServingCache* cache = caches_[static_cast<std::size_t>(t)].get();
  if (cache == nullptr) {
    table.lookup(batch, out, ctx);
    return;
  }
  const index_t d = table.dim();

  // Resolve each unique row once: probe the cache, compute only the misses
  // through the table's frozen path.
  state.unique = build_unique_index_map(batch.indices);
  resolve_rows(t, state.unique.unique, state.unique_vals, ctx, state);

  // Sum-pool the resolved unique rows back into per-bag embeddings, in bag
  // position order — the same order forward()/lookup() pool in, so the
  // float accumulation sequence (and thus the result bits) match.
  out.resize(batch.batch_size(), d);
  for (index_t b = 0; b < batch.batch_size(); ++b) {
    float* dst = out.row(b);
    for (index_t p = batch.bag_begin(b); p < batch.bag_end(b); ++p) {
      const float* src = state.unique_vals.row(
          state.unique.occurrence[static_cast<std::size_t>(p)]);
      for (index_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  }
}

void InferenceSession::warm_cache(index_t t, const std::vector<index_t>& rows) {
  ServingCache* cache = caches_[static_cast<std::size_t>(t)].get();
  if (cache == nullptr || rows.empty()) return;
  const IEmbeddingTable& table = model_->table(t);
  auto ctx = table.make_lookup_context();
  Matrix values;
  table.lookup(IndexBatch::one_per_sample(rows), values, ctx.get());
  cache->warm(rows, values);
}

void InferenceSession::clear_caches() {
  for (auto& cache : caches_) {
    if (cache) cache->clear();
  }
}

double InferenceSession::cache_hit_rate() const {
  std::size_t hits = 0;
  std::size_t probes = 0;
  for (const auto& cache : caches_) {
    if (!cache) continue;
    const ServingCacheStats s = cache->stats_snapshot();
    hits += s.hits;
    probes += s.hits + s.misses;
  }
  return probes == 0 ? 0.0 : static_cast<double>(hits) /
                                 static_cast<double>(probes);
}

}  // namespace elrec
