// Admission-controlled cache of fully materialized embedding rows.
//
// Serving reads are Zipf-skewed (paper Fig. 4a): a small hot set of rows
// takes most of the traffic. Caching a hot row's final d-float embedding
// skips its entire TT contraction chain at lookup time. Admission is
// frequency-gated (RecShard-style hot/cold split): a row enters the cache
// only after it has been requested `admit_min_freq` times, so one-off cold
// rows cannot churn the hot set. Eviction is a bounded clock scan that only
// displaces a resident row strictly colder than the candidate.
//
// Thread safety: probe() takes a shared lock (concurrent with other
// probes); admit()/warm()/clear() take the exclusive lock. All counters are
// relaxed atomics. Safe for any number of scheduler workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

struct ServingCacheConfig {
  index_t capacity = 0;              // cached rows; 0 disables the cache
  std::uint32_t admit_min_freq = 2;  // accesses before a row may be admitted
  int victim_scan = 8;               // clock probes per admission attempt
};

struct ServingCacheStats {
  std::size_t hits = 0;      // probed rows served from the slab
  std::size_t misses = 0;    // probed rows that fell through to the table
  std::size_t admitted = 0;  // rows that entered the cache
  std::size_t evicted = 0;   // resident rows displaced by hotter ones
  std::size_t rejected = 0;  // admission attempts denied (cold or no victim)
};

class ServingCache {
 public:
  /// `num_rows`/`dim` describe the backing table; the value slab holds
  /// `config.capacity` rows of `dim` floats.
  ServingCache(index_t num_rows, index_t dim, ServingCacheConfig config);

  index_t capacity() const { return config_.capacity; }
  index_t dim() const { return dim_; }
  /// Resident rows (exclusive lock; intended for tests/reports).
  index_t size() const;

  /// Looks up each row; on a hit copies its embedding into dst.row(i) and
  /// sets hit[i] = 1, else hit[i] = 0 and dst.row(i) is untouched. Bumps
  /// every row's frequency counter (hits and misses alike — misses are what
  /// earn future admission). dst must already be (rows.size() x dim);
  /// returns the number of hits.
  index_t probe(const std::vector<index_t>& rows, Matrix& dst,
                std::vector<char>& hit);

  /// Offers freshly computed rows (values.row(i) belongs to rows[i]) for
  /// admission. Rows already resident or colder than admit_min_freq are
  /// skipped; a full cache admits only over a strictly colder victim found
  /// within `victim_scan` clock probes.
  void admit(const std::vector<index_t>& rows, const Matrix& values);

  /// Inserts rows unconditionally (evicting clock victims if full) and
  /// marks them hot enough to defend their slots. Used to seed the cache
  /// from a measured hot set before serving starts; not for concurrent use
  /// with probe() on the same rows' first touch.
  void warm(const std::vector<index_t>& rows, const Matrix& values);

  /// Drops every resident row (the stale-generation path: after a model
  /// reload all cached embeddings are invalid). Frequency history survives
  /// so the hot set re-forms quickly.
  void clear();

  ServingCacheStats stats_snapshot() const;

 private:
  // Caller must hold the exclusive lock. Returns the slot index the row was
  // placed in, or -1 if admission failed (no free slot and no colder
  // victim). `freq` is the candidate's current frequency.
  index_t place_locked(index_t row, const float* value, std::uint32_t freq)
      ELREC_REQUIRES(mu_);

  ServingCacheConfig config_;
  index_t num_rows_ = 0;
  index_t dim_ = 0;

  mutable std::shared_mutex mu_;
  // row -> slot
  std::unordered_map<index_t, index_t> slot_of_row_ ELREC_GUARDED_BY(mu_);
  // slot -> row (-1 free)
  std::vector<index_t> row_of_slot_ ELREC_GUARDED_BY(mu_);
  Matrix values_ ELREC_GUARDED_BY(mu_);  // capacity x dim slab
  index_t clock_hand_ ELREC_GUARDED_BY(mu_) = 0;
  index_t resident_ ELREC_GUARDED_BY(mu_) = 0;

  // Per-row access frequency; relaxed — approximate under contention is
  // fine, admission only needs "requested repeatedly", not exact counts.
  std::vector<std::atomic<std::uint32_t>> freq_;

  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> evicted_{0};
  std::atomic<std::size_t> rejected_{0};
};

}  // namespace elrec
