// Zero-downtime model promotion: checkpoint -> warmed generation -> swap.
//
// promote() closes the train->serve loop: it restores a freshly emitted
// checkpoint into a new ServingGeneration, warms its serving caches from
// the *current* traffic statistics (AccessStats top_k — the RecShard
// placement loop re-run per generation, which is what keeps p99 flat across
// a swap while the hot set drifts), swaps it in behind the HotSwapBackend
// seam, drains the displaced generation by refcount, clears its stale
// caches and destroys it. Both serving shapes promote identically: a local
// InferenceSession, or a full sharded tier (per-shard sessions + servers +
// failover router) built fresh per generation.
//
// Failure model: everything expensive happens *before* the swap, on the
// promoter's thread, against generation-private state. The fault site
// `online.promote.commit` sits between "new generation fully built and
// warmed" and "swap" — a promoter killed there (tests arm it through the
// ELREC_FAULT_SITES grammar) simply abandons the built generation; the old
// one never stopped serving and the next promote() starts clean. A drain
// that outlasts drain_timeout parks the displaced generation on a retired
// list (freed with the promoter) instead of blocking serving or destroying
// a model still pinned by a request.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "data/stats.hpp"
#include "online/hot_swap_backend.hpp"
#include "shard/placement.hpp"

namespace elrec {

struct ModelPromoterConfig {
  /// Serving-cache shape applied to every generation's session(s).
  InferenceSessionConfig session;
  /// Hot rows warmed per table from the AccessStats snapshot (0 = no
  /// warming; caches start cold and re-form through admission).
  index_t warm_top_k = 0;

  /// 0 builds local generations; > 0 builds a sharded tier of this many
  /// shards per generation (RecShard-style placement warming).
  int num_shards = 0;
  ShardServerConfig shard_server;
  ShardRouterConfig router;
  PlacementConfig placement;

  std::chrono::milliseconds drain_poll{1};
  /// After this long the displaced generation is parked on the retired list
  /// instead of blocking the promoter (a stuck request must not stall
  /// subsequent promotions).
  std::chrono::milliseconds drain_timeout{10000};
};

struct PromoterStats {
  std::uint64_t promotions = 0;       // successful swaps
  std::uint64_t failed = 0;           // promote() calls that threw
  std::uint64_t drain_timeouts = 0;   // generations parked, not destroyed
  double last_build_us = 0.0;         // restore + warm, off the serving path
  double last_swap_us = 0.0;          // pointer exchange under the lock
  double last_drain_us = 0.0;         // last in-flight pin released
};

class ModelPromoter {
 public:
  /// `make_model` constructs a model with the exact architecture the
  /// checkpoints were written by (fresh parameters; load overwrites them).
  /// `target` must outlive the promoter.
  using ModelFactory = std::function<std::unique_ptr<DlrmModel>()>;

  ModelPromoter(HotSwapBackend& target, ModelFactory make_model,
                ModelPromoterConfig config);
  ~ModelPromoter();

  ModelPromoter(const ModelPromoter&) = delete;
  ModelPromoter& operator=(const ModelPromoter&) = delete;

  /// Builds, warms, swaps, drains, retires. Returns the new generation id.
  /// `stats` supplies the warm sets (nullptr = no warming). Strong
  /// guarantee: on any exception the serving generation is untouched.
  std::uint64_t promote(const std::string& checkpoint_path,
                        const AccessStats* stats);

  PromoterStats stats() const;

  /// Generations that outlived drain_timeout and are still parked.
  std::size_t retired_pending() const;

 private:
  /// Restores `checkpoint_path` into a complete, warmed generation that has
  /// never served a request. Pure build: no serving state is touched.
  std::shared_ptr<ServingGeneration> build_generation(
      const std::string& checkpoint_path, const AccessStats* stats,
      std::uint64_t id) const;

  std::unique_ptr<InferenceSession> restore_session(
      const std::string& checkpoint_path) const;

  /// Blocks until `gen` is uniquely owned (all in-flight predicts done) or
  /// drain_timeout passes; returns true when drained.
  bool drain(const std::shared_ptr<ServingGeneration>& gen) const;

  HotSwapBackend& target_;
  ModelFactory make_model_;
  ModelPromoterConfig config_;

  mutable std::mutex mu_;
  std::uint64_t next_id_ ELREC_GUARDED_BY(mu_) = 0;
  PromoterStats stats_ ELREC_GUARDED_BY(mu_);
  std::vector<std::shared_ptr<ServingGeneration>> retired_
      ELREC_GUARDED_BY(mu_);
};

}  // namespace elrec
