#include "online/hot_swap_backend.hpp"

#include <mutex>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace elrec {

void ServingGeneration::retire() {
  for (auto& s : shard_sessions) {
    if (s) s->clear_caches();
  }
  if (session) session->clear_caches();
}

HotSwapBackend::HotSwapBackend(std::shared_ptr<ServingGeneration> initial) {
  ELREC_CHECK(initial != nullptr && initial->session != nullptr,
              "hot-swap backend needs an initial generation");
  num_tables_ = initial->backend().num_tables();
  num_dense_ = initial->backend().num_dense();
  gen_id_.store(initial->id, std::memory_order_release);
  gen_ = std::move(initial);
}

std::unique_ptr<IRankingBackend::State> HotSwapBackend::make_state() const {
  // The inner state is built lazily inside predict(), where the generation
  // is pinned — building it here would race a concurrent swap's teardown.
  return std::make_unique<SwapState>();
}

void HotSwapBackend::predict(const MiniBatch& batch, std::vector<float>& probs,
                             IRankingBackend::State& state) const {
  auto& s = static_cast<SwapState&>(state);
  std::shared_ptr<const ServingGeneration> gen;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    gen = gen_;
  }
  // `gen` pins the generation for the rest of this call: the promoter's
  // drain cannot complete (and the model cannot be destroyed) until this
  // frame returns. The whole micro-batch therefore runs against exactly one
  // frozen model — the no-torn-reads invariant.
  if (s.gen_id != gen->id || s.inner == nullptr) {
    s.inner = gen->backend().make_state();
    s.gen_id = gen->id;
  }
  gen->backend().predict(batch, probs, *s.inner);
}

std::shared_ptr<ServingGeneration> HotSwapBackend::swap(
    std::shared_ptr<ServingGeneration> next) {
  TRACE_SPAN("online.swap");
  ELREC_CHECK(next != nullptr && next->session != nullptr,
              "cannot swap in an empty generation");
  ELREC_CHECK(next->backend().num_tables() == num_tables_ &&
                  next->backend().num_dense() == num_dense_,
              "generation shape mismatch — promotion requires an identical "
              "model configuration");
  const DlrmModel& model = next->session->model();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const DlrmModel& cur = gen_->session->model();
    for (index_t t = 0; t < num_tables_; ++t) {
      ELREC_CHECK(model.table(t).num_rows() == cur.table(t).num_rows() &&
                      model.table(t).dim() == cur.table(t).dim(),
                  "generation table shape mismatch");
    }
  }
  std::shared_ptr<ServingGeneration> old;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    old = std::move(gen_);
    gen_ = std::move(next);
    gen_id_.store(gen_->id, std::memory_order_release);
  }
  return old;
}

std::shared_ptr<const ServingGeneration> HotSwapBackend::current() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return gen_;
}

}  // namespace elrec
