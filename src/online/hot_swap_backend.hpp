// Zero-downtime generation swap behind the IRankingBackend seam.
//
// A ServingGeneration bundles everything one promoted model needs to stay
// alive while requests reference it: the frozen InferenceSession restored
// from a checkpoint and, for the sharded tier, the per-shard sessions,
// ShardServers and the failover ShardRouter built over them. HotSwapBackend
// is the IRankingBackend a RequestScheduler fronts: predict() pins the
// current generation with a shared_ptr copy for exactly the duration of one
// micro-batch, so
//
//  * no request ever observes a torn model — each forward runs start to
//    finish against one frozen generation, bitwise-equal to that
//    generation's standalone session;
//  * swap() is atomic from the readers' side: requests in flight keep the
//    old generation pinned, requests picked up after the swap see the new
//    one, and nothing in between exists;
//  * the displaced generation drains by refcount — once the last in-flight
//    predict() releases its pin, the promoter's handle is unique and the
//    generation can be retired (caches cleared) and destroyed.
//
// Every generation must share the model *shape* (num_tables/num_dense and
// per-table dims); swap() enforces that, since scheduler workers keep
// serving across swaps without revalidating requests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "serve/inference_session.hpp"
#include "shard/shard_router.hpp"

namespace elrec {

/// One promotable serving generation. Members are ordered so destruction
/// tears the tier down outermost-first: the router (joins its ping thread)
/// before the shard servers (join their workers) before the sessions the
/// servers borrow.
struct ServingGeneration {
  std::uint64_t id = 0;
  std::string checkpoint_path;

  /// The local frozen session; for a sharded generation this is also the
  /// router's degraded-mode fallback. Always set.
  std::unique_ptr<InferenceSession> session;
  /// Sharded tier (empty for a local-only generation). One session per
  /// shard — full TT-compressed model each, RecShard-warmed partition.
  std::vector<std::unique_ptr<InferenceSession>> shard_sessions;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::unique_ptr<ShardRouter> router;

  /// The backend requests run against: the router when sharded, else the
  /// local session.
  const IRankingBackend& backend() const {
    return router ? static_cast<const IRankingBackend&>(*router) : *session;
  }

  bool sharded() const { return router != nullptr; }

  /// Stale-generation path, run after the drain: every cache of every
  /// session is invalid the moment the generation stops serving.
  void retire();
};

class HotSwapBackend : public IRankingBackend {
 public:
  /// Starts serving `initial` immediately; its shape fixes the request
  /// schema for the backend's lifetime.
  explicit HotSwapBackend(std::shared_ptr<ServingGeneration> initial);

  HotSwapBackend(const HotSwapBackend&) = delete;
  HotSwapBackend& operator=(const HotSwapBackend&) = delete;

  index_t num_tables() const override { return num_tables_; }
  index_t num_dense() const override { return num_dense_; }

  std::unique_ptr<IRankingBackend::State> make_state() const override;

  /// Pins the current generation for the duration of this call and runs its
  /// backend's predict. The worker-local inner state is rebuilt lazily the
  /// first time the worker lands on a new generation.
  void predict(const MiniBatch& batch, std::vector<float>& probs,
               IRankingBackend::State& state) const override;

  /// Installs `next` as the serving generation and returns the displaced
  /// one. The returned pointer stays pinned by any in-flight predicts; wait
  /// for uniqueness before retiring it (ModelPromoter::promote does).
  /// Throws Error (leaving the current generation serving) if `next` does
  /// not match the serving shape.
  std::shared_ptr<ServingGeneration> swap(
      std::shared_ptr<ServingGeneration> next);

  /// The pinned current generation (tests; promoter bookkeeping).
  std::shared_ptr<const ServingGeneration> current() const;

  /// Lock-free id of the serving generation; monotone under promotion.
  std::uint64_t generation_id() const {
    return gen_id_.load(std::memory_order_acquire);
  }

 private:
  struct SwapState : IRankingBackend::State {
    std::uint64_t gen_id = ~0ULL;  // generation `inner` was built by
    std::unique_ptr<IRankingBackend::State> inner;
  };

  index_t num_tables_ = 0;
  index_t num_dense_ = 0;

  // Readers copy the shared_ptr under the shared lock (cheap, no contention
  // with each other); swap() takes the exclusive lock only to exchange the
  // pointer. gen_id_ mirrors gen_->id for lock-free progress checks.
  mutable std::shared_mutex mu_;
  std::shared_ptr<ServingGeneration> gen_ ELREC_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> gen_id_{0};
};

}  // namespace elrec
