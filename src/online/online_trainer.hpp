// Continuous trainer over a drifting stream, emitting promotable
// checkpoints.
//
// The trainer owns the training-side DlrmModel and consumes a
// DriftingDataset — the non-stationary variant of the Criteo-like
// generator, whose hot set migrates on a seeded schedule. Every batch also
// feeds the shared AccessStats, so by the time a checkpoint is cut the
// statistics describe the traffic the *next* generation will actually see;
// the ModelPromoter warms from exactly that snapshot.
//
// Checkpoints are cut every `checkpoint_every_n` batches through
// write_checkpoint_atomic (stage + checksum + rename), with the fault site
// `online.checkpoint` on the emit path: a crash mid-emit loses at most the
// tmp file — the previous checkpoint stays loadable and bitwise-intact
// (tests/test_model_checkpoint.cpp drills this). In the background loop a
// failed emit is counted and training continues; serving keeps promoting
// from the last durable checkpoint.
//
// Two driving modes: train_batches()/write_checkpoint() for deterministic
// single-threaded tests, or start()/stop() for a background loop that
// invokes the checkpoint hook (typically ModelPromoter::promote) after each
// successful emit.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/thread_annotations.hpp"
#include "data/drift.hpp"
#include "data/stats.hpp"
#include "dlrm/dlrm_model.hpp"

namespace elrec {

struct OnlineTrainerConfig {
  float lr = 0.05f;
  index_t batch_size = 128;
  /// Batches between checkpoint emits (and hook invocations). 0 disables
  /// automatic emits; write_checkpoint() still works.
  std::uint64_t checkpoint_every_n = 50;
  /// Directory receiving gen_<k>.ckpt files. Must exist.
  std::string checkpoint_dir = ".";
  /// Halve the access counts every N batches so the stats track the current
  /// distribution instead of the whole history. 0 = never decay.
  std::uint64_t stats_decay_every_n = 0;
};

struct OnlineTrainerStats {
  std::uint64_t batches = 0;
  std::uint64_t checkpoints = 0;          // successful emits
  std::uint64_t checkpoint_failures = 0;  // background-loop emits that threw
  float last_loss = 0.0f;
};

class OnlineTrainer {
 public:
  /// Called after each successful background-loop emit with the durable
  /// checkpoint path and its sequence number. Runs on the trainer thread —
  /// promotion work here never blocks serving, only training.
  using CheckpointHook =
      std::function<void(const std::string& path, std::uint64_t seq)>;

  /// `stream` must outlive the trainer. The model is trained in place.
  OnlineTrainer(std::unique_ptr<DlrmModel> model, DriftingDataset& stream,
                OnlineTrainerConfig config);
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Synchronous: trains `n` batches on the caller's thread, feeding the
  /// access stats and cutting checkpoints on schedule (exceptions from an
  /// emit propagate in this mode). Not concurrent with start().
  void train_batches(std::uint64_t n);

  /// Cuts a checkpoint of the current parameters: gen_<seq>.ckpt staged,
  /// checksummed and atomically renamed. Returns the durable path. Throws
  /// on emit failure (fault site `online.checkpoint`), in which case no
  /// file changes — the previous checkpoint remains the latest.
  std::string write_checkpoint();

  /// Background loop: one batch at a time until stop(), emitting on
  /// schedule and invoking `hook` after each successful emit. Emit failures
  /// are counted, not fatal.
  void start(CheckpointHook hook);
  void stop();

  /// Path of the most recent durable checkpoint ("" before the first).
  std::string latest_checkpoint() const;

  OnlineTrainerStats stats() const;

  /// Live traffic statistics fed by every trained batch; the promoter warms
  /// new generations from this.
  const AccessStats& access_stats() const { return access_stats_; }

  DlrmModel& model() { return *model_; }

 private:
  /// One batch: draw from the drifting stream, feed stats, SGD step, decay
  /// on schedule. Returns the batch loss.
  float train_one_batch();
  void maybe_checkpoint_background(const CheckpointHook& hook);
  void run_loop(CheckpointHook hook);

  std::unique_ptr<DlrmModel> model_;
  DriftingDataset& stream_;
  OnlineTrainerConfig config_;
  AccessStats access_stats_;

  std::atomic<bool> stop_{false};
  std::thread loop_;  // joined by stop()/dtor before members die

  mutable std::mutex mu_;
  OnlineTrainerStats stats_ ELREC_GUARDED_BY(mu_);
  std::uint64_t next_seq_ ELREC_GUARDED_BY(mu_) = 0;
  std::string latest_ckpt_ ELREC_GUARDED_BY(mu_);
};

}  // namespace elrec
