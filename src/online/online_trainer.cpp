#include "online/online_trainer.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/fault_injector.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elrec {

OnlineTrainer::OnlineTrainer(std::unique_ptr<DlrmModel> model,
                             DriftingDataset& stream,
                             OnlineTrainerConfig config)
    : model_(std::move(model)),
      stream_(stream),
      config_(std::move(config)),
      access_stats_(stream.spec().table_rows) {
  ELREC_CHECK(model_ != nullptr, "online trainer needs a model");
  ELREC_CHECK(model_->num_tables() == stream_.spec().num_tables(),
              "model/stream table count mismatch");
  ELREC_CHECK(config_.batch_size > 0, "batch size must be positive");
  ELREC_CHECK(!config_.checkpoint_dir.empty(), "checkpoint dir must be set");
}

OnlineTrainer::~OnlineTrainer() { stop(); }

float OnlineTrainer::train_one_batch() {
  static obs::Counter& batches =
      obs::MetricsRegistry::global().counter("online.batches");
  const MiniBatch batch = stream_.next_batch(config_.batch_size);
  // Stats first: the promoter must see the indices of every batch the
  // parameters were updated on.
  access_stats_.observe(batch);
  const float loss = model_->train_step(batch, config_.lr);
  batches.inc();

  std::uint64_t n = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.last_loss = loss;
    n = stats_.batches;
  }
  if (config_.stats_decay_every_n > 0 && n % config_.stats_decay_every_n == 0) {
    access_stats_.decay();
  }
  return loss;
}

void OnlineTrainer::train_batches(std::uint64_t n) {
  TRACE_SPAN("online.train_batches");
  ELREC_CHECK(!loop_.joinable(),
              "train_batches() must not race the background loop");
  for (std::uint64_t i = 0; i < n; ++i) {
    train_one_batch();
    std::uint64_t total = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      total = stats_.batches;
    }
    if (config_.checkpoint_every_n > 0 &&
        total % config_.checkpoint_every_n == 0) {
      write_checkpoint();
    }
  }
}

std::string OnlineTrainer::write_checkpoint() {
  TRACE_SPAN("online.checkpoint");
  static obs::Counter& checkpoints =
      obs::MetricsRegistry::global().counter("online.checkpoints");

  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_;
  }
  const std::string path =
      config_.checkpoint_dir + "/gen_" + std::to_string(seq) + ".ckpt";

  // Crash drill site: an emit killed here leaves at most a stale tmp file;
  // save_dlrm_model stages + checksums + renames, so the previous
  // checkpoint is untouched either way.
  ELREC_FAULT_POINT("online.checkpoint");
  save_dlrm_model(*model_, path);

  checkpoints.inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_seq_ = seq + 1;
    ++stats_.checkpoints;
    latest_ckpt_ = path;
  }
  return path;
}

void OnlineTrainer::maybe_checkpoint_background(const CheckpointHook& hook) {
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = stats_.batches;
  }
  if (config_.checkpoint_every_n == 0 ||
      total % config_.checkpoint_every_n != 0) {
    return;
  }
  std::string path;
  std::uint64_t seq = 0;
  try {
    {
      std::lock_guard<std::mutex> lock(mu_);
      seq = next_seq_;
    }
    path = write_checkpoint();
  } catch (const Error&) {
    // Training outlives a failed emit; the last durable checkpoint keeps
    // serving promotions until the next scheduled emit succeeds.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.checkpoint_failures;
    return;
  }
  if (hook) hook(path, seq);
}

void OnlineTrainer::run_loop(CheckpointHook hook) {
  while (!stop_.load(std::memory_order_acquire)) {
    train_one_batch();
    maybe_checkpoint_background(hook);
  }
}

void OnlineTrainer::start(CheckpointHook hook) {
  ELREC_CHECK(!loop_.joinable(), "online trainer already running");
  stop_.store(false, std::memory_order_release);
  loop_ = std::thread([this, hook = std::move(hook)]() mutable {
    run_loop(std::move(hook));
  });
}

void OnlineTrainer::stop() {
  stop_.store(true, std::memory_order_release);
  if (loop_.joinable()) loop_.join();
}

std::string OnlineTrainer::latest_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_ckpt_;
}

OnlineTrainerStats OnlineTrainer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace elrec
