#include "online/model_promoter.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/fault_injector.hpp"
#include "dlrm/model_checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elrec {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace

ModelPromoter::ModelPromoter(HotSwapBackend& target, ModelFactory make_model,
                             ModelPromoterConfig config)
    : target_(target),
      make_model_(std::move(make_model)),
      config_(std::move(config)) {
  ELREC_CHECK(make_model_ != nullptr, "model promoter needs a model factory");
  ELREC_CHECK(config_.num_shards >= 0, "shard count must be non-negative");
  // Generation ids continue past the initial generation the backend was
  // constructed with.
  next_id_ = target_.generation_id() + 1;
}

ModelPromoter::~ModelPromoter() = default;

std::unique_ptr<InferenceSession> ModelPromoter::restore_session(
    const std::string& checkpoint_path) const {
  std::unique_ptr<DlrmModel> model = make_model_();
  ELREC_CHECK(model != nullptr, "model factory returned null");
  load_dlrm_model(*model, checkpoint_path);
  return std::make_unique<InferenceSession>(std::move(model), config_.session);
}

std::shared_ptr<ServingGeneration> ModelPromoter::build_generation(
    const std::string& checkpoint_path, const AccessStats* stats,
    std::uint64_t id) const {
  auto gen = std::make_shared<ServingGeneration>();
  gen->id = id;
  gen->checkpoint_path = checkpoint_path;
  gen->session = restore_session(checkpoint_path);

  // Warm sets come from the live traffic snapshot: the hot rows *right now*,
  // not the hot rows of the distribution the previous generation warmed on.
  std::vector<std::vector<index_t>> hot;
  if (stats != nullptr && config_.warm_top_k > 0) {
    ELREC_CHECK(stats->num_tables() == gen->session->num_tables(),
                "access stats table count does not match the model");
    hot = stats->top_k_all(config_.warm_top_k);
  }

  if (config_.num_shards <= 0) {
    for (std::size_t t = 0; t < hot.size(); ++t) {
      gen->session->warm_cache(static_cast<index_t>(t), hot[t]);
    }
    return gen;
  }

  // Sharded tier: every shard restores the full model from the same
  // checkpoint (bitwise-identical rows everywhere, warmth is the only
  // difference), then warms its consistent-hash partition of the hot set.
  gen->shard_sessions.reserve(static_cast<std::size_t>(config_.num_shards));
  gen->servers.reserve(static_cast<std::size_t>(config_.num_shards));
  for (int s = 0; s < config_.num_shards; ++s) {
    gen->shard_sessions.push_back(restore_session(checkpoint_path));
  }

  const HashRing ring(config_.num_shards, config_.router.vnodes_per_shard,
                      config_.router.ring_seed);
  if (!hot.empty()) {
    const PlacementPlan plan = plan_placement(ring, hot, config_.placement);
    for (int s = 0; s < config_.num_shards; ++s) {
      const auto& per_table = plan.warm_rows[static_cast<std::size_t>(s)];
      for (std::size_t t = 0; t < per_table.size(); ++t) {
        gen->shard_sessions[static_cast<std::size_t>(s)]->warm_cache(
            static_cast<index_t>(t), per_table[t]);
      }
    }
    // The fallback session absorbs degraded-mode traffic; warm it with the
    // merged hot set so a mid-promotion shard failure stays fast.
    for (std::size_t t = 0; t < hot.size(); ++t) {
      gen->session->warm_cache(static_cast<index_t>(t), hot[t]);
    }
  }

  std::vector<ShardServer*> raw;
  raw.reserve(gen->shard_sessions.size());
  for (int s = 0; s < config_.num_shards; ++s) {
    gen->servers.push_back(std::make_unique<ShardServer>(
        s, *gen->shard_sessions[static_cast<std::size_t>(s)],
        config_.shard_server));
    raw.push_back(gen->servers.back().get());
  }
  gen->router = std::make_unique<ShardRouter>(*gen->session, std::move(raw),
                                              config_.router);
  return gen;
}

bool ModelPromoter::drain(
    const std::shared_ptr<ServingGeneration>& gen) const {
  const auto deadline = std::chrono::steady_clock::now() + config_.drain_timeout;
  // use_count() == 1 means every in-flight predict() released its pin and
  // the backend no longer holds the generation: we are the sole owner. The
  // count can only decrease once the generation is out of the backend, so a
  // reading of 1 is stable, not a race window.
  while (gen.use_count() > 1) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(config_.drain_poll);
  }
  return true;
}

std::uint64_t ModelPromoter::promote(const std::string& checkpoint_path,
                                     const AccessStats* stats) {
  TRACE_SPAN("online.promote");
  static obs::Counter& promotions =
      obs::MetricsRegistry::global().counter("online.promotions");
  static obs::Counter& failures =
      obs::MetricsRegistry::global().counter("online.promote_failures");
  static obs::Histogram& swap_us =
      obs::MetricsRegistry::global().histogram("online.swap_us");

  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_;
  }

  std::shared_ptr<ServingGeneration> old;
  double build_us = 0.0;
  double this_swap_us = 0.0;
  try {
    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<ServingGeneration> next =
        build_generation(checkpoint_path, stats, id);
    const auto t1 = std::chrono::steady_clock::now();
    build_us = elapsed_us(t0, t1);

    // Commit point: a promoter killed here (fault-drill) abandons `next` —
    // the serving generation has not been touched yet.
    ELREC_FAULT_POINT("online.promote.commit");

    old = target_.swap(std::move(next));
    this_swap_us = elapsed_us(t1, std::chrono::steady_clock::now());
  } catch (...) {
    failures.inc();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
    throw;
  }

  promotions.inc();
  swap_us.record(this_swap_us);

  const auto d0 = std::chrono::steady_clock::now();
  const bool drained = drain(old);
  const double drain_us = elapsed_us(d0, std::chrono::steady_clock::now());

  {
    std::lock_guard<std::mutex> lock(mu_);
    next_id_ = id + 1;
    ++stats_.promotions;
    stats_.last_build_us = build_us;
    stats_.last_swap_us = this_swap_us;
    stats_.last_drain_us = drain_us;
    if (!drained) {
      ++stats_.drain_timeouts;
      retired_.push_back(std::move(old));
    }
    // Requests that drained earlier may also have released parked
    // generations; sweep the ones that became unique.
    std::erase_if(retired_, [](const std::shared_ptr<ServingGeneration>& g) {
      return g.use_count() == 1;
    });
  }

  if (old != nullptr) {  // drained: retire and destroy outside the lock
    old->retire();
    old.reset();
  }
  return id;
}

PromoterStats ModelPromoter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ModelPromoter::retired_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

}  // namespace elrec
