#include "embed/hashed_embedding_bag.hpp"

namespace elrec {

HashedEmbeddingBag::HashedEmbeddingBag(index_t num_rows, index_t hash_rows,
                                       index_t dim, Prng& rng, float init_std)
    : num_rows_(num_rows) {
  ELREC_CHECK(num_rows > 0 && hash_rows > 0 && dim > 0,
              "table must be non-empty");
  ELREC_CHECK(hash_rows <= num_rows,
              "hashing only makes sense when compressing");
  weights_.resize(hash_rows, dim);
  if (init_std > 0.0f) weights_.fill_normal(rng, 0.0f, init_std);
}

index_t HashedEmbeddingBag::hash_index(index_t logical) const {
  // splitmix64 finalizer — uniform spread of consecutive ids.
  auto x = static_cast<std::uint64_t>(logical) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<index_t>(x % static_cast<std::uint64_t>(weights_.rows()));
}

void HashedEmbeddingBag::forward(const IndexBatch& batch, Matrix& out) {
  batch.validate(num_rows_);
  const index_t b = batch.batch_size();
  const index_t d = dim();
  out.resize(b, d);
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      const float* src = weights_.row(
          hash_index(batch.indices[static_cast<std::size_t>(p)]));
      for (index_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  }
}

void HashedEmbeddingBag::backward_and_update(const IndexBatch& batch,
                                             const Matrix& grad_out,
                                             float lr) {
  ELREC_CHECK(grad_out.rows() == batch.batch_size() && grad_out.cols() == dim(),
              "grad_out shape mismatch");
  const index_t d = dim();
  for (index_t s = 0; s < batch.batch_size(); ++s) {
    const float* g = grad_out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      float* w = weights_.row(
          hash_index(batch.indices[static_cast<std::size_t>(p)]));
      for (index_t j = 0; j < d; ++j) w[j] -= lr * g[j];
    }
  }
}

}  // namespace elrec
