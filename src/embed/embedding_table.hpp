// Abstract embedding-table interface.
//
// This is the "drop-in replacement" seam the paper describes: DLRM is built
// against IEmbeddingTable, and any of {dense EmbeddingBag, TT-Rec-style
// TTTable, EL-Rec EffTTTable} plugs in without touching model code.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "embed/index_batch.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

/// Callback over a table's float parameter buffers (used by data-parallel
/// parameter averaging and checkpointing).
using ParameterVisitor = std::function<void(float*, std::size_t)>;

/// Opaque per-reader scratch for the const lookup() path. Implementations
/// that need working memory (e.g. the Eff-TT reuse buffer) subclass this;
/// each concurrent reader owns exactly one context and never shares it.
class ILookupContext {
 public:
  virtual ~ILookupContext() = default;
};

class IEmbeddingTable {
 public:
  virtual ~IEmbeddingTable() = default;

  /// Number of logical rows (vocabulary size).
  virtual index_t num_rows() const = 0;

  /// Embedding dimension.
  virtual index_t dim() const = 0;

  /// Sum-pooled lookup: out is resized to (batch_size x dim).
  virtual void forward(const IndexBatch& batch, Matrix& out) = 0;

  /// Allocates the per-reader scratch consumed by lookup(). Returns nullptr
  /// when the implementation needs none (the context is still accepted).
  virtual std::unique_ptr<ILookupContext> make_lookup_context() const {
    return nullptr;
  }

  /// Frozen read-only sum-pooled lookup — the serving path. Unlike forward()
  /// it mutates nothing on the table, so any number of threads may call it
  /// concurrently on the same table as long as each passes its own context
  /// from make_lookup_context(). Must produce bitwise-identical rows to
  /// forward() for the same parameters. Implementations that cannot offer a
  /// const path keep this default, which throws.
  virtual void lookup(const IndexBatch& batch, Matrix& out,
                      ILookupContext* ctx) const {
    (void)batch;
    (void)out;
    (void)ctx;
    throw Error(name() + " does not support the frozen lookup() path");
  }

  /// Applies gradients for the most recent forward. grad_out is
  /// (batch_size x dim); the table updates its parameters with plain SGD at
  /// learning rate `lr` (the paper fuses the optimizer into the backward
  /// kernel, so the interface does too).
  virtual void backward_and_update(const IndexBatch& batch,
                                   const Matrix& grad_out, float lr) = 0;

  /// Bytes of trainable parameters (the Table III footprint metric).
  virtual std::size_t parameter_bytes() const = 0;

  /// Invokes `visit` on every float parameter buffer, in a deterministic
  /// order. Implementations whose parameters are not plain floats (e.g.
  /// quantized tables) may throw.
  virtual void visit_parameters(const ParameterVisitor& visit) = 0;

  /// Human-readable implementation name for reports.
  virtual std::string name() const = 0;
};

}  // namespace elrec
