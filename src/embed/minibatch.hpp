// One training mini-batch of DLRM inputs.
#pragma once

#include <vector>

#include "embed/index_batch.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

struct MiniBatch {
  Matrix dense;                   // (B x num_dense) continuous features
  std::vector<IndexBatch> sparse; // one IndexBatch per embedding table
  std::vector<float> labels;      // B binary click labels

  index_t batch_size() const { return dense.rows(); }
};

}  // namespace elrec
