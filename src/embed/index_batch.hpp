// Sparse-input batch format shared by every embedding-table implementation.
//
// Matches the (indices, offsets) convention of torch.nn.EmbeddingBag: a batch
// of B "bags", bag b owning indices[offsets[b] .. offsets[b+1]). Pooling is
// always sum, as in DLRM.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

struct IndexBatch {
  std::vector<index_t> indices;  // flat index list
  std::vector<index_t> offsets;  // B+1 bag boundaries; offsets[0] == 0

  index_t batch_size() const {
    return static_cast<index_t>(offsets.size()) - 1;
  }
  index_t num_indices() const { return static_cast<index_t>(indices.size()); }

  index_t bag_begin(index_t b) const {
    return offsets[static_cast<std::size_t>(b)];
  }
  index_t bag_end(index_t b) const {
    return offsets[static_cast<std::size_t>(b) + 1];
  }
  index_t bag_size(index_t b) const { return bag_end(b) - bag_begin(b); }

  /// Builds a batch where every bag holds exactly one index (the common DLRM
  /// one-hot categorical-feature case).
  static IndexBatch one_per_sample(std::vector<index_t> indices);

  /// Builds a batch from per-sample index lists.
  static IndexBatch from_bags(const std::vector<std::vector<index_t>>& bags);

  /// Throws if offsets are malformed or any index is outside [0, num_rows).
  void validate(index_t num_rows) const;
};

/// Sorted unique indices of the batch plus, for each occurrence position in
/// `indices`, the rank of its unique value. This is the substrate of the
/// paper's in-advance gradient aggregation (§III-B).
struct UniqueIndexMap {
  std::vector<index_t> unique;       // sorted ascending
  std::vector<index_t> occurrence;   // same length as batch.indices
};

UniqueIndexMap build_unique_index_map(const std::vector<index_t>& indices);

}  // namespace elrec
