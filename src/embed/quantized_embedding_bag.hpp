// Row-wise int8-quantized embedding table (the paper's [6]/[19] direction).
//
// Each row is stored as int8 codes plus a per-row scale; lookups dequantize
// on the fly. Training updates dequantize -> SGD -> requantize, which is
// where the accuracy loss the paper cites comes from: gradients smaller
// than half a quantization step are rounded away. The ablation benches
// surface exactly that effect against TT compression.
#pragma once

#include <span>

#include "embed/embedding_table.hpp"

namespace elrec {

class QuantizedEmbeddingBag final : public IEmbeddingTable {
 public:
  QuantizedEmbeddingBag(index_t num_rows, index_t dim, Prng& rng,
                        float init_std = 0.01f);

  index_t num_rows() const override { return num_rows_; }
  index_t dim() const override { return dim_; }

  void forward(const IndexBatch& batch, Matrix& out) override;
  void backward_and_update(const IndexBatch& batch, const Matrix& grad_out,
                           float lr) override;

  std::size_t parameter_bytes() const override {
    return codes_.size() * sizeof(std::int8_t) +
           scales_.size() * sizeof(float);
  }
  std::string name() const override { return "QuantizedEmbeddingBag(int8)"; }

  void visit_parameters(const ParameterVisitor&) override {
    throw Error("QuantizedEmbeddingBag parameters are int8 codes; "
                "parameter averaging is not supported");
  }

  /// Dequantized view of one row (for tests / accuracy probes).
  void dequantize_row(index_t row, std::span<float> out) const;

 private:
  void quantize_row(index_t row, std::span<const float> values);

  index_t num_rows_;
  index_t dim_;
  std::vector<std::int8_t> codes_;  // num_rows * dim
  std::vector<float> scales_;       // per row: value = code * scale
};

}  // namespace elrec
