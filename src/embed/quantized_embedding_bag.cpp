#include "embed/quantized_embedding_bag.hpp"

#include <algorithm>
#include <cmath>

namespace elrec {

QuantizedEmbeddingBag::QuantizedEmbeddingBag(index_t num_rows, index_t dim,
                                             Prng& rng, float init_std)
    : num_rows_(num_rows), dim_(dim) {
  ELREC_CHECK(num_rows > 0 && dim > 0, "table must be non-empty");
  codes_.assign(static_cast<std::size_t>(num_rows) * dim, 0);
  scales_.assign(static_cast<std::size_t>(num_rows), 0.0f);
  std::vector<float> row(static_cast<std::size_t>(dim));
  for (index_t r = 0; r < num_rows; ++r) {
    for (auto& v : row) v = static_cast<float>(rng.normal(0.0, init_std));
    quantize_row(r, row);
  }
}

void QuantizedEmbeddingBag::quantize_row(index_t row,
                                         std::span<const float> values) {
  float max_abs = 0.0f;
  for (float v : values) max_abs = std::max(max_abs, std::fabs(v));
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  scales_[static_cast<std::size_t>(row)] = scale;
  std::int8_t* dst = codes_.data() + static_cast<std::size_t>(row) * dim_;
  for (index_t j = 0; j < dim_; ++j) {
    const float q = std::round(values[static_cast<std::size_t>(j)] / scale);
    dst[j] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
  }
}

void QuantizedEmbeddingBag::dequantize_row(index_t row,
                                           std::span<float> out) const {
  ELREC_DCHECK(static_cast<index_t>(out.size()) == dim_);
  const float scale = scales_[static_cast<std::size_t>(row)];
  const std::int8_t* src = codes_.data() + static_cast<std::size_t>(row) * dim_;
  for (index_t j = 0; j < dim_; ++j) {
    out[static_cast<std::size_t>(j)] = static_cast<float>(src[j]) * scale;
  }
}

void QuantizedEmbeddingBag::forward(const IndexBatch& batch, Matrix& out) {
  batch.validate(num_rows_);
  const index_t b = batch.batch_size();
  out.resize(b, dim_);
  std::vector<float> row(static_cast<std::size_t>(dim_));
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      dequantize_row(batch.indices[static_cast<std::size_t>(p)], row);
      for (index_t j = 0; j < dim_; ++j) {
        dst[j] += row[static_cast<std::size_t>(j)];
      }
    }
  }
}

void QuantizedEmbeddingBag::backward_and_update(const IndexBatch& batch,
                                                const Matrix& grad_out,
                                                float lr) {
  ELREC_CHECK(grad_out.rows() == batch.batch_size() && grad_out.cols() == dim_,
              "grad_out shape mismatch");
  std::vector<float> row(static_cast<std::size_t>(dim_));
  for (index_t s = 0; s < batch.batch_size(); ++s) {
    const float* g = grad_out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      const index_t r = batch.indices[static_cast<std::size_t>(p)];
      // Dequantize -> SGD -> requantize: sub-step gradients are lost to
      // rounding, the accuracy cost of training on quantized tables.
      dequantize_row(r, row);
      for (index_t j = 0; j < dim_; ++j) {
        row[static_cast<std::size_t>(j)] -= lr * g[j];
      }
      quantize_row(r, row);
    }
  }
}

}  // namespace elrec
