// Dense (uncompressed) embedding table with sum pooling — the
// nn.EmbeddingBag baseline every compressed table is compared against.
#pragma once

#include <span>

#include "embed/embedding_table.hpp"
#include "tensor/optimizer.hpp"

namespace elrec {

class EmbeddingBag final : public IEmbeddingTable {
 public:
  /// Rows initialised N(0, init_std); init_std <= 0 leaves the table zero.
  EmbeddingBag(index_t num_rows, index_t dim, Prng& rng,
               float init_std = 0.01f);

  /// Switches the update rule (default plain SGD). Non-SGD rules aggregate
  /// duplicate rows before updating, like torch's sparse optimizers.
  void set_optimizer(OptimizerConfig config);

  index_t num_rows() const override { return weights_.rows(); }
  index_t dim() const override { return weights_.cols(); }

  void forward(const IndexBatch& batch, Matrix& out) override;
  void backward_and_update(const IndexBatch& batch, const Matrix& grad_out,
                           float lr) override;

  /// Frozen lookup: pure gather + sum over const weights, safe for any
  /// number of concurrent readers. Needs no context (nullptr accepted).
  void lookup(const IndexBatch& batch, Matrix& out,
              ILookupContext* ctx) const override;

  std::size_t parameter_bytes() const override {
    return static_cast<std::size_t>(weights_.size()) * sizeof(float);
  }
  std::string name() const override { return "EmbeddingBag"; }

  void visit_parameters(const ParameterVisitor& visit) override {
    visit(weights_.data(), static_cast<std::size_t>(weights_.size()));
  }

  Matrix& weights() { return weights_; }
  const Matrix& weights() const { return weights_; }

  /// Single-row read (used by the host-memory store and tests).
  std::span<const float> row_span(index_t row) const {
    return {weights_.row(row), static_cast<std::size_t>(weights_.cols())};
  }

 private:
  Matrix weights_;
  OptimizerState optimizer_;
};

}  // namespace elrec
