// Feature-hashing embedding table (Weinberger et al., the paper's [49]).
//
// Compresses by mapping the logical vocabulary onto a smaller physical
// table with a hash function, accepting collisions. The ablation benches
// compare its accuracy against TT compression at equal memory — the paper's
// argument for TT is exactly that hashing-style compression trades accuracy
// for footprint while TT does not.
#pragma once

#include "embed/embedding_table.hpp"

namespace elrec {

class HashedEmbeddingBag final : public IEmbeddingTable {
 public:
  /// Logical vocabulary of num_rows, physically stored in hash_rows rows.
  HashedEmbeddingBag(index_t num_rows, index_t hash_rows, index_t dim,
                     Prng& rng, float init_std = 0.01f);

  index_t num_rows() const override { return num_rows_; }
  index_t dim() const override { return weights_.cols(); }
  index_t hash_rows() const { return weights_.rows(); }

  void forward(const IndexBatch& batch, Matrix& out) override;
  void backward_and_update(const IndexBatch& batch, const Matrix& grad_out,
                           float lr) override;

  std::size_t parameter_bytes() const override {
    return static_cast<std::size_t>(weights_.size()) * sizeof(float);
  }
  std::string name() const override { return "HashedEmbeddingBag"; }

  void visit_parameters(const ParameterVisitor& visit) override {
    visit(weights_.data(), static_cast<std::size_t>(weights_.size()));
  }

  /// The physical row a logical index maps to (exposed for tests).
  index_t hash_index(index_t logical) const;

 private:
  index_t num_rows_;
  Matrix weights_;
};

}  // namespace elrec
