#include "embed/index_batch.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace elrec {

IndexBatch IndexBatch::one_per_sample(std::vector<index_t> indices) {
  IndexBatch batch;
  batch.offsets.resize(indices.size() + 1);
  for (std::size_t i = 0; i <= indices.size(); ++i) {
    batch.offsets[i] = static_cast<index_t>(i);
  }
  batch.indices = std::move(indices);
  return batch;
}

IndexBatch IndexBatch::from_bags(const std::vector<std::vector<index_t>>& bags) {
  IndexBatch batch;
  batch.offsets.reserve(bags.size() + 1);
  batch.offsets.push_back(0);
  for (const auto& bag : bags) {
    batch.indices.insert(batch.indices.end(), bag.begin(), bag.end());
    batch.offsets.push_back(static_cast<index_t>(batch.indices.size()));
  }
  return batch;
}

void IndexBatch::validate(index_t num_rows) const {
  ELREC_CHECK(!offsets.empty() && offsets.front() == 0,
              "offsets must start at 0");
  ELREC_CHECK(offsets.back() == static_cast<index_t>(indices.size()),
              "offsets must end at indices.size()");
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    ELREC_CHECK(offsets[i] >= offsets[i - 1], "offsets must be nondecreasing");
  }
  for (index_t idx : indices) {
    ELREC_CHECK(idx >= 0 && idx < num_rows, "embedding index out of range");
  }
}

UniqueIndexMap build_unique_index_map(const std::vector<index_t>& indices) {
  UniqueIndexMap map;
  map.unique = indices;
  std::sort(map.unique.begin(), map.unique.end());
  map.unique.erase(std::unique(map.unique.begin(), map.unique.end()),
                   map.unique.end());
  map.occurrence.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto it =
        std::lower_bound(map.unique.begin(), map.unique.end(), indices[i]);
    map.occurrence[i] = static_cast<index_t>(it - map.unique.begin());
  }
  return map;
}

}  // namespace elrec
