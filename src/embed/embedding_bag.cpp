#include "embed/embedding_bag.hpp"

#include "tensor/vector_ops.hpp"

namespace elrec {

EmbeddingBag::EmbeddingBag(index_t num_rows, index_t dim, Prng& rng,
                           float init_std) {
  ELREC_CHECK(num_rows > 0 && dim > 0, "embedding table must be non-empty");
  weights_.resize(num_rows, dim);
  if (init_std > 0.0f) weights_.fill_normal(rng, 0.0f, init_std);
  optimizer_.reset(OptimizerConfig{},
                   static_cast<std::size_t>(weights_.size()));
}

void EmbeddingBag::set_optimizer(OptimizerConfig config) {
  optimizer_.reset(config, static_cast<std::size_t>(weights_.size()));
}

void EmbeddingBag::forward(const IndexBatch& batch, Matrix& out) {
  batch.validate(num_rows());
  const index_t b = batch.batch_size();
  const index_t d = dim();
  out.resize(b, d);
#pragma omp parallel for schedule(static) if (b >= 256)
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      const float* src = weights_.row(batch.indices[static_cast<std::size_t>(p)]);
#pragma omp simd
      for (index_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  }
}

void EmbeddingBag::lookup(const IndexBatch& batch, Matrix& out,
                          ILookupContext* /*ctx*/) const {
  batch.validate(num_rows());
  const index_t b = batch.batch_size();
  const index_t d = dim();
  out.resize(b, d);
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      const float* src =
          weights_.row(batch.indices[static_cast<std::size_t>(p)]);
#pragma omp simd
      for (index_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  }
}

void EmbeddingBag::backward_and_update(const IndexBatch& batch,
                                       const Matrix& grad_out, float lr) {
  ELREC_CHECK(grad_out.rows() == batch.batch_size() && grad_out.cols() == dim(),
              "grad_out shape mismatch");
  const index_t d = dim();
  if (optimizer_.config().kind == OptimizerKind::kSgd) {
    // Sum pooling: every index in a bag receives the bag's full gradient.
    // Serial scatter keeps updates deterministic (duplicate rows in a batch).
    for (index_t s = 0; s < batch.batch_size(); ++s) {
      const float* g = grad_out.row(s);
      for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
        float* w = weights_.row(batch.indices[static_cast<std::size_t>(p)]);
        for (index_t j = 0; j < d; ++j) w[j] -= lr * g[j];
      }
    }
    return;
  }
  // Stateful rules: aggregate duplicate rows first (torch sparse-optimizer
  // semantics), then one state update per unique row.
  const UniqueIndexMap umap = build_unique_index_map(batch.indices);
  Matrix agg(static_cast<index_t>(umap.unique.size()), d);
  for (index_t s = 0; s < batch.batch_size(); ++s) {
    const float* g = grad_out.row(s);
    for (index_t p = batch.bag_begin(s); p < batch.bag_end(s); ++p) {
      float* dst = agg.row(umap.occurrence[static_cast<std::size_t>(p)]);
      for (index_t j = 0; j < d; ++j) dst[j] += g[j];
    }
  }
  for (std::size_t u = 0; u < umap.unique.size(); ++u) {
    const index_t row = umap.unique[u];
    optimizer_.update_region(weights_.row(row),
                             agg.row(static_cast<index_t>(u)),
                             static_cast<std::size_t>(row) * d,
                             static_cast<std::size_t>(d), lr);
  }
}

}  // namespace elrec
