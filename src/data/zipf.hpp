// Zipf (power-law) index sampling.
//
// DLRM sparse indices follow a power-law access distribution (paper §II-C,
// Fig. 4a); ZipfSampler reproduces it. Rank r (0-based) has probability
// proportional to 1 / (r + 1)^s. A per-table random permutation detaches
// popularity from index order, as in real logs where the hottest item is not
// item 0.
#pragma once

#include <vector>

#include "common/prng.hpp"
#include "tensor/matrix.hpp"

namespace elrec {

class ZipfSampler {
 public:
  /// n items, exponent s (s ~ 0.9-1.2 for CTR logs). When permute is true
  /// the rank->index mapping is shuffled with `rng`.
  ZipfSampler(index_t n, double s, Prng& rng, bool permute = true);

  index_t num_items() const { return static_cast<index_t>(cdf_.size()); }
  double exponent() const { return s_; }

  /// Draws one index.
  index_t sample(Prng& rng) const;

  /// Popularity rank of an index (0 = hottest).
  index_t rank_of(index_t index) const {
    return rank_of_[static_cast<std::size_t>(index)];
  }
  /// Index holding popularity rank r.
  index_t index_at_rank(index_t r) const {
    return index_of_rank_[static_cast<std::size_t>(r)];
  }

  /// Probability mass of the top `k` ranks (analytic Fig. 4a curve).
  double top_rank_mass(index_t k) const;

 private:
  double s_;
  std::vector<double> cdf_;           // over ranks
  std::vector<index_t> index_of_rank_;
  std::vector<index_t> rank_of_;
};

}  // namespace elrec
