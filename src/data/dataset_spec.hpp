// Dataset specifications mirroring the paper's three benchmarks (Table II).
//
// The real Criteo/Avazu logs are not available offline, so experiments run
// on synthetic data whose *structural* properties match: per-table
// cardinalities (full scale for footprint math, scaled down for actual
// training), one categorical index per feature per sample, power-law index
// popularity, and intra-batch locality (users behave in sessions).
#pragma once

#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

struct DatasetSpec {
  std::string name;
  index_t num_dense = 13;
  std::vector<index_t> table_rows;  // categorical cardinalities
  index_t num_samples = 0;          // nominal dataset size (Table II)

  // Synthetic-generator knobs.
  index_t multi_hot_max = 1;       // bag sizes drawn uniform in [1, max]
  double zipf_s = 1.05;            // power-law exponent (Fig. 4a skew)
  double hot_ratio = 0.001;        // fraction of rows considered "hot"
  index_t locality_groups = 64;    // session groups over the cold region
  double locality_fraction = 0.5;  // per-sample prob. of drawing in-session
  double label_positive_rate = 0.25;

  index_t num_tables() const { return static_cast<index_t>(table_rows.size()); }
  index_t total_rows() const;

  /// Embedding-table footprint in bytes for a dense table of `dim` floats.
  std::size_t embedding_bytes(index_t dim) const;

  /// Copy with every cardinality divided by `factor` (min 8 rows) and the
  /// sample count divided likewise — used to make training runs tractable.
  DatasetSpec scaled(index_t factor) const;
};

/// The paper's three datasets with published per-table cardinalities.
DatasetSpec criteo_kaggle_spec();
DatasetSpec criteo_terabyte_spec();
DatasetSpec avazu_spec();

/// All three, in the order the paper's figures use.
std::vector<DatasetSpec> paper_dataset_specs();

}  // namespace elrec
