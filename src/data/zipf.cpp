#include "data/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace elrec {

ZipfSampler::ZipfSampler(index_t n, double s, Prng& rng, bool permute)
    : s_(s) {
  ELREC_CHECK(n > 0, "ZipfSampler needs at least one item");
  cdf_.resize(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (index_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cdf_[static_cast<std::size_t>(r)] = acc;
  }
  const double inv_total = 1.0 / acc;
  for (auto& v : cdf_) v *= inv_total;
  cdf_.back() = 1.0;  // guard against rounding

  index_of_rank_.resize(static_cast<std::size_t>(n));
  std::iota(index_of_rank_.begin(), index_of_rank_.end(), index_t{0});
  if (permute) shuffle(index_of_rank_, rng);
  rank_of_.resize(static_cast<std::size_t>(n));
  for (index_t r = 0; r < n; ++r) {
    rank_of_[static_cast<std::size_t>(index_of_rank_[static_cast<std::size_t>(r)])] = r;
  }
}

index_t ZipfSampler::sample(Prng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const index_t rank = static_cast<index_t>(it - cdf_.begin());
  return index_of_rank_[static_cast<std::size_t>(
      std::min<index_t>(rank, num_items() - 1))];
}

double ZipfSampler::top_rank_mass(index_t k) const {
  if (k <= 0) return 0.0;
  k = std::min<index_t>(k, num_items());
  return cdf_[static_cast<std::size_t>(k - 1)];
}

}  // namespace elrec
