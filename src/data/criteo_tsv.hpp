// Reader for the Criteo click-log TSV format (Kaggle / Terabyte days).
//
// Each line: label \t 13 integer features \t 26 hex categorical features;
// missing fields are empty. This repository's experiments run on synthetic
// data (the logs are not redistributable), but the reader lets a user with
// the real files train on them: integers are log-transformed the standard
// way, categoricals hash into each table's cardinality.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "data/dataset_spec.hpp"
#include "embed/minibatch.hpp"

namespace elrec {

struct CriteoTsvOptions {
  index_t num_dense = 13;
  std::vector<index_t> table_rows;  // hashing moduli, one per categorical
  bool log_transform_dense = true;  // x -> log(1 + max(x, 0))
  // Per-file cap on malformed lines: each is counted and skipped, but once
  // the cap is exceeded the file is considered garbage (wrong format, torn
  // download) and next_batch throws instead of silently degrading.
  index_t max_skipped_lines = 1000;
};

class CriteoTsvReader {
 public:
  /// Reads from a file. Throws if the file cannot be opened.
  CriteoTsvReader(const std::string& path, CriteoTsvOptions options);

  /// Reads from an arbitrary stream (used by tests). Takes ownership.
  CriteoTsvReader(std::unique_ptr<std::istream> stream,
                  CriteoTsvOptions options);

  /// Fills the next batch with up to `batch_size` samples; returns the
  /// number of samples read (0 at end of stream). Short batches are valid.
  /// Malformed or truncated rows are counted and skipped; exceeding
  /// `max_skipped_lines` throws Error.
  index_t next_batch(index_t batch_size, MiniBatch& out);

  /// Lines skipped because they were malformed.
  index_t skipped_lines() const { return skipped_; }

  /// The stable hash used for categorical values (exposed for tests).
  static index_t hash_categorical(std::string_view value, index_t modulus);

 private:
  bool parse_line(const std::string& line, float* dense,
                  std::vector<index_t>& cats, float* label) const;

  CriteoTsvOptions options_;
  std::unique_ptr<std::istream> stream_;
  index_t skipped_ = 0;
};

}  // namespace elrec
