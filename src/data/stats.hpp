// Dataset statistics reproducing paper Fig. 4.
#pragma once

#include <vector>

#include "data/synthetic.hpp"

namespace elrec {

/// Fig. 4a: cumulative access share of the hottest rows. Returns, for each
/// requested top-fraction (e.g. 0.01 = top 1% of rows), the fraction of all
/// accesses they receive, measured over `num_draws` sampled indices of
/// table `t`.
std::vector<double> cumulative_access_share(SyntheticDataset& data, index_t t,
                                            const std::vector<double>& fractions,
                                            index_t num_draws,
                                            index_t batch_size = 4096);

/// Fig. 4b: average number of unique indices per batch for one table.
double avg_unique_indices_per_batch(SyntheticDataset& data, index_t t,
                                    index_t batch_size, index_t num_batches);

/// RecShard-style hot set: the `k` most-accessed indices of table `t`,
/// measured over `num_draws` sampled indices, hottest first (ties broken by
/// ascending index, so the result is deterministic for a seeded dataset).
/// Seeds the serving cache's admission/warm set.
std::vector<index_t> top_accessed_indices(SyntheticDataset& data, index_t t,
                                          index_t k, index_t num_draws,
                                          index_t batch_size = 4096);

}  // namespace elrec
