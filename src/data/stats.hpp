// Dataset statistics reproducing paper Fig. 4, plus the streaming access
// accumulator that feeds serving-cache warming from live traffic.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/thread_annotations.hpp"
#include "data/synthetic.hpp"

namespace elrec {

/// Fig. 4a: cumulative access share of the hottest rows. Returns, for each
/// requested top-fraction (e.g. 0.01 = top 1% of rows), the fraction of all
/// accesses they receive, measured over `num_draws` sampled indices of
/// table `t`.
std::vector<double> cumulative_access_share(SyntheticDataset& data, index_t t,
                                            const std::vector<double>& fractions,
                                            index_t num_draws,
                                            index_t batch_size = 4096);

/// Fig. 4b: average number of unique indices per batch for one table.
double avg_unique_indices_per_batch(SyntheticDataset& data, index_t t,
                                    index_t batch_size, index_t num_batches);

/// RecShard-style hot set: the `k` most-accessed indices of table `t`,
/// measured over `num_draws` sampled indices, hottest first (ties broken by
/// ascending index, so the result is deterministic for a seeded dataset).
/// Seeds the serving cache's admission/warm set.
std::vector<index_t> top_accessed_indices(SyntheticDataset& data, index_t t,
                                          index_t k, index_t num_draws,
                                          index_t batch_size = 4096);

/// Streaming per-table access histogram over live traffic. Under popularity
/// drift (data/drift.hpp) a hot set measured once at startup goes stale;
/// the online trainer feeds every consumed batch through observe() and the
/// ModelPromoter warms each new serving generation from top_k() — the
/// RecShard statistics-driven placement loop, closed over a moving
/// distribution. decay() halves every count so recent traffic dominates.
///
/// Thread safety: all methods lock, so the training thread can observe()
/// while a promoter thread reads top_k(). Rates are per-batch, not per-row,
/// so the lock is cold.
class AccessStats {
 public:
  explicit AccessStats(std::vector<index_t> table_rows);

  index_t num_tables() const {
    return static_cast<index_t>(counts_.size());
  }

  /// Counts every sparse index of the batch (all tables).
  void observe(const MiniBatch& batch);
  /// Counts a raw index list for one table (serving-side traffic).
  void observe_table(index_t t, const std::vector<index_t>& indices);

  /// Halves every count (integer division): exponential recency decay.
  void decay();

  /// The k most-accessed rows of table `t`, hottest first, ties broken by
  /// ascending index — deterministic for a deterministic stream. Rows with
  /// zero observations are never returned.
  std::vector<index_t> top_k(index_t t, index_t k) const;
  /// top_k for every table (the promoter's per-generation warm set).
  std::vector<std::vector<index_t>> top_k_all(index_t k) const;

  /// Total observations recorded for table `t` since construction (not
  /// rescaled by decay()).
  std::uint64_t total(index_t t) const;

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint64_t>> counts_ ELREC_GUARDED_BY(mu_);
  std::vector<std::uint64_t> totals_ ELREC_GUARDED_BY(mu_);
};

}  // namespace elrec
