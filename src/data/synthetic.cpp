#include "data/synthetic.hpp"

#include <cmath>

#include "common/error.hpp"

namespace elrec {
namespace {

std::uint64_t mix_hash(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x += c;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Hash -> uniform in (-1, 1).
float hash_to_signed_unit(std::uint64_t h) {
  return static_cast<float>(static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 -
                            1.0);
}

}  // namespace

SyntheticDataset::SyntheticDataset(DatasetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  ELREC_CHECK(spec_.num_tables() > 0, "dataset needs at least one table");
  teacher_seed_ = mix_hash(seed, 0xe1c0ffeeULL, 0x7ea8c8e5ULL);

  Prng sampler_rng(mix_hash(seed, 0x5a3f19ULL, 2));
  samplers_.reserve(static_cast<std::size_t>(spec_.num_tables()));
  for (index_t t = 0; t < spec_.num_tables(); ++t) {
    samplers_.emplace_back(spec_.table_rows[static_cast<std::size_t>(t)],
                           spec_.zipf_s, sampler_rng);
  }
  rank_offset_.assign(static_cast<std::size_t>(spec_.num_tables()), 0);

  Prng teacher_rng(teacher_seed_);
  dense_teacher_.resize(static_cast<std::size_t>(spec_.num_dense));
  for (auto& w : dense_teacher_) {
    w = static_cast<float>(teacher_rng.normal(0.0, 0.2));
  }
  // Bias shifts the base rate toward the spec's positive rate. The logit is
  // bias + noise with variance sigma2 (dense term + sparse term); by the
  // probit approximation E[sigmoid(b + sZ)] ~ sigmoid(b / sqrt(1 + pi s^2/8)),
  // so the bias is inflated by that factor to hit the target rate.
  const double sigma2 =
      static_cast<double>(spec_.num_dense) * 0.2 * 0.2 +
      3.0 * 3.0 / 3.0;  // uniform(-1,1)*3/sqrt(T) across T tables
  teacher_bias_ = static_cast<float>(
      std::log(spec_.label_positive_rate / (1.0 - spec_.label_positive_rate)) *
      std::sqrt(1.0 + M_PI * sigma2 / 8.0));
}

float SyntheticDataset::teacher_score(index_t table, index_t row) const {
  const std::uint64_t h = mix_hash(teacher_seed_,
                                   static_cast<std::uint64_t>(table) + 17,
                                   static_cast<std::uint64_t>(row));
  // Scale by 1/sqrt(T) so the total sparse contribution has O(1) variance;
  // the sparse term dominates the dense one so embedding quality is what
  // the model must learn (as in real CTR data).
  return hash_to_signed_unit(h) *
         3.0f / std::sqrt(static_cast<float>(spec_.num_tables()));
}

float SyntheticDataset::label_logit(const float* dense,
                                    const std::vector<index_t>& idx) const {
  float z = teacher_bias_;
  for (index_t j = 0; j < spec_.num_dense; ++j) {
    z += dense_teacher_[static_cast<std::size_t>(j)] * dense[j];
  }
  for (index_t t = 0; t < spec_.num_tables(); ++t) {
    z += teacher_score(t, idx[static_cast<std::size_t>(t)]);
  }
  return z;
}

void SyntheticDataset::set_rank_offset(index_t table, index_t offset) {
  ELREC_CHECK(table >= 0 && table < spec_.num_tables(),
              "rank offset table out of range");
  const index_t n = samplers_[static_cast<std::size_t>(table)].num_items();
  ELREC_CHECK(offset >= 0, "rank offset must be non-negative");
  rank_offset_[static_cast<std::size_t>(table)] = offset % n;
}

index_t SyntheticDataset::draw_index(index_t table, Prng& rng,
                                     index_t session) const {
  const ZipfSampler& sampler = samplers_[static_cast<std::size_t>(table)];
  const index_t n = sampler.num_items();
  const index_t offset = rank_offset_[static_cast<std::size_t>(table)];
  const auto hot = static_cast<index_t>(
      std::max(1.0, spec_.hot_ratio * static_cast<double>(n)));
  // Session draw: uniform over the session's chunk of the cold rank region.
  index_t rank = -1;
  if (spec_.locality_groups > 1 && n > hot + spec_.locality_groups &&
      rng.uniform() < spec_.locality_fraction) {
    const index_t cold = n - hot;
    const index_t group = session % spec_.locality_groups;
    const index_t group_size = cold / spec_.locality_groups;
    if (group_size > 0) {
      rank = hot + group * group_size +
             static_cast<index_t>(rng.uniform_index(
                 static_cast<std::uint64_t>(group_size)));
    }
  }
  if (rank < 0) {
    const index_t idx = sampler.sample(rng);
    if (offset == 0) return idx;  // stationary fast path, bit-identical
    rank = sampler.rank_of(idx);
  }
  return sampler.index_at_rank((rank + offset) % n);
}

MiniBatch SyntheticDataset::make_batch(index_t batch_size, Prng& rng,
                                       index_t session) const {
  MiniBatch batch;
  batch.dense.resize(batch_size, spec_.num_dense);
  batch.dense.fill_normal(rng, 0.0f, 1.0f);
  batch.labels.resize(static_cast<std::size_t>(batch_size));
  batch.sparse.resize(static_cast<std::size_t>(spec_.num_tables()));

  std::vector<std::vector<std::vector<index_t>>> bags(
      static_cast<std::size_t>(spec_.num_tables()));
  for (auto& v : bags) v.resize(static_cast<std::size_t>(batch_size));

  std::vector<index_t> sample_idx(static_cast<std::size_t>(spec_.num_tables()));
  for (index_t s = 0; s < batch_size; ++s) {
    for (index_t t = 0; t < spec_.num_tables(); ++t) {
      auto& bag = bags[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)];
      const index_t bag_size =
          spec_.multi_hot_max <= 1
              ? 1
              : 1 + static_cast<index_t>(rng.uniform_index(
                        static_cast<std::uint64_t>(spec_.multi_hot_max)));
      for (index_t i = 0; i < bag_size; ++i) {
        bag.push_back(draw_index(t, rng, session));
      }
      // The teacher scores the first index of the bag (its "primary" item).
      sample_idx[static_cast<std::size_t>(t)] = bag.front();
    }
    const float z = label_logit(batch.dense.row(s), sample_idx);
    const float p = 1.0f / (1.0f + std::exp(-z));
    batch.labels[static_cast<std::size_t>(s)] = rng.bernoulli(p) ? 1.0f : 0.0f;
  }
  for (index_t t = 0; t < spec_.num_tables(); ++t) {
    batch.sparse[static_cast<std::size_t>(t)] =
        IndexBatch::from_bags(bags[static_cast<std::size_t>(t)]);
  }
  return batch;
}

MiniBatch SyntheticDataset::next_batch(index_t batch_size) {
  // Sessions rotate slowly: several consecutive batches share a group,
  // giving batches the intra-batch/temporal locality §IV exploits.
  const index_t session = batches_served_ / 4;
  ++batches_served_;
  return make_batch(batch_size, rng_, session);
}

void SyntheticDataset::skip_batches(index_t n, index_t batch_size) {
  // Generating and discarding keeps rng_/batches_served_ bit-exact with a
  // stream that actually consumed these batches.
  for (index_t i = 0; i < n; ++i) next_batch(batch_size);
}

MiniBatch SyntheticDataset::eval_batch(index_t batch_size,
                                       std::uint64_t salt) const {
  Prng rng(mix_hash(teacher_seed_, 0xeba1ULL, salt));
  return make_batch(batch_size, rng, static_cast<index_t>(salt % 997));
}

}  // namespace elrec
