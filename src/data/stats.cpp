#include "data/stats.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "embed/index_batch.hpp"

namespace elrec {

std::vector<double> cumulative_access_share(SyntheticDataset& data, index_t t,
                                            const std::vector<double>& fractions,
                                            index_t num_draws,
                                            index_t batch_size) {
  std::unordered_map<index_t, index_t> counts;
  index_t drawn = 0;
  while (drawn < num_draws) {
    const MiniBatch batch = data.next_batch(batch_size);
    for (index_t idx : batch.sparse[static_cast<std::size_t>(t)].indices) {
      ++counts[idx];
      ++drawn;
    }
  }
  std::vector<index_t> freq;
  freq.reserve(counts.size());
  for (const auto& [idx, c] : counts) freq.push_back(c);
  std::sort(freq.begin(), freq.end(), std::greater<>());

  const index_t table_rows =
      data.spec().table_rows[static_cast<std::size_t>(t)];
  std::vector<double> out;
  out.reserve(fractions.size());
  for (double f : fractions) {
    const auto top = static_cast<std::size_t>(
        std::max(1.0, f * static_cast<double>(table_rows)));
    index_t acc = 0;
    for (std::size_t i = 0; i < std::min(top, freq.size()); ++i) acc += freq[i];
    out.push_back(static_cast<double>(acc) / static_cast<double>(drawn));
  }
  return out;
}

std::vector<index_t> top_accessed_indices(SyntheticDataset& data, index_t t,
                                          index_t k, index_t num_draws,
                                          index_t batch_size) {
  ELREC_CHECK(k >= 0, "hot-set size must be non-negative");
  std::unordered_map<index_t, index_t> counts;
  index_t drawn = 0;
  while (drawn < num_draws) {
    const MiniBatch batch = data.next_batch(batch_size);
    for (index_t idx : batch.sparse[static_cast<std::size_t>(t)].indices) {
      ++counts[idx];
      ++drawn;
    }
  }
  std::vector<std::pair<index_t, index_t>> freq(counts.begin(), counts.end());
  std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::vector<index_t> hot;
  hot.reserve(static_cast<std::size_t>(k));
  for (std::size_t i = 0;
       i < freq.size() && hot.size() < static_cast<std::size_t>(k); ++i) {
    hot.push_back(freq[i].first);
  }
  return hot;
}

double avg_unique_indices_per_batch(SyntheticDataset& data, index_t t,
                                    index_t batch_size, index_t num_batches) {
  ELREC_CHECK(num_batches > 0, "need at least one batch");
  double total = 0.0;
  for (index_t b = 0; b < num_batches; ++b) {
    const MiniBatch batch = data.next_batch(batch_size);
    const auto umap = build_unique_index_map(
        batch.sparse[static_cast<std::size_t>(t)].indices);
    total += static_cast<double>(umap.unique.size());
  }
  return total / static_cast<double>(num_batches);
}

}  // namespace elrec
