#include "data/stats.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "embed/index_batch.hpp"

namespace elrec {

std::vector<double> cumulative_access_share(SyntheticDataset& data, index_t t,
                                            const std::vector<double>& fractions,
                                            index_t num_draws,
                                            index_t batch_size) {
  std::unordered_map<index_t, index_t> counts;
  index_t drawn = 0;
  while (drawn < num_draws) {
    const MiniBatch batch = data.next_batch(batch_size);
    for (index_t idx : batch.sparse[static_cast<std::size_t>(t)].indices) {
      ++counts[idx];
      ++drawn;
    }
  }
  std::vector<index_t> freq;
  freq.reserve(counts.size());
  for (const auto& [idx, c] : counts) freq.push_back(c);
  std::sort(freq.begin(), freq.end(), std::greater<>());

  const index_t table_rows =
      data.spec().table_rows[static_cast<std::size_t>(t)];
  std::vector<double> out;
  out.reserve(fractions.size());
  for (double f : fractions) {
    const auto top = static_cast<std::size_t>(
        std::max(1.0, f * static_cast<double>(table_rows)));
    index_t acc = 0;
    for (std::size_t i = 0; i < std::min(top, freq.size()); ++i) acc += freq[i];
    out.push_back(static_cast<double>(acc) / static_cast<double>(drawn));
  }
  return out;
}

std::vector<index_t> top_accessed_indices(SyntheticDataset& data, index_t t,
                                          index_t k, index_t num_draws,
                                          index_t batch_size) {
  ELREC_CHECK(k >= 0, "hot-set size must be non-negative");
  std::unordered_map<index_t, index_t> counts;
  index_t drawn = 0;
  while (drawn < num_draws) {
    const MiniBatch batch = data.next_batch(batch_size);
    for (index_t idx : batch.sparse[static_cast<std::size_t>(t)].indices) {
      ++counts[idx];
      ++drawn;
    }
  }
  std::vector<std::pair<index_t, index_t>> freq(counts.begin(), counts.end());
  std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::vector<index_t> hot;
  hot.reserve(static_cast<std::size_t>(k));
  for (std::size_t i = 0;
       i < freq.size() && hot.size() < static_cast<std::size_t>(k); ++i) {
    hot.push_back(freq[i].first);
  }
  return hot;
}

AccessStats::AccessStats(std::vector<index_t> table_rows) {
  ELREC_CHECK(!table_rows.empty(), "access stats need at least one table");
  counts_.reserve(table_rows.size());
  for (index_t rows : table_rows) {
    ELREC_CHECK(rows > 0, "access stats need non-empty tables");
    counts_.emplace_back(static_cast<std::size_t>(rows), 0);
  }
  totals_.assign(table_rows.size(), 0);
}

void AccessStats::observe(const MiniBatch& batch) {
  ELREC_CHECK(batch.sparse.size() == counts_.size(),
              "batch table count does not match access stats");
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t t = 0; t < batch.sparse.size(); ++t) {
    auto& c = counts_[t];
    for (index_t idx : batch.sparse[t].indices) {
      ELREC_DCHECK(idx >= 0 &&
                   idx < static_cast<index_t>(c.size()));
      ++c[static_cast<std::size_t>(idx)];
    }
    totals_[t] += batch.sparse[t].indices.size();
  }
}

void AccessStats::observe_table(index_t t, const std::vector<index_t>& indices) {
  ELREC_CHECK(t >= 0 && t < num_tables(), "access stats table out of range");
  std::lock_guard<std::mutex> lock(mu_);
  auto& c = counts_[static_cast<std::size_t>(t)];
  for (index_t idx : indices) {
    ELREC_DCHECK(idx >= 0 && idx < static_cast<index_t>(c.size()));
    ++c[static_cast<std::size_t>(idx)];
  }
  totals_[static_cast<std::size_t>(t)] += indices.size();
}

void AccessStats::decay() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counts_) {
    for (auto& v : c) v >>= 1;
  }
}

std::vector<index_t> AccessStats::top_k(index_t t, index_t k) const {
  ELREC_CHECK(t >= 0 && t < num_tables(), "access stats table out of range");
  ELREC_CHECK(k >= 0, "hot-set size must be non-negative");
  std::vector<std::pair<std::uint64_t, index_t>> freq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto& c = counts_[static_cast<std::size_t>(t)];
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (c[i] > 0) freq.emplace_back(c[i], static_cast<index_t>(i));
    }
  }
  std::sort(freq.begin(), freq.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<index_t> hot;
  hot.reserve(static_cast<std::size_t>(k));
  for (std::size_t i = 0;
       i < freq.size() && hot.size() < static_cast<std::size_t>(k); ++i) {
    hot.push_back(freq[i].second);
  }
  return hot;
}

std::vector<std::vector<index_t>> AccessStats::top_k_all(index_t k) const {
  std::vector<std::vector<index_t>> out;
  out.reserve(static_cast<std::size_t>(num_tables()));
  for (index_t t = 0; t < num_tables(); ++t) out.push_back(top_k(t, k));
  return out;
}

std::uint64_t AccessStats::total(index_t t) const {
  ELREC_CHECK(t >= 0 && t < num_tables(), "access stats table out of range");
  std::lock_guard<std::mutex> lock(mu_);
  return totals_[static_cast<std::size_t>(t)];
}

double avg_unique_indices_per_batch(SyntheticDataset& data, index_t t,
                                    index_t batch_size, index_t num_batches) {
  ELREC_CHECK(num_batches > 0, "need at least one batch");
  double total = 0.0;
  for (index_t b = 0; b < num_batches; ++b) {
    const MiniBatch batch = data.next_batch(batch_size);
    const auto umap = build_unique_index_map(
        batch.sparse[static_cast<std::size_t>(t)].indices);
    total += static_cast<double>(umap.unique.size());
  }
  return total / static_cast<double>(num_batches);
}

}  // namespace elrec
