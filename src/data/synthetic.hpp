// Synthetic DLRM training stream.
//
// Generates mini-batches whose statistics match §II-C of the paper:
//  * per-table index popularity is Zipf (Fig. 4a),
//  * batches contain many repeated indices (Fig. 4b), and
//  * indices co-occur in time-local "sessions" (§IV's local information),
//    produced by drawing part of each batch from a slowly rotating group of
//    cold indices.
// Labels come from a hidden teacher model (hash-derived per-row scores plus
// a dense linear term through a logistic link), so a DLRM can genuinely
// learn and accuracy comparisons (Table IV) are meaningful.
#pragma once

#include "common/prng.hpp"
#include "data/dataset_spec.hpp"
#include "data/zipf.hpp"
#include "embed/minibatch.hpp"

namespace elrec {

class SyntheticDataset {
 public:
  SyntheticDataset(DatasetSpec spec, std::uint64_t seed);

  const DatasetSpec& spec() const { return spec_; }

  /// Generates the next training batch (the stream is infinite; num_samples
  /// of the spec is only the nominal epoch length).
  MiniBatch next_batch(index_t batch_size);

  /// Advances the stream past `n` batches of `batch_size` without
  /// materializing them fully. A fresh dataset with the same seed, skipped
  /// past a checkpoint's batch count, replays the exact batches an
  /// uninterrupted run would have seen — the data half of resume().
  void skip_batches(index_t n, index_t batch_size);

  /// Deterministic evaluation set: same generator, fixed fork of the seed.
  MiniBatch eval_batch(index_t batch_size, std::uint64_t salt = 0) const;

  const ZipfSampler& sampler(index_t table) const {
    return samplers_[static_cast<std::size_t>(table)];
  }

  /// Rotates table `t`'s popularity ranks for subsequent draws: the index
  /// that held rank r now behaves as rank (r + offset) % n, so the hot set
  /// migrates through the vocabulary while every index keeps its teacher
  /// score. Offset 0 (the default) is bitwise-identical to the stationary
  /// generator. This is the hook DriftingDataset drives (data/drift.hpp).
  void set_rank_offset(index_t table, index_t offset);
  index_t rank_offset(index_t table) const {
    return rank_offset_[static_cast<std::size_t>(table)];
  }

  /// The teacher's hidden affinity score for (table, row); exposed so tests
  /// can verify label structure.
  float teacher_score(index_t table, index_t row) const;

 private:
  MiniBatch make_batch(index_t batch_size, Prng& rng, index_t session) const;
  index_t draw_index(index_t table, Prng& rng, index_t session) const;
  float label_logit(const float* dense, const std::vector<index_t>& idx) const;

  DatasetSpec spec_;
  Prng rng_;
  std::uint64_t teacher_seed_;
  std::vector<ZipfSampler> samplers_;
  std::vector<index_t> rank_offset_;  // per-table popularity rotation
  std::vector<float> dense_teacher_;  // teacher weights for dense features
  float teacher_bias_ = 0.0f;
  index_t batches_served_ = 0;
};

}  // namespace elrec
