#include "data/drift.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace elrec {
namespace {

// splitmix64 finalizer — the schedule's only source of randomness, keyed on
// (seed, table, step) so offsets are a pure function of the schedule.
std::uint64_t drift_hash(std::uint64_t seed, std::uint64_t table,
                         std::uint64_t step) {
  std::uint64_t x = seed ^ (table * 0x9e3779b97f4a7c15ULL) ^
                    (step * 0xbf58476d1ce4e5b9ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

DriftSchedule::DriftSchedule(DriftScheduleConfig config,
                             std::vector<index_t> table_rows)
    : config_(config), table_rows_(std::move(table_rows)) {
  ELREC_CHECK(config_.period_batches >= 0,
              "drift period must be non-negative");
  ELREC_CHECK(config_.max_step_fraction >= 0.0 &&
                  config_.max_step_fraction <= 1.0,
              "drift step fraction must be in [0, 1]");
  for (index_t rows : table_rows_) {
    ELREC_CHECK(rows > 0, "drift schedule needs non-empty tables");
  }
}

index_t DriftSchedule::offset_at(index_t table, index_t step) const {
  ELREC_CHECK(table >= 0 &&
                  table < static_cast<index_t>(table_rows_.size()),
              "drift table out of range");
  if (config_.period_batches <= 0 || step <= 0) return 0;
  const index_t rows = table_rows_[static_cast<std::size_t>(table)];
  const auto max_step = static_cast<std::uint64_t>(std::max(
      1.0, std::floor(config_.max_step_fraction * static_cast<double>(rows))));
  std::uint64_t offset = 0;
  for (index_t k = 1; k <= step; ++k) {
    // Stride in [1, max_step]; summed strides make drift cumulative.
    offset += 1 + drift_hash(config_.seed,
                             static_cast<std::uint64_t>(table),
                             static_cast<std::uint64_t>(k)) %
                      max_step;
  }
  return static_cast<index_t>(offset % static_cast<std::uint64_t>(rows));
}

DriftingDataset::DriftingDataset(DatasetSpec spec, std::uint64_t seed,
                                 DriftScheduleConfig drift)
    : base_(std::move(spec), seed),
      schedule_(drift, base_.spec().table_rows) {}

void DriftingDataset::apply_step(index_t step) {
  for (index_t t = 0; t < base_.spec().num_tables(); ++t) {
    base_.set_rank_offset(t, schedule_.offset_at(t, step));
  }
  applied_step_ = step;
}

MiniBatch DriftingDataset::next_batch(index_t batch_size) {
  const index_t step = schedule_.step_at(batches_served_);
  if (step != applied_step_) apply_step(step);
  ++batches_served_;
  return base_.next_batch(batch_size);
}

}  // namespace elrec
