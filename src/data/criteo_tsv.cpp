#include "data/criteo_tsv.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace elrec {

CriteoTsvReader::CriteoTsvReader(const std::string& path,
                                 CriteoTsvOptions options)
    : options_(std::move(options)) {
  auto file = std::make_unique<std::ifstream>(path);
  ELREC_CHECK(file->good(), "cannot open " + path);
  stream_ = std::move(file);
  ELREC_CHECK(!options_.table_rows.empty(), "need at least one table");
}

CriteoTsvReader::CriteoTsvReader(std::unique_ptr<std::istream> stream,
                                 CriteoTsvOptions options)
    : options_(std::move(options)), stream_(std::move(stream)) {
  ELREC_CHECK(stream_ != nullptr, "null stream");
  ELREC_CHECK(!options_.table_rows.empty(), "need at least one table");
}

index_t CriteoTsvReader::hash_categorical(std::string_view value,
                                          index_t modulus) {
  // FNV-1a over the raw bytes; stable across runs and platforms.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : value) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return static_cast<index_t>(h % static_cast<std::uint64_t>(modulus));
}

bool CriteoTsvReader::parse_line(const std::string& line, float* dense,
                                 std::vector<index_t>& cats,
                                 float* label) const {
  const auto num_tables = static_cast<index_t>(options_.table_rows.size());
  cats.clear();
  index_t field = 0;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t tab = line.find('\t', pos);
    const std::size_t end = tab == std::string::npos ? line.size() : tab;
    const std::string_view token(line.data() + pos, end - pos);

    if (field == 0) {
      if (token != "0" && token != "1") return false;
      *label = token == "1" ? 1.0f : 0.0f;
    } else if (field <= options_.num_dense) {
      float v = 0.0f;
      if (!token.empty()) {
        char* parse_end = nullptr;
        v = std::strtof(std::string(token).c_str(), &parse_end);
        if (parse_end == nullptr || *parse_end != '\0') return false;
      }
      if (options_.log_transform_dense) {
        v = std::log1p(std::max(v, 0.0f));
      }
      dense[field - 1] = v;
    } else if (field <= options_.num_dense + num_tables) {
      const index_t t = field - options_.num_dense - 1;
      // Empty categorical -> reserved bucket 0.
      cats.push_back(token.empty()
                         ? 0
                         : hash_categorical(
                               token,
                               options_.table_rows[static_cast<std::size_t>(t)]));
    } else {
      return false;  // too many fields
    }
    ++field;
    if (tab == std::string::npos) break;
    pos = tab + 1;
  }
  return field == 1 + options_.num_dense + num_tables;
}

index_t CriteoTsvReader::next_batch(index_t batch_size, MiniBatch& out) {
  const auto num_tables = static_cast<index_t>(options_.table_rows.size());
  std::vector<float> dense_rows;
  std::vector<std::vector<index_t>> cats(static_cast<std::size_t>(num_tables));
  out.labels.clear();

  std::string line;
  std::vector<index_t> line_cats;
  std::vector<float> line_dense(static_cast<std::size_t>(options_.num_dense));
  while (static_cast<index_t>(out.labels.size()) < batch_size &&
         std::getline(*stream_, line)) {
    // Tolerate CRLF files: the trailing \r would otherwise corrupt the last
    // categorical's hash.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    float label = 0.0f;
    if (!parse_line(line, line_dense.data(), line_cats, &label)) {
      ++skipped_;
      ELREC_CHECK(skipped_ <= options_.max_skipped_lines,
                  "too many malformed lines (" + std::to_string(skipped_) +
                      ") — wrong format or corrupt file");
      continue;
    }
    dense_rows.insert(dense_rows.end(), line_dense.begin(), line_dense.end());
    for (index_t t = 0; t < num_tables; ++t) {
      cats[static_cast<std::size_t>(t)].push_back(
          line_cats[static_cast<std::size_t>(t)]);
    }
    out.labels.push_back(label);
  }

  const auto n = static_cast<index_t>(out.labels.size());
  out.dense.resize(n, options_.num_dense);
  std::copy(dense_rows.begin(), dense_rows.end(), out.dense.data());
  out.sparse.clear();
  for (index_t t = 0; t < num_tables; ++t) {
    out.sparse.push_back(IndexBatch::one_per_sample(
        std::move(cats[static_cast<std::size_t>(t)])));
  }
  return n;
}

}  // namespace elrec
