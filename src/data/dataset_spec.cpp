#include "data/dataset_spec.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace elrec {

index_t DatasetSpec::total_rows() const {
  index_t total = 0;
  for (index_t r : table_rows) total += r;
  return total;
}

std::size_t DatasetSpec::embedding_bytes(index_t dim) const {
  return static_cast<std::size_t>(total_rows()) *
         static_cast<std::size_t>(dim) * sizeof(float);
}

DatasetSpec DatasetSpec::scaled(index_t factor) const {
  ELREC_CHECK(factor >= 1, "scale factor must be >= 1");
  DatasetSpec out = *this;
  out.name = name + "-scaled/" + std::to_string(factor);
  for (auto& r : out.table_rows) r = std::max<index_t>(8, r / factor);
  out.num_samples = std::max<index_t>(1024, num_samples / factor);
  return out;
}

DatasetSpec criteo_kaggle_spec() {
  DatasetSpec spec;
  spec.name = "Criteo Kaggle";
  spec.num_dense = 13;
  // Published cardinalities of the 26 categorical features.
  spec.table_rows = {1460,    583,     10131227, 2202608, 305,    24,
                     12517,   633,     3,        93145,   5683,   8351593,
                     3194,    27,      14992,    5461306, 10,     5652,
                     2173,    4,       7046547,  18,      15,     286181,
                     105,     142572};
  spec.num_samples = 45840617;
  // Exponent chosen so batch-4096 unique-index counts match the Fig. 4(b)
  // gap (real CTR logs are more skewed than textbook Zipf ~1).
  spec.zipf_s = 1.2;
  return spec;
}

DatasetSpec criteo_terabyte_spec() {
  DatasetSpec spec;
  spec.name = "Criteo Terabyte";
  spec.num_dense = 13;
  // Cardinalities with the standard 40M frequency cap (as used by the
  // open-source DLRM benchmark the paper builds on).
  spec.table_rows = {39884406, 39043,   17289,    7420,     20263, 3,
                     7120,     1543,    63,       38532951, 2953546, 403346,
                     10,       2208,    11938,    155,      4,      976,
                     14,       39979771, 25641295, 39664984, 585935, 12972,
                     108,      36};
  spec.num_samples = 4373472329;
  spec.zipf_s = 1.25;
  return spec;
}

DatasetSpec avazu_spec() {
  DatasetSpec spec;
  spec.name = "Avazu";
  spec.num_dense = 1;
  // Approximate cardinalities of Avazu's 20 categorical features.
  spec.table_rows = {7,    7,    4737, 7745, 26,  8552, 559, 36,   2686408, 6729486,
                     8251, 5,    4,    2626, 8,   9,    435, 4,    68,      172};
  spec.num_samples = 40428967;
  spec.zipf_s = 1.2;
  return spec;
}

std::vector<DatasetSpec> paper_dataset_specs() {
  return {avazu_spec(), criteo_terabyte_spec(), criteo_kaggle_spec()};
}

}  // namespace elrec
