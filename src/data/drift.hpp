// Streaming, non-stationary variant of the Criteo-like generator.
//
// Real recommendation traffic is not stationary: which items are popular
// moves over hours and days, which is exactly what makes closed-loop online
// training (src/online) worth doing — a model frozen at deploy time decays
// as the hot set migrates away from the rows it learned well and the
// serving caches warmed at startup stop matching the traffic.
//
// DriftingDataset reproduces that as *popularity drift*: every
// `period_batches` batches the per-table popularity ranking rotates by a
// seeded pseudo-random stride (SyntheticDataset::set_rank_offset), so the
// Zipf head slides through the vocabulary while every index keeps its
// hidden teacher score — item semantics are fixed, only "what is hot"
// changes. The schedule is a pure function of (seed, table, step): two
// datasets with the same spec/seed/schedule produce bitwise-identical
// streams regardless of wall clock or thread count, so online-training runs
// stay exactly reproducible.
#pragma once

#include "data/synthetic.hpp"

namespace elrec {

struct DriftScheduleConfig {
  /// Batches between drift steps. 0 disables drift entirely (the stream is
  /// then bitwise-identical to the stationary SyntheticDataset).
  index_t period_batches = 64;
  /// Largest rank rotation per step, as a fraction of the table's rows.
  /// Each step advances the offset by a seeded stride in [1, max(1,
  /// fraction * rows)]; small fractions give gradual drift, 0.5+ scrambles
  /// the hot set within a couple of steps.
  double max_step_fraction = 0.05;
  std::uint64_t seed = 0x0d21f7ULL;
};

/// Deterministic per-table drift schedule: cumulative rank-rotation offsets
/// derived by hashing (seed, table, step). Pure — no internal state — so
/// any batch position can be queried directly.
class DriftSchedule {
 public:
  DriftSchedule(DriftScheduleConfig config, std::vector<index_t> table_rows);

  const DriftScheduleConfig& config() const { return config_; }

  /// Drift step active at batch index `batch` (0-based).
  index_t step_at(index_t batch) const {
    return config_.period_batches <= 0 ? 0 : batch / config_.period_batches;
  }

  /// Cumulative rank-rotation offset of `table` at drift step `step`
  /// (already reduced modulo the table's rows). O(step) — steps advance
  /// every period_batches batches, so callers cache per-table offsets and
  /// recompute only on a step change.
  index_t offset_at(index_t table, index_t step) const;

 private:
  DriftScheduleConfig config_;
  std::vector<index_t> table_rows_;
};

/// SyntheticDataset with the drift schedule applied between batches. The
/// stream is infinite and single-threaded like the base generator;
/// determinism is the (seed, drift config) pair.
class DriftingDataset {
 public:
  DriftingDataset(DatasetSpec spec, std::uint64_t seed,
                  DriftScheduleConfig drift);

  const DatasetSpec& spec() const { return base_.spec(); }
  const DriftSchedule& schedule() const { return schedule_; }
  index_t batches_served() const { return batches_served_; }

  /// Next training batch; advances the drift schedule first when a period
  /// boundary was crossed.
  MiniBatch next_batch(index_t batch_size);

  /// Current rank-rotation offset of one table (for tests/diagnostics).
  index_t current_offset(index_t table) const {
    return base_.rank_offset(table);
  }

  /// The wrapped stationary generator (eval batches, samplers, teacher).
  /// Mutating its rank offsets directly would desynchronize the schedule;
  /// use next_batch() to advance.
  const SyntheticDataset& base() const { return base_; }

  /// Deterministic evaluation set drawn from the *current* drift position.
  MiniBatch eval_batch(index_t batch_size, std::uint64_t salt = 0) const {
    return base_.eval_batch(batch_size, salt);
  }

 private:
  void apply_step(index_t step);

  SyntheticDataset base_;
  DriftSchedule schedule_;
  index_t batches_served_ = 0;
  index_t applied_step_ = 0;
};

}  // namespace elrec
