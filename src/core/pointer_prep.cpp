#include "core/pointer_prep.hpp"

namespace elrec {

void prepare_prefix_pointers(const TTCores& cores,
                             std::span<const index_t> rows, ReuseBuffer& buffer,
                             PointerPrepResult& out) {
  const TTShape& shape = cores.shape();
  ELREC_CHECK(shape.num_cores() >= 3,
              "Algorithm 1 reuse path needs at least 3 TT cores");
  const index_t m2 = shape.row_factor(1);
  // Everything after the first two cores divides out of the prefix id
  // (generalizes the paper's "index / length_3" to d cores).
  index_t suffix = 1;
  for (int k = 2; k < shape.num_cores(); ++k) suffix *= shape.row_factor(k);

  const std::size_t n = rows.size();
  out.slot_of.resize(n);
  out.ptr_a.resize(n);
  out.ptr_b.resize(n);
  out.ptr_c.resize(n);

  buffer.begin_batch(static_cast<index_t>(n));
  // Paper Algorithm 1 lines 2-10: each position derives its Buf_idx by
  // dividing out the last core's length, checks Buf_flag, and fills the
  // pointer triple only when it owns the computation. The claim is a serial
  // scan here (the GPU version uses one thread per index with an atomic
  // flag); the emitted pointer lists are identical.
  for (std::size_t i = 0; i < n; ++i) {
    const index_t row = rows[i];
    const index_t prefix = row / suffix;  // Buf_idx = index / length_3
    const auto [slot, first] = buffer.claim(prefix);
    out.slot_of[i] = slot;
    if (first) {
      const index_t i1 = prefix / m2;
      const index_t i2 = prefix % m2;
      // A = C1[i1] viewed (n_1 x R_1); B = C2[i2] (R_1 x n_2 R_2);
      // C = slot, (n_1 x n_2 R_2) == (n_1 n_2) x R_2.
      out.ptr_a[i] = cores.slice(0, i1);
      out.ptr_b[i] = cores.slice(1, i2);
      out.ptr_c[i] = buffer.slot_data(slot);
    } else {
      out.ptr_a[i] = nullptr;
      out.ptr_b[i] = nullptr;
      out.ptr_c[i] = nullptr;  // Buf_flag hit: another position computes it
    }
  }
  out.unique_prefixes = buffer.num_slots();
}

}  // namespace elrec
