// Algorithm 1: pointer preparation for the batched-GEMM reuse kernel.
//
// For every index in the batch, computes its prefix id (index / m_3), claims
// a reuse-buffer slot, and emits the (Ptr_a, Ptr_b, Ptr_c) triples consumed
// by batched_gemm(). Positions whose prefix product is computed by an
// earlier position get Ptr_c == nullptr — exactly the Buf_flag skip of the
// paper, which batched_gemm() honors.
#pragma once

#include <span>

#include "core/reuse_buffer.hpp"
#include "tt/tt_cores.hpp"

namespace elrec {

struct PointerPrepResult {
  // Per input position: the reuse-buffer slot holding its prefix product.
  std::vector<index_t> slot_of;
  // Pointer triples for one batched-GEMM launch computing C1[i1] * C2[i2].
  // ptr_c[i] == nullptr marks a skipped (reused) product.
  std::vector<const float*> ptr_a;
  std::vector<const float*> ptr_b;
  std::vector<float*> ptr_c;
  index_t unique_prefixes = 0;
};

/// Runs Algorithm 1 for a 3-core TT table. `rows` are the (already
/// reordered) embedding row indices of the batch.
void prepare_prefix_pointers(const TTCores& cores, std::span<const index_t> rows,
                             ReuseBuffer& buffer, PointerPrepResult& out);

}  // namespace elrec
