// Reuse buffer for batch-level intermediate-result sharing (paper §III-A).
//
// Holds one slot per unique (i_1, i_2) prefix seen in the current batch; slot
// s stores the product C1[i1] * C2[i2] as an (n_1 * n_2) x R_2 row-major
// block. Slots are recycled every batch; the epoch-stamped claim array lets
// the pointer-preparation step detect first occurrences without clearing
// O(m_1 * m_2) flags per batch.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

class ReuseBuffer {
 public:
  /// num_prefixes = m_1 * m_2 (all possible prefix ids);
  /// slot_floats = n_1 * n_2 * R_2 (size of one intermediate product).
  ReuseBuffer(index_t num_prefixes, index_t slot_floats)
      : slot_floats_(slot_floats),
        stamp_(static_cast<std::size_t>(num_prefixes), 0),
        slot_of_prefix_(static_cast<std::size_t>(num_prefixes), -1) {}

  /// Starts a new batch: invalidates all previous claims in O(1) and
  /// guarantees capacity for `max_slots` slots. Capacity MUST be reserved
  /// here, before any slot_data() pointer is handed out — growing the
  /// backing store later would dangle the pointer lists already prepared
  /// for the batched-GEMM launch.
  void begin_batch(index_t max_slots) {
    ++epoch_;
    num_slots_ = 0;
    const auto needed =
        static_cast<std::size_t>(max_slots) * static_cast<std::size_t>(slot_floats_);
    if (storage_.size() < needed) storage_.resize(needed);
  }

  /// Claims the slot for `prefix`. Returns {slot, true} on first claim this
  /// batch (the caller must schedule the GEMM that fills it), {slot, false}
  /// when another position already claimed it (reuse — paper's Buf_flag hit).
  std::pair<index_t, bool> claim(index_t prefix) {
    auto& stamp = stamp_[static_cast<std::size_t>(prefix)];
    if (stamp == epoch_) {
      return {slot_of_prefix_[static_cast<std::size_t>(prefix)], false};
    }
    stamp = epoch_;
    const index_t slot = num_slots_++;
    ELREC_CHECK(static_cast<std::size_t>(slot + 1) * slot_floats_ <=
                    storage_.size(),
                "more claims than begin_batch() reserved");
    slot_of_prefix_[static_cast<std::size_t>(prefix)] = slot;
    return {slot, true};
  }

  float* slot_data(index_t slot) {
    return storage_.data() + static_cast<std::size_t>(slot) * slot_floats_;
  }
  const float* slot_data(index_t slot) const {
    return storage_.data() + static_cast<std::size_t>(slot) * slot_floats_;
  }

  index_t num_slots() const { return num_slots_; }
  index_t slot_floats() const { return slot_floats_; }

 private:
  index_t slot_floats_;
  std::uint64_t epoch_ = 0;
  index_t num_slots_ = 0;
  std::vector<std::uint64_t> stamp_;
  std::vector<index_t> slot_of_prefix_;
  std::vector<float> storage_;
};

}  // namespace elrec
