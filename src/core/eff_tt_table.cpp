#include "core/eff_tt_table.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "tensor/batched_gemm.hpp"
#include "tensor/gemm.hpp"

namespace elrec {
namespace {

TTShape check_cores(TTShape shape) {
  ELREC_CHECK(shape.num_cores() >= 3,
              "EffTTTable's reuse design needs at least 3 cores (the paper's "
              "case is exactly 3); use TTTable for 2-core decompositions");
  return shape;
}

index_t prefix_count(const TTShape& shape) {
  return shape.row_factor(0) * shape.row_factor(1);
}

index_t prefix_floats(const TTShape& shape) {
  return shape.col_factor(0) * shape.col_factor(1) * shape.rank(2);
}

// Reuse-buffer effectiveness across every EffTTTable in the process: a
// "hit" is a row whose C1*C2 prefix product was already claimed by an
// earlier row of the same launch, a "miss" is a slot actually computed.
struct ReuseCounters {
  obs::Counter& hits;
  obs::Counter& misses;
};

ReuseCounters& reuse_counters() {
  auto& reg = obs::MetricsRegistry::global();
  static ReuseCounters c{reg.counter("efftt.reuse.hits"),
                         reg.counter("efftt.reuse.misses")};
  return c;
}

}  // namespace

EffTTTable::EffTTTable(index_t num_rows, TTShape shape, Prng& rng,
                       EffTTConfig config, float init_row_std)
    : num_rows_(num_rows),
      config_(config),
      cores_(check_cores(std::move(shape))),
      reuse_buffer_(prefix_count(cores_.shape()), prefix_floats(cores_.shape())) {
  ELREC_CHECK(num_rows > 0, "table must be non-empty");
  ELREC_CHECK(cores_.shape().padded_rows() >= num_rows,
              "row factorization does not cover num_rows");
  cores_.init_normal(rng, init_row_std);
}

EffTTTable::EffTTTable(index_t num_rows, TTCores cores, EffTTConfig config)
    : num_rows_(num_rows),
      config_(config),
      cores_((check_cores(cores.shape()), std::move(cores))),
      reuse_buffer_(prefix_count(cores_.shape()), prefix_floats(cores_.shape())) {
  ELREC_CHECK(cores_.shape().padded_rows() >= num_rows,
              "row factorization does not cover num_rows");
}

void EffTTTable::set_index_bijection(std::vector<index_t> mapping) {
  ELREC_CHECK(static_cast<index_t>(mapping.size()) == num_rows_,
              "bijection must cover every row");
  std::vector<bool> seen(static_cast<std::size_t>(num_rows_), false);
  for (index_t v : mapping) {
    ELREC_CHECK(v >= 0 && v < num_rows_, "bijection value out of range");
    ELREC_CHECK(!seen[static_cast<std::size_t>(v)], "bijection is not 1:1");
    seen[static_cast<std::size_t>(v)] = true;
  }
  bijection_ = std::move(mapping);
  forward_cache_valid_ = false;
}

void EffTTTable::remap_rows(const std::vector<index_t>& in,
                            std::vector<index_t>& out) const {
  out.resize(in.size());
  if (bijection_.empty()) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = bijection_[static_cast<std::size_t>(in[i])];
  }
}

index_t EffTTTable::suffix_length() const {
  index_t suffix = 1;
  for (int k = 2; k < cores_.shape().num_cores(); ++k) {
    suffix *= cores_.shape().row_factor(k);
  }
  return suffix;
}

void EffTTTable::fill_prefix_products(std::span<const index_t> rows,
                                      ReuseBuffer& reuse,
                                      PointerPrepResult& prep) const {
  TRACE_SPAN("efftt.prefix");
  const TTShape& shape = cores_.shape();
  prepare_prefix_pointers(cores_, rows, reuse, prep);
  reuse_counters().misses.add(static_cast<std::size_t>(prep.unique_prefixes));
  reuse_counters().hits.add(rows.size() -
                            static_cast<std::size_t>(prep.unique_prefixes));
  // One batched-GEMM launch fills every claimed slot:
  //   slot = C1[i1] (n1 x R1) * C2[i2] (R1 x n2 R2).
  BatchedGemmShape g;
  g.m = shape.col_factor(0);
  g.n = shape.col_factor(1) * shape.rank(2);
  g.k = shape.rank(1);
  g.lda = g.k;
  g.ldb = g.n;
  g.ldc = g.n;
  batched_gemm(g, prep.ptr_a, prep.ptr_b, prep.ptr_c);
}

void EffTTTable::compute_prefix_products(std::span<const index_t> rows) {
  fill_prefix_products(rows, reuse_buffer_, prep_);
  stats_.forward_gemms += static_cast<std::size_t>(prep_.unique_prefixes);
}

// Extends a row's prefix product (n1 n2 x R2) through cores 2..d-1 into the
// final embedding row at `dst`. `chain` receives intermediate prefixes
// A_2..A_{d-2} if non-null (needed by the generic backward); scratch vectors
// are caller-provided to avoid per-row allocation.
void EffTTTable::chain_suffix(index_t row, const float* p12, float* dst,
                              std::vector<std::vector<float>>* chain,
                              std::vector<float>& sa,
                              std::vector<float>& sb) const {
  const TTShape& shape = cores_.shape();
  const int d = shape.num_cores();
  std::vector<index_t> parts(static_cast<std::size_t>(d));
  shape.factorize_row(row, parts);

  index_t p = shape.col_factor(0) * shape.col_factor(1);
  sa.assign(p12, p12 + p * shape.rank(2));
  for (int k = 2; k < d; ++k) {
    const index_t rk = shape.rank(k);
    const index_t cols = cores_.slice_cols(k);  // n_k * R_{k+1}
    float* out = nullptr;
    if (k == d - 1) {
      out = dst;
      gemm(Trans::kNo, Trans::kNo, p, cols, rk, 1.0f, sa.data(), rk,
           cores_.slice(k, parts[static_cast<std::size_t>(k)]), cols, 0.0f,
           out, cols);
    } else {
      sb.assign(static_cast<std::size_t>(p) * cols, 0.0f);
      gemm(Trans::kNo, Trans::kNo, p, cols, rk, 1.0f, sa.data(), rk,
           cores_.slice(k, parts[static_cast<std::size_t>(k)]), cols, 0.0f,
           sb.data(), cols);
      if (chain != nullptr) {
        (*chain)[static_cast<std::size_t>(k)] = sb;
      }
      sa.swap(sb);
    }
    p *= shape.col_factor(k);
  }
}

std::size_t EffTTTable::expand_rows_from_prefixes(
    std::span<const index_t> rows, const ReuseBuffer& reuse,
    const PointerPrepResult& prep, Matrix& dst, std::vector<float>& sa,
    std::vector<float>& sb) const {
  const TTShape& shape = cores_.shape();
  const int d = shape.num_cores();
  dst.resize(static_cast<index_t>(rows.size()), shape.dim());

  if (d == 3) {
    // Fast path — the paper's case: one more batched launch,
    //   row_i = P12(slot) (n1 n2 x R2) * C3[i3] (R2 x n3).
    const index_t m3 = shape.row_factor(2);
    const index_t n12 = shape.col_factor(0) * shape.col_factor(1);
    const index_t n3 = shape.col_factor(2);
    const index_t r2 = shape.rank(2);
    std::vector<const float*> pa(rows.size());
    std::vector<const float*> pb(rows.size());
    std::vector<float*> pc(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      pa[i] = reuse.slot_data(prep.slot_of[i]);
      pb[i] = cores_.slice(2, rows[i] % m3);
      pc[i] = dst.row(static_cast<index_t>(i));
    }
    BatchedGemmShape g;
    g.m = n12;
    g.n = n3;
    g.k = r2;
    g.lda = r2;
    g.ldb = n3;
    g.ldc = n3;
    batched_gemm(g, pa, pb, pc);
    return rows.size();
  }

  // Generic d: chain the remaining cores per row.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    chain_suffix(rows[i], reuse.slot_data(prep.slot_of[i]),
                 dst.row(static_cast<index_t>(i)), nullptr, sa, sb);
  }
  return rows.size() * static_cast<std::size_t>(d - 2);
}

void EffTTTable::compute_rows_from_prefixes(std::span<const index_t> rows,
                                            Matrix& dst) {
  std::vector<float> sa, sb;
  stats_.forward_gemms +=
      expand_rows_from_prefixes(rows, reuse_buffer_, prep_, dst, sa, sb);
}

void EffTTTable::forward(const IndexBatch& batch, Matrix& out) {
  TRACE_SPAN("efftt.forward");
  batch.validate(num_rows_);
  stats_ = Stats{};
  stats_.total_indices = batch.num_indices();

  remap_rows(batch.indices, cached_rows_);
  const index_t b = batch.batch_size();
  const index_t n = dim();
  out.resize(b, n);

  if (!config_.intermediate_reuse) {
    forward_no_reuse(batch, cached_rows_, out);
    forward_cache_valid_ = false;
    return;
  }

  // Two-level reuse: (1) dedup identical rows across the batch,
  // (2) share C1*C2 prefix products among the unique rows.
  {
    TRACE_SPAN("efftt.dedup");
    cached_unique_ = build_unique_index_map(cached_rows_);
  }
  stats_.unique_rows = static_cast<index_t>(cached_unique_.unique.size());

  compute_prefix_products(cached_unique_.unique);
  stats_.unique_prefixes = prep_.unique_prefixes;
  unique_slots_ = prep_.slot_of;

  {
    TRACE_SPAN("efftt.expand");
    compute_rows_from_prefixes(cached_unique_.unique, unique_rows_buf_);
  }

  {
    TRACE_SPAN("efftt.pool");
    pool_unique_rows(batch, cached_unique_, unique_rows_buf_, out);
  }
  forward_cache_valid_ = true;
}

void EffTTTable::pool_unique_rows(const IndexBatch& batch,
                                  const UniqueIndexMap& unique,
                                  const Matrix& unique_rows, Matrix& out) {
  // Sum pooling (paper Step 4), gathering from the deduped rows. Per-bag
  // sums run in ascending position order, so the result is independent of
  // the thread count AND of how the batch was composed (a request pooled
  // alone or inside a coalesced micro-batch sums identically).
  const index_t b = batch.batch_size();
  const index_t n = out.cols();
#pragma omp parallel for schedule(static) if (b >= 256)
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    for (index_t pos = batch.bag_begin(s); pos < batch.bag_end(s); ++pos) {
      const float* src =
          unique_rows.row(unique.occurrence[static_cast<std::size_t>(pos)]);
#pragma omp simd
      for (index_t j = 0; j < n; ++j) dst[j] += src[j];
    }
  }
}

std::unique_ptr<ILookupContext> EffTTTable::make_lookup_context() const {
  return std::make_unique<EffTTLookupContext>(prefix_count(cores_.shape()),
                                              prefix_floats(cores_.shape()));
}

void EffTTTable::lookup(const IndexBatch& batch, Matrix& out,
                        ILookupContext* ctx) const {
  TRACE_SPAN("efftt.lookup");
  auto* ws = dynamic_cast<EffTTLookupContext*>(ctx);
  ELREC_CHECK(ws != nullptr,
              "EffTTTable::lookup needs the context returned by "
              "make_lookup_context() — one per concurrent reader");
  batch.validate(num_rows_);
  remap_rows(batch.indices, ws->rows);
  ws->unique = build_unique_index_map(ws->rows);
  fill_prefix_products(ws->unique.unique, ws->reuse, ws->prep);
  expand_rows_from_prefixes(ws->unique.unique, ws->reuse, ws->prep,
                            ws->unique_rows, ws->sa, ws->sb);
  out.resize(batch.batch_size(), dim());
  pool_unique_rows(batch, ws->unique, ws->unique_rows, out);
}

void EffTTTable::forward_no_reuse(const IndexBatch& batch,
                                  const std::vector<index_t>& rows,
                                  Matrix& out) {
  // Ablation path: every occurrence recomputes its full chain.
  const TTShape& shape = cores_.shape();
  const index_t m2 = shape.row_factor(1);
  const index_t suffix = suffix_length();
  const index_t n1 = shape.col_factor(0);
  const index_t n2r2 = shape.col_factor(1) * shape.rank(2);
  const index_t n12 = shape.col_factor(0) * shape.col_factor(1);
  const index_t r1 = shape.rank(1);
  const index_t n = dim();

  Matrix occ_rows(static_cast<index_t>(rows.size()), n);
  std::vector<float> p12(static_cast<std::size_t>(n12) * shape.rank(2));
  std::vector<float> sa, sb;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const index_t row = rows[i];
    const index_t prefix = row / suffix;
    gemm(Trans::kNo, Trans::kNo, n1, n2r2, r1, 1.0f,
         cores_.slice(0, prefix / m2), r1, cores_.slice(1, prefix % m2), n2r2,
         0.0f, p12.data(), n2r2);
    chain_suffix(row, p12.data(), occ_rows.row(static_cast<index_t>(i)),
                 nullptr, sa, sb);
    stats_.forward_gemms +=
        static_cast<std::size_t>(shape.num_cores() - 1);
  }
  stats_.unique_rows = static_cast<index_t>(rows.size());
  stats_.unique_prefixes = static_cast<index_t>(rows.size());

  const index_t b = batch.batch_size();
  for (index_t s = 0; s < b; ++s) {
    float* dst = out.row(s);
    for (index_t pos = batch.bag_begin(s); pos < batch.bag_end(s); ++pos) {
      const float* src = occ_rows.row(pos);
#pragma omp simd
      for (index_t j = 0; j < n; ++j) dst[j] += src[j];
    }
  }
}

void EffTTTable::init_grad_accum(GradAccum& acc) const {
  const TTShape& shape = cores_.shape();
  const int d = shape.num_cores();
  acc.core_grads.resize(static_cast<std::size_t>(d));
  acc.stamp.resize(static_cast<std::size_t>(d));
  acc.touched.resize(static_cast<std::size_t>(d));
  for (int k = 0; k < d; ++k) {
    acc.core_grads[static_cast<std::size_t>(k)].resize(cores_.core(k).rows(),
                                                       cores_.core(k).cols());
    acc.stamp[static_cast<std::size_t>(k)].assign(
        static_cast<std::size_t>(shape.row_factor(k)), 0);
  }
}

float* EffTTTable::grad_slice(GradAccum& acc, int k, index_t ik) {
  auto& stamps = acc.stamp[static_cast<std::size_t>(k)];
  Matrix& g = acc.core_grads[static_cast<std::size_t>(k)];
  const index_t rk = cores_.shape().rank(k);
  float* block = g.row(ik * rk);
  if (stamps[static_cast<std::size_t>(ik)] != acc.epoch) {
    stamps[static_cast<std::size_t>(ik)] = acc.epoch;
    acc.touched[static_cast<std::size_t>(k)].push_back(ik);
    std::fill(block, block + rk * g.cols(), 0.0f);
  }
  return block;
}

void EffTTTable::accumulate_row_gradient(GradAccum& acc,
                                         BackwardScratch& scratch,
                                         index_t row, const float* p12,
                                         const float* g) {
  const TTShape& shape = cores_.shape();
  const int d = shape.num_cores();
  const index_t n1 = shape.col_factor(0);
  const index_t n2r2 = shape.col_factor(1) * shape.rank(2);
  const index_t r1 = shape.rank(1);

  scratch.parts.resize(static_cast<std::size_t>(d));
  shape.factorize_row(row, scratch.parts);

  // Forward chain prefixes beyond P12 (needed when d > 3): chain[k] holds
  // A_k (P_k x R_{k+1}) for k in [2, d-2]; A_1 == p12.
  if (d > 3) {
    scratch.chain.resize(static_cast<std::size_t>(d));
    scratch.row_out.resize(static_cast<std::size_t>(shape.dim()));
    chain_suffix(row, p12, scratch.row_out.data(), &scratch.chain, scratch.sa,
                 scratch.sb);
  }

  // Backward sweep over cores d-1 .. 2: dA_{k} viewed (P_{k-1} x n_k R_{k+1});
  // dC_k[i_k] += A_{k-1}^T * view; dA_{k-1} = view * C_k[i_k]^T.
  scratch.d_prefix.assign(g, g + shape.dim());
  index_t pk = shape.dim();  // P_k as we sweep down
  for (int k = d - 1; k >= 2; --k) {
    const index_t cols = cores_.slice_cols(k);  // n_k * R_{k+1}
    const index_t rk = shape.rank(k);
    pk /= shape.col_factor(k);  // P_{k-1}
    const float* a_prev =
        k == 2 ? p12 : scratch.chain[static_cast<std::size_t>(k - 1)].data();
    gemm(Trans::kYes, Trans::kNo, rk, cols, pk, 1.0f, a_prev, rk,
         scratch.d_prefix.data(), cols, 1.0f,
         grad_slice(acc, k, scratch.parts[static_cast<std::size_t>(k)]), cols);
    scratch.d_prev.assign(static_cast<std::size_t>(pk) * rk, 0.0f);
    gemm(Trans::kNo, Trans::kYes, pk, rk, cols, 1.0f, scratch.d_prefix.data(),
         cols, cores_.slice(k, scratch.parts[static_cast<std::size_t>(k)]),
         cols, 0.0f, scratch.d_prev.data(), rk);
    scratch.d_prefix.swap(scratch.d_prev);
    acc.gemms += 2;
  }

  // First two cores from W = dP12, viewed (n1 x n2 R2).
  ELREC_DCHECK(static_cast<index_t>(scratch.d_prefix.size()) ==
               n1 * shape.col_factor(1) * shape.rank(2));
  // dC1[i1] += A0^T (R1 x n1) * W-view (n1 x n2 R2); A0 = C0[i0] as n1 x R1.
  gemm(Trans::kYes, Trans::kNo, r1, n2r2, n1, 1.0f,
       cores_.slice(0, scratch.parts[0]), r1, scratch.d_prefix.data(), n2r2,
       1.0f, grad_slice(acc, 1, scratch.parts[1]), n2r2);
  // dC0[i0] += W-view * C1[i1]^T — (n1 x R1), flat == the 1 x (n1 R1) slice.
  gemm(Trans::kNo, Trans::kYes, n1, r1, n2r2, 1.0f, scratch.d_prefix.data(),
       n2r2, cores_.slice(1, scratch.parts[1]), n2r2, 1.0f,
       grad_slice(acc, 0, scratch.parts[0]), r1);
  acc.gemms += 2;
}

void EffTTTable::aggregate_unique_gradients(const IndexBatch& batch,
                                            const Matrix& grad_out) {
  const index_t n = dim();
  const index_t u = static_cast<index_t>(cached_unique_.unique.size());
  const std::size_t total = cached_unique_.occurrence.size();

  // Position -> owning sample (bag) of the flat index list.
  sample_of_pos_.resize(total);
  for (index_t s = 0; s < batch.batch_size(); ++s) {
    for (index_t pos = batch.bag_begin(s); pos < batch.bag_end(s); ++pos) {
      sample_of_pos_[static_cast<std::size_t>(pos)] = s;
    }
  }

  // CSR of occurrence positions per unique row; positions stay ascending
  // within a row, so each row's gradient sum has a fixed float order no
  // matter which thread computes it.
  occ_offsets_.assign(static_cast<std::size_t>(u) + 1, 0);
  for (std::size_t pos = 0; pos < total; ++pos) {
    ++occ_offsets_[static_cast<std::size_t>(cached_unique_.occurrence[pos]) + 1];
  }
  for (index_t i = 0; i < u; ++i) {
    occ_offsets_[static_cast<std::size_t>(i) + 1] +=
        occ_offsets_[static_cast<std::size_t>(i)];
  }
  occ_cursor_.assign(occ_offsets_.begin(), occ_offsets_.end() - 1);
  occ_positions_.resize(total);
  for (std::size_t pos = 0; pos < total; ++pos) {
    const auto uid = static_cast<std::size_t>(cached_unique_.occurrence[pos]);
    occ_positions_[static_cast<std::size_t>(occ_cursor_[uid]++)] =
        static_cast<index_t>(pos);
  }

  grad_agg_buf_.resize(u, n);
#pragma omp parallel for schedule(static) if (u >= 64)
  for (index_t i = 0; i < u; ++i) {
    float* dst = grad_agg_buf_.row(i);
    std::fill(dst, dst + n, 0.0f);
    for (index_t t = occ_offsets_[static_cast<std::size_t>(i)];
         t < occ_offsets_[static_cast<std::size_t>(i) + 1]; ++t) {
      const index_t pos = occ_positions_[static_cast<std::size_t>(t)];
      const float* src =
          grad_out.row(sample_of_pos_[static_cast<std::size_t>(pos)]);
#pragma omp simd
      for (index_t j = 0; j < n; ++j) dst[j] += src[j];
    }
  }
}

void EffTTTable::merge_grad_shards() {
  const int d = cores_.shape().num_cores();
  for (int k = 0; k < d; ++k) {
    // Union of the shards' touched slices, walked in fixed shard order so
    // the master touched list (and every sum below) is thread-count-free.
    for (GradAccum& shard : grad_shards_) {
      for (index_t ik : shard.touched[static_cast<std::size_t>(k)]) {
        grad_slice(grad_master_, k, ik);
      }
    }
    const auto& list = grad_master_.touched[static_cast<std::size_t>(k)];
    const index_t rk = cores_.shape().rank(k);
    const index_t block =
        rk * grad_master_.core_grads[static_cast<std::size_t>(k)].cols();
#pragma omp parallel for schedule(static) if (list.size() >= 16)
    for (std::size_t idx = 0; idx < list.size(); ++idx) {
      const index_t ik = list[idx];
      float* dst =
          grad_master_.core_grads[static_cast<std::size_t>(k)].row(ik * rk);
      for (const GradAccum& shard : grad_shards_) {
        if (shard.stamp[static_cast<std::size_t>(k)]
                       [static_cast<std::size_t>(ik)] != shard.epoch) {
          continue;
        }
        const float* src =
            shard.core_grads[static_cast<std::size_t>(k)].row(ik * rk);
#pragma omp simd
        for (index_t t = 0; t < block; ++t) dst[t] += src[t];
      }
    }
  }
  for (const GradAccum& shard : grad_shards_) {
    grad_master_.gemms += shard.gemms;
  }
}

void EffTTTable::backward_and_update(const IndexBatch& batch,
                                     const Matrix& grad_out, float lr) {
  TRACE_SPAN("efftt.backward");
  ELREC_CHECK(grad_out.rows() == batch.batch_size() && grad_out.cols() == dim(),
              "grad_out shape mismatch");
  const TTShape& shape = cores_.shape();

  if (grad_master_.core_grads.empty()) init_grad_accum(grad_master_);
  ++grad_master_.epoch;
  for (auto& t : grad_master_.touched) t.clear();
  grad_master_.gemms = 0;

  remap_rows(batch.indices, cached_rows_);

  if (config_.in_advance_aggregation) {
    // §III-B Step 1: aggregate per-occurrence embedding gradients into one
    // gradient per unique row BEFORE any TT-core work.
    if (!forward_cache_valid_) {
      cached_unique_ = build_unique_index_map(cached_rows_);
      compute_prefix_products(cached_unique_.unique);
      unique_slots_ = prep_.slot_of;
    }
    const index_t u = static_cast<index_t>(cached_unique_.unique.size());
    {
      TRACE_SPAN("efftt.grad_aggregate");
      aggregate_unique_gradients(batch, grad_out);
    }

    // Step 2: chain rule once per unique row, prefix products shared.
    // Unique rows are cut into kGradShards contiguous blocks; each shard
    // accumulates into its own core-gradient buffers (no locks), and
    // merge_grad_shards() folds them into grad_master_ in shard order —
    // the result is bitwise identical at any thread count.
    if (grad_shards_.empty()) {
      grad_shards_.resize(kGradShards);
      shard_scratch_.resize(kGradShards);
      for (GradAccum& shard : grad_shards_) init_grad_accum(shard);
    }
    {
      TRACE_SPAN("efftt.grad_chain");
#pragma omp parallel for schedule(dynamic, 1) if (u >= 2 * kGradShards)
      for (int s = 0; s < kGradShards; ++s) {
        GradAccum& acc = grad_shards_[static_cast<std::size_t>(s)];
        BackwardScratch& scratch = shard_scratch_[static_cast<std::size_t>(s)];
        ++acc.epoch;
        for (auto& t : acc.touched) t.clear();
        acc.gemms = 0;
        const index_t lo = u * s / kGradShards;
        const index_t hi = u * (s + 1) / kGradShards;
        for (index_t i = lo; i < hi; ++i) {
          accumulate_row_gradient(
              acc, scratch, cached_unique_.unique[static_cast<std::size_t>(i)],
              reuse_buffer_.slot_data(
                  unique_slots_[static_cast<std::size_t>(i)]),
              grad_agg_buf_.row(i));
        }
      }
    }
    {
      TRACE_SPAN("efftt.grad_merge");
      merge_grad_shards();
    }
  } else {
    // Ablation: per-occurrence gradients (the TT-Rec cost the paper removes).
    const index_t n12 = shape.col_factor(0) * shape.col_factor(1);
    const index_t r2 = shape.rank(2);
    const index_t m2 = shape.row_factor(1);
    const index_t suffix = suffix_length();
    const index_t n1 = shape.col_factor(0);
    const index_t n2r2 = shape.col_factor(1) * shape.rank(2);
    const index_t r1 = shape.rank(1);
    std::vector<float> p12(static_cast<std::size_t>(n12) * r2);
    for (index_t s = 0; s < batch.batch_size(); ++s) {
      const float* g = grad_out.row(s);
      for (index_t pos = batch.bag_begin(s); pos < batch.bag_end(s); ++pos) {
        const index_t row = cached_rows_[static_cast<std::size_t>(pos)];
        const index_t prefix = row / suffix;
        gemm(Trans::kNo, Trans::kNo, n1, n2r2, r1, 1.0f,
             cores_.slice(0, prefix / m2), r1, cores_.slice(1, prefix % m2),
             n2r2, 0.0f, p12.data(), n2r2);
        stats_.backward_gemms += 1;
        accumulate_row_gradient(grad_master_, seq_scratch_, row, p12.data(),
                                g);
      }
    }
  }

  stats_.backward_gemms += grad_master_.gemms;
  {
    TRACE_SPAN("efftt.update");
    apply_update(lr);
  }
  forward_cache_valid_ = false;  // parameters changed; cached P12 is stale
}

void EffTTTable::set_optimizer(OptimizerConfig config) {
  ELREC_CHECK(config.kind != OptimizerKind::kMomentum,
              "momentum is not inactive-safe for sparse embedding updates");
  const int d = cores_.shape().num_cores();
  core_optimizers_.resize(static_cast<std::size_t>(d));
  for (int k = 0; k < d; ++k) {
    core_optimizers_[static_cast<std::size_t>(k)].reset(
        config, static_cast<std::size_t>(cores_.core(k).size()));
  }
}

void EffTTTable::apply_update(float lr) {
  const TTShape& shape = cores_.shape();
  const int d = shape.num_cores();
  if (core_optimizers_.empty()) set_optimizer(OptimizerConfig{});
  if (config_.fused_update) {
    // Fused path: one pass over the touched slices, the optimizer applied
    // in place — no staging copy, no full-core sweep. Touched slices are
    // disjoint parameter regions, so the pass parallelizes without changing
    // any per-slice float order (prepare() pre-allocates optimizer state,
    // which would otherwise be lazily created under the race).
    for (int k = 0; k < d; ++k) {
      const index_t rk = shape.rank(k);
      const index_t cols = cores_.core(k).cols();
      Matrix& grads = grad_master_.core_grads[static_cast<std::size_t>(k)];
      OptimizerState& opt = core_optimizers_[static_cast<std::size_t>(k)];
      opt.prepare();
      const auto& touched = grad_master_.touched[static_cast<std::size_t>(k)];
#pragma omp parallel for schedule(static) if (touched.size() >= 64)
      for (std::size_t t = 0; t < touched.size(); ++t) {
        const index_t ik = touched[t];
        opt.update_region(cores_.core(k).row(ik * rk), grads.row(ik * rk),
                          static_cast<std::size_t>(ik * rk) * cols,
                          static_cast<std::size_t>(rk * cols), lr);
      }
    }
    return;
  }
  // Unfused path (TT-Rec style): stage a dense copy of the gradients (the
  // "additional data copy" of §III-B), then run a separate optimizer pass
  // over the FULL cores.
  if (unfused_staging_.empty()) {
    unfused_staging_.resize(static_cast<std::size_t>(d));
    for (int k = 0; k < d; ++k) {
      unfused_staging_[static_cast<std::size_t>(k)].resize(
          cores_.core(k).rows(), cores_.core(k).cols());
    }
  }
  for (int k = 0; k < d; ++k) {
    Matrix& staging = unfused_staging_[static_cast<std::size_t>(k)];
    staging.set_zero();
    const index_t rk = shape.rank(k);
    const index_t cols = cores_.core(k).cols();
    Matrix& grads = grad_master_.core_grads[static_cast<std::size_t>(k)];
    for (index_t ik : grad_master_.touched[static_cast<std::size_t>(k)]) {
      std::copy(grads.row(ik * rk), grads.row(ik * rk) + rk * cols,
                staging.row(ik * rk));
    }
    core_optimizers_[static_cast<std::size_t>(k)].update(
        {cores_.core(k).data(),
         static_cast<std::size_t>(cores_.core(k).size())},
        {staging.data(), static_cast<std::size_t>(staging.size())}, lr);
  }
}

}  // namespace elrec
