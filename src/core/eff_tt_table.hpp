// Eff-TT table — the paper's primary contribution (§III).
//
// A Tensor-Train embedding table (3 cores in the paper; any d >= 3 here,
// with the reuse prefix spanning the first two cores) whose
//  * forward pass deduplicates rows within the batch and shares the
//    C1*C2 prefix products through a ReuseBuffer filled by one batched-GEMM
//    launch (Algorithm 1), and
//  * backward pass aggregates embedding gradients per *unique* row before
//    touching TT cores (in-advance gradient aggregation) and applies SGD
//    directly to the touched slices (fused TT-core update).
//
// The backward runs in parallel: unique rows are partitioned into a FIXED
// number of contiguous shards (kGradShards, independent of the thread
// count), each shard accumulates TT-core gradients into private buffers,
// and the shards are merged in shard order — so the updated cores are
// bitwise identical whether the batch ran on 1 thread or N.
//
// Every optimization can be disabled independently through EffTTConfig; the
// ablation benchmarks (Figs. 14/17/18) flip exactly one switch at a time.
// An optional index bijection (§IV) remaps incoming indices before lookup.
//
// Thread-safety contract:
//  * forward() / backward_and_update() are TRAINING entry points. They write
//    the shared reuse buffer, pointer-prep lists, forward cache and stats,
//    so at most one thread may drive them at a time (the pipeline's worker
//    role). They must never run concurrently with each other or with any
//    other member on the same table.
//  * lookup() is the SERVING entry point. It is const, touches only the TT
//    cores / bijection (read-only) and a caller-owned EffTTLookupContext, so
//    any number of threads may call it concurrently on one frozen table —
//    provided each thread passes its own context from make_lookup_context()
//    (the per-worker reuse buffer) and nothing mutates the table meanwhile.
//    Sharing one context between threads is a data race.
#pragma once

#include <span>

#include <optional>

#include "core/pointer_prep.hpp"
#include "core/reuse_buffer.hpp"
#include "embed/embedding_table.hpp"
#include "tensor/optimizer.hpp"
#include "tt/tt_cores.hpp"

namespace elrec {

struct EffTTConfig {
  bool intermediate_reuse = true;      // §III-A two-level result reuse
  bool in_advance_aggregation = true;  // §III-B gradient aggregation
  bool fused_update = true;            // §III-B fused TT-core update
};

/// Per-reader scratch for EffTTTable::lookup(): a private reuse buffer,
/// pointer-prep lists and row staging, so concurrent const readers never
/// touch shared mutable state. Obtain via EffTTTable::make_lookup_context().
class EffTTLookupContext final : public ILookupContext {
 public:
  EffTTLookupContext(index_t num_prefixes, index_t slot_floats)
      : reuse(num_prefixes, slot_floats) {}

 private:
  friend class EffTTTable;
  ReuseBuffer reuse;
  PointerPrepResult prep;
  std::vector<index_t> rows;       // remapped physical rows of the batch
  UniqueIndexMap unique;
  Matrix unique_rows;              // one materialized row per unique index
  std::vector<float> sa, sb;       // chain_suffix scratch (d > 3)
};

class EffTTTable final : public IEmbeddingTable {
 public:
  EffTTTable(index_t num_rows, TTShape shape, Prng& rng,
             EffTTConfig config = {}, float init_row_std = 0.01f);

  /// Wraps pre-decomposed cores (e.g. from tt_svd).
  EffTTTable(index_t num_rows, TTCores cores, EffTTConfig config = {});

  index_t num_rows() const override { return num_rows_; }
  index_t dim() const override { return cores_.shape().dim(); }

  void forward(const IndexBatch& batch, Matrix& out) override;
  void backward_and_update(const IndexBatch& batch, const Matrix& grad_out,
                           float lr) override;

  /// Allocates the per-reader reuse buffer + scratch for lookup().
  std::unique_ptr<ILookupContext> make_lookup_context() const override;

  /// Frozen forward (see the thread-safety contract above): same two-level
  /// reuse algorithm as forward(), identical float operation order — the
  /// produced rows are bitwise equal to forward()'s for the same cores —
  /// but all mutable state lives in `ctx`, so concurrent readers are safe.
  void lookup(const IndexBatch& batch, Matrix& out,
              ILookupContext* ctx) const override;

  std::size_t parameter_bytes() const override {
    return cores_.parameter_bytes();
  }
  std::string name() const override { return "EffTTTable"; }

  /// Installs the §IV index bijection (original index -> new index). Must be
  /// a permutation of [0, num_rows). Install before training starts: all
  /// rows are equivalent at random init, so remapping is free.
  void set_index_bijection(std::vector<index_t> mapping);
  bool has_index_bijection() const { return !bijection_.empty(); }

  TTCores& cores() { return cores_; }
  const TTCores& cores() const { return cores_; }
  const EffTTConfig& config() const { return config_; }

  /// Switches the TT-core update rule (default plain SGD). The stateful
  /// Adagrad variant stays fused: its accumulator is updated inside the
  /// same touched-slice pass. Momentum is rejected (not inactive-safe).
  void set_optimizer(OptimizerConfig config);

  void visit_parameters(const ParameterVisitor& visit) override {
    for (int k = 0; k < cores_.shape().num_cores(); ++k) {
      visit(cores_.core(k).data(),
            static_cast<std::size_t>(cores_.core(k).size()));
    }
    forward_cache_valid_ = false;  // callers may mutate through the visitor
  }

  struct Stats {
    index_t total_indices = 0;     // occurrences in the last batch
    index_t unique_rows = 0;       // after dedup
    index_t unique_prefixes = 0;   // reuse-buffer slots used
    std::size_t forward_gemms = 0;
    std::size_t backward_gemms = 0;
  };
  const Stats& last_stats() const { return stats_; }

 private:
  // Applies the bijection (if any) producing the physical row list.
  void remap_rows(const std::vector<index_t>& in, std::vector<index_t>& out) const;

  // Fills prefix products for `rows` into `reuse` via Algorithm 1 + one
  // batched GEMM; `prep` gets per-position slots. Const: all mutable state
  // is the caller's, so the serving path can share this with training.
  void fill_prefix_products(std::span<const index_t> rows, ReuseBuffer& reuse,
                            PointerPrepResult& prep) const;

  // Stage 2: extends each row's prefix product through the remaining cores
  // into dst rows (dst row i <- rows[i]); batched-GEMM fast path for d == 3.
  // Returns the number of per-row GEMMs issued (for stats).
  std::size_t expand_rows_from_prefixes(std::span<const index_t> rows,
                                        const ReuseBuffer& reuse,
                                        const PointerPrepResult& prep,
                                        Matrix& dst, std::vector<float>& sa,
                                        std::vector<float>& sb) const;

  // Sum pooling (paper Step 4) of deduped rows into per-sample outputs.
  static void pool_unique_rows(const IndexBatch& batch,
                               const UniqueIndexMap& unique,
                               const Matrix& unique_rows, Matrix& out);

  // Training wrappers over the two stages: use the member reuse buffer /
  // prep lists and update stats_.
  void compute_prefix_products(std::span<const index_t> rows);
  void compute_rows_from_prefixes(std::span<const index_t> rows, Matrix& dst);

  // prod_{k >= 2} m_k — the divisor turning a row id into its prefix id.
  index_t suffix_length() const;

  // Chains cores 2..d-1 onto a prefix product; optionally records the
  // intermediate prefixes for the backward pass.
  void chain_suffix(index_t row, const float* p12, float* dst,
                    std::vector<std::vector<float>>* chain,
                    std::vector<float>& sa, std::vector<float>& sb) const;

  // Full-recompute forward used when intermediate_reuse is off.
  void forward_no_reuse(const IndexBatch& batch,
                        const std::vector<index_t>& rows, Matrix& out);

  // One gradient-accumulation domain: core-shaped gradient buffers with
  // epoch-stamped lazy zeroing and per-core touched-slice lists. The master
  // accumulator and every shard are instances of this; shards let the
  // backward run on multiple threads while the fixed shard-merge order keeps
  // the summed gradients bitwise identical at any thread count.
  struct GradAccum {
    std::vector<Matrix> core_grads;
    std::vector<std::vector<std::uint64_t>> stamp;
    std::vector<std::vector<index_t>> touched;
    std::uint64_t epoch = 0;
    std::size_t gemms = 0;  // backward GEMMs issued into this accumulator
  };

  // Reusable scratch for accumulate_row_gradient: hoists the per-row
  // parts/chain/d_prefix heap allocations out of the unique-row loop. One
  // instance per shard (and one for the sequential ablation path).
  struct BackwardScratch {
    std::vector<index_t> parts;
    std::vector<std::vector<float>> chain;
    std::vector<float> d_prefix;
    std::vector<float> d_prev;
    std::vector<float> sa, sb;
    std::vector<float> row_out;
  };

  // Unique rows are split into this fixed number of contiguous shards,
  // independent of the OpenMP thread count, so the reduction tree (and the
  // float sum order) is a function of the batch alone.
  static constexpr int kGradShards = 16;

  // Gradient accumulation into `acc`'s touched-slice buffers for one logical
  // row with embedding gradient g (length dim). `p12` is its prefix product.
  void accumulate_row_gradient(GradAccum& acc, BackwardScratch& scratch,
                               index_t row, const float* p12, const float* g);

  // Zeroes (lazily) and returns the gradient block of slice `ik` of core k.
  float* grad_slice(GradAccum& acc, int k, index_t ik);

  // Allocates core-shaped gradient buffers for one accumulator.
  void init_grad_accum(GradAccum& acc) const;

  // §III-B Step 1, parallel: segment-sums per-occurrence embedding gradients
  // into grad_agg_buf_ (one row per unique index) via a CSR of occurrence
  // positions, each unique row summed in ascending position order.
  void aggregate_unique_gradients(const IndexBatch& batch,
                                  const Matrix& grad_out);

  // Adds every shard's touched slices into grad_master_ in shard order
  // (deterministic), parallel across disjoint output slices.
  void merge_grad_shards();

  void apply_update(float lr);

  index_t num_rows_ = 0;
  EffTTConfig config_;
  TTCores cores_;
  std::vector<index_t> bijection_;

  ReuseBuffer reuse_buffer_;
  PointerPrepResult prep_;

  // Forward state cached for the matching backward call.
  std::vector<index_t> cached_rows_;       // remapped physical rows
  UniqueIndexMap cached_unique_;
  std::vector<index_t> unique_slots_;      // reuse-buffer slot per unique row
  bool forward_cache_valid_ = false;

  // Touched-slice gradient accumulators (allocated like the cores; only
  // slices seen this batch are zeroed/updated). grad_master_ holds the final
  // per-batch gradients consumed by apply_update; grad_shards_ are the
  // per-shard partial accumulators of the parallel backward.
  GradAccum grad_master_;
  std::vector<GradAccum> grad_shards_;
  std::vector<BackwardScratch> shard_scratch_;
  BackwardScratch seq_scratch_;  // ablation (per-occurrence) path

  // CSR of occurrence positions per unique row + pos -> sample map, rebuilt
  // each backward batch for the parallel in-advance aggregation.
  std::vector<index_t> sample_of_pos_;
  std::vector<index_t> occ_offsets_;
  std::vector<index_t> occ_cursor_;
  std::vector<index_t> occ_positions_;

  // Staging buffer used only by the UNFUSED update path to model TT-Rec's
  // extra gradient copy.
  std::vector<Matrix> unfused_staging_;
  std::vector<OptimizerState> core_optimizers_;

  Matrix unique_rows_buf_;   // unique embedding rows (forward)
  Matrix grad_agg_buf_;      // aggregated per-unique-row gradients (backward)

  Stats stats_;
};

}  // namespace elrec
