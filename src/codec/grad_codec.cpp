#include "codec/grad_codec.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/serialize.hpp"  // detail::fnv1a
#include "common/stopwatch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace elrec {

namespace {

// Process-wide codec traffic accounting, shared by every instance: raw
// bytes offered to encode(), encoded bytes produced, and the per-call
// encode/decode latency split. bench_codec and the check.sh --codec gate
// read the reduction ratio straight off these counters.
struct CodecCounters {
  obs::Counter& raw_bytes;
  obs::Counter& encoded_bytes;
  obs::Histogram& encode_us;
  obs::Histogram& decode_us;
};

CodecCounters& codec_counters() {
  auto& reg = obs::MetricsRegistry::global();
  static CodecCounters c{reg.counter("codec.raw_bytes"),
                         reg.counter("codec.encoded_bytes"),
                         reg.histogram("codec.encode_us"),
                         reg.histogram("codec.decode_us")};
  return c;
}

constexpr char kMagic[4] = {'E', 'G', 'C', '1'};

void write_header_and_count(const CodecWireHeader& h, EncodedBlob& out) {
  std::memcpy(out.data(), &h, sizeof(h));
  codec_counters().raw_bytes.add(
      static_cast<std::uint64_t>(h.rows * h.cols) * sizeof(float));
  codec_counters().encoded_bytes.add(out.size());
}

CodecWireHeader make_header(CodecId id, index_t rows, index_t cols) {
  CodecWireHeader h{};
  std::memcpy(h.magic, kMagic, 4);
  h.codec_id = static_cast<std::uint32_t>(id);
  h.rows = rows;
  h.cols = cols;
  return h;
}

std::uint64_t payload_checksum(const EncodedBlob& blob) {
  return detail::fnv1a(
      detail::kFnvOffset,
      reinterpret_cast<const char*>(blob.data()) + sizeof(CodecWireHeader),
      blob.size() - sizeof(CodecWireHeader));
}

// Raw fp32 payload: memcpy both ways, bitwise identity (NaN payloads and
// denormals survive untouched). Shared by NullCodec and the bound == 0
// degradation of the dual-level codec.
void encode_raw(CodecId id, const float* data, index_t rows, index_t cols,
                EncodedBlob& out) {
  const std::size_t payload =
      static_cast<std::size_t>(rows * cols) * sizeof(float);
  out.resize(sizeof(CodecWireHeader) + payload);
  if (payload > 0) {
    std::memcpy(out.data() + sizeof(CodecWireHeader), data, payload);
  }
  CodecWireHeader h = make_header(id, rows, cols);
  h.payload_kind = kCodecPayloadRawF32;
  h.bits = 32;
  h.kept_rows = rows;
  h.payload_bytes = payload;
  h.checksum = payload_checksum(out);
  write_header_and_count(h, out);
}

class NullCodec final : public IGradCodec {
 public:
  CodecId id() const override { return CodecId::kNull; }
  std::string name() const override { return "null"; }

  void encode(const float* data, index_t rows, index_t cols,
              EncodedBlob& out) override {
    TRACE_SPAN("codec.encode");
    Stopwatch sw;
    encode_raw(CodecId::kNull, data, rows, cols, out);
    codec_counters().encode_us.record(sw.microseconds());
  }
};

class DualLevelCodec final : public IGradCodec {
 public:
  explicit DualLevelCodec(const CodecConfig& config) : config_(config) {
    ELREC_CHECK(config.bits == 8 || config.bits == 4,
                "dual-level codec supports int8 or int4 payloads");
    ELREC_CHECK(config.rel_bound >= 0.0f && config.min_abs_bound >= 0.0f,
                "error bounds must be non-negative");
    ELREC_CHECK(config.ema > 0.0f && config.ema <= 1.0f,
                "running-stats EMA weight must be in (0, 1]");
  }

  CodecId id() const override { return CodecId::kDualLevel; }
  std::string name() const override {
    return config_.bits == 4 ? "dual-level-int4" : "dual-level-int8";
  }

  void encode(const float* data, index_t rows, index_t cols,
              EncodedBlob& out) override {
    TRACE_SPAN("codec.encode");
    Stopwatch sw;
    if (config_.lossless()) {
      // bound == 0 MUST mean bitwise identity (checkpoint/resume parity).
      encode_raw(CodecId::kDualLevel, data, rows, cols, out);
      codec_counters().encode_us.record(sw.microseconds());
      return;
    }
    encode_quantized(data, rows, cols, out);
    codec_counters().encode_us.record(sw.microseconds());
  }

 private:
  // Tensor scan: max |v| and RMS over the finite values only, so one stray
  // inf cannot blow the step out to infinity. Single-threaded on purpose —
  // encode is deterministic at any OMP thread count because it never forks.
  static void scan(const float* data, std::size_t n, float& amax_out,
                   double& rms_out) {
    float amax = 0.0f;
    double sumsq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float a = std::fabs(data[i]);
      if (!std::isfinite(a)) continue;
      if (a > amax) amax = a;
      sumsq += static_cast<double>(a) * a;
    }
    amax_out = amax;
    rms_out = n > 0 ? std::sqrt(sumsq / static_cast<double>(n)) : 0.0;
  }

  void encode_quantized(const float* data, index_t rows, index_t cols,
                        EncodedBlob& out) {
    const std::size_t n = static_cast<std::size_t>(rows * cols);
    float amax = 0.0f;
    double rms = 0.0;
    scan(data, n, amax, rms);

    // Adaptive bound: EMA of per-tensor RMS tracks the gradient scale of
    // THIS stream (pooled gradients shrink as training converges; the bound
    // shrinks with them). Seeded with the first tensor's RMS.
    if (n > 0) {
      running_rms_ = seeded_
                         ? config_.ema * rms + (1.0 - config_.ema) * running_rms_
                         : rms;
      seeded_ = true;
    }
    const float bound =
        std::max(config_.min_abs_bound,
                 config_.rel_bound * static_cast<float>(running_rms_));

    // Linear quantization: q = round(v / step), v' = q * step, so the error
    // is step/2 — unless amax does not fit the code range, in which case
    // the step widens to amax/qmax and the effective bound widens with it
    // (recorded in the header; never silently exceeded).
    const float qmax = config_.bits == 4 ? 7.0f : 127.0f;
    float step = 2.0f * bound;
    if (amax > qmax * step) step = amax / qmax;
    if (step <= 0.0f) step = 1.0f;  // all-zero tensor: any step encodes it
    const float dead_zone = 0.5f * step;

    // Level 1 — row sparsification: a row whose finite max |v| sits inside
    // the dead zone would quantize to all-zero codes; drop it entirely and
    // let decode restore zeros. Pooled embedding gradients concentrate
    // magnitude on hot rows, so cold rows vanish from the wire.
    kept_.clear();
    kept_.reserve(static_cast<std::size_t>(rows));
    for (index_t r = 0; r < rows; ++r) {
      const float* src = data + static_cast<std::size_t>(r) * cols;
      float row_amax = 0.0f;
      for (index_t j = 0; j < cols; ++j) {
        const float a = std::fabs(src[j]);
        if (std::isfinite(a) && a > row_amax) row_amax = a;
        // Non-finite values force the row onto the wire so clamping applies.
        if (!std::isfinite(src[j])) row_amax = qmax * step;
      }
      if (row_amax > dead_zone) kept_.push_back(static_cast<std::uint32_t>(r));
    }

    const std::size_t kept = kept_.size();
    const std::size_t row_bytes =
        config_.bits == 4 ? (static_cast<std::size_t>(cols) + 1) / 2
                          : static_cast<std::size_t>(cols);
    const std::size_t payload = kept * sizeof(std::uint32_t) + kept * row_bytes;
    out.resize(sizeof(CodecWireHeader) + payload);
    std::uint8_t* p = out.data() + sizeof(CodecWireHeader);
    if (kept > 0) {
      std::memcpy(p, kept_.data(), kept * sizeof(std::uint32_t));
    }
    p += kept * sizeof(std::uint32_t);

    // Level 2 — vectorizable pack of the kept rows. codes_ is per-instance
    // scratch (grow-only, no per-row allocation).
    const float inv_step = 1.0f / step;
    codes_.resize(static_cast<std::size_t>(cols));
    for (std::size_t k = 0; k < kept; ++k) {
      const float* src = data + static_cast<std::size_t>(kept_[k]) * cols;
      std::int8_t* codes = codes_.data();
#pragma omp simd
      for (index_t j = 0; j < cols; ++j) {
        float v = src[j];
        // Clamp policy: NaN encodes as 0, ±inf saturates to ±qmax*step;
        // denormals fall in the dead zone and flush to 0. isnan/isinf are
        // branchless enough for simd and keep UBSan happy (no f2i of inf).
        v = std::isnan(v) ? 0.0f : v;
        float q = v * inv_step;
        q = q > qmax ? qmax : (q < -qmax ? -qmax : q);
        codes[j] = static_cast<std::int8_t>(std::nearbyintf(q));
      }
      if (config_.bits == 8) {
        std::memcpy(p, codes, static_cast<std::size_t>(cols));
      } else {
        // Two int4 codes per byte (low nibble = even column), row-padded.
        for (index_t j = 0; j < cols; j += 2) {
          const std::uint8_t lo = static_cast<std::uint8_t>(codes[j]) & 0x0f;
          const std::uint8_t hi =
              j + 1 < cols ? (static_cast<std::uint8_t>(codes[j + 1]) & 0x0f)
                           : 0;
          p[static_cast<std::size_t>(j) / 2] =
              static_cast<std::uint8_t>(lo | (hi << 4));
        }
      }
      p += row_bytes;
    }

    CodecWireHeader h = make_header(CodecId::kDualLevel, rows, cols);
    h.payload_kind = kCodecPayloadQuantized;
    h.bits = static_cast<std::uint32_t>(config_.bits);
    h.kept_rows = static_cast<index_t>(kept);
    h.step = step;
    // The guarantee actually delivered on finite inputs: quantization error
    // step/2, and a dropped row's values were all below the dead zone.
    h.bound = dead_zone;
    h.payload_bytes = payload;
    h.checksum = payload_checksum(out);
    write_header_and_count(h, out);
  }

  CodecConfig config_;
  double running_rms_ = 0.0;
  bool seeded_ = false;
  std::vector<std::uint32_t> kept_;  // per-call scratch, grow-only
  std::vector<std::int8_t> codes_;
};

// Sign-extends one int4 nibble.
inline std::int8_t nibble_to_i8(std::uint8_t nib) {
  return static_cast<std::int8_t>(static_cast<std::int8_t>(nib << 4) >> 4);
}

void decode_into(const CodecWireHeader& h, const std::uint8_t* payload,
                 float* out, std::size_t n) {
  ELREC_CHECK(n == static_cast<std::size_t>(h.rows * h.cols),
              "decode buffer size does not match encoded shape");
  if (h.payload_kind == kCodecPayloadRawF32) {
    if (n > 0) std::memcpy(out, payload, n * sizeof(float));
    return;
  }
  ELREC_CHECK(h.payload_kind == kCodecPayloadQuantized,
              "unknown codec payload kind");
  if (n == 0) return;
  std::memset(out, 0, n * sizeof(float));  // dropped rows decode to zero
  const std::size_t kept = static_cast<std::size_t>(h.kept_rows);
  const std::size_t row_bytes =
      h.bits == 4 ? (static_cast<std::size_t>(h.cols) + 1) / 2
                  : static_cast<std::size_t>(h.cols);
  const std::uint8_t* codes = payload + kept * sizeof(std::uint32_t);
  const float step = h.step;
  for (std::size_t k = 0; k < kept; ++k) {
    std::uint32_t row;
    std::memcpy(&row, payload + k * sizeof(std::uint32_t), sizeof(row));
    ELREC_CHECK(row < static_cast<std::uint64_t>(h.rows),
                "encoded row id out of range");
    float* dst = out + static_cast<std::size_t>(row) * h.cols;
    const std::uint8_t* src = codes + k * row_bytes;
    if (h.bits == 8) {
#pragma omp simd
      for (index_t j = 0; j < h.cols; ++j) {
        dst[j] = static_cast<float>(static_cast<std::int8_t>(src[j])) * step;
      }
    } else {
      for (index_t j = 0; j < h.cols; ++j) {
        const std::uint8_t byte = src[static_cast<std::size_t>(j) / 2];
        const std::uint8_t nib = (j % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
        dst[j] = static_cast<float>(nibble_to_i8(nib)) * step;
      }
    }
  }
}

}  // namespace

std::string codec_name(CodecId id) {
  switch (id) {
    case CodecId::kNull:
      return "null";
    case CodecId::kDualLevel:
      return "dual-level";
  }
  return "unknown(" + std::to_string(static_cast<std::uint32_t>(id)) + ")";
}

std::unique_ptr<IGradCodec> make_codec(const CodecConfig& config) {
  switch (config.id) {
    case CodecId::kNull:
      return std::make_unique<NullCodec>();
    case CodecId::kDualLevel:
      return std::make_unique<DualLevelCodec>(config);
  }
  throw Error("unknown codec id " +
              std::to_string(static_cast<std::uint32_t>(config.id)));
}

CodecWireHeader peek_blob_header(const EncodedBlob& blob) {
  ELREC_CHECK(blob.size() >= sizeof(CodecWireHeader),
              "encoded blob shorter than its header — truncated");
  CodecWireHeader h;
  std::memcpy(&h, blob.data(), sizeof(h));
  ELREC_CHECK(std::memcmp(h.magic, kMagic, 4) == 0,
              "encoded blob magic mismatch — not a codec blob");
  ELREC_CHECK(h.rows >= 0 && h.cols >= 0 && h.kept_rows <= h.rows,
              "encoded blob header is implausible");
  ELREC_CHECK(blob.size() == sizeof(CodecWireHeader) + h.payload_bytes,
              "encoded blob payload length mismatch — truncated");
  ELREC_CHECK(h.checksum == payload_checksum(blob),
              "encoded blob checksum mismatch — corrupt payload");
  return h;
}

void decode_blob(const EncodedBlob& blob, Matrix& out) {
  TRACE_SPAN("codec.decode");
  Stopwatch sw;
  const CodecWireHeader h = peek_blob_header(blob);
  out.resize(h.rows, h.cols);
  decode_into(h, blob.data() + sizeof(CodecWireHeader), out.data(),
              static_cast<std::size_t>(out.size()));
  codec_counters().decode_us.record(sw.microseconds());
}

void decode_blob_into(const EncodedBlob& blob, float* out, std::size_t n) {
  TRACE_SPAN("codec.decode");
  Stopwatch sw;
  const CodecWireHeader h = peek_blob_header(blob);
  decode_into(h, blob.data() + sizeof(CodecWireHeader), out, n);
  codec_counters().decode_us.record(sw.microseconds());
}

}  // namespace elrec
