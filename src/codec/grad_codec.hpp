// Error-bounded compression of the pipeline's hot byte streams (§V traffic).
//
// The prefetch/gradient queues between the worker and the host embedding
// store, and the data-parallel all-reduce, move pooled embedding gradients
// and parameter rows — the bytes-on-queue bottleneck the simulator charges
// framework cost for. An IGradCodec turns each Matrix crossing a queue into
// a self-describing EncodedBlob:
//
//   * NullCodec     — bitwise identity (raw fp32 payload). The default; a
//                     run under the null codec is byte-for-byte identical to
//                     one with no codec at all, including checkpoints.
//   * DualLevelCodec — two stacked lossy levels, after "Dual-Level Adaptive
//                     Lossy Compression for DLRM training":
//                       L1: row sparsification — rows whose max |g| falls
//                           below the quantization dead-zone are dropped
//                           entirely (pooled gradients of cold rows);
//                       L2: per-tensor linear quantization of the kept rows
//                           into int8 or packed int4 codes with one fp32
//                           step, the step adapted from a running RMS of
//                           the stream so the absolute error stays under a
//                           bound proportional to typical gradient scale.
//
// Wire format (all little-endian, header then payload):
//   CodecWireHeader { magic 'EGC1', codec id, payload kind, bits,
//                     rows, cols, kept_rows, step, bound, payload bytes,
//                     FNV-1a payload checksum }
//   raw payload:       rows*cols fp32 (NullCodec, or bound == 0)
//   quantized payload: kept_rows u32 row ids, then per kept row cols int8
//                      codes (or ceil(cols/2) bytes of packed int4)
//
// Decoding needs no codec instance: decode_blob() dispatches on the header,
// so a blob can cross a thread boundary and be opened by whoever pops it.
// encode() is stateful (running stats, scratch) and must be called by one
// thread at a time; the trainers keep one codec instance per stream per
// producing thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.hpp"

namespace elrec {

/// Stable on-wire codec identifiers (recorded in checkpoints; never reuse).
enum class CodecId : std::uint32_t {
  kNull = 0,       // bitwise identity
  kDualLevel = 1,  // sparsification + adaptive linear quantization
};

/// Human-readable codec name ("null", "dual-level") for diagnostics.
std::string codec_name(CodecId id);

/// One encoded tensor: CodecWireHeader followed by its payload bytes.
using EncodedBlob = std::vector<std::uint8_t>;

/// Self-describing blob header. POD, memcpy'd to/from the blob.
struct CodecWireHeader {
  char magic[4];               // 'E','G','C','1'
  std::uint32_t codec_id;      // CodecId
  std::uint32_t payload_kind;  // 0 = raw fp32, 1 = quantized
  std::uint32_t bits;          // code width: 32 raw, 8 or 4 quantized
  std::int64_t rows = 0;       // decoded tensor shape
  std::int64_t cols = 0;
  std::int64_t kept_rows = 0;  // rows present in a quantized payload
  float step = 0.0f;           // quantization step (fp32 scale; offset is 0)
  float bound = 0.0f;          // max |decoded - encoded-input| guarantee
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;  // FNV-1a over the payload bytes
};
static_assert(sizeof(CodecWireHeader) == 64, "wire header layout drifted");

constexpr std::uint32_t kCodecPayloadRawF32 = 0;
constexpr std::uint32_t kCodecPayloadQuantized = 1;

struct CodecConfig {
  CodecId id = CodecId::kNull;

  // --- DualLevelCodec knobs (ignored by the null codec) ---
  // Code width of the quantized payload: 8 (one byte per element) or 4
  // (two elements per byte). int4 halves the bytes at 16x coarser steps.
  int bits = 8;
  // Target absolute error bound as a fraction of the running gradient RMS.
  // 0 (with min_abs_bound 0) degrades the codec to a lossless raw payload:
  // bound 0 MUST mean bitwise identity.
  float rel_bound = 0.05f;
  // Floor for the adapted bound (absolute units). Keeps the step from
  // collapsing on near-zero tensors early in training.
  float min_abs_bound = 0.0f;
  // Weight of the newest tensor in the running-RMS EMA (0 < ema <= 1).
  float ema = 0.25f;

  bool lossless() const {
    return id == CodecId::kNull || (rel_bound == 0.0f && min_abs_bound == 0.0f);
  }
};

/// Encoder side of one stream. Stateful: running gradient statistics adapt
/// the error bound, and scratch buffers are reused across calls, so each
/// instance must be driven by a single thread (the trainers create one
/// instance per stream per producing thread). Decoding is the stateless
/// free function decode_blob().
class IGradCodec {
 public:
  virtual ~IGradCodec() = default;

  virtual CodecId id() const = 0;
  virtual std::string name() const = 0;

  /// Encodes rows x cols values at `data` (row-major, contiguous) into
  /// `out` (header + payload). `out` is overwritten and reused.
  virtual void encode(const float* data, index_t rows, index_t cols,
                      EncodedBlob& out) = 0;

  void encode(const Matrix& m, EncodedBlob& out) {
    encode(m.data(), m.rows(), m.cols(), out);
  }
};

/// Builds the codec the config names.
std::unique_ptr<IGradCodec> make_codec(const CodecConfig& config);

/// Validates and returns the blob's header (magic, size and checksum are
/// checked; throws Error on a truncated or corrupt blob).
CodecWireHeader peek_blob_header(const EncodedBlob& blob);

/// Decodes a blob produced by any codec into `out` (resized to the encoded
/// shape). Null / raw payloads decode bitwise-identically to the input.
void decode_blob(const EncodedBlob& blob, Matrix& out);

/// Decodes into a caller-owned flat buffer of exactly rows*cols == n
/// elements (the all-reduce path, which works on parameter spans).
void decode_blob_into(const EncodedBlob& blob, float* out, std::size_t n);

}  // namespace elrec
