// Minimal binary serialization for checkpoints.
//
// Format: little-endian POD fields and length-prefixed arrays, with a magic
// tag per top-level object so mismatched files fail loudly. Used to persist
// TT cores, embedding tables and whole DLRM models.
#pragma once

#include <cstdint>
#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace elrec {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary) {
    ELREC_CHECK(out_.good(), "cannot open " + path + " for writing");
  }

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_i64(std::int64_t v) { write_pod(v); }
  void write_f32(float v) { write_pod(v); }

  void write_tag(const char tag[4]) { out_.write(tag, 4); }

  template <typename T>
  void write_array(const T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_u64(n);
    out_.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(n * sizeof(T)));
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    write_array(v.data(), v.size());
  }

  void flush() {
    out_.flush();
    ELREC_CHECK(out_.good(), "write failed");
  }

 private:
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {
    ELREC_CHECK(in_.good(), "cannot open " + path + " for reading");
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    ELREC_CHECK(in_.good(), "unexpected end of file");
    return value;
  }

  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  float read_f32() { return read_pod<float>(); }

  void expect_tag(const char tag[4]) {
    char buf[4];
    in_.read(buf, 4);
    ELREC_CHECK(in_.good() && std::equal(buf, buf + 4, tag),
                "checkpoint tag mismatch — wrong or corrupt file");
  }

  template <typename T>
  std::vector<T> read_vector() {
    const std::uint64_t n = read_u64();
    ELREC_CHECK(n < (1ULL << 34), "implausible array length in checkpoint");
    std::vector<T> v(static_cast<std::size_t>(n));
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(n * sizeof(T)));
    ELREC_CHECK(in_.good(), "unexpected end of file in array");
    return v;
  }

 private:
  std::ifstream in_;
};

}  // namespace elrec
