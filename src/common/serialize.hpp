// Minimal binary serialization for checkpoints.
//
// Format: little-endian POD fields and length-prefixed arrays, with a magic
// tag per top-level object so mismatched files fail loudly. Used to persist
// TT cores, embedding tables and whole DLRM models.
//
// Durability: every write is checked (a full disk throws instead of
// silently truncating), the writer accumulates an FNV-1a checksum that
// finish() appends as a footer, and write_checkpoint_atomic() stages the
// file at `path + ".tmp"` and renames only after a verified finish() — a
// crash mid-checkpoint can damage the temp file only, never the previous
// durable checkpoint.
#pragma once

#include <cstdint>
#include <cstdio>
#include <algorithm>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "common/error.hpp"
#include "common/fault_injector.hpp"

namespace elrec {

namespace detail {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint8_t>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

constexpr char kChecksumTag[4] = {'E', 'C', 'R', 'C'};

}  // namespace detail

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary), path_(path) {
    ELREC_CHECK(out_.good(), "cannot open " + path + " for writing");
  }

  ~BinaryWriter() {
    // finish()/flush() are the throwing paths; if the owner skipped them a
    // destructor cannot throw, so at least make the failure visible.
    if (!out_.good() && !failure_reported_) {
      // A destructor cannot throw and has no obs channel for a torn
      // checkpoint, so stderr is the only way to make the failure visible.
      // NOLINTNEXTLINE(elrec-iostream-in-lib): dtor-only stderr last resort
      std::fprintf(stderr, "elrec: BinaryWriter(%s) destroyed with failed stream — checkpoint is incomplete\n",
                   path_.c_str());
    }
  }

  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_bytes(reinterpret_cast<const char*>(&value), sizeof(T));
  }

  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_i64(std::int64_t v) { write_pod(v); }
  void write_f32(float v) { write_pod(v); }

  void write_tag(const char tag[4]) { write_bytes(tag, 4); }

  template <typename T>
  void write_array(const T* data, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_u64(n);
    // A crash between the length prefix and the payload is the worst torn
    // write; tests arm this site to simulate being killed mid-checkpoint.
    ELREC_FAULT_POINT("serialize.write_array");
    write_bytes(reinterpret_cast<const char*>(data), n * sizeof(T));
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    write_array(v.data(), v.size());
  }

  void flush() {
    out_.flush();
    check_stream("flush failed (disk full?)");
  }

  /// Appends the checksum footer, flushes, and verifies the stream. Call
  /// exactly once, after the last payload write; readers pair it with
  /// expect_footer().
  void finish() {
    const std::uint64_t sum = checksum_;
    write_bytes(detail::kChecksumTag, 4);
    write_pod(sum);  // footer bytes fold into checksum_ but sum is fixed
    flush();
  }

  /// Checksum over every byte written so far.
  std::uint64_t checksum() const { return checksum_; }

 private:
  void write_bytes(const char* data, std::size_t n) {
    out_.write(data, static_cast<std::streamsize>(n));
    check_stream("write failed (disk full?)");
    checksum_ = detail::fnv1a(checksum_, data, n);
  }

  void check_stream(const char* what) {
    if (!out_.good()) {
      failure_reported_ = true;
      throw Error(std::string(what) + " — " + path_);
    }
  }

  std::ofstream out_;
  std::string path_;
  std::uint64_t checksum_ = detail::kFnvOffset;
  bool failure_reported_ = false;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {
    ELREC_CHECK(in_.good(), "cannot open " + path + " for reading");
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    read_bytes(reinterpret_cast<char*>(&value), sizeof(T),
               "unexpected end of file");
    return value;
  }

  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  float read_f32() { return read_pod<float>(); }

  void expect_tag(const char tag[4]) {
    char buf[4];
    read_bytes(buf, 4, "checkpoint tag missing — truncated file");
    ELREC_CHECK(std::equal(buf, buf + 4, tag),
                "checkpoint tag mismatch — wrong or corrupt file");
  }

  template <typename T>
  std::vector<T> read_vector() {
    const std::uint64_t n = read_u64();
    ELREC_CHECK(n < (1ULL << 34), "implausible array length in checkpoint");
    std::vector<T> v(static_cast<std::size_t>(n));
    read_bytes(reinterpret_cast<char*>(v.data()), n * sizeof(T),
               "unexpected end of file in array");
    return v;
  }

  /// Verifies the footer written by BinaryWriter::finish(): the stored
  /// checksum must match the checksum of every byte read so far. Call after
  /// the last payload read; throws on truncation or corruption.
  void expect_footer() {
    const std::uint64_t seen = checksum_;
    char buf[4];
    read_bytes(buf, 4, "checkpoint footer missing — truncated file");
    ELREC_CHECK(std::equal(buf, buf + 4, detail::kChecksumTag),
                "checkpoint footer tag mismatch — truncated or corrupt file");
    const std::uint64_t stored = read_pod<std::uint64_t>();
    ELREC_CHECK(stored == seen,
                "checkpoint checksum mismatch — file is corrupt");
  }

 private:
  void read_bytes(char* data, std::size_t n, const char* what) {
    in_.read(data, static_cast<std::streamsize>(n));
    ELREC_CHECK(in_.good(), what);
    checksum_ = detail::fnv1a(checksum_, data, n);
  }

  std::ifstream in_;
  std::uint64_t checksum_ = detail::kFnvOffset;
};

/// Writes a checkpoint atomically: `body(writer)` streams into
/// `path + ".tmp"`, finish() seals it (checksum footer + flush + error
/// check), and only then is the temp renamed over `path`. Any failure
/// removes the temp and leaves the previous checkpoint untouched.
template <typename Body>
void write_checkpoint_atomic(const std::string& path, Body&& body) {
  const std::string tmp = path + ".tmp";
  try {
    BinaryWriter w(tmp);
    body(w);
    w.finish();
  } catch (...) {
    std::remove(tmp.c_str());  // best-effort; damage stays in the temp file
    throw;
  }
  ELREC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot rename " + tmp + " over " + path);
}

}  // namespace elrec
