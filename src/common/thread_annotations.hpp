// Clang thread-safety annotations (-Wthread-safety), no-ops elsewhere.
//
// These make the locking contracts of the concurrent classes checkable at
// compile time on clang: members carry ELREC_GUARDED_BY(mu_), private
// *_locked() helpers carry ELREC_REQUIRES(mu_), and a clang build with
// -Wthread-safety (added automatically in CMakeLists.txt) rejects any
// access that does not hold the right lock. GCC builds see empty macros —
// the annotations are documentation there, enforced the next time anyone
// builds with clang (scripts/check.sh --analyze does when clang++ is
// installed).
//
// Convention (DESIGN.md §9): annotate the data, not the function, wherever
// possible; a function-level ELREC_REQUIRES is for private helpers whose
// callers hold the lock. Public APIs never require a caller-held lock.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define ELREC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ELREC_THREAD_ANNOTATION
#define ELREC_THREAD_ANNOTATION(x)  // no-op on GCC and older clang
#endif

// On the mutex type itself (std types are pre-annotated in libc++; these
// are for project-defined lockables).
#define ELREC_CAPABILITY(x) ELREC_THREAD_ANNOTATION(capability(x))
#define ELREC_SCOPED_CAPABILITY ELREC_THREAD_ANNOTATION(scoped_lockable)

// On data members: which lock protects them.
#define ELREC_GUARDED_BY(x) ELREC_THREAD_ANNOTATION(guarded_by(x))
#define ELREC_PT_GUARDED_BY(x) ELREC_THREAD_ANNOTATION(pt_guarded_by(x))

// On functions: lock state the caller must / must not hold.
#define ELREC_REQUIRES(...) \
  ELREC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ELREC_REQUIRES_SHARED(...) \
  ELREC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ELREC_EXCLUDES(...) ELREC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ELREC_ACQUIRE(...) \
  ELREC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ELREC_RELEASE(...) \
  ELREC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Escape hatch for code the analysis cannot model (keep rare, justify).
#define ELREC_NO_THREAD_SAFETY_ANALYSIS \
  ELREC_THREAD_ANNOTATION(no_thread_safety_analysis)
