// Cache-line-aligned numeric storage.
//
// GEMM kernels want 64-byte alignment for vectorized loads; std::vector does
// not guarantee it. AlignedBuffer<T> is a minimal owning array with that
// guarantee.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/error.hpp"

namespace elrec {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, 64-byte-aligned array of trivially copyable T.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) { resize(n); }

  AlignedBuffer(const AlignedBuffer& other) { *this = other; }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this == &other) return *this;
    resize(other.size_);
    if (size_ > 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { *this = std::move(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this == &other) return *this;
    release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    return *this;
  }

  ~AlignedBuffer() { release(); }

  /// Reallocates to exactly n elements; contents are NOT preserved and are
  /// zero-initialised.
  void resize(std::size_t n) {
    release();
    if (n == 0) return;
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes *
        kCacheLineBytes;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc{};
    size_ = n;
    std::memset(data_, 0, bytes);
  }

  void fill(T value) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = value;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    ELREC_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    ELREC_DCHECK(i < size_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace elrec
