#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace elrec {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard lock(mu_);
    ELREC_CHECK(!stop_, "submit() on a stopped ThreadPool");
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace elrec
