// Process-wide fault injection for robustness testing.
//
// Production code plants named fault points (ELREC_FAULT_POINT) at the
// operations that can fail in a real deployment: host-store pulls/pushes,
// compute steps, checkpoint writes, server scheduling. Tests arm a site with
// a FaultSpec and the next eligible hit throws (fatal or transient), or
// stalls the calling thread, letting the fault-tolerance machinery be driven
// deterministically. When no site is armed the hook is a single relaxed
// atomic load — effectively free on every hot path.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/error.hpp"

namespace elrec {

/// Thrown by an armed kError site. Derives from Error, so it propagates
/// through the same paths as real failures.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

/// What an armed site does when it fires.
enum class FaultKind {
  kError,      // throw InjectedFault (fatal: no retry should rescue it)
  kTransient,  // throw TransientError (retry policies may absorb it)
  kDelay,      // stall the calling thread for `delay` (slow/stalled server)
};

struct FaultSpec {
  FaultKind kind = FaultKind::kError;
  double probability = 1.0;       // chance an eligible hit fires
  std::uint64_t skip_first = 0;   // hits that pass through before eligibility
  std::uint64_t max_fires = ~0ULL;  // stop firing after this many
  std::chrono::milliseconds delay{0};  // for kDelay
  std::string message;            // appended to the exception text
  std::uint64_t seed = 0x5eedULL;  // for probabilistic firing
};

/// Singleton registry of armed fault sites. Thread-safe; all methods may be
/// called concurrently with fault points executing on other threads.
///
/// Sites can also be armed without recompiling through the ELREC_FAULT_SITES
/// environment variable, applied once at process start-up (see
/// arm_from_env). Integration harnesses use this to inject shard crashes or
/// transient lookup faults into an unmodified binary:
///   ELREC_FAULT_SITES='shard.crash:0.001:error:1,shard.serve:0.02:transient'
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arms every site in a comma-separated spec list. Entry grammar:
  ///   site:probability[:kind[:param]]
  /// with kind one of error | transient | delay (default error). For delay,
  /// param is the stall in milliseconds; for error/transient it caps
  /// max_fires. Returns the number of sites armed; throws Error on a
  /// malformed entry (probability outside [0,1], unknown kind, bad number).
  std::size_t arm_from_string(const std::string& config);

  /// arm_from_string(getenv("ELREC_FAULT_SITES")) when the variable is set
  /// and non-empty; returns 0 otherwise. Run automatically once at start-up
  /// (before main) so any binary honors the variable; a malformed value is
  /// recorded in env_config_error() instead of aborting static init.
  std::size_t arm_from_env();

  /// Non-empty when the start-up ELREC_FAULT_SITES parse failed.
  std::string env_config_error() const;

  /// Fast-path gate read by every fault point.
  static bool armed_anywhere() {
    return any_armed_.load(std::memory_order_relaxed);
  }

  /// Arms `site`; replaces any previous spec and resets its counters.
  void arm(const std::string& site, FaultSpec spec);

  /// Disarms one site (its counters survive until reset()).
  void disarm(const std::string& site);

  /// Disarms everything, clears counters, and wakes stalled kDelay sites.
  void reset();

  /// Wakes every thread currently stalled in a kDelay site.
  void cancel_delays();

  /// Times the site was reached / times it actually fired.
  std::uint64_t hits(const std::string& site) const;
  std::uint64_t fires(const std::string& site) const;

  /// Slow path behind ELREC_FAULT_POINT. Counts the hit and, if the site is
  /// armed and eligible, fires its fault.
  void on_site(const char* site);

 private:
  FaultInjector() = default;

  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    std::uint64_t hit_count = 0;
    std::uint64_t fire_count = 0;
    std::uint64_t rng_state = 0;
  };

  static std::atomic<bool> any_armed_;

  mutable std::mutex mu_;
  std::condition_variable delay_cv_;
  std::uint64_t cancel_epoch_ = 0;  // bumped to wake stalled delays
  std::unordered_map<std::string, SiteState> sites_;
  std::string env_error_;  // guarded by mu_; set once at start-up
};

}  // namespace elrec

/// Plants a named fault point. Zero-cost when nothing is armed (one relaxed
/// atomic load); otherwise consults the injector, which may throw or stall.
#define ELREC_FAULT_POINT(site)                              \
  do {                                                       \
    if (::elrec::FaultInjector::armed_anywhere()) {          \
      ::elrec::FaultInjector::instance().on_site(site);      \
    }                                                        \
  } while (0)
