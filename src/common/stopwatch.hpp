// Wall-clock stopwatch used by benchmarks and the pipeline trainer.
#pragma once

#include <chrono>

namespace elrec {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace elrec
