// Bounded retry with exponential backoff.
//
// Retries TransientError only: a transient host-store fault (or an injected
// one) gets `max_attempts` chances with geometrically growing sleeps, while
// genuine bugs (Error, PipelineError, shape mismatches) propagate on the
// first throw. Exhausting the budget rethrows the last transient failure
// wrapped in a plain Error so callers do not retry it again upstream.
#pragma once

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"

namespace elrec {

struct RetryPolicy {
  int max_attempts = 5;  // total tries, including the first
  std::chrono::milliseconds initial_backoff{1};
  double multiplier = 2.0;
  std::chrono::milliseconds max_backoff{200};
};

/// Runs `fn`, retrying on TransientError per `policy`. `what` names the
/// operation for the exhaustion message.
template <typename Fn>
auto with_retry(const RetryPolicy& policy, const std::string& what, Fn&& fn)
    -> decltype(fn()) {
  ELREC_CHECK(policy.max_attempts >= 1, "retry policy needs >= 1 attempt");
  std::chrono::milliseconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const TransientError& e) {
      if (attempt >= policy.max_attempts) {
        throw Error(what + ": retries exhausted after " +
                    std::to_string(attempt) + " attempts — " + e.what());
      }
      std::this_thread::sleep_for(backoff);
      const auto grown = std::chrono::milliseconds(static_cast<long long>(
          static_cast<double>(backoff.count()) * policy.multiplier));
      backoff = std::min(std::max(grown, std::chrono::milliseconds(1)),
                         policy.max_backoff);
    }
  }
}

}  // namespace elrec
