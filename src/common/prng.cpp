#include "common/prng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace elrec {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Prng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Prng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Prng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) {
  ELREC_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Prng::uniform_index(std::uint64_t n) {
  ELREC_DCHECK(n > 0);
  // Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Prng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from 0 so log() stays finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Prng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Prng::bernoulli(double p) { return uniform() < p; }

Prng Prng::split() {
  Prng child;
  child.reseed(next() ^ 0xda3e39cb94b95bdbULL);
  return child;
}

}  // namespace elrec
