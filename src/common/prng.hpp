// Deterministic, fast pseudo-random number generation.
//
// All stochastic behaviour in EL-Rec (parameter init, synthetic datasets,
// property tests) flows through Prng so experiments are reproducible from a
// single seed. The generator is xoshiro256** (Blackman & Vigna), seeded via
// splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace elrec {

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to <random>
/// distributions and std::shuffle.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initialises the state from a single 64-bit seed (splitmix64 spread).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli draw.
  bool bernoulli(double p);

  /// Forks an independent stream (useful for per-thread generators).
  Prng split();

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Fisher–Yates shuffle of `values` driven by `rng`.
template <typename T>
void shuffle(std::vector<T>& values, Prng& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_index(i));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace elrec
