// Bounded MPMC blocking queue.
//
// Used as the Pre-fetch Queue and Gradient Queue of the pipeline training
// system (paper §V). Bounded capacity is semantically important: the queue
// length is exactly the pipeline depth, and the embedding-cache life-cycle
// values are derived from it.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/error.hpp"

namespace elrec {

/// Thread-safe bounded FIFO. push() blocks when full, pop() blocks when
/// empty. close() wakes all waiters; pop() on a closed-and-drained queue
/// returns nullopt, push() on a closed queue returns false.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {
    ELREC_CHECK(capacity > 0, "queue capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }

  /// Blocks until there is room; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; returns nullopt once closed & empty.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace elrec
